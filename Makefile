# Developer checks for the trace reproduction. `make check` is the gate:
# formatting, vet, and the full test suite under the race detector (the
# parallel per-function backend must stay race-clean).

GO ?= go

.PHONY: check fmt vet test race bench bench-sim bench-serve build serve

check: fmt vet race

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run XXX .

# Tracked simulator benchmark: fixed -benchtime/-count, JSON vs the seed
# baseline (scripts/bench_baseline.txt) written to BENCH_sim.json.
bench-sim:
	sh scripts/bench.sh

# Tracked serving benchmark: steady-state cached /run throughput and cold
# compile rate over real HTTP, written to BENCH_serve.json.
bench-serve:
	sh scripts/bench_serve.sh

# Run the compile-and-execute service on the default address (127.0.0.1:8347).
serve:
	$(GO) run ./cmd/tracesrv
