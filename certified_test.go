// Differential test of the certified fast path: for every example program,
// optimization level, and machine width, the checked interpreter and the
// certified fast path must produce byte-identical results — same exit
// value, same printed output, and the same value in every Stats counter.
// The fast path skips checking, never timing: any divergence here means the
// two execution modes disagree about the machine itself.
package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFastCheckedAgree(t *testing.T) {
	mfs, err := filepath.Glob("examples/*.mf")
	if err != nil || len(mfs) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	configs := []Config{Trace7(), Trace14(), Trace28()}
	levels := []struct {
		name string
		lvl  OptLevel
	}{{"O0", OptNone}, {"O1", OptLight}, {"O2", OptFull}}

	for _, mf := range mfs {
		src, err := os.ReadFile(mf)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range configs {
			for _, lv := range levels {
				name := fmt.Sprintf("%s/%s/%s", filepath.Base(mf), cfg.Name, lv.name)
				t.Run(name, func(t *testing.T) {
					res, err := Compile(string(src), Options{Config: cfg, OptLevel: lv.lvl})
					if err != nil {
						t.Fatalf("compile: %v", err)
					}

					cv, cout, cst, cerr := Run(res)
					fv, fout, fst, ferr := RunFast(res)
					if (cerr == nil) != (ferr == nil) {
						t.Fatalf("trap disagreement: checked err=%v, fast err=%v", cerr, ferr)
					}
					if cerr != nil {
						if cerr.Error() != ferr.Error() {
							t.Fatalf("different faults: checked %v, fast %v", cerr, ferr)
						}
						return
					}
					if cv != fv {
						t.Fatalf("exit: checked %d, fast %d", cv, fv)
					}
					if cout != fout {
						t.Fatalf("output: checked %q, fast %q", cout, fout)
					}
					if *cst != *fst {
						t.Fatalf("stats diverged:\nchecked: %+v\nfast:    %+v", *cst, *fst)
					}
				})
			}
		}
	}
}
