// Differential test of the certified execution tiers: for every example
// program, optimization level, and machine width, the checked interpreter,
// the certified fast path, the guard-free safe tier, and the
// closure-threaded native tier must produce byte-identical results — same
// exit value, same printed output, and the same value in every Stats
// counter. The upper tiers skip checking, never timing: any divergence
// here means the execution modes disagree about the machine itself.
package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type tierRunner struct {
	name string
	run  func(*Result) (int32, string, *Stats, error)
}

// agreeOnExamples runs every example x O0/O1/O2 x Trace 7/14/28 on the
// checked interpreter and on each given tier, and fails on any difference
// in trap status, fault text, exit value, output, or any Stats counter.
func agreeOnExamples(t *testing.T, tiers []tierRunner) {
	t.Helper()
	mfs, err := filepath.Glob("examples/*.mf")
	if err != nil || len(mfs) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	configs := []Config{Trace7(), Trace14(), Trace28()}
	levels := []struct {
		name string
		lvl  OptLevel
	}{{"O0", OptNone}, {"O1", OptLight}, {"O2", OptFull}}

	for _, mf := range mfs {
		src, err := os.ReadFile(mf)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range configs {
			for _, lv := range levels {
				name := fmt.Sprintf("%s/%s/%s", filepath.Base(mf), cfg.Name, lv.name)
				t.Run(name, func(t *testing.T) {
					res, err := Compile(string(src), Options{Config: cfg, OptLevel: lv.lvl})
					if err != nil {
						t.Fatalf("compile: %v", err)
					}

					cv, cout, cst, cerr := Run(res)
					for _, tier := range tiers {
						fv, fout, fst, ferr := tier.run(res)
						if (cerr == nil) != (ferr == nil) {
							t.Fatalf("trap disagreement: checked err=%v, %s err=%v", cerr, tier.name, ferr)
						}
						if cerr != nil {
							if cerr.Error() != ferr.Error() {
								t.Fatalf("different faults: checked %v, %s %v", cerr, tier.name, ferr)
							}
							continue
						}
						if cv != fv {
							t.Fatalf("exit: checked %d, %s %d", cv, tier.name, fv)
						}
						if cout != fout {
							t.Fatalf("output: checked %q, %s %q", cout, tier.name, fout)
						}
						if *cst != *fst {
							t.Fatalf("stats diverged:\nchecked: %+v\n%s:    %+v", *cst, tier.name, *fst)
						}
					}
				})
			}
		}
	}
}

func TestFastCheckedAgree(t *testing.T) {
	agreeOnExamples(t, []tierRunner{{"fast", RunFast}, {"safe", RunSafe}})
}

// TestNativeCheckedAgree holds the native tier to the same contract: the
// per-image closure translation may delete dispatch and guards, but every
// observable — including each of the Stats counters — must match the
// checked interpreter bit for bit.
func TestNativeCheckedAgree(t *testing.T) {
	agreeOnExamples(t, []tierRunner{{"native", RunNative}})
}
