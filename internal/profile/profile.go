// Package profile produces control-flow edge weights for trace selection.
// The paper's compiler uses "estimates of branch directions obtained
// automatically through heuristics or profiling" (§4); this package provides
// both: Static computes loop-depth-based heuristic weights, and FromRun
// executes the program in the IR interpreter to collect an exact profile.
package profile

import "github.com/multiflow-repro/trace/internal/ir"

// LoopWeight is the assumed iteration count of a loop for static estimation.
const LoopWeight = 10

// Static estimates edge weights for every function: block frequency is
// LoopWeight^depth, and conditional branches favor the successor that stays
// in the loop (90/10); even splits get 50/50.
func Static(p *ir.Program) ir.Profile {
	prof := ir.Profile{}
	for _, f := range p.Funcs {
		prof[f.Name] = staticFunc(f)
	}
	return prof
}

func staticFunc(f *ir.Func) map[[2]int]float64 {
	loops := f.NaturalLoops()
	depth := make([]int, len(f.Blocks))
	for _, l := range loops {
		for b := range l.Body {
			depth[b]++
		}
	}
	freq := make([]float64, len(f.Blocks))
	for i := range freq {
		freq[i] = pow(LoopWeight, depth[i])
	}
	edges := map[[2]int]float64{}
	for _, b := range f.Blocks {
		succs := b.Succs()
		switch len(succs) {
		case 1:
			edges[[2]int{b.ID, succs[0]}] += freq[b.ID]
		case 2:
			p0 := 0.5
			d0, d1 := depth[succs[0]], depth[succs[1]]
			switch {
			case d0 > d1:
				p0 = 0.9
			case d1 > d0:
				p0 = 0.1
			}
			edges[[2]int{b.ID, succs[0]}] += freq[b.ID] * p0
			edges[[2]int{b.ID, succs[1]}] += freq[b.ID] * (1 - p0)
		}
	}
	return edges
}

func pow(base, exp int) float64 {
	v := 1.0
	for i := 0; i < exp; i++ {
		v *= float64(base)
	}
	return v
}

// FromRun executes the program in the interpreter and returns the exact edge
// profile. If execution fails (e.g. the instrumented run traps), it falls
// back to Static so compilation can proceed, mirroring the paper's
// heuristics-or-profiling choice.
func FromRun(p *ir.Program) ir.Profile {
	prof := ir.Profile{}
	in := &ir.Interp{Prog: p, Profile: prof}
	if _, _, err := in.Run(); err != nil {
		return Static(p)
	}
	// Functions never executed in the profiling run still need estimates.
	st := Static(p)
	for _, f := range p.Funcs {
		if len(prof[f.Name]) == 0 {
			prof[f.Name] = st[f.Name]
		}
	}
	return prof
}
