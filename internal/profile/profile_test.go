package profile

import (
	"testing"

	"github.com/multiflow-repro/trace/internal/lang"
)

const nested = `
func main() int {
	var s int = 0
	for (var i int = 0; i < 10; i = i + 1) {
		for (var j int = 0; j < 10; j = j + 1) {
			if (j % 2 == 0) { s = s + 1 }
		}
	}
	return s
}`

func TestStaticWeightsLoopDepth(t *testing.T) {
	prog, err := lang.Compile(nested)
	if err != nil {
		t.Fatal(err)
	}
	prof := Static(prog)
	edges := prof["main"]
	if len(edges) == 0 {
		t.Fatal("no edges estimated")
	}
	// the inner loop's back edge must outweigh the outer loop's entry edge
	var maxW, minW float64
	minW = 1e18
	for _, w := range edges {
		if w > maxW {
			maxW = w
		}
		if w < minW {
			minW = w
		}
	}
	if maxW < float64(LoopWeight)*float64(LoopWeight)/2 {
		t.Errorf("inner-loop weight %v too low for depth-2 nesting", maxW)
	}
	if minW >= maxW {
		t.Error("no weight differentiation")
	}
}

func TestFromRunMatchesExecution(t *testing.T) {
	prog, err := lang.Compile(nested)
	if err != nil {
		t.Fatal(err)
	}
	prof := FromRun(prog)
	// the if-then edge inside the inner loop is taken exactly 50 times
	found := false
	for _, w := range prof["main"] {
		if w == 50 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a 50-weight edge, got %v", prof["main"])
	}
}

func TestFromRunFallsBackOnTrap(t *testing.T) {
	prog, err := lang.Compile(`
func main() int {
	var z int = 0
	for (var i int = 0; i < 4; i = i + 1) { z = z + i }
	return 1 / (z - 6)
}`)
	if err != nil {
		t.Fatal(err)
	}
	prof := FromRun(prog) // traps; must fall back to static estimates
	if len(prof["main"]) == 0 {
		t.Error("no fallback profile for trapping program")
	}
}

func TestFromRunCoversUncalledFunctions(t *testing.T) {
	prog, err := lang.Compile(`
func unused(n int) int {
	var s int = 0
	for (var i int = 0; i < n; i = i + 1) { s = s + i }
	return s
}
func main() int { return 7 }`)
	if err != nil {
		t.Fatal(err)
	}
	prof := FromRun(prog)
	if len(prof["unused"]) == 0 {
		t.Error("uncalled function got no static estimates")
	}
}
