package profile

import (
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/pipeline"
)

// Pass returns profile estimation as a registered pipeline pass. It does not
// modify the IR; it deposits the edge-weight profile in the pipeline Context
// for the trace-selection stage downstream. With useRun set it executes the
// program in the IR interpreter for an exact profile ("profiling"),
// otherwise it applies the static loop-depth heuristics ("heuristics", §4).
func Pass(useRun bool) pipeline.Pass {
	name := "profile-static"
	if useRun {
		name = "profile-run"
	}
	return pipeline.New(name, func(p *ir.Program, ctx *pipeline.Context) error {
		if useRun {
			ctx.Profile = FromRun(p)
		} else {
			ctx.Profile = Static(p)
		}
		return nil
	})
}
