// Package pipeline is the compiler's pass manager. The paper describes the
// Trace Scheduling compiler as a sequence of distinct phases — classical
// optimization, trace selection, list scheduling, register-bank allocation,
// encoding (§4, §8) — and this package makes that structure explicit: every
// phase is a named Pass run by an instrumented driver that records per-pass
// wall-clock time and IR-size deltas, can dump the IR after every pass, and
// in verify mode re-validates the IR at each pass boundary so a broken pass
// fails at its own boundary instead of as a mystery scheduler error.
//
// The driver is deliberately small so alternative schedulers (SMT- or
// ASP-based optimal pipelining, per PAPERS.md) can later slot in as passes
// without touching the driver.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"github.com/multiflow-repro/trace/internal/ir"
)

// Pass is one named phase of the compiler operating on a whole program.
type Pass interface {
	Name() string
	Run(p *ir.Program, ctx *Context) error
}

// Context threads instrumentation and inter-pass artifacts through one
// pipeline execution. A Context is not safe for concurrent use; the driver
// runs passes sequentially (parallelism lives inside backend stages).
type Context struct {
	// Verify runs ir.Validate after every pass and fails the pipeline at
	// the first pass whose output is malformed.
	Verify bool
	// DumpIR, when non-nil, receives a printout of the IR after every pass.
	DumpIR io.Writer
	// Profile is the edge-weight profile produced by the profiling pass for
	// downstream trace selection.
	Profile ir.Profile
	// Report accumulates per-pass timings and size deltas.
	Report Report

	metrics map[string]int
}

// NewContext returns an empty Context.
func NewContext() *Context {
	return &Context{metrics: map[string]int{}}
}

// Add bumps a named metric counter (e.g. "inlined", "hoisted"). Passes use
// it to report what they did without widening the Pass interface.
func (ctx *Context) Add(name string, n int) {
	if ctx.metrics == nil {
		ctx.metrics = map[string]int{}
	}
	ctx.metrics[name] += n
}

// Metric reads a named counter; missing counters read as zero.
func (ctx *Context) Metric(name string) int { return ctx.metrics[name] }

// PassTiming is one pass's entry in the report.
type PassTiming struct {
	Name      string
	Duration  time.Duration
	OpsBefore int
	OpsAfter  int
}

// Report is the -time-passes output: one entry per executed pass or stage,
// in execution order.
type Report struct {
	Passes []PassTiming
	Total  time.Duration
}

// String renders the report as the classic per-pass timing table.
func (r Report) String() string {
	if len(r.Passes) == 0 {
		return "pipeline: no passes recorded\n"
	}
	out := fmt.Sprintf("%-14s %12s %8s %8s %8s\n", "pass", "time", "ops-in", "ops-out", "delta")
	for _, p := range r.Passes {
		delta := p.OpsAfter - p.OpsBefore
		out += fmt.Sprintf("%-14s %12s %8d %8d %+8d\n",
			p.Name, p.Duration.Round(time.Microsecond), p.OpsBefore, p.OpsAfter, delta)
	}
	out += fmt.Sprintf("%-14s %12s\n", "total", r.Total.Round(time.Microsecond))
	return out
}

// record appends one timing entry and keeps Total in sync.
func (r *Report) record(name string, d time.Duration, before, after int) {
	r.Passes = append(r.Passes, PassTiming{Name: name, Duration: d, OpsBefore: before, OpsAfter: after})
	r.Total += d
}

// PanicError is a compiler crash converted into a diagnosable error: the
// driver recovers panics at every pass and stage boundary so a bug in one
// phase fails the compilation with attribution instead of killing the
// process with a Go stack trace. The trace is retained for bug reports but
// kept out of Error() so user-facing diagnostics stay one line.
type PanicError struct {
	Pass  string // pass or stage name that crashed
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() at the point of recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal compiler error in pass %s: %v", e.Pass, e.Value)
}

// guard runs fn, converting a panic into a *PanicError attributed to name.
func guard(name string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Pass: name, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// funcPass adapts a name + function to the Pass interface.
type funcPass struct {
	name string
	run  func(*ir.Program, *Context) error
}

func (p funcPass) Name() string                             { return p.name }
func (p funcPass) Run(prog *ir.Program, ctx *Context) error { return p.run(prog, ctx) }

// New builds a Pass from a name and a run function.
func New(name string, run func(*ir.Program, *Context) error) Pass {
	return funcPass{name: name, run: run}
}

// PerFunc builds a whole-program Pass from a per-function transform that
// returns a count of changes; the count is added to the named metric.
func PerFunc(name, metric string, fn func(*ir.Func) int) Pass {
	return New(name, func(p *ir.Program, ctx *Context) error {
		n := 0
		for _, f := range p.Funcs {
			n += fn(f)
		}
		ctx.Add(metric, n)
		return nil
	})
}

// Run executes the passes in order over p, recording a timing entry per
// pass. With ctx.Verify set, the IR is validated after every pass and the
// first failure is attributed to the pass that produced it.
//
// The driver checks cctx at every pass boundary: a canceled compilation
// stops before the next pass starts and returns an error satisfying
// errors.Is(err, cctx.Err()). Passes themselves are not interrupted — a
// pass either completes or never runs, so cancellation can never leave the
// IR half-transformed.
func Run(cctx context.Context, p *ir.Program, ctx *Context, passes ...Pass) error {
	for _, ps := range passes {
		if err := cctx.Err(); err != nil {
			return fmt.Errorf("compilation canceled before pass %s: %w", ps.Name(), err)
		}
		before := CountOps(p)
		start := time.Now()
		err := guard(ps.Name(), func() error { return ps.Run(p, ctx) })
		ctx.Report.record(ps.Name(), time.Since(start), before, CountOps(p))
		if err != nil {
			if _, crashed := err.(*PanicError); crashed {
				return err // already pass-attributed
			}
			return fmt.Errorf("pass %s: %w", ps.Name(), err)
		}
		if ctx.DumpIR != nil {
			fmt.Fprintf(ctx.DumpIR, "; ---- IR after pass %s ----\n%s", ps.Name(), p.String())
		}
		if ctx.Verify {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("verify: IR invalid after pass %s: %w", ps.Name(), err)
			}
		}
	}
	return nil
}

// Stage times a non-IR backend stage (scheduling, linking) into the same
// report. The op counts of the program are recorded unchanged on both sides
// since stages operate past the IR. Like Run, it checks cctx at the stage
// boundary, so a canceled compilation never starts the next backend stage.
func (ctx *Context) Stage(cctx context.Context, name string, p *ir.Program, fn func() error) error {
	if err := cctx.Err(); err != nil {
		return fmt.Errorf("compilation canceled before stage %s: %w", name, err)
	}
	ops := CountOps(p)
	start := time.Now()
	err := guard(name, fn)
	ctx.Report.record(name, time.Since(start), ops, ops)
	return err
}

// CountOps counts real IR operations across the program — the size metric
// reported per pass.
func CountOps(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Ops)
		}
	}
	return n
}
