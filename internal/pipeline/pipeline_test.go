package pipeline_test

import (
	"context"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/pipeline"
)

func mustProg(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("lang.Compile: %v", err)
	}
	return p
}

const tinySrc = `func main() int { var x int = 3; if (x > 1) { x = x * 2 } return x }`

// TestVerifyCatchesBrokenPass is the acceptance test for verify mode: a pass
// that corrupts the IR must fail at its own boundary, named in the error,
// instead of surfacing later as a mystery scheduler failure.
func TestVerifyCatchesBrokenPass(t *testing.T) {
	p := mustProg(t, tinySrc)
	good := pipeline.New("good", func(p *ir.Program, ctx *pipeline.Context) error { return nil })
	breaker := pipeline.New("breaker", func(p *ir.Program, ctx *pipeline.Context) error {
		// Duplicate the entry block's terminator: the first copy is now a
		// terminator in a non-final position, which ir.Validate rejects.
		b := p.Funcs[0].Blocks[0]
		b.Ops = append(b.Ops, b.Ops[len(b.Ops)-1])
		return nil
	})
	after := pipeline.New("after", func(p *ir.Program, ctx *pipeline.Context) error { return nil })

	ctx := pipeline.NewContext()
	ctx.Verify = true
	err := pipeline.Run(context.Background(), p, ctx, good, breaker, after)
	if err == nil {
		t.Fatal("verify mode did not catch the broken pass")
	}
	if !strings.Contains(err.Error(), "breaker") {
		t.Errorf("error does not blame the broken pass: %v", err)
	}
	if !strings.Contains(err.Error(), "verify") {
		t.Errorf("error does not mention verify mode: %v", err)
	}
	// The pipeline must have stopped at the broken pass.
	names := []string{}
	for _, pt := range ctx.Report.Passes {
		names = append(names, pt.Name)
	}
	if strings.Join(names, ",") != "good,breaker" {
		t.Errorf("passes executed: %v, want to stop at breaker", names)
	}
}

// Without verify mode the same corruption sails through the pipeline —
// that contrast is what the mode buys.
func TestNoVerifyMissesBrokenPass(t *testing.T) {
	p := mustProg(t, tinySrc)
	breaker := pipeline.New("breaker", func(p *ir.Program, ctx *pipeline.Context) error {
		b := p.Funcs[0].Blocks[0]
		b.Ops = append(b.Ops, b.Ops[len(b.Ops)-1])
		return nil
	})
	if err := pipeline.Run(context.Background(), p, pipeline.NewContext(), breaker); err != nil {
		t.Fatalf("unexpected error without verify: %v", err)
	}
}

func TestReportTimingsAndDeltas(t *testing.T) {
	p := mustProg(t, tinySrc)
	grow := pipeline.New("grow", func(p *ir.Program, ctx *pipeline.Context) error {
		// Duplicate a non-terminator op: a visible +1 op delta.
		b := p.Funcs[0].Blocks[0]
		b.Ops = append([]ir.Op{b.Ops[0]}, b.Ops...)
		return nil
	})
	nop := pipeline.New("nop", func(p *ir.Program, ctx *pipeline.Context) error { return nil })

	ctx := pipeline.NewContext()
	if err := pipeline.Run(context.Background(), p, ctx, grow, nop); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Report.Passes) != 2 {
		t.Fatalf("report has %d entries, want 2", len(ctx.Report.Passes))
	}
	g := ctx.Report.Passes[0]
	if g.Name != "grow" || g.OpsAfter != g.OpsBefore+1 {
		t.Errorf("grow entry = %+v, want +1 op delta", g)
	}
	n := ctx.Report.Passes[1]
	if n.OpsAfter != n.OpsBefore {
		t.Errorf("nop entry = %+v, want zero delta", n)
	}
	s := ctx.Report.String()
	for _, want := range []string{"pass", "grow", "nop", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}

func TestDumpIRAfterEveryPass(t *testing.T) {
	p := mustProg(t, tinySrc)
	var sb strings.Builder
	ctx := pipeline.NewContext()
	ctx.DumpIR = &sb
	a := pipeline.New("alpha", func(p *ir.Program, ctx *pipeline.Context) error { return nil })
	b := pipeline.New("beta", func(p *ir.Program, ctx *pipeline.Context) error { return nil })
	if err := pipeline.Run(context.Background(), p, ctx, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "after pass alpha") || !strings.Contains(out, "after pass beta") {
		t.Errorf("dump output missing per-pass headers:\n%.200s", out)
	}
	if !strings.Contains(out, "main") {
		t.Errorf("dump output does not include the IR body")
	}
}

func TestMetricsAndPerFunc(t *testing.T) {
	p := mustProg(t, tinySrc)
	count := pipeline.PerFunc("count-blocks", "blocks", func(f *ir.Func) int { return len(f.Blocks) })
	ctx := pipeline.NewContext()
	if err := pipeline.Run(context.Background(), p, ctx, count); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Metric("blocks"); got == 0 {
		t.Error("PerFunc metric not recorded")
	}
	if got := ctx.Metric("absent"); got != 0 {
		t.Errorf("missing metric reads %d, want 0", got)
	}
}

func TestStageRecordsIntoReport(t *testing.T) {
	p := mustProg(t, tinySrc)
	ctx := pipeline.NewContext()
	if err := ctx.Stage(context.Background(), "backend", p, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Report.Passes) != 1 || ctx.Report.Passes[0].Name != "backend" {
		t.Fatalf("stage not recorded: %+v", ctx.Report.Passes)
	}
}

// TestPanicInPassRecovered: a crashing pass must fail the pipeline with a
// pass-attributed *PanicError, not kill the process.
func TestPanicInPassRecovered(t *testing.T) {
	p := mustProg(t, tinySrc)
	boom := pipeline.New("boom", func(p *ir.Program, ctx *pipeline.Context) error {
		var f *ir.Func
		_ = f.Name // nil deref
		return nil
	})
	after := pipeline.New("after", func(p *ir.Program, ctx *pipeline.Context) error { return nil })

	ctx := pipeline.NewContext()
	err := pipeline.Run(context.Background(), p, ctx, boom, after)
	if err == nil {
		t.Fatal("panicking pass did not fail the pipeline")
	}
	pe, ok := err.(*pipeline.PanicError)
	if !ok {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Pass != "boom" {
		t.Errorf("PanicError.Pass = %q, want boom", pe.Pass)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack trace")
	}
	if !strings.Contains(err.Error(), "internal compiler error") ||
		!strings.Contains(err.Error(), "boom") {
		t.Errorf("diagnostic not attributed: %v", err)
	}
	// The pipeline stopped at the crashing pass and still recorded it.
	if n := len(ctx.Report.Passes); n != 1 {
		t.Errorf("%d passes recorded, want 1 (stop at boom)", n)
	}
}

// TestPanicInStageRecovered covers the backend stages (scheduling, linking).
func TestPanicInStageRecovered(t *testing.T) {
	p := mustProg(t, tinySrc)
	ctx := pipeline.NewContext()
	err := ctx.Stage(context.Background(), "tsched", p, func() error { panic("scheduler bug") })
	pe, ok := err.(*pipeline.PanicError)
	if !ok {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if pe.Pass != "tsched" || pe.Value != "scheduler bug" {
		t.Errorf("bad attribution: %+v", pe)
	}
}
