package pipeline_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/pipeline"
)

// TestRunStopsAtPassBoundary: cancellation between passes must prevent the
// next pass from running, name the pass it stopped before, and satisfy
// errors.Is — while the pass that triggered the cancel still completes (a
// pass is atomic; the IR is never left half-transformed).
func TestRunStopsAtPassBoundary(t *testing.T) {
	p := mustProg(t, tinySrc)
	cctx, cancel := context.WithCancel(context.Background())
	var ran []string
	mk := func(name string) pipeline.Pass {
		return pipeline.New(name, func(p *ir.Program, ctx *pipeline.Context) error {
			ran = append(ran, name)
			if name == "second" {
				cancel() // cancel mid-pipeline, from inside a pass
			}
			return nil
		})
	}
	err := pipeline.Run(cctx, p, pipeline.NewContext(), mk("first"), mk("second"), mk("third"))
	if err == nil {
		t.Fatal("canceled pipeline returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, Canceled) = false: %v", err)
	}
	if !strings.Contains(err.Error(), "third") {
		t.Errorf("error does not name the pass it stopped before: %v", err)
	}
	if len(ran) != 2 || ran[1] != "second" {
		t.Errorf("passes run = %v, want [first second]", ran)
	}
}

func TestStageHonorsContext(t *testing.T) {
	p := mustProg(t, tinySrc)
	ctx := pipeline.NewContext()
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := ctx.Stage(cctx, "backend", p, func() error { called = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, Canceled) = false: %v", err)
	}
	if called {
		t.Error("stage body ran despite a canceled context")
	}
	if !strings.Contains(err.Error(), "backend") {
		t.Errorf("error does not name the stage: %v", err)
	}
}
