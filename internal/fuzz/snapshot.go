package fuzz

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// snapshotSplits is how many random beat offsets each surviving program is
// split at, per checking mode. Random offsets land snapshots in the states a
// hand-written test can't aim for — mid-pending-write, mid-bank-stall, the
// beat before a trap — which is the point of fuzzing them.
const snapshotSplits = 3

// CheckSnapshot is the checkpoint/restore oracle stage for one program: the
// program compiles at full optimization, runs uninterrupted to establish the
// reference, then re-runs split at random beats — pause, serialize, restore
// onto a different pooled machine, continue — in the checked mode, the
// certified-fast mode (when the image certifies), and — when Options asks
// for the safe or native tier and the image certifies at the safety grade —
// that tier too, proving the snapshot wire format is tier-independent. The
// stitched run must match the reference bit-for-bit: exit, output, and
// every performance counter. A corrupted snapshot must be refused by
// Restore, never half-applied.
func CheckSnapshot(ctx context.Context, src string, seed int64, o Options) error {
	maxCycles := o.MaxCycles
	if maxCycles == 0 {
		maxCycles = 500_000_000
	}
	tier, err := o.resolve()
	if err != nil {
		return err
	}
	copts := core.Options{Config: mach.Trace28(), Opt: opt.Default(), Parallelism: 1}
	art, err := core.Build(ctx, src, copts)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return ErrSkip // non-compiling or capacity-rejected: other stages' business
	}

	m := machinePool.Get().(*vliw.Machine)
	ref, err := art.RunOn(ctx, m, core.RunOptions{MaxCycles: maxCycles})
	machinePool.Put(m)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return ErrSkip // reference traps or exceeds budget: no ground truth
	}
	if ref.Stats.Beats < 2 {
		return ErrSkip // nowhere to split
	}

	modes := []vliw.Tier{vliw.TierChecked}
	if _, err := art.Certificate(); err == nil {
		modes = append(modes, vliw.TierFast)
	}
	if tier >= vliw.TierSafe {
		if _, err := art.CertifySafe(); err == nil {
			modes = append(modes, tier)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var snap []byte // one surviving snapshot, reused for the corruption probe
	for _, mode := range modes {
		for s := 0; s < snapshotSplits; s++ {
			at := 1 + rng.Int63n(ref.Stats.Beats-1)
			cfg := fmt.Sprintf("trace28/O2/tier=%s split@%d", mode, at)

			m := machinePool.Get().(*vliw.Machine)
			first, err := art.RunOn(ctx, m, core.RunOptions{
				Tier: mode, MaxCycles: maxCycles, SnapshotAt: at})
			machinePool.Put(m)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return &Divergence{Stage: "snapshot", Config: cfg,
					Detail: fmt.Sprintf("reference ran clean but the split run failed: %v", err), Src: src}
			}

			final := first
			if first.Paused {
				snap = first.Snapshot
				// Restore deliberately lands on a different pooled machine:
				// the snapshot must carry everything, not lean on leftovers.
				m := machinePool.Get().(*vliw.Machine)
				final, err = art.RunFromOn(ctx, m, first.Snapshot, core.RunOptions{
					Tier: mode, MaxCycles: maxCycles})
				machinePool.Put(m)
				if err != nil {
					if ctx.Err() != nil {
						return ctx.Err()
					}
					return &Divergence{Stage: "snapshot", Config: cfg,
						Detail: fmt.Sprintf("restore or resumed run failed: %v", err), Src: src}
				}
			}
			// A split landing inside the final instruction completes
			// instead of pausing; either way the result must equal the
			// uninterrupted reference exactly.
			if final.Exit != ref.Exit {
				return &Divergence{Stage: "snapshot", Config: cfg,
					Detail: fmt.Sprintf("exit %d resumed, %d uninterrupted", final.Exit, ref.Exit), Src: src}
			}
			if final.Output != ref.Output {
				return &Divergence{Stage: "snapshot", Config: cfg,
					Detail: fmt.Sprintf("output %q resumed, %q uninterrupted", final.Output, ref.Output), Src: src}
			}
			if final.Stats != ref.Stats {
				return &Divergence{Stage: "snapshot", Config: cfg,
					Detail: fmt.Sprintf("stats diverge between uninterrupted and split runs:\n  resumed:       %+v\n  uninterrupted: %+v", final.Stats, ref.Stats),
					Src:    src}
			}
		}
	}

	if snap != nil {
		// Integrity probe: one flipped payload byte must be rejected whole.
		bad := append([]byte(nil), snap...)
		bad[len(bad)/2] ^= 0x40
		m := machinePool.Get().(*vliw.Machine)
		_, err := art.RunFromOn(ctx, m, bad, core.RunOptions{MaxCycles: maxCycles})
		machinePool.Put(m)
		var ebs *vliw.ErrBadSnapshot
		if !errors.As(err, &ebs) {
			return &Divergence{Stage: "snapshot", Config: "corrupt",
				Detail: fmt.Sprintf("corrupted snapshot was not rejected (err=%v)", err), Src: src}
		}
	}
	return nil
}

// CheckSnapshotSeeds generates programs for a contiguous seed range and runs
// the checkpoint/restore oracle over each; ErrSkip reports that no program
// survived to a splittable reference run.
func CheckSnapshotSeeds(ctx context.Context, seed, n int64, o Options) error {
	survived := false
	for s := seed; s < seed+n; s++ {
		err := CheckSnapshot(ctx, Gen(s), s, o)
		if errors.Is(err, ErrSkip) {
			continue
		}
		if err != nil {
			return err
		}
		survived = true
	}
	if !survived {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrSkip
	}
	return nil
}
