// Package fuzz is the differential robustness harness for the no-interlock
// stack. It generates random, always-terminating MF programs and checks that
// the trace-scheduled VLIW executes each one exactly like the scalar
// reference — at every optimization level and backend parallelism setting —
// and that compilation itself is byte-deterministic. On a machine with no
// hardware interlocks a scheduling bug does not fault, it silently corrupts
// results (PAPER.md §"Simplify the hardware"); an independent oracle is the
// only way to observe that class of bug.
package fuzz

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// flit renders v as an MF float literal. %g alone drops the decimal point on
// whole values ("12"), which the frontend would type as int.
func flit(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".e") {
		s += ".0"
	}
	return s
}

// Gen generates a random MF program from seed. Every generated program
// terminates by construction:
//
//   - for loops have constant trip counts;
//   - while loops increment their (dedicated) counter as the first body
//     statement, so break/continue cannot skip progress;
//   - recursion takes a literal argument and strictly decreases it;
//   - array indices are masked to the array bounds;
//   - divisors are forced nonzero with (x & k) + 1.
//
// The same seed always yields the same program.
func Gen(seed int64) string {
	g := &gen{rng: rand.New(rand.NewSource(seed))}
	return g.program()
}

type gen struct {
	rng   *rand.Rand
	b     strings.Builder
	vars  []string // assignable int scalars in scope
	depth int
	loops int // enclosing loop count (break/continue legality)
	wn    int // while-counter naming
}

func (g *gen) program() string {
	fmt.Fprintf(&g.b, "var gi [16]int = {%d, %d, %d}\n",
		g.rng.Intn(50)-25, g.rng.Intn(50)-25, g.rng.Intn(50)-25)
	g.b.WriteString("var gf [8]float\n")
	fmt.Fprintf(&g.b, "var gn int = %d\n", g.rng.Intn(30)-15)

	// Helper battery: iterative, bounded-recursive, float, and array-walking
	// helpers give the trace scheduler calls to schedule around.
	fmt.Fprintf(&g.b, `func iter(x int) int {
	var s int = 1
	for (var i int = 0; i < (x & 15); i = i + 1) { s = s + i * %d - (s >> 2) }
	return s
}
`, 1+g.rng.Intn(5))
	fmt.Fprintf(&g.b, `func rec(x int) int {
	if (x < 2) { return x + 1 }
	return rec(x - 1) + rec(x - 2) * %d
}
`, 1+g.rng.Intn(3))
	fmt.Fprintf(&g.b, `func fhelp(v float) float {
	if (v < 0.0) { return %s - v }
	return v * %s + 0.125
}
`, flit(1.0+g.rng.Float64()), flit(0.5+g.rng.Float64()))
	fmt.Fprintf(&g.b, `func sweep(lo int, hi int) int {
	var acc int = 0
	for (var i int = lo & 15; i < (hi & 15); i = i + 1) {
		acc = acc + gi[i] * (i + 1)
		gi[i] = acc %% 1000 - 250
	}
	return acc
}
`)

	g.b.WriteString("func main() int {\n")
	g.vars = []string{"a", "b", "c", "d"}
	for _, v := range g.vars {
		fmt.Fprintf(&g.b, "\tvar %s int = %d\n", v, g.rng.Intn(60)-30)
	}
	g.b.WriteString("\tvar x float = 1.5\n")
	g.b.WriteString("\tvar y float = -0.75\n")
	g.b.WriteString("\tvar la [8]int\n")
	g.b.WriteString("\tfor (var i int = 0; i < 8; i = i + 1) { la[i] = i * 3 - 5 }\n")

	n := 4 + g.rng.Intn(5)
	for i := 0; i < n; i++ {
		g.stmt("\t", 3)
	}

	// Checksum epilogue: fold every piece of mutable state into the result
	// so a corruption anywhere is observable at the exit value.
	g.b.WriteString("\tvar chk int = a + b * 3 - c * 5 + d * 7 + gn\n")
	g.b.WriteString("\tfor (var i int = 0; i < 16; i = i + 1) {\n")
	g.b.WriteString("\t\tchk = (chk * 31 + gi[i] + la[(i & 7)] * 5 + int(gf[(i & 7)] * 16.0)) & 16777215\n")
	g.b.WriteString("\t}\n")
	g.b.WriteString("\tchk = (chk + int(fhelp(x) * 8.0) + int(y * 4.0)) & 16777215\n")
	g.b.WriteString("\tprint_i(chk)\n")
	g.b.WriteString("\tprint_f(fhelp(y) + x)\n")
	g.b.WriteString("\treturn chk & 65535\n}\n")
	return g.b.String()
}

// iv picks an assignable int scalar.
func (g *gen) iv() string { return g.vars[g.rng.Intn(len(g.vars))] }

// iexpr generates an int-typed expression of bounded depth.
func (g *gen) iexpr(d int) string {
	if d <= 0 {
		switch g.rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(40)-20)
		case 1:
			return fmt.Sprintf("gi[%d]", g.rng.Intn(16))
		case 2:
			return fmt.Sprintf("la[%d]", g.rng.Intn(8))
		case 3:
			return "gn"
		default:
			return g.iv()
		}
	}
	switch g.rng.Intn(14) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.iexpr(d-1), g.iexpr(d-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.iexpr(d-1), g.iexpr(d-1))
	case 2:
		return fmt.Sprintf("(%s * %d)", g.iexpr(d-1), g.rng.Intn(9)-4)
	case 3:
		// nonzero divisor by construction
		return fmt.Sprintf("(%s / ((%s & 7) + 1))", g.iexpr(d-1), g.iexpr(d-1))
	case 4:
		return fmt.Sprintf("(%s %% ((%s & 15) + 1))", g.iexpr(d-1), g.iexpr(d-1))
	case 5:
		return fmt.Sprintf("((%s ^ %s) & 4095)", g.iexpr(d-1), g.iexpr(d-1))
	case 6:
		return fmt.Sprintf("(%s >> %d)", g.iexpr(d-1), g.rng.Intn(5))
	case 7:
		return fmt.Sprintf("((%s << %d) & 65535)", g.iexpr(d-1), g.rng.Intn(4))
	case 8:
		return fmt.Sprintf("(%s %s %s ? %s : %s)",
			g.iexpr(d-1), g.cmpOp(), g.iexpr(d-1), g.iexpr(d-1), g.iexpr(d-1))
	case 9:
		return fmt.Sprintf("(%s %s %s)", g.boolExpr(d-1), g.logOp(), g.boolExpr(d-1))
	case 10:
		return fmt.Sprintf("iter(%s)", g.iexpr(d-1))
	case 11:
		return fmt.Sprintf("rec(%d)", 2+g.rng.Intn(9))
	case 12:
		return fmt.Sprintf("int(%s)", g.fexpr(d-1))
	default:
		return fmt.Sprintf("gi[(%s & 15)]", g.iexpr(d-1))
	}
}

// boolExpr generates an int-typed truth value.
func (g *gen) boolExpr(d int) string {
	return fmt.Sprintf("(%s %s %s)", g.iexpr(d), g.cmpOp(), g.iexpr(d))
}

// fexpr generates a float-typed expression of bounded depth.
func (g *gen) fexpr(d int) string {
	if d <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return flit(float64(g.rng.Intn(200)-100) / 8)
		case 1:
			return fmt.Sprintf("gf[%d]", g.rng.Intn(8))
		case 2:
			return "x"
		default:
			return "y"
		}
	}
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.fexpr(d-1), g.fexpr(d-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.fexpr(d-1), g.fexpr(d-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.fexpr(d-1), flit(0.25+g.rng.Float64()))
	case 3:
		// divisor bounded away from zero
		return fmt.Sprintf("(%s / %s)", g.fexpr(d-1), flit(1.0+g.rng.Float64()))
	case 4:
		return fmt.Sprintf("float(%s)", g.iexpr(d-1))
	case 5:
		return fmt.Sprintf("fhelp(%s)", g.fexpr(d-1))
	default:
		return fmt.Sprintf("gf[(%s & 7)]", g.iexpr(d-1))
	}
}

func (g *gen) cmpOp() string {
	return []string{"==", "!=", "<", "<=", ">", ">="}[g.rng.Intn(6)]
}

func (g *gen) logOp() string {
	return []string{"&&", "||"}[g.rng.Intn(2)]
}

// stmt emits one random statement at the given indent.
func (g *gen) stmt(indent string, d int) {
	choice := g.rng.Intn(12)
	if d <= 0 && choice >= 6 {
		choice = g.rng.Intn(6) // no further nesting
	}
	switch choice {
	case 0:
		fmt.Fprintf(&g.b, "%s%s = %s\n", indent, g.iv(), g.iexpr(2))
	case 1:
		fmt.Fprintf(&g.b, "%sgi[(%s & 15)] = %s\n", indent, g.iexpr(1), g.iexpr(2))
	case 2:
		fmt.Fprintf(&g.b, "%sla[(%s & 7)] = %s\n", indent, g.iexpr(1), g.iexpr(1))
	case 3:
		fmt.Fprintf(&g.b, "%sgf[(%s & 7)] = %s\n", indent, g.iexpr(1), g.fexpr(2))
	case 4:
		fmt.Fprintf(&g.b, "%s%s = %s\n", indent, []string{"x", "y"}[g.rng.Intn(2)], g.fexpr(2))
	case 5:
		fmt.Fprintf(&g.b, "%sgn = %s\n", indent, g.iexpr(2))
	case 6, 7:
		fmt.Fprintf(&g.b, "%sif (%s) {\n", indent, g.boolExpr(1))
		g.stmt(indent+"\t", d-1)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.b, "%s} else {\n", indent)
			g.stmt(indent+"\t", d-1)
		}
		fmt.Fprintf(&g.b, "%s}\n", indent)
	case 8:
		v := fmt.Sprintf("i%d", g.rng.Intn(10000))
		fmt.Fprintf(&g.b, "%sfor (var %s int = 0; %s < %d; %s = %s + 1) {\n",
			indent, v, v, 2+g.rng.Intn(14), v, v)
		fmt.Fprintf(&g.b, "%s\t%s = %s + %s * %d\n", indent, g.iv(), g.iv(), v, 1+g.rng.Intn(3))
		g.loops++
		g.stmt(indent+"\t", d-1)
		g.loops--
		fmt.Fprintf(&g.b, "%s}\n", indent)
	case 9:
		// while with the counter incremented FIRST, so a continue in the
		// body cannot skip progress.
		g.wn++
		v := fmt.Sprintf("w%d", g.wn)
		fmt.Fprintf(&g.b, "%svar %s int = 0\n", indent, v)
		fmt.Fprintf(&g.b, "%swhile (%s < %d) {\n", indent, v, 2+g.rng.Intn(10))
		fmt.Fprintf(&g.b, "%s\t%s = %s + 1\n", indent, v, v)
		g.loops++
		g.stmt(indent+"\t", d-1)
		g.loops--
		fmt.Fprintf(&g.b, "%s}\n", indent)
	case 10:
		if g.loops > 0 {
			// guarded break/continue exercises compensation at loop exits
			kw := []string{"break", "continue"}[g.rng.Intn(2)]
			fmt.Fprintf(&g.b, "%sif (%s) { %s }\n", indent, g.boolExpr(0), kw)
		} else {
			fmt.Fprintf(&g.b, "%sprint_i(%s & 255)\n", indent, g.iv())
		}
	default:
		fmt.Fprintf(&g.b, "%s%s = sweep(%s, %s)\n", indent, g.iv(), g.iexpr(0), g.iexpr(0))
	}
}
