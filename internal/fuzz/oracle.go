package fuzz

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/multiflow-repro/trace/internal/baseline"
	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/safecheck"
	"github.com/multiflow-repro/trace/internal/schedcheck"
	"github.com/multiflow-repro/trace/internal/tsched"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// ErrSkip reports that an input cannot establish a reference result — it
// does not compile, or the reference itself traps or exhausts its budget.
// Skipped inputs are not findings: the compiler rejected or diagnosed them.
var ErrSkip = errors.New("fuzz: input establishes no reference result")

// Divergence is a confirmed oracle failure: the VLIW stack disagreed with
// the scalar reference, compilation was nondeterministic, or a compiled
// artifact failed static verification. Any Divergence is a compiler or
// simulator bug.
type Divergence struct {
	Stage  string // "compile", "ir-validate", "lint", "trap", "exit", "output", "image"
	Config string // machine/opt/parallelism setting that diverged
	Detail string
	Src    string // the offending program
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("divergence [%s] at %s: %s", d.Stage, d.Config, d.Detail)
}

// Options tunes the oracle budgets.
type Options struct {
	// RefSteps bounds the reference interpreter (default 50M ops).
	RefSteps int64
	// MaxCycles bounds each VLIW run (default scales with the reference).
	MaxCycles int64
	// Tier selects the oracle's execution-tier regime. TierChecked (the
	// zero value) runs the checked tier only — the strongest single-tier
	// oracle, cross-checking the static verifier against the dynamic one.
	// TierFast runs each image on the certified fast path instead, for
	// throughput-oriented campaigns where the lint stage alone carries the
	// legality burden. TierSafe and TierNative upgrade the oracle to the
	// full four-way tier matrix: every image that runs also executes on the
	// fast path, the guard-free safe tier, and the closure-threaded native
	// tier, and all four runs must agree on the exit value, the output, the
	// fault, and every Stats counter. The timeshare and snapshot stages run
	// on the named tier itself, so -tier=native composes certificate-armed
	// translation with context time-sharing and checkpoint/restore.
	Tier vliw.Tier
	// Fast is the deprecated spelling of Tier: vliw.TierFast.
	Fast bool
	// Safe is the deprecated spelling of Tier: vliw.TierSafe (the tier
	// matrix — now four-way, including the native tier).
	Safe bool
}

// resolve folds the deprecated booleans into the Tier field.
func (o Options) resolve() (vliw.Tier, error) {
	return vliw.ResolveTier(o.Tier, o.Fast, o.Safe)
}

// machinePool recycles simulator machines across oracle runs. A machine
// owns multi-megabyte memory and TLB/itag arrays; reallocating them for
// every (input × matrix config) run dominated the oracle's allocation
// profile, so runs borrow a machine and Reset it onto each image instead.
var machinePool = sync.Pool{New: func() any { return new(vliw.Machine) }}

// armTier puts a pooled machine onto the requested execution tier for img,
// minting the needed certificate grade from the clean lint report (rep must
// be the clean report for exactly this image; one that cannot certify after
// a clean lint is itself a schedcheck bug and is returned so the oracle
// flags it). On a fuzz input nothing may be provable at the safety grade,
// which is fine: an empty bitmask still exercises the safe and native
// tiers' arming and containment machinery.
func armTier(m *vliw.Machine, img *isa.Image, rep *schedcheck.Report, tier vliw.Tier) error {
	if tier == vliw.TierChecked {
		return nil
	}
	cert, err := rep.Certify()
	if err != nil {
		return fmt.Errorf("lint passed but certification failed: %w", err)
	}
	if tier == vliw.TierFast {
		return m.UseCertificate(cert)
	}
	scert, err := safecheck.Analyze(img, safecheck.Options{}).Certify(cert)
	if err != nil {
		return fmt.Errorf("resource certificate minted but safety grading failed: %w", err)
	}
	if tier == vliw.TierSafe {
		return m.UseSafeCertificate(scert)
	}
	return m.UseNativeCertificate(scert)
}

// runTier executes one linked image on one execution tier and returns the
// result plus a copy of the machine's Stats.
func runTier(ctx context.Context, img *isa.Image, rep *schedcheck.Report, maxCycles int64, tier vliw.Tier) (int32, string, vliw.Stats, error) {
	m := machinePool.Get().(*vliw.Machine)
	defer machinePool.Put(m)
	m.Reset(img)
	m.CycleLimit = maxCycles
	if err := armTier(m, img, rep, tier); err != nil {
		return 0, "", vliw.Stats{}, err
	}
	v, out, err := m.RunContext(ctx)
	return v, out, m.Stats, err
}

// checkTiers runs the image on all four execution tiers — checked, fast,
// safe, and native — and requires byte-identical results: same exit, same
// output, same fault, and the same value in every Stats counter. It returns
// the checked tier's result for the caller's reference comparison; the
// *Divergence is non-nil when the tiers disagree among themselves.
func checkTiers(ctx context.Context, img *isa.Image, rep *schedcheck.Report, maxCycles int64, config, src string) (int32, string, error, *Divergence) {
	cv, cout, cst, cerr := runTier(ctx, img, rep, maxCycles, vliw.TierChecked)
	for _, tier := range []vliw.Tier{vliw.TierFast, vliw.TierSafe, vliw.TierNative} {
		tv, tout, tst, terr := runTier(ctx, img, rep, maxCycles, tier)
		tag := config + "/" + tier.String()
		if (cerr == nil) != (terr == nil) {
			return cv, cout, cerr, &Divergence{Stage: "tier", Config: tag,
				Detail: fmt.Sprintf("trap disagreement: checked err=%v, %s err=%v", cerr, tier, terr), Src: src}
		}
		if cerr != nil {
			if cerr.Error() != terr.Error() {
				return cv, cout, cerr, &Divergence{Stage: "tier", Config: tag,
					Detail: fmt.Sprintf("different faults: checked %v, %s %v", cerr, tier, terr), Src: src}
			}
			continue
		}
		if cv != tv {
			return cv, cout, cerr, &Divergence{Stage: "tier", Config: tag,
				Detail: fmt.Sprintf("exit %d, checked %d", tv, cv), Src: src}
		}
		if cout != tout {
			return cv, cout, cerr, &Divergence{Stage: "tier", Config: tag,
				Detail: fmt.Sprintf("output %q, checked %q", tout, cout), Src: src}
		}
		if cst != tst {
			return cv, cout, cerr, &Divergence{Stage: "tier", Config: tag,
				Detail: fmt.Sprintf("stats diverged:\nchecked: %+v\n%s: %+v", cst, tier, tst), Src: src}
		}
	}
	return cv, cout, cerr, nil
}

// matrix is the compile-and-run settings every input is checked across:
// every optimization level, multiple machine widths, and the basic-block-only
// ablation. The full-optimization Trace 28 setting is exercised separately by
// checkO2 so its compile also feeds the image-determinism comparison.
var matrix = []struct {
	name     string
	cfg      func() mach.Config
	opt      func() opt.Options
	maxTrace int
	jobs     int
}{
	{"trace7/O0/j1", mach.Trace7, opt.None, 0, 1},
	{"trace14/O1/j1", mach.Trace14, func() opt.Options { return opt.Options{Inline: true, UnrollFactor: 4} }, 0, 1},
	{"trace28/O2/bb-only/j1", mach.Trace28, opt.Default, 1, 1},
}

// Check runs the full differential oracle on one MF source text. It returns
// nil when every configuration agrees with the scalar reference, ErrSkip
// when the input establishes no reference, and a *Divergence otherwise.
func Check(ctx context.Context, src string, o Options) error {
	if o.RefSteps == 0 {
		o.RefSteps = 50_000_000
	}
	tier, terr := o.resolve()
	if terr != nil {
		return terr
	}

	// Reference: the IR interpreter underneath the scalar baseline is the
	// semantic ground truth; it shares no code with the scheduler or the
	// VLIW machine model.
	prog, err := lang.Compile(src)
	if err != nil {
		return ErrSkip // frontend rejected it with a positioned diagnostic
	}
	refRes, wantV, wantOut, rerr := baseline.ScalarBudget(prog, mach.Trace7(), o.RefSteps)
	if rerr != nil {
		return ErrSkip // reference traps or exceeds budget: no ground truth
	}
	maxCycles := o.MaxCycles
	if maxCycles == 0 {
		// A VLIW beat retires at most a few ops; anything past this factor
		// of the reference op count is a wedged or miscompiled program.
		maxCycles = 200*refRes.Ops + 2_000_000
	}

	for _, m := range matrix {
		copts := core.Options{
			Config: m.cfg(), Opt: m.opt(),
			MaxTraceBlocks: m.maxTrace, Parallelism: m.jobs,
		}
		res, err := core.Compile(ctx, src, copts)
		if err != nil {
			// The machine is finite and the allocator does not spill: a
			// structured capacity rejection on a narrow config is the
			// compiler refusing honestly, not a bug. Anything else —
			// including a recovered panic — is a finding.
			if isCapacityReject(err) {
				continue
			}
			return &Divergence{Stage: "compile", Config: m.name,
				Detail: fmt.Sprintf("reference accepted the program but compilation failed: %v", err), Src: src}
		}
		rep, d := checkArtifact(res, m.name, src)
		if d != nil {
			return d
		}
		var gotV int32
		var gotOut string
		if tier >= vliw.TierSafe {
			gotV, gotOut, err, d = checkTiers(ctx, res.Image, rep, maxCycles, m.name, src)
			if d != nil {
				return d
			}
		} else {
			gotV, gotOut, _, err = runTier(ctx, res.Image, rep, maxCycles, tier)
		}
		if err != nil {
			return &Divergence{Stage: "trap", Config: m.name,
				Detail: fmt.Sprintf("reference ran clean but the machine faulted: %v", err), Src: src}
		}
		if gotV != wantV {
			return &Divergence{Stage: "exit", Config: m.name,
				Detail: fmt.Sprintf("exit %d, reference %d", gotV, wantV), Src: src}
		}
		if gotOut != wantOut {
			return &Divergence{Stage: "output", Config: m.name,
				Detail: fmt.Sprintf("output %q, reference %q", gotOut, wantOut), Src: src}
		}
	}

	// Full optimization on the widest machine, sequential and parallel
	// backends: run the sequential image against the reference, then require
	// the 4-worker build to be byte-identical.
	return checkO2(ctx, src, wantV, wantOut, maxCycles, tier)
}

// checkArtifact statically verifies every artifact a successful compile
// produced: the optimized IR the scheduler consumed must still validate,
// and the linked image must pass schedcheck. The simulator then runs the
// same image, so a schedule that lints clean but traps dynamically (or vice
// versa) surfaces as a pair of contradictory findings — itself a bug in one
// of the two implementations of the legality rules. On success it returns
// the clean report, which the certified tiers mint into a certificate
// instead of re-running the analysis.
func checkArtifact(res *core.Result, config, src string) (*schedcheck.Report, *Divergence) {
	if err := res.OptIR.Validate(); err != nil {
		return nil, &Divergence{Stage: "ir-validate", Config: config,
			Detail: fmt.Sprintf("optimized IR fails validation after a clean compile: %v", err), Src: src}
	}
	rep := schedcheck.Check(res.Image, schedcheck.Options{
		Src: schedcheck.NewSourceMap(res.Image, res.Funcs),
	})
	if err := rep.Err(); err != nil {
		return nil, &Divergence{Stage: "lint", Config: config,
			Detail: fmt.Sprintf("compiled image fails static schedule verification: %v", err), Src: src}
	}
	return rep, nil
}

// isCapacityReject reports whether err is one of the compiler's structured
// finite-machine rejections (register pressure after the full retry ladder,
// or the schedule-size runaway guard).
func isCapacityReject(err error) bool {
	var ep *tsched.ErrPressure
	var es *tsched.ErrScheduleSize
	return errors.As(err, &ep) || errors.As(err, &es)
}

// checkO2 compiles at full optimization for Trace 28 with a sequential and a
// 4-worker backend, checks the sequential image against the reference result,
// and requires the parallel build to be byte-identical to the sequential one.
func checkO2(ctx context.Context, src string, wantV int32, wantOut string, maxCycles int64, tier vliw.Tier) error {
	opts := func(jobs int) core.Options {
		return core.Options{Config: mach.Trace28(), Opt: opt.Default(), Parallelism: jobs}
	}
	seq, err := core.Compile(ctx, src, opts(1))
	if err != nil {
		if isCapacityReject(err) {
			return nil
		}
		return &Divergence{Stage: "compile", Config: "trace28/O2/j1",
			Detail: fmt.Sprintf("reference accepted the program but compilation failed: %v", err), Src: src}
	}
	rep, d := checkArtifact(seq, "trace28/O2/j1", src)
	if d != nil {
		return d
	}
	var gotV int32
	var gotOut string
	var rerr error
	if tier >= vliw.TierSafe {
		gotV, gotOut, rerr, d = checkTiers(ctx, seq.Image, rep, maxCycles, "trace28/O2/j1", src)
		if d != nil {
			return d
		}
	} else {
		gotV, gotOut, _, rerr = runTier(ctx, seq.Image, rep, maxCycles, tier)
	}
	if rerr != nil {
		return &Divergence{Stage: "trap", Config: "trace28/O2/j1",
			Detail: fmt.Sprintf("reference ran clean but the machine faulted: %v", rerr), Src: src}
	}
	if gotV != wantV || gotOut != wantOut {
		return &Divergence{Stage: "exit", Config: "trace28/O2/j1",
			Detail: fmt.Sprintf("exit %d output %q, reference %d %q", gotV, gotOut, wantV, wantOut), Src: src}
	}

	par, err := core.Compile(ctx, src, opts(4))
	if err != nil {
		return &Divergence{Stage: "image", Config: "trace28/O2/j4",
			Detail: fmt.Sprintf("sequential build succeeded but parallel build failed: %v", err), Src: src}
	}
	if len(par.Image.Instrs) != len(seq.Image.Instrs) {
		return &Divergence{Stage: "image", Config: "trace28/O2/j4",
			Detail: fmt.Sprintf("instruction count %d vs %d", len(par.Image.Instrs), len(seq.Image.Instrs)), Src: src}
	}
	for i := range seq.Image.Words {
		for w := range seq.Image.Words[i] {
			if seq.Image.Words[i][w] != par.Image.Words[i][w] {
				return &Divergence{Stage: "image", Config: "trace28/O2/j4",
					Detail: fmt.Sprintf("instr %d word %d differs between j1 and j4 builds", i, w), Src: src}
			}
		}
	}
	return nil
}

// CheckSeed generates the program for seed and runs the oracle on it.
func CheckSeed(ctx context.Context, seed int64, o Options) error {
	return Check(ctx, Gen(seed), o)
}
