package fuzz

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// TestGenDeterministic: the generator is a pure function of its seed — the
// whole harness depends on a seed being a reproducible bug report.
func TestGenDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		if Gen(seed) != Gen(seed) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
	if Gen(1) == Gen(2) {
		t.Fatal("seeds 1 and 2 generated identical programs")
	}
}

// TestGenAlwaysCompiles: generated programs are valid MF by construction;
// a frontend rejection would silently shrink fuzz coverage to nothing.
func TestGenAlwaysCompiles(t *testing.T) {
	for seed := int64(1); seed <= 100; seed++ {
		src := Gen(seed)
		if _, err := lang.Compile(src); err != nil {
			t.Errorf("seed %d does not compile: %v\n%s", seed, err, src)
		}
	}
}

// TestOracleCleanOnSeeds runs the full differential oracle on a handful of
// seeds. Any divergence here is a real compiler or simulator bug.
func TestOracleCleanOnSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle is slow")
	}
	for seed := int64(1); seed <= 8; seed++ {
		if err := CheckSeed(context.Background(), seed, Options{}); err != nil {
			t.Errorf("seed %d: %v\n--- program ---\n%s", seed, err, Gen(seed))
		}
	}
}

// TestTierMatrixCleanOnSeeds runs the four-way tier oracle (checked, fast,
// safe, native) over a seed range: every image that runs must produce
// identical exit, output, fault, and Stats on all four tiers. This is the
// seed-level smoke of the `tracefuzz -tier=native` campaign in
// scripts/check.sh.
func TestTierMatrixCleanOnSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle is slow")
	}
	for seed := int64(1); seed <= 8; seed++ {
		if err := CheckSeed(context.Background(), seed, Options{Tier: vliw.TierNative}); err != nil {
			t.Errorf("seed %d: %v\n--- program ---\n%s", seed, err, Gen(seed))
		}
	}
}

// TestTimeshareCleanOnSeeds runs the multi-context stage over a seed range,
// checked and fast: every generated program must reproduce its solo exit,
// output, and counters when time-shared four to a machine. A divergence is
// a context-scheduler bug by definition — the solo runs already agreed with
// the reference oracle.
func TestTimeshareCleanOnSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full timeshare oracle is slow")
	}
	for _, fast := range []bool{false, true} {
		if err := CheckTimeshareSeeds(context.Background(), 1, 8, Options{Fast: fast}); err != nil && !errors.Is(err, ErrSkip) {
			t.Errorf("fast=%v: %v", fast, err)
		}
	}
}

// TestSnapshotCleanOnSeeds runs the checkpoint/restore stage over a seed
// range: every generated program split at random beats must reproduce its
// uninterrupted exit, output, and counters, checked and fast, and a
// corrupted snapshot must be refused.
func TestSnapshotCleanOnSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full snapshot oracle is slow")
	}
	if err := CheckSnapshotSeeds(context.Background(), 1, 8, Options{}); err != nil && !errors.Is(err, ErrSkip) {
		t.Error(err)
	}
}

// TestSnapshotSkipsRejectedInput: inputs with no splittable reference run
// are a skip, not a finding.
func TestSnapshotSkipsRejectedInput(t *testing.T) {
	if err := CheckSnapshot(context.Background(), "not a program", 1, Options{}); !errors.Is(err, ErrSkip) {
		t.Errorf("CheckSnapshot(garbage) = %v, want ErrSkip", err)
	}
}

// TestTimeshareSkipsRejectedInput: inputs with no surviving solo reference
// are a skip, not a finding.
func TestTimeshareSkipsRejectedInput(t *testing.T) {
	err := CheckTimeshare(context.Background(), []string{"", "not a program"}, Options{})
	if !errors.Is(err, ErrSkip) {
		t.Errorf("CheckTimeshare(garbage) = %v, want ErrSkip", err)
	}
}

// TestOracleSkipsRejectedInput: inputs the frontend rejects are skips, not
// findings — the compiler diagnosing garbage is correct behavior.
func TestOracleSkipsRejectedInput(t *testing.T) {
	for _, src := range []string{
		"", "not a program", "func main() int { return x }", strings.Repeat("(", 100000),
	} {
		if err := Check(context.Background(), src, Options{}); !errors.Is(err, ErrSkip) {
			t.Errorf("Check(%.20q) = %v, want ErrSkip", src, err)
		}
	}
}

// FuzzDifferential feeds arbitrary text through the whole stack: frontend,
// every optimization level, both backends, and the simulator. The property
// is total: any input either compiles and runs identically to the scalar
// reference everywhere, or is cleanly rejected. Panics, hangs, traps on
// reference-clean programs, and nondeterministic images all fail the target.
func FuzzDifferential(f *testing.F) {
	f.Add("func main() int { return 42 }")
	f.Add("func main() int { var a int = 7 print_i(a) return a * 6 }")
	f.Add(Gen(1))
	f.Add(Gen(2))
	f.Add("func main() int { while (1 < 2) { } return 0 }") // nonterminating: ref budget skips it
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 32<<10 {
			return // keep per-input cost bounded
		}
		// Tight budgets: the fuzzer's job is crash/divergence hunting, not
		// long executions; runaway programs become skips via the ref budget.
		err := Check(context.Background(), src, Options{RefSteps: 2_000_000})
		if err != nil && !errors.Is(err, ErrSkip) {
			t.Fatalf("%v", err)
		}
	})
}

// FuzzGen fuzzes the seed space of the generator: every seed must yield a
// valid, terminating program that the whole matrix agrees on.
func FuzzGen(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := CheckSeed(context.Background(), seed, Options{RefSteps: 5_000_000}); err != nil && !errors.Is(err, ErrSkip) {
			t.Fatalf("seed %d: %v\n--- program ---\n%s", seed, err, Gen(seed))
		}
	})
}
