package fuzz

import (
	"context"
	"fmt"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/schedcheck"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// timeshareK is the context count of the multi-tenancy oracle stage: four
// generated programs share one machine, the smallest population where
// round-robin rotation, eager stall rotation, and staggered retirement all
// occur.
const timeshareK = 4

// soloResult is one program's reference execution for the time-sharing
// comparison: the solo run IS the oracle — the scheduler must not be able
// to change any of it.
type soloResult struct {
	img  *isa.Image
	rep  *schedcheck.Report
	src  string
	exit int32
	out  string
	st   vliw.Stats
}

// CheckTimeshare is the multi-context oracle stage: the sources compile at
// full optimization for one machine, run solo to establish per-program
// references, then run again time-shared K=4 on shared machines. Any
// difference in a program's exit, output, or performance counters between
// its solo and time-shared execution is a context-scheduler bug — the
// hardware-context model promises bit-exact solo equivalence. Both the solo
// references and the shared machine run on the tier Options resolves to, so
// -tier=native exercises the closure-threaded translator under round-robin
// preemption. Inputs that
// fail to compile or whose solo run errs are skipped (they are the other
// stages' business); ErrSkip reports that no input survived to compare.
func CheckTimeshare(ctx context.Context, srcs []string, o Options) error {
	maxCycles := o.MaxCycles
	if maxCycles == 0 {
		maxCycles = 500_000_000
	}
	tier, err := o.resolve()
	if err != nil {
		return err
	}
	copts := core.Options{Config: mach.Trace28(), Opt: opt.Default(), Parallelism: 1}

	var solos []soloResult
	for _, src := range srcs {
		res, err := core.Compile(ctx, src, copts)
		if err != nil {
			if isCapacityReject(err) || ctx.Err() != nil {
				continue
			}
			continue // non-compiling input: Check's business, not ours
		}
		rep := schedcheck.Check(res.Image, schedcheck.Options{
			Src: schedcheck.NewSourceMap(res.Image, res.Funcs),
		})
		if rep.Err() != nil {
			continue
		}
		// The solo run establishes the reference, Stats included: a pooled
		// machine directly (not runImage) so the counters are readable.
		m := machinePool.Get().(*vliw.Machine)
		m.Reset(res.Image)
		m.CycleLimit = maxCycles
		if err := armTier(m, res.Image, rep, tier); err != nil {
			machinePool.Put(m)
			return err
		}
		v, out, err := m.RunContext(ctx)
		st := m.Stats
		machinePool.Put(m)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue // solo trap or budget: no reference to compare against
		}
		solos = append(solos, soloResult{img: res.Image, rep: rep, src: src, exit: v, out: out, st: st})
	}
	if len(solos) == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return ErrSkip
	}

	for lo := 0; lo < len(solos); lo += timeshareK {
		hi := min(lo+timeshareK, len(solos))
		batch := solos[lo:hi]
		imgs := make([]*isa.Image, len(batch))
		for i, s := range batch {
			imgs[i] = s.img
		}
		m := machinePool.Get().(*vliw.Machine)
		if err := m.ResetMany(imgs); err != nil {
			machinePool.Put(m)
			return err
		}
		m.CycleLimit = maxCycles
		for _, s := range batch {
			if err := armTier(m, s.img, s.rep, tier); err != nil {
				machinePool.Put(m)
				return err
			}
		}
		rs, err := m.RunMany(ctx)
		machinePool.Put(m)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return &Divergence{Stage: "timeshare", Config: fmt.Sprintf("trace28/O2/K%d", len(batch)),
				Detail: fmt.Sprintf("solo runs were clean but the time-shared machine failed: %v", err),
				Src:    batch[0].src}
		}
		for i, r := range rs {
			cfg := fmt.Sprintf("trace28/O2/K%d ctx%d", len(batch), i)
			if r.Err != nil {
				return &Divergence{Stage: "timeshare", Config: cfg,
					Detail: fmt.Sprintf("solo run was clean but the context faulted: %v", r.Err), Src: batch[i].src}
			}
			if r.Exit != batch[i].exit {
				return &Divergence{Stage: "timeshare", Config: cfg,
					Detail: fmt.Sprintf("exit %d time-shared, %d solo", r.Exit, batch[i].exit), Src: batch[i].src}
			}
			if r.Output != batch[i].out {
				return &Divergence{Stage: "timeshare", Config: cfg,
					Detail: fmt.Sprintf("output %q time-shared, %q solo", r.Output, batch[i].out), Src: batch[i].src}
			}
			if r.Stats != batch[i].st {
				return &Divergence{Stage: "timeshare", Config: cfg,
					Detail: fmt.Sprintf("stats diverge between solo and time-shared runs:\n  shared: %+v\n  solo:   %+v", r.Stats, batch[i].st),
					Src:    batch[i].src}
			}
		}
	}
	return nil
}

// CheckTimeshareSeeds generates the programs for a contiguous seed range and
// runs the time-sharing oracle stage over them.
func CheckTimeshareSeeds(ctx context.Context, seed, n int64, o Options) error {
	srcs := make([]string, 0, n)
	for s := seed; s < seed+n; s++ {
		srcs = append(srcs, Gen(s))
	}
	return CheckTimeshare(ctx, srcs, o)
}
