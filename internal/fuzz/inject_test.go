package fuzz

import (
	"context"
	"testing"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// injectSrc is a straight-line pure-integer program in which every computed
// value feeds the printed checksum, so every register write is dynamically
// live. Branch-free on purpose: trace scheduling speculates operations above
// loop exits, and on the iteration that takes the exit those writes are
// architecturally dead by design — corrupting them is invisible, which is
// the guarantee speculation relies on, not a harness blind spot.
const injectSrc = `
var g [4]int = {3, 5, 11, 2}
func main() int {
	var a int = g[0]
	var b int = g[1] + g[2] * g[3]
	var s int = a * b + 2
	var t int = s * 7 - a
	var u int = (t % 13) + s * 3
	var v int = (u ^ t) + b
	print_i((s + t) & 255)
	print_i((u * 3 + v) & 255)
	return (s + t * 5 + u * 11 + v * 23) & 65535
}
`

// flip corrupts one register write the way a single-event upset would:
// branch-bank bits invert, everything else gets its low 16 bits flipped.
func flip(dst mach.PReg, val uint64) uint64 {
	if dst.Bank == mach.BankB {
		return val ^ 1
	}
	return val ^ 0xFFFF
}

// TestEverySingleWriteFaultDetected is the harness's proof obligation: on a
// machine with no interlocks, corrupting ANY single register write of a run
// must be observable — as a trap, a different exit value, or different
// output. A silently absorbed corruption would mean the differential oracle
// has a blind spot.
func TestEverySingleWriteFaultDetected(t *testing.T) {
	res, err := core.Compile(context.Background(), injectSrc, core.Options{
		Config: mach.Trace7(), Opt: opt.None(), Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Clean run: count the register writes and record the golden result.
	clean := vliw.New(res.Image)
	var writes int
	clean.InjectWrite = func(beat int64, dst mach.PReg, val uint64) uint64 {
		writes++
		return val
	}
	wantV, wantOut, err := clean.Run()
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if writes == 0 {
		t.Fatal("clean run retired no register writes")
	}
	t.Logf("clean run: %d register writes, exit %d", writes, wantV)

	var undetected []int
	for target := 0; target < writes; target++ {
		m := vliw.New(res.Image)
		m.CycleLimit = 10_000_000 // corrupted control flow may spin
		n := 0
		m.InjectWrite = func(beat int64, dst mach.PReg, val uint64) uint64 {
			n++
			if n-1 == target {
				return flip(dst, val)
			}
			return val
		}
		gotV, gotOut, err := m.Run()
		if err == nil && gotV == wantV && gotOut == wantOut {
			undetected = append(undetected, target)
		}
	}
	if len(undetected) > 0 {
		t.Errorf("%d/%d single-write faults were silently absorbed: indices %v",
			len(undetected), writes, undetected)
	}
}
