package schedcheck

import (
	"math/bits"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// The in-flight-write dataflow. For every physical register the analysis
// tracks two facts across the reconstructed CFG:
//
//   - must-defined: has every path from the entry written it at least
//     once? Intersected at joins. Boot defines only the call-convention
//     registers (stack pointer and link register).
//
//   - may-pending: the set of beats, relative to the current word's early
//     beat, at which a previously issued pipeline write may still retire.
//     Unioned at joins: a hazard on any incoming path is a hazard.
//
// Retirement semantics mirror the hardware (§6.2, vliw.applyWrites): a
// write issued at beat b with latency L retires at the *start* of beat
// b+L, so a read at beat b+L observes the new value and a read at any
// earlier beat observes the old one. A pending bit at offset p is
// therefore live for a read at beat r iff p > r.
//
// Checks:
//
//   - stale-read: a read at beat r of a register with a pending write
//     retiring after r. On the real machine the op consumes the old value;
//     the scheduler's latency tables guarantee this never happens in
//     correct output, including along off-trace paths (the allocator's
//     conflict windows extend a definition's interference over its whole
//     flight on every path).
//
//   - write-race: two writes to one register retiring in the same beat on
//     some path — the register's final value is undefined (the simulator's
//     TrapWriteRace, but proven over all paths).
//
//   - waw-overlap: two writes to one register in flight simultaneously.
//     When the later-issued write also retires later, the overlap is legal
//     and the compiler routinely emits it (an FDIV's 26-beat flight often
//     overlaps a short rewrite of its own destination register; stalls
//     freeze every pipeline uniformly, so the retire order is stable) —
//     reported as a warning. When the retires are *inverted* — an
//     earlier-issued write lands after a later one — the stale value
//     clobbers the newer one on the interlock-free hardware, which is an
//     error.
//
//   - undef-read: a read of a register that some path reaches without any
//     write. The register file is zero-initialized in the simulator, but
//     nothing in the architecture promises that; correct compiler output
//     explicitly materializes every value it consumes.
//
//   - fu-occupancy (warning): an op issued on a multiplier while an FDIV
//     occupies it, or on an I ALU while an iterative divide occupies it.
//     The scheduler tracks occupancy per trace, so cross-trace overlaps
//     can occur in otherwise legal images; the hardware consequence is a
//     wrong result only if the unit is genuinely shared, which the
//     simulator does not model — hence warning severity.
//
// Interprocedural edges are precise because the stitcher drains all
// in-flight state across call and return boundaries: CALL edges flow into
// the callee entry, JMPR edges flow to every return site, and the
// must-defined set flows through the callee (callers' definitions survive
// a call; callee definitions accumulate).
type absState struct {
	def  [(maxRegs + 63) / 64]uint64 // must-defined bitset
	pend map[int]uint64              // reg index -> pending retire-offset mask
	// Functional-unit occupancy, in beats past this word's early beat.
	fmBusy   [4]int16    // FDIV holds the pair's multiplier
	ialuBusy [4][2]int16 // iterative divide holds its I ALU
}

func newState() *absState {
	return &absState{pend: map[int]uint64{}}
}

func (s *absState) clone() *absState {
	n := &absState{def: s.def, pend: make(map[int]uint64, len(s.pend)),
		fmBusy: s.fmBusy, ialuBusy: s.ialuBusy}
	for k, v := range s.pend {
		n.pend[k] = v
	}
	return n
}

// join merges src into dst (dst is the accumulated in-state of a word):
// definitions intersect, pending writes and occupancy union. Returns
// whether dst changed, for the fixpoint worklist.
func (s *absState) join(src *absState) bool {
	changed := false
	for i := range s.def {
		if old := s.def[i]; old&src.def[i] != old {
			s.def[i] &= src.def[i]
			changed = true
		}
	}
	for k, v := range src.pend {
		if old := s.pend[k]; old|v != old {
			s.pend[k] = old | v
			changed = true
		}
	}
	for p := range s.fmBusy {
		if src.fmBusy[p] > s.fmBusy[p] {
			s.fmBusy[p] = src.fmBusy[p]
			changed = true
		}
		for i := range s.ialuBusy[p] {
			if src.ialuBusy[p][i] > s.ialuBusy[p][i] {
				s.ialuBusy[p][i] = src.ialuBusy[p][i]
				changed = true
			}
		}
	}
	return changed
}

func (s *absState) defined(idx int) bool { return s.def[idx/64]&(1<<(idx%64)) != 0 }
func (s *absState) define(idx int)       { s.def[idx/64] |= 1 << (idx % 64) }

// flow runs the fixpoint and then a reporting pass over the converged
// states. Findings are only recorded once the states are final, so partial
// must-defined information never produces spurious reports.
func (c *checker) flow() {
	n := len(c.img.Instrs)
	if n == 0 || c.img.Entry < 0 || c.img.Entry >= n {
		return
	}
	in := make([]*absState, n)
	boot := newState()
	// The boot sequence reaches the entry point through the call
	// convention: the loader sets the stack pointer, and the link register
	// holds the (never-used) boot return address — main's prologue saves
	// it like any other function's.
	boot.define(regIndex(mach.RegSP))
	boot.define(regIndex(mach.RegLR))
	in[c.img.Entry] = boot

	work := []int{c.img.Entry}
	inWork := make([]bool, n)
	inWork[c.img.Entry] = true
	for len(work) > 0 {
		a := work[0]
		work = work[1:]
		inWork[a] = false
		out := c.stepWord(a, in[a].clone(), false)
		for _, t := range c.succ[a] {
			if t < 0 || t >= n {
				continue
			}
			if in[t] == nil {
				in[t] = out.clone()
			} else if !in[t].join(out) {
				continue
			}
			if !inWork[t] {
				inWork[t] = true
				work = append(work, t)
			}
		}
	}

	for a := 0; a < n; a++ {
		if c.reachable[a] && in[a] != nil {
			c.stepWord(a, in[a].clone(), true)
		}
	}
}

// pendingAlive masks the pending bits still in flight during beat `beat`
// (bits at offsets <= beat have already retired).
func pendingAlive(mask uint64, beat int) uint64 {
	return mask &^ ((1 << (beat + 1)) - 1)
}

// stepWord transfers the state across one instruction word, reporting the
// dataflow findings when rec is set. st is consumed.
func (c *checker) stepWord(a int, st *absState, rec bool) *absState {
	in := &c.img.Instrs[a]

	type issued struct {
		idx    int
		retire int
		reg    mach.PReg
		beat   int
		unit   mach.Unit
	}
	var newWrites []issued

	for beat := 0; beat < 2; beat++ {
		for si := range in.Slots {
			s := &in.Slots[si]
			if int(s.Beat) != beat || s.Op.Kind == ir.Nop {
				continue
			}
			// Reads first: at issue, the op observes the register file
			// after this beat's retirements and before its own write.
			for _, r := range readRegs(&s.Op) {
				idx := regIndex(r)
				if idx < 0 {
					continue
				}
				if alive := pendingAlive(st.pend[idx], beat); alive != 0 && rec {
					c.report(CheckStaleRead, Error, a, beat, s.Unit, true, r.String(),
						"%s reads %s %d beat(s) before its pending write retires",
						mach.OpName(s.Op.Kind), r, bits.TrailingZeros64(alive)-beat)
				}
				// Writes issued in earlier beats of this word are also
				// still in flight (min latency 1 keeps same-beat writes
				// invisible to their own beat).
				if rec {
					for _, w := range newWrites {
						// Same-beat writes are invisible to this read (the
						// operand is fetched at issue): only earlier-beat
						// writes of this word can shadow it.
						if w.idx == idx && w.beat < beat && w.retire > beat {
							c.report(CheckStaleRead, Error, a, beat, s.Unit, true, r.String(),
								"%s reads %s, written in beat %d of the same word with latency %d",
								mach.OpName(s.Op.Kind), r, w.beat, w.retire-w.beat)
						}
					}
				}
				defined := st.defined(idx)
				for _, w := range newWrites {
					if w.idx == idx && w.beat < beat {
						defined = true
					}
				}
				if !defined && rec {
					c.report(CheckUndefRead, Error, a, beat, s.Unit, true, "undef-"+r.String(),
						"%s reads %s, which no path has defined", mach.OpName(s.Op.Kind), r)
				}
			}

			// Functional-unit occupancy (warnings).
			if rec {
				switch s.Unit.Kind {
				case mach.UFM:
					if int(st.fmBusy[s.Unit.Pair]) > beat {
						c.report(CheckFUOccupancy, Warn, a, beat, s.Unit, true, "fm",
							"%s issues on %s while an FDIV occupies the multiplier for %d more beat(s)",
							mach.OpName(s.Op.Kind), s.Unit, int(st.fmBusy[s.Unit.Pair])-beat)
					}
				case mach.UIALU:
					if int(st.ialuBusy[s.Unit.Pair][s.Unit.Idx]) > beat {
						c.report(CheckFUOccupancy, Warn, a, beat, s.Unit, true, "ialu",
							"%s issues on %s while an iterative divide occupies it for %d more beat(s)",
							mach.OpName(s.Op.Kind), s.Unit, int(st.ialuBusy[s.Unit.Pair][s.Unit.Idx])-beat)
					}
				}
			}
			switch s.Op.Kind {
			case ir.FDiv:
				if b := int16(beat + c.cfg.LatFDiv); b > st.fmBusy[s.Unit.Pair] {
					st.fmBusy[s.Unit.Pair] = b
				}
			case ir.Div, ir.Rem:
				if s.Unit.Kind == mach.UIALU {
					if b := int16(beat + writeLatency(c.cfg, &s.Op)); b > st.ialuBusy[s.Unit.Pair][s.Unit.Idx] {
						st.ialuBusy[s.Unit.Pair][s.Unit.Idx] = b
					}
				}
			}

			// The op's own write.
			if !s.Op.Dst.Valid() {
				continue
			}
			idx := regIndex(s.Op.Dst)
			if idx < 0 {
				continue
			}
			retire := beat + writeLatency(c.cfg, &s.Op)
			if rec {
				if alive := pendingAlive(st.pend[idx], beat); alive != 0 {
					if alive&(1<<retire) != 0 {
						c.report(CheckWriteRace, Error, a, beat, s.Unit, true, "race-"+s.Op.Dst.String(),
							"%s writes %s retiring at beat +%d, the same beat as a write already in flight",
							mach.OpName(s.Op.Kind), s.Op.Dst, retire)
					} else if hi := 63 - bits.LeadingZeros64(alive); hi > retire {
						c.report(CheckWAWOverlap, Error, a, beat, s.Unit, true, "waw-"+s.Op.Dst.String(),
							"%s writes %s retiring at beat +%d, but an earlier write retires at +%d and will clobber it",
							mach.OpName(s.Op.Kind), s.Op.Dst, retire, hi)
					} else {
						c.report(CheckWAWOverlap, Warn, a, beat, s.Unit, true, "waw-"+s.Op.Dst.String(),
							"%s writes %s while another write to it is in flight (retires +%d, pending retires +%d)",
							mach.OpName(s.Op.Kind), s.Op.Dst, retire, bits.TrailingZeros64(alive))
					}
				}
				for _, w := range newWrites {
					if w.idx != idx {
						continue
					}
					if w.retire == retire {
						c.report(CheckWriteRace, Error, a, beat, s.Unit, true, "race-"+s.Op.Dst.String(),
							"%s and the %s op in beat %d both write %s retiring at beat +%d",
							mach.OpName(s.Op.Kind), w.unit, w.beat, s.Op.Dst, retire)
					} else if w.retire > retire {
						c.report(CheckWAWOverlap, Error, a, beat, s.Unit, true, "waw-"+s.Op.Dst.String(),
							"%s writes %s retiring at beat +%d, but the %s op's write retires at +%d and will clobber it",
							mach.OpName(s.Op.Kind), s.Op.Dst, retire, w.unit, w.retire)
					} else {
						c.report(CheckWAWOverlap, Warn, a, beat, s.Unit, true, "waw-"+s.Op.Dst.String(),
							"%s writes %s while the %s op's write is still in flight",
							mach.OpName(s.Op.Kind), s.Op.Dst, w.unit)
					}
				}
			}
			newWrites = append(newWrites, issued{idx: idx, retire: retire, reg: s.Op.Dst, beat: beat, unit: s.Unit})
		}
	}

	// Output state: merge the new writes, advance two beats.
	for _, w := range newWrites {
		st.define(w.idx)
		st.pend[w.idx] |= 1 << w.retire
	}
	for idx, mask := range st.pend {
		mask >>= 2
		mask &^= 1 // offset 0 retires before the successor's early reads
		if mask == 0 {
			delete(st.pend, idx)
		} else {
			st.pend[idx] = mask
		}
	}
	for p := range st.fmBusy {
		if st.fmBusy[p] -= 2; st.fmBusy[p] < 0 {
			st.fmBusy[p] = 0
		}
		for i := range st.ialuBusy[p] {
			if st.ialuBusy[p][i] -= 2; st.ialuBusy[p][i] < 0 {
				st.ialuBusy[p][i] = 0
			}
		}
	}
	return st
}
