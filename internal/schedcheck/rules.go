package schedcheck

import (
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// This file re-derives the machine's legality rules from mach.Config and
// the §6 architecture description, independently of the scheduler's
// resource tables (tsched/sched.go) and the simulator's execution model
// (vliw/exec.go). The three implementations must agree; schedcheck is the
// tiebreaker that can examine paths the simulator never executes.

// writeLatency is the pipeline depth of an op's register write in beats:
// the write retires at issue + writeLatency (§6.2: "the destination
// register is specified when the operation is initiated, and a hardware
// control pipeline carries the destination forward"). -1 means the op
// writes no register.
func writeLatency(cfg mach.Config, o *mach.Op) int {
	switch o.Kind {
	case ir.Load, ir.LoadSpec:
		return cfg.LatLoad
	case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return cfg.LatFAdd
	case ir.FMul:
		return cfg.LatFMul
	case ir.FDiv:
		return cfg.LatFDiv
	case ir.Mul:
		return cfg.LatIMul
	case ir.Div, ir.Rem:
		return cfg.LatIDiv
	case ir.ConstF:
		return 2
	case ir.Mov, mach.OpMovSF:
		if o.Type == ir.F64 {
			return cfg.LatMove * 2
		}
		return cfg.LatMove
	case ir.Select:
		if o.Type == ir.F64 {
			return 2
		}
		return 1
	case mach.OpCall:
		return 1 // the link register receives the return address
	}
	return cfg.LatIALU
}

// readRegs collects the physical registers an op reads: every valid
// register operand (immediates and absent operands excluded) plus the
// implicit convention-register reads of HALT and SYSCALL.
func readRegs(o *mach.Op) []mach.PReg {
	var regs []mach.PReg
	for _, a := range []mach.Arg{o.A, o.B, o.C} {
		if !a.IsImm && a.Reg.Valid() {
			regs = append(regs, a.Reg)
		}
	}
	switch o.Kind {
	case mach.OpHalt:
		regs = append(regs, mach.RegRVI)
	case mach.OpSyscall:
		switch o.Sym {
		case "print_i":
			regs = append(regs, mach.PReg{Bank: mach.BankI, Board: 0, Idx: uint8(mach.ArgIBase)})
		case "print_f":
			regs = append(regs, mach.PReg{Bank: mach.BankF, Board: 0, Idx: uint8(mach.ArgFBase)})
		}
	}
	return regs
}

// portReads counts the register-file read ports an op consumes on its
// executing pair — the crossbar reads of its explicit operands. The
// convention-register reads of HALT/SYSCALL go through the runtime
// interface, not the crossbar, matching the machine's accounting.
func portReads(o *mach.Op) int {
	n := 0
	for _, a := range []mach.Arg{o.A, o.B, o.C} {
		if !a.IsImm && a.Reg.Valid() {
			n++
		}
	}
	return n
}

// isMem reports a memory reference (initiated on an I board, occupying the
// PA bus at issue+StagePA and a data bus at issue+StageData).
func isMem(k ir.OpKind) bool {
	return k == ir.Load || k == ir.LoadSpec || k == ir.Store
}

// isBranchKind reports a branch-unit opcode.
func isBranchKind(k ir.OpKind) bool {
	switch k {
	case mach.OpJmp, mach.OpBrT, mach.OpJmpR, mach.OpCall, mach.OpHalt, mach.OpSyscall:
		return true
	}
	return false
}

// legalOnUnit reports whether the opcode can execute on the unit kind.
// Dedicated units take only their own class; moves, selects, and float
// constants are flexible between the F units and (for integer-side data)
// the I ALUs. Memory references always initiate on an I board.
func legalOnUnit(u mach.UnitKind, k ir.OpKind) bool {
	switch u {
	case mach.UBR:
		return isBranchKind(k)
	case mach.UFA:
		switch k {
		case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
			ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE,
			ir.ConstF, ir.Mov, mach.OpMovSF, ir.Select, ir.Nop:
			return true
		}
		return false
	case mach.UFM:
		switch k {
		case ir.FMul, ir.FDiv, ir.ConstF, ir.Mov, mach.OpMovSF, ir.Select, ir.Nop:
			return true
		}
		return false
	case mach.UIALU:
		return !isBranchKind(k) && !isFloatArith(k)
	}
	return false
}

// isFloatArith reports the opcodes owned by the F units.
func isFloatArith(k ir.OpKind) bool {
	switch k {
	case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE,
		ir.FMul, ir.FDiv, ir.ConstF:
		return true
	}
	return false
}

// Register index space: each board owns 64 I + 32 F + 16 SF + 8 B slots.
const (
	regsPerBoard = 64 + 32 + 16 + 8
	maxRegs      = 4 * regsPerBoard
)

// regIndex maps a physical register to a dense index, or -1 if invalid.
func regIndex(r mach.PReg) int {
	base := int(r.Board) * regsPerBoard
	switch r.Bank {
	case mach.BankI:
		if r.Idx >= 64 {
			return -1
		}
		return base + int(r.Idx)
	case mach.BankF:
		if r.Idx >= 32 {
			return -1
		}
		return base + 64 + int(r.Idx)
	case mach.BankSF:
		if r.Idx >= 16 {
			return -1
		}
		return base + 96 + int(r.Idx)
	case mach.BankB:
		if r.Idx >= 8 {
			return -1
		}
		return base + 112 + int(r.Idx)
	}
	return -1
}
