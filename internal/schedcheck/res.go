package schedcheck

import (
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// checkResources verifies the path-independent per-word resource plan for
// every instruction in the image (reachable or not — an unreachable word
// with an illegal plan is still an encoder/scheduler bug worth flagging):
//
//   - at most one op per functional unit per beat, and every op on a unit
//     and beat that can execute it (F units and branches initiate early);
//   - register-file read ports per board per beat (§6: "four reads");
//   - register-file write ports per destination board per retire beat,
//     counting the writes issued within this word (cross-word write-port
//     collisions are inherently global; see DESIGN.md for the caveat);
//   - one memory reference initiated per I board per beat;
//   - PA-bus occupancy at issue+StagePA, store-bus occupancy at the same
//     stage, and load-data bus occupancy at issue+StageData, by bus kind;
//   - cross-board copy traffic on the tagged ILoad/FLoad buses at the
//     write-retire beat (F copies occupy their bus for two beats).
//
// The bus stages are fixed offsets from the issue beat, so two ops collide
// on a bus only when the relevant stages coincide; within one word that
// reduces to per-issue-beat (buses) and per-retire-beat (ports, copies)
// counting.
func (c *checker) checkResources() {
	for a := range c.img.Instrs {
		c.checkWord(a)
	}
}

func (c *checker) checkWord(a int) {
	in := &c.img.Instrs[a]
	cfg := c.cfg

	type unitBeat struct {
		u mach.Unit
		b uint8
	}
	used := map[unitBeat]bool{}
	reads := map[[2]int]int{}   // (pair, beat) -> read ports
	writes := map[[2]int]int{}  // (dest board, retire beat) -> write ports
	memRefs := map[[2]int]int{} // (pair, beat) -> memory references
	pa := map[int]int{}         // issue beat -> PA bus uses
	storeBus := map[int]int{}   // issue beat -> store bus uses
	iLoad := map[int]int{}      // issue beat -> ILoad data returns
	fLoad := map[int]int{}      // issue beat -> FLoad data returns
	iCopy := map[int]int{}      // retire beat -> cross-board I copies
	fCopy := map[int]int{}      // retire beat -> cross-board F copies

	for si := range in.Slots {
		s := &in.Slots[si]
		beat := int(s.Beat)

		// Unit sanity and double-booking.
		if int(s.Unit.Pair) >= cfg.Pairs || (s.Unit.Kind == mach.UIALU && s.Unit.Idx > 1) {
			c.report(CheckBadSlot, Error, a, beat, s.Unit, true, s.Unit.String()+"-range",
				"slot on unit %s, which machine %s does not have", s.Unit, cfg.Name)
			continue
		}
		ub := unitBeat{s.Unit, s.Beat}
		if used[ub] {
			c.report(CheckUnitConflict, Error, a, beat, s.Unit, true, s.Unit.String(),
				"two ops on unit %s in one beat", s.Unit)
		}
		used[ub] = true

		// Op/unit/beat compatibility.
		if !legalOnUnit(s.Unit.Kind, s.Op.Kind) {
			c.report(CheckBadSlot, Error, a, beat, s.Unit, true, "kind-"+s.Unit.String(),
				"%s cannot execute on %s", mach.OpName(s.Op.Kind), s.Unit)
			continue
		}
		if beat != 0 && (s.Unit.Kind == mach.UBR || s.Unit.Kind == mach.UFA || s.Unit.Kind == mach.UFM) {
			c.report(CheckBadSlot, Error, a, beat, s.Unit, true, "beat-"+s.Unit.String(),
				"%s issues in the late beat; %s ops initiate early only", mach.OpName(s.Op.Kind), s.Unit)
		}
		if s.Op.Kind == ir.Nop {
			continue
		}

		pair := int(s.Unit.Pair)
		reads[[2]int{pair, beat}] += portReads(&s.Op)

		if s.Op.Dst.Valid() {
			lat := writeLatency(cfg, &s.Op)
			retire := beat + lat
			db := int(s.Op.Dst.Board)
			writes[[2]int{db, retire}]++
			// Non-load cross-board writes ride the tagged data buses.
			if db != pair && !isMem(s.Op.Kind) && s.Unit.Kind != mach.UBR {
				if s.Op.Dst.Bank == mach.BankF {
					fCopy[retire]++
					fCopy[retire-1]++ // 64 bits = two bus beats
				} else {
					iCopy[retire]++
				}
			}
		}

		if isMem(s.Op.Kind) {
			memRefs[[2]int{pair, beat}]++
			pa[beat]++
			if s.Op.Kind == ir.Store {
				storeBus[beat]++
			} else if s.Op.Dst.Bank == mach.BankF {
				fLoad[beat]++
			} else {
				iLoad[beat]++
			}
		}
	}

	for k, n := range reads {
		if n > cfg.RFReadPorts {
			c.report(CheckReadPorts, Error, a, k[1], mach.Unit{}, false, "",
				"board %d: %d register-file reads in one beat (max %d)", k[0], n, cfg.RFReadPorts)
		}
	}
	for k, n := range writes {
		if n > cfg.RFWritePorts {
			c.report(CheckWritePorts, Error, a, -1, mach.Unit{}, false, "",
				"board %d: %d register-file writes retire together at beat +%d (max %d)",
				k[0], n, k[1], cfg.RFWritePorts)
		}
	}
	for k, n := range memRefs {
		if n > 1 {
			c.report(CheckMemRefs, Error, a, k[1], mach.Unit{}, false, "",
				"I board %d initiates %d memory references in one beat (max 1)", k[0], n)
		}
	}
	for b, n := range pa {
		if n > cfg.PABuses {
			c.report(CheckPABus, Error, a, b, mach.Unit{}, false, "",
				"%d physical-address bus uses in one beat (max %d)", n, cfg.PABuses)
		}
	}
	for b, n := range storeBus {
		if n > cfg.StoreBuses {
			c.report(CheckStoreBus, Error, a, b, mach.Unit{}, false, "",
				"%d store-bus uses in one beat (max %d)", n, cfg.StoreBuses)
		}
	}
	for b, n := range iLoad {
		if n > cfg.ILoadBuses {
			c.report(CheckLoadBus, Error, a, b, mach.Unit{}, false, "iload",
				"%d ILoad-bus data returns in one beat (max %d)", n, cfg.ILoadBuses)
		}
	}
	for b, n := range fLoad {
		if n > cfg.FLoadBuses {
			c.report(CheckLoadBus, Error, a, b, mach.Unit{}, false, "fload",
				"%d FLoad-bus data returns in one beat (max %d)", n, cfg.FLoadBuses)
		}
	}
	for b, n := range iCopy {
		if n > cfg.ILoadBuses {
			c.report(CheckCopyBus, Error, a, -1, mach.Unit{}, false, "iload",
				"%d cross-board integer copies on the ILoad buses at beat +%d (max %d)", n, b, cfg.ILoadBuses)
		}
	}
	for b, n := range fCopy {
		if n > cfg.FLoadBuses {
			c.report(CheckCopyBus, Error, a, -1, mach.Unit{}, false, "fload",
				"%d cross-board float copies on the FLoad buses at beat +%d (max %d)", n, b, cfg.FLoadBuses)
		}
	}
}
