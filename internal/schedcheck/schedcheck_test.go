package schedcheck

import (
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// Synthetic-image tests: each check is exercised by a hand-built decoded
// image whose single defect is the one under test, so the diagnosis (and
// its word/beat/unit attribution) is deterministic.

func ireg(idx uint8) mach.PReg { return mach.PReg{Bank: mach.BankI, Board: 0, Idx: idx} }
func freg(idx uint8) mach.PReg { return mach.PReg{Bank: mach.BankF, Board: 0, Idx: idx} }

func regArg(r mach.PReg) mach.Arg { return mach.Arg{Reg: r} }
func immArg(v int32) mach.Arg     { return mach.Arg{IsImm: true, Imm: v} }

func ialuSlot(idx uint8, beat uint8, op mach.Op) mach.SlotOp {
	return mach.SlotOp{Unit: mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: idx}, Beat: beat, Op: op}
}

func brSlot(op mach.Op) mach.SlotOp {
	return mach.SlotOp{Unit: mach.Unit{Kind: mach.UBR, Pair: 0}, Beat: 0, Op: op}
}

func haltInstr() mach.Instr {
	return mach.Instr{Slots: []mach.SlotOp{brSlot(mach.Op{Kind: mach.OpHalt})}}
}

// image wraps instructions as a one-function ("main") linked image.
func image(cfg mach.Config, instrs ...mach.Instr) *isa.Image {
	return &isa.Image{
		Cfg:      cfg,
		Instrs:   instrs,
		Entry:    0,
		FuncBase: map[string]int{"main": 0},
		FuncLen:  map[string]int{"main": len(instrs)},
	}
}

// defRVI defines the halt convention register so clean-image tests are
// clean: ConstI 0 -> i0.3 with latency 1.
func defRVI() mach.Instr {
	return mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.ConstI, Type: ir.I32, Dst: mach.RegRVI, A: immArg(0)}),
	}}
}

func counts(t *testing.T, rep *Report, check string) int {
	t.Helper()
	return rep.Counts[check]
}

func wantError(t *testing.T, rep *Report, check string) Finding {
	t.Helper()
	for _, f := range rep.Findings {
		if f.Check == check {
			if f.Sev != Error {
				t.Fatalf("%s reported as %s, want error", check, f.Sev)
			}
			return f
		}
	}
	t.Fatalf("expected a %s finding; got %v", check, rep.Findings)
	return Finding{}
}

func TestCleanTinyImage(t *testing.T) {
	img := image(mach.Trace7(), defRVI(), haltInstr())
	rep := Check(img, Options{})
	if len(rep.Findings) != 0 {
		t.Fatalf("clean image produced findings: %v", rep.Findings)
	}
	if rep.Words != 2 || rep.Reachable != 2 {
		t.Fatalf("words=%d reachable=%d, want 2/2", rep.Words, rep.Reachable)
	}
}

func TestStaleRead(t *testing.T) {
	// Load i0.5 (latency 7) then read it in the very next word: the read
	// issues 5 beats before the write retires.
	load := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Load, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(-8)}),
	}}
	use := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: mach.RegRVI, A: regArg(ireg(5)), B: immArg(1)}),
	}}
	img := image(mach.Trace7(), load, use, haltInstr())
	rep := Check(img, Options{})
	f := wantError(t, rep, CheckStaleRead)
	if f.Word != 1 || f.Beat != 0 || f.Unit != "ialu0.0" {
		t.Fatalf("stale-read attribution = word=%d beat=%d unit=%s, want word=1 beat=0 unit=ialu0.0", f.Word, f.Beat, f.Unit)
	}
	if !strings.Contains(f.Msg, "i0.5") {
		t.Fatalf("message does not name the register: %s", f.Msg)
	}
}

func TestStaleReadHealsAfterLatency(t *testing.T) {
	// The same read four words later: 8 beats have elapsed, the load (7
	// beats) has retired, and the schedule is legal.
	load := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Load, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(-8)}),
	}}
	use := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: mach.RegRVI, A: regArg(ireg(5)), B: immArg(1)}),
	}}
	img := image(mach.Trace7(), load, mach.Instr{}, mach.Instr{}, mach.Instr{}, use, haltInstr())
	rep := Check(img, Options{})
	if n := counts(t, rep, CheckStaleRead); n != 0 {
		t.Fatalf("legal latency spacing flagged: %v", rep.Findings)
	}
	// One word earlier the write is still one beat in flight.
	img2 := image(mach.Trace7(), load, mach.Instr{}, mach.Instr{}, use, haltInstr())
	rep2 := Check(img2, Options{})
	if n := counts(t, rep2, CheckStaleRead); n == 0 {
		t.Fatalf("read one beat inside the shadow not flagged")
	}
}

func TestWriteRaceAndWAWOverlap(t *testing.T) {
	// Two same-latency writes to one register in one beat: race.
	race := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(1)}),
		ialuSlot(1, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(2)}),
	}}
	img := image(mach.Trace7(), defRVI(), race, haltInstr())
	f := wantError(t, Check(img, Options{}), CheckWriteRace)
	if f.Word != 1 || f.Unit == "" {
		t.Fatalf("write-race attribution: %+v", f)
	}

	// A multiply (4 beats) already in flight when an add (1 beat) writes
	// the same register: overlap, convertible to a race by any stall.
	waw := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Mul, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(3)}),
		ialuSlot(1, 1, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(4)}),
	}}
	img2 := image(mach.Trace7(), defRVI(), waw, haltInstr())
	wantError(t, Check(img2, Options{}), CheckWAWOverlap)
}

func TestUndefRead(t *testing.T) {
	use := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: mach.RegRVI, A: regArg(ireg(9)), B: immArg(1)}),
	}}
	img := image(mach.Trace7(), use, haltInstr())
	f := wantError(t, Check(img, Options{}), CheckUndefRead)
	if !strings.Contains(f.Msg, "i0.9") {
		t.Fatalf("message does not name the register: %s", f.Msg)
	}
}

func TestUndefReadJoinIsPathSensitive(t *testing.T) {
	// i0.5 defined on only one side of a diamond and read after the join:
	// must-defined intersects away the definition.
	cond := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.CmpEQ, Type: ir.I32, Dst: mach.PReg{Bank: mach.BankB, Board: 0, Idx: 0},
			A: regArg(mach.RegSP), B: immArg(0)}),
	}}
	branch := mach.Instr{Slots: []mach.SlotOp{
		brSlot(mach.Op{Kind: mach.OpBrT, A: regArg(mach.PReg{Bank: mach.BankB, Board: 0, Idx: 0}), Target: 4}),
	}}
	def := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.ConstI, Type: ir.I32, Dst: ireg(5), A: immArg(7)}),
	}}
	// word 3 falls through to the join at word 4; the branch skips the def.
	join := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: mach.RegRVI, A: regArg(ireg(5)), B: immArg(0)}),
	}}
	img := image(mach.Trace7(), cond, branch, def, mach.Instr{}, join, haltInstr())
	wantError(t, Check(img, Options{}), CheckUndefRead)

	// With the definition hoisted above the branch, both paths define it.
	img2 := image(mach.Trace7(), cond, def, branch, mach.Instr{}, join, haltInstr())
	img2.Instrs[2].Slots[0].Op.Target = 4
	rep := Check(img2, Options{})
	if n := counts(t, rep, CheckUndefRead); n != 0 {
		t.Fatalf("dominating definition still flagged: %v", rep.Findings)
	}
}

func TestUnitConflict(t *testing.T) {
	in := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.ConstI, Type: ir.I32, Dst: ireg(5), A: immArg(1)}),
		ialuSlot(0, 0, mach.Op{Kind: ir.ConstI, Type: ir.I32, Dst: ireg(6), A: immArg(2)}),
	}}
	img := image(mach.Trace7(), defRVI(), in, haltInstr())
	f := wantError(t, Check(img, Options{}), CheckUnitConflict)
	if f.Unit != "ialu0.0" || f.Word != 1 {
		t.Fatalf("unit-conflict attribution: %+v", f)
	}
}

func TestReadPortOverflow(t *testing.T) {
	// Both I ALUs plus both F units read two registers each in the early
	// beat: eight crossbar reads against four ports.
	add := func(idx uint8, dst uint8) mach.SlotOp {
		return ialuSlot(idx, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: ireg(dst),
			A: regArg(mach.RegSP), B: regArg(mach.RegSP)})
	}
	fslot := func(k mach.UnitKind, kind ir.OpKind, dst uint8) mach.SlotOp {
		return mach.SlotOp{Unit: mach.Unit{Kind: k, Pair: 0}, Beat: 0, Op: mach.Op{
			Kind: kind, Type: ir.F64, Dst: freg(dst), A: regArg(freg(2)), B: regArg(freg(2))}}
	}
	in := mach.Instr{Slots: []mach.SlotOp{
		add(0, 5), add(1, 6),
		fslot(mach.UFA, ir.FAdd, 4), fslot(mach.UFM, ir.FMul, 5),
	}}
	img := image(mach.Trace7(), defRVI(), in, haltInstr())
	f := wantError(t, Check(img, Options{}), CheckReadPorts)
	if f.Word != 1 || f.Beat != 0 {
		t.Fatalf("read-ports attribution: %+v", f)
	}
}

func TestWritePortOverflow(t *testing.T) {
	// Eight adds across the four pairs of a Trace 28, all retiring into
	// board 0 one beat later: eight write ports against four.
	var in mach.Instr
	for p := uint8(0); p < 4; p++ {
		for idx := uint8(0); idx < 2; idx++ {
			in.Slots = append(in.Slots, mach.SlotOp{
				Unit: mach.Unit{Kind: mach.UIALU, Pair: p, Idx: idx}, Beat: 0,
				Op: mach.Op{Kind: ir.ConstI, Type: ir.I32, Dst: ireg(10 + p*2 + idx), A: immArg(1)},
			})
		}
	}
	img := image(mach.Trace28(), defRVI(), in, haltInstr())
	wantError(t, Check(img, Options{}), CheckWritePorts)
}

func TestMemPerBoardAndBuses(t *testing.T) {
	// Two loads initiated on one I board in one beat.
	in := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Load, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(-8)}),
		ialuSlot(1, 0, mach.Op{Kind: ir.Load, Type: ir.I32, Dst: ireg(6), A: regArg(mach.RegSP), B: immArg(-16)}),
	}}
	img := image(mach.Trace7(), defRVI(), in, haltInstr())
	wantError(t, Check(img, Options{}), CheckMemRefs)
}

func TestBadBranchAndFallOff(t *testing.T) {
	jmp := mach.Instr{Slots: []mach.SlotOp{brSlot(mach.Op{Kind: mach.OpJmp, Target: 99})}}
	img := image(mach.Trace7(), defRVI(), jmp)
	rep := Check(img, Options{})
	f := wantError(t, rep, CheckBadBranch)
	if f.Word != 1 {
		t.Fatalf("bad-branch attribution: %+v", f)
	}

	noHalt := image(mach.Trace7(), defRVI(), mach.Instr{})
	wantError(t, Check(noHalt, Options{}), CheckFallOff)
}

func TestUnreachableWarning(t *testing.T) {
	jmp := mach.Instr{Slots: []mach.SlotOp{brSlot(mach.Op{Kind: mach.OpJmp, Target: 2})}}
	dead := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.ConstI, Type: ir.I32, Dst: ireg(5), A: immArg(1)}),
	}}
	img := image(mach.Trace7(), jmp, dead, defRVI(), haltInstr())
	rep := Check(img, Options{})
	if len(rep.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", rep.Errors())
	}
	ws := rep.Warnings()
	if len(ws) != 1 || ws[0].Check != CheckUnreachable || ws[0].Word != 1 {
		t.Fatalf("want one unreachable warning at word 1, got %v", ws)
	}
}

func TestFUOccupancyWarning(t *testing.T) {
	cf := func(dst uint8, v float64) mach.Instr {
		return mach.Instr{Slots: []mach.SlotOp{{
			Unit: mach.Unit{Kind: mach.UFA, Pair: 0}, Beat: 0,
			Op: mach.Op{Kind: ir.ConstF, Type: ir.F64, Dst: freg(dst), FImm: v},
		}}}
	}
	fdiv := mach.Instr{Slots: []mach.SlotOp{{
		Unit: mach.Unit{Kind: mach.UFM, Pair: 0}, Beat: 0,
		Op: mach.Op{Kind: ir.FDiv, Type: ir.F64, Dst: freg(4), A: regArg(freg(2)), B: regArg(freg(3))},
	}}}
	fmul := mach.Instr{Slots: []mach.SlotOp{{
		Unit: mach.Unit{Kind: mach.UFM, Pair: 0}, Beat: 0,
		Op: mach.Op{Kind: ir.FMul, Type: ir.F64, Dst: freg(5), A: regArg(freg(2)), B: regArg(freg(3))},
	}}}
	img := image(mach.Trace7(), cf(2, 1), cf(3, 2), mach.Instr{}, fdiv, fmul, defRVI(), haltInstr())
	rep := Check(img, Options{})
	if len(rep.Errors()) != 0 {
		t.Fatalf("unexpected errors: %v", rep.Errors())
	}
	found := false
	for _, w := range rep.Warnings() {
		if w.Check == CheckFUOccupancy && w.Word == 4 && w.Unit == "fm0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("want fu-occupancy warning at word 4 on fm0, got %v", rep.Warnings())
	}
}

func TestShadowPropagatesThroughBranch(t *testing.T) {
	// A branch jumps into a word that reads a register whose write is
	// still in flight along the branch path — the hazard is only visible
	// across the CFG edge.
	load := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Load, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(-8)}),
	}}
	jmp := mach.Instr{Slots: []mach.SlotOp{brSlot(mach.Op{Kind: mach.OpJmp, Target: 3})}}
	use := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: mach.RegRVI, A: regArg(ireg(5)), B: immArg(1)}),
	}}
	img := image(mach.Trace7(), load, jmp, mach.Instr{}, use, haltInstr())
	f := wantError(t, Check(img, Options{}), CheckStaleRead)
	if f.Word != 3 {
		t.Fatalf("shadow read attributed to word %d, want 3", f.Word)
	}
}
