package schedcheck

import (
	"sort"

	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// CFG reconstructs and returns the image's machine-level control-flow
// graph: succ[w] lists the instruction words control can reach from word w
// (per the §6.5.2 successor rules buildCFG implements), and reachable[w]
// reports whether any path from the entry point reaches w. Structural
// findings the reconstruction would normally report are discarded; callers
// that want them run Check. The export exists for sibling analyses — the
// value-range safety interpretation (internal/safecheck) runs its fixpoint
// over exactly this graph, so the two verifiers cannot disagree about what
// "every path" means.
func CFG(img *isa.Image) (succ [][]int, reachable []bool) {
	c := &checker{
		img:  img,
		cfg:  img.Cfg,
		rep:  &Report{Counts: map[string]int{}, Words: len(img.Instrs), img: img},
		seen: map[findKey]bool{},
	}
	c.buildCFG()
	return c.succ, c.reachable
}

// buildCFG reconstructs the machine-level control-flow graph from the
// decoded instruction words. Successor rules mirror §6.5.2 and the
// simulator's arbitration: every true branch test is a candidate, HALT
// overrides any taken branch, SYSCALL is a runtime call that falls
// through, CALL transfers to the callee's entry (the return edge is added
// at the callee's JMPR, targeting every return site), and an instruction
// with no always-taken transfer falls through to word+1.
//
// Structural findings diagnosed here: branch targets outside the image,
// calls that do not land on a function entry, returns outside any
// function, and fallthrough past the end of the image. Reachability is
// computed from the entry point; unreachable non-empty words are warnings
// (the instruction stream may legitimately carry never-entered
// compensation blocks, but dead words are worth knowing about).
func (c *checker) buildCFG() {
	n := len(c.img.Instrs)
	c.succ = make([][]int, n)
	c.reachable = make([]bool, n)

	// Function table sorted by base address.
	for name := range c.img.FuncBase {
		c.fnames = append(c.fnames, name)
	}
	sort.Slice(c.fnames, func(i, j int) bool {
		return c.img.FuncBase[c.fnames[i]] < c.img.FuncBase[c.fnames[j]]
	})
	isEntry := map[int]bool{}
	for _, name := range c.fnames {
		c.fbases = append(c.fbases, c.img.FuncBase[name])
		c.flens = append(c.flens, c.img.FuncLen[name])
		isEntry[c.img.FuncBase[name]] = true
	}

	// First pass: collect call sites so JMPR return edges are known.
	// retSites[calleeBase] lists the words control returns to.
	retSites := map[int][]int{}
	for a := 0; a < n; a++ {
		for _, s := range c.img.Instrs[a].Slots {
			if s.Unit.Kind == mach.UBR && s.Op.Kind == mach.OpCall {
				retSites[s.Op.Target] = append(retSites[s.Op.Target], a+1)
			}
		}
	}

	for a := 0; a < n; a++ {
		var targets []int
		transfer := false // an always-taken transfer exists
		halt := false
		for si := range c.img.Instrs[a].Slots {
			s := &c.img.Instrs[a].Slots[si]
			if s.Unit.Kind != mach.UBR {
				continue
			}
			switch s.Op.Kind {
			case mach.OpBrT:
				if c.checkTarget(a, s, s.Op.Target) {
					targets = append(targets, s.Op.Target)
				}
			case mach.OpJmp:
				transfer = true
				if c.checkTarget(a, s, s.Op.Target) {
					targets = append(targets, s.Op.Target)
				}
			case mach.OpCall:
				transfer = true
				if c.checkTarget(a, s, s.Op.Target) {
					if !isEntry[s.Op.Target] {
						c.report(CheckBadBranch, Error, a, int(s.Beat), s.Unit, true, "call-entry",
							"call lands at word %d, inside a function body (not a function entry)", s.Op.Target)
					}
					targets = append(targets, s.Op.Target)
				}
			case mach.OpJmpR:
				transfer = true
				// Return: control resumes at every return site of the
				// containing function. A jmpr in main (or outside any
				// function) with no callers has no successors.
				fn := c.funcOf(a)
				if fn == "" {
					c.report(CheckBadBranch, Error, a, int(s.Beat), s.Unit, true, "jmpr-nofunc",
						"jmpr outside any function body")
					break
				}
				for _, ret := range retSites[c.img.FuncBase[fn]] {
					if ret < n {
						targets = append(targets, ret)
					}
				}
			case mach.OpHalt:
				halt = true
			case mach.OpSyscall:
				// runtime service; falls through
			}
		}
		switch {
		case halt:
			// §6.5.2 arbitration with the simulator's semantics: HALT ends
			// the run even when another branch test is true.
			c.succ[a] = nil
		case transfer:
			c.succ[a] = targets
		default:
			if a+1 >= n {
				c.report(CheckFallOff, Error, a, -1, mach.Unit{}, false, "",
					"instruction falls through past the end of the image")
			} else {
				targets = append(targets, a+1)
			}
			c.succ[a] = targets
		}
	}

	// Reachability from the entry point.
	if n == 0 {
		return
	}
	work := []int{c.img.Entry}
	if c.img.Entry >= 0 && c.img.Entry < n {
		c.reachable[c.img.Entry] = true
	}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		for _, t := range c.succ[a] {
			if t >= 0 && t < n && !c.reachable[t] {
				c.reachable[t] = true
				work = append(work, t)
			}
		}
	}
	for a := 0; a < n; a++ {
		if c.reachable[a] {
			c.rep.Reachable++
		} else if len(c.img.Instrs[a].Slots) > 0 {
			c.report(CheckUnreachable, Warn, a, -1, mach.Unit{}, false, "",
				"no path from the entry point reaches this non-empty word")
		}
	}
}

// checkTarget validates a branch target, reporting and returning false when
// it points outside the image.
func (c *checker) checkTarget(a int, s *mach.SlotOp, target int) bool {
	if target < 0 || target >= len(c.img.Instrs) {
		c.report(CheckBadBranch, Error, a, int(s.Beat), s.Unit, true, "range",
			"%s target %d outside the image [0,%d)", mach.OpName(s.Op.Kind), target, len(c.img.Instrs))
		return false
	}
	return true
}
