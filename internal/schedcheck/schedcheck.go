// Package schedcheck is a whole-image static verifier of the no-interlock
// schedule contract. The TRACE has no scoreboards, interlocks, or bus
// arbiters (§6): the compiler statically owns every register-file port,
// bus, functional unit, and pipeline beat, and a schedule that oversteps
// any of them silently corrupts state on real hardware. The simulator
// (internal/vliw) enforces the contract dynamically — but only on the beats
// a run actually executes, so an illegal schedule on a cold off-trace path
// (exactly where compensation-code bugs live) ships without a trap.
//
// schedcheck closes that gap: it analyzes the linked, *decoded* isa.Image —
// the same artifact the machine executes — and proves the contract over
// every path. It deliberately shares no legality code with vliw/exec.go or
// tsched/sched.go; the rules are re-derived from mach.Config in rules.go so
// the checker is a true second implementation. A schedule the scheduler
// believes legal, the simulator executes cleanly, and the checker rejects
// (or vice versa) is a bug in one of the three.
//
// The analysis has three layers:
//
//  1. CFG reconstruction (cfg.go): successors of every instruction word are
//     recomputed from the decoded branch slots — multiway-branch priority,
//     halt override, call/return edges via FuncBase — flagging branch
//     targets outside the image, calls into the middle of a function,
//     falls off the end, and unreachable non-empty words.
//
//  2. Per-word resource legality (res.go): unit double-booking, per-board
//     register-file read/write port limits, the one-memory-reference-per-
//     I-board rule, and PA/store/load/copy bus occupancy, checked locally
//     for each instruction word.
//
//  3. In-flight-write dataflow (flow.go): a fixpoint analysis over the CFG
//     tracking, for every physical register, whether it is defined on all
//     paths (must-defined, intersected at joins) and which pipeline writes
//     to it are still in flight (may-pending, unioned at joins). It flags
//     reads that land inside a pending write's latency shadow, write-write
//     races reachable on any path, and uses of never-defined registers —
//     including paths entered by a branch that lands mid-shadow.
//
// Findings carry the instruction word index, beat, and functional unit, and
// — when a SourceMap built from the compiler's tsched.FuncCode metadata is
// supplied — the containing function and source line, so static findings
// and dynamic vliw traps are cross-referenceable.
package schedcheck

import (
	"fmt"
	"sort"
	"strings"

	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/tsched"
)

// Severity classifies a finding. Errors are violations of the §6 contract
// that can corrupt architectural state; warnings are suspicious but
// survivable facts (dead code, functional-unit occupancy overlaps that the
// per-trace scheduler cannot see across traces).
type Severity int

const (
	// Warn marks a finding that does not corrupt state by itself.
	Warn Severity = iota
	// Error marks a contract violation: on the interlock-free machine it
	// reads stale data, drops a write, or transfers control outside code.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Check names, in report order. Each is an independently derived rule; see
// the package comment and DESIGN.md for the inventory.
const (
	CheckBadBranch    = "bad-branch"    // branch/call target outside code or mid-function
	CheckFallOff      = "fall-off"      // fallthrough past the end of the image
	CheckUnreachable  = "unreachable"   // non-empty word no path reaches (warning)
	CheckUnitConflict = "unit-conflict" // two ops on one functional unit in one beat
	CheckBadSlot      = "bad-slot"      // op on a unit/beat that cannot execute it
	CheckReadPorts    = "read-ports"    // register-file read ports oversubscribed
	CheckWritePorts   = "write-ports"   // register-file write ports oversubscribed
	CheckMemRefs      = "mem-refs"      // >1 memory reference initiated per I board
	CheckPABus        = "pa-bus"        // physical-address buses oversubscribed
	CheckStoreBus     = "store-bus"     // store buses oversubscribed
	CheckLoadBus      = "load-bus"      // load data return buses oversubscribed
	CheckCopyBus      = "copy-bus"      // cross-board copy bus oversubscribed
	CheckStaleRead    = "stale-read"    // read before a pending write lands
	CheckWriteRace    = "write-race"    // two writes retire into one register in one beat
	CheckWAWOverlap   = "waw-overlap"   // two in-flight writes to one register (error if retire order inverts)
	CheckUndefRead    = "undef-read"    // read of a register no path defines
	CheckFUOccupancy  = "fu-occupancy"  // iterative-divide unit occupancy overlap (warning)
)

// allChecks lists every check in summary order.
var allChecks = []string{
	CheckBadBranch, CheckFallOff, CheckUnreachable,
	CheckUnitConflict, CheckBadSlot,
	CheckReadPorts, CheckWritePorts, CheckMemRefs,
	CheckPABus, CheckStoreBus, CheckLoadBus, CheckCopyBus,
	CheckStaleRead, CheckWriteRace, CheckWAWOverlap, CheckUndefRead,
	CheckFUOccupancy,
}

// Finding is one diagnosed violation, attributed to an instruction word and
// — where the check is beat- or unit-specific — the beat and functional
// unit, plus the containing function and source line when a SourceMap is
// available.
type Finding struct {
	Check string
	Sev   Severity
	Word  int    // instruction word index (address in the image)
	Beat  int    // 0 = early, 1 = late, -1 when not beat-specific
	Unit  string // functional unit name, "" when not unit-specific
	Func  string // containing function ("" if outside every function)
	Line  int    // source line via tsched.FuncCode (0 = unknown)
	Msg   string
}

func (f *Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s[%s] word=%d", f.Sev, f.Check, f.Word)
	if f.Beat >= 0 {
		fmt.Fprintf(&b, " beat=%d", f.Beat)
	}
	if f.Unit != "" {
		fmt.Fprintf(&b, " unit=%s", f.Unit)
	}
	if f.Func != "" {
		if f.Line > 0 {
			fmt.Fprintf(&b, " (%s:%d)", f.Func, f.Line)
		} else {
			fmt.Fprintf(&b, " (%s)", f.Func)
		}
	}
	fmt.Fprintf(&b, ": %s", f.Msg)
	return b.String()
}

// Report is the outcome of a Check run.
type Report struct {
	Findings  []Finding // all findings, in (word, beat, check) order
	Counts    map[string]int
	Words     int // instruction words in the image
	Reachable int // words reachable from the entry point

	img *isa.Image // the image Check analyzed (for Certify)
}

// Errors returns the error-severity findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev == Error {
			out = append(out, f)
		}
	}
	return out
}

// Warnings returns the warning-severity findings.
func (r *Report) Warnings() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev == Warn {
			out = append(out, f)
		}
	}
	return out
}

// Err returns an error summarizing the error-severity findings, or nil if
// the image passed.
func (r *Report) Err() error {
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schedcheck: %d error(s):", len(errs))
	for i := range errs {
		if i == 8 {
			fmt.Fprintf(&b, "\n  ... and %d more", len(errs)-i)
			break
		}
		fmt.Fprintf(&b, "\n  %s", errs[i].String())
	}
	return fmt.Errorf("%s", b.String())
}

// Summary renders the per-check counts table (the tracelint -v output).
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedcheck: %d words, %d reachable\n", r.Words, r.Reachable)
	for _, c := range allChecks {
		fmt.Fprintf(&b, "  %-14s %d\n", c, r.Counts[c])
	}
	return b.String()
}

// SourceMap resolves (instruction word, unit, beat) to the containing
// function and source line, for diagnostics. See NewSourceMap.
type SourceMap func(word int, unit mach.Unit, beat uint8) (fn string, line int)

// Options configures a Check run.
type Options struct {
	// Src attributes findings to function + source line (optional).
	Src SourceMap
	// NoResource skips the port/bus/unit occupancy checks; it is forced for
	// Ideal images, whose central register file has unbounded ports.
	NoResource bool
}

// Check verifies the image and returns the report. It never modifies the
// image.
func Check(img *isa.Image, opts Options) *Report {
	if img.Cfg.Ideal {
		opts.NoResource = true
	}
	c := &checker{
		img:  img,
		cfg:  img.Cfg,
		opts: opts,
		rep:  &Report{Counts: map[string]int{}, Words: len(img.Instrs), img: img},
		seen: map[findKey]bool{},
	}
	c.buildCFG()
	if !opts.NoResource {
		c.checkResources()
	}
	c.flow()
	sort.SliceStable(c.rep.Findings, func(i, j int) bool {
		a, b := &c.rep.Findings[i], &c.rep.Findings[j]
		if a.Word != b.Word {
			return a.Word < b.Word
		}
		if a.Beat != b.Beat {
			return a.Beat < b.Beat
		}
		return a.Check < b.Check
	})
	return c.rep
}

// findKey deduplicates findings: one report per (word, check, detail site).
type findKey struct {
	word  int
	check string
	site  string
}

type checker struct {
	img  *isa.Image
	cfg  mach.Config
	opts Options
	rep  *Report
	seen map[findKey]bool

	// CFG (built by buildCFG).
	succ      [][]int
	reachable []bool

	// function table, sorted by base address
	fnames []string
	fbases []int
	flens  []int
}

// report records a finding, deduplicating by (word, check, site).
func (c *checker) report(check string, sev Severity, word, beat int, unit mach.Unit, haveUnit bool, site, format string, args ...any) {
	k := findKey{word, check, site}
	if c.seen[k] {
		return
	}
	c.seen[k] = true
	f := Finding{
		Check: check, Sev: sev, Word: word, Beat: beat, Msg: fmt.Sprintf(format, args...),
	}
	if haveUnit {
		f.Unit = unit.String()
	}
	f.Func = c.funcOf(word)
	if c.opts.Src != nil && haveUnit && beat >= 0 {
		fn, line := c.opts.Src(word, unit, uint8(beat))
		if fn != "" {
			f.Func = fn
		}
		f.Line = line
	}
	c.rep.Findings = append(c.rep.Findings, f)
	c.rep.Counts[check]++
}

// funcOf names the function containing an instruction word.
func (c *checker) funcOf(word int) string {
	i := sort.SearchInts(c.fbases, word+1) - 1
	if i < 0 || i >= len(c.fbases) {
		return ""
	}
	if word >= c.fbases[i]+c.flens[i] {
		return ""
	}
	return c.fnames[i]
}

// NewSourceMap builds a SourceMap from the linked image and the compiler's
// per-function code (core.Result.Funcs): the word index is split into
// (function, local instruction) via the link-time layout, and the slot is
// matched by (unit, beat) against the pre-encode instruction, whose slots
// carry source-line metadata.
func NewSourceMap(img *isa.Image, funcs []*tsched.FuncCode) SourceMap {
	byName := map[string]*tsched.FuncCode{}
	for _, fc := range funcs {
		byName[fc.Name] = fc
	}
	var names []string
	var bases []int
	for name, base := range img.FuncBase {
		names = append(names, name)
		_ = base
	}
	sort.Slice(names, func(i, j int) bool { return img.FuncBase[names[i]] < img.FuncBase[names[j]] })
	for _, n := range names {
		bases = append(bases, img.FuncBase[n])
	}
	return func(word int, unit mach.Unit, beat uint8) (string, int) {
		i := sort.SearchInts(bases, word+1) - 1
		if i < 0 {
			return "", 0
		}
		name := names[i]
		fc := byName[name]
		if fc == nil {
			return name, 0
		}
		local := word - bases[i]
		if local < 0 || local >= len(fc.Instrs) {
			return name, 0
		}
		for si := range fc.Instrs[local].Slots {
			s := &fc.Instrs[local].Slots[si]
			if s.Unit == unit && s.Beat == beat {
				if si < len(fc.Lines[local]) {
					return name, int(fc.Lines[local][si])
				}
				return name, 0
			}
		}
		return name, 0
	}
}
