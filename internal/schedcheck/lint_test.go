package schedcheck_test

// Whole-compiler tests: the checker must accept everything the compiler
// produces (the clean-matrix test) and reject schedules corrupted by
// realistic encoder/scheduler bugs (the mutation tests, which perturb real
// compiled images and assert the corruption is caught with word/beat/unit
// attribution). These live in an external test package because they drive
// internal/core, which will itself import schedcheck.

import (
	"context"
	"os"
	"testing"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/schedcheck"
)

var optLevels = []struct {
	name string
	opt  opt.Options
}{
	{"O0", opt.None()},
	{"O1", opt.Options{Inline: true, UnrollFactor: 4}},
	{"O2", opt.Default()},
}

var machines = []struct {
	name string
	cfg  mach.Config
}{
	{"trace7", mach.Trace7()},
	{"trace14", mach.Trace14()},
	{"trace28", mach.Trace28()},
}

func compileFile(t *testing.T, path string, cfg mach.Config, o opt.Options) *core.Result {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(context.Background(), string(src), core.Options{Config: cfg, Opt: o})
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return res
}

// TestCleanMatrix is the soundness half of the acceptance bar: every image
// the compiler emits, across the full optimization × machine-width matrix,
// must verify with zero error findings.
func TestCleanMatrix(t *testing.T) {
	for _, path := range []string{"../../testdata/daxpy.mf", "../../testdata/sort.mf"} {
		for _, lv := range optLevels {
			for _, mc := range machines {
				res := compileFile(t, path, mc.cfg, lv.opt)
				rep := schedcheck.Check(res.Image,
					schedcheck.Options{Src: schedcheck.NewSourceMap(res.Image, res.Funcs)})
				if errs := rep.Errors(); len(errs) != 0 {
					t.Errorf("%s %s %s: %d error findings, first: %s",
						path, lv.name, mc.name, len(errs), errs[0].String())
				}
				if rep.Reachable == 0 {
					t.Errorf("%s %s %s: CFG found nothing reachable", path, lv.name, mc.name)
				}
			}
		}
	}
}

// TestCleanIdeal: ideal-machine images skip resource checks but still get
// CFG and dataflow verification.
func TestCleanIdeal(t *testing.T) {
	res := compileFile(t, "../../testdata/daxpy.mf", mach.IdealConfig(4), opt.Default())
	rep := schedcheck.Check(res.Image, schedcheck.Options{})
	if errs := rep.Errors(); len(errs) != 0 {
		t.Fatalf("ideal image: %d error findings, first: %s", len(errs), errs[0].String())
	}
}

// cloneImage deep-copies the decoded instruction stream so a mutation never
// leaks into the next candidate.
func cloneImage(img *isa.Image) *isa.Image {
	out := img.CloneWithConfig(img.Cfg)
	out.Instrs = make([]mach.Instr, len(img.Instrs))
	for i := range img.Instrs {
		out.Instrs[i].Slots = append([]mach.SlotOp(nil), img.Instrs[i].Slots...)
	}
	return out
}

// TestMutationBeatSwap corrupts real schedules by swapping the beats of two
// ops sharing a functional unit (early <-> late), the classic
// pipeline-phase encoder bug, and requires the checker to catch it.
func TestMutationBeatSwap(t *testing.T) {
	res := compileFile(t, "../../testdata/daxpy.mf", mach.Trace7(), opt.Default())
	candidates, caught := 0, 0
	var first *schedcheck.Finding
	for a := range res.Image.Instrs {
		in := &res.Image.Instrs[a]
		for i := range in.Slots {
			for j := range in.Slots {
				if i == j || in.Slots[i].Unit != in.Slots[j].Unit ||
					in.Slots[i].Beat != 0 || in.Slots[j].Beat != 1 {
					continue
				}
				candidates++
				mut := cloneImage(res.Image)
				mut.Instrs[a].Slots[i].Beat, mut.Instrs[a].Slots[j].Beat = 1, 0
				rep := schedcheck.Check(mut, schedcheck.Options{})
				if errs := rep.Errors(); len(errs) > 0 {
					caught++
					if first == nil {
						f := errs[0]
						first = &f
						if f.Word != a {
							t.Errorf("finding attributed to word %d, mutation at word %d", f.Word, a)
						}
						if f.Unit == "" || f.Beat < 0 {
							t.Errorf("beat-swap finding lacks beat/unit attribution: %+v", f)
						}
					}
				}
			}
		}
	}
	if candidates == 0 {
		t.Fatal("no beat-swap candidates in the compiled image")
	}
	if caught == 0 {
		t.Fatalf("none of %d beat swaps caught", candidates)
	}
	t.Logf("beat swap: %d/%d candidates caught, e.g. %s", caught, candidates, first.String())
}

// TestMutationCloneWrite duplicates an op with a destination register onto
// the same unit class in the same word — the retirements collide, and the
// extra operand fetches can oversubscribe the read ports.
func TestMutationCloneWrite(t *testing.T) {
	res := compileFile(t, "../../testdata/daxpy.mf", mach.Trace7(), opt.Default())
	candidates, caught := 0, 0
	var first *schedcheck.Finding
	for a := range res.Image.Instrs {
		in := &res.Image.Instrs[a]
		for i := range in.Slots {
			s := in.Slots[i]
			if s.Unit.Kind != mach.UIALU || !s.Op.Dst.Valid() {
				continue
			}
			// Clone onto the pair's other I ALU in the same beat.
			other := s.Unit
			other.Idx = 1 - other.Idx
			if in.Find(other, s.Beat) != nil {
				continue
			}
			candidates++
			mut := cloneImage(res.Image)
			clone := s
			clone.Unit = other
			mut.Instrs[a].Slots = append(mut.Instrs[a].Slots, clone)
			rep := schedcheck.Check(mut, schedcheck.Options{})
			for _, f := range rep.Errors() {
				if f.Word != a {
					continue
				}
				if f.Check == schedcheck.CheckWriteRace || f.Check == schedcheck.CheckReadPorts ||
					f.Check == schedcheck.CheckMemRefs {
					caught++
					if first == nil {
						g := f
						first = &g
					}
					break
				}
			}
		}
	}
	if candidates == 0 {
		t.Fatal("no clone-write candidates in the compiled image")
	}
	if caught != candidates {
		t.Fatalf("only %d/%d cloned writes caught", caught, candidates)
	}
	t.Logf("clone write: %d/%d caught, e.g. %s", caught, candidates, first.String())
}

// TestMutationRetargetShadow redirects branches a few words off their real
// target, landing execution inside the latency shadow of in-flight writes
// on the destination path; the checker must prove a stale read on at least
// one such path. This is the off-trace variant the simulator cannot see
// without executing the branch.
func TestMutationRetargetShadow(t *testing.T) {
	res := compileFile(t, "../../testdata/daxpy.mf", mach.Trace7(), opt.Default())
	n := len(res.Image.Instrs)
	candidates := 0
	var first *schedcheck.Finding
	for a := range res.Image.Instrs {
		in := &res.Image.Instrs[a]
		for i := range in.Slots {
			s := in.Slots[i]
			if s.Op.Kind != mach.OpJmp && s.Op.Kind != mach.OpBrT {
				continue
			}
			for _, d := range []int{1, 2, 3, -1, -2, -3} {
				nt := s.Op.Target + d
				if nt < 0 || nt >= n || nt == s.Op.Target {
					continue
				}
				candidates++
				mut := cloneImage(res.Image)
				mut.Instrs[a].Slots[i].Op.Target = nt
				rep := schedcheck.Check(mut, schedcheck.Options{})
				for _, f := range rep.Errors() {
					if f.Check == schedcheck.CheckStaleRead {
						g := f
						first = &g
						break
					}
				}
				if first != nil {
					break
				}
			}
			if first != nil {
				break
			}
		}
		if first != nil {
			break
		}
	}
	if candidates == 0 {
		t.Fatal("no branches to retarget")
	}
	if first == nil {
		t.Fatalf("no retargeted branch (of %d candidates) produced a stale-read", candidates)
	}
	if first.Unit == "" || first.Beat < 0 {
		t.Fatalf("shadow finding lacks beat/unit attribution: %+v", first)
	}
	t.Logf("retarget shadow: caught after %d candidates: %s", candidates, first.String())
}

// TestSourceMapAttribution: findings on compiled code resolve to function
// names and source lines through tsched.FuncCode.
func TestSourceMapAttribution(t *testing.T) {
	res := compileFile(t, "../../testdata/daxpy.mf", mach.Trace7(), opt.Default())
	src := schedcheck.NewSourceMap(res.Image, res.Funcs)
	withLine := 0
	for a := range res.Image.Instrs {
		for _, s := range res.Image.Instrs[a].Slots {
			fn, line := src(a, s.Unit, s.Beat)
			if fn == "" {
				t.Fatalf("word %d slot %s has no containing function", a, s.Unit)
			}
			if line > 0 {
				withLine++
			}
		}
	}
	if withLine == 0 {
		t.Fatal("no slot resolved to a source line")
	}
}
