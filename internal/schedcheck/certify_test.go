package schedcheck

import (
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

func TestCertifyCleanImage(t *testing.T) {
	img := image(mach.Trace7(), defRVI(), haltInstr())
	cert, err := Certify(img)
	if err != nil {
		t.Fatalf("Certify(clean image): %v", err)
	}
	if cert.CertifiedImage() != img {
		t.Fatalf("certificate covers %p, want %p", cert.CertifiedImage(), img)
	}
	if cert.Report() == nil || cert.Report().Err() != nil {
		t.Fatalf("certificate report should be error-free")
	}
}

func TestCertifyRejectsIllegalSchedule(t *testing.T) {
	// Stale read: load latency shadow violated in the next word.
	load := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Load, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(-8)}),
	}}
	use := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: mach.RegRVI, A: regArg(ireg(5)), B: immArg(1)}),
	}}
	img := image(mach.Trace7(), load, use, haltInstr())
	cert, err := Certify(img)
	if err == nil {
		t.Fatalf("Certify accepted an image with a stale read")
	}
	if cert != nil {
		t.Fatalf("failed Certify returned a non-nil certificate")
	}
	if !strings.Contains(err.Error(), "stale-read") {
		t.Fatalf("error does not name the finding: %v", err)
	}
}

// TestWAWOrderedRetireWarning: two in-flight writes to one register whose
// retires stay in issue order are legal on the real machine (stalls freeze
// every pipeline uniformly, so the order cannot invert) — schedcheck must
// report the overlap at warning severity, keep it out of Errors(), and
// still mint a certificate. Only the error paths were asserted end-to-end
// before; this pins the warning path.
func TestWAWOrderedRetireWarning(t *testing.T) {
	// Two multiplies (4 beats each) to one register, one beat apart: the
	// second retires one beat after the first — ordered, so a warning.
	waw := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Mul, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(3)}),
		ialuSlot(1, 1, mach.Op{Kind: ir.Mul, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(4)}),
	}}
	img := image(mach.Trace7(), defRVI(), waw, haltInstr())
	rep := Check(img, Options{})

	var found *Finding
	for i := range rep.Findings {
		if rep.Findings[i].Check == CheckWAWOverlap {
			found = &rep.Findings[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no %s finding; got %v", CheckWAWOverlap, rep.Findings)
	}
	if found.Sev != Warn {
		t.Fatalf("ordered-retire overlap reported as %s, want warning: %+v", found.Sev, found)
	}
	if found.Sev.String() != "warning" {
		t.Fatalf("Severity.String() = %q, want %q", found.Sev.String(), "warning")
	}
	for _, f := range rep.Errors() {
		if f.Check == CheckWAWOverlap {
			t.Fatalf("warning leaked into Errors(): %+v", f)
		}
	}
	var inWarnings bool
	for _, f := range rep.Warnings() {
		if f.Check == CheckWAWOverlap {
			inWarnings = true
		}
	}
	if !inWarnings {
		t.Fatalf("overlap missing from Warnings(): %v", rep.Warnings())
	}

	cert, err := rep.Certify()
	if err != nil {
		t.Fatalf("ordered-retire warning blocked Certify: %v", err)
	}
	if cert == nil || cert.CertifiedImage() != img {
		t.Fatalf("certificate does not cover the warned image")
	}
}

func TestCertifyToleratesWarnings(t *testing.T) {
	// Unreachable code is a warning, not an error: still certifiable.
	img := image(mach.Trace7(), defRVI(), haltInstr(), haltInstr())
	rep := Check(img, Options{})
	if n := counts(t, rep, CheckUnreachable); n == 0 {
		t.Fatalf("expected an unreachable warning to set up the test")
	}
	if _, err := rep.Certify(); err != nil {
		t.Fatalf("warnings blocked certification: %v", err)
	}
}

func TestReportCertifyRequiresImage(t *testing.T) {
	if _, err := (&Report{}).Certify(); err == nil {
		t.Fatalf("Certify on an imageless report should fail")
	}
}
