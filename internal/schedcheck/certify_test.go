package schedcheck

import (
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

func TestCertifyCleanImage(t *testing.T) {
	img := image(mach.Trace7(), defRVI(), haltInstr())
	cert, err := Certify(img)
	if err != nil {
		t.Fatalf("Certify(clean image): %v", err)
	}
	if cert.CertifiedImage() != img {
		t.Fatalf("certificate covers %p, want %p", cert.CertifiedImage(), img)
	}
	if cert.Report() == nil || cert.Report().Err() != nil {
		t.Fatalf("certificate report should be error-free")
	}
}

func TestCertifyRejectsIllegalSchedule(t *testing.T) {
	// Stale read: load latency shadow violated in the next word.
	load := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Load, Type: ir.I32, Dst: ireg(5), A: regArg(mach.RegSP), B: immArg(-8)}),
	}}
	use := mach.Instr{Slots: []mach.SlotOp{
		ialuSlot(0, 0, mach.Op{Kind: ir.Add, Type: ir.I32, Dst: mach.RegRVI, A: regArg(ireg(5)), B: immArg(1)}),
	}}
	img := image(mach.Trace7(), load, use, haltInstr())
	cert, err := Certify(img)
	if err == nil {
		t.Fatalf("Certify accepted an image with a stale read")
	}
	if cert != nil {
		t.Fatalf("failed Certify returned a non-nil certificate")
	}
	if !strings.Contains(err.Error(), "stale-read") {
		t.Fatalf("error does not name the finding: %v", err)
	}
}

func TestCertifyToleratesWarnings(t *testing.T) {
	// Unreachable code is a warning, not an error: still certifiable.
	img := image(mach.Trace7(), defRVI(), haltInstr(), haltInstr())
	rep := Check(img, Options{})
	if n := counts(t, rep, CheckUnreachable); n == 0 {
		t.Fatalf("expected an unreachable warning to set up the test")
	}
	if _, err := rep.Certify(); err != nil {
		t.Fatalf("warnings blocked certification: %v", err)
	}
}

func TestReportCertifyRequiresImage(t *testing.T) {
	if _, err := (&Report{}).Certify(); err == nil {
		t.Fatalf("Certify on an imageless report should fail")
	}
}
