package schedcheck

import (
	"fmt"

	"github.com/multiflow-repro/trace/internal/isa"
)

// A Certificate is proof that a specific linked image passed the full
// whole-image static check with zero error-severity findings. The simulator
// (internal/vliw) accepts a Certificate as authorization to skip its dynamic
// §6 resource and write-race checks — the no-interlock contract has already
// been proven over every path, including the cold compensation paths a run
// never executes, so re-checking each beat buys nothing.
//
// The certificate identifies the image by pointer: it certifies this exact
// decoded artifact, not some structurally equal copy, and the machine
// rejects a certificate minted for a different image. It cannot, by design,
// detect mutation of the image after certification — that is what the fast
// path's remaining guards (PC bounds, memory bounds/alignment, divide by
// zero, bad opcodes) are for, and what the mutation tests in internal/vliw
// exercise.
type Certificate struct {
	img *isa.Image
	rep *Report
}

// CertifiedImage returns the image this certificate covers. It implements
// vliw.Certificate.
func (c *Certificate) CertifiedImage() *isa.Image { return c.img }

// Report returns the underlying check report (for summaries / warnings).
func (c *Certificate) Report() *Report { return c.rep }

// Certify runs the full static check on the image and, if it finds no
// error-severity violations, mints a certificate for it. Warnings do not
// block certification: they flag survivable facts, not state corruption.
func Certify(img *isa.Image) (*Certificate, error) {
	return Check(img, Options{}).Certify()
}

// Certify mints a certificate from an existing report, so callers that
// already ran Check (the fuzz oracle's lint stage, tracelint) need not
// re-analyze the image. It fails if the report carries error-severity
// findings or predates the Certify API (no image recorded).
func (r *Report) Certify() (*Certificate, error) {
	if r.img == nil {
		return nil, fmt.Errorf("schedcheck: report records no image; use Check or Certify")
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("image not certifiable: %w", err)
	}
	return &Certificate{img: r.img, rep: r}, nil
}
