package safecheck

import "math"

// The abstract domain: one Val per 32-bit integer register, combining an
// interval with a congruence. The interval answers "can this effective
// address escape RAM, can this divisor be zero"; the congruence answers
// "is this address aligned" and — fed back into the interval as bound
// snapping — recovers tight bounds for strided loop counters (an unroll-by-4
// counter known to be ≡ 0 mod 4 and < 256 is at most 252, so counter+3 stays
// in bounds). Both halves are standard lattices; see DESIGN.md §Static
// safety analysis for the soundness argument.

// Val abstracts one i32 register value: every concrete value v satisfies
// Lo <= v <= Hi and v ≡ R (mod M).
//
//   - M == 0 means the value is exactly R (and Lo == Hi == R);
//   - M == 1 carries no congruence information (R == 0);
//   - M > 1 is a real congruence with 0 <= R < M.
//
// The interval is always within int32 range: transfer functions that could
// wrap (int32 overflow) degrade to Top, so a Val never claims more than the
// machine's wrapping arithmetic delivers.
type Val struct {
	Lo, Hi int64
	M, R   int64
}

// Top is the unconstrained i32 value.
var Top = Val{math.MinInt32, math.MaxInt32, 1, 0}

// Exact abstracts a known constant (wrapped to int32, mirroring readI).
func Exact(v int64) Val {
	w := int64(int32(v))
	return Val{w, w, 0, w}
}

// val01 abstracts a boolean-producing op (compare predicates, branch-bank
// reads).
var val01 = Val{0, 1, 1, 0}

// IsExact reports the value is a single known constant.
func (a Val) IsExact() bool { return a.M == 0 }

// mod is the non-negative remainder of a by m (m > 0).
func mod(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// congruence-arithmetic bound: operands beyond it degrade to "no info" so
// the intermediate products below cannot overflow int64.
const congMax = int64(1) << 31

// mk normalizes a candidate (lo, hi, m, r) into a Val: bounds are snapped
// inward to the congruence (the whole point of carrying both halves), exact
// singletons collapse to M == 0, and an empty result reports ok == false
// (an infeasible refinement — the edge it came from is dead).
func mk(lo, hi, m, r int64) (Val, bool) {
	if m > 1 {
		r = mod(r, m)
		lo += mod(r-lo, m)
		hi -= mod(hi-r, m)
	}
	if lo > hi {
		return Val{}, false
	}
	if lo == hi {
		return Val{lo, hi, 0, lo}, true
	}
	if m <= 1 {
		return Val{lo, hi, 1, 0}, true
	}
	return Val{lo, hi, m, r}, true
}

// i32 builds a Val for an int32-producing operation: any possibility of
// wrap degrades the whole value (interval and congruence) to Top, because
// congruences mod m do not survive reduction mod 2³² unless the value
// provably did not wrap.
func i32(lo, hi, m, r int64) Val {
	if lo < math.MinInt32 || hi > math.MaxInt32 {
		return Top
	}
	v, ok := mk(lo, hi, m, r)
	if !ok {
		return Top
	}
	return v
}

// cjoin joins two congruences (the classic gcd join).
func cjoin(m1, r1, m2, r2 int64) (int64, int64) {
	d := r1 - r2
	if d < 0 {
		d = -d
	}
	m := gcd(gcd(m1, m2), d)
	if m == 0 {
		return 0, r1
	}
	return m, mod(r1, m)
}

// Join is the lattice join (least upper bound): interval hull plus
// congruence gcd-join.
func (a Val) Join(b Val) Val {
	lo, hi := a.Lo, a.Hi
	if b.Lo < lo {
		lo = b.Lo
	}
	if b.Hi > hi {
		hi = b.Hi
	}
	m, r := cjoin(a.M, a.R, b.M, b.R)
	v, _ := mk(lo, hi, m, r) // hull of two non-empty Vals is non-empty
	return v
}

// Widening thresholds: a moving bound climbs this ladder instead of jumping
// straight to the int32 extreme. The intermediate rungs matter beyond
// precision — the affine-equality domain refuses to record "r2 == r1 + d"
// when the abstract add could wrap, so a counter widened to MaxInt32 loses
// the equalities the narrowing phase needs to pull loop bounds back in.
var (
	widenLos = [...]int64{-1 << 10, -1 << 16, -1 << 20, -1 << 26, math.MinInt32}
	widenHis = [...]int64{1 << 10, 1 << 16, 1 << 20, 1 << 26, math.MaxInt32}
)

// Widen accelerates convergence: any bound that moved since old jumps to
// the next widening threshold (the congruence join terminates on its own —
// each strict gcd step at least halves the modulus).
func (a Val) Widen(old Val) Val {
	lo, hi := old.Lo, old.Hi
	if a.Lo < old.Lo {
		lo = math.MinInt32
		for _, t := range widenLos {
			if t <= a.Lo {
				lo = t
				break
			}
		}
	}
	if a.Hi > old.Hi {
		hi = math.MaxInt32
		for _, t := range widenHis {
			if t >= a.Hi {
				hi = t
				break
			}
		}
	}
	m, r := cjoin(old.M, old.R, a.M, a.R)
	v, _ := mk(lo, hi, m, r)
	return v
}

// Clamp intersects the value with [lo, hi], reporting ok == false when the
// intersection is empty.
func (a Val) Clamp(lo, hi int64) (Val, bool) {
	if lo < a.Lo {
		lo = a.Lo
	}
	if hi > a.Hi {
		hi = a.Hi
	}
	return mk(lo, hi, a.M, a.R)
}

// trimNE removes the constant c from the value where the interval can
// express it (only at its endpoints).
func (a Val) trimNE(c int64) (Val, bool) {
	lo, hi := a.Lo, a.Hi
	if lo == c {
		lo++
	}
	if hi == c {
		hi--
	}
	return mk(lo, hi, a.M, a.R)
}

// Add abstracts wrapping int32 addition.
func (a Val) Add(b Val) Val {
	if a.M == 0 && b.M == 0 {
		return Exact(a.R + b.R)
	}
	m := gcd(a.M, b.M)
	return i32(a.Lo+b.Lo, a.Hi+b.Hi, m, a.R+b.R)
}

// Sub abstracts wrapping int32 subtraction.
func (a Val) Sub(b Val) Val {
	if a.M == 0 && b.M == 0 {
		return Exact(a.R - b.R)
	}
	m := gcd(a.M, b.M)
	return i32(a.Lo-b.Hi, a.Hi-b.Lo, m, a.R-b.R)
}

// Neg abstracts wrapping int32 negation.
func (a Val) Neg() Val {
	if a.M == 0 {
		return Exact(-a.R)
	}
	return i32(-a.Hi, -a.Lo, a.M, -a.R)
}

// Mul abstracts wrapping int32 multiplication.
func (a Val) Mul(b Val) Val {
	if a.M == 0 && b.M == 0 {
		return Exact(a.R * b.R)
	}
	c1, c2, c3, c4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
	lo, hi := c1, c1
	for _, c := range []int64{c2, c3, c4} {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	m, r := int64(1), int64(0)
	if a.M < congMax && b.M < congMax && abs64(a.R) < congMax && abs64(b.R) < congMax {
		m = gcd(gcd(a.M*b.M, a.M*b.R), b.M*a.R)
		r = a.R * b.R
	}
	return i32(lo, hi, m, r)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// Shl abstracts x << (k & 31). Only a constant shift is modeled (a multiply
// by 2^k); a variable shift is Top.
func (a Val) Shl(b Val) Val {
	if b.M != 0 {
		return Top
	}
	k := uint32(b.R) & 31
	return a.Mul(Exact(int64(1) << k))
}

// Shr abstracts logical right shift by a constant.
func (a Val) Shr(b Val) Val {
	if b.M != 0 {
		return Top
	}
	k := uint32(b.R) & 31
	if a.M == 0 {
		return Exact(int64(int32(uint32(int32(a.R)) >> k)))
	}
	if k == 0 {
		return a
	}
	if a.Lo >= 0 {
		return i32(a.Lo>>k, a.Hi>>k, 1, 0)
	}
	// negative inputs shift in zeros from a large unsigned pattern
	return i32(0, (int64(1)<<(32-k))-1, 1, 0)
}

// Sra abstracts arithmetic right shift by a constant.
func (a Val) Sra(b Val) Val {
	if b.M != 0 {
		return Top
	}
	k := uint32(b.R) & 31
	return i32(a.Lo>>k, a.Hi>>k, 1, 0)
}

// And abstracts bitwise and: exact when both sides are, bounded above by a
// non-negative constant mask, and congruence-aware for low-zero masks
// (x & ^(2^k-1) is ≡ 0 mod 2^k — how compilers align).
func (a Val) And(b Val) Val {
	if a.M == 0 && b.M == 0 {
		return Exact(int64(int32(a.R) & int32(b.R)))
	}
	if a.M != 0 {
		if b.M != 0 {
			return Top
		}
		a, b = b, a // constant side in a
	}
	c := int32(a.R)
	// mask with k low zero bits forces ≡ 0 mod 2^k
	m := int64(1)
	for mm := int64(2); mm <= 1<<16 && int64(c)%mm == 0; mm *= 2 {
		m = mm
	}
	if c >= 0 && b.Lo >= 0 {
		hi := b.Hi
		if int64(c) < hi {
			hi = int64(c)
		}
		return i32(0, hi, m, 0)
	}
	if c < 0 && m > 1 {
		// clearing low bits keeps the magnitude bounded by the operand
		lo, hi := b.Lo, b.Hi
		if lo > 0 {
			lo = 0
		}
		return i32(lo, hi, m, 0)
	}
	return Top
}

// Or abstracts bitwise or (exact-only).
func (a Val) Or(b Val) Val {
	if a.M == 0 && b.M == 0 {
		return Exact(int64(int32(a.R) | int32(b.R)))
	}
	return Top
}

// Xor abstracts bitwise xor (exact-only).
func (a Val) Xor(b Val) Val {
	if a.M == 0 && b.M == 0 {
		return Exact(int64(int32(a.R) ^ int32(b.R)))
	}
	return Top
}

// Not abstracts bitwise complement.
func (a Val) Not() Val {
	if a.M == 0 {
		return Exact(int64(^int32(a.R)))
	}
	return i32(-a.Hi-1, -a.Lo-1, 1, 0)
}

// Div abstracts truncating int32 division (the machine faults on zero
// divisors before this applies, so b excluding zero is the caller's
// concern, not this function's).
func (a Val) Div(b Val) Val {
	if b.M == 0 && b.R != 0 {
		if a.M == 0 {
			return Exact(int64(int32(a.R) / int32(b.R)))
		}
		if b.R > 0 && a.Lo >= 0 {
			return i32(a.Lo/b.R, a.Hi/b.R, 1, 0)
		}
	}
	return Top
}

// Rem abstracts truncating int32 remainder.
func (a Val) Rem(b Val) Val {
	if b.M == 0 && b.R != 0 {
		if a.M == 0 {
			return Exact(int64(int32(a.R) % int32(b.R)))
		}
		c := abs64(b.R)
		if a.Lo >= 0 {
			if a.M > 0 && a.M%c == 0 && a.R < c {
				// stride a multiple of the divisor: remainder is fixed
				return Exact(a.R)
			}
			hi := c - 1
			if a.Hi < hi {
				hi = a.Hi
			}
			return i32(0, hi, 1, 0)
		}
		return i32(-(c - 1), c-1, 1, 0)
	}
	return Top
}

// ExcludesZero reports that no concrete value of a can be zero — the proof
// obligation for divide/remainder sites.
func (a Val) ExcludesZero() bool {
	if a.Lo > 0 || a.Hi < 0 {
		return true
	}
	if a.M == 0 {
		return a.R != 0
	}
	return a.M > 1 && mod(a.R, a.M) != 0
}
