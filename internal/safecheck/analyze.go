package safecheck

import (
	"math"
	"sort"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/schedcheck"
)

// The analyzer: a forward abstract interpretation over the same machine-level
// CFG schedcheck certifies (schedcheck.CFG), one abstract state per
// instruction word. The word transfer function is deliberately latency-free:
// on a schedcheck-clean image every read that could observe an in-flight
// write is an error-severity finding (stale read, retire race, inverted
// WAW), so for the images safecheck certifies — which must also hold a
// resource certificate — beat-0 reads see the word-entry state, beat-1 reads
// see beat-0 results, and successors see everything. Where the machine's
// timing is ambiguous inside one word (two writes to one register), the
// abstract write joins instead of overwriting. Images that violate those
// scheduling invariants simply cannot reach the safe tier: Certify requires
// the resource certificate first.

const (
	nIRegs = 4 * 64 // I-register state: board*64+idx
	nBB    = 4 * 8  // branch-bank predicates: board*8+idx

	widenAt       = 8     // joins at one word before widening kicks in
	narrowRounds  = 64    // descending-sweep cap after the ascending fixpoint
	defaultBudget = 50000 // word-transfer cap before the analysis gives up
)

// operand is one side of a recorded branch predicate: an immediate or an
// I-register (index board*64+idx).
type operand struct {
	imm bool
	val int64
	reg int16
}

// pred records what a branch-bank bit means: "kind(a, b) held when this bit
// was written, and neither a nor b has been overwritten since". The compare
// is re-evaluated symbolically at branch edges to refine operand ranges.
type pred struct {
	ok   bool
	kind ir.OpKind // CmpEQ..CmpGE
	a, b operand
}

// rel records an exact affine equality between two live registers:
// value(reg) == value(base) + delta, right now. Rotated loops carry the
// incremented induction variable in a different register than the one the
// exit test constrains ("i1.14 = i1.11 + 1; ...; brT i1.11 < n"), so a
// pure interval domain loses every loop bound; these equalities let a
// branch refinement on one register propagate to its affine copies.
type rel struct {
	ok    bool
	base  int16
	delta int64
}

// state is the abstract machine state at a word boundary. It is a plain
// comparable value: fixpoint change detection is ==.
//
// ipred mirrors preds for integer registers: compilers route branch
// conditions through the I-bank ("i = cmplt a, b; bb = cmpeq i, #0"), so a
// register written by a compare remembers the relation it tested; refining
// "i == 0" then refines a and b. An ok ipred also certifies the register's
// value is exactly 0 or 1.
type state struct {
	regs  [nIRegs]Val
	preds [nBB]pred
	eq    [nIRegs]rel
	ipred [nIRegs]pred
}

func (s *state) argVal(a mach.Arg) Val {
	if a.IsImm {
		return Exact(int64(a.Imm))
	}
	if !a.Reg.Valid() {
		return Exact(0) // readArg returns 0 for an unwired operand
	}
	switch a.Reg.Bank {
	case mach.BankI:
		if ri, ok := iregIndex(a.Reg); ok {
			return s.regs[ri]
		}
	case mach.BankB:
		return val01
	}
	return Top // F/SF bits reinterpreted as i32: anything
}

func iregIndex(r mach.PReg) (int, bool) {
	if int(r.Board) >= 4 || int(r.Idx) >= 64 {
		return 0, false
	}
	return int(r.Board)*64 + int(r.Idx), true
}

func bbIndex(r mach.PReg) (int, bool) {
	if int(r.Board) >= 4 || int(r.Idx) >= 8 {
		return 0, false
	}
	return int(r.Board)*8 + int(r.Idx), true
}

func trackOperand(a mach.Arg) (operand, bool) {
	if a.IsImm {
		return operand{imm: true, val: int64(a.Imm), reg: -1}, true
	}
	if a.Reg.Valid() && a.Reg.Bank == mach.BankI {
		if ri, ok := iregIndex(a.Reg); ok {
			return operand{reg: int16(ri)}, true
		}
	}
	return operand{}, false
}

func (s *state) operandVal(o operand) Val {
	if o.imm {
		// No int32 wrap: predicate shifting can push an immediate past the
		// int32 range ("i < 256" hoisted over i += 1 becomes "i < 257"
		// repeatedly), and the comparison math here is pure int64.
		return Val{o.val, o.val, 0, o.val}
	}
	return s.regs[o.reg]
}

// joinState merges two word-entry states: register values join in the
// lattice; predicates and affine equalities survive only when both sides
// agree exactly (an equality that holds on every incoming path still holds
// after the join).
func joinState(a, b state) state {
	var out state
	for i := range a.regs {
		out.regs[i] = a.regs[i].Join(b.regs[i])
	}
	for i := range a.preds {
		if a.preds[i].ok && a.preds[i] == b.preds[i] {
			out.preds[i] = a.preds[i]
		}
	}
	for i := range a.eq {
		if a.eq[i].ok && a.eq[i] == b.eq[i] {
			out.eq[i] = a.eq[i]
		}
	}
	for i := range a.ipred {
		if a.ipred[i].ok && a.ipred[i] == b.ipred[i] {
			out.ipred[i] = a.ipred[i]
		}
	}
	return out
}

// widenState accelerates a join that keeps growing. Predicates and affine
// equalities are exact relational facts independent of the interval bounds,
// so the joined set carries over untouched.
func widenState(old, next state) state {
	var out state
	for i := range next.regs {
		out.regs[i] = next.regs[i].Widen(old.regs[i])
	}
	out.preds = next.preds
	out.eq = next.eq
	out.ipred = next.ipred
	return out
}

type analyzer struct {
	img    *isa.Image
	succ   [][]int
	memLen int64
	src    schedcheck.SourceMap
	fnames []string
	fbases []int

	budget int
}

type wordOut struct {
	st state
	// wrote[ri] is 1+lastWriteBeat of the word's writes to I-register ri
	// (0: untouched). predBorn[bi] is 1+issueBeat of a predicate recorded
	// this word (0: inherited from the entry state). Together they decide
	// which predicates survive the word: a compare at beat b reads operand
	// values from before beat b, so any operand write at a beat >= b means
	// the recorded relation talks about stale values.
	wrote    [nIRegs]uint8
	predBorn [nBB]uint8
}

func (o *wordOut) dirty(ri int16) bool { return ri >= 0 && o.wrote[ri] > 0 }

type write struct {
	dst mach.PReg
	v   Val
	op  *mach.Op
}

// xfer runs one word's transfer function. When rep is non-nil it also emits
// the per-site safety verdicts (the final reporting sweep).
func (a *analyzer) xfer(w int, s0 state, rep *Report) wordOut {
	a.budget--
	st := s0
	var out wordOut
	var writes []write
	in := a.img.Instrs[w]
	for beat := 0; beat < 2; beat++ {
		writes = writes[:0]
		for si := range in.Slots {
			s := &in.Slots[si]
			if int(s.Beat&1) != beat {
				continue
			}
			o := &s.Op
			if s.Unit.Kind == mach.UBR {
				switch o.Kind {
				case mach.OpCall:
					// link register receives the return address
					writes = append(writes, write{mach.RegLR, Exact(int64(w + 1)), o})
				case mach.OpJmpR:
					if rep != nil {
						a.addJmpRSite(rep, w, s, &st)
					}
				}
				continue
			}
			switch o.Kind {
			case ir.Nop:
			case ir.Load, ir.LoadSpec:
				if rep != nil {
					a.addMemSite(rep, w, s, &st)
				}
				writes = append(writes, write{o.Dst, Top, o})
			case ir.Store:
				if rep != nil {
					a.addMemSite(rep, w, s, &st)
				}
			case ir.Div, ir.Rem:
				if rep != nil {
					a.addDivSite(rep, w, s, &st)
				}
				writes = append(writes, write{o.Dst, evalOp(&st, o), o})
			default:
				if o.Dst.Valid() {
					writes = append(writes, write{o.Dst, evalOp(&st, o), o})
				}
			}
		}
		for i := range writes {
			applyWrite(&st, &out, &writes[i], uint8(beat))
		}
	}
	out.st = st
	return out
}

func applyWrite(st *state, out *wordOut, x *write, beat uint8) {
	switch x.dst.Bank {
	case mach.BankI:
		ri, ok := iregIndex(x.dst)
		if !ok {
			return
		}
		// Relational bookkeeping, all against the pre-write state: does the
		// new value relate to the old one (r' = r + delta), and does it
		// relate exactly to some other live register?
		delta, affine := selfDelta(st, out, x.op, ri, beat)
		old := st.regs[ri]
		canShift := affine && out.wrote[ri] == 0 &&
			old.Lo+delta >= math.MinInt32 && old.Hi+delta <= math.MaxInt32
		newRel := eqRelFor(st, out, x.op, ri, beat)
		shiftPreds(st, out, ri, delta, canShift, beat)
		for c := range st.eq {
			if e := &st.eq[c]; e.ok && e.base == int16(ri) && c != ri {
				if canShift {
					// c == old_ri + d and new_ri == old_ri + delta, so
					// c == new_ri + (d - delta)
					e.delta -= delta
				} else {
					*e = rel{}
				}
			}
		}
		switch {
		case out.wrote[ri] == 0 && newRel.ok:
			st.eq[ri] = newRel
		case canShift && st.eq[ri].ok:
			// old_ri == base + d, new_ri == old_ri + delta
			st.eq[ri] = rel{ok: true, base: st.eq[ri].base, delta: st.eq[ri].delta + delta}
		default:
			st.eq[ri] = rel{}
		}
		// A compare retiring into the I-bank remembers its relation, with
		// the same stillborn and double-write rules as branch-bank bits.
		np := pred{}
		if out.wrote[ri] == 0 {
			np = predFor(x.op)
			if np.ok && ((np.a.reg >= 0 && out.wrote[np.a.reg] == beat+1) ||
				(np.b.reg >= 0 && out.wrote[np.b.reg] == beat+1) ||
				np.a.reg == int16(ri) || np.b.reg == int16(ri)) {
				// operand rewritten this beat, or the compare overwrites its
				// own operand: the relation talks about a dead value
				np = pred{}
			}
		}
		st.ipred[ri] = np
		if out.wrote[ri] > 0 {
			// two retires into one register within one word: the winner
			// depends on latencies we do not model, so keep both
			st.regs[ri] = st.regs[ri].Join(x.v)
		} else {
			st.regs[ri] = x.v
		}
		out.wrote[ri] = beat + 1
	case mach.BankB:
		bi, ok := bbIndex(x.dst)
		if !ok {
			return
		}
		p := pred{}
		if out.predBorn[bi] == 0 { // double write: meaning ambiguous
			p = predFor(x.op)
		}
		// An operand already rewritten this beat: the compare read the old
		// value, the state holds the new one — the relation is stillborn.
		if p.ok && ((p.a.reg >= 0 && out.wrote[p.a.reg] == beat+1) ||
			(p.b.reg >= 0 && out.wrote[p.b.reg] == beat+1)) {
			p = pred{}
		}
		st.preds[bi] = p
		out.predBorn[bi] = beat + 1
	}
}

// shiftPreds keeps the recorded branch predicates consistent when one of
// their operand registers is overwritten. Schedulers routinely hoist the
// induction update above the exit branch (`i = i+1; ...; brT i<256`), so a
// plain invalidation would lose every loop bound. For an update that adds a
// known constant to the register's own old value (r = r ± imm directly, or
// via an affine copy — see selfDelta) and provably cannot wrap, the
// predicate's immediate side shifts by the delta ("old r < 256" becomes
// "new r < 257"); anything else invalidates the predicate.
func shiftPreds(st *state, out *wordOut, ri int, delta int64, canShift bool, beat uint8) {
	for i := range st.preds {
		p := &st.preds[i]
		if !p.ok || (p.a.reg != int16(ri) && p.b.reg != int16(ri)) {
			continue
		}
		if out.predBorn[i] > beat+1 {
			continue // compare issued after this write: it read the new value
		}
		switch {
		case !canShift:
			*p = pred{}
		case p.a.reg == int16(ri) && p.b.imm:
			p.b.val += delta
		case p.b.reg == int16(ri) && p.a.imm:
			p.a.val += delta
		default:
			*p = pred{}
		}
	}
	for i := range st.ipred {
		p := &st.ipred[i]
		if !p.ok || (p.a.reg != int16(ri) && p.b.reg != int16(ri)) {
			continue
		}
		if out.wrote[i] > beat+1 {
			continue // compare issued after this write: it read the new value
		}
		switch {
		case !canShift:
			*p = pred{}
		case p.a.reg == int16(ri) && p.b.imm:
			p.b.val += delta
		case p.b.reg == int16(ri) && p.a.imm:
			p.a.val += delta
		default:
			*p = pred{}
		}
	}
}

// constArg resolves an operand the op read to a compile-time constant: an
// immediate, or an I-register whose abstract value is exact. The latter is
// what narrow machines produce — with too few immediate slots per word, the
// scheduler materializes strides and loop bounds into registers ("add i14,
// i22" where i22 always holds 1), and the affine bookkeeping must see
// through that or every rotated loop on such a machine loses its bound.
// The register must still hold the value the op read (no write at this or
// a later beat).
func constArg(st *state, out *wordOut, arg mach.Arg, beat uint8) (int64, bool) {
	if arg.IsImm {
		return int64(arg.Imm), true
	}
	if !arg.Reg.Valid() || arg.Reg.Bank != mach.BankI {
		return 0, false
	}
	j, ok := iregIndex(arg.Reg)
	if !ok || out.wrote[j] > beat {
		return 0, false
	}
	if v := st.regs[j]; v.M == 0 {
		return v.R, true
	}
	return 0, false
}

// selfDelta recognizes writes whose new value equals the register's own old
// value plus a constant: directly (r = r ± imm), or through a recorded
// affine copy (r = mov r2 or r = r2 ± imm where r2 == r + d) — the shape
// rotated loops produce when the scheduler carries the incremented counter
// in a scratch register and copies it back. Source registers must still
// hold the value the op read (no write at this or a later beat).
func selfDelta(st *state, out *wordOut, o *mach.Op, ri int, beat uint8) (int64, bool) {
	if d, ok := affineDelta(st, out, o, ri, beat); ok {
		return d, true
	}
	src := func(arg mach.Arg) (int16, bool) {
		if arg.IsImm || !arg.Reg.Valid() || arg.Reg.Bank != mach.BankI {
			return 0, false
		}
		j, ok := iregIndex(arg.Reg)
		if !ok || out.wrote[j] > beat {
			return 0, false
		}
		return int16(j), true
	}
	base := func(rs int16) (int64, bool) {
		return st.deltaTo(rs, ri)
	}
	switch o.Kind {
	case ir.Mov:
		if o.Type == ir.F64 {
			return 0, false
		}
		if rs, ok := src(o.A); ok {
			if int(rs) == ri {
				return 0, true
			}
			if d, ok := base(rs); ok {
				return d, true
			}
		}
	case ir.Add:
		if rs, ok := src(o.A); ok {
			if c, okc := constArg(st, out, o.B, beat); okc {
				if d, ok := base(rs); ok {
					return d + c, true
				}
			}
		}
		if rs, ok := src(o.B); ok {
			if c, okc := constArg(st, out, o.A, beat); okc {
				if d, ok := base(rs); ok {
					return d + c, true
				}
			}
		}
	case ir.Sub:
		if rs, ok := src(o.A); ok {
			if c, okc := constArg(st, out, o.B, beat); okc {
				if d, ok := base(rs); ok {
					return d - c, true
				}
			}
		}
	}
	return 0, false
}

// deltaTo resolves value(rs) == value(ri) + d by walking parent links of
// the equality graph (hop-bounded: consistent cycles exist and are fine).
func (s *state) deltaTo(rs int16, ri int) (int64, bool) {
	d := int64(0)
	for hops := 0; hops < nIRegs; hops++ {
		if int(rs) == ri {
			return d, true
		}
		e := s.eq[rs]
		if !e.ok {
			return 0, false
		}
		d += e.delta
		rs = e.base
	}
	return 0, false
}

// eqRelFor derives the written value's exact affine relation to another
// live register: reg-to-reg copies and reg ± imm where the add provably
// cannot wrap (otherwise the int64 equality would be false on the wrapped
// path). The relation is recorded against the source operand itself — NOT
// compressed through the source's own equality chain. Bases picked by
// compression depend on whatever relations happen to hold on the first
// visit (often an init-path artifact), and the accumulating fixpoint join
// permanently drops any relation that differs between two visits; operand
// bases are the ones the loop body recreates identically every iteration.
// Refinement walks the graph transitively instead (refineReg).
func eqRelFor(st *state, out *wordOut, o *mach.Op, ri int, beat uint8) rel {
	src := func(arg mach.Arg) (int16, bool) {
		if arg.IsImm || !arg.Reg.Valid() || arg.Reg.Bank != mach.BankI {
			return 0, false
		}
		j, ok := iregIndex(arg.Reg)
		if !ok || j == ri || out.wrote[j] > beat {
			return 0, false
		}
		return int16(j), true
	}
	mkRel := func(rs int16, imm int64) rel {
		v := st.regs[rs]
		if v.Lo+imm < math.MinInt32 || v.Hi+imm > math.MaxInt32 {
			return rel{} // the write may wrap: no exact int64 equality
		}
		return rel{ok: true, base: rs, delta: imm}
	}
	switch o.Kind {
	case ir.Mov:
		if o.Type != ir.F64 {
			if rs, ok := src(o.A); ok {
				return mkRel(rs, 0)
			}
		}
	case ir.Add:
		if rs, ok := src(o.A); ok {
			if c, okc := constArg(st, out, o.B, beat); okc {
				return mkRel(rs, c)
			}
		}
		if rs, ok := src(o.B); ok {
			if c, okc := constArg(st, out, o.A, beat); okc {
				return mkRel(rs, c)
			}
		}
	case ir.Sub:
		if rs, ok := src(o.A); ok {
			if c, okc := constArg(st, out, o.B, beat); okc {
				return mkRel(rs, -c)
			}
		}
	}
	return rel{}
}

// affineDelta recognizes r' = r + delta updates of register ri.
func affineDelta(st *state, out *wordOut, o *mach.Op, ri int, beat uint8) (int64, bool) {
	regIs := func(arg mach.Arg) bool {
		if arg.IsImm || !arg.Reg.Valid() || arg.Reg.Bank != mach.BankI {
			return false
		}
		j, ok := iregIndex(arg.Reg)
		return ok && j == ri
	}
	switch o.Kind {
	case ir.Add:
		if regIs(o.A) {
			if c, ok := constArg(st, out, o.B, beat); ok {
				return c, true
			}
		}
		if regIs(o.B) {
			if c, ok := constArg(st, out, o.A, beat); ok {
				return c, true
			}
		}
	case ir.Sub:
		if regIs(o.A) {
			if c, ok := constArg(st, out, o.B, beat); ok {
				return -c, true
			}
		}
	}
	return 0, false
}

// predFor records the meaning of a compare writing the branch bank; any
// other producer leaves the bit opaque.
func predFor(o *mach.Op) pred {
	switch o.Kind {
	case ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
		pa, oka := trackOperand(o.A)
		pb, okb := trackOperand(o.B)
		if oka && okb {
			return pred{ok: true, kind: o.Kind, a: pa, b: pb}
		}
	}
	return pred{}
}

// evalOp abstracts one non-memory ALU op, mirroring exec.go's wrapping i32
// semantics. Results destined for non-integer banks are discarded by
// applyWrite, so float ops may safely report Top.
func evalOp(st *state, o *mach.Op) Val {
	va := func() Val { return st.argVal(o.A) }
	vb := func() Val { return st.argVal(o.B) }
	switch o.Kind {
	case ir.ConstI:
		return va()
	case ir.Mov, mach.OpMovSF:
		if o.Type == ir.F64 {
			return Top
		}
		return va()
	case ir.Add:
		return va().Add(vb())
	case ir.Sub:
		return va().Sub(vb())
	case ir.Mul:
		return va().Mul(vb())
	case ir.Div:
		return va().Div(vb())
	case ir.Rem:
		return va().Rem(vb())
	case ir.And:
		return va().And(vb())
	case ir.Or:
		return va().Or(vb())
	case ir.Xor:
		return va().Xor(vb())
	case ir.Shl:
		return va().Shl(vb())
	case ir.Shr:
		return va().Shr(vb())
	case ir.Sra:
		return va().Sra(vb())
	case ir.Neg:
		return va().Neg()
	case ir.Not:
		return va().Not()
	case ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return val01
	case ir.Select:
		return st.argVal(o.B).Join(st.argVal(o.C))
	}
	return Top
}

// edge is one refined CFG edge out of a word.
type edge struct {
	to   int
	st   state
	dead bool
}

// edges computes the out-edges of word w with branch-predicate refinement
// applied. Refinement is valid only for registers the word itself did not
// write (their out-state value is the one the branch tested).
func (a *analyzer) edges(w int, s0 *state, o *wordOut) []edge {
	succ := a.succ[w]
	if len(succ) == 0 {
		return nil
	}
	in := a.img.Instrs[w]
	type brt struct {
		target int
		arg    mach.Arg
	}
	var brs []brt
	var jumps []int // static always-taken targets (jmp, call)
	hasJmpR := false
	transfer := false
	for si := range in.Slots {
		s := &in.Slots[si]
		if s.Unit.Kind != mach.UBR {
			continue
		}
		switch s.Op.Kind {
		case mach.OpBrT:
			brs = append(brs, brt{s.Op.Target, s.Op.A})
		case mach.OpJmp, mach.OpCall:
			transfer = true
			jumps = append(jumps, s.Op.Target)
		case mach.OpJmpR:
			transfer = true
			hasJmpR = true
		}
	}
	fallthru := -1
	if !transfer {
		fallthru = w + 1
	}

	var es []edge
	seen := map[int]bool{}
	for _, t := range succ {
		if seen[t] {
			continue
		}
		seen[t] = true
		e := edge{to: t, st: o.st}
		if !hasJmpR { // jmpr targets are return sites; causes ambiguous
			brCount, brArg := 0, mach.Arg{}
			for _, b := range brs {
				if b.target == t {
					brCount++
					brArg = b.arg
				}
			}
			otherCause := t == fallthru
			for _, j := range jumps {
				if j == t {
					otherCause = true
				}
			}
			switch {
			case brCount == 1 && !otherCause:
				// sole cause: this branch tested true
				e.dead = !refineCond(&e.st, s0, o, brArg, true)
			case brCount == 0 && t == fallthru:
				// fallthrough: every branch test in the word was false
				for _, b := range brs {
					if !refineCond(&e.st, s0, o, b.arg, false) {
						e.dead = true
						break
					}
				}
			}
		}
		es = append(es, e)
	}
	return es
}

// refineCond narrows st under "this branch condition evaluated to want".
// The condition value was read at beat 0 of the word, i.e. against s0.
// Predicates come in two flavors of validity: the out-state predicate (kept
// aligned with the out-state register values by shiftPreds) refines freely,
// while a predicate only valid in s0 — the word rewrote the bit, or
// invalidated the out-state copy by overwriting an operand — still refines
// every register the word left untouched (clean-only mode: for those, the
// read-time value IS the out-state value). Reports false when the condition
// is infeasible — the edge is dead.
func refineCond(st *state, s0 *state, o *wordOut, arg mach.Arg, want bool) bool {
	if arg.IsImm {
		return (arg.Imm != 0) == want
	}
	if !arg.Reg.Valid() {
		return !want // unwired condition reads 0: never taken
	}
	switch arg.Reg.Bank {
	case mach.BankB:
		bi, ok := bbIndex(arg.Reg)
		if !ok {
			return true
		}
		if o.predBorn[bi] == 0 {
			if p := st.preds[bi]; p.ok {
				return refinePred(st, st, o, false, p, want, 0)
			}
		}
		// Rewritten bit (the branch read the OLD one — retires are
		// next-beat) or invalidated predicate: fall back to what the branch
		// actually read, clamping only clean registers.
		if p := s0.preds[bi]; p.ok {
			return refinePred(st, s0, o, true, p, want, 0)
		}
		return true
	case mach.BankI:
		ri, ok := iregIndex(arg.Reg)
		if !ok {
			return true
		}
		if !o.dirty(int16(ri)) {
			if want {
				v, live := st.regs[ri].trimNE(0)
				if !live {
					return false
				}
				st.regs[ri] = v
			} else if !refineReg(st, int16(ri), 0, 0) {
				return false
			}
			// A compare result branched on directly: 0/1 value, so taken
			// means the compare held and fallthrough means its negation.
			if p := st.ipred[ri]; p.ok {
				return refinePred(st, st, o, false, p, want, 0)
			}
			return true
		}
		if p := s0.ipred[ri]; p.ok {
			return refinePred(st, s0, o, true, p, want, 0)
		}
	}
	return true
}

// refinePred applies predicate p (negated when want is false) to target.
// view supplies the operand values and relational facts the predicate talks
// about; in clean-only mode (view == s0) clamps apply only to registers the
// word did not write.
func refinePred(target, view *state, o *wordOut, cleanOnly bool, p pred, want bool, depth int) bool {
	k := p.kind
	if !want {
		k = negateCmp(k)
	}
	return refineCmp(target, view, o, cleanOnly, k, p.a, p.b, depth)
}

func negateCmp(k ir.OpKind) ir.OpKind {
	switch k {
	case ir.CmpEQ:
		return ir.CmpNE
	case ir.CmpNE:
		return ir.CmpEQ
	case ir.CmpLT:
		return ir.CmpGE
	case ir.CmpGE:
		return ir.CmpLT
	case ir.CmpLE:
		return ir.CmpGT
	case ir.CmpGT:
		return ir.CmpLE
	}
	return k
}

// refineReg clamps one register to [lo, hi] and propagates the new bounds
// through the whole affine-equality graph (breadth-first over parent and
// child links, composing deltas — equalities are exact, so every hop
// transfers the clamp losslessly). Returns false when any intersection is
// empty — the refinement is infeasible and the edge it came from is dead.
func refineReg(st *state, ri int16, lo, hi int64) bool {
	type item struct {
		reg    int16
		lo, hi int64
	}
	var seen [nIRegs]bool
	queue := []item{{ri, lo, hi}}
	seen[ri] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		v, ok := st.regs[it.reg].Clamp(it.lo, it.hi)
		if !ok {
			return false
		}
		st.regs[it.reg] = v
		if e := st.eq[it.reg]; e.ok && !seen[e.base] {
			seen[e.base] = true
			queue = append(queue, item{e.base, v.Lo - e.delta, v.Hi - e.delta})
		}
		for c := range st.eq {
			if ce := st.eq[c]; ce.ok && ce.base == it.reg && !seen[c] {
				seen[c] = true
				queue = append(queue, item{int16(c), v.Lo + ce.delta, v.Hi + ce.delta})
			}
		}
	}
	return true
}

// refineCmp narrows the operand registers under "kind(a, b) is true".
// Operand values and nested facts come from view; clamps land in target
// (identical unless clean-only mode fell back to the entry state). Returns
// false when the comparison is infeasible for the view ranges — even a
// clamp skipped for dirtiness proves the edge dead when it is empty.
func refineCmp(target, view *state, o *wordOut, cleanOnly bool, k ir.OpKind, a, b operand, depth int) bool {
	va, vb := view.operandVal(a), view.operandVal(b)
	const lo, hi = math.MinInt32, math.MaxInt32
	// Clamp targets, computed against the original operand values; the NE
	// case is an endpoint trim, not a clamp, and skips equality propagation.
	var loA, hiA, loB, hiB int64
	trim := false
	switch k {
	case ir.CmpEQ:
		loA, hiA, loB, hiB = vb.Lo, vb.Hi, va.Lo, va.Hi
	case ir.CmpNE:
		trim = true
	case ir.CmpLT:
		loA, hiA, loB, hiB = lo, vb.Hi-1, va.Lo+1, hi
	case ir.CmpLE:
		loA, hiA, loB, hiB = lo, vb.Hi, va.Lo, hi
	case ir.CmpGT:
		loA, hiA, loB, hiB = vb.Lo+1, hi, lo, va.Hi-1
	case ir.CmpGE:
		loA, hiA, loB, hiB = vb.Lo, hi, lo, va.Hi
	default:
		return true
	}
	clamp := func(op operand, v Val, clo, chi int64) bool {
		if _, ok := v.Clamp(clo, chi); !ok {
			return false // infeasible at read time: dead edge
		}
		if op.reg >= 0 && (!cleanOnly || !o.dirty(op.reg)) {
			return refineReg(target, op.reg, clo, chi)
		}
		return true
	}
	trimTo := func(op operand, v Val, c int64) bool {
		nv, ok := v.trimNE(c)
		if !ok {
			return false
		}
		if op.reg >= 0 && (!cleanOnly || !o.dirty(op.reg)) {
			tv, tok := target.regs[op.reg].Clamp(nv.Lo, nv.Hi)
			if !tok {
				return false
			}
			target.regs[op.reg] = tv
		}
		return true
	}
	switch {
	case !trim:
		if !clamp(a, va, loA, hiA) || !clamp(b, vb, loB, hiB) {
			return false
		}
	default:
		if vb.IsExact() && !trimTo(a, va, vb.R) {
			return false
		}
		if va.IsExact() && !trimTo(b, vb, va.R) {
			return false
		}
	}
	// A compare result tested against a constant refines the compare's own
	// relation: "i = cmplt x, y; brT i == 0" means x >= y. The ipred being
	// live certifies the register holds exactly 0 or 1.
	if depth < 4 {
		if a.reg >= 0 && b.imm {
			if p := view.ipred[a.reg]; p.ok {
				if w, known := boolTest(k, b.val); known {
					if !refinePred(target, view, o, cleanOnly, p, w, depth+1) {
						return false
					}
				}
			}
		}
		if b.reg >= 0 && a.imm {
			if p := view.ipred[b.reg]; p.ok {
				if w, known := boolTest(flipCmp(k), a.val); known {
					if !refinePred(target, view, o, cleanOnly, p, w, depth+1) {
						return false
					}
				}
			}
		}
	}
	return true
}

// boolTest interprets "v k c is true" for a v known to be exactly 0 or 1:
// does it pin v's truth value?
func boolTest(k ir.OpKind, c int64) (val, known bool) {
	switch k {
	case ir.CmpEQ:
		if c == 0 || c == 1 {
			return c == 1, true
		}
	case ir.CmpNE:
		if c == 0 || c == 1 {
			return c == 0, true
		}
	case ir.CmpLT: // v < c
		if c == 1 {
			return false, true
		}
	case ir.CmpLE: // v <= c
		if c == 0 {
			return false, true
		}
	case ir.CmpGT: // v > c
		if c == 0 {
			return true, true
		}
	case ir.CmpGE: // v >= c
		if c == 1 {
			return true, true
		}
	}
	return false, false
}

// flipCmp rewrites "a k b" as "b flip(k) a".
func flipCmp(k ir.OpKind) ir.OpKind {
	switch k {
	case ir.CmpLT:
		return ir.CmpGT
	case ir.CmpLE:
		return ir.CmpGE
	case ir.CmpGT:
		return ir.CmpLT
	case ir.CmpGE:
		return ir.CmpLE
	}
	return k // EQ and NE are symmetric
}

// bootState mirrors Context.boot(): every register is zero except SP, which
// points at the 8-aligned top of the program's RAM.
func (a *analyzer) bootState() state {
	var s state
	for i := range s.regs {
		s.regs[i] = Exact(0)
	}
	if ri, ok := iregIndex(mach.RegSP); ok {
		s.regs[ri] = Exact(a.memLen &^ 7)
	}
	return s
}

func (a *analyzer) funcOf(w int) string {
	i := sort.SearchInts(a.fbases, w+1) - 1
	if i < 0 {
		return ""
	}
	name := a.fnames[i]
	if w < a.fbases[i]+a.img.FuncLen[name] {
		return name
	}
	return ""
}

// run drives the fixpoint: ascending worklist with widening, then a fixed
// number of descending sweeps (one parallel application of the transfer
// function each — monotone, so the result stays above the least fixpoint),
// then the reporting sweep that mints per-site verdicts into rep.
func (a *analyzer) run(rep *Report) {
	n := len(a.img.Instrs)
	entry := a.img.Entry
	if n == 0 || entry < 0 || entry >= n {
		a.sweepUnproven(rep, "no entry point: analysis not run")
		return
	}

	in := make([]state, n)
	visited := make([]bool, n)
	joins := make([]int, n)
	inWork := make([]bool, n)
	work := []int{entry}
	in[entry] = a.bootState()
	visited[entry] = true
	inWork[entry] = true

	flow := func(e edge, update func(t int, st state)) {
		if e.dead || e.to < 0 || e.to >= n {
			return
		}
		update(e.to, e.st)
	}

	for len(work) > 0 {
		if a.budget <= 0 {
			rep.Exhausted = true
			a.sweepUnproven(rep, "analysis budget exhausted: value ranges unavailable")
			return
		}
		w := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[w] = false
		s0 := in[w]
		o := a.xfer(w, s0, nil)
		for _, e := range a.edges(w, &s0, &o) {
			flow(e, func(t int, st state) {
				if !visited[t] {
					visited[t] = true
					in[t] = st
				} else {
					next := joinState(in[t], st)
					if next == in[t] {
						return
					}
					joins[t]++
					if joins[t] > widenAt {
						next = widenState(in[t], next)
					}
					in[t] = next
				}
				if !inWork[t] {
					inWork[t] = true
					work = append(work, t)
				}
			})
		}
	}

	// Descending sweeps: recompute every entry state from scratch as the
	// join of its (refined) incoming edges, recovering the precision the
	// widening threw away. Each sweep reads only the previous iterate and is
	// independently sound (it applies one parallel step of the sound
	// transfer system to a superset of the reachable states), so iterating
	// until the states stop changing — bounded by narrowRounds and the
	// transfer budget — is safe and lets a narrowed loop bound propagate
	// through arbitrarily long loop bodies.
	for round := 0; round < narrowRounds; round++ {
		if a.budget <= 0 {
			break // keep the last iterate: still sound, just less precise
		}
		nin := make([]state, n)
		nvis := make([]bool, n)
		nin[entry] = a.bootState()
		nvis[entry] = true
		for w := 0; w < n; w++ {
			if !visited[w] {
				continue
			}
			s0 := in[w]
			o := a.xfer(w, s0, nil)
			for _, e := range a.edges(w, &s0, &o) {
				flow(e, func(t int, st state) {
					if nvis[t] {
						nin[t] = joinState(nin[t], st)
					} else {
						nvis[t] = true
						nin[t] = st
					}
				})
			}
		}
		stable := true
		for w := 0; w < n && stable; w++ {
			if nvis[w] != visited[w] || nin[w] != in[w] {
				stable = false
			}
		}
		in, visited = nin, nvis
		if stable {
			break
		}
	}

	// Reporting sweep.
	for w := 0; w < n; w++ {
		if visited[w] {
			a.xfer(w, in[w], rep)
		} else {
			a.wordUnreachable(rep, w)
		}
	}
}

// sweepUnproven emits every site as unproven with a blanket reason (budget
// exhaustion, missing entry) — the sound answer when no fixpoint exists.
func (a *analyzer) sweepUnproven(rep *Report, reason string) {
	for w := range a.img.Instrs {
		a.eachSite(w, func(s *mach.SlotOp) {
			rep.add(a.site(w, s, false, reason))
		})
	}
}

// wordUnreachable emits the sites of a word no abstract path reaches. The
// abstraction over-approximates reachable concrete states, so these sites
// provably never execute — trivially safe.
func (a *analyzer) wordUnreachable(rep *Report, w int) {
	a.eachSite(w, func(s *mach.SlotOp) {
		rep.add(a.site(w, s, true, "unreachable: no path executes this site"))
	})
}

func (a *analyzer) eachSite(w int, f func(s *mach.SlotOp)) {
	in := a.img.Instrs[w]
	for si := range in.Slots {
		s := &in.Slots[si]
		switch {
		case s.Unit.Kind == mach.UBR:
			if s.Op.Kind == mach.OpJmpR {
				f(s)
			}
		case s.Op.Kind == ir.Load || s.Op.Kind == ir.LoadSpec || s.Op.Kind == ir.Store,
			s.Op.Kind == ir.Div || s.Op.Kind == ir.Rem:
			f(s)
		}
	}
}

func (a *analyzer) site(w int, s *mach.SlotOp, proven bool, detail string) Site {
	st := Site{
		Word:   w,
		Beat:   int(s.Beat),
		Unit:   s.Unit,
		Kind:   s.Op.Kind,
		Proven: proven,
		Detail: detail,
	}
	if a.src != nil {
		st.Func, st.Line = a.src(w, s.Unit, s.Beat)
	}
	if st.Func == "" {
		st.Func = a.funcOf(w)
	}
	return st
}
