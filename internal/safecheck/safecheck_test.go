package safecheck_test

import (
	"context"
	"os"
	"testing"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/safecheck"
	"github.com/multiflow-repro/trace/internal/schedcheck"
)

func compileExample(t *testing.T, name string, o opt.Options) *core.Result {
	t.Helper()
	src, err := os.ReadFile("../../examples/" + name + ".mf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(context.Background(), string(src),
		core.Options{Config: mach.Trace14(), Opt: o})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func analyzeExample(t *testing.T, name string, o opt.Options) *safecheck.Report {
	t.Helper()
	res := compileExample(t, name, o)
	return safecheck.Analyze(res.Image, safecheck.Options{
		Src: schedcheck.NewSourceMap(res.Image, res.Funcs),
	})
}

// The example programs are the precision regression suite: loop-bound
// recovery (rotated counters, unrolled bodies, compare results routed
// through the integer bank) must keep proving these site counts.
func TestExampleSiteCoverage(t *testing.T) {
	levels := []struct {
		name string
		opt  opt.Options
	}{
		{"O0", opt.None()},
		{"O1", opt.Options{Inline: true, UnrollFactor: 4}},
		{"O2", opt.Default()},
	}
	// minProven floors are what the analysis proves today; allProven pins
	// full coverage where it exists. fib is recursive: return addresses flow
	// through indirect jumps the analysis cannot bound, so only its
	// straight-line prologue site is provable.
	want := map[string]map[string]struct {
		minProven int
		allProven bool
	}{
		"daxpy":  {"O0": {6, true}, "O1": {30, true}, "O2": {80, true}},
		"matmul": {"O0": {9, true}, "O1": {43, false}, "O2": {145, false}},
		"sieve":  {"O0": {4, false}, "O1": {16, false}, "O2": {42, false}},
		"fib":    {"O0": {1, false}, "O1": {1, false}, "O2": {1, false}},
	}
	for ex, perLevel := range want {
		for _, lv := range levels {
			rep := analyzeExample(t, ex, lv.opt)
			w := perLevel[lv.name]
			t.Logf("%s/%s: %s", ex, lv.name, rep.Summary())
			if rep.Exhausted {
				t.Errorf("%s/%s: analysis budget exhausted", ex, lv.name)
			}
			if got := rep.Proven(); got < w.minProven {
				t.Errorf("%s/%s: proved %d/%d sites, want >= %d",
					ex, lv.name, got, rep.Total(), w.minProven)
			}
			if w.allProven && !rep.AllProven() {
				t.Errorf("%s/%s: want every site proven; unproven:", ex, lv.name)
				for _, s := range rep.Unproven() {
					t.Errorf("    %s", s.String())
				}
			}
		}
	}
}

// TestNarrowMachineConstInRegister pins the narrow-machine precision case:
// the 1-pair TRACE 7/200 has too few immediate slots per word, so the
// scheduler materializes loop strides and bounds into registers ("add i14,
// i22" where i22 always holds 1). The affine bookkeeping must see through
// registers with exact abstract values or every rotated loop on a narrow
// machine loses its bound and no memory site proves.
func TestNarrowMachineConstInRegister(t *testing.T) {
	src, err := os.ReadFile("../../examples/daxpy.mf")
	if err != nil {
		t.Fatal(err)
	}
	for _, lv := range []struct {
		name      string
		opt       opt.Options
		minProven int
		allProven bool
	}{
		{"O0", opt.None(), 6, true},
		// The unrolled narrow-machine loop still leaves some speculative
		// loads unproven (the widened counter copies outrun the equality
		// graph); the floor pins what proves today.
		{"O2", opt.Default(), 75, false},
	} {
		res, err := core.Compile(context.Background(), string(src),
			core.Options{Config: mach.Trace7(), Opt: lv.opt})
		if err != nil {
			t.Fatalf("%s: %v", lv.name, err)
		}
		rep := safecheck.Analyze(res.Image, safecheck.Options{
			Src: schedcheck.NewSourceMap(res.Image, res.Funcs),
		})
		t.Logf("daxpy/Trace7/%s: %s", lv.name, rep.Summary())
		if got := rep.Proven(); got < lv.minProven {
			t.Errorf("daxpy/Trace7/%s: proved %d/%d sites, want >= %d",
				lv.name, got, rep.Total(), lv.minProven)
		}
		if lv.allProven && !rep.AllProven() {
			t.Errorf("daxpy/Trace7/%s: want every site proven; unproven:", lv.name)
			for _, s := range rep.Unproven() {
				t.Errorf("    %s", s.String())
			}
		}
	}
}

func TestSiteAttribution(t *testing.T) {
	rep := analyzeExample(t, "daxpy", opt.None())
	if rep.Total() == 0 {
		t.Fatal("daxpy has no guarded sites")
	}
	for _, s := range rep.Sites {
		if s.Func == "" {
			t.Errorf("site %s has no function attribution", s.String())
		}
		if s.Word < 0 || s.Word >= rep.Words {
			t.Errorf("site %s outside image", s.String())
		}
	}
}

func TestCertifyGradesAndBitmask(t *testing.T) {
	res := compileExample(t, "daxpy", opt.Default())
	cert, err := safecheck.Certify(res.Image)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Level() != safecheck.CertSafe {
		t.Fatalf("Level() = %v, want CertSafe", cert.Level())
	}
	if cert.CertifiedImage() != res.Image {
		t.Fatal("certificate does not identify the image")
	}
	proven, total := cert.ProvenSites()
	if proven != total || proven == 0 {
		t.Fatalf("daxpy O2: proven %d/%d, want full coverage", proven, total)
	}
	// the bitmask must agree with the report, site by site
	for _, s := range cert.Report().Sites {
		want := s.Exec() && s.Proven
		if got := cert.SafeSite(s.Word, s.Unit, uint8(s.Beat)); got != want {
			t.Errorf("SafeSite(%d,%v,%d) = %v, want %v", s.Word, s.Unit, s.Beat, got, want)
		}
	}
	if cert.SafeSite(len(res.Image.Instrs)+7, mach.Unit{}, 0) {
		t.Error("SafeSite must be false for a site that does not exist")
	}
}

func TestCertifyRequiresMatchingResourceCert(t *testing.T) {
	a := compileExample(t, "daxpy", opt.None())
	b := compileExample(t, "sieve", opt.None())
	rep := safecheck.Analyze(a.Image, safecheck.Options{})
	if _, err := rep.Certify(nil); err == nil {
		t.Fatal("Certify(nil) must fail")
	}
	wrong, err := schedcheck.Certify(b.Image)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.Certify(wrong); err == nil {
		t.Fatal("Certify with a different image's resource cert must fail")
	}
}

func TestBudgetExhaustionIsSound(t *testing.T) {
	res := compileExample(t, "matmul", opt.Default())
	rep := safecheck.Analyze(res.Image, safecheck.Options{MaxVisits: 1})
	if !rep.Exhausted {
		t.Fatal("one visit must exhaust the budget")
	}
	if rep.Proven() != 0 {
		t.Fatalf("exhausted analysis proved %d sites, want 0", rep.Proven())
	}
	if rep.Total() == 0 {
		t.Fatal("exhausted analysis must still enumerate every site")
	}
}
