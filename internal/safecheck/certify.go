package safecheck

import (
	"fmt"

	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/schedcheck"
)

// CertLevel grades how much of the dynamic checking a proof has replaced.
type CertLevel int

const (
	// CertNone: no certificate; the simulator runs fully checked.
	CertNone CertLevel = iota
	// CertResource: schedcheck's proof; resource/race checks are skipped.
	CertResource
	// CertSafe: CertResource plus per-site safety proofs; proven sites
	// also skip bounds/alignment/zero-divisor guards.
	CertSafe
)

func (l CertLevel) String() string {
	switch l {
	case CertResource:
		return "resource"
	case CertSafe:
		return "safe"
	}
	return "none"
}

// siteKey identifies one issue slot; (unit, beat) is unique within a word.
type siteKey struct {
	word int
	unit mach.Unit
	beat uint8
}

// A SafeCertificate is proof that a specific linked image holds a resource
// certificate (schedcheck) AND that the sites in its bitmask can never make
// an effective address escape RAM, break alignment, or divide by zero. The
// simulator accepts it as authorization to run guard-free variants of
// exactly those sites; unproven sites keep every dynamic guard, so a
// partially-proven image still runs correctly, just with fewer guards
// removed.
//
// Like the resource certificate it extends, a SafeCertificate identifies
// the image by pointer and cannot, by design, detect mutation of the image
// after certification. The contract is strictly weaker than the fast
// tier's: at a proven site the bounds, alignment, and zero-divisor guards
// are GONE, so a post-certification mutation that retargets a proven load
// out of RAM is caught only by the Go runtime's slice bounds / divide
// checks, which the safe tier converts back into the matching Fault
// (TrapMemBounds / TrapDivZero) at a recover boundary — the blast radius is
// the faulting context, never the process. PC bounds, bad-op, cycle-limit,
// and every guard at unproven sites remain armed; the mutation tests in
// internal/vliw pin all of this down.
type SafeCertificate struct {
	img  *isa.Image
	res  *schedcheck.Certificate
	rep  *Report
	safe map[siteKey]bool
}

// CertifiedImage returns the image this certificate covers. It implements
// vliw.Certificate (and, with SafeSite, vliw.SafetyCertificate).
func (c *SafeCertificate) CertifiedImage() *isa.Image { return c.img }

// Resource returns the underlying schedcheck certificate.
func (c *SafeCertificate) Resource() *schedcheck.Certificate { return c.res }

// Report returns the safety analysis report backing the certificate.
func (c *SafeCertificate) Report() *Report { return c.rep }

// Level returns CertSafe (the type exists only at that grade).
func (c *SafeCertificate) Level() CertLevel { return CertSafe }

// SafeSite reports whether the site issued at (word, unit, beat) is proven
// safe — i.e. whether the simulator may run its guard-free variant.
func (c *SafeCertificate) SafeSite(word int, unit mach.Unit, beat uint8) bool {
	return c.safe[siteKey{word, unit, beat}]
}

// ProvenSites returns how much of the image the bitmask covers.
func (c *SafeCertificate) ProvenSites() (proven, total int) {
	return c.rep.Proven(), c.rep.Total()
}

// Certify mints a graded certificate from the analysis report. It requires
// the resource certificate for the same image — the latency-free transfer
// function the analysis uses is only sound on schedcheck-clean schedules —
// and succeeds even when nothing was proven: a certificate with an empty
// bitmask arms a safe tier that behaves exactly like the fast tier.
func (r *Report) Certify(res *schedcheck.Certificate) (*SafeCertificate, error) {
	if r.img == nil {
		return nil, fmt.Errorf("safecheck: report records no image")
	}
	if res == nil || res.CertifiedImage() != r.img {
		return nil, fmt.Errorf("safecheck: resource certificate does not cover this image")
	}
	c := &SafeCertificate{img: r.img, res: res, rep: r, safe: map[siteKey]bool{}}
	for i := range r.Sites {
		s := &r.Sites[i]
		if s.Exec() && s.Proven {
			c.safe[siteKey{s.Word, s.Unit, uint8(s.Beat)}] = true
		}
	}
	return c, nil
}

// Certify runs both proofs on the image — schedcheck's resource/race check,
// then the safety analysis — and mints the graded certificate.
func Certify(img *isa.Image) (*SafeCertificate, error) {
	res, err := schedcheck.Certify(img)
	if err != nil {
		return nil, err
	}
	return Analyze(img, Options{}).Certify(res)
}
