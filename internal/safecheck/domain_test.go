package safecheck

import (
	"math"
	"testing"
)

func TestExactWrapsToInt32(t *testing.T) {
	v := Exact(math.MaxInt32 + 1)
	if !v.IsExact() || v.R != math.MinInt32 {
		t.Fatalf("Exact(2^31) = %s, want =%d", v, math.MinInt32)
	}
}

func TestAddOverflowDegradesToTop(t *testing.T) {
	a := Val{0, math.MaxInt32, 1, 0}
	if got := a.Add(Exact(1)); got != Top {
		t.Fatalf("[0,MaxInt32]+1 = %s, want Top", got)
	}
	b := Exact(10).Add(Exact(32))
	if !b.IsExact() || b.R != 42 {
		t.Fatalf("10+32 = %s", b)
	}
}

func TestMulKeepsCongruence(t *testing.T) {
	// i in [0,255] times 8: the address stride the examples use
	i := Val{0, 255, 1, 0}
	v := i.Mul(Exact(8))
	if v.Lo != 0 || v.Hi != 2040 || v.M != 8 || v.R != 0 {
		t.Fatalf("[0,255]*8 = %s, want [0,2040]≡0(mod 8)", v)
	}
}

func TestShlIsMulByPowerOfTwo(t *testing.T) {
	i := Val{0, 255, 1, 0}
	if got, want := i.Shl(Exact(3)), i.Mul(Exact(8)); got != want {
		t.Fatalf("[0,255]<<3 = %s, want %s", got, want)
	}
}

func TestAndMaskAligns(t *testing.T) {
	v := Val{0, 1000, 1, 0}.And(Exact(^int64(7)))
	if v.M != 8 || v.R != 0 || v.Lo < 0 || v.Hi > 1000 {
		t.Fatalf("[0,1000] & ^7 = %s, want 8-aligned within [0,1000]", v)
	}
}

func TestJoinHullAndGcd(t *testing.T) {
	v := Exact(4).Join(Exact(12))
	if v.Lo != 4 || v.Hi != 12 || v.M != 8 || v.R != 4 {
		t.Fatalf("join(=4,=12) = %s, want [4,12]≡4(mod 8)", v)
	}
}

func TestWidenClimbsThresholds(t *testing.T) {
	old := Val{0, 100, 1, 0}
	grown := Val{0, 101, 1, 0}
	w := grown.Widen(old)
	if w.Hi != 1<<10 || w.Lo != 0 {
		t.Fatalf("widen step 1 = %s, want hi at first threshold %d", w, 1<<10)
	}
	w2 := Val{0, w.Hi + 1, 1, 0}.Widen(w)
	if w2.Hi != 1<<16 {
		t.Fatalf("widen step 2 = %s, want hi at %d", w2, 1<<16)
	}
	// a stable bound must not move
	if s := old.Widen(old); s != old {
		t.Fatalf("widen of unchanged value = %s, want %s", s, old)
	}
}

func TestClampSnapsToCongruence(t *testing.T) {
	v := Val{0, 2040, 8, 0}
	c, ok := v.Clamp(1, 2039)
	if !ok || c.Lo != 8 || c.Hi != 2032 {
		t.Fatalf("clamp [0,2040]≡0(8) to [1,2039] = %s ok=%v, want [8,2032]", c, ok)
	}
	if _, ok := v.Clamp(1, 7); ok {
		t.Fatal("clamp to a congruence gap should be infeasible")
	}
}

func TestClampCollapsesToExact(t *testing.T) {
	v, ok := (Val{0, 100, 1, 0}).Clamp(42, 42)
	if !ok || !v.IsExact() || v.R != 42 {
		t.Fatalf("clamp to singleton = %s ok=%v", v, ok)
	}
}

func TestTrimNE(t *testing.T) {
	v, ok := (Val{0, 10, 1, 0}).trimNE(0)
	if !ok || v.Lo != 1 {
		t.Fatalf("trim 0 from [0,10] = %s ok=%v", v, ok)
	}
	if _, ok := Exact(0).trimNE(0); ok {
		t.Fatal("trimming the only value must report infeasible")
	}
	mid, ok := (Val{0, 10, 1, 0}).trimNE(5)
	if !ok || mid.Lo != 0 || mid.Hi != 10 {
		t.Fatalf("interior trim must be a no-op, got %s", mid)
	}
}

func TestExcludesZero(t *testing.T) {
	cases := []struct {
		v    Val
		want bool
	}{
		{Exact(0), false},
		{Exact(3), true},
		{Val{1, 10, 1, 0}, true},
		{Val{-10, -1, 1, 0}, true},
		{Val{-10, 10, 1, 0}, false},
		{Val{-10, 10, 4, 1}, true}, // ≡1 (mod 4) is never zero
		{Val{-10, 10, 4, 0}, false},
	}
	for _, c := range cases {
		if got := c.v.ExcludesZero(); got != c.want {
			t.Errorf("%s.ExcludesZero() = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestDivRemRanges(t *testing.T) {
	if v := (Val{0, 100, 1, 0}).Div(Exact(10)); v.Lo != 0 || v.Hi != 10 {
		t.Fatalf("[0,100]/10 = %s", v)
	}
	// stride a multiple of the divisor pins the remainder
	if v := (Val{3, 83, 8, 3}).Rem(Exact(4)); !v.IsExact() || v.R != 3 {
		t.Fatalf("([3,83]≡3(8)) %% 4 = %s, want =3", v)
	}
	if v := (Val{0, 100, 1, 0}).Rem(Exact(7)); v.Lo != 0 || v.Hi != 6 {
		t.Fatalf("[0,100] %% 7 = %s", v)
	}
}
