// Package safecheck proves runtime safety guards redundant. It runs a
// whole-image value-range abstract interpretation (interval × alignment
// congruence per integer register, widening at loop joins, descending
// narrowing sweeps) over the same machine-level CFG schedcheck certifies,
// and classifies every memory reference, divide, and indirect jump as
// proven-safe or unprovable — with word/beat/unit and func:line attribution
// in the simulator's Fault vocabulary.
//
// schedcheck answers "does this image respect the §6 resource and
// no-interlock contract"; safecheck answers the next question down: "can
// any execution of this image make an effective address escape RAM, break
// alignment, or divide by zero". A proven site needs no dynamic guard, which
// is what arms the simulator's third (safe) execution tier and what a future
// JIT needs before it can emit guard-free native code.
package safecheck

import (
	"fmt"
	"sort"
	"strings"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/schedcheck"
)

// String renders the value in report syntax: "=7", "[0,252]≡0(mod 4)".
func (a Val) String() string {
	if a.M == 0 {
		return fmt.Sprintf("=%d", a.R)
	}
	s := fmt.Sprintf("[%d,%d]", a.Lo, a.Hi)
	if a.M > 1 {
		s += fmt.Sprintf("≡%d(mod %d)", a.R, a.M)
	}
	return s
}

// A Site is one guarded operation — a load/store (bounds + alignment), a
// divide/remainder (zero divisor), or an indirect jump (PC range) — with
// the analysis verdict. Attribution mirrors the simulator's Fault fields so
// a verdict and the trap it prevents read the same way.
type Site struct {
	Word   int       // instruction word
	Beat   int       // issue beat within the word
	Unit   mach.Unit // issuing functional unit
	Kind   ir.OpKind // Load/LoadSpec/Store/Div/Rem or mach.OpJmpR
	Func   string    // containing function ("" if unknown)
	Line   int       // source line (0 if unknown)
	Proven bool      // true: the guard can never fire
	Detail string    // the proven ranges, or why the site is unprovable
}

// Exec reports whether the simulator has a guard-free variant for this kind
// of site. Indirect-jump verdicts are report-only: the PC bounds check is
// one compare on a cold path and stays dynamic in every tier.
func (s *Site) Exec() bool { return s.Kind != mach.OpJmpR }

func (s *Site) String() string {
	verdict := "unproven"
	if s.Proven {
		verdict = "proven"
	}
	at := ""
	if s.Func != "" {
		at = fmt.Sprintf(" (%s:%d)", s.Func, s.Line)
	}
	return fmt.Sprintf("%s[%s] word=%d beat=%d unit=%s%s: %s",
		verdict, mach.OpName(s.Kind), s.Word, s.Beat, s.Unit, at, s.Detail)
}

// A Report is the analysis result for one image: every site, in word order.
type Report struct {
	Sites     []Site
	Words     int
	Exhausted bool // the transfer budget ran out; every site is unproven
	img       *isa.Image
}

// Image returns the analyzed image.
func (r *Report) Image() *isa.Image { return r.img }

func (r *Report) add(s Site) { r.Sites = append(r.Sites, s) }

// Proven counts proven sites that have a guard-free execution variant.
func (r *Report) Proven() int {
	n := 0
	for i := range r.Sites {
		if r.Sites[i].Exec() && r.Sites[i].Proven {
			n++
		}
	}
	return n
}

// Total counts sites that have a guard-free execution variant.
func (r *Report) Total() int {
	n := 0
	for i := range r.Sites {
		if r.Sites[i].Exec() {
			n++
		}
	}
	return n
}

// AllProven reports whether every executable site is proven safe.
func (r *Report) AllProven() bool { return r.Proven() == r.Total() }

// Unproven returns the sites the analysis could not discharge.
func (r *Report) Unproven() []Site {
	var out []Site
	for i := range r.Sites {
		if !r.Sites[i].Proven {
			out = append(out, r.Sites[i])
		}
	}
	return out
}

// Summary is a one-line digest for logs and tool output.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "safecheck: %d/%d guarded sites proven safe", r.Proven(), r.Total())
	jr, jrOK := 0, 0
	for i := range r.Sites {
		if !r.Sites[i].Exec() {
			jr++
			if r.Sites[i].Proven {
				jrOK++
			}
		}
	}
	if jr > 0 {
		fmt.Fprintf(&b, ", %d/%d indirect jumps in-image", jrOK, jr)
	}
	if r.Exhausted {
		b.WriteString(" (analysis budget exhausted)")
	}
	return b.String()
}

// Options configures Analyze.
type Options struct {
	// Src attributes sites to func:line (see schedcheck.NewSourceMap).
	Src schedcheck.SourceMap
	// MaxVisits caps word-transfer evaluations before the analysis gives
	// up and reports every site unproven (a soundness-preserving bail-out
	// for pathological fuzz images). 0 means a generous default.
	MaxVisits int
}

// Analyze runs the abstract interpretation over the whole image and returns
// the per-site verdicts. It never fails: an image it cannot reason about
// simply gets no proven sites.
func Analyze(img *isa.Image, opts Options) *Report {
	n := len(img.Instrs)
	succ, _ := schedcheck.CFG(img)
	budget := opts.MaxVisits
	if budget <= 0 {
		budget = defaultBudget
		if 64*n > budget {
			budget = 64 * n
		}
	}
	a := &analyzer{
		img:    img,
		succ:   succ,
		memLen: img.RequiredMem(),
		src:    opts.Src,
		budget: budget,
	}
	for name := range img.FuncBase {
		a.fnames = append(a.fnames, name)
	}
	sort.Slice(a.fnames, func(i, j int) bool {
		return img.FuncBase[a.fnames[i]] < img.FuncBase[a.fnames[j]]
	})
	for _, name := range a.fnames {
		a.fbases = append(a.fbases, img.FuncBase[name])
	}
	rep := &Report{Words: n, img: img}
	a.run(rep)
	return rep
}

// addMemSite classifies one load/store: the effective address interval must
// sit inside RAM and its congruence must pin the access-size alignment.
// eaOf sums the two int32 operands in int64, so the interval here is the
// raw sum — no wrap to model.
func (a *analyzer) addMemSite(rep *Report, w int, s *mach.SlotOp, st *state) {
	o := &s.Op
	size := int64(o.Type.Size())
	if size != 4 && size != 8 {
		rep.add(a.site(w, s, false, fmt.Sprintf("unsupported access size %d", size)))
		return
	}
	if !o.A.IsImm && !o.A.Reg.Valid() {
		// eaOf rejects this operand shape before summing (the checked
		// tier faults); a guard-free variant would compute a different
		// address, so the site can never be proven.
		rep.add(a.site(w, s, false, "address operand has no register"))
		return
	}
	va, vb := st.argVal(o.A), st.argVal(o.B)
	eaLo, eaHi := va.Lo+vb.Lo, va.Hi+vb.Hi
	m := gcd(va.M, vb.M)
	r := va.R + vb.R
	ea := fmt.Sprintf("ea %s+%s", va, vb)
	inRAM := eaLo >= ir.GlobalBase && eaHi <= a.memLen-size
	aligned := mod(r, size) == 0 && (m == 0 || m%size == 0)
	if inRAM && aligned {
		rep.add(a.site(w, s, true,
			fmt.Sprintf("%s in ram [%d,%d), %d-aligned", ea, int64(ir.GlobalBase), a.memLen, size)))
		return
	}
	var why []string
	if !inRAM {
		why = append(why, fmt.Sprintf("%s may escape ram [%d,%d)", ea, int64(ir.GlobalBase), a.memLen))
	}
	if !aligned {
		why = append(why, fmt.Sprintf("%s not provably %d-aligned", ea, size))
	}
	rep.add(a.site(w, s, false, strings.Join(why, "; ")))
}

// addDivSite classifies one integer divide/remainder: the divisor's
// abstract value must exclude zero.
func (a *analyzer) addDivSite(rep *Report, w int, s *mach.SlotOp, st *state) {
	d := st.argVal(s.Op.B)
	if d.ExcludesZero() {
		rep.add(a.site(w, s, true, fmt.Sprintf("divisor %s excludes zero", d)))
	} else {
		rep.add(a.site(w, s, false, fmt.Sprintf("divisor %s may be zero", d)))
	}
}

// addJmpRSite classifies one indirect jump: report-only (the PC guard stays
// dynamic), but the verdict tells a reader whether return addresses can be
// proven in-image.
func (a *analyzer) addJmpRSite(rep *Report, w int, s *mach.SlotOp, st *state) {
	t := st.argVal(s.Op.A)
	n := int64(len(a.img.Instrs))
	if t.Lo >= 0 && t.Hi < n {
		rep.add(a.site(w, s, true, fmt.Sprintf("target %s inside image [0,%d)", t, n)))
	} else {
		rep.add(a.site(w, s, false, fmt.Sprintf("target %s may leave image [0,%d)", t, n)))
	}
}
