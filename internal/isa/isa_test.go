package isa

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

func oneSlot(u mach.Unit, beat uint8, op mach.Op) *mach.Instr {
	return &mach.Instr{Slots: []mach.SlotOp{{Unit: u, Beat: beat, Op: op}}}
}

func roundTrip(t *testing.T, in *mach.Instr, cfg mach.Config) *mach.Instr {
	t.Helper()
	words, err := Encode(in, cfg)
	if err != nil {
		t.Fatalf("encode %s: %v", in.String(), err)
	}
	dec, err := Decode(words, cfg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	re, err := Encode(dec, cfg)
	if err != nil {
		t.Fatalf("re-encode %s: %v", dec.String(), err)
	}
	for i := range words {
		if words[i] != re[i] {
			t.Fatalf("word %d mismatch: %08x vs %08x\nin:  %s\nout: %s",
				i, words[i], re[i], in.String(), dec.String())
		}
	}
	return dec
}

func TestEncodeALUOps(t *testing.T) {
	cfg := mach.Trace28()
	r := func(b mach.Bank, board, idx uint8) mach.PReg { return mach.PReg{Bank: b, Board: board, Idx: idx} }
	cases := []struct {
		name string
		unit mach.Unit
		beat uint8
		op   mach.Op
	}{
		{"add rr", mach.Unit{Kind: mach.UIALU, Pair: 1, Idx: 0}, 0,
			mach.Op{Kind: ir.Add, Type: ir.I32, Dst: r(mach.BankI, 1, 5),
				A: mach.RegArg(r(mach.BankI, 1, 6)), B: mach.RegArg(r(mach.BankI, 1, 7))}},
		{"add imm6", mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: 1}, 1,
			mach.Op{Kind: ir.Add, Type: ir.I32, Dst: r(mach.BankI, 2, 9),
				A: mach.RegArg(r(mach.BankI, 0, 1)), B: mach.ImmArg(-32)}},
		{"add imm32 late", mach.Unit{Kind: mach.UIALU, Pair: 3, Idx: 0}, 1,
			mach.Op{Kind: ir.Add, Type: ir.I32, Dst: r(mach.BankI, 3, 63),
				A: mach.RegArg(r(mach.BankI, 3, 0)), B: mach.ImmArg(123456)}},
		{"cmp to branch bank", mach.Unit{Kind: mach.UIALU, Pair: 2, Idx: 1}, 0,
			mach.Op{Kind: ir.CmpLT, Type: ir.I32, Dst: r(mach.BankB, 2, 6),
				A: mach.RegArg(r(mach.BankI, 2, 10)), B: mach.RegArg(r(mach.BankI, 2, 11))}},
		{"load f64", mach.Unit{Kind: mach.UIALU, Pair: 1, Idx: 0}, 0,
			mach.Op{Kind: ir.Load, Type: ir.F64, Dst: r(mach.BankF, 1, 12),
				A: mach.RegArg(r(mach.BankI, 1, 3)), B: mach.ImmArg(16)}},
		{"speculative load", mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: 0}, 0,
			mach.Op{Kind: ir.LoadSpec, Type: ir.I32, Dst: r(mach.BankI, 2, 30), Spec: true,
				A: mach.RegArg(r(mach.BankI, 0, 3)), B: mach.ImmArg(-8)}},
		{"store via store file", mach.Unit{Kind: mach.UIALU, Pair: 2, Idx: 1}, 1,
			mach.Op{Kind: ir.Store, Type: ir.F64,
				A: mach.RegArg(r(mach.BankI, 2, 3)), B: mach.ImmArg(24),
				C: mach.RegArg(r(mach.BankSF, 2, 7))}},
		{"movsf", mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: 1}, 0,
			mach.Op{Kind: mach.OpMovSF, Type: ir.I32, Dst: r(mach.BankSF, 0, 3),
				A: mach.RegArg(r(mach.BankI, 0, 22))}},
		{"fadd", mach.Unit{Kind: mach.UFA, Pair: 2}, 0,
			mach.Op{Kind: ir.FAdd, Type: ir.F64, Dst: r(mach.BankF, 2, 8),
				A: mach.RegArg(r(mach.BankF, 2, 1)), B: mach.RegArg(r(mach.BankF, 2, 2))}},
		{"fmul", mach.Unit{Kind: mach.UFM, Pair: 3}, 0,
			mach.Op{Kind: ir.FMul, Type: ir.F64, Dst: r(mach.BankF, 3, 30),
				A: mach.RegArg(r(mach.BankF, 3, 4)), B: mach.RegArg(r(mach.BankF, 3, 5))}},
		{"ftoi cross write", mach.Unit{Kind: mach.UFA, Pair: 1}, 0,
			mach.Op{Kind: ir.FtoI, Type: ir.I32, Dst: r(mach.BankI, 0, 17),
				A: mach.RegArg(r(mach.BankF, 1, 9))}},
		{"cross-board F move (tagged bus)", mach.Unit{Kind: mach.UFM, Pair: 0}, 0,
			mach.Op{Kind: ir.Mov, Type: ir.F64, Dst: r(mach.BankF, 3, 11),
				A: mach.RegArg(r(mach.BankF, 0, 2))}},
		{"select", mach.Unit{Kind: mach.UIALU, Pair: 1, Idx: 1}, 0,
			mach.Op{Kind: ir.Select, Type: ir.I32, Dst: r(mach.BankI, 1, 20),
				A: mach.RegArg(r(mach.BankB, 1, 3)),
				B: mach.RegArg(r(mach.BankI, 1, 21)), C: mach.ImmArg(9)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dec := roundTrip(t, oneSlot(c.unit, c.beat, c.op), cfg)
			got := dec.Find(c.unit, c.beat)
			if got == nil {
				t.Fatalf("slot lost: %s", dec.String())
			}
			if got.Op.Kind != c.op.Kind || got.Op.Dst != c.op.Dst {
				t.Errorf("decoded %s, want kind=%s dst=%s", got.Op.String(),
					mach.OpName(c.op.Kind), c.op.Dst)
			}
		})
	}
}

func TestEncodeBranches(t *testing.T) {
	cfg := mach.Trace14()
	cases := []mach.Op{
		{Kind: mach.OpBrT, A: mach.RegArg(mach.PReg{Bank: mach.BankB, Board: 1, Idx: 4}), Target: 1234, Prio: 2},
		{Kind: mach.OpJmp, Target: 777},
		{Kind: mach.OpCall, Target: 99, Dst: mach.RegLR},
		{Kind: mach.OpJmpR, A: mach.RegArg(mach.PReg{Bank: mach.BankI, Board: 0, Idx: 2})},
		{Kind: mach.OpHalt},
		{Kind: mach.OpSyscall, Sym: "print_i"},
		{Kind: mach.OpSyscall, Sym: "print_f"},
	}
	for _, op := range cases {
		pair := uint8(0)
		if op.Kind == mach.OpBrT {
			pair = 1
		}
		in := oneSlot(mach.Unit{Kind: mach.UBR, Pair: pair}, 0, op)
		dec := roundTrip(t, in, cfg)
		got := dec.Find(mach.Unit{Kind: mach.UBR, Pair: pair}, 0)
		if got == nil {
			t.Fatalf("branch lost: %s", dec.String())
		}
		if got.Op.Kind != op.Kind || got.Op.Target != op.Target || got.Op.Prio != op.Prio {
			t.Errorf("decoded %s, want %s", got.Op.String(), op.String())
		}
	}
}

func TestEncodeConstF(t *testing.T) {
	cfg := mach.Trace7()
	for _, v := range []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), 1e-300} {
		op := mach.Op{Kind: ir.ConstF, Type: ir.F64, FImm: v,
			Dst: mach.PReg{Bank: mach.BankF, Board: 0, Idx: 9}}
		dec := roundTrip(t, oneSlot(mach.Unit{Kind: mach.UFA, Pair: 0}, 0, op), cfg)
		got := dec.Find(mach.Unit{Kind: mach.UFA, Pair: 0}, 0)
		if got.Op.FImm != v {
			t.Errorf("constf %g decoded as %g", v, got.Op.FImm)
		}
	}
}

func TestEncodeRejectsIllegal(t *testing.T) {
	cfg := mach.Trace14()
	r := func(b mach.Bank, board, idx uint8) mach.PReg { return mach.PReg{Bank: b, Board: board, Idx: idx} }
	bad := []struct {
		name string
		in   *mach.Instr
	}{
		{"non-local read", oneSlot(mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: 0}, 0,
			mach.Op{Kind: ir.Add, Type: ir.I32, Dst: r(mach.BankI, 0, 1),
				A: mach.RegArg(r(mach.BankI, 1, 2)), B: mach.ImmArg(1)})},
		{"wrong-side read", oneSlot(mach.Unit{Kind: mach.UFA, Pair: 0}, 0,
			mach.Op{Kind: ir.FAdd, Type: ir.F64, Dst: r(mach.BankF, 0, 1),
				A: mach.RegArg(r(mach.BankI, 0, 2)), B: mach.RegArg(r(mach.BankF, 0, 3))})},
		{"cross SF write", oneSlot(mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: 0}, 0,
			mach.Op{Kind: mach.OpMovSF, Type: ir.I32, Dst: r(mach.BankSF, 1, 1),
				A: mach.RegArg(r(mach.BankI, 0, 2))})},
		{"cross BB write", oneSlot(mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: 0}, 0,
			mach.Op{Kind: ir.CmpEQ, Type: ir.I32, Dst: r(mach.BankB, 1, 1),
				A: mach.RegArg(r(mach.BankI, 0, 2)), B: mach.ImmArg(0)})},
		{"branch plus early imm32", &mach.Instr{Slots: []mach.SlotOp{
			{Unit: mach.Unit{Kind: mach.UBR, Pair: 0}, Beat: 0, Op: mach.Op{Kind: mach.OpJmp, Target: 5}},
			{Unit: mach.Unit{Kind: mach.UIALU, Pair: 0, Idx: 0}, Beat: 0,
				Op: mach.Op{Kind: ir.Add, Type: ir.I32, Dst: r(mach.BankI, 0, 1),
					A: mach.RegArg(r(mach.BankI, 0, 2)), B: mach.ImmArg(100000)}},
		}}},
		{"two ops one unit slot", &mach.Instr{Slots: []mach.SlotOp{
			{Unit: mach.Unit{Kind: mach.UFA, Pair: 0}, Beat: 0, Op: mach.Op{Kind: ir.FNeg, Type: ir.F64,
				Dst: r(mach.BankF, 0, 1), A: mach.RegArg(r(mach.BankF, 0, 2))}},
			{Unit: mach.Unit{Kind: mach.UFA, Pair: 0}, Beat: 0, Op: mach.Op{Kind: ir.FNeg, Type: ir.F64,
				Dst: r(mach.BankF, 0, 3), A: mach.RegArg(r(mach.BankF, 0, 4))}},
		}}},
		{"pair out of range", oneSlot(mach.Unit{Kind: mach.UIALU, Pair: 3, Idx: 0}, 0,
			mach.Op{Kind: ir.Add, Type: ir.I32, Dst: r(mach.BankI, 3, 1),
				A: mach.RegArg(r(mach.BankI, 3, 2)), B: mach.ImmArg(1)})},
	}
	for _, c := range bad {
		if _, err := Encode(c.in, cfg); err == nil {
			t.Errorf("%s: encoded without error: %s", c.name, c.in.String())
		}
	}
}

func TestNopIsAllZero(t *testing.T) {
	cfg := mach.Trace28()
	words, err := Encode(&mach.Instr{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != 0 {
			t.Fatalf("empty instruction has nonzero word %d: %08x", i, w)
		}
	}
	dec, err := Decode(words, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Slots) != 0 {
		t.Errorf("all-zero words decoded to %s", dec.String())
	}
}

// TestPackUnpackProperty: the §6.5.1 mask format is lossless and strictly
// no larger than fixed-width plus masks, for arbitrary instruction streams.
func TestPackUnpackProperty(t *testing.T) {
	cfg := mach.Trace14()
	wpi := WordsPerPair * cfg.Pairs
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%40) + 1
		words := make([][]uint32, count)
		for i := range words {
			words[i] = make([]uint32, wpi)
			for j := range words[i] {
				if rng.Intn(3) == 0 { // sparse, like real code
					words[i][j] = rng.Uint32() | 1 // nonzero
				}
			}
		}
		packed := Pack(words, cfg)
		got := Unpack(packed, count, cfg)
		if len(got) != count {
			return false
		}
		for i := range words {
			for j := range words[i] {
				if got[i][j] != words[i][j] {
					return false
				}
			}
		}
		// size bound: masks (4 words per block of 4) + payload
		blocks := (count + 3) / 4
		payload := 0
		for i := range words {
			for _, w := range words[i] {
				if w != 0 {
					payload++
				}
			}
		}
		return len(packed) == 4*blocks+payload
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackedSavesOnSparseCode(t *testing.T) {
	cfg := mach.Trace28()
	wpi := WordsPerPair * cfg.Pairs
	words := make([][]uint32, 16)
	for i := range words {
		words[i] = make([]uint32, wpi)
		words[i][i%wpi] = 0xdeadbeef // one op per instruction
	}
	packed := Pack(words, cfg)
	if PackedSize(packed) >= FixedSize(16, cfg) {
		t.Errorf("mask format failed to shrink sparse code: %d vs %d",
			PackedSize(packed), FixedSize(16, cfg))
	}
}
