// Package isa implements the TRACE instruction set encoding: the Figure-3
// fixed-width instruction word (8 x 32-bit words per I-F pair, early/late
// beats, a shared immediate word per beat), the §6.5.1 variable-length main
// memory representation (blocks of four instructions preceded by four mask
// words that elide no-op fields), and the linker that lays out functions and
// globals into an executable image.
//
// Word layout per pair p (words 8p..8p+7):
//
//	w0  I-ALU0 early    w4  I-ALU0 late
//	w1  shared imm/branch word (early)
//	w5  shared imm word (late)
//	w2  I-ALU1 early    w6  I-ALU1 late
//	w3  F adder (FA)    w7  F multiplier (FM)
//
// ALU/F operation word:
//
//	[31:25] opcode+1 (0 = no-op, so zero-filled cache words are no-ops)
//	[24:19] dest register (store data SF register for stores)
//	[18:16] dest_bank: 0 none, 1..4 I bank of board 0..3, 5 paired F,
//	        6 paired SF, 7 paired branch bank. SELECT reuses this field as
//	        its branch-bank condition selector (its dest is always local).
//	[15:10] src1 register
//	[9:8]   src2 mode: 0 none, 1 register, 2 inline 6-bit immediate,
//	        3 32-bit immediate from the beat's shared word
//	[7:2]   src2 register / signed 6-bit immediate
//	[1]     64-bit flag (element size for loads/stores/moves/selects)
//	[0]     src1 valid
//
// Early shared word w1: a 32-bit immediate when any early op uses src2
// mode 3 (or the high half of an F constant); otherwise, if nonzero, the
// pair's branch word:
//
//	[31:29] branch-bank test bit   [28:26] priority
//	[25:22] kind: 1 brt, 2 jmp, 3 call, 4 jmpr, 5 halt, 6 syscall
//	[21:0]  signed displacement (instructions), jmpr register, or service
//
// The compiler guarantees a branch and an early long immediate never share
// a pair (§6.1: the 32-bit immediate field is "flexibly shared between
// ALU0, ALU1, and a 32-bit PC adder").
package isa

import (
	"fmt"
	"math"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// WordsPerPair is the number of 32-bit words per I-F pair per instruction.
const WordsPerPair = 8

// EncodeError reports an instruction that does not fit the format.
type EncodeError struct{ Msg string }

func (e *EncodeError) Error() string { return "isa: " + e.Msg }

func errf(format string, args ...any) error {
	return &EncodeError{fmt.Sprintf(format, args...)}
}

const (
	brNone    = 0
	brBrT     = 1
	brJmp     = 2
	brCall    = 3
	brJmpR    = 4
	brHalt    = 5
	brSyscall = 6
)

// Syscall service numbers.
const (
	SysPrintI = 0
	SysPrintF = 1
)

// Encode packs one wide instruction into 8×pairs words.
func Encode(in *mach.Instr, cfg mach.Config) ([]uint32, error) {
	words := make([]uint32, WordsPerPair*cfg.Pairs)
	type immUse struct {
		used bool
		val  uint32
	}
	imm := make([]immUse, 2*cfg.Pairs) // (pair, beat)
	branch := make([]bool, cfg.Pairs)

	setImm := func(pair int, beat int, v uint32) error {
		k := 2*pair + beat
		if imm[k].used && imm[k].val != v {
			return errf("two long immediates on pair %d beat %d", pair, beat)
		}
		imm[k] = immUse{true, v}
		return nil
	}

	for si := range in.Slots {
		s := &in.Slots[si]
		p := int(s.Unit.Pair)
		if p >= cfg.Pairs {
			return nil, errf("slot on pair %d of a %d-pair machine", p, cfg.Pairs)
		}
		switch s.Unit.Kind {
		case mach.UBR:
			if branch[p] {
				return nil, errf("two branch ops on pair %d", p)
			}
			branch[p] = true
			w, err := encodeBranch(&s.Op)
			if err != nil {
				return nil, err
			}
			words[WordsPerPair*p+1] = w
		case mach.UIALU, mach.UFA, mach.UFM:
			// All register reads address the executing pair's own banks on
			// the executing side; the operand fields carry neither board
			// nor bank, so a mismatch would silently read the wrong
			// location. Reject it here.
			wantBank := mach.BankI
			if s.Unit.Kind == mach.UFA || s.Unit.Kind == mach.UFM {
				wantBank = mach.BankF
			}
			for ai, a := range []mach.Arg{s.Op.A, s.Op.B, s.Op.C} {
				if a.IsImm || !a.Reg.Valid() {
					continue
				}
				if int(a.Reg.Board) != p {
					return nil, errf("%s on pair %d reads non-local register %s",
						mach.OpName(s.Op.Kind), p, a.Reg)
				}
				// A (select cond) is a branch-bank read; C of a store is the
				// store file: both encoded outside the source fields.
				if (s.Op.Kind == ir.Select && ai == 0) || (s.Op.Kind == ir.Store && ai == 2) {
					continue
				}
				if a.Reg.Bank != wantBank {
					return nil, errf("%s on %s reads %s: wrong side",
						mach.OpName(s.Op.Kind), s.Unit, a.Reg)
				}
			}
			// Destination reachability: dest_bank can route to any I bank,
			// but F (except tagged-bus moves and loads), SF, and branch-bank
			// writes are pair-local.
			if d := s.Op.Dst; d.Valid() && int(d.Board) != p {
				reachable := d.Bank == mach.BankI ||
					(d.Bank == mach.BankF && s.Op.Kind == ir.Mov)
				if !reachable {
					return nil, errf("%s on pair %d writes unreachable %s",
						mach.OpName(s.Op.Kind), p, d)
				}
			}
			var wi int
			switch s.Unit.Kind {
			case mach.UIALU:
				wi = WordsPerPair*p + int(s.Beat)*4 + int(s.Unit.Idx)*2
			case mach.UFA:
				wi = WordsPerPair*p + 3
			case mach.UFM:
				wi = WordsPerPair*p + 7
			}
			if words[wi] != 0 {
				return nil, errf("unit %s slot already used", s.Unit)
			}
			if s.Op.Kind == ir.ConstF {
				bits := math.Float64bits(s.Op.FImm)
				if err := setImm(p, 0, uint32(bits>>32)); err != nil {
					return nil, err
				}
				if err := setImm(p, 1, uint32(bits)); err != nil {
					return nil, err
				}
				w, err := encodeALU(&s.Op, 0)
				if err != nil {
					return nil, err
				}
				words[wi] = w
				continue
			}
			w, err := encodeALU(&s.Op, int(s.Beat))
			if err != nil {
				return nil, err
			}
			if needsImm32(&s.Op) {
				if err := setImm(p, int(s.Beat), uint32(longImm(&s.Op))); err != nil {
					return nil, err
				}
			}
			words[wi] = w
		default:
			return nil, errf("slot with no unit")
		}
	}
	for p := 0; p < cfg.Pairs; p++ {
		if branch[p] && imm[2*p].used {
			return nil, errf("pair %d has both a branch and an early long immediate", p)
		}
		if imm[2*p].used {
			words[WordsPerPair*p+1] = imm[2*p].val
		}
		if imm[2*p+1].used {
			words[WordsPerPair*p+5] = imm[2*p+1].val
		}
	}
	return words, nil
}

// needsImm32 reports whether the op's src2 is a long immediate.
func needsImm32(o *mach.Op) bool {
	a := src2Of(o)
	return a.IsImm && (a.Sym != "" || a.Imm < -32 || a.Imm > 31)
}

func longImm(o *mach.Op) int32 { return src2Of(o).Imm }

// src2Of returns the operand encoded in the src2 field: B for most ops, A
// for ConstI (a "move immediate"), C for SELECT's else-value.
func src2Of(o *mach.Op) mach.Arg {
	switch o.Kind {
	case ir.ConstI:
		return o.A
	case ir.Select:
		return o.C
	}
	return o.B
}

// destBankOf computes the dest_bank field and destination index.
func destBankOf(o *mach.Op) (bank uint32, idx uint32, err error) {
	if o.Kind == ir.Store {
		// stores have no destination; the dest field carries the store
		// file register supplying the data (C operand)
		return 6, uint32(o.C.Reg.Idx), nil
	}
	if o.Kind == ir.Select {
		// dest_bank field holds the branch-bank condition selector
		return uint32(o.A.Reg.Idx), uint32(o.Dst.Idx), nil
	}
	if !o.Dst.Valid() {
		return 0, 0, nil
	}
	switch o.Dst.Bank {
	case mach.BankI:
		return 1 + uint32(o.Dst.Board), uint32(o.Dst.Idx), nil
	case mach.BankF:
		return 5, uint32(o.Dst.Idx), nil
	case mach.BankSF:
		return 6, uint32(o.Dst.Idx), nil
	case mach.BankB:
		return 7, uint32(o.Dst.Idx), nil
	}
	return 0, 0, errf("bad destination %s", o.Dst)
}

// encodeALU packs an ALU/F operation word.
func encodeALU(o *mach.Op, beat int) (uint32, error) {
	if int(o.Kind)+1 >= 128 {
		return 0, errf("opcode %d out of range", o.Kind)
	}
	w := uint32(o.Kind+1) << 25
	bank, didx, err := destBankOf(o)
	if err != nil {
		return 0, err
	}
	if didx >= 64 {
		return 0, errf("dest index %d out of range", didx)
	}
	w |= didx << 19
	w |= bank << 16

	// src1
	var src1 mach.Arg
	switch o.Kind {
	case ir.ConstI, ir.ConstF:
		// no src1
	case ir.Select:
		src1 = o.B // then-value
	default:
		src1 = o.A
	}
	if !src1.IsImm && src1.Reg.Valid() {
		if src1.Reg.Idx >= 64 {
			return 0, errf("src1 index out of range")
		}
		w |= uint32(src1.Reg.Idx) << 10
		w |= 1 // src1 valid
	} else if src1.IsImm {
		return 0, errf("%s: src1 cannot be an immediate", mach.OpName(o.Kind))
	}

	// src2
	s2 := src2Of(o)
	switch {
	case !s2.IsImm && s2.Reg.Valid():
		w |= 1 << 8
		w |= uint32(s2.Reg.Idx) << 2
	case s2.IsImm && !needsImm32(o):
		w |= 2 << 8
		w |= uint32(uint8(int8(s2.Imm))&0x3f) << 2
	case s2.IsImm:
		w |= 3 << 8
	}
	// MOV to a remote F bank rides a tagged bus (§6.3); the destination
	// board travels in the otherwise-unused src2 payload. (Loads already
	// deliver over tagged buses, but their src2 field carries the offset,
	// so the scheduler keeps F-destined loads pair-local.)
	if o.Kind == ir.Mov && o.Dst.Valid() && o.Dst.Bank == mach.BankF {
		w |= uint32(o.Dst.Board) << 2
	}

	if o.Type == ir.F64 {
		w |= 1 << 1
	}
	return w, nil
}

// branchDisp range-checks a branch target against the 22-bit displacement
// field. The decoder sign-extends bit 21, so post-link absolute addresses
// must fit in 21 bits — beyond that the encoding would silently wrap to a
// different (possibly negative) address.
func branchDisp(o *mach.Op) (uint32, error) {
	if o.Target < 0 || o.Target >= 1<<21 {
		return 0, errf("branch target %d outside the 22-bit displacement field", o.Target)
	}
	return uint32(o.Target) & 0x3fffff, nil
}

// encodeBranch packs the pair's branch word.
func encodeBranch(o *mach.Op) (uint32, error) {
	var kind, bb, disp uint32
	var err error
	bb = 7
	switch o.Kind {
	case mach.OpBrT:
		kind = brBrT
		if o.A.Reg.Bank != mach.BankB {
			return 0, errf("brt condition not in a branch bank")
		}
		bb = uint32(o.A.Reg.Idx)
		if disp, err = branchDisp(o); err != nil {
			return 0, err
		}
	case mach.OpJmp:
		kind = brJmp
		if disp, err = branchDisp(o); err != nil {
			return 0, err
		}
	case mach.OpCall:
		kind = brCall
		if disp, err = branchDisp(o); err != nil {
			return 0, err
		}
	case mach.OpJmpR:
		kind = brJmpR
		disp = uint32(o.A.Reg.Idx)
	case mach.OpHalt:
		kind = brHalt
	case mach.OpSyscall:
		kind = brSyscall
		switch o.Sym {
		case "print_i":
			disp = SysPrintI
		case "print_f":
			disp = SysPrintF
		default:
			return 0, errf("unknown syscall %q", o.Sym)
		}
	default:
		return 0, errf("%s is not a branch-unit op", mach.OpName(o.Kind))
	}
	if o.Prio >= 8 {
		return 0, errf("branch priority %d out of range", o.Prio)
	}
	return bb<<29 | uint32(o.Prio)<<26 | kind<<22 | disp, nil
}

// Decode unpacks one instruction from 8×pairs words. Branch displacements
// come back in Target; relocations are already resolved, so Sym fields are
// empty except for syscalls (resolved back from the service number).
func Decode(words []uint32, cfg mach.Config) (*mach.Instr, error) {
	if len(words) != WordsPerPair*cfg.Pairs {
		return nil, errf("decode: %d words for %d pairs", len(words), cfg.Pairs)
	}
	in := &mach.Instr{}
	for p := 0; p < cfg.Pairs; p++ {
		base := WordsPerPair * p
		earlyImmUsed := false
		// first pass: ALU/F words
		type alu struct {
			wi   int
			unit mach.Unit
			beat uint8
		}
		alus := []alu{
			{base + 0, mach.Unit{Kind: mach.UIALU, Pair: uint8(p), Idx: 0}, 0},
			{base + 2, mach.Unit{Kind: mach.UIALU, Pair: uint8(p), Idx: 1}, 0},
			{base + 4, mach.Unit{Kind: mach.UIALU, Pair: uint8(p), Idx: 0}, 1},
			{base + 6, mach.Unit{Kind: mach.UIALU, Pair: uint8(p), Idx: 1}, 1},
			{base + 3, mach.Unit{Kind: mach.UFA, Pair: uint8(p)}, 0},
			{base + 7, mach.Unit{Kind: mach.UFM, Pair: uint8(p)}, 0},
		}
		for _, a := range alus {
			w := words[a.wi]
			if w == 0 {
				continue
			}
			fside := a.unit.Kind == mach.UFA || a.unit.Kind == mach.UFM
			op, usesEarlyImm, err := decodeALU(w, uint8(p), a.beat, fside, words[base+1], words[base+5])
			if err != nil {
				return nil, err
			}
			if usesEarlyImm {
				earlyImmUsed = true
			}
			in.Slots = append(in.Slots, mach.SlotOp{Unit: a.unit, Beat: a.beat, Op: *op})
		}
		// second pass: branch word, unless the early word is claimed as data
		if w := words[base+1]; w != 0 && !earlyImmUsed {
			op, err := decodeBranch(w, uint8(p))
			if err != nil {
				return nil, err
			}
			in.Slots = append(in.Slots, mach.SlotOp{
				Unit: mach.Unit{Kind: mach.UBR, Pair: uint8(p)}, Beat: 0, Op: *op})
		}
	}
	return in, nil
}

func decodeALU(w uint32, pair, beat uint8, fside bool, earlyImm, lateImm uint32) (*mach.Op, bool, error) {
	o := &mach.Op{Kind: ir.OpKind(w>>25) - 1}
	usesEarly := false
	if w&(1<<1) != 0 {
		o.Type = ir.F64
	} else {
		o.Type = typeOfKind(o.Kind)
	}
	didx := uint8(w >> 19 & 0x3f)
	bank := w >> 16 & 7

	// The word position fixes which side's banks the source fields address:
	// F-unit words read the F bank, I-unit words the I bank — regardless of
	// element type (an I32 staged in an F register for conversion is still
	// an F-bank read).
	srcBank := mach.BankI
	if fside {
		srcBank = mach.BankF
	}

	// src1
	if w&1 != 0 {
		r := uint8(w >> 10 & 0x3f)
		src1 := mach.Arg{Reg: mach.PReg{Bank: srcBank, Board: pair, Idx: r}}
		if o.Kind == ir.Select {
			o.B = src1
		} else {
			o.A = src1
		}
	}
	// src2
	var s2 mach.Arg
	switch w >> 8 & 3 {
	case 1:
		s2 = mach.Arg{Reg: mach.PReg{Bank: srcBank, Board: pair, Idx: uint8(w >> 2 & 0x3f)}}
	case 2:
		v := int32(int8(uint8(w>>2&0x3f)<<2)) >> 2 // sign-extend 6 bits
		s2 = mach.Arg{IsImm: true, Imm: v}
	case 3:
		if o.Kind == ir.ConstF {
			break
		}
		if beat == 0 {
			s2 = mach.Arg{IsImm: true, Imm: int32(earlyImm)}
			usesEarly = true
		} else {
			s2 = mach.Arg{IsImm: true, Imm: int32(lateImm)}
		}
	}
	switch o.Kind {
	case ir.ConstI:
		o.A = s2
	case ir.Select:
		o.C = s2
	default:
		o.B = s2
	}

	if o.Kind == ir.ConstF {
		o.FImm = math.Float64frombits(uint64(earlyImm)<<32 | uint64(lateImm))
		o.Dst = mach.PReg{Bank: mach.BankF, Board: pair, Idx: didx}
		usesEarly = true
		return o, usesEarly, nil
	}
	switch o.Kind {
	case ir.Store:
		o.C = mach.Arg{Reg: mach.PReg{Bank: mach.BankSF, Board: pair, Idx: didx}}
	case ir.Select:
		o.A = mach.Arg{Reg: mach.PReg{Bank: mach.BankB, Board: pair, Idx: uint8(bank)}}
		o.Dst = mach.PReg{Bank: srcBank, Board: pair, Idx: didx}
	default:
		switch bank {
		case 0:
			// no destination
		case 1, 2, 3, 4:
			o.Dst = mach.PReg{Bank: mach.BankI, Board: uint8(bank - 1), Idx: didx}
		case 5:
			fb := pair
			if o.Kind == ir.Mov {
				fb = uint8(w >> 2 & 3) // tagged-bus destination board
			}
			o.Dst = mach.PReg{Bank: mach.BankF, Board: fb, Idx: didx}
		case 6:
			o.Dst = mach.PReg{Bank: mach.BankSF, Board: pair, Idx: didx}
		case 7:
			o.Dst = mach.PReg{Bank: mach.BankB, Board: pair, Idx: didx}
		}
	}
	if o.Kind == ir.LoadSpec {
		o.Spec = true
	}
	return o, usesEarly, nil
}

// isFSide reports whether the opcode executes on an F-board unit.
func isFSide(k ir.OpKind) bool {
	switch k {
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FNeg,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE,
		ir.ItoF, ir.FtoI, ir.ConstF:
		return true
	}
	return false
}

// typeOfKind gives the default element type when the size64 bit is clear.
func typeOfKind(k ir.OpKind) ir.Type {
	if isFSide(k) && k != ir.FtoI {
		return ir.F64
	}
	return ir.I32
}

func decodeBranch(w uint32, pair uint8) (*mach.Op, error) {
	kind := w >> 22 & 0xf
	bb := uint8(w >> 29 & 7)
	prio := int(w >> 26 & 7)
	disp := int(int32(w<<10) >> 10) // sign-extend 22 bits
	o := &mach.Op{Prio: prio}
	switch kind {
	case brBrT:
		o.Kind = mach.OpBrT
		o.A = mach.Arg{Reg: mach.PReg{Bank: mach.BankB, Board: pair, Idx: bb}}
		o.Target = disp
	case brJmp:
		o.Kind = mach.OpJmp
		o.Target = disp
	case brCall:
		o.Kind = mach.OpCall
		o.Target = disp
		o.Dst = mach.RegLR
	case brJmpR:
		o.Kind = mach.OpJmpR
		o.A = mach.Arg{Reg: mach.PReg{Bank: mach.BankI, Board: pair, Idx: uint8(disp & 0x3f)}}
	case brHalt:
		o.Kind = mach.OpHalt
	case brSyscall:
		o.Kind = mach.OpSyscall
		switch disp {
		case SysPrintI:
			o.Sym = "print_i"
		case SysPrintF:
			o.Sym = "print_f"
		default:
			return nil, errf("unknown syscall number %d", disp)
		}
	default:
		return nil, errf("bad branch kind %d", kind)
	}
	return o, nil
}
