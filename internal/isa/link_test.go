package isa

import (
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/tsched"
)

// Link error paths: each rejection must be a positioned, structured error,
// not a silently wrong image.

func haltCode(name string) *tsched.FuncCode {
	return &tsched.FuncCode{Name: name, Instrs: []mach.Instr{
		{Slots: []mach.SlotOp{{Unit: mach.Unit{Kind: mach.UBR}, Op: mach.Op{Kind: mach.OpHalt}}}},
	}}
}

func wantLinkErr(t *testing.T, funcs []*tsched.FuncCode, substr string) {
	t.Helper()
	img, err := Link(&ir.Program{}, funcs, mach.Trace7())
	if err == nil {
		t.Fatalf("Link succeeded (%d instrs), want error containing %q", len(img.Instrs), substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Link error = %q, want it to contain %q", err, substr)
	}
}

func TestLinkMissingMain(t *testing.T) {
	wantLinkErr(t, []*tsched.FuncCode{haltCode("helper")}, "no main function")
}

func TestLinkUndefinedCallee(t *testing.T) {
	main := &tsched.FuncCode{Name: "main", Instrs: []mach.Instr{
		{Slots: []mach.SlotOp{{Unit: mach.Unit{Kind: mach.UBR}, Op: mach.Op{
			Kind: mach.OpCall, Sym: "missing", Dst: mach.RegLR}}}},
	}}
	wantLinkErr(t, []*tsched.FuncCode{main}, "calls undefined missing")
}

func TestLinkUndefinedGlobal(t *testing.T) {
	main := &tsched.FuncCode{Name: "main", Instrs: []mach.Instr{
		{Slots: []mach.SlotOp{{Unit: mach.Unit{Kind: mach.UIALU}, Op: mach.Op{
			Kind: ir.ConstI, Type: ir.I32,
			Dst: mach.PReg{Bank: mach.BankI, Idx: 9},
			A:   mach.Arg{IsImm: true, Sym: "nosuch"}}}}},
	}}
	wantLinkErr(t, []*tsched.FuncCode{main}, `undefined global "nosuch"`)
}

func TestLinkBranchDisplacementOverflow(t *testing.T) {
	// A branch target past 2^21 words cannot survive the 22-bit
	// sign-extended displacement field; the encoder must reject it rather
	// than silently wrap to a different address.
	main := &tsched.FuncCode{Name: "main", Instrs: []mach.Instr{
		{Slots: []mach.SlotOp{{Unit: mach.Unit{Kind: mach.UBR}, Op: mach.Op{
			Kind: mach.OpJmp, Target: 1 << 21}}}},
	}}
	wantLinkErr(t, []*tsched.FuncCode{main}, "22-bit displacement")
}

func TestLinkImageOverflow(t *testing.T) {
	// An image larger than the branch address space links to code that no
	// branch can fully reach; Link rejects it up front.
	big := &tsched.FuncCode{Name: "main", Instrs: make([]mach.Instr, 1<<21)}
	wantLinkErr(t, []*tsched.FuncCode{big}, "overflows the 22-bit branch address space")
}

func TestLinkBranchDisplacementBoundary(t *testing.T) {
	// The largest encodable target (2^21 - 1) round-trips exactly.
	op := mach.Op{Kind: mach.OpJmp, Target: 1<<21 - 1}
	w, err := encodeBranch(&op)
	if err != nil {
		t.Fatalf("target 2^21-1 rejected: %v", err)
	}
	dec, err := decodeBranch(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Target != 1<<21-1 {
		t.Fatalf("target %d decoded as %d", 1<<21-1, dec.Target)
	}
}
