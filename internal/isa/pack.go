package isa

import "github.com/multiflow-repro/trace/internal/mach"

// The §6.5.1 variable-length main-memory representation: "We store
// instructions in main memory in blocks of four. Each block is preceded by
// four 32-bit mask words, which specify which 32-bit fields of the
// instruction are present in the block; the others are filled in the cache
// with zeros (no-ops)."
//
// An instruction word count of 8×pairs ≤ 32 means one mask word per
// instruction exactly covers it.

// Pack compresses fixed-width instructions into the mask-word format.
func Pack(words [][]uint32, cfg mach.Config) []uint32 {
	wpi := WordsPerPair * cfg.Pairs
	var out []uint32
	for blk := 0; blk < len(words); blk += 4 {
		masks := make([]uint32, 4)
		var payload []uint32
		for i := 0; i < 4; i++ {
			if blk+i >= len(words) {
				continue
			}
			w := words[blk+i]
			for j := 0; j < wpi; j++ {
				if w[j] != 0 {
					masks[i] |= 1 << uint(j)
					payload = append(payload, w[j])
				}
			}
		}
		out = append(out, masks...)
		out = append(out, payload...)
	}
	return out
}

// Unpack expands the mask-word format back to fixed-width instructions.
// n is the instruction count.
func Unpack(packed []uint32, n int, cfg mach.Config) [][]uint32 {
	wpi := WordsPerPair * cfg.Pairs
	out := make([][]uint32, 0, n)
	pos := 0
	for len(out) < n {
		masks := packed[pos : pos+4]
		pos += 4
		for i := 0; i < 4 && len(out) < n; i++ {
			w := make([]uint32, wpi)
			for j := 0; j < wpi; j++ {
				if masks[i]&(1<<uint(j)) != 0 {
					w[j] = packed[pos]
					pos++
				}
			}
			out = append(out, w)
		}
		// skip payload of block slots beyond n (none: masks for absent
		// instructions are zero)
	}
	return out
}

// PackedSize returns the packed representation's size in bytes.
func PackedSize(packed []uint32) int64 { return int64(len(packed)) * 4 }

// FixedSize returns the fixed-width size in bytes of n instructions.
func FixedSize(n int, cfg mach.Config) int64 {
	return int64(n) * int64(WordsPerPair*cfg.Pairs) * 4
}
