package isa

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Fingerprint returns a SHA-256 digest identifying the image's executable
// content and the machine configuration it was linked for: the encoded
// instruction words (or the decoded instruction text, for Ideal images that
// have no encoded form), the entry point, the data layout, and every field
// of mach.Config. Two images with equal fingerprints execute identically on
// a pristine machine, which is what lets a checkpoint refuse restoration
// onto the wrong program or the wrong machine shape. Linked images are
// immutable, so the digest is computed once and cached.
func (img *Image) Fingerprint() [32]byte {
	img.fpOnce.Do(func() {
		h := sha256.New()
		// mach.Config is a flat struct of basic comparable types, so %#v is
		// a deterministic, collision-free rendering of every field.
		fmt.Fprintf(h, "cfg=%#v\n", img.Cfg)
		var buf [8]byte
		put := func(v int64) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		put(int64(img.Entry))
		put(img.DataTop)
		put(img.RequiredMem())
		put(int64(len(img.Instrs)))
		if len(img.Words) > 0 {
			for _, words := range img.Words {
				put(int64(len(words)))
				for _, w := range words {
					binary.LittleEndian.PutUint32(buf[:4], w)
					h.Write(buf[:4])
				}
			}
		} else {
			// Ideal machine: no encoded form exists; the decoded instruction
			// text is the canonical content.
			for i := range img.Instrs {
				fmt.Fprintf(h, "%d:%s\n", i, img.Instrs[i].String())
			}
		}
		names := make([]string, 0, len(img.GlobalAddr))
		for name := range img.GlobalAddr {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "g:%s=%d\n", name, img.GlobalAddr[name])
		}
		h.Sum(img.fp[:0])
	})
	return img.fp
}
