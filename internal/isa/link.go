package isa

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/tsched"
)

// Image is a linked, encoded executable: the instruction stream (both in
// fixed-width and §6.5.1 packed form), symbol bases, and the data layout.
// The simulator executes Instrs, which are produced by *decoding* the
// encoded words, so every run exercises the Figure-3 round trip.
type Image struct {
	Cfg    mach.Config
	Instrs []mach.Instr // decoded instructions; index = instruction address
	Words  [][]uint32   // fixed-width encoding per instruction
	Packed []uint32     // variable-length mask-word representation

	Entry      int // address of main's first instruction
	FuncBase   map[string]int
	FuncLen    map[string]int
	GlobalAddr map[string]int64
	DataTop    int64

	prog *ir.Program

	// Fingerprint cache (see fingerprint.go); images are immutable after
	// Link, so the digest is computed at most once.
	fpOnce sync.Once
	fp     [32]byte
}

// CloneWithConfig returns a shallow copy of the image retargeted at cfg: the
// instruction stream and layout tables are shared (they are immutable after
// Link), while the fingerprint cache starts fresh so the clone digests under
// its own configuration. This is how experiments re-run one schedule on a
// differently-shaped machine without recompiling.
func (img *Image) CloneWithConfig(cfg mach.Config) *Image {
	return &Image{
		Cfg:    cfg,
		Instrs: img.Instrs, Words: img.Words, Packed: img.Packed,
		Entry: img.Entry, FuncBase: img.FuncBase, FuncLen: img.FuncLen,
		GlobalAddr: img.GlobalAddr, DataTop: img.DataTop,
		prog: img.prog,
	}
}

// Link lays out the compiled functions and globals, resolves branch targets
// and global-address relocations, encodes every instruction, verifies the
// encode/decode round trip, and returns the executable image.
func Link(prog *ir.Program, funcs []*tsched.FuncCode, cfg mach.Config) (*Image, error) {
	img := &Image{
		Cfg:      cfg,
		FuncBase: map[string]int{},
		FuncLen:  map[string]int{},
		prog:     prog,
	}
	img.GlobalAddr, img.DataTop = ir.LayoutGlobals(prog)

	base := 0
	for _, fc := range funcs {
		img.FuncBase[fc.Name] = base
		img.FuncLen[fc.Name] = len(fc.Instrs)
		base += len(fc.Instrs)
	}
	// The Figure-3 branch word carries a 22-bit sign-extended displacement;
	// addresses past 2^21 words are unreachable by any branch, so an image
	// that large cannot be linked coherently.
	if base >= 1<<21 {
		return nil, errf("link: image of %d instruction words overflows the 22-bit branch address space", base)
	}
	mainBase, ok := img.FuncBase["main"]
	if !ok {
		return nil, errf("link: no main function")
	}
	img.Entry = mainBase

	for _, fc := range funcs {
		fb := img.FuncBase[fc.Name]
		for ii := range fc.Instrs {
			in := cloneInstr(&fc.Instrs[ii])
			for si := range in.Slots {
				op := &in.Slots[si].Op
				switch op.Kind {
				case mach.OpJmp, mach.OpBrT:
					op.Target += fb
				case mach.OpCall:
					tb, ok := img.FuncBase[op.Sym]
					if !ok {
						return nil, errf("link: %s calls undefined %s", fc.Name, op.Sym)
					}
					op.Target = tb
				}
				if err := resolveArgs(op, img.GlobalAddr); err != nil {
					return nil, fmt.Errorf("link: %s: %w", fc.Name, err)
				}
			}
			if cfg.Ideal {
				// The Figure-1 "ideal VLIW" has a central register file and
				// unlimited ports; its schedules are intentionally not
				// encodable in the Figure-3 format. Execute it directly.
				img.Instrs = append(img.Instrs, in)
				continue
			}
			words, err := Encode(&in, cfg)
			if err != nil {
				return nil, fmt.Errorf("link: %s instr %d (%s): %w", fc.Name, ii, in.String(), err)
			}
			dec, err := Decode(words, cfg)
			if err != nil {
				return nil, fmt.Errorf("link: %s instr %d: decode: %w", fc.Name, ii, err)
			}
			// round-trip integrity: re-encoding the decoded instruction
			// must reproduce the words bit for bit
			re, err := Encode(dec, cfg)
			if err != nil {
				return nil, fmt.Errorf("link: %s instr %d: re-encode: %w\noriginal: %s\ndecoded: %s",
					fc.Name, ii, err, in.String(), dec.String())
			}
			for w := range words {
				if words[w] != re[w] {
					return nil, errf("link: %s instr %d: word %d round-trip mismatch %08x != %08x\noriginal: %s\ndecoded: %s",
						fc.Name, ii, w, words[w], re[w], in.String(), dec.String())
				}
			}
			img.Instrs = append(img.Instrs, *dec)
			img.Words = append(img.Words, words)
		}
	}
	if !cfg.Ideal {
		img.Packed = Pack(img.Words, cfg)
	}
	return img, nil
}

func cloneInstr(in *mach.Instr) mach.Instr {
	out := mach.Instr{Slots: make([]mach.SlotOp, len(in.Slots))}
	copy(out.Slots, in.Slots)
	return out
}

// resolveArgs replaces symbol-relative immediates with absolute addresses.
func resolveArgs(op *mach.Op, gaddr map[string]int64) error {
	for _, a := range []*mach.Arg{&op.A, &op.B, &op.C} {
		if !a.IsImm || a.Sym == "" {
			continue
		}
		addr, ok := gaddr[a.Sym]
		if !ok {
			return errf("undefined global %q", a.Sym)
		}
		a.Imm = int32(addr)
		a.Sym = ""
	}
	return nil
}

// RequiredMem returns the minimum data memory size for the image.
func (img *Image) RequiredMem() int64 {
	min := img.DataTop + 1<<16 // headroom for stack
	if min < 1<<20 {
		min = 1 << 20
	}
	return min
}

// InitMem writes the globals' initial values into a data memory, using the
// same layout the compiler's disambiguator assumed.
func (img *Image) InitMem(mem []byte) error {
	if int64(len(mem)) < img.DataTop {
		return errf("memory too small for globals")
	}
	for _, g := range img.prog.Globals {
		base := img.GlobalAddr[g.Name]
		for i, v := range g.InitI {
			binary.LittleEndian.PutUint32(mem[base+int64(i)*4:], uint32(v))
		}
		for i, v := range g.InitF {
			binary.LittleEndian.PutUint64(mem[base+int64(i)*8:], math.Float64bits(v))
		}
	}
	return nil
}

// CodeSizes reports the fixed and packed code sizes in bytes, and the
// operation count (for bytes-per-op comparisons in experiment E3).
func (img *Image) CodeSizes() (fixed, packed int64, ops int) {
	for i := range img.Instrs {
		for range img.Instrs[i].Slots {
			ops++
		}
	}
	return FixedSize(len(img.Instrs), img.Cfg), PackedSize(img.Packed), ops
}

// Disassemble renders the instruction at the given address.
func (img *Image) Disassemble(addr int) string {
	if addr < 0 || addr >= len(img.Instrs) {
		return fmt.Sprintf("%6d: <out of range>", addr)
	}
	return fmt.Sprintf("%6d: %s", addr, img.Instrs[addr].String())
}
