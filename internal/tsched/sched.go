package tsched

import (
	"fmt"
	"sort"

	"github.com/multiflow-repro/trace/internal/alias"
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// placedOp is an op (from the DAG or an inserted cross-bank copy) fixed in a
// slot of the scheduled trace.
type placedOp struct {
	instr int
	beat  uint8
	unit  mach.Unit
	vop   VOp
	src   *schedOp // nil for inserted copies
}

// schedResult is a compacted trace: wide instructions plus compensation
// bookkeeping for the stitcher.
type schedResult struct {
	placed   []placedOp
	numInstr int
	g        *traceGraph
}

// scheduler holds reservation state while compacting one trace. The home
// map (virtual register -> board) and copies cache persist per function so
// cross-trace reads agree on value locations.
type scheduler struct {
	cfg    mach.Config
	vf     *VFunc
	g      *traceGraph
	home   map[VReg]uint8
	layout map[string]int64

	// per-trace copy cache: (vreg, board) -> local copy
	copies map[copyKey]VReg

	// reservations
	ialu    map[[3]int]bool // (pair, alu, absBeat)
	fuInstr map[fuKey]bool  // (unitKind, pair, instr) occupied
	fuBusy  map[[2]int]int  // (kind, pair) -> busy until instr (divides)
	rdPort  map[[2]int]int  // (board, beat) -> reads
	wrPort  map[[2]int]int  // (board, beat) -> writes
	bus     map[[2]int]int  // (busKind, beat) -> uses
	memRefs []memRef        // scheduled memory references
	memBB   map[[2]int]bool // (board, beat): one reference per I board per beat
	immw    map[[2]int]bool // (pair, beat%2 at instr granularity): the shared
	// 32-bit immediate word of §6.1 ("flexibly shared between ALU0, ALU1,
	// and a 32-bit PC adder") — one long immediate or branch per pair-beat
	avail map[VReg]int // value availability beat (writes complete)

	// pendingSF tracks store-file registers written but not yet consumed by
	// their store, per pair; the compiler is responsible for not
	// overflowing the store file (no hardware manages it).
	pendingSF map[uint8]map[VReg]bool

	placed   []placedOp
	maxInstr int
	maxPrio  int64
}

type copyKey struct {
	reg   VReg
	board uint8
}

type fuKey struct {
	kind  mach.UnitKind
	pair  uint8
	instr int
}

type memRef struct {
	ref       alias.Ref
	issueBeat int
	isStore   bool
}

const (
	busILoad = iota
	busFLoad
	busStore
	busPA
)

// maxTraceInstrs bounds a single trace's schedule as a runaway guard.
const maxTraceInstrs = 20000

// ErrScheduleSize reports a trace whose schedule exceeded the runaway guard.
// Like ErrPressure it is a structured capacity rejection, not a crash: the
// machine is finite and the compiler refuses rather than emitting a schedule
// it cannot prove out.
type ErrScheduleSize struct {
	Func  string
	Limit int
}

func (e *ErrScheduleSize) Error() string {
	return fmt.Sprintf("%s: trace schedule exceeded %d instructions", e.Func, e.Limit)
}

// scheduleTrace compacts one linearized, renamed trace with a list scheduler
// over the machine's resources.
func scheduleTrace(cfg mach.Config, vf *VFunc, g *traceGraph, home map[VReg]uint8, layout map[string]int64) (*schedResult, error) {
	var maxPrio int64
	for _, op := range g.ops {
		if op.prio > maxPrio {
			maxPrio = op.prio
		}
	}
	s := &scheduler{
		cfg: cfg, vf: vf, g: g, home: home, layout: layout, maxPrio: maxPrio,
		copies:    map[copyKey]VReg{},
		ialu:      map[[3]int]bool{},
		fuInstr:   map[fuKey]bool{},
		fuBusy:    map[[2]int]int{},
		rdPort:    map[[2]int]int{},
		wrPort:    map[[2]int]int{},
		bus:       map[[2]int]int{},
		memBB:     map[[2]int]bool{},
		immw:      map[[2]int]bool{},
		avail:     map[VReg]int{},
		pendingSF: map[uint8]map[VReg]bool{},
	}

	n := len(g.ops)
	earliestBeat := make([]int, n)
	earliestInstr := make([]int, n)
	waited := make([]int, n)
	remaining := n

	ready := func() []*schedOp {
		var r []*schedOp
		for _, op := range g.ops {
			if !op.placed && op.npreds == 0 {
				r = append(r, op)
			}
		}
		sort.SliceStable(r, func(a, b int) bool {
			if r[a].prio != r[b].prio {
				return r[a].prio > r[b].prio
			}
			return r[a].origIdx < r[b].origIdx
		})
		return r
	}

	relax := func(op *schedOp) {
		for _, e := range op.succs {
			t := g.ops[e.to]
			if e.minBeats >= 0 {
				wb := op.beat + e.minBeats
				if wb > earliestBeat[e.to] {
					earliestBeat[e.to] = wb
				}
			}
			if v := op.instr + e.instrDelta; v > earliestInstr[e.to] {
				earliestInstr[e.to] = v
			}
			t.npreds--
		}
	}

	for k := 0; remaining > 0; k++ {
		if k > maxTraceInstrs {
			return nil, &ErrScheduleSize{Func: vf.Name, Limit: maxTraceInstrs}
		}
		for {
			progress := false
			for _, op := range ready() {
				if earliestInstr[op.origIdx] > k {
					continue
				}
				if s.tryPlace(op, k, earliestBeat[op.origIdx], waited[op.origIdx]) {
					relax(op)
					remaining--
					progress = true
				} else {
					waited[op.origIdx]++
				}
			}
			if !progress {
				break
			}
		}
	}

	return &schedResult{placed: s.placed, numInstr: s.maxInstr + 1, g: g}, nil
}

// unitChoice is a candidate placement.
type unitChoice struct {
	unit mach.Unit
	beat uint8
}

// candidateUnits lists legal units for the op's kind, most preferred first.
// prefBoard biases toward boards already holding the operands.
func (s *scheduler) candidateUnits(o *VOp, prefBoard int) []unitChoice {
	var out []unitChoice
	pairs := s.cfg.Pairs
	order := make([]int, 0, pairs)
	if prefBoard >= 0 && prefBoard < pairs {
		order = append(order, prefBoard)
	}
	for p := 0; p < pairs; p++ {
		if p != prefBoard {
			order = append(order, p)
		}
	}
	switch unitClass(s.vf, o) {
	case UIALUClass:
		for _, p := range order {
			for alu := 0; alu < 2; alu++ {
				for beat := uint8(0); beat < 2; beat++ {
					out = append(out, unitChoice{mach.Unit{Kind: mach.UIALU, Pair: uint8(p), Idx: uint8(alu)}, beat})
				}
			}
		}
	case UFAClass:
		for _, p := range order {
			out = append(out, unitChoice{mach.Unit{Kind: mach.UFA, Pair: uint8(p)}, 0})
		}
	case UFMClass:
		for _, p := range order {
			out = append(out, unitChoice{mach.Unit{Kind: mach.UFM, Pair: uint8(p)}, 0})
		}
	case UFEitherClass:
		for _, p := range order {
			out = append(out, unitChoice{mach.Unit{Kind: mach.UFA, Pair: uint8(p)}, 0})
			out = append(out, unitChoice{mach.Unit{Kind: mach.UFM, Pair: uint8(p)}, 0})
		}
	case UBRClass:
		for _, p := range order {
			out = append(out, unitChoice{mach.Unit{Kind: mach.UBR, Pair: uint8(p)}, 0})
		}
	}
	return out
}

type uclass int

const (
	UIALUClass uclass = iota
	UFAClass
	UFMClass
	UFEitherClass
	UBRClass
)

// unitClass maps an op to the functional units that can execute it (§6.1,
// §6.2: the F board ALUs share opcodes with the adder/multiplier and carry
// the fast-move and SELECT paths; conversions run on the F side). Moves and
// selects follow their source operand's bank: a value in an F bank — even a
// 32-bit integer staged for conversion — can only be read by an F-side unit.
func unitClass(vf *VFunc, o *VOp) uclass {
	switch o.Kind {
	case mach.OpBrT, mach.OpJmp, mach.OpJmpR, mach.OpCall, mach.OpHalt, mach.OpSyscall:
		return UBRClass
	case ir.FAdd, ir.FSub, ir.FNeg, ir.FtoI, ir.ItoF,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return UFAClass
	case ir.FMul, ir.FDiv:
		return UFMClass
	case ir.ConstF:
		return UFEitherClass
	case ir.Mov, mach.OpMovSF:
		if o.Type == ir.F64 || (!o.A.IsImm && vf.Class(o.A.Reg) == ClassF) {
			return UFEitherClass
		}
		return UIALUClass
	case ir.Select:
		if o.Type == ir.F64 ||
			(!o.B.IsImm && vf.Class(o.B.Reg) == ClassF) ||
			(!o.C.IsImm && vf.Class(o.C.Reg) == ClassF) {
			return UFEitherClass
		}
		return UIALUClass
	default:
		return UIALUClass
	}
}

// operandBoards inspects the op's register operands: it returns the
// preferred board (where most reside), the set of hard constraints
// (SF/branch-bank reads are local-only), and whether homes are mixed.
func (s *scheduler) operandBoards(o *VOp) (pref int, hard int, regs []VReg) {
	pref, hard = -1, -1
	count := map[uint8]int{}
	for _, r := range o.Uses() {
		regs = append(regs, r)
		h, ok := s.home[r]
		if !ok {
			continue
		}
		count[h]++
		switch s.vf.Class(r) {
		case ClassSF, ClassB:
			hard = int(h)
		}
	}
	best := -1
	for b := 0; b < 4; b++ { // fixed order: deterministic tie-breaking
		c, ok := count[uint8(b)]
		if !ok {
			continue
		}
		if best == -1 || c > count[uint8(best)] {
			best = b
		}
	}
	pref = best
	if hard >= 0 {
		pref = hard
	}
	return pref, hard, regs
}

// tryPlace attempts to schedule op into instruction k. waited counts how
// many instructions the op has been ready but unplaced; after a threshold
// the scheduler inserts cross-bank copies to unblock it.
//
// Board preference spreads the trace across the pairs: ops are hinted to
// the board given by their block's position in the trace, so the unrolled
// copies of a loop body land on different pairs (the data-parallel work
// spreads; loop-carried chains stay put because a unit whose operands are
// elsewhere loses to the operands' own board in the same candidate pass).
func (s *scheduler) tryPlace(op *schedOp, k, minBeat, waited int) bool {
	o := &op.vop
	pref, hard, _ := s.operandBoards(o)
	// Spread independent work across the pairs; chained ops (reduction and
	// induction links) stay with their operands so recurrences never pay
	// cross-board move latency.
	if hard < 0 && s.cfg.Pairs > 1 && !op.chained && !s.cfg.NoSpread {
		pref = op.traceIdx % s.cfg.Pairs
	}
	for _, uc := range s.candidateUnits(o, pref) {
		if hard >= 0 && int(uc.unit.Pair) != hard {
			continue
		}
		if s.placeOn(op, uc, k, minBeat, false) {
			return true
		}
	}
	// Copy pass: allow placements that first route operands to the target
	// board over the buses (the per-trace copy cache dedups the moves).
	for _, uc := range s.candidateUnits(o, pref) {
		if hard >= 0 && int(uc.unit.Pair) != hard {
			continue
		}
		if s.placeOn(op, uc, k, minBeat, true) {
			return true
		}
	}
	_ = waited
	return false
}

// mixedHomes reports whether the op's I/F operands live on different boards
// (so no board can host it without a copy).
func (s *scheduler) mixedHomes(o *VOp) bool {
	seen := -1
	for _, r := range o.Uses() {
		c := s.vf.Class(r)
		if c != ClassI && c != ClassF {
			continue
		}
		h, ok := s.home[r]
		if !ok {
			continue
		}
		if seen == -1 {
			seen = int(h)
		} else if seen != int(h) {
			return true
		}
	}
	return false
}

// placeOn tries one specific unit/beat. When allowCopies is set, non-local
// I/F operands are routed to the unit's board with inserted move ops.
func (s *scheduler) placeOn(op *schedOp, uc unitChoice, k, minBeat int, allowCopies bool) bool {
	o := &op.vop
	issue := 2*k + int(uc.beat)
	if issue < minBeat {
		return false
	}
	board := uc.unit.Pair

	// unit availability
	if !s.unitFree(uc, k) {
		return false
	}

	// store-file pressure: hold back new store-file writes while too many
	// are outstanding on this pair (the allocator has no spill path into
	// the store file, so the scheduler keeps its footprint bounded)
	if o.Kind == mach.OpMovSF {
		if sf := s.pendingSF[board]; len(sf) >= s.cfg.StoreFile-2 {
			return false
		}
	}

	// resolve operands to local names (or fail / insert copies)
	type rewrite struct {
		arg *VArg
		reg VReg
	}
	var rewrites []rewrite
	var copyPlans []VReg // operands needing copies
	var claims []VReg    // unhomed operands: first touch homes them here
	args := []*VArg{&o.A, &o.B, &o.C}
	for _, a := range args {
		if a.IsImm || a.Reg == VNone {
			continue
		}
		r := a.Reg
		c := s.vf.Class(r)
		h, homed := s.home[r]
		if !homed {
			// first touch: the value will live here (its definer will
			// cross-write to this board); recorded at commit below
			claims = append(claims, r)
			continue
		}
		if h == board {
			continue
		}
		switch c {
		case ClassSF, ClassB:
			return false // local-only, wrong board
		}
		// existing copy?
		if cp, ok := s.copies[copyKey{r, board}]; ok {
			if s.avail[cp] <= issue {
				rewrites = append(rewrites, rewrite{a, cp})
				continue
			}
			return false // copy exists but not ready for this beat
		}
		if !allowCopies {
			return false
		}
		copyPlans = append(copyPlans, r)
	}

	// resource feasibility at this slot (before committing copies)
	if !s.resourcesFree(op, uc, issue) {
		return false
	}

	// insert copies; each must complete by the issue beat
	for _, r := range copyPlans {
		cp, ok := s.insertCopy(r, board, issue)
		if !ok {
			return false
		}
		for _, a := range args {
			if !a.IsImm && a.Reg == r {
				rewrites = append(rewrites, rewrite{a, cp})
			}
		}
	}
	// Preserve the pre-rewrite form for compensation code (comp blocks are
	// serial and read operands from their home boards, so they must not see
	// board-local copy registers that may not be written on their path).
	if len(rewrites) > 0 && op.compVop == nil {
		cv := *o
		op.compVop = &cv
	}
	for _, rw := range rewrites {
		rw.arg.Reg = rw.reg
	}
	for _, r := range claims {
		if _, ok := s.home[r]; !ok {
			s.home[r] = board
		}
	}
	s.reserve(op, uc, issue)
	op.placed = true
	op.instr = k
	op.beat = issue
	op.unit = uc.unit
	if o.Dst != VNone {
		if _, ok := s.home[o.Dst]; !ok {
			if pre, isPre := s.vf.precolor[o.Dst]; isPre {
				s.home[o.Dst] = pre.Board
			} else {
				s.home[o.Dst] = board
			}
		}
		s.avail[o.Dst] = issue + opLatency(s.cfg, o)
	}
	switch o.Kind {
	case mach.OpMovSF:
		if s.pendingSF[board] == nil {
			s.pendingSF[board] = map[VReg]bool{}
		}
		s.pendingSF[board][o.Dst] = true
	case ir.Store:
		if !o.C.IsImm && o.C.Reg != VNone {
			delete(s.pendingSF[board], o.C.Reg)
		}
	}
	s.placed = append(s.placed, placedOp{instr: k, beat: uc.beat, unit: uc.unit, vop: *o, src: op})
	if k > s.maxInstr {
		s.maxInstr = k
	}
	return true
}

// unitFree reports whether the unit slot is open at instruction k.
func (s *scheduler) unitFree(uc unitChoice, k int) bool {
	switch uc.unit.Kind {
	case mach.UIALU:
		key := [3]int{int(uc.unit.Pair), int(uc.unit.Idx), 2*k + int(uc.beat)}
		return !s.ialu[key]
	default:
		if until, ok := s.fuBusy[[2]int{int(uc.unit.Kind), int(uc.unit.Pair)}]; ok && k < until {
			return false
		}
		return !s.fuInstr[fuKey{uc.unit.Kind, uc.unit.Pair, k}]
	}
}

// resourcesFree checks ports, buses, and the memory rules of §6.4.1 for
// issuing op at the given slot. The Ideal machine (Figure 1) skips all
// shared-resource checks.
func (s *scheduler) resourcesFree(op *schedOp, uc unitChoice, issue int) bool {
	o := &op.vop
	board := int(uc.unit.Pair)

	// Destination-bank reachability (encoding constraint, not a shared
	// resource): the dest_bank field can route results to any I bank, but
	// F/SF/branch-bank writes are pair-local, and SELECT's encoding spends
	// the dest_bank field on its branch-bank selector, so its destination
	// is local too. Enforced even on the Ideal machine for encodability.
	if o.Dst != VNone {
		cls := s.vf.Class(o.Dst)
		if h, ok := s.home[o.Dst]; ok && int(h) != board {
			// MOV is the exception: data moves ride the tagged load buses
			// (§6.3) and can deliver to any board's F bank, like loads.
			crossOK := cls == ClassI || (o.Kind == ir.Mov && cls == ClassF)
			if !crossOK || o.Kind == ir.Select {
				return false
			}
		}
	}
	if s.cfg.Ideal {
		return true
	}

	// shared immediate word (one long immediate or branch per pair-beat)
	for _, b := range immWordBeats(o, issue) {
		if s.immw[[2]int{board, b}] {
			return false
		}
	}

	// register file read ports
	nr := 0
	for _, a := range []*VArg{&o.A, &o.B, &o.C} {
		if !a.IsImm && a.Reg != VNone {
			nr++
		}
	}
	if s.rdPort[[2]int{board, issue}]+nr > s.cfg.RFReadPorts {
		return false
	}

	// destination write port (and cross-board bus for non-load writes)
	if o.Dst != VNone {
		wb := issue + opLatency(s.cfg, o)
		db := s.dstBoard(o, uc.unit)
		if s.wrPort[[2]int{db, wb}]+1 > s.cfg.RFWritePorts {
			return false
		}
		if db != board && !o.IsMem() {
			kind, beats := busILoad, 1
			if s.vf.Class(o.Dst) == ClassF {
				kind, beats = busFLoad, 2
			}
			for i := 0; i < beats; i++ {
				if s.bus[[2]int{kind, wb - i}]+1 > busCap(&s.cfg, kind) {
					return false
				}
			}
		}
	}

	// memory reference rules
	if o.IsMem() {
		// one reference per I board per beat
		if s.memBB[[2]int{board, issue}] {
			return false
		}
		if s.bus[[2]int{busPA, issue + mach.StagePA}]+1 > s.cfg.PABuses {
			return false
		}
		if o.Kind == ir.Store {
			if s.bus[[2]int{busStore, issue + mach.StagePA}]+1 > s.cfg.StoreBuses {
				return false
			}
		} else {
			kind := busILoad
			if s.vf.Class(o.Dst) == ClassF {
				kind = busFLoad
			}
			if s.bus[[2]int{kind, issue + mach.StageData}]+1 > busCap(&s.cfg, kind) {
				return false
			}
		}
		// bank and controller disambiguation against in-flight references
		ref := s.refOfPlaced(op)
		bankBeat := issue + mach.StageBank
		modBank := int64(8 * s.cfg.Controllers * s.cfg.BanksPerController)
		modCtrl := int64(8 * s.cfg.Controllers)
		for _, m := range s.memRefs {
			d := bankBeat - (m.issueBeat + mach.StageBank)
			if d < 0 {
				d = -d
			}
			if d >= s.cfg.BankBusyBeats {
				continue
			}
			switch alias.SameBank(ref, m.ref, modBank) {
			case alias.Yes:
				return false
			case alias.Maybe:
				if !s.cfg.RollTheDice {
					return false
				}
			}
			if d == 0 {
				switch alias.SameBank(ref, m.ref, modCtrl) {
				case alias.Yes:
					return false
				case alias.Maybe:
					if !s.cfg.RollTheDice {
						return false
					}
				}
			}
		}
	}
	return true
}

// refOfPlaced returns the op's alias reference (computed at DAG time).
func (s *scheduler) refOfPlaced(op *schedOp) alias.Ref {
	if op.ref != nil {
		return *op.ref
	}
	return alias.Ref{Addr: alias.VarForm(0), Size: 8}
}

// dstBoard returns the board whose register file receives the result.
func (s *scheduler) dstBoard(o *VOp, u mach.Unit) int {
	if h, ok := s.home[o.Dst]; ok {
		return int(h)
	}
	if pre, ok := s.vf.precolor[o.Dst]; ok {
		return int(pre.Board)
	}
	return int(u.Pair)
}

// busCap returns the number of buses of the given kind.
func busCap(cfg *mach.Config, kind int) int {
	switch kind {
	case busILoad:
		return cfg.ILoadBuses
	case busFLoad:
		return cfg.FLoadBuses
	case busStore:
		return cfg.StoreBuses
	default:
		return cfg.PABuses
	}
}

// reserve commits the op's resource usage.
func (s *scheduler) reserve(op *schedOp, uc unitChoice, issue int) {
	o := &op.vop
	k := op2instr(issue)
	board := int(uc.unit.Pair)
	switch uc.unit.Kind {
	case mach.UIALU:
		s.ialu[[3]int{board, int(uc.unit.Idx), issue}] = true
		if o.Kind == ir.Div || o.Kind == ir.Rem {
			// the iterative divide occupies this ALU
			for b := issue; b < issue+opLatency(s.cfg, o); b++ {
				s.ialu[[3]int{board, int(uc.unit.Idx), b}] = true
			}
		}
	default:
		s.fuInstr[fuKey{uc.unit.Kind, uc.unit.Pair, k}] = true
		if o.Kind == ir.FDiv {
			s.fuBusy[[2]int{int(mach.UFM), board}] = k + (s.cfg.LatFDiv+1)/2
		}
	}
	if s.cfg.Ideal {
		return
	}
	for _, b := range immWordBeats(o, issue) {
		s.immw[[2]int{board, b}] = true
	}
	nr := 0
	for _, a := range []*VArg{&o.A, &o.B, &o.C} {
		if !a.IsImm && a.Reg != VNone {
			nr++
		}
	}
	s.rdPort[[2]int{board, issue}] += nr
	if o.Dst != VNone {
		wb := issue + opLatency(s.cfg, o)
		db := s.dstBoard(o, uc.unit)
		s.wrPort[[2]int{db, wb}]++
		if db != board && !o.IsMem() {
			kind, beats := busILoad, 1
			if s.vf.Class(o.Dst) == ClassF {
				kind, beats = busFLoad, 2
			}
			for i := 0; i < beats; i++ {
				s.bus[[2]int{kind, wb - i}]++
			}
		}
	}
	if o.IsMem() {
		s.memBB[[2]int{board, issue}] = true
		s.bus[[2]int{busPA, issue + mach.StagePA}]++
		if o.Kind == ir.Store {
			s.bus[[2]int{busStore, issue + mach.StagePA}]++
		} else {
			kind := busILoad
			if s.vf.Class(o.Dst) == ClassF {
				kind = busFLoad
			}
			s.bus[[2]int{kind, issue + mach.StageData}]++
		}
		s.memRefs = append(s.memRefs, memRef{s.refOfPlaced(op), issue, o.Kind == ir.Store})
	}
}

func op2instr(beat int) int { return beat / 2 }

// fitsImm6 reports whether the value fits the inline 6-bit immediate field.
func fitsImm6(a VArg) bool {
	return a.Sym == "" && a.Imm >= -32 && a.Imm <= 31
}

// immWordBeats returns which beats of the pair's shared immediate words the
// op occupies at instruction k (absolute beats). Branches own the early
// word (their displacement rides the PC adder's leg); long immediates own
// their issue beat's word; ConstF needs both halves.
func immWordBeats(o *VOp, issue int) []int {
	switch o.Kind {
	case mach.OpBrT, mach.OpJmp, mach.OpCall, mach.OpJmpR, mach.OpHalt, mach.OpSyscall:
		return []int{issue} // branches issue in the early beat
	case ir.ConstF:
		return []int{issue, issue + 1}
	}
	for _, a := range []VArg{o.A, o.B, o.C} {
		if a.IsImm && !fitsImm6(a) {
			return []int{issue}
		}
	}
	return nil
}

// insertCopy schedules a cross-bank move of r to the target board, somewhere
// it fits with completion no later than needBy. Returns the copy register.
func (s *scheduler) insertCopy(r VReg, board uint8, needBy int) (VReg, bool) {
	cls := s.vf.Class(r)
	typ := s.vf.TypeOf(r)
	mov := VOp{Kind: ir.Mov, Type: typ, A: VRegArg(r)}
	lat := opLatency(s.cfg, &mov)
	src := s.home[r]
	earliest := s.avail[r] // 0 for live-ins

	// candidate units on the SOURCE board (reads must be local)
	var ucs []unitChoice
	if cls == ClassI {
		for alu := 0; alu < 2; alu++ {
			for beat := uint8(0); beat < 2; beat++ {
				ucs = append(ucs, unitChoice{mach.Unit{Kind: mach.UIALU, Pair: src, Idx: uint8(alu)}, beat})
			}
		}
	} else {
		ucs = append(ucs,
			unitChoice{mach.Unit{Kind: mach.UFA, Pair: src}, 0},
			unitChoice{mach.Unit{Kind: mach.UFM, Pair: src}, 0})
	}
	kStart := op2instr(earliest)
	if lo := op2instr(needBy) - 64; lo > kStart {
		kStart = lo // bounded window keeps placement near the consumer
	}
	for k := kStart; 2*k+lat <= needBy+1; k++ {
		for _, uc := range ucs {
			issue := 2*k + int(uc.beat)
			if issue < earliest || issue+lat > needBy {
				continue
			}
			if !s.unitFree(uc, k) {
				continue
			}
			cp := s.vf.NewReg(cls, typ)
			s.home[cp] = board
			m := mov
			m.Dst = cp
			tmp := &schedOp{vop: m, instr: -1}
			if !s.resourcesFree(tmp, uc, issue) {
				// un-home: try another slot
				delete(s.home, cp)
				continue
			}
			tmp.placed = true
			tmp.instr = k
			tmp.beat = issue
			tmp.unit = uc.unit
			s.reserve(tmp, uc, issue)
			s.avail[cp] = issue + lat
			s.copies[copyKey{r, board}] = cp
			s.placed = append(s.placed, placedOp{instr: k, beat: uc.beat, unit: uc.unit, vop: m})
			if k > s.maxInstr {
				s.maxInstr = k
			}
			return cp, true
		}
	}
	return VNone, false
}
