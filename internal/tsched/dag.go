package tsched

import (
	"fmt"

	"github.com/multiflow-repro/trace/internal/alias"
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// schedOp is one operation of a linearized trace, carrying its renamed vop,
// original position, dependence edges, and (once placed) its slot.
type schedOp struct {
	vop      VOp
	origIdx  int
	srcBlock int
	traceIdx int  // position of the op's block within the trace
	isSplit  bool // BrT whose taken edge leaves the trace
	isFinal  bool // the trace-terminating jump (scheduled last)

	ref   *alias.Ref // memory ops: address form for disambiguation
	isMem bool
	// compVop preserves the op's operands before the scheduler rewrote any
	// of them to board-local copies; compensation code re-executes this
	// form (serial comp blocks read each operand from its home board).
	compVop *VOp
	// converted marks a Load rewritten to the non-trapping speculative
	// opcode because it moved above a split (§7); compensation copies
	// revert it.
	converted bool
	// isRestore marks the final-exit moves that re-establish original
	// register names; their writes must drain before control leaves.
	isRestore bool
	succs     []sedge
	npreds    int // unscheduled predecessors

	// placement
	placed bool
	instr  int
	beat   int // absolute issue beat
	unit   mach.Unit

	prio int64 // critical-path height in beats
	// chained marks an op consuming a same-kind producer (a reduction or
	// induction link); it follows its operands' board instead of spreading.
	chained bool
}

// sedge is a scheduling constraint: when minBeats ≥ 0, issue(to) ≥
// issue(from) + minBeats (minBeats -1 imposes no beat constraint);
// independently, instr(to) ≥ instr(from) + instrDelta (instrDelta 0 allows
// sharing an instruction, where hardware semantics make order irrelevant —
// e.g. multiway branch priorities, or ops sharing the branch's instruction,
// which execute on both paths).
type sedge struct {
	to         int
	minBeats   int
	instrDelta int
}

// traceGraph is a linearized, renamed trace with its dependence DAG and the
// bookkeeping needed to generate compensation code afterwards.
type traceGraph struct {
	vf  *VFunc
	ops []*schedOp

	// rename bookkeeping
	renameAtSplit map[int]map[VReg]VReg // op index -> snapshot of cur map
	renameAtJoin  map[int]map[VReg]VReg // linear position of join -> snapshot
	joinPos       map[int]int           // vblock ID -> linear position (first op index)
	splitTarget   map[int]int           // op index -> off-trace vblock
	finalIdx      int                   // index of the final exit op (-1 if none: trace ends in Halt-like)

	// restore moves appended for the final exit are ordinary ops; for splits
	// they are generated later from the snapshots.
}

var invCmp = map[ir.OpKind]ir.OpKind{
	ir.CmpEQ: ir.CmpNE, ir.CmpNE: ir.CmpEQ,
	ir.CmpLT: ir.CmpGE, ir.CmpGE: ir.CmpLT,
	ir.CmpLE: ir.CmpGT, ir.CmpGT: ir.CmpLE,
	ir.FCmpEQ: ir.FCmpNE, ir.FCmpNE: ir.FCmpEQ,
	ir.FCmpLT: ir.FCmpGE, ir.FCmpGE: ir.FCmpLT,
	ir.FCmpLE: ir.FCmpGT, ir.FCmpGT: ir.FCmpLE,
}

// linearize flattens the trace's blocks into one op sequence, turning
// on-trace jumps into fallthroughs and orienting conditional branches so
// their taken edge leaves the trace (inverting the producing compare when
// the trace follows the taken side).
func linearize(vf *VFunc, tr Trace) (*traceGraph, error) {
	g := &traceGraph{
		vf:            vf,
		renameAtSplit: map[int]map[VReg]VReg{},
		renameAtJoin:  map[int]map[VReg]VReg{},
		joinPos:       map[int]int{},
		splitTarget:   map[int]int{},
		finalIdx:      -1,
	}
	inTrace := map[int]int{} // block -> position in trace
	for i, b := range tr.Blocks {
		inTrace[b] = i
	}
	preds := vf.Preds()

	curTI := 0
	emit := func(op VOp, src int) *schedOp {
		s := &schedOp{vop: op, origIdx: len(g.ops), srcBlock: src, traceIdx: curTI, instr: -1}
		g.ops = append(g.ops, s)
		return s
	}

	for ti, bid := range tr.Blocks {
		curTI = ti
		b := vf.Blocks[bid]
		if ti > 0 {
			// join if any predecessor is not the previous trace block
			prev := tr.Blocks[ti-1]
			for _, p := range preds[bid] {
				if p != prev {
					g.joinPos[bid] = len(g.ops)
					break
				}
			}
		}
		for oi := range b.Ops {
			op := b.Ops[oi] // copy
			isLast := oi == len(b.Ops)-1
			if !isLast {
				emit(op, bid)
				continue
			}
			next := -1
			if ti+1 < len(tr.Blocks) {
				next = tr.Blocks[ti+1]
			}
			switch op.Kind {
			case mach.OpJmp:
				if op.T0 == next {
					continue // fallthrough
				}
				s := emit(op, bid)
				s.isFinal = true
				g.finalIdx = s.origIdx
			case mach.OpBrT:
				if op.T1 == next {
					s := emit(op, bid)
					s.isSplit = true
					g.splitTarget[s.origIdx] = op.T0
				} else if op.T0 == next {
					// invert: find the BB def and flip its sense
					if err := invertBranch(g, &op); err != nil {
						return nil, err
					}
					op.T0, op.T1 = op.T1, op.T0
					s := emit(op, bid)
					s.isSplit = true
					g.splitTarget[s.origIdx] = op.T0
				} else {
					// trace ends at a two-way branch: split + final jump
					s := emit(op, bid)
					s.isSplit = true
					g.splitTarget[s.origIdx] = op.T0
					j := emit(VOp{Kind: mach.OpJmp, T0: op.T1, Line: op.Line}, bid)
					j.isFinal = true
					g.finalIdx = j.origIdx
				}
			default:
				return nil, fmt.Errorf("%s: block b%d in compacted trace ends with %s",
					vf.Name, bid, mach.OpName(op.Kind))
			}
		}
	}
	return g, nil
}

// invertBranch flips the compare producing the branch's condition bit.
func invertBranch(g *traceGraph, br *VOp) error {
	bb := br.A.Reg
	for i := len(g.ops) - 1; i >= 0; i-- {
		o := &g.ops[i].vop
		if o.Dst != bb {
			continue
		}
		nk, ok := invCmp[o.Kind]
		if !ok {
			return fmt.Errorf("%s: branch condition defined by %s, cannot invert",
				g.vf.Name, mach.OpName(o.Kind))
		}
		o.Kind = nk
		return nil
	}
	return fmt.Errorf("%s: branch condition t%d not defined in trace", g.vf.Name, bb)
}

// rename gives every in-trace definition a fresh virtual register, breaking
// anti- and output-dependences so unrolled iterations can overlap. Snapshots
// of the renaming map are taken at every split and join for compensation.
// Precolored registers are never renamed.
func (g *traceGraph) rename() {
	vf := g.vf
	cur := map[VReg]VReg{}
	snap := func() map[VReg]VReg {
		m := make(map[VReg]VReg, len(cur))
		for k, v := range cur {
			m[k] = v
		}
		return m
	}
	// join snapshots are taken at linear positions; collect reverse map
	joinAt := map[int][]int{} // position -> blocks joining there
	for b, pos := range g.joinPos {
		joinAt[pos] = append(joinAt[pos], b)
	}
	resolve := func(a *VArg) {
		if a.IsImm || a.Reg == VNone {
			return
		}
		if r, ok := cur[a.Reg]; ok {
			a.Reg = r
		}
	}
	for i, s := range g.ops {
		if _, ok := joinAt[i]; ok {
			g.renameAtJoin[i] = snap()
		}
		o := &s.vop
		resolve(&o.A)
		resolve(&o.B)
		resolve(&o.C)
		if s.isSplit || s.isFinal {
			g.renameAtSplit[i] = snap()
		}
		if o.Dst != VNone {
			if _, pre := vf.precolor[o.Dst]; pre {
				continue
			}
			fresh := vf.NewReg(vf.Class(o.Dst), vf.TypeOf(o.Dst))
			cur[o.Dst] = fresh
			o.Dst = fresh
		}
	}
}

// foldGlobalConsts rewrites src2 register operands whose value is a
// function-level constant (e.g. a loop-invariant stride hoisted to the
// preheader) into immediates, freeing read ports and exposing add chains to
// collapsing. Only the src2 leg takes immediates in the encoding (§6.1).
func (g *traceGraph) foldGlobalConsts(global map[VReg]alias.Form) {
	fold := func(a *VArg) {
		if a.IsImm || a.Reg == VNone {
			return
		}
		f, ok := global[a.Reg]
		// Only the inline 6-bit immediate is free; a 32-bit value would
		// compete for the pair's single shared immediate word per beat
		// (§6.1), which costs more than the register read it saves.
		if !ok || !f.IsConst() || f.Const < -32 || f.Const > 31 {
			return
		}
		*a = VImmArg(int32(f.Const))
	}
	for _, s := range g.ops {
		o := &s.vop
		switch o.Kind {
		case ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Sra,
			ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
			fold(&o.B)
		case ir.Select:
			if o.Type == ir.I32 {
				fold(&o.C)
			}
		}
	}
}

// forwardMoves rewrites operands that read the result of an in-trace
// register-to-register move to read the move's source directly, removing
// the move from dependence chains (the move still executes for its own
// consumers, e.g. exit restores). Like collapseAddChains, forwarding must
// not cross a side entrance: the joining path establishes only the current
// names.
func (g *traceGraph) forwardMoves() {
	vf := g.vf
	defs := map[VReg]*VOp{}
	fwd := func(a *VArg) {
		if a.IsImm || a.Reg == VNone {
			return
		}
		for hops := 0; hops < 8; hops++ {
			d, ok := defs[a.Reg]
			if !ok || d.Kind != ir.Mov || d.A.IsImm || d.A.Reg == VNone {
				return
			}
			// only forward within a bank class; cross-bank moves are real
			// data routing
			if vf.Class(d.Dst) != vf.Class(d.A.Reg) {
				return
			}
			a.Reg = d.A.Reg
		}
	}
	for i, s := range g.ops {
		if _, isJoin := g.joinAtIndex(i); isJoin {
			defs = map[VReg]*VOp{}
		}
		o := &s.vop
		fwd(&o.A)
		fwd(&o.B)
		fwd(&o.C)
		if o.Dst != VNone {
			defs[o.Dst] = o
		}
	}
}

// collapseAddChains rewrites renamed add-immediate chains so each link
// depends on the chain's trace live-in rather than its predecessor:
// i1=i0+1, i2=i1+1 becomes i1=i0+1, i2=i0+2. Unrolled induction updates
// otherwise form a serial recurrence through the whole trace; collapsed,
// every unrolled iteration's address arithmetic is independent and can
// spread across the board pairs. (Height reduction in the style of
// Ellis's Bulldog generator.)
func (g *traceGraph) collapseAddChains() {
	defs := map[VReg]*VOp{}
	// chase resolves a register through in-trace I32 moves to its defining
	// op (renaming makes every def unique, so this is sound).
	chase := func(r VReg) *VOp {
		for i := 0; i < 8; i++ {
			d, ok := defs[r]
			if !ok {
				return nil
			}
			if d.Kind == ir.Mov && d.Type == ir.I32 && !d.A.IsImm && d.A.Reg != VNone {
				r = d.A.Reg
				continue
			}
			return d
		}
		return nil
	}
	for i, s := range g.ops {
		// A side entrance re-establishes only the registers current at the
		// join; rewriting a later op to read an older rename would make the
		// joining path read a value its compensation never set. Chains must
		// not cross a join.
		if _, isJoin := g.joinAtIndex(i); isJoin {
			defs = map[VReg]*VOp{}
		}
		o := &s.vop
		if o.Kind == ir.Add && o.B.IsImm && o.B.Sym == "" && !o.A.IsImm && o.A.Reg != VNone {
			if d := chase(o.A.Reg); d != nil && d.Kind == ir.Add && d.B.IsImm && d.B.Sym == "" &&
				!d.A.IsImm && d.A.Reg != VNone {
				sum := int64(o.B.Imm) + int64(d.B.Imm)
				if sum >= -1<<31 && sum < 1<<31 {
					o.A.Reg = d.A.Reg
					o.B.Imm = int32(sum)
				}
			}
		}
		if o.Dst != VNone {
			defs[o.Dst] = o
		}
	}
}

// origOf inverts a rename snapshot: renamed -> original.
func origOf(snap map[VReg]VReg) map[VReg]VReg {
	m := make(map[VReg]VReg, len(snap))
	for o, r := range snap {
		m[r] = o
	}
	return m
}

// addFinalRestores appends, just before the trace's final exit jump, a move
// re-establishing each original register (live into the exit's target) from
// its current renamed name, so off-trace code sees the canonical locations.
func (g *traceGraph) addFinalRestores(lv *VLiveness) {
	if g.finalIdx < 0 {
		return
	}
	snap := g.renameAtSplit[g.finalIdx]
	target := g.ops[g.finalIdx].vop.T0
	var movs []*schedOp
	// deterministic order
	var origs []VReg
	for o := range snap {
		origs = append(origs, o)
	}
	for i := 0; i < len(origs); i++ {
		for j := i + 1; j < len(origs); j++ {
			if origs[j] < origs[i] {
				origs[i], origs[j] = origs[j], origs[i]
			}
		}
	}
	for _, orig := range origs {
		cur := snap[orig]
		if cur == orig || !lv.In[target].Has(ir.Reg(orig)) {
			continue
		}
		movs = append(movs, &schedOp{
			vop:       VOp{Kind: ir.Mov, Type: g.vf.TypeOf(orig), Dst: orig, A: VRegArg(cur)},
			instr:     -1,
			isRestore: true,
		})
	}
	if len(movs) == 0 {
		return
	}
	fi := g.finalIdx
	final := g.ops[fi]
	g.ops = append(g.ops[:fi], append(movs, final)...)
	for i := fi; i < len(g.ops); i++ {
		g.ops[i].origIdx = i
	}
	g.finalIdx = final.origIdx
	// the snapshot and split bookkeeping keyed by the old index move
	delete(g.renameAtSplit, fi)
	g.renameAtSplit[g.finalIdx] = snap
}

// buildDAG adds dependence edges. layout supplies global addresses and
// globalForms the function-level single-assignment derivations for the
// disambiguator.
func (g *traceGraph) buildDAG(cfg mach.Config, layout map[string]int64, globalForms map[VReg]alias.Form) {
	defsite := map[VReg]int{}

	addEdge := func(from, to, minBeats, instrDelta int) {
		if from == to {
			return
		}
		g.ops[from].succs = append(g.ops[from].succs, sedge{to, minBeats, instrDelta})
		g.ops[to].npreds++
	}

	var mems []int           // indices of memory ops so far
	var splits []int         // indices of splits so far
	var aboveJoin []int      // ops before the most recent join (for split barriers)
	uses := map[VReg][]int{} // reads of each reg since its last definition

	formOf := newFormTracker(layout)
	formOf.seed(globalForms)

	for i, s := range g.ops {
		o := &s.vop
		if _, ok := g.joinAtIndex(i); ok {
			aboveJoin = aboveJoinUpTo(g, i)
		}

		// flow dependences
		for _, u := range o.Uses() {
			if d, ok := defsite[u]; ok {
				lat := opLatency(cfg, &g.ops[d].vop)
				addEdge(d, i, lat, 0)
				// chain detection looks through moves: acc = mov t after
				// t = fadd acc', x is still the same reduction
				dk := g.ops[d]
				for hops := 0; hops < 8 && dk.vop.Kind == ir.Mov; hops++ {
					src := dk.vop.A.Reg
					if dk.vop.A.IsImm || src == VNone {
						break
					}
					nd, ok := defsite[src]
					if !ok {
						break
					}
					dk = g.ops[nd]
				}
				if dk.vop.Kind == o.Kind || (o.Kind == ir.Mov && dk.vop.Kind != ir.Mov) {
					switch dk.vop.Kind {
					case ir.FAdd, ir.FSub, ir.FMul, ir.Add, ir.Sub:
						if o.Kind == dk.vop.Kind || o.Kind == ir.Mov {
							s.chained = true
						}
					}
				}
			}
			uses[u] = append(uses[u], i)
		}
		// Renaming removed almost all WAR/WAW hazards; the exceptions are
		// precolored registers and the restore moves that re-establish
		// original names at the trace's final exit. A write may not take
		// effect before an outstanding read issues (reads happen at issue,
		// writes land at issue+latency, so issue(def) ≥ issue(use) is
		// sufficient), and a write must follow a previous write by a beat.
		if o.Dst != VNone {
			for _, j := range uses[o.Dst] {
				addEdge(j, i, 0, 0)
			}
			if d, ok := defsite[o.Dst]; ok {
				addEdge(d, i, 1, 0)
			}
			uses[o.Dst] = nil
			defsite[o.Dst] = i
		}

		// memory dependences
		if o.IsMem() {
			s.isMem = true
			r := formOf.refOf(o)
			s.ref = &r
			for _, j := range mems {
				m := g.ops[j]
				if o.Kind != ir.Store && m.vop.Kind != ir.Store {
					continue // two loads commute
				}
				if alias.MayAlias(*m.ref, r) != alias.No {
					addEdge(j, i, 1, 0)
				}
			}
			mems = append(mems, i)
		}
		formOf.note(o)

		// control dependences
		if s.isSplit || s.isFinal {
			// branches stay ordered among themselves; multiway packing may
			// place several in one instruction (priority resolves), so the
			// edge is beat-level only when multiway is on.
			brDelta := 1
			if cfg.MultiwayBranch {
				brDelta = 0
			}
			for _, j := range splits {
				addEdge(j, i, -1, brDelta)
			}
			// a branch may not move above any op that precedes the nearest
			// join (the entrance would have to move above it, impossible)
			for _, j := range aboveJoin {
				addEdge(j, i, -1, 1)
			}
			splits = append(splits, i)
		} else if s.isRestore {
			// Restore moves write ORIGINAL register names, which are live
			// on every off-trace edge; moving one above a split would
			// clobber the value the off-trace path reads. Keep them below
			// all splits (the split's own compensation re-establishes names
			// from its snapshot).
			for _, j := range splits {
				addEdge(j, i, -1, 1)
			}
		} else {
			switch o.Kind {
			case ir.Store, mach.OpMovSF:
				// stores never move above a split: the off-trace path must
				// not see the store. (MovSF is pure, but keeping it with its
				// store costs little and keeps the store file small.)
				if o.Kind == ir.Store {
					for _, j := range splits {
						addEdge(j, i, -1, 1)
					}
				}
			case ir.Load:
				if !cfg.SpeculativeLoads {
					// without the §7 non-trapping opcodes, loads cannot
					// cross a split either
					for _, j := range splits {
						addEdge(j, i, 0, 1)
					}
				}
			case ir.Div, ir.Rem:
				// integer divide can fault; never speculate it
				for _, j := range splits {
					addEdge(j, i, -1, 1)
				}
			}
		}
	}

	// The final jump must not precede anything: give every op an
	// instruction-level edge to it so it lands in the last instruction.
	// Ops that write ORIGINAL registers (the restores) additionally hold
	// the jump until their writes will have drained by the time the next
	// block reads (next read beat = jump issue + 2).
	if g.finalIdx >= 0 {
		for i := range g.ops {
			if i == g.finalIdx {
				continue
			}
			mb := -1
			if g.ops[i].isRestore {
				if l := opLatency(cfg, &g.ops[i].vop) - 2; l > mb {
					mb = l
				}
			}
			addEdge(i, g.finalIdx, mb, 0)
		}
	}

	// critical-path priorities
	for i := len(g.ops) - 1; i >= 0; i-- {
		s := g.ops[i]
		h := int64(opLatency(cfg, &s.vop))
		for _, e := range s.succs {
			mb := e.minBeats
			if mb < 0 {
				mb = 0
			}
			if v := g.ops[e.to].prio + int64(mb) + 1; v > h {
				h = v
			}
		}
		s.prio = h
	}
}

// joinAtIndex reports whether linear index i is a join position.
func (g *traceGraph) joinAtIndex(i int) (int, bool) {
	for _, pos := range g.joinPos {
		if pos == i {
			return pos, true
		}
	}
	return 0, false
}

// aboveJoinUpTo returns the indices of all ops before linear position pos.
func aboveJoinUpTo(g *traceGraph, pos int) []int {
	out := make([]int, 0, pos)
	for i := 0; i < pos; i++ {
		out = append(out, i)
	}
	return out
}

// opLatency returns the write latency of an op in beats.
func opLatency(cfg mach.Config, o *VOp) int {
	switch o.Kind {
	case ir.Load, ir.LoadSpec:
		return cfg.LatLoad
	case ir.Store:
		return 1
	case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return cfg.LatFAdd
	case ir.FMul:
		return cfg.LatFMul
	case ir.FDiv:
		return cfg.LatFDiv
	case ir.Mul:
		// 32-bit integer multiply is composed from the 16-bit primitives of
		// §6.1; modeled as one multi-beat op (see DESIGN.md substitutions)
		return cfg.LatIMul
	case ir.Div, ir.Rem:
		// no integer divide hardware; modeled as an iterative op
		return cfg.LatIDiv
	case ir.ConstF:
		return 2 // two 32-bit immediate halves
	case ir.Mov, mach.OpMovSF:
		if o.Type == ir.F64 {
			return cfg.LatMove * 2
		}
		return cfg.LatMove
	case ir.Select:
		if o.Type == ir.F64 {
			return 2
		}
		return 1
	case mach.OpCall:
		return 1
	}
	return cfg.LatIALU
}

// formTracker adapts vops (whose operands may be immediates) to the alias
// package's linear-form derivations.
type formTracker struct {
	forms map[VReg]alias.Form
	gaddr map[string]int64
	next  int
}

func newFormTracker(layout map[string]int64) *formTracker {
	return &formTracker{forms: map[VReg]alias.Form{}, gaddr: layout, next: 1}
}

// seed installs pre-computed derivations (GlobalForms) for trace live-ins.
func (t *formTracker) seed(global map[VReg]alias.Form) {
	for r, f := range global {
		t.forms[r] = f
	}
}

// GlobalForms derives linear forms for registers assigned exactly once in
// the whole function by constant or affine ops. Loop-invariant code motion
// hoists array base addresses and strides out of loops, so inside a loop
// trace they are live-ins; without these function-level derivations the
// disambiguator would treat two distinct arrays' bases as unrelated unknowns
// and answer "maybe" for every load/store pair, serializing the loop.
// A single-assignment register holds the same value at every point after its
// definition, so the derivation is sound across traces.
func GlobalForms(vf *VFunc, layout map[string]int64) map[VReg]alias.Form {
	defs := map[VReg]*VOp{}
	count := map[VReg]int{}
	for _, b := range vf.Blocks {
		for i := range b.Ops {
			o := &b.Ops[i]
			if o.Dst != VNone {
				count[o.Dst]++
				defs[o.Dst] = o
			}
		}
	}
	forms := map[VReg]alias.Form{}
	argForm := func(a VArg) (alias.Form, bool) {
		if a.IsImm {
			if a.Sym != "" {
				if addr, ok := layout[a.Sym]; ok {
					return alias.ConstForm(addr), true
				}
				return alias.Form{}, false
			}
			return alias.ConstForm(int64(a.Imm)), true
		}
		if a.Reg == VNone {
			return alias.ConstForm(0), true
		}
		f, ok := forms[a.Reg]
		return f, ok
	}
	for changed := true; changed; {
		changed = false
		for r, o := range defs {
			if count[r] != 1 {
				continue
			}
			if _, done := forms[r]; done {
				continue
			}
			var f alias.Form
			ok := false
			switch o.Kind {
			case ir.ConstI:
				f, ok = argForm(o.A)
			case ir.Mov:
				if o.Type == ir.I32 {
					f, ok = argForm(o.A)
				}
			case ir.Add, ir.Sub, ir.Mul, ir.Shl, ir.Neg:
				a, okA := argForm(o.A)
				b, okB := argForm(o.B)
				if okA && okB {
					ok = true
					switch o.Kind {
					case ir.Add:
						f = a.Add(b)
					case ir.Sub:
						f = a.Sub(b)
					case ir.Mul:
						switch {
						case a.IsConst():
							f = b.Scale(a.Const)
						case b.IsConst():
							f = a.Scale(b.Const)
						default:
							ok = false
						}
					case ir.Shl:
						if b.IsConst() && b.Const >= 0 && b.Const < 31 {
							f = a.Scale(1 << uint(b.Const))
						} else {
							ok = false
						}
					case ir.Neg:
						f = a.Scale(-1)
					}
				}
			}
			if ok {
				forms[r] = f
				changed = true
			}
		}
	}
	return forms
}

func (t *formTracker) fresh() alias.Form {
	t.next++
	return alias.VarForm(t.next)
}

func (t *formTracker) argForm(a VArg) alias.Form {
	if a.IsImm {
		if a.Sym != "" {
			if addr, ok := t.gaddr[a.Sym]; ok {
				return alias.ConstForm(addr)
			}
			return t.fresh()
		}
		return alias.ConstForm(int64(a.Imm))
	}
	if a.Reg == VNone {
		return alias.ConstForm(0)
	}
	if f, ok := t.forms[a.Reg]; ok {
		return f
	}
	f := t.fresh()
	t.forms[a.Reg] = f
	return f
}

// refOf returns the address form for a memory vop (A = base, B = offset).
func (t *formTracker) refOf(o *VOp) alias.Ref {
	base := t.argForm(o.A)
	off := t.argForm(o.B)
	return alias.Ref{Addr: base.Add(off), Size: o.Type.Size()}
}

// note updates derivations after executing o.
func (t *formTracker) note(o *VOp) {
	if o.Dst == VNone {
		return
	}
	switch o.Kind {
	case ir.ConstI:
		t.forms[o.Dst] = t.argForm(o.A)
	case ir.Mov:
		if o.Type == ir.I32 {
			t.forms[o.Dst] = t.argForm(o.A)
		} else {
			t.forms[o.Dst] = t.fresh()
		}
	case ir.Add:
		t.forms[o.Dst] = t.argForm(o.A).Add(t.argForm(o.B))
	case ir.Sub:
		t.forms[o.Dst] = t.argForm(o.A).Sub(t.argForm(o.B))
	case ir.Mul:
		x, y := t.argForm(o.A), t.argForm(o.B)
		switch {
		case x.IsConst():
			t.forms[o.Dst] = y.Scale(x.Const)
		case y.IsConst():
			t.forms[o.Dst] = x.Scale(y.Const)
		default:
			t.forms[o.Dst] = t.fresh()
		}
	case ir.Shl:
		y := t.argForm(o.B)
		if y.IsConst() && y.Const >= 0 && y.Const < 31 {
			t.forms[o.Dst] = t.argForm(o.A).Scale(1 << uint(y.Const))
		} else {
			t.forms[o.Dst] = t.fresh()
		}
	case ir.Neg:
		t.forms[o.Dst] = t.argForm(o.A).Scale(-1)
	default:
		t.forms[o.Dst] = t.fresh()
	}
}
