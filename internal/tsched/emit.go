package tsched

import (
	"context"
	"fmt"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// FuncCode is a compiled function: wide instructions with physical
// registers. Branch targets are function-local instruction indices; calls
// and global addresses remain symbolic until the linker runs.
type FuncCode struct {
	Name   string
	Instrs []mach.Instr

	// Lines[i][j] is the source line of Instrs[i].Slots[j] (0 = unknown),
	// carried from the IR so post-link diagnostics (vliw traps, schedcheck
	// findings) can name the source position of an op in a wide word.
	Lines [][]int32

	// Stats for the code-size and compensation experiments.
	Ops       int // real (non-nop) operations
	CompOps   int
	CopyOps   int
	SpecLoads int
}

// Emit lays out the scheduled blocks (entry first) and rewrites virtual
// registers to their allocated physical registers.
func Emit(sf *SFunc, alloc map[VReg]mach.PReg) (*FuncCode, error) {
	// block order: entry first, then the rest in creation order
	var orderIDs []int
	orderIDs = append(orderIDs, sf.Entry)
	for _, b := range sf.Blocks {
		if b.ID != sf.Entry {
			orderIDs = append(orderIDs, b.ID)
		}
	}
	base := map[int]int{}
	total := 0
	for _, id := range orderIDs {
		base[id] = total
		total += len(sf.Blocks[id].Instrs)
	}

	fc := &FuncCode{Name: sf.Name, Instrs: make([]mach.Instr, total),
		Lines:   make([][]int32, total),
		CompOps: sf.CompOps, CopyOps: sf.CopyOps, SpecLoads: sf.SpecLoads}

	regOf := func(r VReg) (mach.PReg, error) {
		if r == VNone {
			return mach.PReg{}, nil
		}
		p, ok := alloc[r]
		if !ok {
			return mach.PReg{}, fmt.Errorf("%s: t%d has no physical register", sf.Name, r)
		}
		return p, nil
	}
	argOf := func(a VArg) (mach.Arg, error) {
		if a.IsImm {
			return mach.Arg{IsImm: true, Imm: a.Imm, Sym: a.Sym}, nil
		}
		if a.Reg == VNone {
			return mach.Arg{}, nil
		}
		p, err := regOf(a.Reg)
		return mach.Arg{Reg: p}, err
	}

	for _, id := range orderIDs {
		b := sf.Blocks[id]
		for i := range b.Instrs {
			src := &b.Instrs[i]
			dst := &fc.Instrs[base[id]+i]
			for si := range src.Slots {
				s := &src.Slots[si]
				var op mach.Op
				op.Kind = s.Op.Kind
				op.Type = s.Op.Type
				op.FImm = s.Op.ImmF
				op.Spec = s.Op.Spec
				op.Prio = s.Prio
				op.Sym = s.Op.Sym
				var err error
				if op.Dst, err = regOf(s.Op.Dst); err != nil {
					return nil, err
				}
				if op.A, err = argOf(s.Op.A); err != nil {
					return nil, err
				}
				if op.B, err = argOf(s.Op.B); err != nil {
					return nil, err
				}
				if op.C, err = argOf(s.Op.C); err != nil {
					return nil, err
				}
				switch s.Op.Kind {
				case mach.OpJmp, mach.OpBrT:
					op.Target = base[s.TargetBlock] + s.TargetOff
				case mach.OpCall:
					op.Sym = s.Op.Sym // resolved by the linker
				}
				dst.Slots = append(dst.Slots, mach.SlotOp{Unit: s.Unit, Beat: s.Beat, Op: op})
				fc.Lines[base[id]+i] = append(fc.Lines[base[id]+i], int32(s.Op.Line))
				if s.Op.Kind != ir.Nop {
					fc.Ops++
				}
			}
		}
	}
	return fc, nil
}

// CompileFunc runs the whole backend on one lowered function.
func CompileFunc(cfg mach.Config, vf *VFunc, prof map[[2]int]float64, layout map[string]int64, maxTraceBlocks int) (*FuncCode, error) {
	sf, err := Assemble(cfg, vf, prof, layout, maxTraceBlocks)
	if err != nil {
		return nil, err
	}
	alloc, err := Allocate(sf, cfg)
	if err != nil {
		return nil, err
	}
	return Emit(sf, alloc)
}

// Compile lowers and schedules every function of the program for the given
// machine, using prof for trace selection. It modifies prog (call spills);
// callers pass a private copy. Functions whose register demand overflows a
// bank are retried with shorter traces before the error is surfaced.
func Compile(prog *ir.Program, cfg mach.Config, prof ir.Profile) ([]*FuncCode, error) {
	return CompileWithLimit(prog, cfg, prof, 0)
}

// CompileWithLimit is Compile with a trace-length cap (0 = unlimited);
// maxTraceBlocks = 1 restricts compaction to basic blocks. Compilation is
// sequential; CompileParallel fans the same work out over a worker pool.
func CompileWithLimit(prog *ir.Program, cfg mach.Config, prof ir.Profile, maxTraceBlocks int) ([]*FuncCode, error) {
	return CompileParallel(context.Background(), prog, cfg, prof, CompileOptions{MaxTraceBlocks: maxTraceBlocks, Parallelism: 1})
}
