package tsched

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/profile"
)

// randomBranchy builds a random but well-formed MF function so lowering is
// exercised exactly as production code paths would (random raw CFGs can't be
// lowered: LowerFunc needs the calling-convention prologue the front end
// establishes).
func randomBranchy(rng *rand.Rand) *ir.Program {
	var b strings.Builder
	b.WriteString("var g [16]int\nfunc main() int {\n\tvar s int = 1\n")
	depth := 0
	n := 6 + rng.Intn(10)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&b, "\tfor (var i%d int = 0; i%d < %d; i%d = i%d + 1) {\n", i, i, 2+rng.Intn(9), i, i)
			fmt.Fprintf(&b, "\t\ts = s + i%d\n", i)
			depth++
			if rng.Intn(2) == 0 || depth > 2 {
				b.WriteString("\t}\n")
				depth--
			}
		case 1:
			fmt.Fprintf(&b, "\tif (s %% %d == 0) { s = s + %d } else { s = s * 3 }\n", 2+rng.Intn(5), rng.Intn(7))
		case 2:
			fmt.Fprintf(&b, "\tg[s & 15] = s\n")
		case 3:
			fmt.Fprintf(&b, "\ts = s + g[%d]\n", rng.Intn(16))
		default:
			fmt.Fprintf(&b, "\tif (s > %d) { s = s - %d }\n", rng.Intn(1000), 1+rng.Intn(9))
		}
	}
	for ; depth > 0; depth-- {
		b.WriteString("\t}\n")
	}
	b.WriteString("\treturn s & 65535\n}\n")
	prog, err := lang.Compile(b.String())
	if err != nil {
		panic(fmt.Sprintf("generator produced invalid MF: %v\n%s", err, b.String()))
	}
	return prog
}

// TestSelectTracesProperties checks the trace-selection invariants on random
// control flow: every block lands in exactly one trace; each trace is a real
// path through the CFG; a back edge never re-enters the middle of a trace
// (§4.2's restriction that keeps compensation code sound); and the maxBlocks
// cap is respected.
func TestSelectTracesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1987))
	for trial := 0; trial < 120; trial++ {
		prog := randomBranchy(rng)
		f := prog.Funcs[0]
		vf, err := LowerFunc(prog, f, true)
		if err != nil {
			t.Fatalf("trial %d: lower: %v", trial, err)
		}
		prof := profile.Static(prog)
		maxBlocks := 0
		if trial%3 == 1 {
			maxBlocks = 1
		} else if trial%3 == 2 {
			maxBlocks = 2 + rng.Intn(4)
		}
		traces := SelectTraces(vf, prof[f.Name], maxBlocks)

		seen := make(map[int]int)
		for ti, tr := range traces {
			if len(tr.Blocks) == 0 {
				t.Fatalf("trial %d: empty trace %d", trial, ti)
			}
			if maxBlocks > 0 && len(tr.Blocks) > maxBlocks {
				t.Fatalf("trial %d: trace %d has %d blocks, cap %d",
					trial, ti, len(tr.Blocks), maxBlocks)
			}
			inTrace := make(map[int]int)
			for pos, bid := range tr.Blocks {
				if prev, dup := seen[bid]; dup {
					t.Fatalf("trial %d: block %d in traces %d and %d", trial, bid, prev, ti)
				}
				seen[bid] = ti
				inTrace[bid] = pos
			}
			for i := 0; i+1 < len(tr.Blocks); i++ {
				succs := vf.Blocks[tr.Blocks[i]].Succs()
				found := false
				for _, s := range succs {
					if s == tr.Blocks[i+1] {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d trace %d: %d -> %d is not a CFG edge",
						trial, ti, tr.Blocks[i], tr.Blocks[i+1])
				}
			}
			// no edge from inside the trace may target a non-head trace
			// member earlier than or equal to its own position (a back edge
			// into the middle would make join compensation unsound)
			for pos, bid := range tr.Blocks {
				for _, s := range vf.Blocks[bid].Succs() {
					if tp, ok := inTrace[s]; ok && tp != pos+1 && tp != 0 && tp <= pos {
						t.Fatalf("trial %d trace %d: back edge %d(pos %d) -> %d(pos %d) into trace middle",
							trial, ti, bid, pos, s, tp)
					}
				}
			}
		}
		for bid := range vf.Blocks {
			if _, ok := seen[bid]; !ok {
				t.Fatalf("trial %d: block %d in no trace", trial, bid)
			}
		}
		// the entry block has no predecessors, so it can only ever sit at
		// the head of its trace (traces grow backward through predecessors)
		for ti, tr := range traces {
			for pos, bid := range tr.Blocks {
				if bid == 0 && pos != 0 {
					t.Fatalf("trial %d: entry block at position %d of trace %d", trial, pos, ti)
				}
			}
		}
	}
}

// TestBlockWeightsPositive: every reachable block gets a positive weight and
// the entry weight is the largest... not necessarily — but entry is >= 1 and
// loop bodies outweigh their preheaders under the static profile.
func TestBlockWeightsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		prog := randomBranchy(rng)
		f := prog.Funcs[0]
		vf, err := LowerFunc(prog, f, true)
		if err != nil {
			t.Fatal(err)
		}
		prof := profile.Static(prog)
		w := BlockWeights(vf, prof[f.Name])
		if len(w) != len(vf.Blocks) {
			t.Fatalf("trial %d: %d weights for %d blocks", trial, len(w), len(vf.Blocks))
		}
		for bid, wt := range w {
			if wt < 0 {
				t.Fatalf("trial %d: block %d has negative weight %v", trial, bid, wt)
			}
		}
	}
}
