package tsched

import (
	"sort"

	"github.com/multiflow-repro/trace/internal/ir"
)

// Trace is an acyclic path of vblocks selected for compaction, ordered by
// control flow. The first block is the unique entrance from above; later
// blocks may have side entrances (joins), and any block may have side exits
// (splits).
type Trace struct {
	Blocks []int
}

// VLiveness is block-level liveness over a VFunc.
type VLiveness struct {
	In  []ir.RegSet // indexed by vblock, over VRegs
	Out []ir.RegSet
}

// ComputeLiveness runs backward dataflow over the vop CFG.
func (f *VFunc) ComputeLiveness() *VLiveness {
	n := len(f.Blocks)
	nr := f.NumRegs()
	lv := &VLiveness{In: make([]ir.RegSet, n), Out: make([]ir.RegSet, n)}
	use := make([]ir.RegSet, n)
	def := make([]ir.RegSet, n)
	for i, b := range f.Blocks {
		use[i] = ir.NewRegSet(nr)
		def[i] = ir.NewRegSet(nr)
		lv.In[i] = ir.NewRegSet(nr)
		lv.Out[i] = ir.NewRegSet(nr)
		for j := range b.Ops {
			o := &b.Ops[j]
			for _, u := range o.Uses() {
				if !def[i].Has(ir.Reg(u)) {
					use[i].Add(ir.Reg(u))
				}
			}
			if o.Dst != VNone {
				def[i].Add(ir.Reg(o.Dst))
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := lv.Out[i]
			for _, s := range f.Blocks[i].Succs() {
				if out.UnionWith(lv.In[s]) {
					changed = true
				}
			}
			in := out.Clone()
			for w := range in {
				in[w] &^= def[i][w]
				in[w] |= use[i][w]
			}
			eq := true
			for w := range in {
				if in[w] != lv.In[i][w] {
					eq = false
					break
				}
			}
			if !eq {
				lv.In[i] = in
				changed = true
			}
		}
	}
	return lv
}

// BlockWeights estimates an execution frequency for every vblock from the
// IR-level profile (vblock i+1 mirrors IR block i). Inserted blocks
// (prologue, call blocks, epilogues, continuations) inherit flow from their
// predecessors by propagation.
func BlockWeights(f *VFunc, prof map[[2]int]float64) []float64 {
	n := len(f.Blocks)
	w := make([]float64, n)
	w[0] = 1
	for e, c := range prof {
		// edge (a,b) in IR = (a+1, b+1) here; weight lands on the target
		if e[1]+1 < n {
			w[e[1]+1] += c
		}
	}
	// IR entry block weight: at least 1
	if n > 1 && w[1] < 1 {
		w[1] = 1
	}
	// propagate into inserted blocks (they form chains off known blocks)
	preds := f.Preds()
	for pass := 0; pass < n; pass++ {
		changed := false
		for i := 1; i < n; i++ {
			if w[i] != 0 {
				continue
			}
			var sum float64
			for _, p := range preds[i] {
				// split flow evenly when the predecessor branches
				s := f.Blocks[p].Succs()
				if len(s) > 0 {
					sum += w[p] / float64(len(s))
				}
			}
			if sum > 0 {
				w[i] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return w
}

// EdgeWeight returns the estimated weight of edge a→b among vblocks.
func EdgeWeight(prof map[[2]int]float64, a, b int) float64 {
	if prof == nil {
		return 0
	}
	return prof[[2]int{a - 1, b - 1}]
}

// SelectTraces partitions the function's blocks into traces, most frequent
// first (§4: "the compiler selects the most likely path, or trace ... the
// process then repeats; the next-most-likely execution path is chosen").
// NoCompact blocks always form single-block traces. Growth stops at blocks
// already assigned, at NoCompact blocks, and at cycles; a block is appended
// only if the edge into it is both the predecessor's most likely exit and
// the block's most likely entry (Fisher's mutual-most-likely rule).
// maxBlocks 0 means unlimited.
func SelectTraces(f *VFunc, prof map[[2]int]float64, maxBlocks int) []Trace {
	weights := BlockWeights(f, prof)
	preds := f.Preds()
	n := len(f.Blocks)
	assigned := make([]bool, n)

	// edge weight with fallback: profile if present, else parent weight
	// split evenly
	ew := func(a, b int) float64 {
		if w := EdgeWeight(prof, a, b); w > 0 {
			return w
		}
		s := f.Blocks[a].Succs()
		if len(s) == 0 {
			return 0
		}
		return weights[a] / float64(len(s))
	}

	seeds := make([]int, n)
	for i := range seeds {
		seeds[i] = i
	}
	sort.SliceStable(seeds, func(a, b int) bool { return weights[seeds[a]] > weights[seeds[b]] })

	var traces []Trace
	inTrace := make([]bool, n)
	for _, seed := range seeds {
		if assigned[seed] {
			continue
		}
		if f.Blocks[seed].NoCompact {
			assigned[seed] = true
			traces = append(traces, Trace{Blocks: []int{seed}})
			continue
		}
		tr := []int{seed}
		for i := range inTrace {
			inTrace[i] = false
		}
		inTrace[seed] = true

		full := func() bool { return maxBlocks > 0 && len(tr) >= maxBlocks }
		// A trace should cover one frequency region: growing a hot loop
		// trace across its boundary (into the once-executed preheader or
		// exit code) turns the loop header into a side entrance, putting a
		// compensation block on the back edge of every iteration. Stop when
		// the edge is much colder than the seed.
		coldEdge := func(w float64) bool { return w < weights[seed]/4 }
		// grow forward
		for b := seed; !full(); {
			best, bw := -1, 0.0
			for _, s := range f.Blocks[b].Succs() {
				if assigned[s] || inTrace[s] || f.Blocks[s].NoCompact {
					continue
				}
				if w := ew(b, s); w > bw {
					best, bw = s, w
				}
			}
			if best == -1 || coldEdge(bw) {
				break
			}
			// mutual-most-likely: b must also be best's hottest predecessor
			mutual := true
			for _, p := range preds[best] {
				if p != b && ew(p, best) > bw {
					mutual = false
					break
				}
			}
			if !mutual {
				break
			}
			tr = append(tr, best)
			inTrace[best] = true
			b = best
		}
		// grow backward from the seed
		for b := seed; !full(); {
			best, bw := -1, 0.0
			for _, p := range preds[b] {
				if assigned[p] || inTrace[p] || f.Blocks[p].NoCompact {
					continue
				}
				if w := ew(p, b); w > bw {
					best, bw = p, w
				}
			}
			if best == -1 || coldEdge(bw) {
				break
			}
			// mutual: b must be best's hottest successor
			mutual := true
			for _, s := range f.Blocks[best].Succs() {
				if s != b && ew(best, s) > bw {
					mutual = false
					break
				}
			}
			if !mutual {
				break
			}
			tr = append([]int{best}, tr...)
			inTrace[best] = true
			b = best
		}
		// If the trace's last block loops back into the middle of the
		// trace, truncate to the cyclic part: the hot back edge then
		// re-enters at offset 0 with no side-entrance compensation, and the
		// dropped prefix blocks seed their own traces.
		last := f.Blocks[tr[len(tr)-1]]
		cut := 0
		for _, s := range last.Succs() {
			for k := 1; k < len(tr); k++ {
				if tr[k] == s {
					cut = k
				}
			}
		}
		if cut > 0 {
			// the dropped prefix is itself a consecutive chain; keep it as
			// its own trace (it feeds the loop once, on entry)
			prefix := append([]int{}, tr[:cut]...)
			for _, b := range prefix {
				assigned[b] = true
			}
			traces = append(traces, Trace{Blocks: prefix})
			tr = tr[cut:]
		}
		for _, b := range tr {
			assigned[b] = true
		}
		traces = append(traces, Trace{Blocks: tr})
	}
	return traces
}
