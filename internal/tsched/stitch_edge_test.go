package tsched

import (
	"testing"

	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/profile"
)

// splitLiveSrc has a rare loop exit (the break) with two registers — s and t,
// both renamed by on-trace scheduling — live across the split into the
// off-trace code. The stitcher must emit restore moves on that edge.
const splitLiveSrc = `
var p [16]int = {1, 2, 901}
func main() int {
	var s int = 0
	var t int = 1
	for (var i int = 0; i < 16; i = i + 1) {
		s = s + p[i] * 3
		t = t ^ (s + i)
		if (p[i] > 900) { break }
	}
	print_i(t & 255)
	return (s * 5 + t) & 65535
}
`

// joinRejoinSrc is a loop-carried diamond: the cold arm rejoins the trace
// mid-body with v and acc live, and the post-join code is free to be
// scheduled above the join entrance, forcing a relocated (interior)
// entrance reached through a join-compensation block.
const joinRejoinSrc = `
var q [8]int = {5, -3, 7, 2, -9, 4, 1, 0}
func main() int {
	var acc int = 0
	for (var i int = 0; i < 8; i = i + 1) {
		var v int = q[i]
		if (v < 0) { v = 0 - v * 3 }
		acc = acc + v * (i + 1)
	}
	return acc & 65535
}
`

// assemble runs trace selection, scheduling, and stitching on main.
func assemble(t *testing.T, src string, pairs int) *SFunc {
	t.Helper()
	prog, vf := lower(t, src, "main")
	prof := profile.Static(prog)["main"]
	layout := map[string]int64{}
	addr := int64(0x2000)
	for _, g := range prog.Globals {
		layout[g.Name] = addr
		addr += g.Size()
	}
	sf, err := Assemble(mach.NewConfig(pairs), vf, prof, layout, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sf
}

// TestSplitCompensationEmitted: the rare-exit program must produce
// compensation ops (restore moves for s and t at minimum) on the off-trace
// edge, landing in a separate serialized block that ends with a jump.
func TestSplitCompensationEmitted(t *testing.T) {
	sf := assemble(t, splitLiveSrc, 4)
	if sf.CompOps == 0 {
		t.Fatal("no compensation ops emitted for a split with live renamed registers")
	}
	// A compensation block is a non-entry SBlock whose only control transfer
	// is the final jump back to an entrance.
	compBlocks := 0
	for _, b := range sf.Blocks {
		if b.ID == sf.Entry || len(b.Instrs) == 0 {
			continue
		}
		var jumps, others int
		for _, in := range b.Instrs {
			for _, s := range in.Slots {
				switch s.Op.Kind {
				case mach.OpJmp:
					jumps++
				case mach.OpBrT, mach.OpCall, mach.OpHalt, mach.OpSyscall, mach.OpJmpR:
					others++
				}
			}
		}
		if jumps == 1 && others == 0 {
			compBlocks++
		}
	}
	if compBlocks == 0 {
		t.Error("compensation ops emitted but no serialized compensation block found")
	}
}

// TestJoinCompensationInteriorEntrance: when post-join operations are
// scheduled above a join entrance, the rejoining edge must route through a
// compensation block that jumps to an *interior* instruction of the trace
// block (TargetOff > 0) — the §4 relocated-entrance case.
func TestJoinCompensationInteriorEntrance(t *testing.T) {
	sf := assemble(t, joinRejoinSrc, 4)
	interior := false
	for _, b := range sf.Blocks {
		for _, in := range b.Instrs {
			for _, s := range in.Slots {
				if s.Op.Kind == mach.OpJmp && s.TargetOff > 0 {
					interior = true
				}
			}
		}
	}
	if !interior {
		t.Skip("schedule did not relocate the join entrance on this config")
	}
	if sf.CompOps == 0 {
		t.Error("interior join entrance exists but no compensation ops were counted")
	}
}

// TestEveryExitNeedsCompensation: a trace whose every conditional exit
// carries live renamed state — each of the three breaks leaves with s, t
// renamed mid-trace, so every off-trace edge must get restore code.
func TestEveryExitNeedsCompensation(t *testing.T) {
	src := `
var p [8]int = {10, 20, 30, 40, 50, 60, 70, 80}
func main() int {
	var s int = 0
	var t int = 7
	for (var i int = 0; i < 8; i = i + 1) {
		s = s + p[i]
		t = t * 3 + i
		if (s > 90) { break }
		t = t - p[i] / 2
		if (t > 800) { break }
		s = s ^ (t & 15)
		if ((s + t) > 950) { break }
	}
	print_i(s & 255)
	return (s * 9 + t) & 65535
}
`
	sf := assemble(t, src, 4)
	// every BrT that leaves the trace region must either target a comp block
	// or carry no live renamed state; with three mid-trace renamed exits we
	// expect multiple comp blocks.
	if sf.CompOps < 2 {
		t.Errorf("expected compensation on multiple exits, got %d comp ops", sf.CompOps)
	}
}
