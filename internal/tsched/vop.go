// Package tsched is the Trace Scheduling compacting code generator — the
// paper's core contribution (§4). It lowers IR functions to machine-level
// virtual operations, selects traces from profile estimates, compacts each
// trace into wide instructions with a resource-table list scheduler
// (speculating loads above splits with the §7 non-trapping opcodes, packing
// multiway branches with §6.5.2 priorities, and consulting the §6.4.2
// disambiguator before co-scheduling memory references), generates the
// compensation code that restores correctness on off-trace paths, and
// finally assigns physical registers in the partitioned banks of §6.
package tsched

import (
	"fmt"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// VReg is a virtual machine register, mapped to a physical bank register by
// the allocator.
type VReg int32

// VNone is the absent register.
const VNone VReg = 0

// Class is a virtual register's bank class.
type Class uint8

const (
	ClassNone Class = iota
	ClassI          // integer bank (i32)
	ClassF          // floating bank (f64)
	ClassSF         // store file
	ClassB          // branch bank (1 bit)
)

func (c Class) String() string {
	switch c {
	case ClassI:
		return "I"
	case ClassF:
		return "F"
	case ClassSF:
		return "SF"
	case ClassB:
		return "B"
	}
	return "?"
}

// VArg is a machine operand before register allocation: a virtual register,
// an immediate, or a relocated symbol immediate.
type VArg struct {
	IsImm bool
	Imm   int32
	Sym   string // non-empty: immediate is the symbol's address (fixed at link)
	Reg   VReg
}

// VRegArg returns a register operand.
func VRegArg(r VReg) VArg { return VArg{Reg: r} }

// VImmArg returns an immediate operand.
func VImmArg(v int32) VArg { return VArg{IsImm: true, Imm: v} }

// VSymArg returns a symbol-address operand.
func VSymArg(sym string) VArg { return VArg{IsImm: true, Sym: sym} }

func (a VArg) String() string {
	if a.IsImm {
		if a.Sym != "" {
			return "@" + a.Sym
		}
		return fmt.Sprintf("#%d", a.Imm)
	}
	if a.Reg == VNone {
		return "_"
	}
	return fmt.Sprintf("t%d", a.Reg)
}

// VOp is a machine-level operation over virtual registers. Kinds reuse
// ir.OpKind plus the mach.Op* machine extensions.
type VOp struct {
	Kind ir.OpKind
	Type ir.Type
	Dst  VReg
	A    VArg
	B    VArg
	C    VArg    // SELECT third operand / store data
	ImmF float64 // ConstF payload
	Sym  string  // OpCall callee / OpSyscall service
	Spec bool

	// Control flow: T0 is the jump/taken target, T1 the BrT fallthrough
	// (both vblock IDs until emission).
	T0, T1 int
	Line   int
}

// Uses returns the virtual registers read by the op.
func (o *VOp) Uses() []VReg {
	var u []VReg
	add := func(a VArg) {
		if !a.IsImm && a.Reg != VNone {
			u = append(u, a.Reg)
		}
	}
	add(o.A)
	add(o.B)
	add(o.C)
	return u
}

// IsTerm reports whether the op ends a vblock.
func (o *VOp) IsTerm() bool {
	switch o.Kind {
	case mach.OpJmp, mach.OpBrT, mach.OpJmpR, mach.OpHalt:
		return true
	}
	return false
}

// IsMem reports whether the op references data memory.
func (o *VOp) IsMem() bool {
	switch o.Kind {
	case ir.Load, ir.LoadSpec, ir.Store:
		return true
	}
	return false
}

func (o *VOp) String() string {
	s := mach.OpName(o.Kind)
	if o.Dst != VNone {
		s = fmt.Sprintf("t%d = %s", o.Dst, s)
	}
	switch o.Kind {
	case ir.ConstF:
		return fmt.Sprintf("%s %g", s, o.ImmF)
	case ir.Load, ir.LoadSpec:
		return fmt.Sprintf("%s.%s [%s+%s]", s, o.Type, o.A, o.B)
	case ir.Store:
		return fmt.Sprintf("%s.%s [%s+%s], %s", s, o.Type, o.A, o.B, o.C)
	case mach.OpJmp:
		return fmt.Sprintf("%s b%d", s, o.T0)
	case mach.OpBrT:
		return fmt.Sprintf("%s %s, b%d, b%d", s, o.A, o.T0, o.T1)
	case mach.OpCall:
		return fmt.Sprintf("%s @%s", s, o.Sym)
	case mach.OpSyscall:
		return fmt.Sprintf("%s @%s(%s)", s, o.Sym, o.A)
	case ir.Select:
		return fmt.Sprintf("%s %s, %s, %s", s, o.A, o.B, o.C)
	default:
		out := s
		if o.A.IsImm || o.A.Reg != VNone {
			out += " " + o.A.String()
		}
		if o.B.IsImm || o.B.Reg != VNone {
			out += ", " + o.B.String()
		}
		return out
	}
}

// VBlock is a machine-level basic block.
type VBlock struct {
	ID  int
	Ops []VOp
	// NoCompact marks call/syscall/prologue/epilogue blocks, which are
	// scheduled serially (each op its own instruction) rather than
	// compacted: they manipulate the calling convention's precolored
	// registers, whose ordering the trace machinery must not disturb.
	NoCompact bool
}

// Term returns the terminator, or nil if the block is malformed.
func (b *VBlock) Term() *VOp {
	if len(b.Ops) == 0 {
		return nil
	}
	t := &b.Ops[len(b.Ops)-1]
	if !t.IsTerm() {
		return nil
	}
	return t
}

// Succs returns successor vblock IDs.
func (b *VBlock) Succs() []int {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Kind {
	case mach.OpJmp:
		return []int{t.T0}
	case mach.OpBrT:
		return []int{t.T0, t.T1}
	}
	return nil // JmpR, Halt
}

// VFunc is a machine-level function before scheduling.
type VFunc struct {
	Name   string
	Blocks []*VBlock
	Frame  int64
	Leaf   bool

	classes  []Class
	types    []ir.Type
	precolor map[VReg]mach.PReg

	// Convention registers (precolored).
	SP, LR, RVI, RVF VReg
	ArgI, ArgF       []VReg
}

// NewReg allocates a fresh virtual register.
func (f *VFunc) NewReg(c Class, t ir.Type) VReg {
	f.classes = append(f.classes, c)
	f.types = append(f.types, t)
	return VReg(len(f.classes) - 1)
}

// Class returns r's bank class.
func (f *VFunc) Class(r VReg) Class {
	if r <= 0 || int(r) >= len(f.classes) {
		return ClassNone
	}
	return f.classes[r]
}

// TypeOf returns r's value type.
func (f *VFunc) TypeOf(r VReg) ir.Type {
	if r <= 0 || int(r) >= len(f.types) {
		return ir.Void
	}
	return f.types[r]
}

// NumRegs returns one past the highest virtual register.
func (f *VFunc) NumRegs() int { return len(f.classes) }

// Precolor returns the fixed physical register for r, if any.
func (f *VFunc) Precolor(r VReg) (mach.PReg, bool) {
	p, ok := f.precolor[r]
	return p, ok
}

// AddBlock appends an empty block.
func (f *VFunc) AddBlock() *VBlock {
	b := &VBlock{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Preds computes predecessor lists.
func (f *VFunc) Preds() [][]int {
	p := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			p[s] = append(p[s], b.ID)
		}
	}
	return p
}

func (f *VFunc) String() string {
	s := fmt.Sprintf("vfunc %s (frame %d, leaf %v)\n", f.Name, f.Frame, f.Leaf)
	for _, b := range f.Blocks {
		s += fmt.Sprintf("b%d:", b.ID)
		if b.NoCompact {
			s += " (nocompact)"
		}
		s += "\n"
		for i := range b.Ops {
			s += "\t" + b.Ops[i].String() + "\n"
		}
	}
	return s
}
