package tsched

import (
	"fmt"
	"sort"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// Allocate maps every virtual register of the scheduled function onto a
// physical register in its home bank, by graph coloring over
// instruction-level liveness. The calling convention's registers are
// reserved out of the pools, so precolored virtuals never collide with
// allocated ones. An ErrPressure return means a bank ran out of registers;
// the driver retries with gentler optimization settings.
func Allocate(sf *SFunc, cfg mach.Config) (map[VReg]mach.PReg, error) {
	lv := computeSchedLiveness(sf)
	live := lv.After

	// interference graph, per (class, board)
	type node struct {
		neighbors map[VReg]bool
	}
	nodes := map[VReg]*node{}
	getNode := func(r VReg) *node {
		n := nodes[r]
		if n == nil {
			n = &node{neighbors: map[VReg]bool{}}
			nodes[r] = n
		}
		return n
	}
	vf := sf.VF
	sameBank := func(a, b VReg) bool {
		return vf.Class(a) == vf.Class(b) && sf.Home[a] == sf.Home[b]
	}
	addEdge := func(a, b VReg) {
		if a == b || !sameBank(a, b) {
			return
		}
		getNode(a).neighbors[b] = true
		getNode(b).neighbors[a] = true
	}

	var order []VReg
	seen := map[VReg]bool{}
	touch := func(r VReg) {
		if r != VNone && !seen[r] {
			seen[r] = true
			order = append(order, r)
			getNode(r)
		}
	}

	addSet := func(d VReg, set ir.RegSet) {
		for w := 0; w < len(set); w++ {
			bits := set[w]
			for ; bits != 0; bits &= bits - 1 {
				r := VReg(w*64 + trailingZeros(bits))
				addEdge(d, r)
			}
		}
	}
	// conflictWindow makes def d interfere with everything live at or
	// defined/read in instructions [off, off+rem] of block b — the window
	// during which d's pipeline write is still in flight. The §6.2 rule:
	// "the target register of any pipelined operation is in use from the
	// beat in which the operation is initiated until the beat in which it
	// is defined to be written" — and control may branch meanwhile, so the
	// walk follows branch targets with the remaining flight time.
	type wkey struct{ block, off, rem int }
	var conflictWindow func(d VReg, b *SBlock, off, rem int, seen map[wkey]bool)
	conflictWindow = func(d VReg, b *SBlock, off, rem int, seen map[wkey]bool) {
		k := wkey{b.ID, off, rem}
		if seen[k] || rem < 0 {
			return
		}
		seen[k] = true
		if off < len(lv.Before[b.ID]) {
			addSet(d, lv.Before[b.ID][off])
		}
		for i := off; i <= off+rem && i < len(b.Instrs); i++ {
			for si := range b.Instrs[i].Slots {
				s := &b.Instrs[i].Slots[si]
				if s.Op.Dst != VNone {
					addEdge(d, s.Op.Dst)
				}
				for _, u := range s.Op.Uses() {
					addEdge(d, u)
				}
				switch s.Op.Kind {
				case mach.OpJmp, mach.OpBrT:
					tb := sf.Blocks[s.TargetBlock]
					conflictWindow(d, tb, s.TargetOff, off+rem-i-1, seen)
				}
			}
		}
	}

	for _, b := range sf.Blocks {
		ls := live[b.ID]
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			cur := ls[i]
			for si := range in.Slots {
				op := &in.Slots[si].Op
				touch(op.Dst)
				for _, u := range op.Uses() {
					touch(u)
				}
				if op.Dst == VNone {
					continue
				}
				// def interferes with everything live after this instr,
				// and with other defs in the same instruction
				addSet(op.Dst, cur)
				for sj := range in.Slots {
					if sj != si && in.Slots[sj].Op.Dst != VNone {
						addEdge(op.Dst, in.Slots[sj].Op.Dst)
					}
					// A write can land mid-instruction (e.g. a 1-beat op
					// issued in the early beat writes before the late
					// beat's reads), so a def also interferes with every
					// register read anywhere in the same instruction.
					for _, u := range in.Slots[sj].Op.Uses() {
						addEdge(op.Dst, u)
					}
				}
				// In-flight extension: the write lands flight instructions
				// later; everything executed until then — along any path
				// control takes — must not share the register.
				flight := (vopLatencyOfSlot(cfg, &in.Slots[si]) + 1 + int(in.Slots[si].Beat)) / 2
				if flight > 0 {
					conflictWindow(op.Dst, b, i, flight, map[wkey]bool{})
				}
			}
		}
	}

	// pools
	reservedI0 := map[uint8]bool{
		mach.RegSP.Idx: true, mach.RegLR.Idx: true, mach.RegRVI.Idx: true,
	}
	for i := 0; i < mach.MaxArgs; i++ {
		reservedI0[uint8(mach.ArgIBase+i)] = true
	}
	reservedF0 := map[uint8]bool{mach.RegRVF.Idx: true}
	for i := 0; i < mach.MaxArgs; i++ {
		reservedF0[uint8(mach.ArgFBase+i)] = true
	}
	pool := func(r VReg) []uint8 {
		var n int
		var excl map[uint8]bool
		board := sf.Home[r]
		switch vf.Class(r) {
		case ClassI:
			n = cfg.IRegsPerBank
			if board == 0 {
				excl = reservedI0
			}
		case ClassF:
			n = cfg.FRegsPerBank
			if board == 0 {
				excl = reservedF0
			}
		case ClassSF:
			n = cfg.StoreFile
		case ClassB:
			n = cfg.BranchBank
		default:
			return nil
		}
		out := make([]uint8, 0, n)
		for i := 0; i < n; i++ {
			if excl == nil || !excl[uint8(i)] {
				out = append(out, uint8(i))
			}
		}
		return out
	}
	bankOf := func(c Class) mach.Bank {
		switch c {
		case ClassI:
			return mach.BankI
		case ClassF:
			return mach.BankF
		case ClassSF:
			return mach.BankSF
		case ClassB:
			return mach.BankB
		}
		return mach.BankNone
	}

	alloc := map[VReg]mach.PReg{}
	for r, p := range vf.precolor {
		alloc[r] = p
	}
	// color high-degree nodes first for better packing
	sort.SliceStable(order, func(a, b int) bool {
		return len(nodes[order[a]].neighbors) > len(nodes[order[b]].neighbors)
	})
	for _, r := range order {
		if _, done := alloc[r]; done {
			continue
		}
		cls := vf.Class(r)
		if cls == ClassNone {
			continue
		}
		taken := map[uint8]bool{}
		for nb := range nodes[r].neighbors {
			if p, ok := alloc[nb]; ok {
				taken[p.Idx] = true
			}
		}
		var chosen *uint8
		for _, idx := range pool(r) {
			if !taken[idx] {
				i := idx
				chosen = &i
				break
			}
		}
		if chosen == nil {
			return nil, &ErrPressure{Func: sf.Name, Class: cls, Board: sf.Home[r]}
		}
		alloc[r] = mach.PReg{Bank: bankOf(cls), Board: sf.Home[r], Idx: *chosen}
	}
	return alloc, nil
}

// ErrPressure reports a register bank that ran out of colors.
type ErrPressure struct {
	Func  string
	Class Class
	Board uint8
}

func (e *ErrPressure) Error() string {
	return fmt.Sprintf("%s: out of %s registers on board %d", e.Func, e.Class, e.Board)
}

// vopLatencyOfSlot returns the slot op's write latency in beats.
func vopLatencyOfSlot(cfg mach.Config, s *SSlot) int {
	return opLatency(cfg, &s.Op)
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// schedLiveness holds instruction-level liveness: After[b][i] = registers
// live following Instrs[i] of block b; Before[b][i] = live entering it
// (Before has len(Instrs)+1 entries).
type schedLiveness struct {
	After  map[int][]ir.RegSet
	Before map[int][]ir.RegSet
}

// computeSchedLiveness computes instruction-level liveness. Branch slots
// make their target instruction's live-in flow into the branch's own
// instruction.
func computeSchedLiveness(sf *SFunc) *schedLiveness {
	nr := sf.VF.NumRegs()
	liveAfter := map[int][]ir.RegSet{}
	liveBefore := map[int][]ir.RegSet{}
	for _, b := range sf.Blocks {
		liveAfter[b.ID] = make([]ir.RegSet, len(b.Instrs))
		liveBefore[b.ID] = make([]ir.RegSet, len(b.Instrs)+1)
		for i := range liveAfter[b.ID] {
			liveAfter[b.ID][i] = ir.NewRegSet(nr)
		}
		for i := range liveBefore[b.ID] {
			liveBefore[b.ID][i] = ir.NewRegSet(nr)
		}
	}
	implicit := implicitUses(sf.VF)

	for changed := true; changed; {
		changed = false
		for _, b := range sf.Blocks {
			la := liveAfter[b.ID]
			lb := liveBefore[b.ID]
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := &b.Instrs[i]
				out := la[i].Clone()
				// fallthrough
				out.UnionWith(lb[i+1])
				// branch targets
				for si := range in.Slots {
					s := &in.Slots[si]
					switch s.Op.Kind {
					case mach.OpJmp, mach.OpBrT:
						tb := liveBefore[s.TargetBlock]
						if s.TargetOff < len(tb) {
							out.UnionWith(tb[s.TargetOff])
						}
					}
				}
				if !setsEqual(out, la[i]) {
					la[i] = out
					changed = true
				}
				// in = (out - defs) ∪ uses ∪ implicit
				cur := out.Clone()
				for si := range in.Slots {
					if d := in.Slots[si].Op.Dst; d != VNone {
						cur.Remove(ir.Reg(d))
					}
				}
				for si := range in.Slots {
					s := &in.Slots[si]
					for _, u := range s.Op.Uses() {
						cur.Add(ir.Reg(u))
					}
					for _, u := range implicit(&s.Op) {
						cur.Add(ir.Reg(u))
					}
				}
				if !setsEqual(cur, lb[i]) {
					lb[i] = cur
					changed = true
				}
			}
		}
	}
	return &schedLiveness{After: liveAfter, Before: liveBefore}
}

// implicitUses returns the convention registers an op consumes beyond its
// explicit operands: returns read the return-value registers and LR, calls
// read the argument registers and SP, syscalls read the first arguments,
// halt reads the integer return register.
func implicitUses(vf *VFunc) func(*VOp) []VReg {
	var argRegs []VReg
	argRegs = append(argRegs, vf.ArgI...)
	argRegs = append(argRegs, vf.ArgF...)
	return func(o *VOp) []VReg {
		switch o.Kind {
		case mach.OpCall:
			return append(append([]VReg{}, argRegs...), vf.SP)
		case mach.OpJmpR:
			return []VReg{vf.RVI, vf.RVF}
		case mach.OpHalt:
			return []VReg{vf.RVI}
		case mach.OpSyscall:
			return []VReg{vf.ArgI[0], vf.ArgF[0]}
		}
		return nil
	}
}

func setsEqual(a, b ir.RegSet) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
