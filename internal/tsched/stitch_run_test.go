package tsched_test

// External package: these tests drive the whole pipeline through core, which
// imports tsched — they verify that the compensation code the stitcher emits
// actually executes correctly when the off-trace paths are taken at runtime.

import (
	"context"
	"testing"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
)

// compensationPrograms take their off-trace edges at runtime: the break
// fires at i=2, the diamond's cold arm runs for negative elements, and the
// three-exit loop leaves through the first break — so restore moves and
// re-executed compensation ops are on the executed path, not just emitted.
var compensationPrograms = map[string]string{
	"split-live-break": `
var p [16]int = {1, 2, 901}
func main() int {
	var s int = 0
	var t int = 1
	for (var i int = 0; i < 16; i = i + 1) {
		s = s + p[i] * 3
		t = t ^ (s + i)
		if (p[i] > 900) { break }
	}
	print_i(t & 255)
	return (s * 5 + t) & 65535
}
`,
	"join-rejoin": `
var q [8]int = {5, -3, 7, 2, -9, 4, 1, 0}
func main() int {
	var acc int = 0
	for (var i int = 0; i < 8; i = i + 1) {
		var v int = q[i]
		if (v < 0) { v = 0 - v * 3 }
		acc = acc + v * (i + 1)
	}
	return acc & 65535
}
`,
	"every-exit-compensated": `
var p [8]int = {10, 20, 30, 40, 50, 60, 70, 80}
func main() int {
	var s int = 0
	var t int = 7
	for (var i int = 0; i < 8; i = i + 1) {
		s = s + p[i]
		t = t * 3 + i
		if (s > 90) { break }
		t = t - p[i] / 2
		if (t > 800) { break }
		s = s ^ (t & 15)
		if ((s + t) > 950) { break }
	}
	print_i(s & 255)
	return (s * 9 + t) & 65535
}
`,
}

// TestCompensationPathsExecuteCorrectly compiles each program at every
// machine width and optimization level and requires the VLIW run to match
// the IR interpreter exactly — with compensation ops present in the build,
// so agreement proves the compensation code itself, not its absence.
func TestCompensationPathsExecuteCorrectly(t *testing.T) {
	for name, src := range compensationPrograms {
		for _, pairs := range []int{1, 2, 4} {
			for _, lvl := range []opt.Options{opt.None(), opt.Default()} {
				res, err := core.Compile(context.Background(), src, core.Options{
					Config: mach.NewConfig(pairs), Opt: lvl, Parallelism: 1,
				})
				if err != nil {
					t.Errorf("%s pairs=%d: %v", name, pairs, err)
					continue
				}
				wantV, wantOut, err := core.Interpret(res)
				if err != nil {
					t.Fatalf("%s: interp: %v", name, err)
				}
				gotV, gotOut, _, err := core.Run(res)
				if err != nil {
					t.Errorf("%s pairs=%d opt=%+v: machine fault: %v", name, pairs, lvl, err)
					continue
				}
				if gotV != wantV || gotOut != wantOut {
					t.Errorf("%s pairs=%d opt=%+v: got exit %d out %q, want %d %q",
						name, pairs, lvl, gotV, gotOut, wantV, wantOut)
				}
			}
		}
		// at full width the build must actually contain compensation code
		res, err := core.Compile(context.Background(), src, core.Options{Config: mach.Trace28(), Opt: opt.None(), Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		comp := 0
		for _, fc := range res.Funcs {
			comp += fc.CompOps
		}
		if comp == 0 {
			t.Errorf("%s: no compensation ops in the build — test exercises nothing", name)
		}
	}
}
