package tsched

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// ErrInternal is a per-function backend crash converted into an error: a
// panic in lowering, trace selection, scheduling, or register allocation
// fails that function's compilation unit with attribution instead of
// tearing down the whole worker pool (and the process) with a stack trace.
type ErrInternal struct {
	Func  string // function whose compilation crashed
	Value any    // recovered panic value
	Stack []byte // debug.Stack() at recovery
}

func (e *ErrInternal) Error() string {
	return fmt.Sprintf("internal scheduler error compiling %s: %v", e.Func, e.Value)
}

// CompileOptions configures a whole-program backend run.
type CompileOptions struct {
	// MaxTraceBlocks caps trace length (0 = unlimited; 1 = basic-block
	// compaction only).
	MaxTraceBlocks int
	// Parallelism bounds the worker pool compiling functions concurrently:
	// 0 means one worker per available CPU, 1 forces sequential
	// compilation, N>1 uses at most N workers. Output is deterministic and
	// identical at every setting: functions are compiled independently and
	// results are ordered by function index, not completion order.
	Parallelism int
}

// CompileParallel lowers and schedules every function of the program for
// the given machine, fanning the per-function backend (lowering, trace
// selection, list scheduling, register-bank allocation, emission) out over
// a bounded worker pool. It modifies prog (call spills); callers pass a
// private copy. Functions whose register demand overflows a bank are
// retried with shorter traces before the error is surfaced.
//
// Function compilations are independent — the only shared inputs are the
// read-only profile and global layout — so the fan-out preserves sequential
// results exactly; linking stays sequential in the caller.
//
// ctx is checked between per-function jobs: once canceled, no new function
// compilation starts (in-flight ones finish — a function either compiles
// completely or not at all) and the ctx error is returned, unless an
// earlier function had already failed on its own, in which case that error
// wins so cancellation never masks a real diagnosis.
func CompileParallel(ctx context.Context, prog *ir.Program, cfg mach.Config, prof ir.Profile, o CompileOptions) ([]*FuncCode, error) {
	layout, _ := ir.LayoutGlobals(prog)
	ladder := retryLadder(o.MaxTraceBlocks)

	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(prog.Funcs) {
		workers = len(prog.Funcs)
	}

	out := make([]*FuncCode, len(prog.Funcs))
	errs := make([]error, len(prog.Funcs))
	if workers <= 1 {
		for i, f := range prog.Funcs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			out[i], errs[i] = compileOne(cfg, prog, f, prof[f.Name], layout, ladder)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						continue // drain without compiling
					}
					f := prog.Funcs[i]
					out[i], errs[i] = compileOne(cfg, prog, f, prof[f.Name], layout, ladder)
				}
			}()
		}
	feed:
		for i := range prog.Funcs {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}

	// Surface the failure of the earliest function so the error is the same
	// one sequential compilation reports, regardless of completion order.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// compileOne runs the whole backend on a single function, descending the
// trace-length retry ladder on register pressure. Panics anywhere in the
// per-function backend are recovered into *ErrInternal so one poisoned
// function cannot kill the worker pool.
func compileOne(cfg mach.Config, prog *ir.Program, f *ir.Func, prof map[[2]int]float64, layout map[string]int64, ladder []int) (fc *FuncCode, err error) {
	defer func() {
		if r := recover(); r != nil {
			fc, err = nil, &ErrInternal{Func: f.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	return compileOneInner(cfg, prog, f, prof, layout, ladder)
}

func compileOneInner(cfg mach.Config, prog *ir.Program, f *ir.Func, prof map[[2]int]float64, layout map[string]int64, ladder []int) (*FuncCode, error) {
	vf, err := LowerFunc(prog, f, f.Name == "main")
	if err != nil {
		return nil, err
	}
	var fc *FuncCode
	for _, maxBlocks := range ladder {
		fc, err = CompileFunc(cfg, vf, prof, layout, maxBlocks)
		if err == nil {
			return fc, nil
		}
		if !isCapacityErr(err) {
			return nil, err
		}
		if os.Getenv("TSCHED_DEBUG") != "" {
			fmt.Fprintf(os.Stderr, "tsched: %s: %v; retrying with traces <= %d blocks\n", f.Name, err, maxBlocks)
		}
	}
	return nil, err
}

// isCapacityErr reports whether err is a structured capacity rejection
// (register pressure or schedule-size blowup) that shorter traces may fix.
func isCapacityErr(err error) bool {
	switch err.(type) {
	case *ErrPressure, *ErrScheduleSize:
		return true
	}
	return false
}

// retryLadder returns the descending trace-length caps tried on register
// pressure: unlimited, then 6, 2, 1 blocks; with an explicit cap, the caps
// at or below it.
func retryLadder(maxTraceBlocks int) []int {
	if maxTraceBlocks <= 0 {
		return []int{0, 6, 2, 1}
	}
	ladder := []int{}
	for _, m := range []int{maxTraceBlocks, 2, 1} {
		if m <= maxTraceBlocks {
			ladder = append(ladder, m)
		}
	}
	return ladder
}
