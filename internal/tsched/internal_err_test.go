package tsched

import (
	"context"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// TestWorkerPanicBecomesErrInternal: a backend crash on one function must
// surface as a function-attributed *ErrInternal from CompileParallel, not a
// process-killing panic escaping a worker goroutine.
func TestWorkerPanicBecomesErrInternal(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		// A function with a nil block is malformed in a way the backend has
		// no check for — exactly the shape of a real compiler bug.
		prog := &ir.Program{Funcs: []*ir.Func{
			{Name: "poisoned", Blocks: []*ir.Block{nil}},
		}}
		_, err := CompileParallel(context.Background(), prog, mach.Trace7(), ir.Profile{},
			CompileOptions{Parallelism: jobs})
		if err == nil {
			t.Fatalf("j=%d: poisoned function compiled without error", jobs)
		}
		ie, ok := err.(*ErrInternal)
		if !ok {
			t.Fatalf("j=%d: want *ErrInternal, got %T: %v", jobs, err, err)
		}
		if ie.Func != "poisoned" {
			t.Errorf("j=%d: ErrInternal.Func = %q, want poisoned", jobs, ie.Func)
		}
		if len(ie.Stack) == 0 {
			t.Errorf("j=%d: ErrInternal carries no stack", jobs)
		}
		if !strings.Contains(err.Error(), "internal scheduler error") {
			t.Errorf("j=%d: diagnostic: %v", jobs, err)
		}
	}
}
