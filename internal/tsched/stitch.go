package tsched

import (
	"fmt"
	"os"
	"sort"

	"github.com/multiflow-repro/trace/internal/alias"
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// SSlot is a scheduled op in a wide instruction, with its resolved branch
// target (filled by the stitcher).
type SSlot struct {
	Unit mach.Unit
	Beat uint8
	Op   VOp
	Prio int // branch priority within the instruction (lower wins)

	// Branch resolution: TargetSym for calls; otherwise TargetBlock/Off
	// name an instruction inside another SBlock.
	TargetBlock int
	TargetOff   int
	TargetSym   string
}

// SInstr is one wide instruction of scheduled code.
type SInstr struct {
	Slots []SSlot
}

// SBlock is a scheduled region: a compacted trace, a serialized NoCompact
// block, or a compensation block. Control may enter at offset 0 or, for
// traces with relocated join entrances, at an interior instruction.
type SBlock struct {
	ID     int
	Instrs []SInstr
}

// SFunc is a fully scheduled function awaiting register allocation.
type SFunc struct {
	Name   string
	VF     *VFunc
	Blocks []*SBlock
	Entry  int // SBlock holding the prologue
	Home   map[VReg]uint8

	// stats for the experiments
	CompOps   int // compensation ops emitted
	CopyOps   int // cross-bank copies inserted
	SpecLoads int // loads converted to the non-trapping opcodes (§7)
}

// entrance locates where control enters a scheduled vblock.
type entrance struct {
	block int // SBlock
	off   int
}

// Assemble schedules every trace of the function and stitches the results —
// with all compensation code — into an SFunc. maxTraceBlocks (0 = no limit)
// caps trace length; the driver lowers it when register pressure overflows.
func Assemble(cfg mach.Config, vf *VFunc, prof map[[2]int]float64, layout map[string]int64, maxTraceBlocks int) (*SFunc, error) {
	lv := vf.ComputeLiveness()
	traces := SelectTraces(vf, prof, maxTraceBlocks)
	home := map[VReg]uint8{}
	// precolored registers are homed by their colors
	for r, p := range vf.precolor {
		home[r] = p.Board
	}

	if os.Getenv("TSCHED_DEBUG") != "" {
		for i, tr := range traces {
			fmt.Fprintf(os.Stderr, "trace %d: %v\n", i, tr.Blocks)
		}
	}
	sf := &SFunc{Name: vf.Name, VF: vf, Home: home}
	globalForms := GlobalForms(vf, layout)
	st := &stitcher{cfg: cfg, vf: vf, sf: sf, lv: lv, layout: layout, globalForms: globalForms,
		entrances: map[int]entrance{}, joinComp: map[int]int{}, pending: map[int][]pendingBranch{},
		serialReady: map[*SBlock]map[VReg]int{}, serialRes: map[*SBlock]*serialState{}}

	for _, tr := range traces {
		if vf.Blocks[tr.Blocks[0]].NoCompact {
			st.addSerialBlock(tr.Blocks[0])
			continue
		}
		if err := st.addTrace(tr); err != nil {
			return nil, err
		}
	}
	if err := st.resolve(); err != nil {
		return nil, err
	}
	// entry = the SBlock holding vblock 0 (the prologue)
	e, ok := st.entrances[0]
	if !ok || e.off != 0 {
		return nil, fmt.Errorf("%s: prologue has no entrance", vf.Name)
	}
	sf.Entry = e.block
	return sf, nil
}

// pendingBranch records a branch slot awaiting target resolution.
type pendingBranch struct {
	block, instr, slot int
}

type stitcher struct {
	cfg    mach.Config
	vf     *VFunc
	sf     *SFunc
	lv     *VLiveness
	layout map[string]int64

	entrances   map[int]entrance // vblock -> where control enters
	joinComp    map[int]int      // vblock -> comp SBlock that must precede entry
	pending     map[int][]pendingBranch
	globalForms map[VReg]alias.Form

	// serialReady tracks, per serialized block, the earliest instruction
	// index at which each register's value is usable (its producer's write
	// has landed). Serial blocks insert empty instructions to respect
	// latencies — the interlock-free hardware will not wait for them.
	serialReady map[*SBlock]map[VReg]int
	// serialRes tracks slot usage for packed serialization.
	serialRes map[*SBlock]*serialState
}

// serialState is the lightweight reservation state for packing several
// independent ops into each instruction of a serialized block (comp blocks
// and the calling convention), honoring the same structural limits the main
// scheduler enforces.
type serialState struct {
	units map[[2]int]map[mach.Unit]bool // (instr, beat) -> units taken
	mem   map[[3]int]bool               // (instr, beat, board) mem ref issued
	imm   map[[3]int]bool               // (instr, beat, pair) shared word used
	reads map[[2]int]int                // (absBeat, board) register reads
	wrs   map[[2]int]int                // (absBeat, board) register writes landing
	bus   map[[2]int]int                // (busKind, absBeat) cross-board copy traffic

	// ordering state: packing must not reorder hazardous pairs
	floor    int          // entry padding boundary: no op before this
	lastRead map[VReg]int // WAR: a def may not land before a later read
	// writeEnd[r] is the first instruction index whose reads are safely
	// after r's last pending write lands (RAW safety net and WAW ordering).
	writeEnd    map[VReg]int
	lastMem     int // memory ops execute in program order
	barrier     int // ops after a branch start strictly after it
	maxUsed     int // branches go after everything placed so far
	maxWriteEnd int // latest landing instr of any write (for implicit uses)
}

// serialDebugNoPack disables comp-block packing (debugging aid).
var serialDebugNoPack = os.Getenv("TSCHED_NOPACK") != ""

func newSerialState(floor int) *serialState {
	return &serialState{
		units:    map[[2]int]map[mach.Unit]bool{},
		mem:      map[[3]int]bool{},
		imm:      map[[3]int]bool{},
		reads:    map[[2]int]int{},
		wrs:      map[[2]int]int{},
		bus:      map[[2]int]int{},
		floor:    floor,
		lastRead: map[VReg]int{},
		writeEnd: map[VReg]int{},
		lastMem:  -1,
		barrier:  0,
		maxUsed:  -1,
	}
}

func (st *stitcher) newBlock() *SBlock {
	b := &SBlock{ID: len(st.sf.Blocks)}
	st.sf.Blocks = append(st.sf.Blocks, b)
	return b
}

// wantTarget registers a branch slot to be pointed at vblock v's entrance
// once every trace is stitched.
func (st *stitcher) wantTarget(v int, pb pendingBranch) {
	st.pending[v] = append(st.pending[v], pb)
}

// resolve points every pending branch at its final location, routing
// through join-compensation blocks where the entrance was relocated.
func (st *stitcher) resolve() error {
	for v, pbs := range st.pending {
		e, ok := st.entrances[v]
		if !ok {
			if os.Getenv("TSCHED_DEBUG") != "" {
				fmt.Fprintf(os.Stderr, "entrances: %v\nvfunc:\n%s\n", st.entrances, st.vf)
			}
			return fmt.Errorf("%s: no entrance for vblock %d", st.vf.Name, v)
		}
		if jc, ok := st.joinComp[v]; ok {
			e = entrance{block: jc, off: 0}
		}
		for _, pb := range pbs {
			slot := &st.sf.Blocks[pb.block].Instrs[pb.instr].Slots[pb.slot]
			slot.TargetBlock = e.block
			slot.TargetOff = e.off
		}
	}
	return nil
}

// addSerialBlock serializes a NoCompact vblock one op per instruction. The
// entry padding lets any predecessor's pipeline writes drain before the
// calling convention executes, so nothing is airborne across a call or
// return boundary (registers cannot be tracked across functions).
func (st *stitcher) addSerialBlock(v int) {
	b := st.vf.Blocks[v]
	sb := st.newBlock()
	st.entrances[v] = entrance{block: sb.ID, off: 0}
	st.pad(sb, st.maxFlight())
	st.serializeInto(sb, b.Ops, -1)
}

// maxFlight returns the longest pipeline flight (in instructions) any op of
// the function can have.
func (st *stitcher) maxFlight() int {
	maxLat := st.cfg.LatIALU
	for _, b := range st.vf.Blocks {
		for i := range b.Ops {
			if l := opLatency(st.cfg, &b.Ops[i]); l > maxLat {
				maxLat = l
			}
		}
	}
	return (maxLat + 2) / 2
}

// serializeInto appends ops one per instruction, inserting cross-bank copy
// moves where an operand is not local to the op's unit. jumpTo, if ≥ 0,
// appends a final jump to that vblock's entrance.
func (st *stitcher) serializeInto(sb *SBlock, ops []VOp, jumpTo int) {
	for i := range ops {
		op := ops[i] // copy
		st.serializeOne(sb, op)
	}
	if jumpTo >= 0 {
		j := VOp{Kind: mach.OpJmp, T0: jumpTo}
		st.serializeOne(sb, j)
	}
}

// pad appends empty instructions so that sb's next instruction index is at
// least idx (used for latency spacing and for in-flight writes from a
// predecessor block).
func (st *stitcher) pad(sb *SBlock, idx int) {
	for len(sb.Instrs) < idx {
		sb.Instrs = append(sb.Instrs, SInstr{})
	}
}

// serializeOne appends a single op (plus any operand-routing moves) to sb.
func (st *stitcher) serializeOne(sb *SBlock, op VOp) {
	vf := st.vf
	home := st.sf.Home
	ready := st.serialReady[sb]
	if ready == nil {
		ready = map[VReg]int{}
		st.serialReady[sb] = ready
	}
	// Choose the executing pair. Destinations in the branch bank, store
	// file, or F bank (other than tagged-bus moves) can only be written
	// locally, so they pin the pair; otherwise SF/BB operand reads pin it;
	// otherwise prefer a board holding an operand.
	pair := -1
	if op.Dst != VNone {
		switch vf.Class(op.Dst) {
		case ClassB, ClassSF:
			if h, ok := home[op.Dst]; ok {
				pair = int(h)
			}
		case ClassF:
			if op.Kind != ir.Mov {
				if h, ok := home[op.Dst]; ok {
					pair = int(h)
				}
			}
		}
	}
	if pair < 0 {
		for _, r := range op.Uses() {
			switch vf.Class(r) {
			case ClassSF, ClassB:
				pair = int(home[r]) // hard
			}
		}
	}
	if pair < 0 {
		for _, r := range op.Uses() {
			if h, ok := home[r]; ok {
				pair = int(h)
				break
			}
		}
	}
	if pair < 0 {
		pair = 0
	}
	// route non-local I/F operands through copies
	args := []*VArg{&op.A, &op.B, &op.C}
	for _, a := range args {
		if a.IsImm || a.Reg == VNone {
			continue
		}
		r := a.Reg
		cls := vf.Class(r)
		if cls != ClassI && cls != ClassF {
			continue
		}
		h, ok := home[r]
		if !ok {
			home[r] = uint8(pair)
			continue
		}
		if int(h) == pair {
			continue
		}
		tmp := vf.NewReg(cls, vf.TypeOf(r))
		home[tmp] = uint8(pair)
		mv := VOp{Kind: ir.Mov, Type: vf.TypeOf(r), Dst: tmp, A: VRegArg(r)}
		idx := st.placeSerial(sb, mv, int(h), ready[r])
		ready[tmp] = idx + (opLatency(st.cfg, &mv)+1)/2
		a.Reg = tmp
		st.sf.CopyOps++
	}
	need := 0
	for _, r := range op.Uses() {
		if ready[r] > need {
			need = ready[r]
		}
	}
	idx := st.placeSerial(sb, op, pair, need)
	if op.Dst != VNone {
		ready[op.Dst] = idx + (opLatency(st.cfg, &op)+1)/2
		if _, ok := home[op.Dst]; !ok {
			if pre, isPre := vf.precolor[op.Dst]; isPre {
				home[op.Dst] = pre.Board
			} else {
				home[op.Dst] = uint8(pair)
			}
		}
	}
}

// placeSerial finds a slot for op from the current ready frontier onward.
func (st *stitcher) placeSerial(sb *SBlock, op VOp, pair, minIdx int) int {
	ss := st.serialRes[sb]
	if ss == nil {
		ss = newSerialState(len(sb.Instrs))
		st.serialRes[sb] = ss
	}
	// ordering constraints
	if minIdx < ss.floor {
		minIdx = ss.floor
	}
	if minIdx < ss.barrier {
		minIdx = ss.barrier
	}
	if op.Dst != VNone {
		// WAR: strictly after the last read (a write can land mid-instr)
		if v, ok := ss.lastRead[op.Dst]; ok && v+1 > minIdx {
			minIdx = v + 1
		}
		// WAW: after the previous write has landed
		if v, ok := ss.writeEnd[op.Dst]; ok && v > minIdx {
			minIdx = v
		}
	}
	for _, u := range op.Uses() {
		// RAW: at or after the producer's landing instruction
		if v, ok := ss.writeEnd[u]; ok && v > minIdx {
			minIdx = v
		}
	}
	isBranch := false
	switch op.Kind {
	case mach.OpJmp, mach.OpBrT:
		// The target may read values computed here as soon as the next
		// instruction, so every pending write must land first (serialized
		// blocks have no DAG to carry the drain constraint).
		isBranch = true
		if ss.maxUsed > minIdx {
			minIdx = ss.maxUsed
		}
		if ss.maxWriteEnd-1 > minIdx {
			minIdx = ss.maxWriteEnd - 1
		}
	case mach.OpCall, mach.OpJmpR, mach.OpHalt, mach.OpSyscall:
		// These consume convention registers implicitly (arguments, return
		// values, the stack pointer), so every pending write must land
		// before they execute.
		isBranch = true
		if ss.maxUsed > minIdx {
			minIdx = ss.maxUsed
		}
		if ss.maxWriteEnd > minIdx {
			minIdx = ss.maxWriteEnd
		}
	}
	if op.IsMem() && ss.lastMem+1 > minIdx {
		minIdx = ss.lastMem + 1
	}
	if serialDebugNoPack && ss.maxUsed+1 > minIdx {
		minIdx = ss.maxUsed + 1
	}
	// candidate units for this op on the pair
	var cands []struct {
		u mach.Unit
		b uint8
	}
	switch unitClass(st.vf, &op) {
	case UBRClass:
		cands = append(cands, struct {
			u mach.Unit
			b uint8
		}{mach.Unit{Kind: mach.UBR, Pair: uint8(pair)}, 0})
	case UFAClass:
		cands = append(cands, struct {
			u mach.Unit
			b uint8
		}{mach.Unit{Kind: mach.UFA, Pair: uint8(pair)}, 0})
	case UFMClass:
		cands = append(cands, struct {
			u mach.Unit
			b uint8
		}{mach.Unit{Kind: mach.UFM, Pair: uint8(pair)}, 0})
	case UFEitherClass:
		cands = append(cands, struct {
			u mach.Unit
			b uint8
		}{mach.Unit{Kind: mach.UFA, Pair: uint8(pair)}, 0}, struct {
			u mach.Unit
			b uint8
		}{mach.Unit{Kind: mach.UFM, Pair: uint8(pair)}, 0})
	default:
		for _, alu := range []uint8{0, 1} {
			for _, beat := range []uint8{0, 1} {
				cands = append(cands, struct {
					u mach.Unit
					b uint8
				}{mach.Unit{Kind: mach.UIALU, Pair: uint8(pair), Idx: alu}, beat})
			}
		}
	}
	isMem := op.IsMem()
	needsImmw := false
	switch op.Kind {
	case mach.OpBrT, mach.OpJmp, mach.OpCall, mach.OpJmpR, mach.OpHalt, mach.OpSyscall, ir.ConstF:
		needsImmw = true
	default:
		for _, a := range []VArg{op.A, op.B, op.C} {
			if a.IsImm && !fitsImm6(a) {
				needsImmw = true
			}
		}
	}
	nReads := 0
	for _, a := range []VArg{op.A, op.B, op.C} {
		if !a.IsImm && a.Reg != VNone {
			nReads++
		}
	}
	for idx := minIdx; ; idx++ {
		for _, c := range cands {
			key := [2]int{idx, int(c.b)}
			if ss.units[key][c.u] {
				continue
			}
			issue := 2*idx + int(c.b)
			if ss.reads[[2]int{issue, pair}]+nReads > st.cfg.RFReadPorts {
				continue
			}
			if op.Dst != VNone {
				wb := issue + opLatency(st.cfg, &op)
				db := pair
				if h, ok := st.sf.Home[op.Dst]; ok {
					db = int(h)
				}
				if ss.wrs[[2]int{wb, db}]+1 > st.cfg.RFWritePorts {
					continue
				}
				// Cross-board results ride the tagged load buses (§6.3) — a
				// machine-global resource the per-board port counts miss:
				// with homes spread over four boards, the write ports admit
				// eight retires per beat but only four bus deliveries.
				if db != pair && !op.IsMem() {
					kind, beats := busILoad, 1
					if st.vf.Class(op.Dst) == ClassF {
						kind, beats = busFLoad, 2
					}
					full := false
					for i := 0; i < beats; i++ {
						if ss.bus[[2]int{kind, wb - i}]+1 > busCap(&st.cfg, kind) {
							full = true
							break
						}
					}
					if full {
						continue
					}
				}
			}
			if isMem && ss.mem[[3]int{idx, int(c.b), pair}] {
				continue
			}
			if needsImmw && ss.imm[[3]int{idx, int(c.b), pair}] {
				continue
			}
			// an F constant needs both halves of the shared word (§6.5.1)
			if op.Kind == ir.ConstF && ss.imm[[3]int{idx, 1, pair}] {
				continue
			}
			// commit
			if ss.units[key] == nil {
				ss.units[key] = map[mach.Unit]bool{}
			}
			ss.units[key][c.u] = true
			if isMem {
				ss.mem[[3]int{idx, int(c.b), pair}] = true
			}
			if needsImmw {
				ss.imm[[3]int{idx, int(c.b), pair}] = true
				if op.Kind == ir.ConstF {
					ss.imm[[3]int{idx, 1, pair}] = true
				}
			}
			st.pad(sb, idx+1)
			slot := SSlot{Unit: c.u, Beat: c.b, Op: op}
			in := &sb.Instrs[idx]
			si := len(in.Slots)
			in.Slots = append(in.Slots, slot)
			switch op.Kind {
			case mach.OpJmp, mach.OpBrT:
				st.wantTarget(op.T0, pendingBranch{sb.ID, idx, si})
			case mach.OpCall:
				in.Slots[si].TargetSym = op.Sym
			}
			// ordering bookkeeping
			ss.reads[[2]int{2*idx + int(c.b), pair}] += nReads
			if op.Dst != VNone {
				wb := 2*idx + int(c.b) + opLatency(st.cfg, &op)
				db := pair
				if h, ok := st.sf.Home[op.Dst]; ok {
					db = int(h)
				}
				ss.wrs[[2]int{wb, db}]++
				if db != pair && !op.IsMem() {
					kind, beats := busILoad, 1
					if st.vf.Class(op.Dst) == ClassF {
						kind, beats = busFLoad, 2
					}
					for i := 0; i < beats; i++ {
						ss.bus[[2]int{kind, wb - i}]++
					}
				}
			}
			if op.Dst != VNone {
				lat := opLatency(st.cfg, &op)
				end := (2*idx + int(c.b) + lat + 1) / 2
				if end <= idx {
					end = idx + 1
				}
				ss.writeEnd[op.Dst] = end
				if end > ss.maxWriteEnd {
					ss.maxWriteEnd = end
				}
			}
			for _, u := range op.Uses() {
				if idx > ss.lastRead[u] {
					ss.lastRead[u] = idx
				}
			}
			if op.IsMem() && idx > ss.lastMem {
				ss.lastMem = idx
			}
			if isBranch {
				ss.barrier = idx + 1
			}
			if idx > ss.maxUsed {
				ss.maxUsed = idx
			}
			return idx
		}
	}
}

// addTrace compacts one trace and emits its SBlock plus compensation blocks.
func (st *stitcher) addTrace(tr Trace) error {
	vf, cfg := st.vf, st.cfg
	g, err := linearize(vf, tr)
	if err != nil {
		return err
	}
	g.rename()
	g.forwardMoves()
	if cfg.Pairs > 1 {
		// Constant folding and add-chain collapsing exist to decouple the
		// unrolled iterations so they can spread across board pairs; on a
		// single pair there is nothing to spread to, and the extra
		// immediate-word traffic only costs.
		g.foldGlobalConsts(st.globalForms)
		g.collapseAddChains()
	}
	g.addFinalRestores(st.lv)
	g.buildDAG(cfg, st.layout, st.globalForms)
	res, err := scheduleTrace(cfg, vf, g, st.sf.Home, st.layout)
	if err != nil {
		return err
	}

	// speculative-load conversion: a load scheduled at or above a split it
	// originally followed becomes the non-trapping opcode (§7)
	var splitIdxs []int
	for i, op := range g.ops {
		if op.isSplit {
			splitIdxs = append(splitIdxs, i)
		}
	}
	for _, p := range res.placed {
		if p.src == nil || p.src.vop.Kind != ir.Load {
			continue
		}
		for _, si := range splitIdxs {
			if si < p.src.origIdx && g.ops[si].instr >= p.src.instr {
				p.src.vop.Kind = ir.LoadSpec
				p.src.vop.Spec = true
				p.src.converted = true
				st.sf.SpecLoads++
				break
			}
		}
	}

	// build the trace SBlock
	sb := st.newBlock()
	sb.Instrs = make([]SInstr, res.numInstr)
	// deterministic slot order within each instruction
	placed := append([]placedOp(nil), res.placed...)
	sort.SliceStable(placed, func(a, b int) bool {
		if placed[a].instr != placed[b].instr {
			return placed[a].instr < placed[b].instr
		}
		return slotLess(placed[a], placed[b])
	})
	slotOf := map[*schedOp]pendingBranch{}
	for _, p := range placed {
		in := &sb.Instrs[p.instr]
		slot := SSlot{Unit: p.unit, Beat: p.beat, Op: p.vop}
		if p.src != nil {
			slot.Op = p.src.vop // includes LoadSpec conversion
		}
		idx := len(in.Slots)
		in.Slots = append(in.Slots, slot)
		if p.src != nil {
			slotOf[p.src] = pendingBranch{sb.ID, p.instr, idx}
		}
	}
	// multiway branch priorities follow original program order (§6.5.2:
	// "the test that was originally first ... must be the highest priority")
	for ii := range sb.Instrs {
		type brSlot struct{ slotIdx, origIdx int }
		var brs []brSlot
		for si := range sb.Instrs[ii].Slots {
			k := sb.Instrs[ii].Slots[si].Op.Kind
			if k == mach.OpBrT || k == mach.OpJmp {
				oi := 1 << 30
				for src, pb := range slotOf {
					if pb.instr == ii && pb.slot == si {
						oi = src.origIdx
					}
				}
				brs = append(brs, brSlot{si, oi})
			}
		}
		sort.Slice(brs, func(a, b int) bool { return brs[a].origIdx < brs[b].origIdx })
		for rank, b := range brs {
			sb.Instrs[ii].Slots[b.slotIdx].Prio = rank
		}
	}
	// entrances for trace blocks; join entrance relocation
	for ti, v := range tr.Blocks {
		if ti == 0 {
			st.entrances[v] = entrance{block: sb.ID, off: 0}
			continue
		}
		pos, isJoin := g.joinPos[v]
		if !isJoin {
			continue // only reachable along the trace
		}
		// E = 1 + max instr of any op before the join
		e := 0
		for i := 0; i < pos; i++ {
			if g.ops[i].instr+1 > e {
				e = g.ops[i].instr + 1
			}
		}
		// copies read at/after E but placed before E must be re-executed on
		// the join path; find them
		var lateCopies []placedOp
		for _, p := range placed {
			if p.src != nil || p.instr >= e {
				continue
			}
			cp := p.vop.Dst
			for _, q := range placed {
				if q.instr >= e && readsReg(&q.vop, cp) {
					lateCopies = append(lateCopies, p)
					break
				}
			}
		}
		st.emitJoinComp(g, sb, v, pos, e, lateCopies)
	}

	// split compensation and branch targets
	for _, si := range splitIdxs {
		sp := g.ops[si]
		target := g.splitTarget[si]
		comp := st.splitCompOps(g, sp, target)
		// locate the split's slot
		pb, ok := slotOf[sp]
		if !ok {
			return fmt.Errorf("%s: split op not found in schedule", vf.Name)
		}
		if len(comp) == 0 {
			st.wantTarget(target, pb)
		} else {
			cb := st.newBlock()
			st.pad(cb, splitDrain(st.cfg, res, sp))
			st.serializeInto(cb, comp, target)
			st.sf.CompOps += len(comp)
			slot := &sb.Instrs[pb.instr].Slots[pb.slot]
			slot.TargetBlock = cb.ID
			slot.TargetOff = 0
			slot.TargetSym = "" // resolved directly
			// mark as resolved by NOT registering a pending target
		}
	}
	// final jump target
	if g.finalIdx >= 0 {
		fj := g.ops[g.finalIdx]
		pb, ok := slotOf[fj]
		if !ok {
			return fmt.Errorf("%s: final jump not in schedule", vf.Name)
		}
		st.wantTarget(fj.vop.T0, pb)
	}
	for _, p := range placed {
		if p.src == nil {
			st.sf.CopyOps++
		}
	}
	return nil
}

// splitDrain returns how many empty instructions the split's compensation
// block needs at entry so that every on-trace write issued at or before the
// branch has drained by the time the comp code reads it.
func splitDrain(cfg mach.Config, res *schedResult, sp *schedOp) int {
	branchDone := 2*sp.instr + 2 // first beat after the branch's instruction
	drain := 0
	for i := range res.placed {
		p := &res.placed[i]
		if p.instr > sp.instr || p.vop.Dst == VNone {
			continue
		}
		w := 2*p.instr + int(p.beat) + opLatency(cfg, &p.vop)
		if d := w - branchDone; d > drain {
			drain = d
		}
	}
	return (drain + 1) / 2
}

// slotLess orders placements within an instruction for determinism.
func slotLess(a, b placedOp) bool {
	if a.unit.Kind != b.unit.Kind {
		return a.unit.Kind < b.unit.Kind
	}
	if a.unit.Pair != b.unit.Pair {
		return a.unit.Pair < b.unit.Pair
	}
	if a.unit.Idx != b.unit.Idx {
		return a.unit.Idx < b.unit.Idx
	}
	return a.beat < b.beat
}

// readsReg reports whether the vop reads r.
func readsReg(o *VOp, r VReg) bool {
	for _, u := range o.Uses() {
		if u == r {
			return true
		}
	}
	return false
}

// splitCompOps collects the compensation code for one split: every op that
// originally preceded the split but was scheduled after its instruction
// (re-executed from its pre-copy form), followed by moves restoring the
// original register names live at the split target (§4: "the compiler
// inserts special compensation code into the program graph on the off-trace
// branch edges to undo these inconsistencies").
func (st *stitcher) splitCompOps(g *traceGraph, sp *schedOp, target int) []VOp {
	var comp []VOp
	for i := 0; i < sp.origIdx; i++ {
		op := g.ops[i]
		if op.instr > sp.instr {
			v := op.vop
			if op.compVop != nil {
				v = *op.compVop
			}
			if op.converted {
				// on the off-trace path the load runs in its original
				// position, so the ordinary trapping opcode is correct
				v.Kind = ir.Load
				v.Spec = false
			}
			comp = append(comp, v)
		}
	}
	snap := g.renameAtSplit[sp.origIdx]
	comp = append(comp, restoreMovs(st.vf, st.lv, snap, target)...)
	return comp
}

// restoreMovs builds "orig ← renamed" moves for registers live into target.
func restoreMovs(vf *VFunc, lv *VLiveness, snap map[VReg]VReg, target int) []VOp {
	var origs []VReg
	for o := range snap {
		origs = append(origs, o)
	}
	sort.Slice(origs, func(a, b int) bool { return origs[a] < origs[b] })
	var movs []VOp
	for _, orig := range origs {
		cur := snap[orig]
		if cur == orig || !lv.In[target].Has(ir.Reg(orig)) {
			continue
		}
		movs = append(movs, VOp{Kind: ir.Mov, Type: vf.TypeOf(orig), Dst: orig, A: VRegArg(cur)})
	}
	return movs
}

// emitJoinComp builds the compensation block for a side entrance at vblock v
// (linear position pos, relocated entrance instruction e): establish-moves
// for renamed registers, re-execution of on-trace ops that moved above the
// entrance, and re-execution of cross-bank copies the post-entrance code
// depends on.
func (st *stitcher) emitJoinComp(g *traceGraph, sb *SBlock, v, pos, e int, lateCopies []placedOp) {
	vf := st.vf
	snap := g.renameAtJoin[pos]
	var comp []VOp
	// establish renamed names from the canonical registers the entering
	// flow provides
	var origs []VReg
	for o := range snap {
		origs = append(origs, o)
	}
	sort.Slice(origs, func(a, b int) bool { return origs[a] < origs[b] })
	for _, orig := range origs {
		cur := snap[orig]
		if cur == orig || !st.lv.In[v].Has(ir.Reg(orig)) {
			continue
		}
		comp = append(comp, VOp{Kind: ir.Mov, Type: vf.TypeOf(cur), Dst: cur, A: VRegArg(orig)})
	}
	// ops from at/after the join that were scheduled above the entrance
	for i := pos; i < len(g.ops); i++ {
		op := g.ops[i]
		if op.instr < e {
			vop := op.vop
			if op.compVop != nil {
				vop = *op.compVop
			}
			if op.converted {
				vop.Kind = ir.Load
				vop.Spec = false
			}
			comp = append(comp, vop)
		}
	}
	// cross-bank copies consumed past the entrance
	for _, p := range lateCopies {
		comp = append(comp, p.vop)
	}

	st.entrances[v] = entrance{block: sb.ID, off: e}
	if len(comp) == 0 {
		return
	}
	cb := st.newBlock()
	// No entry padding: the entering edges' restore moves carry their own
	// drain constraints, so the canonical registers this comp reads are
	// settled by the time control arrives.
	st.serializeCompInto(cb, comp, sb.ID, e)
	st.sf.CompOps += len(comp)
	st.joinComp[v] = cb.ID
}

// serializeCompInto is serializeInto with a direct (block, offset) jump.
func (st *stitcher) serializeCompInto(cb *SBlock, ops []VOp, tblock, toff int) {
	for i := range ops {
		st.serializeOne(cb, ops[i])
	}
	// the jump goes after everything placed AND after every pending write
	// has drained (the trace reads the comp's results immediately on entry)
	idx := len(cb.Instrs)
	if ss := st.serialRes[cb]; ss != nil {
		idx = ss.maxUsed + 1
		if ss.maxWriteEnd-1 > idx {
			idx = ss.maxWriteEnd - 1
		}
	}
	st.pad(cb, idx+1)
	cb.Instrs[idx].Slots = append(cb.Instrs[idx].Slots, SSlot{
		Unit:        mach.Unit{Kind: mach.UBR, Pair: 0},
		Op:          VOp{Kind: mach.OpJmp},
		TargetBlock: tblock,
		TargetOff:   toff,
	})
}
