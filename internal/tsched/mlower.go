package tsched

import (
	"fmt"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// LowerFunc lowers an IR function to machine-level virtual ops: explicit
// calling convention, store-file moves for stores, immediate folding into
// operand legs, branch-bank compares, prologue/epilogue, and caller-save
// spills around calls. The returned VFunc's blocks 1..len(f.Blocks) mirror
// the IR blocks 0..N-1 (block 0 is the prologue), so profile edge weights
// carry over by adding one to each ID.
//
// LowerFunc modifies f (it inserts spill code); the driver compiles from a
// private copy of the program.
func LowerFunc(p *ir.Program, f *ir.Func, isMain bool) (*VFunc, error) {
	insertCallSpills(f)

	lw := &vlower{
		irf:    f,
		isMain: isMain,
		vf: &VFunc{
			Name:     f.Name,
			precolor: map[VReg]mach.PReg{},
		},
	}
	vf := lw.vf
	// vreg 0 = none; mirror IR registers 1..N.
	vf.classes = make([]Class, f.NumRegs())
	vf.types = make([]ir.Type, f.NumRegs())
	for r := 1; r < f.NumRegs(); r++ {
		switch f.RegType(ir.Reg(r)) {
		case ir.I32:
			vf.classes[r] = ClassI
			vf.types[r] = ir.I32
		case ir.F64:
			vf.classes[r] = ClassF
			vf.types[r] = ir.F64
		}
	}
	// Convention registers.
	vf.SP = vf.NewReg(ClassI, ir.I32)
	vf.precolor[vf.SP] = mach.RegSP
	vf.LR = vf.NewReg(ClassI, ir.I32)
	vf.precolor[vf.LR] = mach.RegLR
	vf.RVI = vf.NewReg(ClassI, ir.I32)
	vf.precolor[vf.RVI] = mach.RegRVI
	vf.RVF = vf.NewReg(ClassF, ir.F64)
	vf.precolor[vf.RVF] = mach.RegRVF
	for i := 0; i < mach.MaxArgs; i++ {
		ai := vf.NewReg(ClassI, ir.I32)
		vf.precolor[ai] = mach.PReg{Bank: mach.BankI, Board: 0, Idx: uint8(mach.ArgIBase + i)}
		vf.ArgI = append(vf.ArgI, ai)
		af := vf.NewReg(ClassF, ir.F64)
		vf.precolor[af] = mach.PReg{Bank: mach.BankF, Board: 0, Idx: uint8(mach.ArgFBase + i)}
		vf.ArgF = append(vf.ArgF, af)
	}

	// Leaf = no non-builtin calls.
	vf.Leaf = true
	for _, b := range f.Blocks {
		for i := range b.Ops {
			if b.Ops[i].Kind == ir.Call && !ir.IsBuiltin(b.Ops[i].Sym) {
				vf.Leaf = false
			}
		}
	}
	// Frame: IR frame + 8 bytes for the saved link register if non-leaf.
	vf.Frame = (f.FrameSize + 7) &^ 7
	if !vf.Leaf {
		vf.Frame += 8
	}

	// Block 0: prologue. Blocks 1..N: IR blocks.
	pro := vf.AddBlock()
	pro.NoCompact = true
	for range f.Blocks {
		vf.AddBlock()
	}
	lw.irUses = countIRUses(f)

	// Prologue body.
	if vf.Frame != 0 {
		pro.Ops = append(pro.Ops, VOp{Kind: ir.Add, Type: ir.I32, Dst: vf.SP,
			A: VRegArg(vf.SP), B: VImmArg(int32(-vf.Frame))})
	}
	if !vf.Leaf {
		sf := vf.NewReg(ClassSF, ir.I32)
		pro.Ops = append(pro.Ops,
			VOp{Kind: mach.OpMovSF, Type: ir.I32, Dst: sf, A: VRegArg(vf.LR)},
			VOp{Kind: ir.Store, Type: ir.I32, A: VRegArg(vf.SP), B: VImmArg(int32(vf.Frame - 8)), C: VRegArg(sf)})
	}
	nInt, nFlt := 0, 0
	for _, prm := range f.Params {
		if prm.Type == ir.F64 {
			if nFlt >= mach.MaxArgs {
				return nil, fmt.Errorf("%s: too many float parameters", f.Name)
			}
			pro.Ops = append(pro.Ops, VOp{Kind: ir.Mov, Type: ir.F64,
				Dst: VReg(prm.Reg), A: VRegArg(vf.ArgF[nFlt])})
			nFlt++
		} else {
			if nInt >= mach.MaxArgs {
				return nil, fmt.Errorf("%s: too many int parameters", f.Name)
			}
			pro.Ops = append(pro.Ops, VOp{Kind: ir.Mov, Type: ir.I32,
				Dst: VReg(prm.Reg), A: VRegArg(vf.ArgI[nInt])})
			nInt++
		}
	}
	pro.Ops = append(pro.Ops, VOp{Kind: mach.OpJmp, T0: 1})

	for _, b := range f.Blocks {
		if err := lw.lowerBlock(b); err != nil {
			return nil, err
		}
	}
	sweepDeadVOps(vf)
	return vf, nil
}

// countIRUses counts operand uses of each IR register across the function.
func countIRUses(f *ir.Func) []int {
	uses := make([]int, f.NumRegs())
	for _, b := range f.Blocks {
		for i := range b.Ops {
			for _, a := range b.Ops[i].Args {
				uses[a]++
			}
		}
	}
	return uses
}

type vlower struct {
	irf    *ir.Func
	vf     *VFunc
	isMain bool
	irUses []int

	cur    *VBlock
	consts map[ir.Reg]int64 // block-local known constants
}

func (lw *vlower) emit(op VOp) { lw.cur.Ops = append(lw.cur.Ops, op) }

// irToV maps an IR block ID to its entry vblock ID.
func irToV(id int) int { return id + 1 }

func (lw *vlower) lowerBlock(b *ir.Block) error {
	lw.cur = lw.vf.Blocks[irToV(b.ID)]
	lw.consts = map[ir.Reg]int64{}
	for i := range b.Ops {
		if err := lw.lowerOp(b, i); err != nil {
			return err
		}
	}
	return nil
}

// argOf returns the operand for IR register r, folding a block-local
// constant into an immediate when allowed.
func (lw *vlower) argOf(r ir.Reg, allowImm bool) VArg {
	if allowImm {
		if v, ok := lw.consts[r]; ok {
			return VImmArg(int32(v))
		}
	}
	return VRegArg(VReg(r))
}

var swapCmp = map[ir.OpKind]ir.OpKind{
	ir.CmpEQ: ir.CmpEQ, ir.CmpNE: ir.CmpNE,
	ir.CmpLT: ir.CmpGT, ir.CmpGT: ir.CmpLT,
	ir.CmpLE: ir.CmpGE, ir.CmpGE: ir.CmpLE,
}

func commutative(k ir.OpKind) bool {
	switch k {
	case ir.Add, ir.Mul, ir.And, ir.Or, ir.Xor:
		return true
	}
	return false
}

func (lw *vlower) lowerOp(b *ir.Block, idx int) error {
	o := &b.Ops[idx]
	vf := lw.vf
	switch o.Kind {
	case ir.Nop:
	case ir.ConstI:
		lw.consts[o.Dst] = o.ImmI
		lw.emit(VOp{Kind: ir.ConstI, Type: ir.I32, Dst: VReg(o.Dst), A: VImmArg(int32(o.ImmI)), Line: o.Line})
	case ir.ConstF:
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: ir.ConstF, Type: ir.F64, Dst: VReg(o.Dst), ImmF: o.ImmF, Line: o.Line})
	case ir.GAddr:
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: ir.ConstI, Type: ir.I32, Dst: VReg(o.Dst), A: VSymArg(o.Sym), Line: o.Line})
	case ir.FrAddr:
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: ir.Add, Type: ir.I32, Dst: VReg(o.Dst),
			A: VRegArg(vf.SP), B: VImmArg(int32(o.ImmI)), Line: o.Line})
	case ir.Mov:
		delete(lw.consts, o.Dst)
		if v, ok := lw.consts[o.Args[0]]; ok && o.Type == ir.I32 {
			lw.consts[o.Dst] = v
			lw.emit(VOp{Kind: ir.ConstI, Type: ir.I32, Dst: VReg(o.Dst), A: VImmArg(int32(v)), Line: o.Line})
			break
		}
		lw.emit(VOp{Kind: ir.Mov, Type: o.Type, Dst: VReg(o.Dst), A: VRegArg(VReg(o.Args[0])), Line: o.Line})

	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or, ir.Xor,
		ir.Shl, ir.Shr, ir.Sra,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
		delete(lw.consts, o.Dst)
		kind := o.Kind
		a, bb := o.Args[0], o.Args[1]
		_, aConst := lw.consts[a]
		_, bConst := lw.consts[bb]
		if aConst && !bConst {
			if commutative(kind) {
				a, bb = bb, a
			} else if nk, ok := swapCmp[kind]; ok {
				kind = nk
				a, bb = bb, a
			}
		}
		lw.emit(VOp{Kind: kind, Type: ir.I32, Dst: VReg(o.Dst),
			A: lw.argOf(a, false), B: lw.argOf(bb, true), Line: o.Line})

	case ir.Neg, ir.Not:
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: o.Kind, Type: ir.I32, Dst: VReg(o.Dst),
			A: VRegArg(VReg(o.Args[0])), Line: o.Line})

	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: o.Kind, Type: ir.F64, Dst: VReg(o.Dst),
			A: VRegArg(VReg(o.Args[0])), B: VRegArg(VReg(o.Args[1])), Line: o.Line})
	case ir.FNeg:
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: ir.FNeg, Type: ir.F64, Dst: VReg(o.Dst), A: VRegArg(VReg(o.Args[0])), Line: o.Line})

	case ir.ItoF:
		// The F board cannot read the I bank: move the integer into an
		// F-bank register over a bus, then convert on the F adder (§6.2).
		delete(lw.consts, o.Dst)
		tmp := vf.NewReg(ClassF, ir.I32)
		lw.emit(VOp{Kind: ir.Mov, Type: ir.I32, Dst: tmp, A: VRegArg(VReg(o.Args[0])), Line: o.Line})
		lw.emit(VOp{Kind: ir.ItoF, Type: ir.F64, Dst: VReg(o.Dst), A: VRegArg(tmp), Line: o.Line})
	case ir.FtoI:
		// Executes on an F unit; dest_bank routes the result to the I bank.
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: ir.FtoI, Type: ir.I32, Dst: VReg(o.Dst), A: VRegArg(VReg(o.Args[0])), Line: o.Line})

	case ir.Select:
		// SELECT reads its condition from a branch-bank bit, like a branch
		// (the Figure-3 word has only two source fields; see DESIGN.md).
		delete(lw.consts, o.Dst)
		bb := lw.boolToBB(o.Args[0], o.Line)
		lw.emit(VOp{Kind: ir.Select, Type: o.Type, Dst: VReg(o.Dst),
			A: VRegArg(bb),
			B: lw.argOf(o.Args[1], false),
			C: lw.argOf(o.Args[2], o.Type == ir.I32), Line: o.Line})

	case ir.Load, ir.LoadSpec:
		delete(lw.consts, o.Dst)
		lw.emit(VOp{Kind: o.Kind, Type: o.Type, Dst: VReg(o.Dst), Spec: o.Kind == ir.LoadSpec,
			A: lw.argOf(o.Args[0], false), B: VImmArg(int32(o.ImmI)), Line: o.Line})

	case ir.Store:
		sf := vf.NewReg(ClassSF, o.Type)
		lw.emit(VOp{Kind: mach.OpMovSF, Type: o.Type, Dst: sf, A: VRegArg(VReg(o.Args[1])), Line: o.Line})
		lw.emit(VOp{Kind: ir.Store, Type: o.Type,
			A: VRegArg(VReg(o.Args[0])), B: VImmArg(int32(o.ImmI)), C: VRegArg(sf), Line: o.Line})

	case ir.Call:
		return lw.lowerCall(o)

	case ir.Ret:
		ep := vf.AddBlock()
		ep.NoCompact = true
		lw.emit(VOp{Kind: mach.OpJmp, T0: ep.ID, Line: o.Line})
		save := lw.cur
		lw.cur = ep
		if len(o.Args) == 1 {
			r := VReg(o.Args[0])
			if lw.irf.Ret == ir.F64 {
				lw.emit(VOp{Kind: ir.Mov, Type: ir.F64, Dst: vf.RVF, A: VRegArg(r), Line: o.Line})
			} else {
				lw.emit(VOp{Kind: ir.Mov, Type: ir.I32, Dst: vf.RVI, A: VRegArg(r), Line: o.Line})
			}
		}
		if lw.isMain {
			lw.emit(VOp{Kind: mach.OpHalt, Line: o.Line})
		} else {
			if !vf.Leaf {
				lw.emit(VOp{Kind: ir.Load, Type: ir.I32, Dst: vf.LR,
					A: VRegArg(vf.SP), B: VImmArg(int32(vf.Frame - 8)), Line: o.Line})
			}
			if vf.Frame != 0 {
				lw.emit(VOp{Kind: ir.Add, Type: ir.I32, Dst: vf.SP,
					A: VRegArg(vf.SP), B: VImmArg(int32(vf.Frame)), Line: o.Line})
			}
			lw.emit(VOp{Kind: mach.OpJmpR, A: VRegArg(vf.LR), Line: o.Line})
		}
		lw.cur = save

	case ir.Br:
		lw.emit(VOp{Kind: mach.OpJmp, T0: irToV(o.T0), Line: o.Line})

	case ir.CondBr:
		bb := lw.boolToBB(o.Args[0], o.Line)
		lw.emit(VOp{Kind: mach.OpBrT, A: VRegArg(bb), T0: irToV(o.T0), T1: irToV(o.T1), Line: o.Line})

	default:
		return fmt.Errorf("%s: cannot lower %s", lw.irf.Name, o.Kind)
	}
	return nil
}

// boolToBB gets a boolean condition into a branch-bank register: if it was
// produced by a compare in this vblock whose only use is this consumer, the
// compare is retargeted into the branch bank (the dest_bank field, §6.5.2);
// otherwise a CmpNE #0 into the branch bank is inserted. Used for branches
// and for SELECT conditions.
func (lw *vlower) boolToBB(cond ir.Reg, line int) VReg {
	vcond := VReg(cond)
	if lw.irUses[cond] == 1 {
		for i := len(lw.cur.Ops) - 1; i >= 0; i-- {
			vo := &lw.cur.Ops[i]
			if vo.Dst != vcond {
				continue
			}
			if vo.Kind.IsCompare() {
				bb := lw.vf.NewReg(ClassB, ir.I32)
				vo.Dst = bb
				return bb
			}
			break
		}
	}
	bb := lw.vf.NewReg(ClassB, ir.I32)
	lw.emit(VOp{Kind: ir.CmpNE, Type: ir.I32, Dst: bb, A: VRegArg(vcond), B: VImmArg(0), Line: line})
	return bb
}

// lowerCall splits the current block: [... jmp] -> nocompact call block ->
// continuation, so the trace machinery never compacts across the calling
// convention.
func (lw *vlower) lowerCall(o *ir.Op) error {
	vf := lw.vf
	cb := vf.AddBlock()
	cb.NoCompact = true
	lw.emit(VOp{Kind: mach.OpJmp, T0: cb.ID, Line: o.Line})
	lw.cur = cb
	lw.consts = map[ir.Reg]int64{}

	if ir.IsBuiltin(o.Sym) {
		sig := ir.Builtins[o.Sym]
		for i, a := range o.Args {
			if sig.Params[i] == ir.F64 {
				lw.emit(VOp{Kind: ir.Mov, Type: ir.F64, Dst: vf.ArgF[0], A: VRegArg(VReg(a)), Line: o.Line})
			} else {
				lw.emit(VOp{Kind: ir.Mov, Type: ir.I32, Dst: vf.ArgI[0], A: VRegArg(VReg(a)), Line: o.Line})
			}
		}
		lw.emit(VOp{Kind: mach.OpSyscall, Sym: o.Sym, Line: o.Line})
	} else {
		nInt, nFlt := 0, 0
		for _, a := range o.Args {
			if lw.irf.RegType(a) == ir.F64 {
				if nFlt >= mach.MaxArgs {
					return fmt.Errorf("%s: too many float arguments to %s", lw.irf.Name, o.Sym)
				}
				lw.emit(VOp{Kind: ir.Mov, Type: ir.F64, Dst: vf.ArgF[nFlt], A: VRegArg(VReg(a)), Line: o.Line})
				nFlt++
			} else {
				if nInt >= mach.MaxArgs {
					return fmt.Errorf("%s: too many int arguments to %s", lw.irf.Name, o.Sym)
				}
				lw.emit(VOp{Kind: ir.Mov, Type: ir.I32, Dst: vf.ArgI[nInt], A: VRegArg(VReg(a)), Line: o.Line})
				nInt++
			}
		}
		lw.emit(VOp{Kind: mach.OpCall, Dst: vf.LR, Sym: o.Sym, Line: o.Line})
		if o.Dst != ir.None {
			if lw.irf.RegType(o.Dst) == ir.F64 {
				lw.emit(VOp{Kind: ir.Mov, Type: ir.F64, Dst: VReg(o.Dst), A: VRegArg(vf.RVF), Line: o.Line})
			} else {
				lw.emit(VOp{Kind: ir.Mov, Type: ir.I32, Dst: VReg(o.Dst), A: VRegArg(vf.RVI), Line: o.Line})
			}
		}
	}

	cont := vf.AddBlock()
	lw.emit(VOp{Kind: mach.OpJmp, T0: cont.ID, Line: o.Line})
	lw.cur = cont
	return nil
}

// insertCallSpills implements caller-save: every IR register live across a
// non-builtin call is stored to a dedicated frame slot before the call and
// reloaded after ("block register save and restore associated with procedure
// call", §9). Works at IR level so the disambiguator sees the spill
// addresses as frame references.
func insertCallSpills(f *ir.Func) {
	lv := f.ComputeLiveness()
	type site struct {
		block, idx int
		regs       []ir.Reg
	}
	var sites []site
	for _, b := range f.Blocks {
		live := lv.Out[b.ID].Clone()
		for i := len(b.Ops) - 1; i >= 0; i-- {
			o := &b.Ops[i]
			if o.Dst != ir.None {
				live.Remove(o.Dst)
			}
			if o.Kind == ir.Call && !ir.IsBuiltin(o.Sym) {
				var regs []ir.Reg
				for r := 1; r < f.NumRegs(); r++ {
					if live.Has(ir.Reg(r)) {
						regs = append(regs, ir.Reg(r))
					}
				}
				if len(regs) > 0 {
					sites = append(sites, site{b.ID, i, regs})
				}
			}
			for _, a := range o.Args {
				live.Add(a)
			}
		}
	}
	if len(sites) == 0 {
		return
	}
	// one frame slot per spilled register
	slot := map[ir.Reg]int64{}
	for _, s := range sites {
		for _, r := range s.regs {
			if _, ok := slot[r]; !ok {
				f.FrameSize = (f.FrameSize + 7) &^ 7
				slot[r] = f.FrameSize
				f.FrameSize += 8
			}
		}
	}
	// insert per block, highest index first so indices stay valid
	byBlock := map[int][]site{}
	for _, s := range sites {
		byBlock[s.block] = append(byBlock[s.block], s)
	}
	for bid, ss := range byBlock {
		for i := 0; i < len(ss); i++ {
			for j := i + 1; j < len(ss); j++ {
				if ss[j].idx > ss[i].idx {
					ss[i], ss[j] = ss[j], ss[i]
				}
			}
		}
		b := f.Blocks[bid]
		for _, s := range ss {
			var pre, post []ir.Op
			for _, r := range s.regs {
				t := f.RegType(r)
				a1 := f.NewReg(ir.I32)
				pre = append(pre,
					ir.Op{Kind: ir.FrAddr, Type: ir.I32, Dst: a1, ImmI: slot[r]},
					ir.Op{Kind: ir.Store, Type: t, Args: []ir.Reg{a1, r}})
				a2 := f.NewReg(ir.I32)
				post = append(post,
					ir.Op{Kind: ir.FrAddr, Type: ir.I32, Dst: a2, ImmI: slot[r]},
					ir.Op{Kind: ir.Load, Type: t, Dst: r, Args: []ir.Reg{a2}})
			}
			ops := make([]ir.Op, 0, len(b.Ops)+len(pre)+len(post))
			ops = append(ops, b.Ops[:s.idx]...)
			ops = append(ops, pre...)
			ops = append(ops, b.Ops[s.idx])
			ops = append(ops, post...)
			ops = append(ops, b.Ops[s.idx+1:]...)
			b.Ops = ops
		}
	}
}

// sweepDeadVOps removes pure vops whose destinations are never read.
// Memory, control, call, and precolored-dest ops always stay.
func sweepDeadVOps(vf *VFunc) {
	for {
		uses := make([]int, vf.NumRegs())
		for _, b := range vf.Blocks {
			for i := range b.Ops {
				for _, u := range b.Ops[i].Uses() {
					uses[u]++
				}
			}
		}
		removed := 0
		for _, b := range vf.Blocks {
			var kept []VOp
			for _, o := range b.Ops {
				dead := o.Dst != VNone && uses[o.Dst] == 0 && isPureVOp(o.Kind)
				if _, pre := vf.precolor[o.Dst]; pre {
					dead = false
				}
				if dead {
					removed++
					continue
				}
				kept = append(kept, o)
			}
			b.Ops = kept
		}
		if removed == 0 {
			return
		}
	}
}

func isPureVOp(k ir.OpKind) bool {
	switch k {
	// Div and Rem are excluded: removing a dead divide would also remove
	// its divide-by-zero fault, diverging from the reference interpreter.
	case ir.ConstI, ir.ConstF, ir.Mov, ir.Add, ir.Sub, ir.Mul,
		ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Sra, ir.Neg, ir.Not,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.FAdd, ir.FSub, ir.FMul, ir.FDiv, ir.FNeg,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE,
		ir.ItoF, ir.FtoI, ir.Select, mach.OpMovSF:
		return true
	}
	return false
}
