package tsched

import (
	"context"
	"errors"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/profile"
)

const manyFuncsSrc = `
func f0(n int) int { return n + 1 }
func f1(n int) int { return f0(n) * 2 }
func f2(n int) int { return f1(n) + f0(n) }
func f3(n int) int { return f2(n) - 1 }
func main() int { return f3(5) }
`

// TestCompileParallelCanceled: a canceled context stops the backend before
// it schedules any (more) functions, at every parallelism setting, and the
// error satisfies errors.Is. Function compilations are atomic — a function
// either compiles completely or is never started.
func TestCompileParallelCanceled(t *testing.T) {
	prog, err := lang.Compile(manyFuncsSrc)
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.Static(prog)
	for _, jobs := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := CompileParallel(ctx, prog, mach.Trace28(), prof, CompileOptions{Parallelism: jobs})
		if err == nil {
			t.Fatalf("j=%d: pre-canceled backend returned nil error", jobs)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("j=%d: errors.Is(err, Canceled) = false: %v", jobs, err)
		}
	}
}

// TestCompileParallelRealErrorWinsOverCancel: when a function fails for a
// real reason and the context is canceled afterwards, the real error is
// reported — cancellation must not mask genuine diagnostics.
func TestCompileParallelRealErrorWinsOverCancel(t *testing.T) {
	prog := &ir.Program{Funcs: []*ir.Func{
		{Name: "poisoned", Blocks: []*ir.Block{nil}},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := CompileParallel(ctx, prog, mach.Trace7(), ir.Profile{}, CompileOptions{Parallelism: 1})
	if err == nil {
		t.Fatal("poisoned function compiled without error")
	}
	var ie *ErrInternal
	if !errors.As(err, &ie) {
		t.Fatalf("want *ErrInternal, got %T: %v", err, err)
	}
}
