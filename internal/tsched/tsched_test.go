package tsched

import (
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/profile"
)

func lower(t *testing.T, src, fn string) (*ir.Program, *VFunc) {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	vf, err := LowerFunc(prog, f, fn == "main")
	if err != nil {
		t.Fatal(err)
	}
	return prog, vf
}

const loopSrc = `
var a [64]float
func main() int {
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) { s = s + a[i] }
	return int(s)
}`

func TestLowerShapes(t *testing.T) {
	_, vf := lower(t, loopSrc, "main")
	// block 0 is the prologue and jumps to block 1
	if !vf.Blocks[0].NoCompact {
		t.Error("prologue not NoCompact")
	}
	if tm := vf.Blocks[0].Term(); tm == nil || tm.Kind != mach.OpJmp || tm.T0 != 1 {
		t.Error("prologue does not jump to the first IR block")
	}
	// main ends in OpHalt somewhere
	foundHalt := false
	foundBrT := false
	for _, b := range vf.Blocks {
		for i := range b.Ops {
			switch b.Ops[i].Kind {
			case mach.OpHalt:
				foundHalt = true
			case mach.OpBrT:
				foundBrT = true
				// branch conditions live in the branch bank
				if vf.Class(b.Ops[i].A.Reg) != ClassB {
					t.Error("BrT condition not in branch-bank class")
				}
			}
		}
	}
	if !foundHalt {
		t.Error("main has no halt")
	}
	if !foundBrT {
		t.Error("loop produced no conditional branch")
	}
}

func TestLowerStoreUsesStoreFile(t *testing.T) {
	_, vf := lower(t, `
var g [4]int
func main() int {
	g[1] = 42
	return g[1]
}`, "main")
	var movsf, store bool
	for _, b := range vf.Blocks {
		for i := range b.Ops {
			o := &b.Ops[i]
			if o.Kind == mach.OpMovSF {
				movsf = true
				if vf.Class(o.Dst) != ClassSF {
					t.Error("movsf dest not in store-file class")
				}
			}
			if o.Kind == ir.Store {
				store = true
				if vf.Class(o.C.Reg) != ClassSF {
					t.Error("store data not from the store file")
				}
			}
		}
	}
	if !movsf || !store {
		t.Error("store lowering did not route data through the store file")
	}
}

func TestCallSpillsAroundCalls(t *testing.T) {
	prog, err := lang.Compile(`
func f(x int) int { return x + 1 }
func main() int {
	var keep int = 10
	var r int = f(5)
	return keep + r
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Func("main")
	before := f.FrameSize
	insertCallSpills(f)
	if f.FrameSize <= before {
		t.Errorf("no spill slots allocated: frame %d -> %d", before, f.FrameSize)
	}
	// keep must be stored before the call and reloaded after
	var stores, loads int
	for _, b := range f.Blocks {
		for i := range b.Ops {
			switch b.Ops[i].Kind {
			case ir.Store:
				stores++
			case ir.Load:
				loads++
			}
		}
	}
	if stores == 0 || loads == 0 {
		t.Errorf("spill code missing: %d stores, %d loads", stores, loads)
	}
}

func TestSelectTracesCoversAllBlocks(t *testing.T) {
	prog, vf := lower(t, loopSrc, "main")
	prof := profile.Static(prog)["main"]
	traces := SelectTraces(vf, prof, 0)
	seen := map[int]bool{}
	for _, tr := range traces {
		if len(tr.Blocks) == 0 {
			t.Fatal("empty trace")
		}
		for i, b := range tr.Blocks {
			if seen[b] {
				t.Fatalf("block %d in two traces", b)
			}
			seen[b] = true
			// consecutive trace blocks must be CFG successors
			if i > 0 {
				prev := vf.Blocks[tr.Blocks[i-1]]
				ok := false
				for _, s := range prev.Succs() {
					if s == b {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("trace %v: %d does not flow to %d", tr.Blocks, tr.Blocks[i-1], b)
				}
			}
		}
	}
	for _, b := range vf.Blocks {
		if !seen[b.ID] {
			t.Errorf("block %d not in any trace", b.ID)
		}
	}
}

func TestSelectTracesMaxBlocks(t *testing.T) {
	prog, vf := lower(t, loopSrc, "main")
	prof := profile.Static(prog)["main"]
	for _, tr := range SelectTraces(vf, prof, 2) {
		if len(tr.Blocks) > 2 {
			t.Errorf("trace %v exceeds maxBlocks=2", tr.Blocks)
		}
	}
}

func TestLinearizeInvertsBranch(t *testing.T) {
	// A trace following the TAKEN side of a branch must invert the compare.
	_, vf := lower(t, `
func main() int {
	var s int = 0
	for (var i int = 0; i < 100; i = i + 1) {
		if (i % 2 == 0) { s = s + 1 } else { s = s + 2 }
	}
	return s
}`, "main")
	// build a trace that follows a conditional's T0 edge
	for _, b := range vf.Blocks {
		tm := b.Term()
		if tm == nil || tm.Kind != mach.OpBrT {
			continue
		}
		tr := Trace{Blocks: []int{b.ID, tm.T0}}
		if vf.Blocks[tm.T0].NoCompact {
			continue
		}
		g, err := linearize(vf, tr)
		if err != nil {
			t.Fatalf("linearize: %v", err)
		}
		// find the split: its taken target must now be the OLD fallthrough
		for _, s := range g.ops {
			if s.isSplit && s.vop.T0 == tm.T0 {
				t.Error("branch not inverted: taken edge still follows the trace")
			}
		}
		return
	}
	t.Skip("no suitable branch found")
}

func TestGlobalForms(t *testing.T) {
	_, vf := lower(t, loopSrc, "main")
	layout := map[string]int64{"a": 0x2000}
	forms := GlobalForms(vf, layout)
	// some register must resolve to the global's absolute address
	found := false
	for _, f := range forms {
		if f.IsConst() && f.Const == 0x2000 {
			found = true
		}
	}
	if !found {
		t.Error("global base address not derived")
	}
}

func TestCompileProducesEncodableCode(t *testing.T) {
	for _, pairs := range []int{1, 2, 4} {
		prog, err := lang.Compile(loopSrc)
		if err != nil {
			t.Fatal(err)
		}
		prof := profile.Static(prog)
		codes, err := Compile(prog, mach.NewConfig(pairs), prof)
		if err != nil {
			t.Fatalf("pairs=%d: %v", pairs, err)
		}
		if len(codes) != 1 || len(codes[0].Instrs) == 0 {
			t.Fatalf("pairs=%d: no code", pairs)
		}
	}
}

func TestErrPressureMessage(t *testing.T) {
	e := &ErrPressure{Func: "f", Class: ClassF, Board: 2}
	if !strings.Contains(e.Error(), "F registers on board 2") {
		t.Errorf("message: %s", e.Error())
	}
}

func TestCollapseAddChains(t *testing.T) {
	vf := &VFunc{precolor: map[VReg]mach.PReg{}}
	vf.classes = []Class{ClassNone}
	vf.types = []ir.Type{ir.Void}
	i0 := vf.NewReg(ClassI, ir.I32)
	b := vf.AddBlock()
	mk := func(dst, src VReg, imm int32) VOp {
		return VOp{Kind: ir.Add, Type: ir.I32, Dst: dst, A: VRegArg(src), B: VImmArg(imm)}
	}
	i1 := vf.NewReg(ClassI, ir.I32)
	i1m := vf.NewReg(ClassI, ir.I32)
	i2 := vf.NewReg(ClassI, ir.I32)
	b.Ops = []VOp{
		mk(i1, i0, 1),
		{Kind: ir.Mov, Type: ir.I32, Dst: i1m, A: VRegArg(i1)},
		mk(i2, i1m, 1),
		{Kind: mach.OpJmp, T0: 0},
	}
	g, err := linearize(vf, Trace{Blocks: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	g.collapseAddChains()
	// the second add must now read i0 directly with immediate 2
	var second *VOp
	for _, s := range g.ops {
		if s.vop.Kind == ir.Add && s.vop.B.Imm == 2 {
			second = &s.vop
		}
	}
	if second == nil {
		t.Fatal("chain not collapsed")
	}
	if second.A.Reg != i0 {
		t.Errorf("collapsed add reads t%d, want t%d", second.A.Reg, i0)
	}
}

func TestUnitClassRouting(t *testing.T) {
	vf := &VFunc{precolor: map[VReg]mach.PReg{}}
	vf.classes = []Class{ClassNone}
	vf.types = []ir.Type{ir.Void}
	fr := vf.NewReg(ClassF, ir.F64)
	fi := vf.NewReg(ClassF, ir.I32) // integer staged in an F bank
	iv := vf.NewReg(ClassI, ir.I32)

	cases := []struct {
		op   VOp
		want uclass
	}{
		{VOp{Kind: ir.Add, Type: ir.I32}, UIALUClass},
		{VOp{Kind: ir.FMul, Type: ir.F64}, UFMClass},
		{VOp{Kind: ir.FAdd, Type: ir.F64}, UFAClass},
		{VOp{Kind: ir.ItoF, Type: ir.F64, A: VRegArg(fi)}, UFAClass},
		{VOp{Kind: ir.Mov, Type: ir.F64, A: VRegArg(fr)}, UFEitherClass},
		// an I32-typed value in an F bank still needs an F-side unit
		{VOp{Kind: ir.Mov, Type: ir.I32, A: VRegArg(fi)}, UFEitherClass},
		{VOp{Kind: ir.Mov, Type: ir.I32, A: VRegArg(iv)}, UIALUClass},
		{VOp{Kind: mach.OpBrT}, UBRClass},
	}
	for _, c := range cases {
		op := c.op
		if got := unitClass(vf, &op); got != c.want {
			t.Errorf("unitClass(%s) = %v, want %v", op.String(), got, c.want)
		}
	}
}
