package alias

import (
	"github.com/multiflow-repro/trace/internal/ir"
)

// Builder derives linear address forms while walking a straight-line op
// sequence (a trace) in order. Registers defined in the sequence by affine
// ops get symbolic derivations; anything else becomes a fresh opaque
// variable. Because the walk is in execution order, redefinitions version
// correctly: after i = i + 1, references through i differ from earlier ones
// by exactly the constant — the diophantine machinery then resolves unrolled
// loop references (§6.4.2: "the disambiguator builds derivation trees for
// array index expressions and attempts to solve the diophantine equations in
// terms of the loop induction variables").
type Builder struct {
	globals map[string]int64 // global name -> absolute address (linker layout)
	forms   map[ir.Reg]Form
	gvars   map[string]int
	nextVar int
	frame   int // symbolic variable for the frame pointer
}

// NewBuilder returns a Builder. globals maps global names to their absolute
// addresses from ir.LayoutGlobals (known because the compiler and linker
// cooperate); pass nil to treat global bases as symbolic.
func NewBuilder(globals map[string]int64) *Builder {
	b := &Builder{globals: globals, forms: map[ir.Reg]Form{}}
	b.frame = b.fresh()
	return b
}

func (b *Builder) fresh() int {
	b.nextVar++
	return b.nextVar
}

// FormOf returns the current linear form of a register (creating an opaque
// variable for registers never seen before, e.g. trace live-ins).
func (b *Builder) FormOf(r ir.Reg) Form {
	if f, ok := b.forms[r]; ok {
		return f
	}
	f := VarForm(b.fresh())
	b.forms[r] = f
	return f
}

// RefOf returns the disambiguation Ref for a memory op (Load, LoadSpec, or
// Store) at the Builder's current position. Call it before Note(op).
func (b *Builder) RefOf(op *ir.Op) Ref {
	base := b.FormOf(op.Args[0])
	return Ref{Addr: base.Add(ConstForm(op.ImmI)), Size: op.Type.Size()}
}

// Note updates derivations for one op, in execution order.
func (b *Builder) Note(op *ir.Op) {
	if op.Dst == ir.None {
		return
	}
	switch op.Kind {
	case ir.ConstI:
		b.forms[op.Dst] = ConstForm(op.ImmI)
	case ir.Mov:
		if op.Type == ir.I32 {
			b.forms[op.Dst] = b.FormOf(op.Args[0])
		} else {
			b.opaque(op.Dst)
		}
	case ir.Add:
		b.forms[op.Dst] = b.FormOf(op.Args[0]).Add(b.FormOf(op.Args[1]))
	case ir.Sub:
		b.forms[op.Dst] = b.FormOf(op.Args[0]).Sub(b.FormOf(op.Args[1]))
	case ir.Mul:
		x, y := b.FormOf(op.Args[0]), b.FormOf(op.Args[1])
		switch {
		case x.IsConst():
			b.forms[op.Dst] = y.Scale(x.Const)
		case y.IsConst():
			b.forms[op.Dst] = x.Scale(y.Const)
		default:
			b.opaque(op.Dst)
		}
	case ir.Shl:
		x, y := b.FormOf(op.Args[0]), b.FormOf(op.Args[1])
		if y.IsConst() && y.Const >= 0 && y.Const < 31 {
			b.forms[op.Dst] = x.Scale(1 << uint(y.Const))
		} else {
			b.opaque(op.Dst)
		}
	case ir.Neg:
		b.forms[op.Dst] = b.FormOf(op.Args[0]).Scale(-1)
	case ir.GAddr:
		if addr, ok := b.globals[op.Sym]; ok {
			b.forms[op.Dst] = ConstForm(addr)
		} else {
			// symbolic but stable: same global always maps to same variable
			b.forms[op.Dst] = VarForm(b.globalVar(op.Sym))
		}
	case ir.FrAddr:
		b.forms[op.Dst] = VarForm(b.frame).Add(ConstForm(op.ImmI))
	default:
		b.opaque(op.Dst)
	}
}

func (b *Builder) opaque(r ir.Reg) { b.forms[r] = VarForm(b.fresh()) }

func (b *Builder) globalVar(sym string) int {
	// deterministic per-builder variable for an unlocated global
	if b.gvars == nil {
		b.gvars = map[string]int{}
	}
	if v, ok := b.gvars[sym]; ok {
		return v
	}
	v := b.fresh()
	b.gvars[sym] = v
	return v
}
