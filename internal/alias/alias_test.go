package alias

import (
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
)

func TestFormArithmetic(t *testing.T) {
	a := VarForm(1).Scale(4).Add(ConstForm(8)) // 4v1 + 8
	b := VarForm(1).Scale(4)                   // 4v1
	d := a.Sub(b)
	if !d.IsConst() || d.Const != 8 {
		t.Errorf("diff = %s, want 8", d)
	}
	z := a.Sub(a)
	if !z.IsConst() || z.Const != 0 || len(z.Terms) != 0 {
		t.Errorf("a-a = %s", z)
	}
	if s := a.String(); s != "4*v1 + 8" {
		t.Errorf("String = %q", s)
	}
	if f := a.Scale(0); !f.IsConst() || f.Const != 0 {
		t.Errorf("scale by 0 = %s", f)
	}
}

func TestMayAliasConstants(t *testing.T) {
	base := VarForm(7)
	cases := []struct {
		offA, offB int64
		szA, szB   int64
		want       Answer
	}{
		{0, 0, 4, 4, Yes},  // identical
		{0, 4, 4, 4, No},   // adjacent i32
		{0, 8, 8, 8, No},   // adjacent f64
		{0, 4, 8, 8, Yes},  // f64 at 0 overlaps f64 at 4
		{4, 0, 8, 8, Yes},  // symmetric overlap
		{0, 100, 4, 4, No}, // far apart
		{96, 100, 8, 4, Yes} /* 8-byte at 96 covers 100 */}
	for _, c := range cases {
		a := Ref{Addr: base.Add(ConstForm(c.offA)), Size: c.szA}
		b := Ref{Addr: base.Add(ConstForm(c.offB)), Size: c.szB}
		if got := MayAlias(a, b); got != c.want {
			t.Errorf("MayAlias(+%d/%d, +%d/%d) = %s, want %s",
				c.offA, c.szA, c.offB, c.szB, got, c.want)
		}
	}
}

func TestMayAliasGCD(t *testing.T) {
	// a[2i] vs a[2i+1] (i32): addresses 8i vs 8i+4 — GCD says never equal
	i := VarForm(3)
	a := Ref{Addr: i.Scale(8), Size: 4}
	b := Ref{Addr: i.Scale(8).Add(ConstForm(4)), Size: 4}
	if got := MayAlias(a, b); got != No {
		t.Errorf("even/odd i32 elements: %s, want no", got)
	}
	// a[2i] vs a[2j]: different variables, can collide
	j := VarForm(4)
	c := Ref{Addr: j.Scale(8), Size: 4}
	if got := MayAlias(a, c); got != Maybe {
		t.Errorf("independent even elements: %s, want maybe", got)
	}
	// f64 a[2i] vs a[2i+1]: 16i vs 16i+8 — disjoint
	af := Ref{Addr: i.Scale(16), Size: 8}
	bf := Ref{Addr: i.Scale(16).Add(ConstForm(8)), Size: 8}
	if got := MayAlias(af, bf); got != No {
		t.Errorf("even/odd f64: %s, want no", got)
	}
}

func TestUnknownBasesCancel(t *testing.T) {
	// Two references off the same unknown base (array parameter): x[i] vs
	// x[i+1] — relative disambiguation resolves them with no knowledge of
	// the base (§6.4.4).
	base := VarForm(9)
	i := VarForm(10)
	a := Ref{Addr: base.Add(i.Scale(8)), Size: 8}
	b := Ref{Addr: base.Add(i.Scale(8)).Add(ConstForm(8)), Size: 8}
	if got := MayAlias(a, b); got != No {
		t.Errorf("x[i] vs x[i+1]: %s, want no", got)
	}
	// Different unknown bases: maybe.
	base2 := VarForm(11)
	c := Ref{Addr: base2.Add(i.Scale(8)), Size: 8}
	if got := MayAlias(a, c); got != Maybe {
		t.Errorf("x[i] vs y[i]: %s, want maybe", got)
	}
}

func TestSameBank(t *testing.T) {
	const mod = 8 * 8 // 8-byte granules × 8 banks = 64-byte modulus
	base := VarForm(1)
	mk := func(off int64) Ref { return Ref{Addr: base.Add(ConstForm(off)), Size: 8} }

	if got := SameBank(mk(0), mk(8), mod); got != No {
		t.Errorf("adjacent words: %s, want no", got)
	}
	if got := SameBank(mk(0), mk(64), mod); got != Yes {
		t.Errorf("stride = modulus: %s, want yes", got)
	}
	if got := SameBank(mk(0), mk(4), mod); got != Maybe {
		// same 8-byte word, definitely same bank — but our conservative
		// answer for non-multiple offsets inside a word is Maybe
		t.Errorf("same word: %s, want maybe", got)
	}
	// variable stride: i*64 is always a bank conflict
	i := VarForm(2)
	a := Ref{Addr: base, Size: 8}
	b := Ref{Addr: base.Add(i.Scale(64)), Size: 8}
	if got := SameBank(a, b, mod); got != Maybe && got != Yes {
		t.Errorf("stride-64 variable: %s, want maybe/yes", got)
	}
	// i*8 (consecutive words, unknown i): could be same bank for some i
	c := Ref{Addr: base.Add(i.Scale(8)), Size: 8}
	if got := SameBank(a, c, mod); got != Maybe {
		t.Errorf("stride-8 variable: %s, want maybe", got)
	}
	// two different unknown bases
	d := Ref{Addr: VarForm(3), Size: 8}
	if got := SameBank(a, d, mod); got != Maybe {
		t.Errorf("unknown bases: %s, want maybe", got)
	}
}

func TestSameController(t *testing.T) {
	// "same controller" is the same congruence test with modulus 8*C
	const mod = 8 * 4 // 4 controllers
	base := VarForm(1)
	a := Ref{Addr: base, Size: 8}
	b := Ref{Addr: base.Add(ConstForm(8)), Size: 8}
	c := Ref{Addr: base.Add(ConstForm(32)), Size: 8}
	if got := SameBank(a, b, mod); got != No {
		t.Errorf("adjacent words same controller: %s, want no", got)
	}
	if got := SameBank(a, c, mod); got != Yes {
		t.Errorf("stride 4 words: %s, want yes", got)
	}
}

func TestSameSlot(t *testing.T) {
	base := VarForm(1)
	a := Ref{Addr: base, Size: 4}
	b := Ref{Addr: base, Size: 4}
	if got := SameSlot(a, b); got != Yes {
		t.Errorf("identical refs: %s, want yes", got)
	}
	c := Ref{Addr: base.Add(ConstForm(16)), Size: 4}
	if got := SameSlot(a, c); got != No {
		t.Errorf("disjoint refs: %s, want no", got)
	}
	d := Ref{Addr: base.Add(VarForm(2).Scale(4)), Size: 4}
	if got := SameSlot(a, d); got != Maybe {
		t.Errorf("variable refs: %s, want maybe", got)
	}
}

// TestBuilderDerivation walks a small op sequence the way the scheduler
// does: an unrolled a[i], a[i+1] pattern where i is live-in.
func TestBuilderDerivation(t *testing.T) {
	f := ir.NewFunc("f", ir.Void)
	i := f.NewReg(ir.I32)   // live-in loop index
	sh := f.NewReg(ir.I32)  // constant 3
	off := f.NewReg(ir.I32) // i << 3
	ea := f.NewReg(ir.I32)  // base + off
	one := f.NewReg(ir.I32)
	v := f.NewReg(ir.F64)

	base := f.NewReg(ir.I32)
	ops := []ir.Op{
		{Kind: ir.GAddr, Dst: base, Sym: "a"},
		{Kind: ir.ConstI, Dst: sh, ImmI: 3},
		{Kind: ir.Shl, Dst: off, Args: []ir.Reg{i, sh}},
		{Kind: ir.Add, Dst: ea, Args: []ir.Reg{base, off}},
		{Kind: ir.Load, Type: ir.F64, Dst: v, Args: []ir.Reg{ea}},
		{Kind: ir.ConstI, Dst: one, ImmI: 1},
		{Kind: ir.Add, Dst: i, Args: []ir.Reg{i, one}}, // i = i + 1
		{Kind: ir.Shl, Dst: off, Args: []ir.Reg{i, sh}},
		{Kind: ir.Add, Dst: ea, Args: []ir.Reg{base, off}},
		{Kind: ir.Load, Type: ir.F64, Dst: v, Args: []ir.Reg{ea}},
	}

	layout := map[string]int64{"a": 0x2000}
	b := NewBuilder(layout)
	var refs []Ref
	for k := range ops {
		op := &ops[k]
		if op.Kind == ir.Load {
			refs = append(refs, b.RefOf(op))
		}
		b.Note(op)
	}
	if len(refs) != 2 {
		t.Fatalf("collected %d refs", len(refs))
	}
	d := refs[1].Addr.Sub(refs[0].Addr)
	if !d.IsConst() || d.Const != 8 {
		t.Fatalf("a[i+1]-a[i] = %s, want 8", d)
	}
	if got := MayAlias(refs[0], refs[1]); got != No {
		t.Errorf("unrolled refs alias = %s, want no", got)
	}
	// known global base: bank is decidable for 8-bank machine (mod 64):
	if got := SameBank(refs[0], refs[1], 64); got != No {
		t.Errorf("bank conflict = %s, want no", got)
	}
}

func TestBuilderOpaque(t *testing.T) {
	f := ir.NewFunc("f", ir.Void)
	x := f.NewReg(ir.I32)
	y := f.NewReg(ir.I32)
	b := NewBuilder(nil)
	mul := ir.Op{Kind: ir.Mul, Dst: y, Args: []ir.Reg{x, x}} // nonlinear
	b.Note(&mul)
	ld1 := ir.Op{Kind: ir.Load, Type: ir.I32, Args: []ir.Reg{y}}
	r1 := b.RefOf(&ld1)
	r2 := b.RefOf(&ld1)
	// same opaque value: still comparable with itself
	if got := MayAlias(r1, r2); got != Yes {
		t.Errorf("same opaque ref twice = %s, want yes", got)
	}
	// unlocated globals: same name comparable, different names not
	g1 := ir.Op{Kind: ir.GAddr, Dst: x, Sym: "g1"}
	b.Note(&g1)
	l1 := ir.Op{Kind: ir.Load, Type: ir.I32, Args: []ir.Reg{x}, ImmI: 0}
	ra := b.RefOf(&l1)
	l2 := ir.Op{Kind: ir.Load, Type: ir.I32, Args: []ir.Reg{x}, ImmI: 8}
	rb := b.RefOf(&l2)
	if got := MayAlias(ra, rb); got != No {
		t.Errorf("g1[0] vs g1[2] = %s, want no", got)
	}
}

func TestAnswerString(t *testing.T) {
	if No.String() != "no" || Maybe.String() != "maybe" || Yes.String() != "yes" {
		t.Error("answer strings wrong")
	}
}
