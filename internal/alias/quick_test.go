package alias

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randForm builds a small random linear form over a few variables.
func randForm(rng *rand.Rand) Form {
	f := ConstForm(int64(rng.Intn(4096) - 2048))
	for v := 1; v <= 3; v++ {
		if rng.Intn(2) == 0 {
			f = f.Add(VarForm(v).Scale(int64(rng.Intn(64) - 32)))
		}
	}
	return f
}

// TestMayAliasProperties: symmetry, reflexivity, and soundness against a
// brute-force evaluation over small variable assignments.
func TestMayAliasProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sizes := []int64{4, 8}
	for trial := 0; trial < 3000; trial++ {
		a := Ref{Addr: randForm(rng), Size: sizes[rng.Intn(2)]}
		b := Ref{Addr: randForm(rng), Size: sizes[rng.Intn(2)]}
		ab := MayAlias(a, b)
		ba := MayAlias(b, a)
		// symmetry
		if (ab == No) != (ba == No) {
			t.Fatalf("asymmetric: %v vs %v for %s / %s", ab, ba, a.Addr, b.Addr)
		}
		// reflexivity: a ref always aliases itself
		if MayAlias(a, a) == No {
			t.Fatalf("ref does not alias itself: %s", a.Addr)
		}
		// soundness: if a "No", then no assignment of the variables in a
		// small range produces overlap
		if ab == No {
			eval := func(f Form, v1, v2, v3 int64) int64 {
				r := f.Const
				r += f.Terms[1] * v1
				r += f.Terms[2] * v2
				r += f.Terms[3] * v3
				return r
			}
			for probe := 0; probe < 60; probe++ {
				v1 := int64(rng.Intn(41) - 20)
				v2 := int64(rng.Intn(41) - 20)
				v3 := int64(rng.Intn(41) - 20)
				x := eval(a.Addr, v1, v2, v3)
				y := eval(b.Addr, v1, v2, v3)
				if x < y+b.Size && y < x+a.Size {
					t.Fatalf("unsound No: %s=%d / %s=%d overlap (v=%d,%d,%d)",
						a.Addr, x, b.Addr, y, v1, v2, v3)
				}
			}
		}
	}
}

// TestSameBankSoundness: a "No" must mean no assignment lands the two
// references in the same bank-congruence granule.
func TestSameBankSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const mod = 64
	for trial := 0; trial < 3000; trial++ {
		a := Ref{Addr: randForm(rng), Size: 8}
		b := Ref{Addr: randForm(rng), Size: 8}
		if SameBank(a, b, mod) != No {
			continue
		}
		eval := func(f Form, v1, v2, v3 int64) int64 {
			return f.Const + f.Terms[1]*v1 + f.Terms[2]*v2 + f.Terms[3]*v3
		}
		for probe := 0; probe < 60; probe++ {
			v1 := int64(rng.Intn(41) - 20)
			v2 := int64(rng.Intn(41) - 20)
			v3 := int64(rng.Intn(41) - 20)
			d := eval(a.Addr, v1, v2, v3) - eval(b.Addr, v1, v2, v3)
			m := ((d % mod) + mod) % mod
			if m == 0 {
				t.Fatalf("unsound bank No: %s vs %s, diff %d ≡ 0 mod %d",
					a.Addr, b.Addr, d, mod)
			}
		}
	}
}

// TestFormAlgebraQuick: Add/Sub/Scale behave like affine arithmetic under
// evaluation.
func TestFormAlgebraQuick(t *testing.T) {
	f := func(c1, c2 int16, k1, k2 int8, v int16) bool {
		a := ConstForm(int64(c1)).Add(VarForm(1).Scale(int64(k1)))
		b := ConstForm(int64(c2)).Add(VarForm(1).Scale(int64(k2)))
		eval := func(f Form, x int64) int64 { return f.Const + f.Terms[1]*x }
		x := int64(v)
		if eval(a.Add(b), x) != eval(a, x)+eval(b, x) {
			return false
		}
		if eval(a.Sub(b), x) != eval(a, x)-eval(b, x) {
			return false
		}
		return eval(a.Scale(3), x) == 3*eval(a, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
