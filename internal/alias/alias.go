// Package alias is the memory disambiguator (§6.4.2): it builds derivation
// trees for address expressions as linear forms over symbolic values, and
// answers, for two memory references, "can these be to the same location?"
// and the paper's novel *relative* query "can these be equal modulo N memory
// banks?" (§6.4.4) with No, Maybe, or Yes. "No" lets the code generator
// schedule the references simultaneously with no bank-management hardware;
// "Yes" forces separation; "Maybe" leaves the choice to the bank-stall
// gamble (§6.4.4).
package alias

import (
	"fmt"
	"sort"
	"strings"
)

// Answer is the disambiguator's verdict.
type Answer int

const (
	// No: the references can never conflict.
	No Answer = iota
	// Maybe: a conflict cannot be ruled out (e.g. unknown base addresses).
	Maybe
	// Yes: the references always conflict.
	Yes
)

func (a Answer) String() string {
	switch a {
	case No:
		return "no"
	case Maybe:
		return "maybe"
	case Yes:
		return "yes"
	}
	return "?"
}

// Form is a linear address expression: Const + Σ Terms[v]·v over symbolic
// variables v. Symbolic variables stand for run-time values the derivation
// could not see through (loop-carried registers at trace entry, incoming
// array-reference parameters, opaque computations). Two Forms are comparable
// when built by the same Builder, which guarantees variable identity.
type Form struct {
	Const int64
	Terms map[int]int64 // variable id -> coefficient (no zero entries)
}

// ConstForm returns a constant form.
func ConstForm(c int64) Form { return Form{Const: c} }

// VarForm returns the form 1·v + 0.
func VarForm(v int) Form { return Form{Terms: map[int]int64{v: 1}} }

// IsConst reports whether the form has no variable part.
func (f Form) IsConst() bool { return len(f.Terms) == 0 }

func (f Form) clone() Form {
	g := Form{Const: f.Const}
	if len(f.Terms) > 0 {
		g.Terms = make(map[int]int64, len(f.Terms))
		for k, v := range f.Terms {
			g.Terms[k] = v
		}
	}
	return g
}

// Add returns f + g.
func (f Form) Add(g Form) Form {
	out := f.clone()
	out.Const += g.Const
	for v, c := range g.Terms {
		out.addTerm(v, c)
	}
	return out
}

// Sub returns f - g.
func (f Form) Sub(g Form) Form {
	out := f.clone()
	out.Const -= g.Const
	for v, c := range g.Terms {
		out.addTerm(v, -c)
	}
	return out
}

// Scale returns k·f.
func (f Form) Scale(k int64) Form {
	if k == 0 {
		return ConstForm(0)
	}
	out := Form{Const: f.Const * k}
	if len(f.Terms) > 0 {
		out.Terms = make(map[int]int64, len(f.Terms))
		for v, c := range f.Terms {
			out.Terms[v] = c * k
		}
	}
	return out
}

func (f *Form) addTerm(v int, c int64) {
	if c == 0 {
		return
	}
	if f.Terms == nil {
		f.Terms = map[int]int64{}
	}
	f.Terms[v] += c
	if f.Terms[v] == 0 {
		delete(f.Terms, v)
	}
}

func (f Form) String() string {
	var parts []string
	var vs []int
	for v := range f.Terms {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	for _, v := range vs {
		parts = append(parts, fmt.Sprintf("%d*v%d", f.Terms[v], v))
	}
	if f.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", f.Const))
	}
	return strings.Join(parts, " + ")
}

// gcd of the absolute coefficient values; 0 if none.
func (f Form) coeffGCD() int64 {
	var g int64
	for _, c := range f.Terms {
		g = gcd(g, abs64(c))
	}
	return g
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Ref is one memory reference for disambiguation: its address form and
// access size in bytes.
type Ref struct {
	Addr Form
	Size int64
}

// MayAlias answers whether two references can touch overlapping bytes.
func MayAlias(a, b Ref) Answer {
	d := a.Addr.Sub(b.Addr)
	// Overlap iff -a.Size < d < b.Size has a solution.
	lo, hi := -a.Size+1, b.Size-1 // inclusive range for d
	if d.IsConst() {
		if d.Const >= lo && d.Const <= hi {
			if d.Const == 0 && a.Size == b.Size {
				return Yes
			}
			return Yes // definite overlap of at least one byte
		}
		return No
	}
	g := d.coeffGCD()
	// d takes values {d.Const + g·k'} ∪ … — actually a sublattice of
	// d.Const + gcd·Z; the achievable set is a subset, so a hit in the
	// range is only "maybe", while no lattice point in range is a hard no.
	if hasLatticePointInRange(d.Const, g, lo, hi) {
		return Maybe
	}
	return No
}

// hasLatticePointInRange reports whether c + g·k ∈ [lo, hi] for some integer
// k (g > 0).
func hasLatticePointInRange(c, g, lo, hi int64) bool {
	if g == 0 {
		return c >= lo && c <= hi
	}
	// smallest value ≥ lo congruent to c mod g
	r := ((c-lo)%g + g) % g
	first := lo + r
	return first <= hi
}

// SameSlot answers whether the two references are always the exact same
// location (used for store-to-load bypass checks in tests).
func SameSlot(a, b Ref) Answer {
	d := a.Addr.Sub(b.Addr)
	if d.IsConst() {
		if d.Const == 0 && a.Size == b.Size {
			return Yes
		}
		if d.Const == 0 {
			return Maybe
		}
		// distinct start addresses can still overlap
		if MayAlias(a, b) == No {
			return No
		}
		return Maybe
	}
	if MayAlias(a, b) == No {
		return No
	}
	return Maybe
}

// SameBank answers whether the two references hit the same RAM bank, where
// two byte addresses share a bank iff they are congruent modulo modulus
// (modulus = 8 bytes × controllers × banks for the TRACE interleave; pass
// 8 × controllers to ask "same controller" instead). This is the paper's
// relative disambiguation: only the difference matters, so unknown base
// addresses cancel when both references derive from the same base (§6.4.4).
func SameBank(a, b Ref, modulus int64) Answer {
	d := a.Addr.Sub(b.Addr)
	// Same 8-byte granule boundary concern: references within the modulus
	// window conflict if (addrA >> 3) ≡ (addrB >> 3). Work on byte
	// difference: same granule-class iff d ≡ r (mod modulus) with r in
	// (-8, 8) aligned… To stay conservative we test congruence of the byte
	// difference to any value in (-8, 8): |d mod modulus| < 8 counts as a
	// possible same-bank hit.
	if d.IsConst() {
		m := ((d.Const % modulus) + modulus) % modulus
		if m < 8 || modulus-m < 8 {
			// Same congruence granule: definitely same bank when the two
			// addresses land in the same 8-byte word of their granule;
			// conservatively Yes only for exact multiples, else Maybe.
			if m == 0 {
				return Yes
			}
			return Maybe
		}
		return No
	}
	g := gcd(d.coeffGCD(), modulus)
	// d mod modulus ranges over {d.Const + g·k mod modulus}; a same-bank
	// hit needs d ≡ t (mod modulus) for some t with t mod modulus within
	// (-8, 8) of 0.
	c := ((d.Const % g) + g) % g
	if c < 8 || g-c < 8 {
		// some achievable difference is within a word of a multiple of the
		// modulus: cannot rule out a bank conflict
		if g == modulus && c == 0 && d.Const%modulus == 0 {
			// stride is an exact multiple of the modulus: always same bank
			if allMultiples(d, modulus) {
				return Yes
			}
		}
		return Maybe
	}
	return No
}

func allMultiples(d Form, m int64) bool {
	if d.Const%m != 0 {
		return false
	}
	for _, c := range d.Terms {
		if c%m != 0 {
			return false
		}
	}
	return true
}
