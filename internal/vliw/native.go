package vliw

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// This file is the native tier: a per-image translator that compiles the
// decoded plan one step further than plan.go's pre-decoder. Where the safe
// tier still walks planOps and switches on planOp.kind for every executed
// slot, the translator runs once per (image, certificate) and fuses each
// beat's slot list into a sequence of Go closures — one superinstruction
// per beat — with everything static baked in at translation time:
//
//   - operand access is resolved per slot: immediates become captured
//     constants, register reads become direct masked indexing into the
//     context's banks (no Arg re-decode, no readArg branch chain), and the
//     write-pipeline enqueue is fused into the op closure itself;
//   - the per-slot kind switch disappears — each closure IS its operation;
//   - unconditional counters (Ops, FloatOps, MemRefs, Loads, Stores,
//     SpecLoads, Branches, Syscalls) are summed over the whole word at
//     translation time and applied in one shot, with a precomputed rollback
//     on the (cold) fault paths so a mid-beat trap leaves exactly the
//     counters the checked interpreter would have;
//   - the memory-bank geometry (power-of-two controllers and banks in every
//     stock config) is resolved to shifts and masks, for both the prescan
//     and the per-reference bank-busy update;
//   - at sites the SafetyCertificate's bitmask covers, the emitted closure
//     carries no bounds/alignment/divide guard at all; unproven sites keep
//     exactly the safe tier's guard semantics, fault messages included.
//
// Everything dynamic — the write pipeline (Context.pending, so snapshots
// and RunMany interleaving are unchanged), the TLB/bank-stall prescan, the
// icache model, interrupts, DMA — keeps the other tiers' semantics: the
// equivalence bar is exit, output, and every Stats counter bit-identical to
// checked/fast/safe, and the tracefuzz oracle holds the translator to it.
// Post-certification image corruption is contained the same way as the safe
// tier: the Go runtime's own bounds/divide checks backstop the deleted
// guards and the run loops convert the panic into the matching Fault
// (safeTierFault).

// nativeOp is one translated slot operation: the closure returns the trap
// (as an error) a guarded site raises, nil otherwise.
type nativeOp func(m *Machine, c *Context) error

// nativeMem is one memory reference for the TLB/bank-stall prescan, with
// the effective-address computation pre-resolved.
type nativeMem struct {
	ea   func(c *Context) int64
	beat int64 // issue beat within the instruction (0 or 1)
}

// nativeWord is one translated instruction word. Each beat's slot closures
// are folded into a single chained closure (nChain) so the step loop makes
// one call per beat with no dispatch loop; nil means the beat is all Nops.
// bulk is the whole word's unconditional counter delta (both beats),
// applied once at word start; fault closures in beat 0 carry beat 1's
// share in their rollback.
type nativeWord struct {
	beats [2]nativeOp
	bulk  statsBulk
	mem   []nativeMem
}

// nChain folds a beat's closure list into one straight-line closure,
// replacing the step loop's per-slot iteration with direct calls through
// captured pairs.
func nChain(ops []nativeOp) nativeOp {
	switch len(ops) {
	case 0:
		return nil
	case 1:
		return ops[0]
	case 2:
		f0, f1 := ops[0], ops[1]
		return func(m *Machine, c *Context) error {
			if err := f0(m, c); err != nil {
				return err
			}
			return f1(m, c)
		}
	case 3:
		f0, f1, f2 := ops[0], ops[1], ops[2]
		return func(m *Machine, c *Context) error {
			if err := f0(m, c); err != nil {
				return err
			}
			if err := f1(m, c); err != nil {
				return err
			}
			return f2(m, c)
		}
	case 4:
		f0, f1, f2, f3 := ops[0], ops[1], ops[2], ops[3]
		return func(m *Machine, c *Context) error {
			if err := f0(m, c); err != nil {
				return err
			}
			if err := f1(m, c); err != nil {
				return err
			}
			if err := f2(m, c); err != nil {
				return err
			}
			return f3(m, c)
		}
	default:
		half := len(ops) / 2
		a, b := nChain(ops[:half]), nChain(ops[half:])
		return func(m *Machine, c *Context) error {
			if err := a(m, c); err != nil {
				return err
			}
			return b(m, c)
		}
	}
}

// bankGeom is the memory-system geometry resolved to shift/mask form at
// translation time. ok is false for a config whose controller or bank count
// is not a power of two; those fall back to Config.BankOf.
type bankGeom struct {
	ctrlShift uint
	ctrlMask  int64
	bankMask  int64
	busy      int64 // StageBank + BankBusyBeats: the bank-busy window
	ok        bool
}

func geomOf(cfg mach.Config) bankGeom {
	g := bankGeom{busy: mach.StageBank + int64(cfg.BankBusyBeats)}
	ctrl, banks := int64(cfg.Controllers), int64(cfg.BanksPerController)
	if ctrl <= 0 || ctrl&(ctrl-1) != 0 || banks <= 0 || banks&(banks-1) != 0 {
		return g
	}
	g.ctrlMask, g.bankMask, g.ok = ctrl-1, banks-1, true
	for int64(1)<<g.ctrlShift < ctrl {
		g.ctrlShift++
	}
	return g
}

// touch marks ea's RAM bank busy (touchBank with the division strength-
// reduced); callers fall back to m.touchBank when !g.ok.
func (g *bankGeom) touch(c *Context, ea int64) {
	w := ea >> 3
	id := (w&g.ctrlMask)*8 + ((w >> g.ctrlShift) & g.bankMask)
	c.bankBusy[id&63] = c.beat + g.busy
}

// nativePlan is one image's complete translation plus the translation-time
// constants the step loop needs.
type nativePlan struct {
	words    []nativeWord
	geom     bankGeom
	itagMask int   // len(itags)-1 when the icache is a power of two, else -1
	ringSize int64 // power-of-two retire-ring size, > the image's max latency
}

// ringWrite is one in-flight register write in the native tier's retire
// ring. The retire beat is implicit in the bucket the entry sits in; seq is
// the issue sequence number, which recovers the interpreter's issue-order
// retirement when several beats drain at once and puts flushed entries back
// into Context.pending in the order checked-tier execution would have them.
type ringWrite struct {
	val uint64
	pc  int32
	seq uint32
	dst mach.PReg
}

// npush schedules a register write retiring at beat rb into the ring. The
// ring replaces the pending-queue scan: retirement touches only the bucket
// that is due instead of copying every in-flight write each beat.
func (c *Context) npush(rb int64, dst mach.PReg, val uint64) {
	i := rb & c.nrmask
	c.nring[i] = append(c.nring[i], ringWrite{val: val, pc: int32(c.pc), seq: c.nseq, dst: dst})
	c.nseq++
}

// nRingArm sizes (or clears) the retire ring for a native run. Restored
// pending writes are not ingested here — stepNative ingests c.pending
// lazily, which also covers a flush-then-continue after a mid-run Snapshot.
func (c *Context) nRingArm(size int64) {
	c.nRingFlush()
	if int64(len(c.nring)) != size {
		c.nring = make([][]ringWrite, size)
	} else {
		for i := range c.nring {
			c.nring[i] = c.nring[i][:0]
		}
	}
	c.nrmask = size - 1
	c.ndrained = c.beat - 1
	c.nseq = 0
}

// nRingIngest moves c.pending (a restored snapshot's write pipeline, or a
// mid-run flush) into the retire ring; overdue entries retire at the next
// drain. Slice order is issue order, so fresh ascending seqs preserve it.
func (c *Context) nRingIngest() {
	mask := int64(len(c.nring)) - 1
	for i := range c.pending {
		w := &c.pending[i]
		b := w.beat
		if b <= c.ndrained {
			b = c.ndrained + 1
		}
		c.nring[b&mask] = append(c.nring[b&mask], ringWrite{val: w.val, pc: int32(w.pc), seq: c.nseq, dst: w.dst})
		c.nseq++
	}
	c.pending = c.pending[:0]
}

// nRingFlush drains the in-flight ring entries back into c.pending — the
// representation Snapshot serializes — in issue order, exactly the queue
// the checked interpreter would be carrying. The next native step
// re-ingests them, so flushing mid-run is safe.
func (c *Context) nRingFlush() {
	if len(c.nring) == 0 {
		return
	}
	mask := int64(len(c.nring)) - 1
	sc := c.nscratch[:0]
	var beats []int64
	for off := int64(0); off <= mask; off++ {
		b := c.ndrained + 1 + off
		bucket := c.nring[b&mask]
		for i := range bucket {
			sc = append(sc, bucket[i])
			beats = append(beats, b)
		}
		c.nring[b&mask] = bucket[:0]
	}
	for i := 1; i < len(sc); i++ {
		for j := i; j > 0 && int32(sc[j-1].seq-sc[j].seq) > 0; j-- {
			sc[j-1], sc[j] = sc[j], sc[j-1]
			beats[j-1], beats[j] = beats[j], beats[j-1]
		}
	}
	for i := range sc {
		c.pending = append(c.pending, pendingWrite{beat: beats[i], dst: sc[i].dst, val: sc[i].val, pc: int(sc[i].pc)})
	}
	c.nscratch = sc[:0]
}

// nRingDrain retires every ring bucket due through the current beat. The
// hot path — the clock advanced exactly one beat — applies one bucket with
// no scan and no copies; stall/trap jumps take the multi-beat slow path.
func (c *Context) nRingDrain(m *Machine) {
	start, end := c.ndrained+1, c.beat
	if start > end {
		return
	}
	c.ndrained = end
	mask := int64(len(c.nring)) - 1
	if start == end {
		b := c.nring[end&mask]
		if len(b) == 0 {
			return
		}
		if m.InjectWrite == nil {
			for i := range b {
				c.writeReg(b[i].dst, b[i].val)
			}
		} else {
			for i := range b {
				c.writeReg(b[i].dst, m.InjectWrite(c.beat, b[i].dst, b[i].val))
			}
		}
		c.nring[end&mask] = b[:0]
		return
	}
	c.nRingDrainSlow(m, start, end)
}

// nRingDrainSlow retires a multi-beat batch in issue order — the order the
// interpreter's applyWrites (a queue scan in issue order) retires a batch,
// which is observable when two due writes target one register.
func (c *Context) nRingDrainSlow(m *Machine, start, end int64) {
	mask := int64(len(c.nring)) - 1
	if end-start > mask {
		start = end - mask // every slot covered once; all entries are due
	}
	sc := c.nscratch[:0]
	for b := start; b <= end; b++ {
		bucket := c.nring[b&mask]
		sc = append(sc, bucket...)
		c.nring[b&mask] = bucket[:0]
	}
	for i := 1; i < len(sc); i++ {
		for j := i; j > 0 && int32(sc[j-1].seq-sc[j].seq) > 0; j-- {
			sc[j-1], sc[j] = sc[j], sc[j-1]
		}
	}
	if m.InjectWrite == nil {
		for i := range sc {
			c.writeReg(sc[i].dst, sc[i].val)
		}
	} else {
		for i := range sc {
			c.writeReg(sc[i].dst, m.InjectWrite(c.beat, sc[i].dst, sc[i].val))
		}
	}
	c.nscratch = sc[:0]
}

// statsBulk is the unconditional counter delta for a run of slots, summed
// at translation time and applied in one shot at execution. Fault closures
// carry the suffix of the word that no longer executes and subtract it back
// out, so trapping runs report the same counters as the checked
// interpreter's op-at-a-time increments.
type statsBulk struct {
	ops       int64
	floatOps  int64
	memRefs   int64
	loads     int64
	stores    int64
	specLoads int64
	branches  int64
	syscalls  int64
}

func (b *statsBulk) apply(s *Stats) {
	s.Ops += b.ops
	s.FloatOps += b.floatOps
	s.MemRefs += b.memRefs
	s.Loads += b.loads
	s.Stores += b.stores
	s.SpecLoads += b.specLoads
	s.Branches += b.branches
	s.Syscalls += b.syscalls
}

func (b *statsBulk) unapply(s *Stats) {
	s.Ops -= b.ops
	s.FloatOps -= b.floatOps
	s.MemRefs -= b.memRefs
	s.Loads -= b.loads
	s.Stores -= b.stores
	s.SpecLoads -= b.specLoads
	s.Branches -= b.branches
	s.Syscalls -= b.syscalls
}

func (b *statsBulk) add(o *statsBulk) {
	b.ops += o.ops
	b.floatOps += o.floatOps
	b.memRefs += o.memRefs
	b.loads += o.loads
	b.stores += o.stores
	b.specLoads += o.specLoads
	b.branches += o.branches
	b.syscalls += o.syscalls
}

// nSlot is one slot's translation input: the op, the dispatch kind (the
// safe-tier synthetic opcode at proven sites), and the precomputed
// latency/unit attribution, exactly the planOp fields.
type nSlot struct {
	op       *mach.Op
	kind     ir.OpKind
	unitKind mach.UnitKind
	unitName string
	lat      int
}

// opBulk returns a slot's unconditional counter contribution — the
// counters the checked interpreter increments before any guard can fire,
// so they stay counted even when the slot itself faults.
func opBulk(s *nSlot) statsBulk {
	b := statsBulk{ops: 1}
	if s.unitKind == mach.UBR {
		// Branch-unit dispatch keys on the op's own kind (execBranch).
		switch s.op.Kind {
		case mach.OpBrT, mach.OpJmp, mach.OpCall, mach.OpJmpR:
			b.branches = 1
		case mach.OpSyscall:
			b.syscalls = 1
		}
		return b
	}
	switch s.kind {
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv:
		b.floatOps = 1
	case ir.Load, opSafeLoadI32, opSafeLoadF64:
		b.memRefs, b.loads = 1, 1
	case ir.LoadSpec, opSafeSpecI32, opSafeSpecF64:
		b.memRefs, b.loads, b.specLoads = 1, 1, 1
	case ir.Store, opSafeStoreI32, opSafeStoreF64:
		b.memRefs, b.stores = 1, 1
	}
	return b
}

// iregArg reports whether a names an integer-bank register and returns its
// pre-masked board/index — the dominant operand shape, which the builders
// below specialize so the closure reads the bank directly with no call.
func iregArg(a mach.Arg) (bd, ix int, ok bool) {
	if a.IsImm || !a.Reg.Valid() || a.Reg.Bank != mach.BankI {
		return 0, 0, false
	}
	return int(a.Reg.Board) & 3, int(a.Reg.Idx) & 63, true
}

// fregArg is iregArg for the float bank.
func fregArg(a mach.Arg) (bd, ix int, ok bool) {
	if a.IsImm || !a.Reg.Valid() || a.Reg.Bank != mach.BankF {
		return 0, 0, false
	}
	return int(a.Reg.Board) & 3, int(a.Reg.Idx) & 31, true
}

// nReadU compiles Context.readArg for one operand: immediates and invalid
// registers fold to constants, register reads become direct bank indexing.
// The index masks (matching each bank's power-of-two geometry) sit inside
// the closure body so the compiler's prove pass deletes the bounds checks.
func nReadU(a mach.Arg) func(*Context) uint64 {
	if a.IsImm {
		v := uint64(uint32(a.Imm))
		return func(*Context) uint64 { return v }
	}
	if !a.Reg.Valid() {
		return func(*Context) uint64 { return 0 }
	}
	bd, ix := int(a.Reg.Board), int(a.Reg.Idx)
	switch a.Reg.Bank {
	case mach.BankI:
		return func(c *Context) uint64 { return uint64(c.iregs[bd&3][ix&63]) }
	case mach.BankF:
		return func(c *Context) uint64 { return c.fregs[bd&3][ix&31] }
	case mach.BankSF:
		return func(c *Context) uint64 { return c.sf[bd&3][ix&15] }
	default: // BankB
		return func(c *Context) uint64 {
			if c.bb[bd&3][ix&7] {
				return 1
			}
			return 0
		}
	}
}

// nReadI compiles Context.readI.
func nReadI(a mach.Arg) func(*Context) int32 {
	if a.IsImm {
		v := a.Imm
		return func(*Context) int32 { return v }
	}
	if !a.Reg.Valid() {
		return func(*Context) int32 { return 0 }
	}
	if bd, ix, ok := iregArg(a); ok {
		return func(c *Context) int32 { return int32(c.iregs[bd][ix]) }
	}
	u := nReadU(a)
	return func(c *Context) int32 { return int32(uint32(u(c))) }
}

// nReadF compiles Context.readF.
func nReadF(a mach.Arg) func(*Context) float64 {
	if bd, ix, ok := fregArg(a); ok {
		return func(c *Context) float64 { return math.Float64frombits(c.fregs[bd][ix]) }
	}
	u := nReadU(a)
	return func(c *Context) float64 { return math.Float64frombits(u(c)) }
}

// nEA compiles the effective-address sum int64(readI(A)) + int64(readI(B))
// — the form the opSafe* variants and the prescan's eaOf use — with the
// dominant register+immediate shape fused into a single closure.
func nEA(o *mach.Op) func(*Context) int64 {
	if bd, ix, ok := iregArg(o.A); ok && o.B.IsImm {
		off := int64(o.B.Imm)
		return func(c *Context) int64 { return int64(int32(c.iregs[bd][ix])) + off }
	}
	ga, gb := nReadI(o.A), nReadI(o.B)
	return func(c *Context) int64 { return int64(ga(c)) + int64(gb(c)) }
}

// nEAExec is nEA with eaOf's invalid-base quirk preserved: a memory op
// whose base operand names no register computes ea=0 at execution (eaOf
// returns ok=false and the exec path ignores the flag), landing on the
// guard's bus-error/funny-number path exactly as the interpreter does.
func nEAExec(o *mach.Op) func(*Context) int64 {
	if !o.A.IsImm && !o.A.Reg.Valid() {
		return func(*Context) int64 { return 0 }
	}
	return nEA(o)
}

// nFault raises a guarded-site fault from a translated closure: the
// not-yet-executed suffix of the word's bulk counters is rolled back and
// the unit attribution the interpreter would have set via curUnit is
// restored, so the Fault renders byte-identically to the other tiers.
func (m *Machine) nFault(c *Context, rb *statsBulk, unit string, code TrapCode, format string, args ...any) error {
	rb.unapply(&m.Stats)
	m.curUnit = unit
	return m.fault(c, code, format, args...)
}

// nbrTake applies the §6.5.2 multiway-branch priority rule for one taken
// test: lowest Prio wins, first in slot order on ties.
func (m *Machine) nbrTake(prio, target int) {
	if !m.nTaken || prio < m.nBestPrio {
		m.nTaken = true
		m.nBestPrio = prio
		m.nNextPC = target
	}
}

// nFastShape emits fully fused closures — operand reads, the operation,
// and the ring push all inline, no operator callback — for the op kinds
// and operand shapes that dominate compacted inner loops: integer
// add/sub/compare on reg⊕imm and reg⊕reg, and float add/sub/mul on
// freg⊕freg. Returns nil when the generic builders should be used.
func nFastShape(o *mach.Op, kind ir.OpKind, dst mach.PReg, lat int64) nativeOp {
	if !dst.Valid() {
		return nil
	}
	if abd, aix, ok := fregArg(o.A); ok {
		bbd, bix, ok := fregArg(o.B)
		if !ok {
			return nil
		}
		switch kind {
		case ir.FAdd:
			return func(m *Machine, c *Context) error {
				v := math.Float64frombits(c.fregs[abd][aix]) + math.Float64frombits(c.fregs[bbd][bix])
				c.npush(c.beat+lat, dst, math.Float64bits(v))
				return nil
			}
		case ir.FSub:
			return func(m *Machine, c *Context) error {
				v := math.Float64frombits(c.fregs[abd][aix]) - math.Float64frombits(c.fregs[bbd][bix])
				c.npush(c.beat+lat, dst, math.Float64bits(v))
				return nil
			}
		case ir.FMul:
			return func(m *Machine, c *Context) error {
				v := math.Float64frombits(c.fregs[abd][aix]) * math.Float64frombits(c.fregs[bbd][bix])
				c.npush(c.beat+lat, dst, math.Float64bits(v))
				return nil
			}
		}
		return nil
	}
	abd, aix, ok := iregArg(o.A)
	if !ok {
		return nil
	}
	if o.B.IsImm {
		bv := o.B.Imm
		switch kind {
		case ir.Add:
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, iBits(int32(c.iregs[abd][aix])+bv))
				return nil
			}
		case ir.Sub:
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, iBits(int32(c.iregs[abd][aix])-bv))
				return nil
			}
		case ir.CmpLT:
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, bBits(int32(c.iregs[abd][aix]) < bv))
				return nil
			}
		case ir.CmpGE:
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, bBits(int32(c.iregs[abd][aix]) >= bv))
				return nil
			}
		}
		return nil
	}
	if bbd, bix, ok := iregArg(o.B); ok {
		switch kind {
		case ir.Add:
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, iBits(int32(c.iregs[abd][aix])+int32(c.iregs[bbd][bix])))
				return nil
			}
		case ir.Sub:
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, iBits(int32(c.iregs[abd][aix])-int32(c.iregs[bbd][bix])))
				return nil
			}
		case ir.CmpLT:
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, bBits(int32(c.iregs[abd][aix]) < int32(c.iregs[bbd][bix])))
				return nil
			}
		}
	}
	return nil
}

// nALU2 builds a binary integer-ALU closure. The write-pipeline append is
// fused into the closure (no enqueue call), and the two dominant operand
// shapes — reg⊕imm and reg⊕reg — read the integer bank directly.
func nALU2(o *mach.Op, dst mach.PReg, lat int64, f func(a, b int32) int32) nativeOp {
	if !dst.Valid() {
		ga, gb := nReadI(o.A), nReadI(o.B)
		return func(m *Machine, c *Context) error {
			_ = f(ga(c), gb(c))
			return nil
		}
	}
	if abd, aix, ok := iregArg(o.A); ok {
		if o.B.IsImm {
			bv := o.B.Imm
			return func(m *Machine, c *Context) error {
				v := f(int32(c.iregs[abd][aix]), bv)
				c.npush(c.beat+lat, dst, iBits(v))
				return nil
			}
		}
		if bbd, bix, ok := iregArg(o.B); ok {
			return func(m *Machine, c *Context) error {
				v := f(int32(c.iregs[abd][aix]), int32(c.iregs[bbd][bix]))
				c.npush(c.beat+lat, dst, iBits(v))
				return nil
			}
		}
	}
	ga, gb := nReadI(o.A), nReadI(o.B)
	return func(m *Machine, c *Context) error {
		v := f(ga(c), gb(c))
		c.npush(c.beat+lat, dst, iBits(v))
		return nil
	}
}

// nCmp2 builds an integer-compare closure (result into the branch bank).
func nCmp2(o *mach.Op, dst mach.PReg, lat int64, f func(a, b int32) bool) nativeOp {
	if !dst.Valid() {
		ga, gb := nReadI(o.A), nReadI(o.B)
		return func(m *Machine, c *Context) error {
			_ = f(ga(c), gb(c))
			return nil
		}
	}
	if abd, aix, ok := iregArg(o.A); ok {
		if o.B.IsImm {
			bv := o.B.Imm
			return func(m *Machine, c *Context) error {
				v := f(int32(c.iregs[abd][aix]), bv)
				c.npush(c.beat+lat, dst, bBits(v))
				return nil
			}
		}
		if bbd, bix, ok := iregArg(o.B); ok {
			return func(m *Machine, c *Context) error {
				v := f(int32(c.iregs[abd][aix]), int32(c.iregs[bbd][bix]))
				c.npush(c.beat+lat, dst, bBits(v))
				return nil
			}
		}
	}
	ga, gb := nReadI(o.A), nReadI(o.B)
	return func(m *Machine, c *Context) error {
		v := f(ga(c), gb(c))
		c.npush(c.beat+lat, dst, bBits(v))
		return nil
	}
}

// nFALU2 builds a binary floating-ALU closure.
func nFALU2(o *mach.Op, dst mach.PReg, lat int64, f func(a, b float64) float64) nativeOp {
	if !dst.Valid() {
		ga, gb := nReadF(o.A), nReadF(o.B)
		return func(m *Machine, c *Context) error {
			_ = f(ga(c), gb(c))
			return nil
		}
	}
	if abd, aix, ok := fregArg(o.A); ok {
		if bbd, bix, ok := fregArg(o.B); ok {
			return func(m *Machine, c *Context) error {
				v := f(math.Float64frombits(c.fregs[abd][aix]), math.Float64frombits(c.fregs[bbd][bix]))
				c.npush(c.beat+lat, dst, math.Float64bits(v))
				return nil
			}
		}
	}
	ga, gb := nReadF(o.A), nReadF(o.B)
	return func(m *Machine, c *Context) error {
		v := f(ga(c), gb(c))
		c.npush(c.beat+lat, dst, math.Float64bits(v))
		return nil
	}
}

// nFCmp2 builds a floating-compare closure.
func nFCmp2(o *mach.Op, dst mach.PReg, lat int64, f func(a, b float64) bool) nativeOp {
	if !dst.Valid() {
		ga, gb := nReadF(o.A), nReadF(o.B)
		return func(m *Machine, c *Context) error {
			_ = f(ga(c), gb(c))
			return nil
		}
	}
	if abd, aix, ok := fregArg(o.A); ok {
		if bbd, bix, ok := fregArg(o.B); ok {
			return func(m *Machine, c *Context) error {
				v := f(math.Float64frombits(c.fregs[abd][aix]), math.Float64frombits(c.fregs[bbd][bix]))
				c.npush(c.beat+lat, dst, bBits(v))
				return nil
			}
		}
	}
	ga, gb := nReadF(o.A), nReadF(o.B)
	return func(m *Machine, c *Context) error {
		v := f(ga(c), gb(c))
		c.npush(c.beat+lat, dst, bBits(v))
		return nil
	}
}

// nConst builds a push-constant closure. ConstI/ConstF are frequent enough
// in compacted traces that the nMov1 callback indirection shows up in
// profiles; the constant is baked into the closure instead.
func nConst(dst mach.PReg, lat int64, v uint64) nativeOp {
	if !dst.Valid() {
		return func(m *Machine, c *Context) error { return nil }
	}
	return func(m *Machine, c *Context) error {
		c.npush(c.beat+lat, dst, v)
		return nil
	}
}

// nMovReg builds a register-to-register move with the source read inlined
// when the source bank is statically I or F; other shapes (immediates went
// to nConst, odd banks are rare) fall back to nMov1.
func nMovReg(o *mach.Op, dst mach.PReg, lat int64) nativeOp {
	if dst.Valid() {
		if bd, ix, ok := iregArg(o.A); ok {
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, uint64(c.iregs[bd][ix]))
				return nil
			}
		}
		if bd, ix, ok := fregArg(o.A); ok {
			return func(m *Machine, c *Context) error {
				c.npush(c.beat+lat, dst, c.fregs[bd][ix])
				return nil
			}
		}
	}
	return nMov1(dst, lat, nReadU(o.A))
}

// nMov1 builds a unary move/convert closure writing a precomputed uint64.
func nMov1(dst mach.PReg, lat int64, g func(*Context) uint64) nativeOp {
	if !dst.Valid() {
		return func(m *Machine, c *Context) error {
			_ = g(c)
			return nil
		}
	}
	return func(m *Machine, c *Context) error {
		c.npush(c.beat+lat, dst, g(c))
		return nil
	}
}

// compileBranch translates one branch-unit slot (mirrors execBranch).
func compileBranch(o *mach.Op, unitName string, rb statsBulk) nativeOp {
	switch o.Kind {
	case mach.OpBrT:
		cond := nReadU(o.A)
		t, prio := o.Target, o.Prio
		if t < 0 {
			return func(m *Machine, c *Context) error { return nil }
		}
		return func(m *Machine, c *Context) error {
			if cond(c) != 0 {
				m.nbrTake(prio, t)
			}
			return nil
		}
	case mach.OpJmp:
		t, prio := o.Target, o.Prio
		if t < 0 {
			return func(m *Machine, c *Context) error { return nil }
		}
		return func(m *Machine, c *Context) error {
			m.nbrTake(prio, t)
			return nil
		}
	case mach.OpCall:
		t, prio := o.Target, o.Prio
		lr := mach.RegLR
		return func(m *Machine, c *Context) error {
			c.npush(c.beat+1, lr, uint64(uint32(c.pc+1)))
			if t >= 0 {
				m.nbrTake(prio, t)
			}
			return nil
		}
	case mach.OpJmpR:
		ga := nReadU(o.A)
		prio := o.Prio
		return func(m *Machine, c *Context) error {
			if t := int(int32(uint32(ga(c)))); t >= 0 {
				m.nbrTake(prio, t)
			}
			return nil
		}
	case mach.OpHalt:
		bd, ix := int(mach.RegRVI.Board), int(mach.RegRVI.Idx)
		return func(m *Machine, c *Context) error {
			m.nHalted = true
			m.nExit = int32(c.iregs[bd&3][ix&63])
			return nil
		}
	case mach.OpSyscall:
		switch o.Sym {
		case "print_i":
			return func(m *Machine, c *Context) error {
				fmt.Fprintf(&c.out, "%d\n", int32(c.iregs[0][mach.ArgIBase]))
				return nil
			}
		case "print_f":
			return func(m *Machine, c *Context) error {
				fmt.Fprintf(&c.out, "%g\n", math.Float64frombits(c.fregs[0][mach.ArgFBase]))
				return nil
			}
		default:
			sym := o.Sym
			return func(m *Machine, c *Context) error {
				return m.nFault(c, &rb, unitName, TrapSyscall, "unknown syscall %q", sym)
			}
		}
	}
	name := mach.OpName(o.Kind)
	return func(m *Machine, c *Context) error {
		return m.nFault(c, &rb, unitName, TrapBadOp, "%s on branch unit", name)
	}
}

// compileLoad translates a guarded (unproven-site) load, preserving
// execLoad's semantics exactly: counter order, the speculative
// funny-number path, and the alignment-before-bounds fault precedence.
func compileLoad(o *mach.Op, lat int64, unitName string, rb statsBulk, g bankGeom) nativeOp {
	ea := nEAExec(o)
	dst := o.Dst
	size := o.Type.Size()
	spec := o.Kind == ir.LoadSpec
	isI32 := o.Type == ir.I32
	funnyI := int32(ir.FunnyI32)
	var funny uint64
	if isI32 {
		funny = uint64(uint32(funnyI))
	} else {
		funny = math.Float64bits(math.NaN())
	}
	return func(m *Machine, c *Context) error {
		a := ea(c)
		if a < ir.GlobalBase || a+size > int64(len(c.mem)) || a%size != 0 {
			if spec {
				m.Stats.SpecFaults++
				if dst.Valid() {
					c.npush(c.beat+lat, dst, funny)
				}
				return nil
			}
			if a%size != 0 {
				return m.nFault(c, &rb, unitName, TrapUnaligned, "unaligned %d-byte load %#x", size, a)
			}
			return m.nFault(c, &rb, unitName, TrapMemBounds, "bus error: load %#x", a)
		}
		if g.ok {
			g.touch(c, a)
		} else {
			m.touchBank(a)
		}
		var v uint64
		if isI32 {
			v = uint64(binary.LittleEndian.Uint32(c.mem[a:]))
		} else {
			v = binary.LittleEndian.Uint64(c.mem[a:])
		}
		if dst.Valid() {
			c.npush(c.beat+lat, dst, v)
		}
		return nil
	}
}

// compileStore translates a guarded store (mirrors execStore: bounds
// before alignment).
func compileStore(o *mach.Op, unitName string, rb statsBulk, g bankGeom) nativeOp {
	ea := nEAExec(o)
	gc := nReadU(o.C)
	size := o.Type.Size()
	isI32 := o.Type == ir.I32
	return func(m *Machine, c *Context) error {
		a := ea(c)
		if a < ir.GlobalBase || a+size > int64(len(c.mem)) {
			return m.nFault(c, &rb, unitName, TrapMemBounds, "bus error: store %#x", a)
		}
		if a%size != 0 {
			return m.nFault(c, &rb, unitName, TrapUnaligned, "unaligned %d-byte store %#x", size, a)
		}
		if g.ok {
			g.touch(c, a)
		} else {
			m.touchBank(a)
		}
		v := gc(c)
		if isI32 {
			v = uint64(uint32(v))
			binary.LittleEndian.PutUint32(c.mem[a:], uint32(v))
		} else {
			binary.LittleEndian.PutUint64(c.mem[a:], v)
		}
		if m.WatchStore != nil {
			m.WatchStore(a, v)
		}
		return nil
	}
}

// compileSafeLoad translates a proven load: no guard at all. A
// post-certification mutation that drives the address wild hits the Go
// runtime's slice bounds check; the run loops convert the panic to the
// matching Fault (safeTierFault), same as the safe tier.
func compileSafeLoad(o *mach.Op, lat int64, f64 bool, g bankGeom) nativeOp {
	ea := nEA(o)
	dst := o.Dst
	if !dst.Valid() {
		// The read must still happen: its bounds panic is the backstop.
		if f64 {
			return func(m *Machine, c *Context) error {
				a := ea(c)
				if g.ok {
					g.touch(c, a)
				} else {
					m.touchBank(a)
				}
				_ = binary.LittleEndian.Uint64(c.mem[a:])
				return nil
			}
		}
		return func(m *Machine, c *Context) error {
			a := ea(c)
			if g.ok {
				g.touch(c, a)
			} else {
				m.touchBank(a)
			}
			_ = binary.LittleEndian.Uint32(c.mem[a:])
			return nil
		}
	}
	if f64 {
		return func(m *Machine, c *Context) error {
			a := ea(c)
			if g.ok {
				g.touch(c, a)
			} else {
				m.touchBank(a)
			}
			v := binary.LittleEndian.Uint64(c.mem[a:])
			c.npush(c.beat+lat, dst, v)
			return nil
		}
	}
	return func(m *Machine, c *Context) error {
		a := ea(c)
		if g.ok {
			g.touch(c, a)
		} else {
			m.touchBank(a)
		}
		v := uint64(binary.LittleEndian.Uint32(c.mem[a:]))
		c.npush(c.beat+lat, dst, v)
		return nil
	}
}

// compileSafeStore translates a proven store: no guard at all.
func compileSafeStore(o *mach.Op, f64 bool, g bankGeom) nativeOp {
	ea := nEA(o)
	gc := nReadU(o.C)
	if f64 {
		return func(m *Machine, c *Context) error {
			a := ea(c)
			if g.ok {
				g.touch(c, a)
			} else {
				m.touchBank(a)
			}
			v := gc(c)
			binary.LittleEndian.PutUint64(c.mem[a:], v)
			if m.WatchStore != nil {
				m.WatchStore(a, v)
			}
			return nil
		}
	}
	return func(m *Machine, c *Context) error {
		a := ea(c)
		if g.ok {
			g.touch(c, a)
		} else {
			m.touchBank(a)
		}
		v := uint64(uint32(gc(c)))
		binary.LittleEndian.PutUint32(c.mem[a:], uint32(v))
		if m.WatchStore != nil {
			m.WatchStore(a, v)
		}
		return nil
	}
}

// compileExec translates one non-branch slot (mirrors execOp case for
// case; the dispatch key is the plan kind, so proven sites translate to
// their guard-free variants).
func compileExec(o *mach.Op, kind ir.OpKind, lat64 int, unitName string, rb statsBulk, g bankGeom) nativeOp {
	dst := o.Dst
	lat := int64(lat64)
	if f := nFastShape(o, kind, dst, lat); f != nil {
		return f
	}
	switch kind {
	case ir.Nop:
		return nil
	case ir.ConstI:
		if o.A.IsImm {
			return nConst(dst, lat, iBits(o.A.Imm))
		}
		ga := nReadI(o.A)
		return nMov1(dst, lat, func(c *Context) uint64 { return iBits(ga(c)) })
	case ir.ConstF:
		return nConst(dst, lat, fBits(o.FImm))
	case ir.Mov, mach.OpMovSF:
		return nMovReg(o, dst, lat)
	case ir.Add:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a + b })
	case ir.Sub:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a - b })
	case ir.Mul:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a * b })
	case ir.Div:
		ga, gb := nReadI(o.A), nReadI(o.B)
		return func(m *Machine, c *Context) error {
			d := gb(c)
			if d == 0 {
				return m.nFault(c, &rb, unitName, TrapDivZero, "integer divide by zero")
			}
			if dst.Valid() {
				c.npush(c.beat+lat, dst, iBits(ga(c)/d))
			}
			return nil
		}
	case ir.Rem:
		ga, gb := nReadI(o.A), nReadI(o.B)
		return func(m *Machine, c *Context) error {
			d := gb(c)
			if d == 0 {
				return m.nFault(c, &rb, unitName, TrapDivZero, "integer remainder by zero")
			}
			if dst.Valid() {
				c.npush(c.beat+lat, dst, iBits(ga(c)%d))
			}
			return nil
		}
	case ir.And:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a & b })
	case ir.Or:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a | b })
	case ir.Xor:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a ^ b })
	case ir.Shl:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a << (uint32(b) & 31) })
	case ir.Shr:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) })
	case ir.Sra:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a >> (uint32(b) & 31) })
	case ir.Neg:
		ga := nReadI(o.A)
		return nMov1(dst, lat, func(c *Context) uint64 { return iBits(-ga(c)) })
	case ir.Not:
		ga := nReadI(o.A)
		return nMov1(dst, lat, func(c *Context) uint64 { return iBits(^ga(c)) })
	case ir.CmpEQ:
		return nCmp2(o, dst, lat, func(a, b int32) bool { return a == b })
	case ir.CmpNE:
		return nCmp2(o, dst, lat, func(a, b int32) bool { return a != b })
	case ir.CmpLT:
		return nCmp2(o, dst, lat, func(a, b int32) bool { return a < b })
	case ir.CmpLE:
		return nCmp2(o, dst, lat, func(a, b int32) bool { return a <= b })
	case ir.CmpGT:
		return nCmp2(o, dst, lat, func(a, b int32) bool { return a > b })
	case ir.CmpGE:
		return nCmp2(o, dst, lat, func(a, b int32) bool { return a >= b })
	case ir.FAdd:
		return nFALU2(o, dst, lat, func(a, b float64) float64 { return a + b })
	case ir.FSub:
		return nFALU2(o, dst, lat, func(a, b float64) float64 { return a - b })
	case ir.FMul:
		return nFALU2(o, dst, lat, func(a, b float64) float64 { return a * b })
	case ir.FDiv:
		// NaN/Inf propagate, no trap (§7) — guard-free on every tier.
		return nFALU2(o, dst, lat, func(a, b float64) float64 { return a / b })
	case ir.FNeg:
		ga := nReadF(o.A)
		return nMov1(dst, lat, func(c *Context) uint64 { return fBits(-ga(c)) })
	case ir.FCmpEQ:
		return nFCmp2(o, dst, lat, func(a, b float64) bool { return a == b })
	case ir.FCmpNE:
		return nFCmp2(o, dst, lat, func(a, b float64) bool { return a != b })
	case ir.FCmpLT:
		return nFCmp2(o, dst, lat, func(a, b float64) bool { return a < b })
	case ir.FCmpLE:
		return nFCmp2(o, dst, lat, func(a, b float64) bool { return a <= b })
	case ir.FCmpGT:
		return nFCmp2(o, dst, lat, func(a, b float64) bool { return a > b })
	case ir.FCmpGE:
		return nFCmp2(o, dst, lat, func(a, b float64) bool { return a >= b })
	case ir.ItoF:
		ga := nReadI(o.A)
		return nMov1(dst, lat, func(c *Context) uint64 { return fBits(float64(ga(c))) })
	case ir.FtoI:
		ga := nReadF(o.A)
		funnyI := int32(ir.FunnyI32)
		funny := iBits(funnyI)
		return nMov1(dst, lat, func(c *Context) uint64 {
			v := ga(c)
			if math.IsNaN(v) || v > math.MaxInt32 || v < math.MinInt32 {
				return funny
			}
			return iBits(int32(v))
		})
	case ir.Select:
		ga, gb, gcv := nReadU(o.A), nReadU(o.B), nReadU(o.C)
		return nMov1(dst, lat, func(c *Context) uint64 {
			if ga(c) != 0 {
				return gb(c)
			}
			return gcv(c)
		})
	case ir.Load, ir.LoadSpec:
		return compileLoad(o, lat, unitName, rb, g)
	case ir.Store:
		return compileStore(o, unitName, rb, g)
	case opSafeLoadI32:
		return compileSafeLoad(o, lat, false, g)
	case opSafeLoadF64:
		return compileSafeLoad(o, lat, true, g)
	case opSafeSpecI32:
		return compileSafeLoad(o, lat, false, g)
	case opSafeSpecF64:
		return compileSafeLoad(o, lat, true, g)
	case opSafeStoreI32:
		return compileSafeStore(o, false, g)
	case opSafeStoreF64:
		return compileSafeStore(o, true, g)
	case opSafeDiv:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a / b })
	case opSafeRem:
		return nALU2(o, dst, lat, func(a, b int32) int32 { return a % b })
	}
	name := mach.OpName(o.Kind)
	return func(m *Machine, c *Context) error {
		return m.nFault(c, &rb, unitName, TrapBadOp, "cannot execute %s", name)
	}
}

// buildNativePlan translates every instruction word of the image under a
// safety certificate. The walk mirrors buildPlan/buildSafePlan slot order
// exactly — that order is the key the certificate's per-site bitmask is
// indexed by.
func buildNativePlan(img *isa.Image, cert SafetyCertificate) *nativePlan {
	cfg := img.Cfg
	np := &nativePlan{
		words:    make([]nativeWord, len(img.Instrs)),
		geom:     geomOf(cfg),
		itagMask: -1,
	}
	if n := cfg.ICacheInstrs; n > 0 && n&(n-1) == 0 {
		np.itagMask = n - 1
	}

	unitNames := map[mach.Unit]string{}
	nameOf := func(u mach.Unit) string {
		s, ok := unitNames[u]
		if !ok {
			s = u.String()
			unitNames[u] = s
		}
		return s
	}

	maxLat := 1
	for a := range img.Instrs {
		in := &img.Instrs[a]
		nw := &np.words[a]
		var beats [2][]nSlot
		for si := range in.Slots {
			s := &in.Slots[si]
			b := s.Beat & 1
			kind := s.Op.Kind
			if k, ok := safeKind(&s.Op); ok && cert.SafeSite(a, s.Unit, s.Beat) {
				kind = k
			}
			lat := latency(cfg, &s.Op)
			if lat > maxLat {
				maxLat = lat
			}
			beats[b] = append(beats[b], nSlot{
				op:       &s.Op,
				kind:     kind,
				unitKind: s.Unit.Kind,
				unitName: nameOf(s.Unit),
				lat:      lat,
			})
			// Prescan list: same membership as the interpreter's, which
			// skips statically-unresolvable bases (eaOf ok=false).
			if isMemOp(s.Op.Kind) && (s.Op.A.IsImm || s.Op.A.Reg.Valid()) {
				nw.mem = append(nw.mem, nativeMem{ea: nEA(&s.Op), beat: int64(b)})
			}
		}
		// Per-beat bulks and the whole-word bulk applied at word start.
		var bulks [2][]statsBulk
		var beatTotal [2]statsBulk
		for b := 0; b < 2; b++ {
			bulks[b] = make([]statsBulk, len(beats[b]))
			for i := range beats[b] {
				bulks[b][i] = opBulk(&beats[b][i])
				beatTotal[b].add(&bulks[b][i])
			}
			nw.bulk.add(&beatTotal[b])
		}
		for b := 0; b < 2; b++ {
			slots := beats[b]
			// Fault rollback: each slot captures the bulk sum of everything
			// in the word that no longer executes after it traps — the rest
			// of its own beat, plus (for beat 0) all of beat 1, since the
			// word's whole bulk was applied up front. The slot's own
			// pre-guard counters stay, matching the interpreter.
			ops := make([]nativeOp, 0, len(slots))
			suffix := make([]statsBulk, len(slots))
			var acc statsBulk
			if b == 0 {
				acc = beatTotal[1]
			}
			for i := len(slots) - 1; i >= 0; i-- {
				suffix[i] = acc
				acc.add(&bulks[b][i])
			}
			for i := range slots {
				s := &slots[i]
				var f nativeOp
				if s.unitKind == mach.UBR {
					f = compileBranch(s.op, s.unitName, suffix[i])
				} else {
					f = compileExec(s.op, s.kind, s.lat, s.unitName, suffix[i], np.geom)
				}
				if f != nil {
					ops = append(ops, f)
				}
			}
			nw.beats[b] = nChain(ops)
		}
	}
	// The retire ring needs strictly more buckets than the longest latency
	// so a freshly issued write can never alias an undrained bucket.
	np.ringSize = 16
	for np.ringSize <= int64(maxLat)+1 {
		np.ringSize *= 2
	}
	return np
}

// UseNativeCertificate arms the native tier — the fourth execution tier —
// for every resident context running the certified image: the safe tier's
// graded guard deletion, with the per-slot interpreter replaced by the
// image's closure-threaded translation. Unproven sites keep exactly the
// safe tier's guards; exit, output, and every Stats counter are
// bit-identical to the checked, fast, and safe tiers. The translated plan
// is cached on the machine and reused when the same certificate is
// re-armed after a Reset, exactly like the safe plan.
func (m *Machine) UseNativeCertificate(c SafetyCertificate) error {
	if c == nil {
		return fmt.Errorf("vliw: native-tier certificate does not cover this image")
	}
	img := c.CertifiedImage()
	found := false
	for _, ctx := range m.ctxs {
		if ctx.img == img {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("vliw: native-tier certificate does not cover this image")
	}
	if m.nativeCert != c || m.nativeImg != img {
		m.nativePlan = buildNativePlan(img, c)
		m.nativeImg, m.nativeCert = img, c
	}
	for _, ctx := range m.ctxs {
		if ctx.img == img {
			ctx.fast = true
			ctx.native = true
			ctx.nplan = m.nativePlan
			ctx.nRingArm(m.nativePlan.ringSize)
		}
	}
	return nil
}

// Native reports whether the current context runs the closure-threaded
// native tier.
func (m *Machine) Native() bool { return m.cur.native }

// Tier reports the current context's execution tier.
func (m *Machine) Tier() Tier { return m.cur.Tier() }

// stepNative executes one wide instruction (two beats) of context c from
// its translated plan. It is step with the per-slot dispatch replaced by
// the closure sequence; the interrupt, fetch, DMA, prescan, and write-
// pipeline stages keep the identical semantics, with the bank geometry and
// icache indexing strength-reduced at translation time.
func (m *Machine) stepNative(c *Context) error {
	np := c.nplan
	if c.pc < 0 || c.pc >= len(np.words) {
		return m.fault(c, TrapBadPC, "instruction fetch outside image")
	}
	if len(c.pending) != 0 {
		// A restored snapshot's write pipeline (or a mid-run flush) waits
		// in c.pending; move it into the retire ring.
		c.nRingIngest()
	}
	if m.InterruptEvery > 0 && c.beat >= m.nextInterrupt {
		cost := m.InterruptBeats
		if cost == 0 {
			cost = 200
		}
		c.beat += cost
		m.Stats.Interrupts++
		m.Stats.InterruptBeats += cost
		if m.OnInterrupt != nil {
			m.OnInterrupt(m)
		}
		m.nextInterrupt = c.beat + m.InterruptEvery
	}
	m.nFetch(c, np)
	if m.TraceFn != nil {
		m.TraceFn(c.pc, c.beat)
	}
	nw := &np.words[c.pc]
	m.Stats.Instrs++

	if m.dmaRate > 0 {
		m.dmaCatchUp(c)
	}
	if len(nw.mem) > 0 {
		var stall int64
		misses := 0
		for i := range nw.mem {
			pm := &nw.mem[i]
			ea := pm.ea(c)
			if c.dtlbMiss(ea) {
				misses++
			}
			if ea < 0 {
				continue
			}
			var id int64
			if np.geom.ok {
				w := ea >> 3
				id = (w&np.geom.ctrlMask)*8 + ((w >> np.geom.ctrlShift) & np.geom.bankMask)
			} else {
				ctrl, bank := m.Cfg.BankOf(ea)
				id = int64(ctrl*8 + bank)
			}
			access := c.beat + pm.beat + mach.StageBank + stall
			if busy := c.bankBusy[id&63]; busy > access {
				stall += busy - access
			}
		}
		if misses > 0 {
			cost := int64(TrapEntryBeats + misses*TrapPerMissBeat)
			m.Stats.TLBMisses += int64(misses)
			m.Stats.TrapBeats += cost
			c.beat += cost
		}
		if stall > 0 {
			m.Stats.BankStalls += stall
			c.beat += stall
		}
	}

	m.nTaken = false
	m.nNextPC = c.pc + 1
	m.nHalted = false

	// Beat-0 drain: the clock may have jumped (stalls, TLB traps, refills,
	// interrupts) since the previous word, so take the general path unless
	// exactly one beat is due. Beat-1 always advances by exactly one beat,
	// so its drain is the single-bucket fast path inlined.
	rmask := c.nrmask
	if c.ndrained == c.beat-1 {
		c.ndrained = c.beat
		if b := c.nring[c.beat&rmask]; len(b) != 0 {
			if m.InjectWrite == nil {
				for i := range b {
					c.writeReg(b[i].dst, b[i].val)
				}
			} else {
				for i := range b {
					c.writeReg(b[i].dst, m.InjectWrite(c.beat, b[i].dst, b[i].val))
				}
			}
			c.nring[c.beat&rmask] = b[:0]
		}
	} else {
		c.nRingDrain(m)
	}
	nw.bulk.apply(&m.Stats)
	if f := nw.beats[0]; f != nil {
		if err := f(m, c); err != nil {
			return err
		}
	}
	c.beat++
	c.ndrained = c.beat
	if b := c.nring[c.beat&rmask]; len(b) != 0 {
		if m.InjectWrite == nil {
			for i := range b {
				c.writeReg(b[i].dst, b[i].val)
			}
		} else {
			for i := range b {
				c.writeReg(b[i].dst, m.InjectWrite(c.beat, b[i].dst, b[i].val))
			}
		}
		c.nring[c.beat&rmask] = b[:0]
	}
	if f := nw.beats[1]; f != nil {
		if err := f(m, c); err != nil {
			return err
		}
	}
	c.beat++

	if m.nTaken {
		m.Stats.Taken++
	}
	if m.nHalted {
		c.halted = true
		c.exit = m.nExit
		return nil
	}
	c.pc = m.nNextPC
	return nil
}

// nFetch is fetch with the icache line index strength-reduced (the modulus
// by the direct-mapped line count becomes a mask for every power-of-two
// geometry); the refill path is the shared m.refillICache.
func (m *Machine) nFetch(c *Context, np *nativePlan) {
	pc := c.pc
	ipage := int64(pc) / (PageSize / 4)
	is := ipage % TLBEntries
	if c.itlb[is] != ipage || c.itlbAsids[is] != c.asid {
		c.itlb[is] = ipage
		c.itlbAsids[is] = c.asid
		m.Stats.TLBMisses++
		m.Stats.TrapBeats += TrapEntryBeats
		c.beat += TrapEntryBeats
	}
	if len(c.img.Words) == 0 {
		// ideal machine: no encoded form, perfect cache
		m.Stats.ICacheHits++
		return
	}
	var line int
	if np.itagMask >= 0 {
		line = pc & np.itagMask
	} else {
		line = pc % len(c.itags)
	}
	if c.itags[line] == pc && c.iasids[line] == c.asid {
		m.Stats.ICacheHits++
		return
	}
	m.refillICache(c, pc)
}

// stepNativeSafe is stepNative with the per-step panic containment the
// RunMany scheduler needs (see stepSafe).
func (m *Machine) stepNativeSafe(c *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = m.safeTierFault(c, r)
		}
	}()
	return m.stepNative(c)
}
