package vliw

import (
	"context"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/safecheck"
)

// Mutation tests of the safe (guard-free) tier. A SafeCertificate's
// contract is strictly weaker than the fast tier's (see the doc comment on
// safecheck.SafeCertificate): at proven sites the bounds, alignment, and
// zero-divisor guards are GONE, so a post-certification mutation that
// retargets a proven load out of RAM is caught only by the Go runtime's
// slice-bounds and divide checks. These tests corrupt exactly such proven
// sites and pin down the promised blast radius: the run (or the one context
// in a RunMany batch) dies with the matching Fault — TrapMemBounds or
// TrapDivZero — and nothing else is disturbed.

const safeMutationSrc = `
var a [8]int
func main() int {
	var s int = 0
	for (var i int = 0; i < 8; i = i + 1) { a[i] = i * 3 }
	for (var i int = 0; i < 8; i = i + 1) { s = s + a[i] }
	return s / 3
}`

// buildSafeCertified compiles the mutation program (speculation off, so
// every load is a plain trapping LOAD) and mints its graded certificate.
func buildSafeCertified(t *testing.T) (*isa.Image, *safecheck.SafeCertificate) {
	t.Helper()
	cfg := mach.Trace7()
	cfg.SpeculativeLoads = false
	img := build(t, safeMutationSrc, cfg)
	cert, err := safecheck.Certify(img)
	if err != nil {
		t.Fatalf("pre-mutation image should certify safe: %v", err)
	}
	return img, cert
}

// provenOp returns a proven-safe site of one of the given kinds — the kind
// of site whose guards the safe tier deletes — failing the test if the
// image has none (the mutation would silently test the still-guarded path).
func provenOp(t *testing.T, img *isa.Image, cert *safecheck.SafeCertificate, kinds ...ir.OpKind) *mach.Op {
	t.Helper()
	for w := range img.Instrs {
		for si := range img.Instrs[w].Slots {
			s := &img.Instrs[w].Slots[si]
			for _, k := range kinds {
				if s.Op.Kind == k && cert.SafeSite(w, s.Unit, s.Beat) {
					return &s.Op
				}
			}
		}
	}
	t.Fatalf("image has no proven site of kinds %v to corrupt", kinds)
	return nil
}

func runSafeOn(t *testing.T, img *isa.Image, cert *safecheck.SafeCertificate) error {
	t.Helper()
	m := New(img)
	if err := m.UseSafeCertificate(cert); err != nil {
		t.Fatal(err)
	}
	if !m.Safe() || !m.Fast() {
		t.Fatal("safety certificate accepted but machine not in safe+fast mode")
	}
	_, _, err := m.Run()
	return err
}

func TestSafeTierProvesSites(t *testing.T) {
	img, cert := buildSafeCertified(t)
	if p, total := cert.ProvenSites(); p == 0 {
		t.Fatalf("mutation program proves 0/%d sites; the safe-tier mutation tests would not exercise guard-free code", total)
	}
	if err := runSafeOn(t, img, cert); err != nil {
		t.Fatalf("sanity: unmutated safe run failed: %v", err)
	}
}

func TestSafeMutationLoadOutOfBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		off  int32
	}{{"high", 1 << 30}, {"negative", -(1 << 30)}} {
		t.Run(tc.name, func(t *testing.T) {
			img, cert := buildSafeCertified(t)
			o := provenOp(t, img, cert, ir.Load, ir.LoadSpec)
			o.B = mach.ImmArg(tc.off)
			wantTrap(t, runSafeOn(t, img, cert), TrapMemBounds)
		})
	}
}

func TestSafeMutationStoreOutOfBounds(t *testing.T) {
	img, cert := buildSafeCertified(t)
	o := provenOp(t, img, cert, ir.Store)
	o.B = mach.ImmArg(1 << 30)
	wantTrap(t, runSafeOn(t, img, cert), TrapMemBounds)
}

func TestSafeMutationDivZero(t *testing.T) {
	img, cert := buildSafeCertified(t)
	o := provenOp(t, img, cert, ir.Div, ir.Rem)
	o.B = mach.ImmArg(0)
	wantTrap(t, runSafeOn(t, img, cert), TrapDivZero)
}

// TestSafeMutationGuardsStayArmedElsewhere proves the safe tier deletes
// ONLY the per-site guards its bitmask covers: a wild branch — a condition
// no safety proof discharges — still hits the always-on PC bounds guard.
func TestSafeMutationGuardsStayArmedElsewhere(t *testing.T) {
	img, cert := buildSafeCertified(t)
	n := 0
	for i := range img.Instrs {
		for si := range img.Instrs[i].Slots {
			o := &img.Instrs[i].Slots[si].Op
			switch o.Kind {
			case mach.OpJmp, mach.OpBrT, mach.OpCall:
				o.Target = len(img.Instrs) + 1000
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("image has no branch to corrupt")
	}
	wantTrap(t, runSafeOn(t, img, cert), TrapBadPC)
}

// TestSafeMutationContainedInRunMany proves the blast radius of a
// guard-free fault is one context: in a time-shared batch, the mutated
// tenant retires with its Fault while its neighbor runs to a clean halt.
func TestSafeMutationContainedInRunMany(t *testing.T) {
	img, cert := buildSafeCertified(t)
	cfg := mach.Trace7()
	cfg.SpeculativeLoads = false
	clean := build(t, safeMutationSrc, cfg)

	o := provenOp(t, img, cert, ir.Load, ir.LoadSpec)
	o.B = mach.ImmArg(1 << 30)

	m := New(img)
	if err := m.ResetMany([]*isa.Image{img, clean}); err != nil {
		t.Fatal(err)
	}
	if err := m.UseSafeCertificate(cert); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatalf("whole-machine RunMany error: %v", err)
	}
	wantTrap(t, rs[0].Err, TrapMemBounds)
	if rs[1].Err != nil {
		t.Fatalf("clean neighbor context disturbed: %v", rs[1].Err)
	}
	if rs[1].Exit != 28 {
		t.Fatalf("clean neighbor exit = %d, want 28", rs[1].Exit)
	}
}

// TestSafeCertificateRejectsForeignImage proves a safety certificate cannot
// be laundered across images.
func TestSafeCertificateRejectsForeignImage(t *testing.T) {
	img1, cert := buildSafeCertified(t)
	_ = img1
	cfg := mach.Trace7()
	cfg.SpeculativeLoads = false
	img2 := build(t, safeMutationSrc, cfg)
	m := New(img2)
	if err := m.UseSafeCertificate(cert); err == nil {
		t.Fatal("safety certificate for a different image was accepted")
	}
	if m.Safe() || m.Fast() {
		t.Fatal("rejected safety certificate left the machine armed")
	}
}
