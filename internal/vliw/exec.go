package vliw

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// latencies mirrors the scheduler's timing model; the two must agree or the
// interlock-free machine reads stale registers.
func latency(cfg mach.Config, o *mach.Op) int {
	switch o.Kind {
	case ir.Load, ir.LoadSpec:
		return cfg.LatLoad
	case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return cfg.LatFAdd
	case ir.FMul:
		return cfg.LatFMul
	case ir.FDiv:
		return cfg.LatFDiv
	case ir.Mul:
		return cfg.LatIMul
	case ir.Div, ir.Rem:
		return cfg.LatIDiv
	case ir.ConstF:
		return 2
	case ir.Mov, mach.OpMovSF:
		if o.Type == ir.F64 {
			return cfg.LatMove * 2
		}
		return cfg.LatMove
	case ir.Select:
		if o.Type == ir.F64 {
			return 2
		}
		return 1
	}
	return cfg.LatIALU
}

// execBranch handles branch-unit ops. It returns the branch target if the
// op wants control (−1 otherwise) and the halt value for OpHalt.
func (m *Machine) execBranch(o *mach.Op) (int, *int32, error) {
	switch o.Kind {
	case mach.OpBrT:
		m.Stats.Branches++
		if m.readArg(o.A) != 0 {
			return o.Target, nil, nil
		}
		return -1, nil, nil
	case mach.OpJmp:
		m.Stats.Branches++
		return o.Target, nil, nil
	case mach.OpCall:
		m.Stats.Branches++
		// link register receives the return address
		m.enqueue(mach.RegLR, uint64(uint32(m.pc+1)), 1)
		return o.Target, nil, nil
	case mach.OpJmpR:
		m.Stats.Branches++
		return int(int32(uint32(m.readArg(o.A)))), nil, nil
	case mach.OpHalt:
		v := int32(m.iregs[mach.RegRVI.Board][mach.RegRVI.Idx])
		return -1, &v, nil
	case mach.OpSyscall:
		m.Stats.Syscalls++
		switch o.Sym {
		case "print_i":
			fmt.Fprintf(&m.out, "%d\n", int32(m.iregs[0][mach.ArgIBase]))
		case "print_f":
			fmt.Fprintf(&m.out, "%g\n", math.Float64frombits(m.fregs[0][mach.ArgFBase]))
		default:
			return -1, nil, m.fault(TrapSyscall, "unknown syscall %q", o.Sym)
		}
		return -1, nil, nil
	}
	return -1, nil, m.fault(TrapBadOp, "%s on branch unit", mach.OpName(o.Kind))
}

// iBits, fBits, and bBits pack result values for the register-write
// pipeline. They replace the per-op seti/setf/setb closures the old
// dispatch allocated on every operation: execOp now writes its result with
// one direct enqueue per case.
func iBits(v int32) uint64   { return uint64(uint32(v)) }
func fBits(v float64) uint64 { return math.Float64bits(v) }
func bBits(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// execOp executes one ALU/F/memory operation, enqueuing its register write
// at issue+lat. The latency is precomputed by the plan (plan.go) so the
// timing model is evaluated once per image, not once per executed op.
func (m *Machine) execOp(o *mach.Op, lat int) error {
	switch o.Kind {
	case ir.Nop:
	case ir.ConstI:
		m.enqueue(o.Dst, iBits(m.readI(o.A)), lat)
	case ir.ConstF:
		m.enqueue(o.Dst, fBits(o.FImm), lat)
	case ir.Mov, mach.OpMovSF:
		m.enqueue(o.Dst, m.readArg(o.A), lat)
	case ir.Add:
		m.enqueue(o.Dst, iBits(m.readI(o.A)+m.readI(o.B)), lat)
	case ir.Sub:
		m.enqueue(o.Dst, iBits(m.readI(o.A)-m.readI(o.B)), lat)
	case ir.Mul:
		m.enqueue(o.Dst, iBits(m.readI(o.A)*m.readI(o.B)), lat)
	case ir.Div:
		d := m.readI(o.B)
		if d == 0 {
			return m.fault(TrapDivZero, "integer divide by zero")
		}
		m.enqueue(o.Dst, iBits(m.readI(o.A)/d), lat)
	case ir.Rem:
		d := m.readI(o.B)
		if d == 0 {
			return m.fault(TrapDivZero, "integer remainder by zero")
		}
		m.enqueue(o.Dst, iBits(m.readI(o.A)%d), lat)
	case ir.And:
		m.enqueue(o.Dst, iBits(m.readI(o.A)&m.readI(o.B)), lat)
	case ir.Or:
		m.enqueue(o.Dst, iBits(m.readI(o.A)|m.readI(o.B)), lat)
	case ir.Xor:
		m.enqueue(o.Dst, iBits(m.readI(o.A)^m.readI(o.B)), lat)
	case ir.Shl:
		m.enqueue(o.Dst, iBits(m.readI(o.A)<<(uint32(m.readI(o.B))&31)), lat)
	case ir.Shr:
		m.enqueue(o.Dst, iBits(int32(uint32(m.readI(o.A))>>(uint32(m.readI(o.B))&31))), lat)
	case ir.Sra:
		m.enqueue(o.Dst, iBits(m.readI(o.A)>>(uint32(m.readI(o.B))&31)), lat)
	case ir.Neg:
		m.enqueue(o.Dst, iBits(-m.readI(o.A)), lat)
	case ir.Not:
		m.enqueue(o.Dst, iBits(^m.readI(o.A)), lat)
	case ir.CmpEQ:
		m.enqueue(o.Dst, bBits(m.readI(o.A) == m.readI(o.B)), lat)
	case ir.CmpNE:
		m.enqueue(o.Dst, bBits(m.readI(o.A) != m.readI(o.B)), lat)
	case ir.CmpLT:
		m.enqueue(o.Dst, bBits(m.readI(o.A) < m.readI(o.B)), lat)
	case ir.CmpLE:
		m.enqueue(o.Dst, bBits(m.readI(o.A) <= m.readI(o.B)), lat)
	case ir.CmpGT:
		m.enqueue(o.Dst, bBits(m.readI(o.A) > m.readI(o.B)), lat)
	case ir.CmpGE:
		m.enqueue(o.Dst, bBits(m.readI(o.A) >= m.readI(o.B)), lat)
	case ir.FAdd:
		m.Stats.FloatOps++
		m.enqueue(o.Dst, fBits(m.readF(o.A)+m.readF(o.B)), lat)
	case ir.FSub:
		m.Stats.FloatOps++
		m.enqueue(o.Dst, fBits(m.readF(o.A)-m.readF(o.B)), lat)
	case ir.FMul:
		m.Stats.FloatOps++
		m.enqueue(o.Dst, fBits(m.readF(o.A)*m.readF(o.B)), lat)
	case ir.FDiv:
		m.Stats.FloatOps++
		// fast mode: NaN/Inf propagate, no trap (§7)
		m.enqueue(o.Dst, fBits(m.readF(o.A)/m.readF(o.B)), lat)
	case ir.FNeg:
		m.enqueue(o.Dst, fBits(-m.readF(o.A)), lat)
	case ir.FCmpEQ:
		m.enqueue(o.Dst, bBits(m.readF(o.A) == m.readF(o.B)), lat)
	case ir.FCmpNE:
		m.enqueue(o.Dst, bBits(m.readF(o.A) != m.readF(o.B)), lat)
	case ir.FCmpLT:
		m.enqueue(o.Dst, bBits(m.readF(o.A) < m.readF(o.B)), lat)
	case ir.FCmpLE:
		m.enqueue(o.Dst, bBits(m.readF(o.A) <= m.readF(o.B)), lat)
	case ir.FCmpGT:
		m.enqueue(o.Dst, bBits(m.readF(o.A) > m.readF(o.B)), lat)
	case ir.FCmpGE:
		m.enqueue(o.Dst, bBits(m.readF(o.A) >= m.readF(o.B)), lat)
	case ir.ItoF:
		m.enqueue(o.Dst, fBits(float64(m.readI(o.A))), lat)
	case ir.FtoI:
		v := m.readF(o.A)
		if math.IsNaN(v) || v > math.MaxInt32 || v < math.MinInt32 {
			m.enqueue(o.Dst, iBits(int32(ir.FunnyI32)), lat)
		} else {
			m.enqueue(o.Dst, iBits(int32(v)), lat)
		}
	case ir.Select:
		// condition from the branch bank (A); B = then, C = else
		if m.readArg(o.A) != 0 {
			m.enqueue(o.Dst, m.readArg(o.B), lat)
		} else {
			m.enqueue(o.Dst, m.readArg(o.C), lat)
		}
	case ir.Load, ir.LoadSpec:
		return m.execLoad(o, lat)
	case ir.Store:
		return m.execStore(o)
	default:
		return m.fault(TrapBadOp, "cannot execute %s", mach.OpName(o.Kind))
	}
	return nil
}

func (m *Machine) execLoad(o *mach.Op, lat int) error {
	m.Stats.MemRefs++
	m.Stats.Loads++
	ea, _ := m.eaOf(o)
	size := o.Type.Size()
	if o.Kind == ir.LoadSpec {
		m.Stats.SpecLoads++
	}
	if ea < ir.GlobalBase || ea+size > int64(len(m.Mem)) || ea%size != 0 {
		if o.Kind == ir.LoadSpec {
			// §7: no valid translation — execution continues; the target
			// register is loaded with a "funny number" to help catch bugs
			m.Stats.SpecFaults++
			if o.Type == ir.I32 {
				funny := int32(ir.FunnyI32)
				m.enqueue(o.Dst, uint64(uint32(funny)), lat)
			} else {
				m.enqueue(o.Dst, math.Float64bits(math.NaN()), lat)
			}
			return nil
		}
		if ea%size != 0 {
			return m.fault(TrapUnaligned, "unaligned %d-byte load %#x", size, ea)
		}
		return m.fault(TrapMemBounds, "bus error: load %#x", ea)
	}
	m.touchBank(ea)
	var v uint64
	if o.Type == ir.I32 {
		v = uint64(binary.LittleEndian.Uint32(m.Mem[ea:]))
	} else {
		v = binary.LittleEndian.Uint64(m.Mem[ea:])
	}
	m.enqueue(o.Dst, v, lat)
	return nil
}

func (m *Machine) execStore(o *mach.Op) error {
	m.Stats.MemRefs++
	m.Stats.Stores++
	ea, _ := m.eaOf(o)
	size := o.Type.Size()
	if ea < ir.GlobalBase || ea+size > int64(len(m.Mem)) {
		return m.fault(TrapMemBounds, "bus error: store %#x", ea)
	}
	if ea%size != 0 {
		return m.fault(TrapUnaligned, "unaligned %d-byte store %#x", size, ea)
	}
	m.touchBank(ea)
	v := m.readArg(o.C) // data comes from the store file (§6.2)
	if o.Type == ir.I32 {
		v = uint64(uint32(v))
		binary.LittleEndian.PutUint32(m.Mem[ea:], uint32(v))
	} else {
		binary.LittleEndian.PutUint64(m.Mem[ea:], v)
	}
	if m.WatchStore != nil {
		m.WatchStore(ea, v)
	}
	return nil
}

// touchBank marks the reference's RAM bank busy for BankBusyBeats.
func (m *Machine) touchBank(ea int64) {
	ctrl, bank := m.Cfg.BankOf(ea)
	id := ctrl*8 + bank
	m.bankBusy[id] = m.beat + mach.StageBank + int64(m.Cfg.BankBusyBeats)
}

// The §6 per-beat resource check (ALU slot uniqueness, register-file port
// limits, bus counts, one reference per I board) depends only on the
// instruction word, so it is precomputed per word by the plan pre-decoder
// (staticBeatViolation in plan.go); the checked interpreter consults the
// stored verdict each beat and the certified fast path skips it.
