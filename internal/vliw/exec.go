package vliw

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// latencies mirrors the scheduler's timing model; the two must agree or the
// interlock-free machine reads stale registers.
func latency(cfg mach.Config, o *mach.Op) int {
	switch o.Kind {
	case ir.Load, ir.LoadSpec:
		return cfg.LatLoad
	case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return cfg.LatFAdd
	case ir.FMul:
		return cfg.LatFMul
	case ir.FDiv:
		return cfg.LatFDiv
	case ir.Mul:
		return cfg.LatIMul
	case ir.Div, ir.Rem:
		return cfg.LatIDiv
	case ir.ConstF:
		return 2
	case ir.Mov, mach.OpMovSF:
		if o.Type == ir.F64 {
			return cfg.LatMove * 2
		}
		return cfg.LatMove
	case ir.Select:
		if o.Type == ir.F64 {
			return 2
		}
		return 1
	}
	return cfg.LatIALU
}

// execBranch handles branch-unit ops. It returns the branch target if the
// op wants control (−1 otherwise) and the halt value for OpHalt.
func (m *Machine) execBranch(o *mach.Op) (int, *int32, error) {
	c := m.cur
	switch o.Kind {
	case mach.OpBrT:
		m.Stats.Branches++
		if c.readArg(o.A) != 0 {
			return o.Target, nil, nil
		}
		return -1, nil, nil
	case mach.OpJmp:
		m.Stats.Branches++
		return o.Target, nil, nil
	case mach.OpCall:
		m.Stats.Branches++
		// link register receives the return address
		c.enqueue(mach.RegLR, uint64(uint32(c.pc+1)), 1)
		return o.Target, nil, nil
	case mach.OpJmpR:
		m.Stats.Branches++
		return int(int32(uint32(c.readArg(o.A)))), nil, nil
	case mach.OpHalt:
		v := int32(c.iregs[mach.RegRVI.Board][mach.RegRVI.Idx])
		return -1, &v, nil
	case mach.OpSyscall:
		m.Stats.Syscalls++
		switch o.Sym {
		case "print_i":
			fmt.Fprintf(&c.out, "%d\n", int32(c.iregs[0][mach.ArgIBase]))
		case "print_f":
			fmt.Fprintf(&c.out, "%g\n", math.Float64frombits(c.fregs[0][mach.ArgFBase]))
		default:
			return -1, nil, m.fault(c, TrapSyscall, "unknown syscall %q", o.Sym)
		}
		return -1, nil, nil
	}
	return -1, nil, m.fault(c, TrapBadOp, "%s on branch unit", mach.OpName(o.Kind))
}

// iBits, fBits, and bBits pack result values for the register-write
// pipeline. They replace the per-op seti/setf/setb closures the old
// dispatch allocated on every operation: execOp now writes its result with
// one direct enqueue per case.
func iBits(v int32) uint64   { return uint64(uint32(v)) }
func fBits(v float64) uint64 { return math.Float64bits(v) }
func bBits(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// execOp executes one ALU/F/memory operation, enqueuing its register write
// at issue+lat. The latency is precomputed by the plan (plan.go) so the
// timing model is evaluated once per image, not once per executed op. The
// dispatch key is the plan's kind, not the op's: the safe-tier plan rewrites
// proven sites to the opSafe* synthetic opcodes below, which execute the
// identical semantics — same stats, same bank traffic, same write pipeline —
// minus the guard comparisons a SafetyCertificate discharged statically.
func (m *Machine) execOp(p *planOp) error {
	o, lat := p.op, p.lat
	c := m.cur
	switch p.kind {
	case ir.Nop:
	case ir.ConstI:
		c.enqueue(o.Dst, iBits(c.readI(o.A)), lat)
	case ir.ConstF:
		c.enqueue(o.Dst, fBits(o.FImm), lat)
	case ir.Mov, mach.OpMovSF:
		c.enqueue(o.Dst, c.readArg(o.A), lat)
	case ir.Add:
		c.enqueue(o.Dst, iBits(c.readI(o.A)+c.readI(o.B)), lat)
	case ir.Sub:
		c.enqueue(o.Dst, iBits(c.readI(o.A)-c.readI(o.B)), lat)
	case ir.Mul:
		c.enqueue(o.Dst, iBits(c.readI(o.A)*c.readI(o.B)), lat)
	case ir.Div:
		d := c.readI(o.B)
		if d == 0 {
			return m.fault(c, TrapDivZero, "integer divide by zero")
		}
		c.enqueue(o.Dst, iBits(c.readI(o.A)/d), lat)
	case ir.Rem:
		d := c.readI(o.B)
		if d == 0 {
			return m.fault(c, TrapDivZero, "integer remainder by zero")
		}
		c.enqueue(o.Dst, iBits(c.readI(o.A)%d), lat)
	case ir.And:
		c.enqueue(o.Dst, iBits(c.readI(o.A)&c.readI(o.B)), lat)
	case ir.Or:
		c.enqueue(o.Dst, iBits(c.readI(o.A)|c.readI(o.B)), lat)
	case ir.Xor:
		c.enqueue(o.Dst, iBits(c.readI(o.A)^c.readI(o.B)), lat)
	case ir.Shl:
		c.enqueue(o.Dst, iBits(c.readI(o.A)<<(uint32(c.readI(o.B))&31)), lat)
	case ir.Shr:
		c.enqueue(o.Dst, iBits(int32(uint32(c.readI(o.A))>>(uint32(c.readI(o.B))&31))), lat)
	case ir.Sra:
		c.enqueue(o.Dst, iBits(c.readI(o.A)>>(uint32(c.readI(o.B))&31)), lat)
	case ir.Neg:
		c.enqueue(o.Dst, iBits(-c.readI(o.A)), lat)
	case ir.Not:
		c.enqueue(o.Dst, iBits(^c.readI(o.A)), lat)
	case ir.CmpEQ:
		c.enqueue(o.Dst, bBits(c.readI(o.A) == c.readI(o.B)), lat)
	case ir.CmpNE:
		c.enqueue(o.Dst, bBits(c.readI(o.A) != c.readI(o.B)), lat)
	case ir.CmpLT:
		c.enqueue(o.Dst, bBits(c.readI(o.A) < c.readI(o.B)), lat)
	case ir.CmpLE:
		c.enqueue(o.Dst, bBits(c.readI(o.A) <= c.readI(o.B)), lat)
	case ir.CmpGT:
		c.enqueue(o.Dst, bBits(c.readI(o.A) > c.readI(o.B)), lat)
	case ir.CmpGE:
		c.enqueue(o.Dst, bBits(c.readI(o.A) >= c.readI(o.B)), lat)
	case ir.FAdd:
		m.Stats.FloatOps++
		c.enqueue(o.Dst, fBits(c.readF(o.A)+c.readF(o.B)), lat)
	case ir.FSub:
		m.Stats.FloatOps++
		c.enqueue(o.Dst, fBits(c.readF(o.A)-c.readF(o.B)), lat)
	case ir.FMul:
		m.Stats.FloatOps++
		c.enqueue(o.Dst, fBits(c.readF(o.A)*c.readF(o.B)), lat)
	case ir.FDiv:
		m.Stats.FloatOps++
		// fast mode: NaN/Inf propagate, no trap (§7)
		c.enqueue(o.Dst, fBits(c.readF(o.A)/c.readF(o.B)), lat)
	case ir.FNeg:
		c.enqueue(o.Dst, fBits(-c.readF(o.A)), lat)
	case ir.FCmpEQ:
		c.enqueue(o.Dst, bBits(c.readF(o.A) == c.readF(o.B)), lat)
	case ir.FCmpNE:
		c.enqueue(o.Dst, bBits(c.readF(o.A) != c.readF(o.B)), lat)
	case ir.FCmpLT:
		c.enqueue(o.Dst, bBits(c.readF(o.A) < c.readF(o.B)), lat)
	case ir.FCmpLE:
		c.enqueue(o.Dst, bBits(c.readF(o.A) <= c.readF(o.B)), lat)
	case ir.FCmpGT:
		c.enqueue(o.Dst, bBits(c.readF(o.A) > c.readF(o.B)), lat)
	case ir.FCmpGE:
		c.enqueue(o.Dst, bBits(c.readF(o.A) >= c.readF(o.B)), lat)
	case ir.ItoF:
		c.enqueue(o.Dst, fBits(float64(c.readI(o.A))), lat)
	case ir.FtoI:
		v := c.readF(o.A)
		if math.IsNaN(v) || v > math.MaxInt32 || v < math.MinInt32 {
			c.enqueue(o.Dst, iBits(int32(ir.FunnyI32)), lat)
		} else {
			c.enqueue(o.Dst, iBits(int32(v)), lat)
		}
	case ir.Select:
		// condition from the branch bank (A); B = then, C = else
		if c.readArg(o.A) != 0 {
			c.enqueue(o.Dst, c.readArg(o.B), lat)
		} else {
			c.enqueue(o.Dst, c.readArg(o.C), lat)
		}
	case ir.Load, ir.LoadSpec:
		return m.execLoad(o, lat)
	case ir.Store:
		return m.execStore(o)

	// Guard-free variants, reachable only through a safe-tier plan
	// (buildSafePlan) armed by UseSafeCertificate. Each mirrors its checked
	// twin exactly — counters, bank touch, store watch, write enqueue — with
	// the bounds/alignment/zero-divisor guards deleted: the certificate
	// proves they can never fire. If the image was mutated after
	// certification, the Go runtime's own slice-bounds and divide checks are
	// the backstop; the safe run loops convert those panics back into the
	// matching Fault (see safeTierFault).
	case opSafeLoadI32:
		m.Stats.MemRefs++
		m.Stats.Loads++
		ea := int64(c.readI(o.A)) + int64(c.readI(o.B))
		m.touchBank(ea)
		c.enqueue(o.Dst, uint64(binary.LittleEndian.Uint32(c.mem[ea:])), lat)
	case opSafeLoadF64:
		m.Stats.MemRefs++
		m.Stats.Loads++
		ea := int64(c.readI(o.A)) + int64(c.readI(o.B))
		m.touchBank(ea)
		c.enqueue(o.Dst, binary.LittleEndian.Uint64(c.mem[ea:]), lat)
	case opSafeSpecI32:
		m.Stats.MemRefs++
		m.Stats.Loads++
		m.Stats.SpecLoads++
		ea := int64(c.readI(o.A)) + int64(c.readI(o.B))
		m.touchBank(ea)
		c.enqueue(o.Dst, uint64(binary.LittleEndian.Uint32(c.mem[ea:])), lat)
	case opSafeSpecF64:
		m.Stats.MemRefs++
		m.Stats.Loads++
		m.Stats.SpecLoads++
		ea := int64(c.readI(o.A)) + int64(c.readI(o.B))
		m.touchBank(ea)
		c.enqueue(o.Dst, binary.LittleEndian.Uint64(c.mem[ea:]), lat)
	case opSafeStoreI32:
		m.Stats.MemRefs++
		m.Stats.Stores++
		ea := int64(c.readI(o.A)) + int64(c.readI(o.B))
		m.touchBank(ea)
		v := uint64(uint32(c.readArg(o.C)))
		binary.LittleEndian.PutUint32(c.mem[ea:], uint32(v))
		if m.WatchStore != nil {
			m.WatchStore(ea, v)
		}
	case opSafeStoreF64:
		m.Stats.MemRefs++
		m.Stats.Stores++
		ea := int64(c.readI(o.A)) + int64(c.readI(o.B))
		m.touchBank(ea)
		v := c.readArg(o.C)
		binary.LittleEndian.PutUint64(c.mem[ea:], v)
		if m.WatchStore != nil {
			m.WatchStore(ea, v)
		}
	case opSafeDiv:
		c.enqueue(o.Dst, iBits(c.readI(o.A)/c.readI(o.B)), lat)
	case opSafeRem:
		c.enqueue(o.Dst, iBits(c.readI(o.A)%c.readI(o.B)), lat)

	default:
		return m.fault(c, TrapBadOp, "cannot execute %s", mach.OpName(o.Kind))
	}
	return nil
}

func (m *Machine) execLoad(o *mach.Op, lat int) error {
	c := m.cur
	m.Stats.MemRefs++
	m.Stats.Loads++
	ea, _ := c.eaOf(o)
	size := o.Type.Size()
	if o.Kind == ir.LoadSpec {
		m.Stats.SpecLoads++
	}
	if ea < ir.GlobalBase || ea+size > int64(len(c.mem)) || ea%size != 0 {
		if o.Kind == ir.LoadSpec {
			// §7: no valid translation — execution continues; the target
			// register is loaded with a "funny number" to help catch bugs
			m.Stats.SpecFaults++
			if o.Type == ir.I32 {
				funny := int32(ir.FunnyI32)
				c.enqueue(o.Dst, uint64(uint32(funny)), lat)
			} else {
				c.enqueue(o.Dst, math.Float64bits(math.NaN()), lat)
			}
			return nil
		}
		if ea%size != 0 {
			return m.fault(c, TrapUnaligned, "unaligned %d-byte load %#x", size, ea)
		}
		return m.fault(c, TrapMemBounds, "bus error: load %#x", ea)
	}
	m.touchBank(ea)
	var v uint64
	if o.Type == ir.I32 {
		v = uint64(binary.LittleEndian.Uint32(c.mem[ea:]))
	} else {
		v = binary.LittleEndian.Uint64(c.mem[ea:])
	}
	c.enqueue(o.Dst, v, lat)
	return nil
}

func (m *Machine) execStore(o *mach.Op) error {
	c := m.cur
	m.Stats.MemRefs++
	m.Stats.Stores++
	ea, _ := c.eaOf(o)
	size := o.Type.Size()
	if ea < ir.GlobalBase || ea+size > int64(len(c.mem)) {
		return m.fault(c, TrapMemBounds, "bus error: store %#x", ea)
	}
	if ea%size != 0 {
		return m.fault(c, TrapUnaligned, "unaligned %d-byte store %#x", size, ea)
	}
	m.touchBank(ea)
	v := c.readArg(o.C) // data comes from the store file (§6.2)
	if o.Type == ir.I32 {
		v = uint64(uint32(v))
		binary.LittleEndian.PutUint32(c.mem[ea:], uint32(v))
	} else {
		binary.LittleEndian.PutUint64(c.mem[ea:], v)
	}
	if m.WatchStore != nil {
		m.WatchStore(ea, v)
	}
	return nil
}

// touchBank marks the reference's RAM bank busy for BankBusyBeats on the
// current context's timeline.
func (m *Machine) touchBank(ea int64) {
	c := m.cur
	ctrl, bank := m.Cfg.BankOf(ea)
	id := ctrl*8 + bank
	c.bankBusy[id] = c.beat + mach.StageBank + int64(m.Cfg.BankBusyBeats)
}

// The §6 per-beat resource check (ALU slot uniqueness, register-file port
// limits, bus counts, one reference per I board) depends only on the
// instruction word, so it is precomputed per word by the plan pre-decoder
// (staticBeatViolation in plan.go); the checked interpreter consults the
// stored verdict each beat and the certified fast path skips it.
