package vliw

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// latencies mirrors the scheduler's timing model; the two must agree or the
// interlock-free machine reads stale registers.
func latency(cfg mach.Config, o *mach.Op) int {
	switch o.Kind {
	case ir.Load, ir.LoadSpec:
		return cfg.LatLoad
	case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return cfg.LatFAdd
	case ir.FMul:
		return cfg.LatFMul
	case ir.FDiv:
		return cfg.LatFDiv
	case ir.Mul:
		return 4
	case ir.Div, ir.Rem:
		return 30
	case ir.ConstF:
		return 2
	case ir.Mov, mach.OpMovSF:
		if o.Type == ir.F64 {
			return cfg.LatMove * 2
		}
		return cfg.LatMove
	case ir.Select:
		if o.Type == ir.F64 {
			return 2
		}
		return 1
	}
	return cfg.LatIALU
}

// execBranch handles branch-unit ops. It returns the branch target if the
// op wants control (−1 otherwise) and the halt value for OpHalt.
func (m *Machine) execBranch(o *mach.Op) (int, *int32, error) {
	switch o.Kind {
	case mach.OpBrT:
		m.Stats.Branches++
		if m.readArg(o.A) != 0 {
			return o.Target, nil, nil
		}
		return -1, nil, nil
	case mach.OpJmp:
		m.Stats.Branches++
		return o.Target, nil, nil
	case mach.OpCall:
		m.Stats.Branches++
		// link register receives the return address
		m.enqueue(mach.RegLR, uint64(uint32(m.pc+1)), 1)
		return o.Target, nil, nil
	case mach.OpJmpR:
		m.Stats.Branches++
		return int(int32(uint32(m.readArg(o.A)))), nil, nil
	case mach.OpHalt:
		v := int32(m.iregs[mach.RegRVI.Board][mach.RegRVI.Idx])
		return -1, &v, nil
	case mach.OpSyscall:
		m.Stats.Syscalls++
		switch o.Sym {
		case "print_i":
			fmt.Fprintf(&m.out, "%d\n", int32(m.iregs[0][mach.ArgIBase]))
		case "print_f":
			fmt.Fprintf(&m.out, "%g\n", math.Float64frombits(m.fregs[0][mach.ArgFBase]))
		default:
			return -1, nil, m.fault(TrapSyscall, "unknown syscall %q", o.Sym)
		}
		return -1, nil, nil
	}
	return -1, nil, m.fault(TrapBadOp, "%s on branch unit", mach.OpName(o.Kind))
}

// execOp executes one ALU/F/memory operation, enqueuing its register write
// at issue+latency.
func (m *Machine) execOp(o *mach.Op) error {
	cfg := m.Cfg
	lat := latency(cfg, o)
	seti := func(v int32) { m.enqueue(o.Dst, uint64(uint32(v)), lat) }
	setf := func(v float64) { m.enqueue(o.Dst, math.Float64bits(v), lat) }
	setb := func(v bool) {
		if v {
			seti(1)
		} else {
			seti(0)
		}
	}
	a := func() int32 { return m.readI(o.A) }
	b := func() int32 { return m.readI(o.B) }
	fa := func() float64 { return m.readF(o.A) }
	fb := func() float64 { return m.readF(o.B) }

	switch o.Kind {
	case ir.Nop:
	case ir.ConstI:
		seti(m.readI(o.A))
	case ir.ConstF:
		setf(o.FImm)
	case ir.Mov, mach.OpMovSF:
		m.enqueue(o.Dst, m.readArg(o.A), lat)
	case ir.Add:
		seti(a() + b())
	case ir.Sub:
		seti(a() - b())
	case ir.Mul:
		seti(a() * b())
	case ir.Div:
		d := b()
		if d == 0 {
			return m.fault(TrapDivZero, "integer divide by zero")
		}
		seti(a() / d)
	case ir.Rem:
		d := b()
		if d == 0 {
			return m.fault(TrapDivZero, "integer remainder by zero")
		}
		seti(a() % d)
	case ir.And:
		seti(a() & b())
	case ir.Or:
		seti(a() | b())
	case ir.Xor:
		seti(a() ^ b())
	case ir.Shl:
		seti(a() << (uint32(b()) & 31))
	case ir.Shr:
		seti(int32(uint32(a()) >> (uint32(b()) & 31)))
	case ir.Sra:
		seti(a() >> (uint32(b()) & 31))
	case ir.Neg:
		seti(-a())
	case ir.Not:
		seti(^a())
	case ir.CmpEQ:
		setb(a() == b())
	case ir.CmpNE:
		setb(a() != b())
	case ir.CmpLT:
		setb(a() < b())
	case ir.CmpLE:
		setb(a() <= b())
	case ir.CmpGT:
		setb(a() > b())
	case ir.CmpGE:
		setb(a() >= b())
	case ir.FAdd:
		m.Stats.FloatOps++
		setf(fa() + fb())
	case ir.FSub:
		m.Stats.FloatOps++
		setf(fa() - fb())
	case ir.FMul:
		m.Stats.FloatOps++
		setf(fa() * fb())
	case ir.FDiv:
		m.Stats.FloatOps++
		setf(fa() / fb()) // fast mode: NaN/Inf propagate, no trap (§7)
	case ir.FNeg:
		setf(-fa())
	case ir.FCmpEQ:
		setb(fa() == fb())
	case ir.FCmpNE:
		setb(fa() != fb())
	case ir.FCmpLT:
		setb(fa() < fb())
	case ir.FCmpLE:
		setb(fa() <= fb())
	case ir.FCmpGT:
		setb(fa() > fb())
	case ir.FCmpGE:
		setb(fa() >= fb())
	case ir.ItoF:
		setf(float64(a()))
	case ir.FtoI:
		v := fa()
		if math.IsNaN(v) || v > math.MaxInt32 || v < math.MinInt32 {
			seti(int32(ir.FunnyI32))
		} else {
			seti(int32(v))
		}
	case ir.Select:
		// condition from the branch bank (A); B = then, C = else
		if m.readArg(o.A) != 0 {
			m.enqueue(o.Dst, m.readArg(o.B), lat)
		} else {
			m.enqueue(o.Dst, m.readArg(o.C), lat)
		}
	case ir.Load, ir.LoadSpec:
		return m.execLoad(o, lat)
	case ir.Store:
		return m.execStore(o)
	default:
		return m.fault(TrapBadOp, "cannot execute %s", mach.OpName(o.Kind))
	}
	return nil
}

func (m *Machine) execLoad(o *mach.Op, lat int) error {
	m.Stats.MemRefs++
	m.Stats.Loads++
	ea, _ := m.eaOf(o)
	size := o.Type.Size()
	if o.Kind == ir.LoadSpec {
		m.Stats.SpecLoads++
	}
	if ea < ir.GlobalBase || ea+size > int64(len(m.Mem)) || ea%size != 0 {
		if o.Kind == ir.LoadSpec {
			// §7: no valid translation — execution continues; the target
			// register is loaded with a "funny number" to help catch bugs
			m.Stats.SpecFaults++
			if o.Type == ir.I32 {
				funny := int32(ir.FunnyI32)
				m.enqueue(o.Dst, uint64(uint32(funny)), lat)
			} else {
				m.enqueue(o.Dst, math.Float64bits(math.NaN()), lat)
			}
			return nil
		}
		if ea%size != 0 {
			return m.fault(TrapUnaligned, "unaligned %d-byte load %#x", size, ea)
		}
		return m.fault(TrapMemBounds, "bus error: load %#x", ea)
	}
	m.touchBank(ea)
	var v uint64
	if o.Type == ir.I32 {
		v = uint64(binary.LittleEndian.Uint32(m.Mem[ea:]))
	} else {
		v = binary.LittleEndian.Uint64(m.Mem[ea:])
	}
	m.enqueue(o.Dst, v, lat)
	return nil
}

func (m *Machine) execStore(o *mach.Op) error {
	m.Stats.MemRefs++
	m.Stats.Stores++
	ea, _ := m.eaOf(o)
	size := o.Type.Size()
	if ea < ir.GlobalBase || ea+size > int64(len(m.Mem)) {
		return m.fault(TrapMemBounds, "bus error: store %#x", ea)
	}
	if ea%size != 0 {
		return m.fault(TrapUnaligned, "unaligned %d-byte store %#x", size, ea)
	}
	m.touchBank(ea)
	v := m.readArg(o.C) // data comes from the store file (§6.2)
	if o.Type == ir.I32 {
		v = uint64(uint32(v))
		binary.LittleEndian.PutUint32(m.Mem[ea:], uint32(v))
	} else {
		binary.LittleEndian.PutUint64(m.Mem[ea:], v)
	}
	if m.WatchStore != nil {
		m.WatchStore(ea, v)
	}
	return nil
}

// touchBank marks the reference's RAM bank busy for BankBusyBeats.
func (m *Machine) touchBank(ea int64) {
	ctrl, bank := m.Cfg.BankOf(ea)
	id := ctrl*8 + bank
	m.bankBusy[id] = m.beat + mach.StageBank + int64(m.Cfg.BankBusyBeats)
}

// checkBeatResources verifies the §6 static resource plan for one beat of
// the instruction: ALU slot uniqueness, register-file port limits, bus
// counts, and the one-reference-per-I-board rule. Any overflow is a
// compiler bug surfacing as a hardware fault.
func (m *Machine) checkBeatResources(in *mach.Instr, beat uint8) error {
	reads := map[uint8]int{}
	memPerBoard := map[uint8]int{}
	pa := 0
	units := map[mach.Unit]bool{}
	for si := range in.Slots {
		s := &in.Slots[si]
		if s.Beat != beat {
			continue
		}
		key := s.Unit
		if s.Unit.Kind == mach.UIALU {
			// distinct (unit, beat) handled by Beat filter
		}
		if units[key] {
			return m.fault(TrapResource, "two ops on unit %s in one beat", s.Unit)
		}
		units[key] = true
		for _, a := range []mach.Arg{s.Op.A, s.Op.B, s.Op.C} {
			if !a.IsImm && a.Reg.Valid() {
				reads[s.Unit.Pair]++
			}
		}
		if isMemOp(s.Op.Kind) {
			memPerBoard[s.Unit.Pair]++
			pa++
		}
	}
	for b, n := range reads {
		if n > m.Cfg.RFReadPorts {
			return m.fault(TrapResource, "board %d: %d register reads in one beat (max %d)", b, n, m.Cfg.RFReadPorts)
		}
	}
	for b, n := range memPerBoard {
		if n > 1 {
			return m.fault(TrapResource, "board %d initiated %d memory references in one beat", b, n)
		}
	}
	if pa > m.Cfg.PABuses {
		return m.fault(TrapResource, "%d physical-address bus uses in one beat (max %d)", pa, m.Cfg.PABuses)
	}
	return nil
}
