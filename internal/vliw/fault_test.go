package vliw

import (
	"math"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// TestTrapDivZeroTaxonomy checks that a runtime divide-by-zero surfaces as a
// structured Fault carrying the trap code, beat, and faulting unit.
func TestTrapDivZeroTaxonomy(t *testing.T) {
	img := build(t, `
var a [2]int
func main() int {
	var p []int = a
	return 7 / p[0]
}`, mach.Trace7())
	m := New(img)
	_, _, err := m.Run()
	if err == nil {
		t.Fatal("divide by zero did not fault")
	}
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("want *Fault, got %T: %v", err, err)
	}
	if f.Code != TrapDivZero {
		t.Errorf("trap code = %s, want %s", f.Code, TrapDivZero)
	}
	if f.Beat <= 0 {
		t.Errorf("fault carries no beat: %+v", f)
	}
	if f.Unit == "" {
		t.Errorf("fault carries no functional unit: %+v", f)
	}
}

// TestTrapUnaligned drives the load/store bounds checks directly with crafted
// effective addresses: the compiler never emits unaligned references, so the
// only way to reach these traps is raw ops (exactly what a miscompile or a
// corrupted address register would produce).
func TestTrapUnaligned(t *testing.T) {
	img := build(t, `func main() int { return 0 }`, mach.Trace7())
	m := New(img)

	store := &mach.Op{Kind: ir.Store, Type: ir.I32,
		A: mach.ImmArg(int32(ir.GlobalBase + 2)), B: mach.ImmArg(0), C: mach.ImmArg(1)}
	err := m.execStore(store)
	f, ok := err.(*Fault)
	if !ok || f.Code != TrapUnaligned {
		t.Errorf("unaligned store: got %v, want TrapUnaligned fault", err)
	}

	load := &mach.Op{Kind: ir.Load, Type: ir.F64, Dst: mach.PReg{Bank: mach.BankF},
		A: mach.ImmArg(int32(ir.GlobalBase + 4)), B: mach.ImmArg(0)}
	err = m.execLoad(load, 1)
	f, ok = err.(*Fault)
	if !ok || f.Code != TrapUnaligned {
		t.Errorf("unaligned load: got %v, want TrapUnaligned fault", err)
	}

	// A speculative load takes the §7 funny-number path instead of trapping.
	spec := &mach.Op{Kind: ir.LoadSpec, Type: ir.F64, Dst: mach.PReg{Bank: mach.BankF},
		A: mach.ImmArg(int32(ir.GlobalBase + 4)), B: mach.ImmArg(0)}
	before := m.Stats.SpecFaults
	if err := m.execLoad(spec, 1); err != nil {
		t.Errorf("unaligned speculative load trapped: %v", err)
	}
	if m.Stats.SpecFaults != before+1 {
		t.Errorf("speculative unaligned load did not count a funny number")
	}
}

// TestTrapMemBoundsCode checks out-of-range references carry TrapMemBounds.
func TestTrapMemBoundsCode(t *testing.T) {
	img := build(t, `
var a [4]int
func main() int {
	var p []int = a
	return p[1 << 20]
}`, mach.Trace7())
	m := New(img)
	_, _, err := m.Run()
	f, ok := err.(*Fault)
	if !ok || f.Code != TrapMemBounds {
		t.Fatalf("want TrapMemBounds fault, got %v", err)
	}
}

const stallSrc = `
var a [64]float
func main() int {
	for (var i int = 0; i < 64; i = i + 1) { a[i] = a[i] + 1.5 }
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) { s = s + a[i] }
	if (s < 95.9) { return 1 }
	if (s > 96.1) { return 2 }
	return 0
}`

// TestStallBankIsPureTiming injects a long stall on one memory bank and
// checks that execution slows down but computes bit-identical results: the
// bank-busy network is the one place the machine *does* interlock, so a
// stall must never change architectural state.
func TestStallBankIsPureTiming(t *testing.T) {
	img := build(t, stallSrc, mach.Trace7())

	clean := New(img)
	v0, out0, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}

	stalled := New(img)
	stalled.StallBank(ir.GlobalBase, 5_000)
	v1, out1, err := stalled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v0 || out1 != out0 {
		t.Errorf("bank stall changed results: (%d,%q) vs (%d,%q)", v1, out1, v0, out0)
	}
	if stalled.Stats.Beats <= clean.Stats.Beats {
		t.Errorf("stall did not cost time: %d vs %d beats", stalled.Stats.Beats, clean.Stats.Beats)
	}
}

// TestInjectWriteCorrupts proves the fault hook is live: flipping a single
// register write on an interlock-free machine must change the observable
// outcome (different exit/output or a trap) — silent absorption would mean
// the hook, and therefore the differential harness built on it, tests nothing.
func TestInjectWriteCorrupts(t *testing.T) {
	img := build(t, stallSrc, mach.Trace7())

	clean := New(img)
	v0, out0, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}

	faulty := New(img)
	faulty.CycleLimit = 10 * clean.Stats.Beats
	n := int64(0)
	faulty.InjectWrite = func(beat int64, dst mach.PReg, val uint64) uint64 {
		n++
		if n != 40 { // corrupt exactly one write, mid-program
			return val
		}
		if dst.Bank == mach.BankB {
			if val == 0 {
				return 1
			}
			return 0
		}
		if dst.Bank == mach.BankF {
			return math.Float64bits(math.Float64frombits(val) + 1e6)
		}
		return val ^ 0xFFFF
	}
	v1, out1, err := faulty.Run()
	if err == nil && v1 == v0 && out1 == out0 {
		t.Errorf("single-write corruption was not observable: (%d,%q)", v1, out1)
	}
}
