package vliw

import (
	"errors"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// snapSrc exercises the float pipelines (6-7 beat latencies keep pending
// writes in flight), memory traffic (bank-busy windows), loops (icache
// reuse), and output — a program whose mid-run state is maximally rich.
const snapSrc = `
var acc [64]float
func main() int {
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) {
		acc[i] = float(i) * 1.5
	}
	for (var i int = 0; i < 64; i = i + 1) {
		s = s + acc[i] * acc[63 - i]
	}
	print_i(int(s))
	for (var i int = 0; i < 40; i = i + 1) {
		print_i(i * 3)
	}
	return int(s) % 100
}`

// runRef runs the machine to completion and returns its reference outcome.
func runRef(t *testing.T, m *Machine) (int32, string, Stats) {
	t.Helper()
	v, out, err := m.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return v, out, m.Stats
}

func TestSnapshotSplitRunEquivalence(t *testing.T) {
	img := build(t, snapSrc, mach.Trace7())

	ref := New(img)
	wantExit, wantOut, wantStats := runRef(t, ref)
	total := wantStats.Beats
	if total < 100 {
		t.Fatalf("program too short to split meaningfully: %d beats", total)
	}

	for _, split := range []int64{1, 3, total / 3, total / 2, total - 1} {
		m := New(img)
		m.StopBeat = split
		v0, out0, err := m.Run()
		var stop *ErrStopped
		if !errors.As(err, &stop) {
			// A split inside the final instruction never reaches another
			// boundary check: the run completes instead of pausing. That is
			// the documented semantics; the completed run must still match.
			if err == nil && v0 == wantExit && out0 == wantOut && m.Stats == wantStats {
				continue
			}
			t.Fatalf("split %d: want ErrStopped, got %v", split, err)
		}
		if stop.Beat < split {
			t.Fatalf("split %d: stopped early at beat %d", split, stop.Beat)
		}
		snap, err := m.Contexts()[0].Snapshot()
		if err != nil {
			t.Fatalf("split %d: snapshot: %v", split, err)
		}

		// Resume on a completely fresh machine.
		r := New(img)
		if err := r.Contexts()[0].Restore(snap); err != nil {
			t.Fatalf("split %d: restore: %v", split, err)
		}
		v, out, err := r.Run()
		if err != nil {
			t.Fatalf("split %d: resumed run: %v", split, err)
		}
		if v != wantExit || out != wantOut {
			t.Errorf("split %d: resumed (%d, %q), uninterrupted (%d, %q)", split, v, out, wantExit, wantOut)
		}
		if r.Stats != wantStats {
			t.Errorf("split %d: stats diverge:\nresumed:       %+v\nuninterrupted: %+v", split, r.Stats, wantStats)
		}
	}
}

// TestSnapshotMidPendingWrite pins the hardest split point: a beat where
// the write pipeline holds in-flight values and bank-busy windows extend
// into the future. The snapshot must carry both or the resumed run loses
// writes / timing.
func TestSnapshotMidPendingWrite(t *testing.T) {
	img := build(t, snapSrc, mach.Trace7())
	ref := New(img)
	wantExit, wantOut, wantStats := runRef(t, ref)

	foundPending, foundBusy := false, false
	for split := int64(1); split < wantStats.Beats && !(foundPending && foundBusy); split += 7 {
		m := New(img)
		m.StopBeat = split
		_, _, err := m.Run()
		var stop *ErrStopped
		if !errors.As(err, &stop) {
			break // ran to completion before the split point
		}
		c := m.Contexts()[0]
		pend := len(c.pending) > 0
		busy := false
		for _, b := range c.bankBusy {
			if b > c.beat {
				busy = true
			}
		}
		if (!pend || foundPending) && (!busy || foundBusy) {
			continue
		}
		foundPending = foundPending || pend
		foundBusy = foundBusy || busy

		snap, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		r := New(img)
		if err := r.Contexts()[0].Restore(snap); err != nil {
			t.Fatal(err)
		}
		if len(r.Contexts()[0].pending) != len(c.pending) {
			t.Fatalf("split %d: restored %d pending writes, want %d", split, len(r.Contexts()[0].pending), len(c.pending))
		}
		v, out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if v != wantExit || out != wantOut || r.Stats != wantStats {
			t.Errorf("split %d (pending=%v busy=%v): resumed run diverged", split, pend, busy)
		}
	}
	if !foundPending {
		t.Error("no split landed mid-pending-write; test program needs longer latencies")
	}
	if !foundBusy {
		t.Error("no split landed mid-bank-busy-window")
	}
}

func TestSnapshotPristineContextRejected(t *testing.T) {
	img := build(t, `func main() int { return 0 }`, mach.Trace7())
	m := New(img)
	_, err := m.Contexts()[0].Snapshot()
	var bad *ErrBadSnapshot
	if !errors.As(err, &bad) {
		t.Fatalf("pristine snapshot: want ErrBadSnapshot, got %v", err)
	}
	if bad.Field != "state" {
		t.Errorf("attribution field %q, want \"state\"", bad.Field)
	}
}

func TestSnapshotHaltedRoundTrip(t *testing.T) {
	img := build(t, `func main() int { print_i(9); return 5 }`, mach.Trace7())
	m := New(img)
	v, out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Contexts()[0].Snapshot()
	if err != nil {
		t.Fatalf("halted snapshot: %v", err)
	}
	r := New(img)
	if err := r.Contexts()[0].Restore(snap); err != nil {
		t.Fatal(err)
	}
	v2, out2, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v || out2 != out {
		t.Errorf("halted resume: (%d, %q) != (%d, %q)", v2, out2, v, out)
	}
	if r.Stats != m.Stats {
		t.Errorf("halted resume stats diverge")
	}
}

func TestSnapshotCorruptionRejected(t *testing.T) {
	img := build(t, snapSrc, mach.Trace7())
	m := New(img)
	m.StopBeat = 50
	m.Run()
	snap, err := m.Contexts()[0].Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		mut   func([]byte) []byte
		field string
	}{
		{"magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "magic"},
		{"version", func(b []byte) []byte { b[8] ^= 0xff; return b }, "version"},
		{"fingerprint", func(b []byte) []byte { b[20] ^= 0x01; return b }, "image"},
		{"checksum", func(b []byte) []byte { b[60] ^= 0x01; return b }, "checksum"},
		{"payload", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, "checksum"},
		{"truncated", func(b []byte) []byte { return b[:len(b)-8] }, "length"},
		{"short", func(b []byte) []byte { return b[:40] }, "header"},
	}
	for _, tc := range cases {
		mutated := tc.mut(append([]byte(nil), snap...))
		r := New(img)
		err := r.Contexts()[0].Restore(mutated)
		var bad *ErrBadSnapshot
		if !errors.As(err, &bad) {
			t.Fatalf("%s: want ErrBadSnapshot, got %v", tc.name, err)
		}
		if bad.Field != tc.field {
			t.Errorf("%s: rejected as [%s], want [%s]: %v", tc.name, bad.Field, tc.field, err)
		}
	}
}

func TestSnapshotCrossImageRejected(t *testing.T) {
	imgA := build(t, `func main() int { print_i(1); return 1 }`, mach.Trace7())
	imgB := build(t, `func main() int { print_i(2); return 2 }`, mach.Trace7())

	m := New(imgA)
	if _, _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Contexts()[0].Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	r := New(imgB)
	err = r.Contexts()[0].Restore(snap)
	var bad *ErrBadSnapshot
	if !errors.As(err, &bad) {
		t.Fatalf("cross-image restore: want ErrBadSnapshot, got %v", err)
	}
	if bad.Field != "image" {
		t.Errorf("cross-image rejected as [%s], want [image]", bad.Field)
	}
	if !strings.Contains(err.Error(), "different image") {
		t.Errorf("rejection lacks attribution: %v", err)
	}

	// Same program, different machine configuration: also a different image.
	imgWide := build(t, `func main() int { print_i(1); return 1 }`, mach.Trace28())
	r2 := New(imgWide)
	if err := r2.Contexts()[0].Restore(snap); err == nil {
		t.Error("restore onto a different machine configuration must fail")
	}
}

// TestSnapshotCycleLimitResume checkpoints a context retired by the beat
// budget and proves a resume under a larger budget completes identically to
// an uninterrupted run.
func TestSnapshotCycleLimitResume(t *testing.T) {
	img := build(t, snapSrc, mach.Trace7())
	ref := New(img)
	wantExit, wantOut, wantStats := runRef(t, ref)

	m := New(img)
	m.CycleLimit = wantStats.Beats / 2
	_, _, err := m.Run()
	var lim *ErrCycleLimit
	if !errors.As(err, &lim) {
		t.Fatalf("want ErrCycleLimit, got %v", err)
	}
	snap, err := m.Contexts()[0].Snapshot()
	if err != nil {
		t.Fatalf("snapshot at cycle-limit retirement: %v", err)
	}

	r := New(img)
	if err := r.Contexts()[0].Restore(snap); err != nil {
		t.Fatal(err)
	}
	v, out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != wantExit || out != wantOut || r.Stats != wantStats {
		t.Errorf("cycle-limit resume diverged: (%d, %q) stats=%+v", v, out, r.Stats)
	}
}

// TestSnapshotTrapBeat stops a run on the exact beat a trap would fire and
// proves the resumed run reproduces the identical fault.
func TestSnapshotTrapBeat(t *testing.T) {
	img := build(t, `
func main() int {
	var d int = 0
	for (var i int = 0; i < 20; i = i + 1) { print_i(i) }
	return 7 / d
}`, mach.Trace7())

	m := New(img)
	_, refOut, err := m.Run()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want Fault, got %v", err)
	}

	// Stop exactly at (and just before) the faulting beat.
	for _, split := range []int64{f.Beat, f.Beat - 1, f.Beat - 2} {
		s := New(img)
		s.StopBeat = split
		_, _, err := s.Run()
		var stop *ErrStopped
		if !errors.As(err, &stop) {
			// The fault fired before the pause check could: acceptable only
			// when the split is the trap beat itself.
			var f2 *Fault
			if errors.As(err, &f2) && *f2 == *f {
				continue
			}
			t.Fatalf("split %d: want ErrStopped or the fault, got %v", split, err)
		}
		snap, err := s.Contexts()[0].Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		r := New(img)
		if err := r.Contexts()[0].Restore(snap); err != nil {
			t.Fatal(err)
		}
		_, out, err := r.Run()
		var rf *Fault
		if !errors.As(err, &rf) {
			t.Fatalf("split %d: resumed run: want the original fault, got %v", split, err)
		}
		if *rf != *f {
			t.Errorf("split %d: resumed fault %+v, original %+v", split, rf, f)
		}
		if out != refOut {
			t.Errorf("split %d: output %q, want %q", split, out, refOut)
		}
	}
}

// TestSnapshotRunManyResume restores a checkpointed context as one tenant
// of a time-shared batch: the preempted program re-enters RunMany mid-flight
// and still produces its solo-identical result.
func TestSnapshotRunManyResume(t *testing.T) {
	img := build(t, snapSrc, mach.Trace7())
	other := build(t, `func main() int {
	var s int = 0
	for (var i int = 0; i < 200; i = i + 1) { s = s + i }
	print_i(s)
	return 0
}`, mach.Trace7())

	ref := New(img)
	wantExit, wantOut, wantStats := runRef(t, ref)
	refOther := New(other)
	wantExitO, wantOutO, wantStatsO := runRef(t, refOther)

	m := New(img)
	m.StopBeat = wantStats.Beats / 2
	_, _, err := m.Run()
	var stop *ErrStopped
	if !errors.As(err, &stop) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
	snap, err := m.Contexts()[0].Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The preempted program re-enters a 3-tenant batch mid-flight alongside
	// two fresh programs.
	batch := New(img)
	if err := batch.ResetMany([]*isa.Image{img, other, img}); err != nil {
		t.Fatal(err)
	}
	if err := batch.Contexts()[0].Restore(snap); err != nil {
		t.Fatalf("restore into batch: %v", err)
	}
	crs, err := batch.RunMany(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(crs) != 3 {
		t.Fatalf("got %d results", len(crs))
	}
	if crs[0].Exit != wantExit || crs[0].Output != wantOut || crs[0].Stats != wantStats {
		t.Errorf("resumed tenant diverged from solo:\n got %+v\nwant %+v", crs[0].Stats, wantStats)
	}
	if crs[1].Exit != wantExitO || crs[1].Output != wantOutO || crs[1].Stats != wantStatsO {
		t.Errorf("fresh tenant 1 diverged from solo")
	}
	if crs[2].Exit != wantExit || crs[2].Output != wantOut || crs[2].Stats != wantStats {
		t.Errorf("fresh tenant 2 diverged from solo")
	}
}
