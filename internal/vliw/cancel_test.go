package vliw

import (
	"context"
	"errors"
	"testing"

	"github.com/multiflow-repro/trace/internal/mach"
)

// loopSrc runs for hundreds of thousands of beats, so cancellation always
// lands mid-simulation.
const loopSrc = `
func main() int {
	var s int = 0
	for (var i int = 0; i < 1000000; i = i + 1) { s = s + (i & 3) }
	return s & 65535
}
`

func TestRunContextNilAndBackground(t *testing.T) {
	img := build(t, `func main() int { print_i(7) return 7 }`, mach.Trace28())
	m := New(img)
	v, out, err := m.RunContext(nil)
	if err != nil || v != 7 || out != "7\n" {
		t.Fatalf("RunContext(nil) = %d %q %v", v, out, err)
	}
	m.Reset(img)
	v, out, err = m.RunContext(context.Background())
	if err != nil || v != 7 || out != "7\n" {
		t.Fatalf("RunContext(Background) = %d %q %v", v, out, err)
	}
}

func TestRunContextCanceledStopsWithinOneInterval(t *testing.T) {
	img := build(t, loopSrc, mach.Trace28())
	m := New(img)

	// Reference run: how long the program takes uncanceled.
	total, _, err := m.RunContext(nil)
	_ = total
	if err != nil {
		t.Fatal(err)
	}
	fullBeats := m.Stats.Beats
	if fullBeats < 10*DefaultCtxCheckBeats {
		t.Fatalf("loop program too short (%d beats) to observe cancellation", fullBeats)
	}

	// Cancel mid-run from a watchpoint on beat progress: TraceFn fires per
	// instruction, so cancel once past a known beat.
	m.Reset(img)
	ctx, cancel := context.WithCancel(context.Background())
	var cancelBeat int64
	m.TraceFn = func(pc int, beat int64) {
		if cancelBeat == 0 && beat >= 3*DefaultCtxCheckBeats {
			cancelBeat = beat
			cancel()
		}
	}
	_, _, err = m.RunContext(ctx)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	var ec *ErrCanceled
	if !errors.As(err, &ec) {
		t.Fatalf("error type %T, want *ErrCanceled: %v", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	if ec.Beat == 0 || ec.PC < 0 {
		t.Errorf("ErrCanceled carries no position: %+v", ec)
	}
	// The contract: the run stops within one check interval of the cancel.
	if m.Stats.Beats > cancelBeat+m.CtxCheckEvery+64 {
		t.Errorf("run continued %d beats past cancellation (check interval %d)",
			m.Stats.Beats-cancelBeat, m.CtxCheckEvery)
	}
	if m.Stats.Beats >= fullBeats {
		t.Error("canceled run executed to completion")
	}
}

func TestRunContextDeadline(t *testing.T) {
	img := build(t, loopSrc, mach.Trace28())
	m := New(img)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, _, err := m.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, DeadlineExceeded) = false: %v", err)
	}
	// An expired deadline still stops within the first check interval
	// (plus the beats of the one instruction in flight at the check).
	if m.Stats.Beats > DefaultCtxCheckBeats+64 {
		t.Errorf("expired-deadline run executed %d beats, want ~%d",
			m.Stats.Beats, DefaultCtxCheckBeats)
	}
}

func TestCtxCheckEveryTunable(t *testing.T) {
	img := build(t, loopSrc, mach.Trace28())
	m := New(img)
	m.CtxCheckEvery = 256
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	if m.Stats.Beats > 256+64 {
		t.Errorf("run executed %d beats with CtxCheckEvery=256", m.Stats.Beats)
	}
}
