package vliw

import (
	"context"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/safecheck"
)

// Mutation tests of the native (closure-threaded) tier, the port of
// safe_mutation_test.go to the translator. The native tier deletes the same
// per-site guards the safe tier does AND bakes the (possibly corrupted)
// operands into closures at translation time, so these tests pin down the
// same promised blast radius: post-certification corruption of a proven
// site dies with the matching Fault — contained to the run, or to the one
// context in a RunMany batch — and a certificate minted for one image never
// arms a translation of another.

func runNativeOn(t *testing.T, img *isa.Image, cert *safecheck.SafeCertificate) error {
	t.Helper()
	m := New(img)
	if err := m.UseNativeCertificate(cert); err != nil {
		t.Fatal(err)
	}
	if !m.Native() || !m.Fast() {
		t.Fatal("safety certificate accepted but machine not in native+fast mode")
	}
	if m.Tier() != TierNative {
		t.Fatalf("Tier() = %v, want native", m.Tier())
	}
	_, _, err := m.Run()
	return err
}

func TestNativeTierProvesSites(t *testing.T) {
	img, cert := buildSafeCertified(t)
	if p, total := cert.ProvenSites(); p == 0 {
		t.Fatalf("mutation program proves 0/%d sites; the native-tier mutation tests would not exercise guard-free code", total)
	}
	if err := runNativeOn(t, img, cert); err != nil {
		t.Fatalf("sanity: unmutated native run failed: %v", err)
	}
}

// TestNativeMatchesChecked is the in-package equivalence smoke: the
// translated run must match the checked interpreter bit-for-bit — exit,
// output, and every Stats counter (the full oracle lives in internal/fuzz
// and certified_test.go; this one catches translator regressions where
// they are introduced).
func TestNativeMatchesChecked(t *testing.T) {
	img, cert := buildSafeCertified(t)

	mc := New(img)
	exitC, outC, errC := mc.Run()
	if errC != nil {
		t.Fatalf("checked run failed: %v", errC)
	}
	statsC := mc.Stats

	mn := New(img)
	if err := mn.UseNativeCertificate(cert); err != nil {
		t.Fatal(err)
	}
	exitN, outN, errN := mn.Run()
	if errN != nil {
		t.Fatalf("native run failed: %v", errN)
	}
	if exitN != exitC || outN != outC {
		t.Fatalf("native diverges: exit %d/%d out %q/%q", exitN, exitC, outN, outC)
	}
	if mn.Stats != statsC {
		t.Fatalf("native stats diverge:\nchecked %+v\nnative  %+v", statsC, mn.Stats)
	}
}

func TestNativeMutationLoadOutOfBounds(t *testing.T) {
	for _, tc := range []struct {
		name string
		off  int32
	}{{"high", 1 << 30}, {"negative", -(1 << 30)}} {
		t.Run(tc.name, func(t *testing.T) {
			img, cert := buildSafeCertified(t)
			o := provenOp(t, img, cert, ir.Load, ir.LoadSpec)
			o.B = mach.ImmArg(tc.off)
			wantTrap(t, runNativeOn(t, img, cert), TrapMemBounds)
		})
	}
}

func TestNativeMutationStoreOutOfBounds(t *testing.T) {
	img, cert := buildSafeCertified(t)
	o := provenOp(t, img, cert, ir.Store)
	o.B = mach.ImmArg(1 << 30)
	wantTrap(t, runNativeOn(t, img, cert), TrapMemBounds)
}

func TestNativeMutationDivZero(t *testing.T) {
	img, cert := buildSafeCertified(t)
	o := provenOp(t, img, cert, ir.Div, ir.Rem)
	o.B = mach.ImmArg(0)
	wantTrap(t, runNativeOn(t, img, cert), TrapDivZero)
}

// TestNativeMutationGuardsStayArmedElsewhere proves the translator deletes
// ONLY the per-site guards the bitmask covers: a wild branch target baked
// into a translated closure still hits the always-on PC bounds guard.
func TestNativeMutationGuardsStayArmedElsewhere(t *testing.T) {
	img, cert := buildSafeCertified(t)
	n := 0
	for i := range img.Instrs {
		for si := range img.Instrs[i].Slots {
			o := &img.Instrs[i].Slots[si].Op
			switch o.Kind {
			case mach.OpJmp, mach.OpBrT, mach.OpCall:
				o.Target = len(img.Instrs) + 1000
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("image has no branch to corrupt")
	}
	wantTrap(t, runNativeOn(t, img, cert), TrapBadPC)
}

// TestNativeMutationContainedInRunMany proves the blast radius of a
// guard-free fault in a translated context is one context: the mutated
// tenant retires with its Fault while its neighbor runs to a clean halt.
func TestNativeMutationContainedInRunMany(t *testing.T) {
	img, cert := buildSafeCertified(t)
	cfg := mach.Trace7()
	cfg.SpeculativeLoads = false
	clean := build(t, safeMutationSrc, cfg)

	o := provenOp(t, img, cert, ir.Load, ir.LoadSpec)
	o.B = mach.ImmArg(1 << 30)

	m := New(img)
	if err := m.ResetMany([]*isa.Image{img, clean}); err != nil {
		t.Fatal(err)
	}
	if err := m.UseNativeCertificate(cert); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatalf("whole-machine RunMany error: %v", err)
	}
	wantTrap(t, rs[0].Err, TrapMemBounds)
	if rs[1].Err != nil {
		t.Fatalf("clean neighbor context disturbed: %v", rs[1].Err)
	}
	if rs[1].Exit != 28 {
		t.Fatalf("clean neighbor exit = %d, want 28", rs[1].Exit)
	}
}

// TestNativeCertificateRejectsForeignImage proves a native plan cannot be
// laundered across images.
func TestNativeCertificateRejectsForeignImage(t *testing.T) {
	img1, cert := buildSafeCertified(t)
	_ = img1
	cfg := mach.Trace7()
	cfg.SpeculativeLoads = false
	img2 := build(t, safeMutationSrc, cfg)
	m := New(img2)
	if err := m.UseNativeCertificate(cert); err == nil {
		t.Fatal("native-tier certificate for a different image was accepted")
	}
	if m.Native() || m.Fast() {
		t.Fatal("rejected native-tier certificate left the machine armed")
	}
	if m.Tier() != TierChecked {
		t.Fatalf("Tier() = %v after rejected certificate, want checked", m.Tier())
	}
}
