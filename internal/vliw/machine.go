// Package vliw is the beat-accurate TRACE simulator. It executes the
// decoded instruction image produced by the isa linker, modeling the
// machine of §6: two beats per instruction, self-draining functional-unit
// and memory pipelines, partitioned register banks, the interleaved banked
// memory with the bank-stall mechanism (§6.4.4), the distributed
// instruction cache with mask-word refill (§6.5), data and instruction TLBs
// with trap-and-replay history queues (§6.4.3), and the priority multiway
// branch (§6.5.2).
//
// The hardware has no interlocks, so the simulator doubles as a verifier:
// register-file port overflows, bus oversubscription, and write-write races
// fault the machine — exactly the failures the real TRACE would exhibit if
// the compiler's static resource plan were wrong.
//
// The machine is split §8.1-style into shared microarchitecture (the
// Machine: configuration, decoded plans, DMA engine, hooks, and the
// context scheduler) and per-program architectural state (the Context:
// register banks, PC, write pipeline, address space, virtual clock). One
// resident context gives the classic single-program machine; ResetMany
// loads K programs into K hardware contexts and RunMany time-shares them
// on one simulated CPU, rotating on quantum expiry and eagerly on memory
// stalls — the latency-hiding complement to ILP the paper gestures at.
package vliw

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// Stats counts everything the experiments need.
type Stats struct {
	Beats          int64
	Instrs         int64
	Ops            int64 // non-nop operations initiated
	FloatOps       int64 // floating arithmetic initiated (for MFLOPS)
	MemRefs        int64
	Loads          int64
	Stores         int64
	SpecLoads      int64 // speculative loads executed
	SpecFaults     int64 // speculative loads that returned the funny number
	BankStalls     int64 // beats lost to the bank-stall mechanism
	ICacheMiss     int64
	ICacheHits     int64
	RefillBeats    int64 // beats lost to instruction cache refill
	TLBMisses      int64
	TrapBeats      int64 // beats spent in the TLB-miss trap handler
	Branches       int64
	Taken          int64
	Syscalls       int64
	Interrupts     int64
	InterruptBeats int64
	Switches       int64 // explicit ContextSwitch calls
	SwitchBeats    int64 // beats charged to state save/restore
	DMARefs        int64 // 64-bit memory references issued by the IOP
}

// MIPS returns achieved operations per second in millions.
func (s *Stats) MIPS() float64 {
	if s.Beats == 0 {
		return 0
	}
	return float64(s.Ops) / (float64(s.Beats) * mach.BeatNs * 1e-3)
}

// MFLOPS returns achieved floating operations per second in millions.
func (s *Stats) MFLOPS() float64 {
	if s.Beats == 0 {
		return 0
	}
	return float64(s.FloatOps) / (float64(s.Beats) * mach.BeatNs * 1e-3)
}

// TrapCode classifies machine faults. The TRACE has no interlocks, so the
// hardware detects only a small set of conditions; everything else the
// compiler must prevent statically. The taxonomy lets the differential fuzz
// oracle and the cmd tools distinguish program bugs (bad memory access,
// divide by zero) from compiler bugs (resource overflow, write races).
type TrapCode int

const (
	// TrapUnknown is a fault with no more specific classification.
	TrapUnknown TrapCode = iota
	// TrapBadPC is an instruction fetch outside the linked image (a wild
	// jump, a corrupted link register, or a fall-off-the-end).
	TrapBadPC
	// TrapMemBounds is a data reference outside mapped memory (below
	// GlobalBase or past the top of RAM) by a non-speculative op.
	TrapMemBounds
	// TrapUnaligned is a data reference not aligned to its access size.
	TrapUnaligned
	// TrapDivZero is an integer divide or remainder by zero.
	TrapDivZero
	// TrapResource is a static resource-plan violation: register-file port
	// overflow, bus oversubscription, or two ops on one unit in one beat —
	// always a compiler bug surfacing as hardware corruption.
	TrapResource
	// TrapWriteRace is two pipeline writes retiring into one register in the
	// same beat — a scheduling bug on the interlock-free machine.
	TrapWriteRace
	// TrapBadOp is an opcode the decoded slot's functional unit cannot
	// execute (a linker or encoder bug).
	TrapBadOp
	// TrapSyscall is an unknown system-call service name.
	TrapSyscall
)

var trapNames = [...]string{
	TrapUnknown: "fault", TrapBadPC: "bad-pc", TrapMemBounds: "mem-bounds",
	TrapUnaligned: "unaligned", TrapDivZero: "div-zero", TrapResource: "resource",
	TrapWriteRace: "write-race", TrapBadOp: "bad-op", TrapSyscall: "syscall",
}

func (c TrapCode) String() string {
	if int(c) < len(trapNames) {
		return trapNames[c]
	}
	return fmt.Sprintf("trap(%d)", int(c))
}

// Fault is a hardware-detectable error: a resource conflict the compiler
// should have prevented, or a memory violation. It carries the faulting
// instruction word index (the PC), beat, and — when the fault is raised
// while a slot executes — the functional unit whose operation faulted. The
// rendering uses the same word=/beat=/unit= vocabulary as schedcheck
// findings (cmd/tracelint), so a dynamic trap and the static diagnosis of
// the same defect cross-reference directly.
type Fault struct {
	Code TrapCode
	PC   int // faulting instruction word index
	Beat int64
	Unit string // functional unit of the faulting op ("" outside execution)
	Msg  string
}

func (f *Fault) Error() string {
	if f.Unit != "" {
		return fmt.Sprintf("machine fault [%s] at word=%d beat=%d unit=%s: %s", f.Code, f.PC, f.Beat, f.Unit, f.Msg)
	}
	return fmt.Sprintf("machine fault [%s] at word=%d beat=%d: %s", f.Code, f.PC, f.Beat, f.Msg)
}

// ErrCycleLimit reports that execution exceeded the machine's hard cycle
// budget. On hardware with no interlocks a miscompiled program cannot fault
// on a hazard — it can only loop or drift — so the budget is the watchdog
// that turns "the simulator wedged" into a diagnosable error.
type ErrCycleLimit struct {
	Limit int64 // the budget that was exhausted, in beats
	PC    int   // program counter when the budget ran out
}

func (e *ErrCycleLimit) Error() string {
	return fmt.Sprintf("cycle limit exceeded: %d beats at pc=%d (runaway or miscompiled program?)", e.Limit, e.PC)
}

// ErrCanceled reports that the run's context was canceled or its deadline
// expired mid-execution. The machine checks the context once every
// CtxCheckEvery beats, so execution stops within one check interval of the
// cancellation; the machine state is abandoned mid-program but the Machine
// itself stays reusable — Reset returns it to service (pools rely on this).
// Unwrap exposes the context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) distinguish the two causes.
type ErrCanceled struct {
	Beat  int64 // beat at which the cancellation was observed
	PC    int   // program counter at that point
	Cause error // context.Canceled or context.DeadlineExceeded
}

func (e *ErrCanceled) Error() string {
	return fmt.Sprintf("run canceled at word=%d beat=%d: %v", e.PC, e.Beat, e.Cause)
}

func (e *ErrCanceled) Unwrap() error { return e.Cause }

// DefaultCtxCheckBeats is the default cancellation-check interval for
// RunContext: at simulator speed (~10M beats/s) it bounds the reaction time
// to well under a millisecond while keeping the check itself unmeasurable
// (one context poll per ~2000 executed instructions).
const DefaultCtxCheckBeats = 4096

// DefaultCtxQuantum is the default round-robin timeslice in beats when the
// configuration leaves mach.Config.CtxQuantum at zero: 2048 beats is ~133us
// of machine time, the same order as the §8.1 timeslicing discussion, and
// long enough that banking a context's stats on rotation is unmeasurable.
const DefaultCtxQuantum = 2048

// Trap cost model (beats), standing in for the §6.4.3 trap handler code:
// entry/exit (register save, mode switch) plus per-miss history-queue
// replay. "A few hand-coded instructions begin saving registers while the
// pipelines drain; after several instruction times we enter C code" (§8.2).
const (
	TrapEntryBeats  = 40
	TrapPerMissBeat = 12
	PageSize        = 8192
	TLBEntries      = 4096
)

type pendingWrite struct {
	beat int64
	dst  mach.PReg
	val  uint64
	pc   int  // instruction word that issued the write, for fault attribution
	spec bool // for stats
}

// Machine is one TRACE processor with its memory system: the shared
// microarchitecture plus one or more resident program Contexts. The beat
// loop executes whichever context is current (cur); with one context the
// machine behaves exactly as the classic single-program simulator, and
// with several, RunMany time-shares them at beat granularity.
type Machine struct {
	Cfg mach.Config
	Img *isa.Image // context 0's image (the only one after Reset)
	Mem []byte     // context 0's memory (aliases ctxs[0]; kept for callers)

	// Resident hardware contexts. cur points at the executing one; every
	// hot-loop state access indexes through it.
	ctxs   []*Context
	cur    *Context
	curIdx int

	// beat is the machine's wall clock for multi-context runs: useful
	// beats plus unhidden stalls plus switch overhead. Single-context
	// runs keep time on the context's own clock instead.
	beat int64

	// plan is the pre-decoded execution plan for Img (see plan.go),
	// cached across Reset calls that re-target the same image.
	plan []planWord

	// Safe-tier plan cache: the guard-free plan derived by buildSafePlan
	// for (safeImg, safeCert), kept across Reset calls exactly like plan so
	// re-arming the same certificate after a Reset costs one pointer
	// compare, not a plan rebuild. Single-slot: arming a second image's
	// certificate (mixed-image RunMany) rebuilds.
	safePlan []planWord
	safeImg  *isa.Image
	safeCert SafetyCertificate

	// Native-tier plan cache (native.go): the closure-threaded translation
	// built by buildNativePlan for (nativeImg, nativeCert), cached across
	// Reset under the same single-slot policy as safePlan.
	nativePlan *nativePlan
	nativeImg  *isa.Image
	nativeCert SafetyCertificate

	// Multiway-branch scratch for the native step (stepNative): the
	// translated branch closures publish the winning target here instead of
	// threading loop-local state through every closure signature.
	nTaken    bool
	nBestPrio int
	nNextPC   int
	nHalted   bool
	nExit     int32

	// I/O processor DMA stream (§8.3), active when dmaRate > 0. The IOP
	// targets the current context's address space.
	dmaRate   float64 // bytes per second
	dmaBase   int64
	dmaLen    int64
	dmaIssued int64 // 64-bit references issued so far

	// FlushOnSwitch models a machine WITHOUT process tags: every context
	// switch purges the caches and TLBs (the Section 8.1 counterfactual;
	// the real machine tags entries so "no purging is necessary").
	FlushOnSwitch bool

	// CycleLimit is the hard beat budget per context: a context exceeding
	// it ends a single run with *ErrCycleLimit, or retires just that
	// context in RunMany. New sets a generous default; cmd/tracesim
	// exposes it as -max-cycles and the fuzz oracle tightens it so
	// hostile inputs terminate quickly.
	CycleLimit int64
	// StopBeat, when > 0, pauses a single-context run at the first
	// instruction boundary where the context's virtual clock has reached it:
	// run returns *ErrStopped with the context intact, and Context.Snapshot
	// captures a resume point. Zero (the default, restored by Reset) keeps
	// the beat loop on its usual single-compare path — checkpoint support
	// costs nothing when unused. RunMany ignores StopBeat; batch tenants
	// checkpoint on cancellation instead.
	StopBeat int64
	// CtxCheckEvery is the beat interval between context polls in
	// RunContext (default DefaultCtxCheckBeats): a canceled run stops
	// within one interval. Tests shrink it to make cancellation latency
	// observable; Run (no context) never polls regardless.
	CtxCheckEvery int64
	// Stats holds the CURRENT context's counters while it executes (the
	// beat loop's hottest writes stay one indirection from the machine);
	// the scheduler banks them into Context.Stats on every rotation. After
	// Run it is the run's stats as always; after RunMany it is the
	// machine-level aggregate across contexts with Beats = wall clock.
	Stats    Stats
	CheckRes bool // verify port/bus limits (off for Ideal)

	// Quantum is the round-robin timeslice in beats for RunMany
	// (initialized from Cfg.CtxQuantum, default DefaultCtxQuantum).
	Quantum int64
	// SwitchBeats is the wall-clock cost the scheduler charges per
	// context rotation (initialized from Cfg.CtxSwitchBeats, default 0 —
	// the paper's near-free switch).
	SwitchBeats int64
	// Sched reports the context scheduler's counters after RunMany.
	Sched SchedStats

	// curUnit names the functional unit whose slot is executing, for fault
	// attribution on the interlock-free datapath.
	curUnit string

	// InjectWrite, when set, observes — and may corrupt — every register
	// write as it retires from a functional-unit pipeline, before the value
	// lands in the register file. It is the fault-injection hook the
	// robustness harness uses to prove that single-event corruption on a
	// no-interlock machine is *observable* (a divergence or a trap), not
	// silently absorbed. Return val unchanged for a transparent probe.
	InjectWrite func(beat int64, dst mach.PReg, val uint64) uint64

	// TraceFn, when set, is called before each instruction with the PC and
	// current beat (debugging aid; also used by cmd/tracesim -trace).
	TraceFn func(pc int, beat int64)
	// WatchStore, when set, observes every store (address, raw value).
	WatchStore func(ea int64, val uint64)

	// InterruptEvery, when > 0, delivers a timer interrupt every that many
	// beats (§8.2: "when an enabled interrupt request arrives, execution
	// suspends ... since the pipelines are self-draining, after the maximum
	// pipe depth time, all of the state of the processor is either in
	// general registers or in main memory"). Each delivery costs
	// InterruptBeats (drain + save + C handler + restore).
	InterruptEvery int64
	// OnInterrupt, when set, runs inside each timer interrupt (after the
	// handler cost is charged). The OS scheduler lives here: calling
	// m.ContextSwitch from the hook models a timeslice ending.
	OnInterrupt func(m *Machine)
	// InterruptBeats is the cost per interrupt (default 200 if unset).
	InterruptBeats int64
	nextInterrupt  int64
}

// New creates a machine for the image with a fresh memory.
func New(img *isa.Image) *Machine {
	m := &Machine{}
	m.Reset(img)
	return m
}

// context returns the i'th resident context, growing (and pooling) the
// context table as needed. Truncating ctxs never frees a context: the
// backing array keeps the pointer, so its multi-megabyte memory and tag
// arrays are reused when the machine grows back.
func (m *Machine) context(i int) *Context {
	for len(m.ctxs) <= i {
		if cap(m.ctxs) > len(m.ctxs) {
			m.ctxs = m.ctxs[:len(m.ctxs)+1]
			if m.ctxs[len(m.ctxs)-1] == nil {
				m.ctxs[len(m.ctxs)-1] = new(Context)
			}
		} else {
			m.ctxs = append(m.ctxs, new(Context))
		}
	}
	return m.ctxs[i]
}

// Reset re-targets the machine at an image as a single-context machine,
// reusing every buffer the previous program allocated: the multi-megabyte
// data memory, the pending-write queue, the cache tag and TLB arrays, and —
// when the image pointer is unchanged — the pre-decoded execution plan. It
// restores the machine to the state New would produce: architectural state
// zeroed, stats cleared, instrumentation hooks (InjectWrite, TraceFn,
// WatchStore, OnInterrupt) removed, DMA stopped, and the certified fast
// path disabled (re-apply a certificate after Reset to re-enable it).
// Callers that run many programs — the fuzz oracle, the experiment
// harness, benchmarks — pool machines through Reset instead of
// reallocating them.
func (m *Machine) Reset(img *isa.Image) {
	if m.Img != img {
		m.plan = buildPlan(img)
		m.Img = img
	}
	c := m.context(0)
	c.reset(0, img, m.plan, img.Cfg)
	m.ctxs = m.ctxs[:1]
	m.cur = c
	m.curIdx = 0
	m.Mem = c.mem
	m.resetMachine(img.Cfg)
}

// ResetMany re-targets the machine at K images, one per hardware context.
// Every image must be linked for the same machine configuration (the
// contexts share one microarchitecture). Context buffers, memories, and
// decoded plans are pooled and reused exactly as Reset does for one; images
// repeated within the batch share one decoded plan.
func (m *Machine) ResetMany(imgs []*isa.Image) error {
	if len(imgs) == 0 {
		return fmt.Errorf("vliw: ResetMany needs at least one image")
	}
	for i, img := range imgs {
		if img.Cfg != imgs[0].Cfg {
			return fmt.Errorf("vliw: context %d's image targets %q, context 0's targets %q: contexts share one machine configuration",
				i, img.Cfg.Name, imgs[0].Cfg.Name)
		}
	}
	plans := make(map[*isa.Image][]planWord, len(imgs))
	if m.Img != nil && m.plan != nil {
		plans[m.Img] = m.plan
	}
	for i, img := range imgs {
		p, ok := plans[img]
		if !ok {
			p = buildPlan(img)
			plans[img] = p
		}
		m.context(i).reset(i, img, p, img.Cfg)
	}
	m.ctxs = m.ctxs[:len(imgs)]
	m.Img = imgs[0]
	m.plan = plans[imgs[0]]
	m.cur = m.ctxs[0]
	m.curIdx = 0
	m.Mem = m.cur.mem
	m.resetMachine(imgs[0].Cfg)
	return nil
}

// resetMachine restores the shared microarchitectural state and knobs to
// their defaults for a configuration (the part of Reset that is not
// per-context).
func (m *Machine) resetMachine(cfg mach.Config) {
	m.Cfg = cfg
	m.beat = 0
	m.curUnit = ""

	m.dmaRate, m.dmaBase, m.dmaLen, m.dmaIssued = 0, 0, 0, 0

	m.FlushOnSwitch = false
	m.InjectWrite = nil
	m.TraceFn = nil
	m.WatchStore = nil
	m.InterruptEvery = 0
	m.OnInterrupt = nil
	m.InterruptBeats = 0
	m.nextInterrupt = 0

	m.CycleLimit = 2_000_000_000
	m.StopBeat = 0
	m.CtxCheckEvery = DefaultCtxCheckBeats
	m.CheckRes = !cfg.Ideal
	m.Stats = Stats{}

	m.Quantum = int64(cfg.CtxQuantum)
	if m.Quantum <= 0 {
		m.Quantum = DefaultCtxQuantum
	}
	m.SwitchBeats = int64(cfg.CtxSwitchBeats)
	m.Sched = SchedStats{}
}

// Contexts returns the machine's resident contexts. The slice is owned by
// the machine; callers inspect, they do not mutate.
func (m *Machine) Contexts() []*Context { return m.ctxs }

// A Certificate attests that a static verifier proved the image obeys the
// §6 no-interlock schedule contract over every path — the machine may then
// run the pre-decoded plan straight, with no dynamic legality re-checking.
// The concrete implementation is schedcheck.Certify; the simulator
// deliberately depends only on this interface so the verifier and the
// machine model remain independent implementations of the contract.
type Certificate interface {
	// CertifiedImage returns the exact image the certificate covers.
	CertifiedImage() *isa.Image
}

// UseCertificate switches every context running the certified image onto
// the fast path: dynamic resource checking and write-write race detection
// are skipped, because the certificate proves statically that no executable
// path can violate them. The guards for conditions a legal schedule cannot
// exclude — PC bounds, data memory bounds and alignment, integer divide by
// zero, unknown opcodes and syscalls — remain live. The certificate must
// cover an image at least one resident context is executing; in a
// mixed-program RunMany, certify each image separately.
func (m *Machine) UseCertificate(c Certificate) error {
	if c == nil {
		return fmt.Errorf("vliw: certificate does not cover this image")
	}
	img := c.CertifiedImage()
	found := false
	for _, ctx := range m.ctxs {
		if ctx.img == img {
			ctx.fast = true
			found = true
		}
	}
	if !found {
		return fmt.Errorf("vliw: certificate does not cover this image")
	}
	return nil
}

// Fast reports whether the current context is on the certified fast path.
func (m *Machine) Fast() bool { return m.cur.fast }

// A SafetyCertificate attests, beyond the resource Certificate it extends,
// that specific guarded sites — loads, stores, divides — can never fault:
// no reachable execution makes their effective address escape RAM or break
// alignment, or their divisor reach zero. SafeSite is the per-site bitmask;
// the machine runs the guard-free variant of exactly the sites it covers
// and keeps every dynamic guard elsewhere. The concrete implementation is
// safecheck.Certify.
type SafetyCertificate interface {
	Certificate
	// SafeSite reports whether the operation issued at (word, unit, beat)
	// is proven safe.
	SafeSite(word int, unit mach.Unit, beat uint8) bool
}

// UseSafeCertificate arms the safe tier — the third execution tier — for
// every resident context running the certified image: the fast tier's
// skipped resource/race checks, plus guard-free execution of each site the
// certificate's bitmask proves safe. Unproven sites keep all their guards,
// as do PC bounds, bad opcodes, unknown syscalls, and the cycle limit; a
// certificate with an empty bitmask degenerates to exactly the fast tier.
// The derived guard-free plan is cached on the machine and reused when the
// same certificate is re-armed after a Reset.
func (m *Machine) UseSafeCertificate(c SafetyCertificate) error {
	if c == nil {
		return fmt.Errorf("vliw: safety certificate does not cover this image")
	}
	img := c.CertifiedImage()
	found := false
	for _, ctx := range m.ctxs {
		if ctx.img == img {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("vliw: safety certificate does not cover this image")
	}
	if m.safeCert != c || m.safeImg != img {
		base := m.plan
		if m.Img != img {
			base = buildPlan(img)
		}
		m.safePlan = buildSafePlan(img, base, c)
		m.safeImg, m.safeCert = img, c
	}
	for _, ctx := range m.ctxs {
		if ctx.img == img {
			ctx.fast = true
			ctx.safe = true
			ctx.plan = m.safePlan
		}
	}
	return nil
}

// Safe reports whether the current context is on the safe (guard-free)
// tier.
func (m *Machine) Safe() bool { return m.cur.safe }

// Output returns the output printed so far by the current context.
func (m *Machine) Output() string { return m.cur.out.String() }

// StartDMA starts the I/O processor streaming into the byte range
// [base, base+n), wrapping circularly, at rate bytes per second. The IOP
// moves 64-bit doublewords and contends with the CPU through the ordinary
// bank-busy mechanism, so I/O load surfaces as CPU bank stalls — cycle
// stealing, exactly as Section 8.3 describes. The engine is capped at half
// of peak memory bandwidth, the paper's stated IOP limit.
func (m *Machine) StartDMA(base, n int64, rate float64) {
	if half := m.Cfg.PeakMemBandwidth() / 2; rate > half {
		rate = half
	}
	m.dmaRate = rate
	m.dmaBase = base
	m.dmaLen = n
	m.dmaIssued = 0
}

// dmaCatchUp issues every IOP reference due by the current beat. Each one
// occupies its RAM bank for the usual busy window and lands real bytes in
// memory; the CPU's bank-stall prescan then sees the claimed banks.
func (m *Machine) dmaCatchUp(c *Context) {
	if m.dmaRate <= 0 || m.dmaLen < 8 {
		return
	}
	beatsPerRef := 8 / (m.dmaRate * mach.BeatNs * 1e-9)
	due := int64(float64(c.beat) / beatsPerRef)
	for m.dmaIssued < due {
		refBeat := int64(float64(m.dmaIssued) * beatsPerRef)
		ea := m.dmaBase + (m.dmaIssued*8)%m.dmaLen
		if ea < 0 {
			m.dmaIssued++
			m.Stats.DMARefs++
			continue
		}
		ctrl, bank := m.Cfg.BankOf(ea)
		id := ctrl*8 + bank
		end := refBeat + mach.StageBank + int64(m.Cfg.BankBusyBeats)
		if end > c.bankBusy[id] {
			c.bankBusy[id] = end
		}
		if ea >= 0 && ea+8 <= int64(len(c.mem)) {
			for k := int64(0); k < 8; k++ {
				c.mem[ea+k] = byte(m.dmaIssued)
			}
		}
		m.dmaIssued++
		m.Stats.DMARefs++
	}
}

// ContextSwitch deschedules the current process and resumes it under a new
// address-space ID, charging the full register-state save/restore cost
// through the memory system (Section 8.1's ~15us figure). With process
// tags (the default), cache and TLB entries survive across the switch and
// "no purging is necessary"; set FlushOnSwitch to model an untagged
// machine that must invalidate everything. This is the OS-model switch —
// one process leaving one context — distinct from the hardware context
// rotation RunMany's scheduler performs, which moves no state at all.
func (m *Machine) ContextSwitch(asid uint8) {
	c := m.cur
	cfg := m.Cfg
	// State: 64 I + 64 F words per pair, 32 SF words per pair, 16 misc.
	words := int64(cfg.Pairs)*(64+64+32) + 16
	// Stored and reloaded as 64-bit doubles, one per board per beat,
	// capped by the store buses.
	perBeat := 2 * int64(cfg.Pairs)
	if perBeat > 2*int64(cfg.StoreBuses) {
		perBeat = 2 * int64(cfg.StoreBuses)
	}
	cost := 2*(words+perBeat-1)/perBeat + 60
	c.beat += cost
	m.Stats.Switches++
	m.Stats.SwitchBeats += cost
	c.asid = asid
	if m.FlushOnSwitch {
		for i := range c.itags {
			c.itags[i] = -1
		}
		for i := range c.dtlb {
			c.dtlb[i] = -1
			c.itlb[i] = -1
		}
	}
}

// PeekI reads an integer register of the current context (debugging/tests).
func (m *Machine) PeekI(board, idx int) int32 { return int32(m.cur.iregs[board][idx]) }

// PeekF reads a floating register of the current context (debugging/tests).
func (m *Machine) PeekF(board, idx int) float64 {
	return math.Float64frombits(m.cur.fregs[board][idx])
}

// Run boots the machine and executes until HALT. It returns main's exit
// value and the captured output. Run never polls a context; use RunContext
// for cancelable execution. Run executes context 0 only; use RunMany to
// time-share several resident contexts.
func (m *Machine) Run() (int32, string, error) { return m.run(nil) }

// RunContext is Run with cooperative cancellation: the machine polls ctx
// every CtxCheckEvery beats (at instruction boundaries) and abandons the run
// with *ErrCanceled — wrapping ctx.Err() — within one interval of the
// context being canceled or timing out. The poll sits outside the beat loop
// proper, so its cost on the certified fast path is below the benchmark
// noise floor (see BenchmarkSimulatorFastCtx).
func (m *Machine) RunContext(ctx context.Context) (int32, string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return m.run(ctx)
}

// run is the shared boot-and-step loop for a single context; ctx == nil
// means no cancellation polling at all (the Run path).
func (m *Machine) run(ctx context.Context) (exit int32, out string, err error) {
	c := m.ctxs[0]
	m.cur = c
	m.curIdx = 0
	if c.safe || c.native {
		// The safe and native tiers' last line of defense: a
		// post-certification image mutation can drive a guard-free site into
		// the Go runtime's own slice-bounds or divide check. One deferred
		// recover per run (not per step — the hot loop stays untouched)
		// converts that panic back into the Fault the deleted guard would
		// have raised; the blast radius is this context, never the process.
		defer func() {
			if r := recover(); r != nil {
				m.finish(c)
				exit, out, err = 0, c.out.String(), m.safeTierFault(c, r)
			}
		}()
	}
	if c.restored {
		// Resuming a checkpoint: the context's state — banked Stats
		// included — IS the execution; booting would restart the program.
		m.Stats = c.Stats
	} else if err := c.boot(); err != nil {
		return 0, "", err
	}
	ctxEvery := m.CtxCheckEvery
	if ctxEvery <= 0 {
		ctxEvery = DefaultCtxCheckBeats
	}
	// With no context the next check is pushed past any reachable beat, so
	// the cancelable and plain paths run the identical per-instruction code:
	// one integer compare. StopBeat uses the same sentinel trick: disabled,
	// it is a compare against MaxInt64 that never fires.
	ctxCheckAt := int64(math.MaxInt64)
	if ctx != nil {
		ctxCheckAt = c.beat + ctxEvery
	}
	pauseAt := int64(math.MaxInt64)
	if m.StopBeat > 0 {
		pauseAt = m.StopBeat
	}
	native := c.native
	for !c.halted {
		if c.beat >= ctxCheckAt {
			if err := ctx.Err(); err != nil {
				m.finish(c)
				return 0, c.out.String(), &ErrCanceled{Beat: c.beat, PC: c.pc, Cause: err}
			}
			ctxCheckAt = c.beat + ctxEvery
		}
		if c.beat >= pauseAt {
			m.finish(c)
			return 0, c.out.String(), &ErrStopped{Beat: c.beat, PC: c.pc}
		}
		if c.beat > m.CycleLimit {
			m.finish(c)
			return 0, c.out.String(), &ErrCycleLimit{Limit: m.CycleLimit, PC: c.pc}
		}
		var err error
		if native {
			err = m.stepNative(c)
		} else {
			err = m.step(c)
		}
		if err != nil {
			m.finish(c)
			return 0, c.out.String(), err
		}
	}
	m.finish(c)
	return c.exit, c.out.String(), nil
}

// finish closes out a single-context run: the run's beat count lands in
// the machine stats (as always) and the context banks a copy, so Context
// and Machine views agree.
func (m *Machine) finish(c *Context) {
	m.Stats.Beats = c.beat
	c.Stats = m.Stats
}

// RunMany boots every resident context and time-shares them on the one
// simulated CPU until all have halted or retired: round-robin rotation on
// quantum expiry (Quantum beats of context execution), eager rotation when
// the current context loses beats to a bank stall or an icache refill, and
// SwitchBeats of wall-clock charge per rotation (default 0 — the paper's
// near-free hardware switch).
//
// Each context executes on its own virtual clock with its own address
// space, so its results and Stats are bit-identical to an undisturbed solo
// run; a context that traps or exhausts CycleLimit retires alone, with the
// error in its ContextResult, while the rest run on. The machine-level
// picture lands in Sched (wall clock, hidden stall beats, switches) and in
// Stats as the cross-context aggregate. The returned error is non-nil only
// for whole-machine failures: boot errors and cancellation.
func (m *Machine) RunMany(ctx context.Context) ([]ContextResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, c := range m.ctxs {
		if c.done || c.halted {
			return nil, fmt.Errorf("vliw: RunMany on a used machine: Reset or ResetMany first")
		}
		if c.restored {
			// A restored tenant re-enters the batch mid-flight: its state
			// (virtual clock, pipeline, banked Stats) continues from the
			// checkpoint; switchTo loads the banked Stats when it runs.
			continue
		}
		if err := c.boot(); err != nil {
			return nil, err
		}
	}
	quantum := m.Quantum
	if quantum <= 0 {
		quantum = DefaultCtxQuantum
	}
	ctxEvery := m.CtxCheckEvery
	if ctxEvery <= 0 {
		ctxEvery = DefaultCtxCheckBeats
	}
	m.Sched = SchedStats{Contexts: len(m.ctxs)}
	live := len(m.ctxs)
	// Detach before the first switch: banking the machine's zeroed Stats
	// into context 0 here would clobber a restored tenant's banked counters.
	m.cur = nil
	m.switchTo(0)
	sliceEnd := m.cur.beat + quantum
	ctxCheckAt := ctxEvery

	for live > 0 {
		c := m.cur
		if c.done {
			m.rotate(quantum, &sliceEnd)
			continue
		}
		if m.beat >= ctxCheckAt {
			if err := ctx.Err(); err != nil {
				c.Stats = m.Stats // bank the interrupted context
				m.aggregate()
				return m.results(), &ErrCanceled{Beat: m.beat, PC: c.pc, Cause: err}
			}
			ctxCheckAt = m.beat + ctxEvery
		}
		if c.beat > m.CycleLimit {
			c.err = &ErrCycleLimit{Limit: m.CycleLimit, PC: c.pc}
			live = m.retire(c, live, quantum, &sliceEnd)
			continue
		}

		b0 := c.beat
		s0 := m.Stats.BankStalls + m.Stats.RefillBeats
		var err error
		if c.native {
			err = m.stepNativeSafe(c)
		} else if c.safe {
			err = m.stepSafe(c)
		} else {
			err = m.step(c)
		}
		delta := c.beat - b0
		stall := m.Stats.BankStalls + m.Stats.RefillBeats - s0
		m.beat += delta
		m.Sched.BusyBeats += delta - stall
		hidden := false
		if stall > 0 && live > 1 {
			// Another resident context executes under the stall: the
			// machine's wall clock does not pay for it (§8.1's
			// latency-hiding), and the scheduler rotates eagerly so the
			// overlap is real, not notional.
			m.beat -= stall
			m.Sched.HiddenBeats += stall
			hidden = true
		}

		if err != nil {
			c.err = err
			live = m.retire(c, live, quantum, &sliceEnd)
			continue
		}
		if c.halted {
			live = m.retire(c, live, quantum, &sliceEnd)
			continue
		}
		if c.beat >= sliceEnd || hidden {
			m.rotate(quantum, &sliceEnd)
		}
	}
	m.aggregate()
	return m.results(), nil
}

// retire marks the current context done (banking its stats with the final
// beat count, exactly as a solo run's finish would) and rotates to the next
// live context. It returns the updated live count.
func (m *Machine) retire(c *Context, live int, quantum int64, sliceEnd *int64) int {
	m.Stats.Beats = c.beat
	c.Stats = m.Stats
	c.done = true
	live--
	if live > 0 {
		m.rotate(quantum, sliceEnd)
	}
	return live
}

// rotate banks the current context's stats and hands the CPU to the next
// runnable context in round-robin order, charging SwitchBeats of wall
// clock when the context actually changes. With one runnable context the
// rotation is free: the quantum is simply renewed.
func (m *Machine) rotate(quantum int64, sliceEnd *int64) {
	next := m.curIdx
	for i := 1; i <= len(m.ctxs); i++ {
		j := (m.curIdx + i) % len(m.ctxs)
		if !m.ctxs[j].done {
			next = j
			break
		}
	}
	if next != m.curIdx && !m.ctxs[next].done {
		m.Sched.Switches++
		m.beat += m.SwitchBeats
		m.Sched.SwitchBeats += m.SwitchBeats
		m.switchTo(next)
	}
	*sliceEnd = m.cur.beat + quantum
}

// switchTo makes context i current: the outgoing context's counters are
// banked and the incoming one's become the machine's live Stats.
func (m *Machine) switchTo(i int) {
	if m.cur != nil {
		m.cur.Stats = m.Stats
	}
	m.curIdx = i
	m.cur = m.ctxs[i]
	m.Stats = m.cur.Stats
}

// aggregate leaves the cross-context stat totals in m.Stats (Beats = the
// machine wall clock) and finalizes Sched after a RunMany.
func (m *Machine) aggregate() {
	var agg Stats
	for _, c := range m.ctxs {
		agg.add(&c.Stats)
	}
	agg.Beats = m.beat
	m.Stats = agg
	m.Sched.TotalBeats = m.beat
}

// results snapshots every context's outcome. Unfinished contexts (after a
// cancellation) report the beats they had executed so far.
func (m *Machine) results() []ContextResult {
	rs := make([]ContextResult, len(m.ctxs))
	for i, c := range m.ctxs {
		st := c.Stats
		st.Beats = c.beat
		rs[i] = ContextResult{Exit: c.exit, Output: c.out.String(), Stats: st, Err: c.err}
	}
	return rs
}

func (m *Machine) fault(c *Context, code TrapCode, format string, args ...any) error {
	return &Fault{Code: code, PC: c.pc, Beat: c.beat, Unit: m.curUnit, Msg: fmt.Sprintf(format, args...)}
}

// stepSafe is step with the safe tier's panic containment for the RunMany
// scheduler, where one context's guard-free fault must retire only that
// context. The deferred recover costs a few nanoseconds per instruction, so
// the single-context run loop uses one run-level defer instead; RunMany's
// per-step scheduling work already dwarfs it.
func (m *Machine) stepSafe(c *Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = m.safeTierFault(c, r)
		}
	}()
	return m.step(c)
}

// safeTierFault converts a Go runtime panic that escaped a guard-free safe
// site back into the machine fault the deleted guard would have raised.
// Anything that is not a runtime error (a panicking instrumentation hook,
// a simulator bug) is re-thrown: the safe tier contains exactly the class
// of failure its certificate weakened, nothing else.
func (m *Machine) safeTierFault(c *Context, r any) error {
	re, ok := r.(runtime.Error)
	if !ok {
		panic(r)
	}
	if strings.Contains(re.Error(), "divide by zero") {
		return m.fault(c, TrapDivZero, "integer divide by zero (safe tier containment)")
	}
	return m.fault(c, TrapMemBounds, "bus error (safe tier containment): %v", re)
}

// StallBank forces the RAM bank holding byte address ea busy for the next n
// beats — an injectable memory-system fault. A stalled bank is a pure timing
// perturbation: the bank-stall mechanism (§6.4.4) charges the delay before
// the instruction initiates, so results must be unchanged while Stats.Beats
// and Stats.BankStalls grow. The robustness tests use it to prove the
// machine is timing-robust where it must be and corruption-sensitive where
// it must be.
func (m *Machine) StallBank(ea int64, n int64) {
	if ea < 0 {
		return
	}
	c := m.cur
	ctrl, bank := m.Cfg.BankOf(ea)
	id := ctrl*8 + bank
	if until := c.beat + n; until > c.bankBusy[id] {
		c.bankBusy[id] = until
	}
}

// step executes one wide instruction (two beats) of context c from its
// pre-decoded plan.
func (m *Machine) step(c *Context) error {
	if c.pc < 0 || c.pc >= len(c.plan) {
		return m.fault(c, TrapBadPC, "instruction fetch outside image")
	}
	// timer interrupts are taken at instruction boundaries; the pipelines
	// drain on their own, so the handler cost is a pure beat charge
	if m.InterruptEvery > 0 && c.beat >= m.nextInterrupt {
		cost := m.InterruptBeats
		if cost == 0 {
			cost = 200
		}
		c.beat += cost
		m.Stats.Interrupts++
		m.Stats.InterruptBeats += cost
		if m.OnInterrupt != nil {
			m.OnInterrupt(m)
		}
		m.nextInterrupt = c.beat + m.InterruptEvery
	}
	m.fetch(c, c.pc)
	if m.TraceFn != nil {
		m.TraceFn(c.pc, c.beat)
	}
	pw := &c.plan[c.pc]
	m.Stats.Instrs++

	if m.dmaRate > 0 {
		m.dmaCatchUp(c)
	}
	// Pre-scan memory references for TLB misses and bank stalls. The
	// machine charges the bank-stall before initiating the instruction,
	// and takes the trap (history-queue replay) for the whole batch of
	// misses at once (§6.4.3: up to 16 misses pending per trap entry).
	if len(pw.mem) > 0 {
		var stall int64
		misses := 0
		for i := range pw.mem {
			pm := &pw.mem[i]
			ea, ok := c.eaOf(pm.op)
			if !ok {
				continue // fault reported at execution
			}
			if c.dtlbMiss(ea) {
				misses++
			}
			if ea < 0 {
				continue // wild negative address: no bank to stall on; faults (or the §7 funny number) at execution
			}
			ctrl, bank := m.Cfg.BankOf(ea)
			id := ctrl*8 + bank
			access := c.beat + pm.beat + mach.StageBank + stall
			if busy := c.bankBusy[id]; busy > access {
				stall += busy - access
			}
		}
		if misses > 0 {
			cost := int64(TrapEntryBeats + misses*TrapPerMissBeat)
			m.Stats.TLBMisses += int64(misses)
			m.Stats.TrapBeats += cost
			c.beat += cost
		}
		if stall > 0 {
			m.Stats.BankStalls += stall
			c.beat += stall
		}
	}

	nextPC := c.pc + 1
	// §6.5.2 multiway branch: the highest-priority (lowest Prio, first in
	// slot order on ties) true test supplies the next address.
	taken := false
	bestPrio := 0
	halted := false
	var exit int32

	for beat := 0; beat < 2; beat++ {
		if err := m.applyWrites(c); err != nil {
			return err
		}
		if m.CheckRes && !c.fast {
			if v := pw.viol[beat]; v != nil {
				return m.fault(c, v.code, "%s", v.msg)
			}
		}
		ops := pw.beats[beat]
		for i := range ops {
			p := &ops[i]
			m.Stats.Ops++
			m.curUnit = p.unitName
			if p.unitKind == mach.UBR {
				t, halt, err := m.execBranch(p.op)
				if err != nil {
					return err
				}
				if halt != nil {
					halted = true
					exit = *halt
				}
				if t >= 0 && (!taken || p.op.Prio < bestPrio) {
					taken = true
					bestPrio = p.op.Prio
					nextPC = t
				}
			} else if err := m.execOp(p); err != nil {
				return err
			}
			m.curUnit = ""
		}
		c.beat++
	}

	if taken {
		m.Stats.Taken++
	}
	if halted {
		c.halted = true
		c.exit = exit
		return nil
	}
	c.pc = nextPC
	return nil
}

func isMemOp(k ir.OpKind) bool {
	return k == ir.Load || k == ir.LoadSpec || k == ir.Store
}

// fetch models the instruction cache: direct-mapped, refilled in aligned
// blocks of four via the mask-word engine at memory bandwidth (§6.5.1).
func (m *Machine) fetch(c *Context, pc int) {
	// instruction TLB: pages of PageSize/4 instructions (8KB of packed
	// words approximated)
	ipage := int64(pc) / (PageSize / 4)
	is := ipage % TLBEntries
	if c.itlb[is] != ipage || c.itlbAsids[is] != c.asid {
		c.itlb[is] = ipage
		c.itlbAsids[is] = c.asid
		m.Stats.TLBMisses++
		m.Stats.TrapBeats += TrapEntryBeats
		c.beat += TrapEntryBeats
	}
	if len(c.img.Words) == 0 {
		// ideal machine: no encoded form, perfect cache
		m.Stats.ICacheHits++
		return
	}
	line := pc % len(c.itags)
	if c.itags[line] == pc && c.iasids[line] == c.asid {
		m.Stats.ICacheHits++
		return
	}
	m.refillICache(c, pc)
}

// refillICache charges an icache miss and refills the aligned
// 4-instruction block (shared by fetch and the native tier's nFetch).
func (m *Machine) refillICache(c *Context, pc int) {
	m.Stats.ICacheMiss++
	// refill the aligned 4-instruction block
	blk := pc &^ 3
	words := 4 // the four mask words
	for i := blk; i < blk+4 && i < len(c.img.Words); i++ {
		for _, w := range c.img.Words[i] {
			if w != 0 {
				words++
			}
		}
		line := i % len(c.itags)
		c.itags[line] = i
		c.iasids[line] = c.asid
	}
	// refill proceeds at full bus bandwidth: ILoad buses carry 4 bytes per
	// beat each; mask interpretation adds a fixed 2 beats
	buses := m.Cfg.ILoadBuses
	beats := int64((words+buses-1)/buses) + 2
	m.Stats.RefillBeats += beats
	c.beat += beats
}

// applyWrites retires pipeline writes due at the current beat ("the
// destination register is specified when the operation is initiated, and a
// hardware control pipeline carries the destination forward", §6.2). The
// handful of writes retiring in any one beat are race-checked pairwise
// against a reused scratch list — no per-beat map. On the certified fast
// path the race check is skipped: schedcheck's dataflow analysis proved no
// path can retire two writes into one register together.
func (m *Machine) applyWrites(c *Context) error {
	retired := c.retired[:0]
	kept := c.pending[:0]
	for _, w := range c.pending {
		if w.beat > c.beat {
			kept = append(kept, w)
			continue
		}
		if !c.fast {
			for i := range retired {
				if retired[i].dst == w.dst {
					return m.fault(c, TrapWriteRace, "write-write race on %s: writes issued at word %d and word %d retire together",
						w.dst, retired[i].pc, w.pc)
				}
			}
			retired = append(retired, w)
		}
		val := w.val
		if m.InjectWrite != nil {
			val = m.InjectWrite(c.beat, w.dst, val)
		}
		c.writeReg(w.dst, val)
	}
	c.pending = kept
	c.retired = retired[:0]
	return nil
}
