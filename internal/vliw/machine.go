// Package vliw is the beat-accurate TRACE simulator. It executes the
// decoded instruction image produced by the isa linker, modeling the
// machine of §6: two beats per instruction, self-draining functional-unit
// and memory pipelines, partitioned register banks, the interleaved banked
// memory with the bank-stall mechanism (§6.4.4), the distributed
// instruction cache with mask-word refill (§6.5), data and instruction TLBs
// with trap-and-replay history queues (§6.4.3), and the priority multiway
// branch (§6.5.2).
//
// The hardware has no interlocks, so the simulator doubles as a verifier:
// register-file port overflows, bus oversubscription, and write-write races
// fault the machine — exactly the failures the real TRACE would exhibit if
// the compiler's static resource plan were wrong.
package vliw

import (
	"bytes"
	"context"
	"fmt"
	"math"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// Stats counts everything the experiments need.
type Stats struct {
	Beats          int64
	Instrs         int64
	Ops            int64 // non-nop operations initiated
	FloatOps       int64 // floating arithmetic initiated (for MFLOPS)
	MemRefs        int64
	Loads          int64
	Stores         int64
	SpecLoads      int64 // speculative loads executed
	SpecFaults     int64 // speculative loads that returned the funny number
	BankStalls     int64 // beats lost to the bank-stall mechanism
	ICacheMiss     int64
	ICacheHits     int64
	RefillBeats    int64 // beats lost to instruction cache refill
	TLBMisses      int64
	TrapBeats      int64 // beats spent in the TLB-miss trap handler
	Branches       int64
	Taken          int64
	Syscalls       int64
	Interrupts     int64
	InterruptBeats int64
	Switches       int64 // explicit ContextSwitch calls
	SwitchBeats    int64 // beats charged to state save/restore
	DMARefs        int64 // 64-bit memory references issued by the IOP
}

// MIPS returns achieved operations per second in millions.
func (s *Stats) MIPS() float64 {
	if s.Beats == 0 {
		return 0
	}
	return float64(s.Ops) / (float64(s.Beats) * mach.BeatNs * 1e-3)
}

// MFLOPS returns achieved floating operations per second in millions.
func (s *Stats) MFLOPS() float64 {
	if s.Beats == 0 {
		return 0
	}
	return float64(s.FloatOps) / (float64(s.Beats) * mach.BeatNs * 1e-3)
}

// TrapCode classifies machine faults. The TRACE has no interlocks, so the
// hardware detects only a small set of conditions; everything else the
// compiler must prevent statically. The taxonomy lets the differential fuzz
// oracle and the cmd tools distinguish program bugs (bad memory access,
// divide by zero) from compiler bugs (resource overflow, write races).
type TrapCode int

const (
	// TrapUnknown is a fault with no more specific classification.
	TrapUnknown TrapCode = iota
	// TrapBadPC is an instruction fetch outside the linked image (a wild
	// jump, a corrupted link register, or a fall-off-the-end).
	TrapBadPC
	// TrapMemBounds is a data reference outside mapped memory (below
	// GlobalBase or past the top of RAM) by a non-speculative op.
	TrapMemBounds
	// TrapUnaligned is a data reference not aligned to its access size.
	TrapUnaligned
	// TrapDivZero is an integer divide or remainder by zero.
	TrapDivZero
	// TrapResource is a static resource-plan violation: register-file port
	// overflow, bus oversubscription, or two ops on one unit in one beat —
	// always a compiler bug surfacing as hardware corruption.
	TrapResource
	// TrapWriteRace is two pipeline writes retiring into one register in the
	// same beat — a scheduling bug on the interlock-free machine.
	TrapWriteRace
	// TrapBadOp is an opcode the decoded slot's functional unit cannot
	// execute (a linker or encoder bug).
	TrapBadOp
	// TrapSyscall is an unknown system-call service name.
	TrapSyscall
)

var trapNames = [...]string{
	TrapUnknown: "fault", TrapBadPC: "bad-pc", TrapMemBounds: "mem-bounds",
	TrapUnaligned: "unaligned", TrapDivZero: "div-zero", TrapResource: "resource",
	TrapWriteRace: "write-race", TrapBadOp: "bad-op", TrapSyscall: "syscall",
}

func (c TrapCode) String() string {
	if int(c) < len(trapNames) {
		return trapNames[c]
	}
	return fmt.Sprintf("trap(%d)", int(c))
}

// Fault is a hardware-detectable error: a resource conflict the compiler
// should have prevented, or a memory violation. It carries the faulting
// instruction word index (the PC), beat, and — when the fault is raised
// while a slot executes — the functional unit whose operation faulted. The
// rendering uses the same word=/beat=/unit= vocabulary as schedcheck
// findings (cmd/tracelint), so a dynamic trap and the static diagnosis of
// the same defect cross-reference directly.
type Fault struct {
	Code TrapCode
	PC   int // faulting instruction word index
	Beat int64
	Unit string // functional unit of the faulting op ("" outside execution)
	Msg  string
}

func (f *Fault) Error() string {
	if f.Unit != "" {
		return fmt.Sprintf("machine fault [%s] at word=%d beat=%d unit=%s: %s", f.Code, f.PC, f.Beat, f.Unit, f.Msg)
	}
	return fmt.Sprintf("machine fault [%s] at word=%d beat=%d: %s", f.Code, f.PC, f.Beat, f.Msg)
}

// ErrCycleLimit reports that execution exceeded the machine's hard cycle
// budget. On hardware with no interlocks a miscompiled program cannot fault
// on a hazard — it can only loop or drift — so the budget is the watchdog
// that turns "the simulator wedged" into a diagnosable error.
type ErrCycleLimit struct {
	Limit int64 // the budget that was exhausted, in beats
	PC    int   // program counter when the budget ran out
}

func (e *ErrCycleLimit) Error() string {
	return fmt.Sprintf("cycle limit exceeded: %d beats at pc=%d (runaway or miscompiled program?)", e.Limit, e.PC)
}

// ErrCanceled reports that the run's context was canceled or its deadline
// expired mid-execution. The machine checks the context once every
// CtxCheckEvery beats, so execution stops within one check interval of the
// cancellation; the machine state is abandoned mid-program but the Machine
// itself stays reusable — Reset returns it to service (pools rely on this).
// Unwrap exposes the context error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) distinguish the two causes.
type ErrCanceled struct {
	Beat  int64 // beat at which the cancellation was observed
	PC    int   // program counter at that point
	Cause error // context.Canceled or context.DeadlineExceeded
}

func (e *ErrCanceled) Error() string {
	return fmt.Sprintf("run canceled at word=%d beat=%d: %v", e.PC, e.Beat, e.Cause)
}

func (e *ErrCanceled) Unwrap() error { return e.Cause }

// DefaultCtxCheckBeats is the default cancellation-check interval for
// RunContext: at simulator speed (~10M beats/s) it bounds the reaction time
// to well under a millisecond while keeping the check itself unmeasurable
// (one context poll per ~2000 executed instructions).
const DefaultCtxCheckBeats = 4096

// Trap cost model (beats), standing in for the §6.4.3 trap handler code:
// entry/exit (register save, mode switch) plus per-miss history-queue
// replay. "A few hand-coded instructions begin saving registers while the
// pipelines drain; after several instruction times we enter C code" (§8.2).
const (
	TrapEntryBeats  = 40
	TrapPerMissBeat = 12
	PageSize        = 8192
	TLBEntries      = 4096
)

type pendingWrite struct {
	beat int64
	dst  mach.PReg
	val  uint64
	pc   int  // instruction word that issued the write, for fault attribution
	spec bool // for stats
}

// Machine is one TRACE processor with its memory system.
type Machine struct {
	Cfg mach.Config
	Img *isa.Image
	Mem []byte

	// Architectural state.
	iregs [4][64]uint32
	fregs [4][32]uint64
	sf    [4][16]uint64
	bb    [4][8]bool

	pc      int
	beat    int64
	pending []pendingWrite
	retired []pendingWrite // scratch: writes retired this beat (race check)
	out     bytes.Buffer
	halted  bool
	exit    int32

	// plan is the pre-decoded execution plan for Img (see plan.go): per-beat
	// slot lists, precomputed latencies and unit names, the memory-reference
	// prescan list, and the per-word static resource verdicts.
	plan []planWord
	// fast is the certified fast path: set via UseCertificate after a static
	// verifier proved the image legal, it skips dynamic resource checking
	// and write-race detection. PC bounds, memory bounds/alignment, and
	// divide-by-zero guards remain live.
	fast bool

	bankBusy [64]int64 // (controller*8 + bank) -> busy until beat

	// I/O processor DMA stream (§8.3), active when dmaRate > 0.
	dmaRate   float64 // bytes per second
	dmaBase   int64
	dmaLen    int64
	dmaIssued int64 // 64-bit references issued so far

	// Instruction cache: direct-mapped, ICacheInstrs entries, tag = address.
	itags  []int
	iasids []uint8
	// Data and instruction TLBs: direct-mapped by virtual page number.
	dtlb      []int64
	dtlbAsids []uint8
	itlb      []int64
	itlbAsids []uint8
	asid      uint8

	// FlushOnSwitch models a machine WITHOUT process tags: every context
	// switch purges the caches and TLBs (the Section 8.1 counterfactual;
	// the real machine tags entries so "no purging is necessary").
	FlushOnSwitch bool

	// CycleLimit is the hard beat budget: exceeding it ends the run with
	// *ErrCycleLimit instead of hanging the process. New sets a generous
	// default; cmd/tracesim exposes it as -max-cycles and the fuzz oracle
	// tightens it so hostile inputs terminate quickly.
	CycleLimit int64
	// CtxCheckEvery is the beat interval between context polls in
	// RunContext (default DefaultCtxCheckBeats): a canceled run stops
	// within one interval. Tests shrink it to make cancellation latency
	// observable; Run (no context) never polls regardless.
	CtxCheckEvery int64
	Stats         Stats
	CheckRes      bool // verify port/bus limits (off for Ideal)

	// curUnit names the functional unit whose slot is executing, for fault
	// attribution on the interlock-free datapath.
	curUnit string

	// InjectWrite, when set, observes — and may corrupt — every register
	// write as it retires from a functional-unit pipeline, before the value
	// lands in the register file. It is the fault-injection hook the
	// robustness harness uses to prove that single-event corruption on a
	// no-interlock machine is *observable* (a divergence or a trap), not
	// silently absorbed. Return val unchanged for a transparent probe.
	InjectWrite func(beat int64, dst mach.PReg, val uint64) uint64

	// TraceFn, when set, is called before each instruction with the PC and
	// current beat (debugging aid; also used by cmd/tracesim -trace).
	TraceFn func(pc int, beat int64)
	// WatchStore, when set, observes every store (address, raw value).
	WatchStore func(ea int64, val uint64)

	// InterruptEvery, when > 0, delivers a timer interrupt every that many
	// beats (§8.2: "when an enabled interrupt request arrives, execution
	// suspends ... since the pipelines are self-draining, after the maximum
	// pipe depth time, all of the state of the processor is either in
	// general registers or in main memory"). Each delivery costs
	// InterruptBeats (drain + save + C handler + restore).
	InterruptEvery int64
	// OnInterrupt, when set, runs inside each timer interrupt (after the
	// handler cost is charged). The OS scheduler lives here: calling
	// m.ContextSwitch from the hook models a timeslice ending.
	OnInterrupt func(m *Machine)
	// InterruptBeats is the cost per interrupt (default 200 if unset).
	InterruptBeats int64
	nextInterrupt  int64
}

// New creates a machine for the image with a fresh memory.
func New(img *isa.Image) *Machine {
	m := &Machine{}
	m.Reset(img)
	return m
}

// Reset re-targets the machine at an image, reusing every buffer the
// previous program allocated: the multi-megabyte data memory, the pending-
// write queue, the cache tag and TLB arrays, and — when the image pointer
// is unchanged — the pre-decoded execution plan. It restores the machine to
// the state New would produce: architectural state zeroed, stats cleared,
// instrumentation hooks (InjectWrite, TraceFn, WatchStore, OnInterrupt)
// removed, DMA stopped, and the certified fast path disabled (re-apply a
// certificate after Reset to re-enable it). Callers that run many programs
// — the fuzz oracle, the experiment harness, benchmarks — pool machines
// through Reset instead of reallocating them.
func (m *Machine) Reset(img *isa.Image) {
	if m.Img != img {
		m.plan = buildPlan(img)
		m.Img = img
	}
	m.Cfg = img.Cfg
	if need := img.RequiredMem(); int64(cap(m.Mem)) >= need {
		m.Mem = m.Mem[:need]
		clear(m.Mem)
	} else {
		m.Mem = make([]byte, need)
	}

	m.iregs = [4][64]uint32{}
	m.fregs = [4][32]uint64{}
	m.sf = [4][16]uint64{}
	m.bb = [4][8]bool{}
	m.pc = 0
	m.beat = 0
	m.pending = m.pending[:0]
	m.retired = m.retired[:0]
	m.out.Reset()
	m.halted = false
	m.exit = 0
	m.fast = false
	m.bankBusy = [64]int64{}
	m.curUnit = ""

	m.dmaRate, m.dmaBase, m.dmaLen, m.dmaIssued = 0, 0, 0, 0

	if len(m.itags) != img.Cfg.ICacheInstrs {
		m.itags = make([]int, img.Cfg.ICacheInstrs)
		m.iasids = make([]uint8, img.Cfg.ICacheInstrs)
	}
	for i := range m.itags {
		m.itags[i] = -1
		m.iasids[i] = 0
	}
	if len(m.dtlb) != TLBEntries {
		m.dtlb = make([]int64, TLBEntries)
		m.itlb = make([]int64, TLBEntries)
		m.dtlbAsids = make([]uint8, TLBEntries)
		m.itlbAsids = make([]uint8, TLBEntries)
	}
	for i := range m.dtlb {
		m.dtlb[i] = -1
		m.itlb[i] = -1
		m.dtlbAsids[i] = 0
		m.itlbAsids[i] = 0
	}
	m.asid = 0

	m.FlushOnSwitch = false
	m.InjectWrite = nil
	m.TraceFn = nil
	m.WatchStore = nil
	m.InterruptEvery = 0
	m.OnInterrupt = nil
	m.InterruptBeats = 0
	m.nextInterrupt = 0

	m.CycleLimit = 2_000_000_000
	m.CtxCheckEvery = DefaultCtxCheckBeats
	m.CheckRes = !img.Cfg.Ideal
	m.Stats = Stats{}
}

// A Certificate attests that a static verifier proved the image obeys the
// §6 no-interlock schedule contract over every path — the machine may then
// run the pre-decoded plan straight, with no dynamic legality re-checking.
// The concrete implementation is schedcheck.Certify; the simulator
// deliberately depends only on this interface so the verifier and the
// machine model remain independent implementations of the contract.
type Certificate interface {
	// CertifiedImage returns the exact image the certificate covers.
	CertifiedImage() *isa.Image
}

// UseCertificate switches the machine onto the certified fast path:
// dynamic resource checking and write-write race detection are skipped,
// because the certificate proves statically that no executable path can
// violate them. The guards for conditions a legal schedule cannot exclude
// — PC bounds, data memory bounds and alignment, integer divide by zero,
// unknown opcodes and syscalls — remain live. The certificate must cover
// exactly the image the machine is executing.
func (m *Machine) UseCertificate(c Certificate) error {
	if c == nil || c.CertifiedImage() != m.Img {
		return fmt.Errorf("vliw: certificate does not cover this image")
	}
	m.fast = true
	return nil
}

// Fast reports whether the machine is on the certified fast path.
func (m *Machine) Fast() bool { return m.fast }

// Output returns the output printed so far.
func (m *Machine) Output() string { return m.out.String() }

// StartDMA starts the I/O processor streaming into the byte range
// [base, base+n), wrapping circularly, at rate bytes per second. The IOP
// moves 64-bit doublewords and contends with the CPU through the ordinary
// bank-busy mechanism, so I/O load surfaces as CPU bank stalls — cycle
// stealing, exactly as Section 8.3 describes. The engine is capped at half
// of peak memory bandwidth, the paper's stated IOP limit.
func (m *Machine) StartDMA(base, n int64, rate float64) {
	if half := m.Cfg.PeakMemBandwidth() / 2; rate > half {
		rate = half
	}
	m.dmaRate = rate
	m.dmaBase = base
	m.dmaLen = n
	m.dmaIssued = 0
}

// dmaCatchUp issues every IOP reference due by the current beat. Each one
// occupies its RAM bank for the usual busy window and lands real bytes in
// memory; the CPU's bank-stall prescan then sees the claimed banks.
func (m *Machine) dmaCatchUp() {
	if m.dmaRate <= 0 || m.dmaLen < 8 {
		return
	}
	beatsPerRef := 8 / (m.dmaRate * mach.BeatNs * 1e-9)
	due := int64(float64(m.beat) / beatsPerRef)
	for m.dmaIssued < due {
		refBeat := int64(float64(m.dmaIssued) * beatsPerRef)
		ea := m.dmaBase + (m.dmaIssued*8)%m.dmaLen
		if ea < 0 {
			m.dmaIssued++
			m.Stats.DMARefs++
			continue
		}
		ctrl, bank := m.Cfg.BankOf(ea)
		id := ctrl*8 + bank
		end := refBeat + mach.StageBank + int64(m.Cfg.BankBusyBeats)
		if end > m.bankBusy[id] {
			m.bankBusy[id] = end
		}
		if ea >= 0 && ea+8 <= int64(len(m.Mem)) {
			for k := int64(0); k < 8; k++ {
				m.Mem[ea+k] = byte(m.dmaIssued)
			}
		}
		m.dmaIssued++
		m.Stats.DMARefs++
	}
}

// ContextSwitch deschedules the current process and resumes it under a new
// address-space ID, charging the full register-state save/restore cost
// through the memory system (Section 8.1's ~15us figure). With process
// tags (the default), cache and TLB entries survive across the switch and
// "no purging is necessary"; set FlushOnSwitch to model an untagged
// machine that must invalidate everything.
func (m *Machine) ContextSwitch(asid uint8) {
	cfg := m.Cfg
	// State: 64 I + 64 F words per pair, 32 SF words per pair, 16 misc.
	words := int64(cfg.Pairs)*(64+64+32) + 16
	// Stored and reloaded as 64-bit doubles, one per board per beat,
	// capped by the store buses.
	perBeat := 2 * int64(cfg.Pairs)
	if perBeat > 2*int64(cfg.StoreBuses) {
		perBeat = 2 * int64(cfg.StoreBuses)
	}
	cost := 2*(words+perBeat-1)/perBeat + 60
	m.beat += cost
	m.Stats.Switches++
	m.Stats.SwitchBeats += cost
	m.asid = asid
	if m.FlushOnSwitch {
		for i := range m.itags {
			m.itags[i] = -1
		}
		for i := range m.dtlb {
			m.dtlb[i] = -1
			m.itlb[i] = -1
		}
	}
}

// PeekI reads an integer register (debugging and tests).
func (m *Machine) PeekI(board, idx int) int32 { return int32(m.iregs[board][idx]) }

// PeekF reads a floating register (debugging and tests).
func (m *Machine) PeekF(board, idx int) float64 {
	return math.Float64frombits(m.fregs[board][idx])
}

// Run boots the machine and executes until HALT. It returns main's exit
// value and the captured output. Run never polls a context; use RunContext
// for cancelable execution.
func (m *Machine) Run() (int32, string, error) { return m.run(nil) }

// RunContext is Run with cooperative cancellation: the machine polls ctx
// every CtxCheckEvery beats (at instruction boundaries) and abandons the run
// with *ErrCanceled — wrapping ctx.Err() — within one interval of the
// context being canceled or timing out. The poll sits outside the beat loop
// proper, so its cost on the certified fast path is below the benchmark
// noise floor (see BenchmarkSimulatorFastCtx).
func (m *Machine) RunContext(ctx context.Context) (int32, string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return m.run(ctx)
}

// run is the shared boot-and-step loop; ctx == nil means no cancellation
// polling at all (the Run path).
func (m *Machine) run(ctx context.Context) (int32, string, error) {
	if err := m.Img.InitMem(m.Mem); err != nil {
		return 0, "", err
	}
	// Boot: SP at top of memory, PC at entry.
	m.iregs[mach.RegSP.Board][mach.RegSP.Idx] = uint32(int64(len(m.Mem)) &^ 7)
	m.pc = m.Img.Entry
	ctxEvery := m.CtxCheckEvery
	if ctxEvery <= 0 {
		ctxEvery = DefaultCtxCheckBeats
	}
	// With no context the next check is pushed past any reachable beat, so
	// the cancelable and plain paths run the identical per-instruction code:
	// one integer compare.
	ctxCheckAt := int64(math.MaxInt64)
	if ctx != nil {
		ctxCheckAt = ctxEvery
	}
	for !m.halted {
		if m.beat >= ctxCheckAt {
			if err := ctx.Err(); err != nil {
				m.Stats.Beats = m.beat
				return 0, m.out.String(), &ErrCanceled{Beat: m.beat, PC: m.pc, Cause: err}
			}
			ctxCheckAt = m.beat + ctxEvery
		}
		if m.beat > m.CycleLimit {
			m.Stats.Beats = m.beat
			return 0, m.out.String(), &ErrCycleLimit{Limit: m.CycleLimit, PC: m.pc}
		}
		if err := m.step(); err != nil {
			m.Stats.Beats = m.beat
			return 0, m.out.String(), err
		}
	}
	m.Stats.Beats = m.beat
	return m.exit, m.out.String(), nil
}

func (m *Machine) fault(code TrapCode, format string, args ...any) error {
	return &Fault{Code: code, PC: m.pc, Beat: m.beat, Unit: m.curUnit, Msg: fmt.Sprintf(format, args...)}
}

// StallBank forces the RAM bank holding byte address ea busy for the next n
// beats — an injectable memory-system fault. A stalled bank is a pure timing
// perturbation: the bank-stall mechanism (§6.4.4) charges the delay before
// the instruction initiates, so results must be unchanged while Stats.Beats
// and Stats.BankStalls grow. The robustness tests use it to prove the
// machine is timing-robust where it must be and corruption-sensitive where
// it must be.
func (m *Machine) StallBank(ea int64, n int64) {
	if ea < 0 {
		return
	}
	ctrl, bank := m.Cfg.BankOf(ea)
	id := ctrl*8 + bank
	if until := m.beat + n; until > m.bankBusy[id] {
		m.bankBusy[id] = until
	}
}

// step executes one wide instruction (two beats) from the pre-decoded plan.
func (m *Machine) step() error {
	if m.pc < 0 || m.pc >= len(m.plan) {
		return m.fault(TrapBadPC, "instruction fetch outside image")
	}
	// timer interrupts are taken at instruction boundaries; the pipelines
	// drain on their own, so the handler cost is a pure beat charge
	if m.InterruptEvery > 0 && m.beat >= m.nextInterrupt {
		cost := m.InterruptBeats
		if cost == 0 {
			cost = 200
		}
		m.beat += cost
		m.Stats.Interrupts++
		m.Stats.InterruptBeats += cost
		if m.OnInterrupt != nil {
			m.OnInterrupt(m)
		}
		m.nextInterrupt = m.beat + m.InterruptEvery
	}
	m.fetch(m.pc)
	if m.TraceFn != nil {
		m.TraceFn(m.pc, m.beat)
	}
	pw := &m.plan[m.pc]
	m.Stats.Instrs++

	if m.dmaRate > 0 {
		m.dmaCatchUp()
	}
	// Pre-scan memory references for TLB misses and bank stalls. The
	// machine charges the bank-stall before initiating the instruction,
	// and takes the trap (history-queue replay) for the whole batch of
	// misses at once (§6.4.3: up to 16 misses pending per trap entry).
	if len(pw.mem) > 0 {
		var stall int64
		misses := 0
		for i := range pw.mem {
			pm := &pw.mem[i]
			ea, ok := m.eaOf(pm.op)
			if !ok {
				continue // fault reported at execution
			}
			if m.dtlbMiss(ea) {
				misses++
			}
			if ea < 0 {
				continue // wild negative address: no bank to stall on; faults (or the §7 funny number) at execution
			}
			ctrl, bank := m.Cfg.BankOf(ea)
			id := ctrl*8 + bank
			access := m.beat + pm.beat + mach.StageBank + stall
			if busy := m.bankBusy[id]; busy > access {
				stall += busy - access
			}
		}
		if misses > 0 {
			cost := int64(TrapEntryBeats + misses*TrapPerMissBeat)
			m.Stats.TLBMisses += int64(misses)
			m.Stats.TrapBeats += cost
			m.beat += cost
		}
		if stall > 0 {
			m.Stats.BankStalls += stall
			m.beat += stall
		}
	}

	nextPC := m.pc + 1
	// §6.5.2 multiway branch: the highest-priority (lowest Prio, first in
	// slot order on ties) true test supplies the next address.
	taken := false
	bestPrio := 0
	halted := false
	var exit int32

	for beat := 0; beat < 2; beat++ {
		if err := m.applyWrites(); err != nil {
			return err
		}
		if m.CheckRes && !m.fast {
			if v := pw.viol[beat]; v != nil {
				return m.fault(v.code, "%s", v.msg)
			}
		}
		ops := pw.beats[beat]
		for i := range ops {
			p := &ops[i]
			m.Stats.Ops++
			m.curUnit = p.unitName
			if p.unitKind == mach.UBR {
				t, halt, err := m.execBranch(p.op)
				if err != nil {
					return err
				}
				if halt != nil {
					halted = true
					exit = *halt
				}
				if t >= 0 && (!taken || p.op.Prio < bestPrio) {
					taken = true
					bestPrio = p.op.Prio
					nextPC = t
				}
			} else if err := m.execOp(p.op, p.lat); err != nil {
				return err
			}
			m.curUnit = ""
		}
		m.beat++
	}

	if taken {
		m.Stats.Taken++
	}
	if halted {
		m.halted = true
		m.exit = exit
		return nil
	}
	m.pc = nextPC
	return nil
}

func isMemOp(k ir.OpKind) bool {
	return k == ir.Load || k == ir.LoadSpec || k == ir.Store
}

// fetch models the instruction cache: direct-mapped, refilled in aligned
// blocks of four via the mask-word engine at memory bandwidth (§6.5.1).
func (m *Machine) fetch(pc int) {
	// instruction TLB: pages of PageSize/4 instructions (8KB of packed
	// words approximated)
	ipage := int64(pc) / (PageSize / 4)
	is := ipage % TLBEntries
	if m.itlb[is] != ipage || m.itlbAsids[is] != m.asid {
		m.itlb[is] = ipage
		m.itlbAsids[is] = m.asid
		m.Stats.TLBMisses++
		m.Stats.TrapBeats += TrapEntryBeats
		m.beat += TrapEntryBeats
	}
	if len(m.Img.Words) == 0 {
		// ideal machine: no encoded form, perfect cache
		m.Stats.ICacheHits++
		return
	}
	line := pc % len(m.itags)
	if m.itags[line] == pc && m.iasids[line] == m.asid {
		m.Stats.ICacheHits++
		return
	}
	m.Stats.ICacheMiss++
	// refill the aligned 4-instruction block
	blk := pc &^ 3
	words := 4 // the four mask words
	for i := blk; i < blk+4 && i < len(m.Img.Words); i++ {
		for _, w := range m.Img.Words[i] {
			if w != 0 {
				words++
			}
		}
		line := i % len(m.itags)
		m.itags[line] = i
		m.iasids[line] = m.asid
	}
	// refill proceeds at full bus bandwidth: ILoad buses carry 4 bytes per
	// beat each; mask interpretation adds a fixed 2 beats
	buses := m.Cfg.ILoadBuses
	beats := int64((words+buses-1)/buses) + 2
	m.Stats.RefillBeats += beats
	m.beat += beats
}

// dtlbMiss checks and fills the data TLB for a byte address.
func (m *Machine) dtlbMiss(ea int64) bool {
	if ea < 0 {
		return false
	}
	page := ea / PageSize
	slot := page % TLBEntries
	if m.dtlb[slot] == page && m.dtlbAsids[slot] == m.asid {
		return false
	}
	m.dtlb[slot] = page
	m.dtlbAsids[slot] = m.asid
	return true
}

// applyWrites retires pipeline writes due at the current beat ("the
// destination register is specified when the operation is initiated, and a
// hardware control pipeline carries the destination forward", §6.2). The
// handful of writes retiring in any one beat are race-checked pairwise
// against a reused scratch list — no per-beat map. On the certified fast
// path the race check is skipped: schedcheck's dataflow analysis proved no
// path can retire two writes into one register together.
func (m *Machine) applyWrites() error {
	retired := m.retired[:0]
	kept := m.pending[:0]
	for _, w := range m.pending {
		if w.beat > m.beat {
			kept = append(kept, w)
			continue
		}
		if !m.fast {
			for i := range retired {
				if retired[i].dst == w.dst {
					return m.fault(TrapWriteRace, "write-write race on %s: writes issued at word %d and word %d retire together",
						w.dst, retired[i].pc, w.pc)
				}
			}
			retired = append(retired, w)
		}
		val := w.val
		if m.InjectWrite != nil {
			val = m.InjectWrite(m.beat, w.dst, val)
		}
		m.writeReg(w.dst, val)
	}
	m.pending = kept
	m.retired = retired[:0]
	return nil
}

func (m *Machine) writeReg(r mach.PReg, v uint64) {
	switch r.Bank {
	case mach.BankI:
		m.iregs[r.Board][r.Idx] = uint32(v)
	case mach.BankF:
		m.fregs[r.Board][r.Idx] = v
	case mach.BankSF:
		m.sf[r.Board][r.Idx] = v
	case mach.BankB:
		m.bb[r.Board][r.Idx] = v != 0
	}
}

func (m *Machine) readReg(r mach.PReg) uint64 {
	switch r.Bank {
	case mach.BankI:
		return uint64(m.iregs[r.Board][r.Idx])
	case mach.BankF:
		return m.fregs[r.Board][r.Idx]
	case mach.BankSF:
		return m.sf[r.Board][r.Idx]
	case mach.BankB:
		if m.bb[r.Board][r.Idx] {
			return 1
		}
		return 0
	}
	return 0
}

// readArg evaluates an operand: register read or immediate.
func (m *Machine) readArg(a mach.Arg) uint64 {
	if a.IsImm {
		return uint64(uint32(a.Imm))
	}
	if !a.Reg.Valid() {
		return 0
	}
	return m.readReg(a.Reg)
}

func (m *Machine) readI(a mach.Arg) int32   { return int32(uint32(m.readArg(a))) }
func (m *Machine) readF(a mach.Arg) float64 { return math.Float64frombits(m.readArg(a)) }
func (m *Machine) enqueue(dst mach.PReg, val uint64, lat int) {
	if !dst.Valid() {
		return
	}
	m.pending = append(m.pending, pendingWrite{beat: m.beat + int64(lat), dst: dst, val: val, pc: m.pc})
}

// eaOf computes a memory op's effective address (A + B).
func (m *Machine) eaOf(o *mach.Op) (int64, bool) {
	if !o.A.IsImm && !o.A.Reg.Valid() {
		return 0, false
	}
	base := int64(m.readI(o.A))
	off := int64(m.readI(o.B))
	return base + off, true
}
