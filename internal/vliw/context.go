package vliw

import (
	"bytes"
	"math"

	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// A Context is the architectural state of one hardware context: everything
// the §8.1 process model says belongs to a *program* rather than to the
// machine. The TRACE argument is that context switching is cheap because
// this state is small and bank-organized; the simulator makes the same
// split literal. The Machine owns the microarchitecture — configuration,
// decoded execution plans, the DMA engine, instrumentation hooks, and the
// context scheduler — while each Context owns:
//
//   - the partitioned register banks (I, F, store-file, branch-bank), the
//     PC, and the in-flight register-write pipeline (§6.2 carries
//     destinations forward in hardware; the pending queue is that pipeline);
//   - its own address space: a private RAM image, data/instruction TLBs,
//     and instruction-cache tags. The real machine shares one tagged cache
//     and one RAM; the simulator gives each context a private view, which
//     is the limit case of perfect tagging ("no purging is necessary",
//     §6.1) and keeps a context's behavior bit-identical whether it runs
//     alone or time-shared — the property the isolation suite asserts;
//   - a virtual clock (beat) that advances only while the context
//     executes, so its Stats are those of an undisturbed solo run;
//   - its banked Stats. While a context is current the machine accumulates
//     into Machine.Stats (the hottest writes in the beat loop); the
//     scheduler banks them back on every rotation and at retirement.
//
// Context values are created and pooled by their Machine (Reset and
// ResetMany); they are not constructed directly.
type Context struct {
	id     int
	img    *isa.Image
	plan   []planWord
	fast   bool
	safe   bool // plan is the guard-free safe-tier plan (UseSafeCertificate)
	native bool // nplan is the closure-threaded translation (UseNativeCertificate)
	nplan  *nativePlan
	asid   uint8

	// Architectural register state, partitioned per board pair (§6).
	iregs [4][64]uint32
	fregs [4][32]uint64
	sf    [4][16]uint64
	bb    [4][8]bool

	pc      int
	beat    int64 // virtual clock: beats this context has executed
	pending []pendingWrite
	retired []pendingWrite // scratch: writes retired this beat (race check)

	// Native-tier retire ring (native.go): in-flight register writes
	// bucketed by retire beat. c.pending stays the canonical serialized
	// form — the ring is flushed back into it for Snapshot and ingested
	// from it after Restore.
	nring    [][]ringWrite
	nrmask   int64  // len(nring)-1, cached for the push/drain hot paths
	ndrained int64  // last beat whose ring bucket has been drained
	nseq     uint32 // issue-order sequence number for ring writes
	nscratch []ringWrite
	out      bytes.Buffer
	halted   bool
	exit     int32

	// Private memory-system view: address space, TLBs, icache tags, and
	// bank-busy windows on the context's own timeline.
	mem       []byte
	bankBusy  [64]int64
	itags     []int
	iasids    []uint8
	dtlb      []int64
	dtlbAsids []uint8
	itlb      []int64
	itlbAsids []uint8

	// Scheduler bookkeeping (multi-context runs).
	done bool
	err  error // terminal trap or cycle-limit, nil while runnable/completed

	// Checkpoint/restore bookkeeping (snapshot.go). booted marks that the
	// context holds live execution state (boot ran, or a snapshot was
	// restored) — the precondition for Snapshot. restored marks state that
	// came from Restore: the run loops skip boot and continue mid-program.
	booted   bool
	restored bool

	// Stats is the context's banked performance counters; authoritative
	// whenever the context is not current on its machine.
	Stats Stats
}

// reset re-targets the context at an image, reusing every buffer the
// previous program allocated, and restores the pristine boot state.
func (c *Context) reset(id int, img *isa.Image, plan []planWord, cfg mach.Config) {
	c.id = id
	c.img = img
	c.plan = plan
	c.fast = false
	c.safe = false
	c.native = false
	c.nplan = nil
	c.asid = 0

	if need := img.RequiredMem(); int64(cap(c.mem)) >= need {
		c.mem = c.mem[:need]
		clear(c.mem)
	} else {
		c.mem = make([]byte, need)
	}

	c.iregs = [4][64]uint32{}
	c.fregs = [4][32]uint64{}
	c.sf = [4][16]uint64{}
	c.bb = [4][8]bool{}
	c.pc = 0
	c.beat = 0
	c.pending = c.pending[:0]
	c.retired = c.retired[:0]
	for i := range c.nring {
		c.nring[i] = c.nring[i][:0]
	}
	c.ndrained = 0
	c.nseq = 0
	c.nscratch = c.nscratch[:0]
	c.out.Reset()
	c.halted = false
	c.exit = 0
	c.bankBusy = [64]int64{}

	if len(c.itags) != cfg.ICacheInstrs {
		c.itags = make([]int, cfg.ICacheInstrs)
		c.iasids = make([]uint8, cfg.ICacheInstrs)
	}
	for i := range c.itags {
		c.itags[i] = -1
		c.iasids[i] = 0
	}
	if len(c.dtlb) != TLBEntries {
		c.dtlb = make([]int64, TLBEntries)
		c.itlb = make([]int64, TLBEntries)
		c.dtlbAsids = make([]uint8, TLBEntries)
		c.itlbAsids = make([]uint8, TLBEntries)
	}
	for i := range c.dtlb {
		c.dtlb[i] = -1
		c.itlb[i] = -1
		c.dtlbAsids[i] = 0
		c.itlbAsids[i] = 0
	}

	c.done = false
	c.err = nil
	c.booted = false
	c.restored = false
	c.Stats = Stats{}
}

// boot initializes the context for execution: the program's static data is
// laid into its memory, SP points at the top, and the PC at the entry word.
func (c *Context) boot() error {
	if err := c.img.InitMem(c.mem); err != nil {
		return err
	}
	c.iregs[mach.RegSP.Board][mach.RegSP.Idx] = uint32(int64(len(c.mem)) &^ 7)
	c.pc = c.img.Entry
	c.booted = true
	return nil
}

func (c *Context) writeReg(r mach.PReg, v uint64) {
	switch r.Bank {
	case mach.BankI:
		c.iregs[r.Board][r.Idx] = uint32(v)
	case mach.BankF:
		c.fregs[r.Board][r.Idx] = v
	case mach.BankSF:
		c.sf[r.Board][r.Idx] = v
	case mach.BankB:
		c.bb[r.Board][r.Idx] = v != 0
	}
}

func (c *Context) readReg(r mach.PReg) uint64 {
	switch r.Bank {
	case mach.BankI:
		return uint64(c.iregs[r.Board][r.Idx])
	case mach.BankF:
		return c.fregs[r.Board][r.Idx]
	case mach.BankSF:
		return c.sf[r.Board][r.Idx]
	case mach.BankB:
		if c.bb[r.Board][r.Idx] {
			return 1
		}
		return 0
	}
	return 0
}

// readArg evaluates an operand: register read or immediate.
func (c *Context) readArg(a mach.Arg) uint64 {
	if a.IsImm {
		return uint64(uint32(a.Imm))
	}
	if !a.Reg.Valid() {
		return 0
	}
	return c.readReg(a.Reg)
}

func (c *Context) readI(a mach.Arg) int32   { return int32(uint32(c.readArg(a))) }
func (c *Context) readF(a mach.Arg) float64 { return math.Float64frombits(c.readArg(a)) }

// enqueue schedules a register write into the context's hardware write
// pipeline, retiring lat beats after issue.
func (c *Context) enqueue(dst mach.PReg, val uint64, lat int) {
	if !dst.Valid() {
		return
	}
	c.pending = append(c.pending, pendingWrite{beat: c.beat + int64(lat), dst: dst, val: val, pc: c.pc})
}

// eaOf computes a memory op's effective address (A + B).
func (c *Context) eaOf(o *mach.Op) (int64, bool) {
	if !o.A.IsImm && !o.A.Reg.Valid() {
		return 0, false
	}
	base := int64(c.readI(o.A))
	off := int64(c.readI(o.B))
	return base + off, true
}

// dtlbMiss checks and fills the data TLB for a byte address.
func (c *Context) dtlbMiss(ea int64) bool {
	if ea < 0 {
		return false
	}
	// ea is non-negative here, so the page split is an unsigned shift and
	// mask (PageSize and TLBEntries are powers of two) — the prescan calls
	// this for every memory reference on every tier.
	page := int64(uint64(ea) / PageSize)
	slot := page & (TLBEntries - 1)
	if c.dtlb[slot] == page && c.dtlbAsids[slot] == c.asid {
		return false
	}
	c.dtlb[slot] = page
	c.dtlbAsids[slot] = c.asid
	return true
}

// Output returns the output the context has printed so far.
func (c *Context) Output() string { return c.out.String() }

// Fast reports whether the context runs on the certified fast path.
func (c *Context) Fast() bool { return c.fast }

// Safe reports whether the context runs on the guard-free safe tier.
func (c *Context) Safe() bool { return c.safe }

// Native reports whether the context runs on the closure-threaded native
// tier.
func (c *Context) Native() bool { return c.native }

// Tier reports the context's execution tier.
func (c *Context) Tier() Tier {
	switch {
	case c.native:
		return TierNative
	case c.safe:
		return TierSafe
	case c.fast:
		return TierFast
	}
	return TierChecked
}

// Err returns the context's terminal error: a *Fault or *ErrCycleLimit when
// the context died, nil while it is runnable or after a clean halt.
func (c *Context) Err() error { return c.err }

// Halted reports whether the context ran to a clean HALT.
func (c *Context) Halted() bool { return c.halted }

// ContextResult is one context's completed execution within a RunMany: its
// exit value, captured output, solo-equivalent Stats, and — when the
// context trapped or exhausted the cycle budget — its terminal error.
// A context's failure retires only that context; the others run on.
type ContextResult struct {
	Exit   int32
	Output string
	Stats  Stats
	Err    error
}

// SchedStats are the machine-level context-scheduler counters for one
// RunMany execution. TotalBeats is the machine's wall clock: the sum of
// every context's useful beats plus unhidden stalls plus switch overhead.
// HiddenBeats are bank-stall and icache-refill beats that overlapped
// another resident context's execution — the latency the paper's
// multi-context machine hides. Sum of per-context Stats.Beats minus
// HiddenBeats plus SwitchBeats equals TotalBeats.
type SchedStats struct {
	Contexts    int
	TotalBeats  int64
	BusyBeats   int64 // beats spent executing instructions
	HiddenBeats int64 // stall beats overlapped by another context
	Switches    int64 // context rotations performed by the scheduler
	SwitchBeats int64 // machine beats charged for those rotations
}

// add accumulates another context's counters (for the machine-level
// aggregate RunMany leaves in Machine.Stats).
func (s *Stats) add(o *Stats) {
	s.Beats += o.Beats
	s.Instrs += o.Instrs
	s.Ops += o.Ops
	s.FloatOps += o.FloatOps
	s.MemRefs += o.MemRefs
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.SpecLoads += o.SpecLoads
	s.SpecFaults += o.SpecFaults
	s.BankStalls += o.BankStalls
	s.ICacheMiss += o.ICacheMiss
	s.ICacheHits += o.ICacheHits
	s.RefillBeats += o.RefillBeats
	s.TLBMisses += o.TLBMisses
	s.TrapBeats += o.TrapBeats
	s.Branches += o.Branches
	s.Taken += o.Taken
	s.Syscalls += o.Syscalls
	s.Interrupts += o.Interrupts
	s.InterruptBeats += o.InterruptBeats
	s.Switches += o.Switches
	s.SwitchBeats += o.SwitchBeats
	s.DMARefs += o.DMARefs
}
