package vliw

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// Three behaviorally distinct programs for the time-sharing suite: their
// outputs, exits, and beat counts all differ, so cross-context state leaks
// show up as mismatches rather than coincidences.
const (
	ctxSrcA = `
func main() int {
	var s int = 0
	for (var i int = 0; i < 500; i = i + 1) { s = s + i }
	print_i(s)
	return s & 255
}`
	ctxSrcB = `
var v [256]float
func main() int {
	for (var i int = 0; i < 256; i = i + 1) { v[i] = float(i) * 0.5 }
	var s float = 0.0
	for (var i int = 0; i < 256; i = i + 1) { s = s + v[i] }
	print_f(s)
	return int(s)
}`
	ctxSrcC = `
func main() int {
	var x int = 1
	for (var i int = 0; i < 300; i = i + 1) { x = (x * 5 + 3) & 16383 }
	print_i(x)
	print_i(x ^ 255)
	return x & 127
}`
)

// soloRun executes one image on a fresh machine and returns the results a
// time-shared context must reproduce exactly.
func soloRun(t *testing.T, img *isa.Image) (int32, string, Stats) {
	t.Helper()
	m := New(img)
	v, out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return v, out, m.Stats
}

// TestRunManySoloEquivalence is the core contract of the hardware-context
// model: every context's exit, output, and full Stats are bit-identical to
// an undisturbed solo run of the same program.
func TestRunManySoloEquivalence(t *testing.T) {
	cfg := mach.Trace7()
	imgs := []*isa.Image{
		build(t, ctxSrcA, cfg), build(t, ctxSrcB, cfg), build(t, ctxSrcC, cfg),
	}
	type want struct {
		exit int32
		out  string
		st   Stats
	}
	wants := make([]want, len(imgs))
	for i, img := range imgs {
		v, out, st := soloRun(t, img)
		wants[i] = want{v, out, st}
	}

	m := New(imgs[0])
	if err := m.ResetMany(imgs); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(imgs) {
		t.Fatalf("got %d results for %d contexts", len(rs), len(imgs))
	}
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("context %d: %v", i, r.Err)
		}
		if r.Exit != wants[i].exit || r.Output != wants[i].out {
			t.Errorf("context %d: got (%d, %q), solo (%d, %q)", i, r.Exit, r.Output, wants[i].exit, wants[i].out)
		}
		if r.Stats != wants[i].st {
			t.Errorf("context %d stats diverge from solo run:\n shared: %+v\n solo:   %+v", i, r.Stats, wants[i].st)
		}
	}
	// Machine-level accounting: wall clock = useful beats - hidden + switch
	// overhead, and the aggregate stats sum the per-context counters.
	var sum int64
	for _, w := range wants {
		sum += w.st.Beats
	}
	s := m.Sched
	if s.Contexts != 3 || s.TotalBeats != sum-s.HiddenBeats+s.SwitchBeats {
		t.Errorf("scheduler books don't balance: %+v, solo beat sum %d", s, sum)
	}
	if s.Switches == 0 {
		t.Error("three contexts time-shared with zero rotations")
	}
	if m.Stats.Beats != s.TotalBeats {
		t.Errorf("aggregate Beats %d != wall clock %d", m.Stats.Beats, s.TotalBeats)
	}
}

// TestRunManyK1MatchesRun: a single-context RunMany is the same machine as
// Run — same results, same stats, wall clock equal to the context clock.
func TestRunManyK1MatchesRun(t *testing.T) {
	img := build(t, ctxSrcC, mach.Trace7())
	v, out, st := soloRun(t, img)

	m := New(img)
	if err := m.ResetMany([]*isa.Image{img}); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Exit != v || rs[0].Output != out || rs[0].Stats != st {
		t.Errorf("K=1 RunMany diverges from Run: %+v vs (%d, %q, %+v)", rs[0], v, out, st)
	}
	if m.Sched.TotalBeats != st.Beats || m.Sched.HiddenBeats != 0 || m.Sched.Switches != 0 {
		t.Errorf("K=1 scheduler should be invisible: %+v", m.Sched)
	}
}

// TestRunManyIsolationTrap: a context that traps retires alone; its
// neighbors still produce byte-identical output and Stats vs solo runs.
func TestRunManyIsolationTrap(t *testing.T) {
	cfg := mach.Trace7()
	good1 := build(t, ctxSrcA, cfg)
	bad := build(t, `
func main() int {
	var d int = 0
	for (var i int = 0; i < 50; i = i + 1) { d = i - i }
	return 7 / d
}`, cfg)
	good2 := build(t, ctxSrcB, cfg)

	v1, out1, st1 := soloRun(t, good1)
	v2, out2, st2 := soloRun(t, good2)

	m := New(good1)
	if err := m.ResetMany([]*isa.Image{good1, bad, good2}); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatalf("a per-context trap must not fail the machine: %v", err)
	}
	var f *Fault
	if !errors.As(rs[1].Err, &f) || f.Code != TrapDivZero {
		t.Fatalf("context 1: want div-zero fault, got %v", rs[1].Err)
	}
	if rs[0].Err != nil || rs[0].Exit != v1 || rs[0].Output != out1 || rs[0].Stats != st1 {
		t.Errorf("context 0 disturbed by neighbor's trap: %+v", rs[0])
	}
	if rs[2].Err != nil || rs[2].Exit != v2 || rs[2].Output != out2 || rs[2].Stats != st2 {
		t.Errorf("context 2 disturbed by neighbor's trap: %+v", rs[2])
	}
}

// TestRunManyIsolationCycleLimit: a runaway context exhausts the per-context
// beat budget and retires with ErrCycleLimit; the others complete intact.
func TestRunManyIsolationCycleLimit(t *testing.T) {
	cfg := mach.Trace7()
	good := build(t, ctxSrcC, cfg)
	runaway := build(t, loopSrc, cfg)
	v, out, st := soloRun(t, good)

	m := New(good)
	if err := m.ResetMany([]*isa.Image{runaway, good}); err != nil {
		t.Fatal(err)
	}
	m.CycleLimit = 100_000 // far below loopSrc's requirement, far above good's
	rs, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var lim *ErrCycleLimit
	if !errors.As(rs[0].Err, &lim) || lim.Limit != 100_000 {
		t.Fatalf("context 0: want cycle-limit error, got %v", rs[0].Err)
	}
	if rs[1].Err != nil || rs[1].Exit != v || rs[1].Output != out || rs[1].Stats != st {
		t.Errorf("context 1 disturbed by neighbor's runaway: %+v", rs[1])
	}
}

// TestRunManyDeterministic: the context scheduler is a pure function of the
// programs — repeated runs, including under a different GOMAXPROCS, produce
// identical per-context results and identical scheduler counters.
func TestRunManyDeterministic(t *testing.T) {
	cfg := mach.Trace7()
	imgs := []*isa.Image{
		build(t, ctxSrcA, cfg), build(t, ctxSrcB, cfg),
		build(t, ctxSrcC, cfg), build(t, ctxSrcA, cfg),
	}
	run := func() ([]ContextResult, SchedStats) {
		m := New(imgs[0])
		if err := m.ResetMany(imgs); err != nil {
			t.Fatal(err)
		}
		rs, err := m.RunMany(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rs, m.Sched
	}
	ref, refSched := run()
	for trial := 0; trial < 3; trial++ {
		if trial == 1 {
			old := runtime.GOMAXPROCS(1)
			defer runtime.GOMAXPROCS(old)
		}
		rs, sched := run()
		if sched != refSched {
			t.Fatalf("trial %d: scheduler diverged: %+v vs %+v", trial, sched, refSched)
		}
		for i := range rs {
			if rs[i].Exit != ref[i].Exit || rs[i].Output != ref[i].Output || rs[i].Stats != ref[i].Stats {
				t.Fatalf("trial %d context %d diverged", trial, i)
			}
		}
	}
}

// TestRunManySwitchCost: a nonzero CtxSwitchBeats charges the machine wall
// clock per rotation without touching any context's own results or clock.
func TestRunManySwitchCost(t *testing.T) {
	cfg := mach.Trace7()
	imgs := []*isa.Image{build(t, ctxSrcA, cfg), build(t, ctxSrcC, cfg)}

	free := New(imgs[0])
	if err := free.ResetMany(imgs); err != nil {
		t.Fatal(err)
	}
	rsFree, err := free.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	paid := New(imgs[0])
	if err := paid.ResetMany(imgs); err != nil {
		t.Fatal(err)
	}
	paid.SwitchBeats = 25
	rsPaid, err := paid.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range rsFree {
		if rsFree[i].Stats != rsPaid[i].Stats || rsFree[i].Output != rsPaid[i].Output {
			t.Errorf("context %d results changed with switch cost", i)
		}
	}
	if paid.Sched.Switches != free.Sched.Switches {
		t.Fatalf("switch cost changed the rotation pattern: %d vs %d", paid.Sched.Switches, free.Sched.Switches)
	}
	wantWall := free.Sched.TotalBeats + 25*paid.Sched.Switches
	if paid.Sched.TotalBeats != wantWall || paid.Sched.SwitchBeats != 25*paid.Sched.Switches {
		t.Errorf("wall clock %d, want %d (+%d switches x 25)", paid.Sched.TotalBeats, wantWall, paid.Sched.Switches)
	}
}

// TestRunManyQuantumFromConfig: the image configuration's CtxQuantum knob
// reaches the scheduler through ResetMany.
func TestRunManyQuantumFromConfig(t *testing.T) {
	cfg := mach.Trace7()
	cfg.CtxQuantum = 64
	imgs := []*isa.Image{build(t, ctxSrcA, cfg), build(t, ctxSrcC, cfg)}
	m := New(imgs[0])
	if err := m.ResetMany(imgs); err != nil {
		t.Fatal(err)
	}
	if m.Quantum != 64 {
		t.Fatalf("Quantum = %d after ResetMany, want 64 from config", m.Quantum)
	}
	fine, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fineSwitches := m.Sched.Switches

	if err := m.ResetMany(imgs); err != nil {
		t.Fatal(err)
	}
	m.Quantum = 100_000 // one giant slice: contexts run to completion in turn
	coarse, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fineSwitches <= m.Sched.Switches {
		t.Errorf("64-beat quantum switched %d times, 100k-beat quantum %d", fineSwitches, m.Sched.Switches)
	}
	for i := range fine {
		if fine[i].Stats != coarse[i].Stats || fine[i].Output != coarse[i].Output {
			t.Errorf("context %d results depend on the quantum", i)
		}
	}
}

// TestResetManyRejectsMixedConfigs: contexts share one microarchitecture.
func TestResetManyRejectsMixedConfigs(t *testing.T) {
	a := build(t, ctxSrcA, mach.Trace7())
	b := build(t, ctxSrcC, mach.Trace14())
	m := New(a)
	if err := m.ResetMany([]*isa.Image{a, b}); err == nil {
		t.Fatal("ResetMany accepted images linked for different machines")
	}
	if err := m.ResetMany(nil); err == nil {
		t.Fatal("ResetMany accepted an empty batch")
	}
}

// TestRunManyRequiresReset: re-running a consumed machine is an error, not
// an infinite scheduler spin.
func TestRunManyRequiresReset(t *testing.T) {
	img := build(t, ctxSrcA, mach.Trace7())
	m := New(img)
	if err := m.ResetMany([]*isa.Image{img, img}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunMany(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunMany(context.Background()); err == nil {
		t.Fatal("RunMany ran again without a reset")
	}
	// After a fresh ResetMany the machine serves again (pools rely on this).
	if err := m.ResetMany([]*isa.Image{img}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunMany(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRunManyCancellation: canceling the run's context stops the whole
// machine with ErrCanceled; already-retired contexts keep their results.
func TestRunManyCancellation(t *testing.T) {
	cfg := mach.Trace7()
	imgs := []*isa.Image{build(t, loopSrc, cfg), build(t, loopSrc, cfg)}
	m := New(imgs[0])
	if err := m.ResetMany(imgs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.RunMany(ctx)
	var ec *ErrCanceled
	if !errors.As(err, &ec) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrCanceled wrapping context.Canceled, got %v", err)
	}
}

// TestRunManyHidesStalls: with more than one resident context, bank-stall
// and refill beats overlap another context's execution, so the machine wall
// clock undercuts the sum of solo clocks — the paper's latency-hiding
// argument, measurable.
func TestRunManyHidesStalls(t *testing.T) {
	cfg := mach.Trace7()
	// Array sweeps miss the icache on entry and stall banks under
	// RollTheDice scheduling, so there are beats to hide.
	src := `
var p [2048]float
func main() int {
	for (var i int = 0; i < 2048; i = i + 1) { p[i] = float(i) }
	var s float = 0.0
	for (var i int = 0; i < 2048; i = i + 1) { s = s + p[i] }
	return int(s) & 1023
}`
	imgs := []*isa.Image{build(t, src, cfg), build(t, src, cfg)}
	m := New(imgs[0])
	if err := m.ResetMany(imgs); err != nil {
		t.Fatal(err)
	}
	rs, err := m.RunMany(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sum, stallish int64
	for _, r := range rs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		sum += r.Stats.Beats
		stallish += r.Stats.BankStalls + r.Stats.RefillBeats
	}
	if stallish == 0 {
		t.Skip("workload produced no stall beats to hide")
	}
	if m.Sched.HiddenBeats == 0 {
		t.Errorf("no stall beats hidden despite %d available", stallish)
	}
	if m.Sched.TotalBeats != sum-m.Sched.HiddenBeats+m.Sched.SwitchBeats {
		t.Errorf("books don't balance: %+v vs solo sum %d", m.Sched, sum)
	}
	if m.Sched.TotalBeats >= sum {
		t.Errorf("wall clock %d not below solo sum %d: nothing hidden", m.Sched.TotalBeats, sum)
	}
}
