package vliw

import (
	"testing"

	"github.com/multiflow-repro/trace/internal/mach"
)

// TestTopology asserts the structural organization of Figures 2 and 4: the
// simulator's machine is built of I-F board pairs, each contributing two
// integer ALUs, a floating adder, a floating multiplier, and a branch unit;
// four buses of each kind; interleaved memory controllers each carrying
// eight banks.
func TestTopology(t *testing.T) {
	for _, pairs := range []int{1, 2, 4} {
		cfg := mach.NewConfig(pairs)
		units := cfg.Units()
		count := map[mach.UnitKind]int{}
		perPair := map[uint8]int{}
		for _, u := range units {
			count[u.Kind]++
			perPair[u.Pair]++
		}
		if count[mach.UIALU] != 2*pairs {
			t.Errorf("pairs=%d: %d integer ALUs, want %d", pairs, count[mach.UIALU], 2*pairs)
		}
		if count[mach.UFA] != pairs || count[mach.UFM] != pairs {
			t.Errorf("pairs=%d: FA/FM = %d/%d, want %d each", pairs, count[mach.UFA], count[mach.UFM], pairs)
		}
		if count[mach.UBR] != pairs {
			t.Errorf("pairs=%d: %d branch units, want %d", pairs, count[mach.UBR], pairs)
		}
		for p := 0; p < pairs; p++ {
			if perPair[uint8(p)] != 5 {
				t.Errorf("pairs=%d: pair %d has %d units, want 5", pairs, p, perPair[uint8(p)])
			}
		}
		if cfg.ILoadBuses != 4 || cfg.FLoadBuses != 4 || cfg.StoreBuses != 4 || cfg.PABuses != 4 {
			t.Errorf("pairs=%d: bus counts not 4/4/4/4", pairs)
		}
		if cfg.BanksPerController != 8 || cfg.Controllers > 8 {
			t.Errorf("pairs=%d: memory system %dx%d outside Figure 4's bounds",
				pairs, cfg.Controllers, cfg.BanksPerController)
		}
		// every bank is reachable by the interleave and distinct
		seen := map[[2]int]bool{}
		for w := int64(0); w < int64(cfg.Banks()); w++ {
			c, b := cfg.BankOf(w * 8)
			seen[[2]int{c, b}] = true
		}
		if len(seen) != cfg.Banks() {
			t.Errorf("pairs=%d: interleave covers %d of %d banks", pairs, len(seen), cfg.Banks())
		}
	}
}

// TestRegisterFileGeometry asserts §6's register-file shape: 64 32-bit
// integer registers per I board, 32 64-bit floating registers per F board,
// a store file, and the 7-element branch bank.
func TestRegisterFileGeometry(t *testing.T) {
	cfg := mach.Trace28()
	if cfg.IRegsPerBank != 64 || cfg.FRegsPerBank != 32 {
		t.Errorf("register banks %d/%d, want 64/32", cfg.IRegsPerBank, cfg.FRegsPerBank)
	}
	if cfg.BranchBank != 7 {
		t.Errorf("branch bank has %d elements, want 7 (§6.5.2)", cfg.BranchBank)
	}
	if cfg.RFReadPorts != 4 || cfg.RFWritePorts != 4 {
		t.Errorf("crossbar ports %dR/%dW, want 4/4 (§6)", cfg.RFReadPorts, cfg.RFWritePorts)
	}
}
