package vliw

import (
	"fmt"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
)

// This file is the fast-path pre-decoder. The TRACE has no interlocks
// precisely so that nothing dynamic stands between the static plan and
// execution (§6); the simulator mirrors that by flattening every decoded
// instruction word into an execution plan once, at image load, instead of
// re-deriving it every beat:
//
//   - slots are split into per-beat lists, so the beat loop walks exactly
//     the operations that initiate, with no per-slot beat filtering;
//   - write latencies, which depend only on (opcode, type, Config), are
//     precomputed per slot;
//   - the unit name used for fault attribution is rendered once per slot
//     instead of fmt.Sprintf-ing on every execution;
//   - memory references are collected into a prescan list, so words with
//     no references skip the TLB/bank-stall prescan entirely;
//   - the §6 per-beat resource check (unit double-booking, register-file
//     read ports, one reference per I board, PA buses) is a function of the
//     instruction word alone, so it is evaluated once per word here and the
//     checked interpreter merely consults the precomputed verdict — the
//     per-beat map allocations of the old checkBeatResources disappear.
//
// The plan aliases the image's operations (planOp.op points into
// Img.Instrs); it snapshots structure, not values, and is rebuilt whenever
// Reset targets a different image.

// planOp is one pre-decoded slot operation. kind is the dispatch opcode the
// beat loop switches on: normally a copy of op.Kind, but the safe-tier plan
// (buildSafePlan) rewrites it to a guard-free synthetic opcode at sites a
// SafetyCertificate proves can never fault.
type planOp struct {
	op       *mach.Op
	kind     ir.OpKind
	lat      int // precomputed write latency in beats
	unitKind mach.UnitKind
	unitName string // precomputed fault attribution
}

// planMem is one memory reference for the prescan loop.
type planMem struct {
	op   *mach.Op
	beat int64 // issue beat within the instruction (0 or 1)
}

// resViol is a precomputed static resource violation for one (word, beat).
// The checked interpreter reports it when the beat executes, exactly where
// the old dynamic counting would have faulted; the certified fast path
// skips the consultation.
type resViol struct {
	code TrapCode
	msg  string
}

// planWord is one pre-decoded instruction word.
type planWord struct {
	beats [2][]planOp
	mem   []planMem
	viol  [2]*resViol
}

// buildPlan pre-decodes every instruction word of the image.
func buildPlan(img *isa.Image) []planWord {
	cfg := img.Cfg
	plan := make([]planWord, len(img.Instrs))

	// Unit names are shared across the image: render each once.
	unitNames := map[mach.Unit]string{}
	nameOf := func(u mach.Unit) string {
		s, ok := unitNames[u]
		if !ok {
			s = u.String()
			unitNames[u] = s
		}
		return s
	}

	for a := range img.Instrs {
		in := &img.Instrs[a]
		pw := &plan[a]
		for si := range in.Slots {
			s := &in.Slots[si]
			b := s.Beat & 1
			pw.beats[b] = append(pw.beats[b], planOp{
				op:       &s.Op,
				kind:     s.Op.Kind,
				lat:      latency(cfg, &s.Op),
				unitKind: s.Unit.Kind,
				unitName: nameOf(s.Unit),
			})
			if isMemOp(s.Op.Kind) {
				pw.mem = append(pw.mem, planMem{op: &s.Op, beat: int64(b)})
			}
		}
		pw.viol[0] = staticBeatViolation(in, cfg, 0)
		pw.viol[1] = staticBeatViolation(in, cfg, 1)
	}
	return plan
}

// staticBeatViolation evaluates the §6 static resource plan for one beat of
// an instruction word: ALU slot uniqueness, register-file port limits, bus
// counts, and the one-reference-per-I-board rule. Any overflow is a
// compiler bug surfacing as a hardware fault. The rules and messages are
// the ones the dynamic checkBeatResources used to apply every beat; the
// result depends only on the word, so it is computed once here.
func staticBeatViolation(in *mach.Instr, cfg mach.Config, beat uint8) *resViol {
	// Per-beat unit occupancy: 5 units per pair, up to 4 pairs.
	var units [4 * 5]bool
	var reads [4]int       // register-file reads per board
	var memPerBoard [4]int // memory references per I board
	pa := 0
	for si := range in.Slots {
		s := &in.Slots[si]
		if s.Beat != beat {
			continue
		}
		if ui := unitIndex(s.Unit); ui >= 0 {
			if units[ui] {
				return &resViol{TrapResource, fmt.Sprintf("two ops on unit %s in one beat", s.Unit)}
			}
			units[ui] = true
		}
		board := int(s.Unit.Pair)
		if board >= len(reads) {
			continue // out-of-config slots fault as TrapBadOp at execution
		}
		for _, a := range []mach.Arg{s.Op.A, s.Op.B, s.Op.C} {
			if !a.IsImm && a.Reg.Valid() {
				reads[board]++
			}
		}
		if isMemOp(s.Op.Kind) {
			memPerBoard[board]++
			pa++
		}
	}
	for b, n := range reads {
		if n > cfg.RFReadPorts {
			return &resViol{TrapResource, fmt.Sprintf("board %d: %d register reads in one beat (max %d)", b, n, cfg.RFReadPorts)}
		}
	}
	for b, n := range memPerBoard {
		if n > 1 {
			return &resViol{TrapResource, fmt.Sprintf("board %d initiated %d memory references in one beat", b, n)}
		}
	}
	if pa > cfg.PABuses {
		return &resViol{TrapResource, fmt.Sprintf("%d physical-address bus uses in one beat (max %d)", pa, cfg.PABuses)}
	}
	return nil
}

// Synthetic safe-tier opcodes. They exist only inside execution plans
// (planOp.kind) — never in a mach.Op — and name the guard-free variant of a
// guarded operation, specialized by access type so the beat loop pays no
// per-op size/type branch either. The block sits above every ir and mach
// opcode (those stay below 128; see the init check below).
const (
	opSafeLoadI32 ir.OpKind = 128 + iota
	opSafeLoadF64
	opSafeSpecI32 // proven speculative load: the §7 funny-number path is dead
	opSafeSpecF64
	opSafeStoreI32
	opSafeStoreF64
	opSafeDiv
	opSafeRem
)

func init() {
	// mach appends its opcodes after the IR range at 64; both must stay
	// below the plan-private safe block.
	if mach.OpHalt >= opSafeLoadI32 {
		panic("vliw: machine opcode range collides with safe-tier opcodes")
	}
}

// safeKind returns the guard-free synthetic opcode for a guarded operation,
// or ok=false when the operation has no safe variant (or an access type the
// analysis never proves).
func safeKind(o *mach.Op) (ir.OpKind, bool) {
	switch o.Kind {
	case ir.Load:
		switch o.Type {
		case ir.I32:
			return opSafeLoadI32, true
		case ir.F64:
			return opSafeLoadF64, true
		}
	case ir.LoadSpec:
		switch o.Type {
		case ir.I32:
			return opSafeSpecI32, true
		case ir.F64:
			return opSafeSpecF64, true
		}
	case ir.Store:
		switch o.Type {
		case ir.I32:
			return opSafeStoreI32, true
		case ir.F64:
			return opSafeStoreF64, true
		}
	case ir.Div:
		return opSafeDiv, true
	case ir.Rem:
		return opSafeRem, true
	}
	return 0, false
}

// buildSafePlan derives the safe-tier execution plan from the base plan:
// every slot the certificate's bitmask covers is re-dispatched to its
// guard-free synthetic opcode; everything else keeps the checked opcode, so
// a partially-proven image simply keeps more of its guards. Beat lists are
// copied (the base plan is shared by checked contexts and must stay
// pristine); the mem prescan list and the static resource verdicts are
// structural and shared.
//
// The walk mirrors buildPlan's slot order exactly, which is what lets it
// recover each planOp's (unit, beat) identity — the key the certificate's
// per-site bitmask is indexed by.
func buildSafePlan(img *isa.Image, base []planWord, cert SafetyCertificate) []planWord {
	plan := make([]planWord, len(base))
	copy(plan, base)
	for a := range img.Instrs {
		in := &img.Instrs[a]
		pw := &plan[a]
		pw.beats[0] = append([]planOp(nil), pw.beats[0]...)
		pw.beats[1] = append([]planOp(nil), pw.beats[1]...)
		var idx [2]int
		for si := range in.Slots {
			s := &in.Slots[si]
			b := s.Beat & 1
			p := &pw.beats[b][idx[b]]
			idx[b]++
			if k, ok := safeKind(&s.Op); ok && cert.SafeSite(a, s.Unit, s.Beat) {
				p.kind = k
			}
		}
	}
	return plan
}

// unitIndex maps a functional unit to a dense per-pair index, or -1 when
// the unit names a pair or ALU slot no TRACE configuration has.
func unitIndex(u mach.Unit) int {
	if u.Pair >= 4 || (u.Kind == mach.UIALU && u.Idx > 1) {
		return -1
	}
	base := int(u.Pair) * 5
	switch u.Kind {
	case mach.UIALU:
		return base + int(u.Idx)
	case mach.UFA:
		return base + 2
	case mach.UFM:
		return base + 3
	case mach.UBR:
		return base + 4
	}
	return -1
}
