package vliw

import (
	"encoding/json"
	"fmt"
)

// Tier names one of the simulator's execution tiers. The tiers form a
// strict ladder of statically-discharged dynamic checking: each one runs
// the identical architectural semantics — exit value, output, and every
// Stats counter are bit-identical across tiers, the invariant the fuzz
// oracle enforces — and differs only in which guards a certificate proves
// redundant.
//
//	TierChecked  every dynamic check live (no certificate)
//	TierFast     resource/race checks skipped (schedcheck Certificate)
//	TierSafe     + proven per-site guards deleted (safecheck SafeCertificate)
//	TierNative   + closure-threaded translation, no per-op dispatch
//
// The zero value is TierChecked, so an unset options field means "fully
// checked", matching the pre-Tier boolean API where Fast=false/Safe=false
// did the same.
type Tier int

const (
	TierChecked Tier = iota
	TierFast
	TierSafe
	TierNative
)

var tierNames = [...]string{
	TierChecked: "checked",
	TierFast:    "fast",
	TierSafe:    "safe",
	TierNative:  "native",
}

func (t Tier) String() string {
	if t >= 0 && int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// ParseTier maps a tier name ("checked", "fast", "safe", "native") to its
// Tier. The empty string parses as TierChecked, so optional flags and JSON
// fields need no special-casing.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "checked":
		return TierChecked, nil
	case "fast":
		return TierFast, nil
	case "safe":
		return TierSafe, nil
	case "native":
		return TierNative, nil
	}
	return 0, fmt.Errorf("unknown execution tier %q (want checked, fast, safe, or native)", s)
}

// MarshalJSON renders the tier by name: "tier":"safe".
func (t Tier) MarshalJSON() ([]byte, error) {
	if t < 0 || int(t) >= len(tierNames) {
		return nil, fmt.Errorf("cannot marshal invalid execution tier %d", int(t))
	}
	return json.Marshal(t.String())
}

// UnmarshalJSON accepts the tier name; null and "" mean TierChecked.
func (t *Tier) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*t = TierChecked
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("execution tier must be a string: %w", err)
	}
	v, err := ParseTier(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// ErrTierConflict reports an options struct whose explicit Tier contradicts
// its deprecated Fast/Safe compatibility booleans: the booleans imply a
// stronger tier than the one named. (The booleans naming a weaker tier is
// fine — Safe always implied Fast, so migrated callers may leave a stale
// Fast=true behind a Tier=TierSafe.)
type ErrTierConflict struct {
	Tier Tier
	Fast bool
	Safe bool
}

func (e *ErrTierConflict) Error() string {
	return fmt.Sprintf("conflicting execution tier selection: tier=%s with deprecated fast=%t safe=%t", e.Tier, e.Fast, e.Safe)
}

// ResolveTier combines an explicit Tier with the deprecated Fast/Safe
// booleans it replaced. An unset Tier (TierChecked, the zero value) defers
// to the booleans — Safe wins over Fast, as before. A set Tier wins over
// booleans that imply the same or a weaker tier, and conflicts (booleans
// implying a stronger tier than the one named) are rejected with
// *ErrTierConflict rather than silently picking one.
func ResolveTier(t Tier, fast, safe bool) (Tier, error) {
	if t < TierChecked || t > TierNative {
		return 0, fmt.Errorf("unknown execution tier %d", int(t))
	}
	boolTier := TierChecked
	if safe {
		boolTier = TierSafe
	} else if fast {
		boolTier = TierFast
	}
	if t == TierChecked {
		return boolTier, nil
	}
	if boolTier > t {
		return 0, &ErrTierConflict{Tier: t, Fast: fast, Safe: safe}
	}
	return t, nil
}
