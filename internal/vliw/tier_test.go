package vliw

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestTierStringAndParse(t *testing.T) {
	for _, tc := range []struct {
		tier Tier
		name string
	}{
		{TierChecked, "checked"},
		{TierFast, "fast"},
		{TierSafe, "safe"},
		{TierNative, "native"},
	} {
		if got := tc.tier.String(); got != tc.name {
			t.Errorf("%d.String() = %q, want %q", int(tc.tier), got, tc.name)
		}
		parsed, err := ParseTier(tc.name)
		if err != nil || parsed != tc.tier {
			t.Errorf("ParseTier(%q) = %v, %v, want %v", tc.name, parsed, err, tc.tier)
		}
	}
	if parsed, err := ParseTier(""); err != nil || parsed != TierChecked {
		t.Errorf("ParseTier(\"\") = %v, %v, want checked", parsed, err)
	}
	if _, err := ParseTier("turbo"); err == nil {
		t.Error("ParseTier accepted an unknown tier name")
	}
}

func TestTierJSONRoundTrip(t *testing.T) {
	b, err := json.Marshal(TierSafe)
	if err != nil || string(b) != `"safe"` {
		t.Fatalf("Marshal(TierSafe) = %s, %v, want \"safe\"", b, err)
	}
	var tr Tier
	if err := json.Unmarshal([]byte(`"native"`), &tr); err != nil || tr != TierNative {
		t.Fatalf("Unmarshal(\"native\") = %v, %v", tr, err)
	}
	if err := json.Unmarshal([]byte(`null`), &tr); err != nil || tr != TierChecked {
		t.Fatalf("Unmarshal(null) = %v, %v, want checked", tr, err)
	}
	if err := json.Unmarshal([]byte(`"warp"`), &tr); err == nil {
		t.Fatal("Unmarshal accepted an unknown tier name")
	}
}

func TestResolveTier(t *testing.T) {
	for _, tc := range []struct {
		tier       Tier
		fast, safe bool
		want       Tier
		conflict   bool
	}{
		// Unset tier defers to the deprecated booleans.
		{TierChecked, false, false, TierChecked, false},
		{TierChecked, true, false, TierFast, false},
		{TierChecked, false, true, TierSafe, false},
		{TierChecked, true, true, TierSafe, false},
		// Explicit tier wins over equal-or-weaker booleans.
		{TierFast, true, false, TierFast, false},
		{TierSafe, true, true, TierSafe, false},
		{TierNative, false, false, TierNative, false},
		{TierNative, true, true, TierNative, false},
		// Booleans implying a stronger tier than named: conflict.
		{TierFast, false, true, 0, true},
		{TierFast, true, true, 0, true},
	} {
		got, err := ResolveTier(tc.tier, tc.fast, tc.safe)
		if tc.conflict {
			var ec *ErrTierConflict
			if err == nil || !errors.As(err, &ec) {
				t.Errorf("ResolveTier(%v, %t, %t) err = %v, want *ErrTierConflict", tc.tier, tc.fast, tc.safe, err)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ResolveTier(%v, %t, %t) = %v, %v, want %v", tc.tier, tc.fast, tc.safe, got, err, tc.want)
		}
	}
	if _, err := ResolveTier(Tier(17), false, false); err == nil {
		t.Error("ResolveTier accepted an out-of-range tier")
	}
}
