package vliw

import (
	"errors"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/profile"
	"github.com/multiflow-repro/trace/internal/tsched"
)

// build compiles source to an image without going through internal/core
// (vliw must not import core).
func build(t *testing.T, src string, cfg mach.Config) *isa.Image {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	opt.Run(prog, opt.Default())
	prof := profile.Static(prog)
	codes, err := tsched.Compile(prog, cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	img, err := isa.Link(prog, codes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestRunSimple(t *testing.T) {
	img := build(t, `func main() int { print_i(7); return 41 + 1 }`, mach.Trace7())
	m := New(img)
	v, out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 || out != "7\n" {
		t.Errorf("got (%d, %q)", v, out)
	}
	if m.Stats.Beats == 0 || m.Stats.Instrs == 0 || m.Stats.Syscalls != 1 {
		t.Errorf("stats: %+v", m.Stats)
	}
}

func TestSelfDrainingPipelines(t *testing.T) {
	// A value loaded just before a taken branch must still arrive.
	img := build(t, `
var a [16]float
func main() int {
	a[3] = 6.5
	var s float = 0.0
	for (var i int = 0; i < 4; i = i + 1) { s = s + a[3] }
	return int(s)
}`, mach.Trace28())
	m := New(img)
	v, _, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 26 {
		t.Errorf("got %d, want 26", v)
	}
}

func TestBankStallCounted(t *testing.T) {
	// Stride-64 f64 references through an array PARAMETER: the
	// disambiguator answers "maybe" (unknown base), the scheduler rolls
	// the dice, and the hardware bank-stalls at run time (§6.4.4).
	img := build(t, `
var a [4096]float
func sweep(p []float) float {
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) { s = s + p[i * 64] + p[i * 64 + 1] }
	return s
}
func main() int {
	var s float = 0.0
	for (var r int = 0; r < 8; r = r + 1) { s = s + sweep(a) }
	return int(s)
}`, mach.Trace28())
	m := New(img)
	if _, _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.BankStalls == 0 {
		t.Error("same-bank stride produced no bank stalls")
	}
}

func TestICacheColdMisses(t *testing.T) {
	img := build(t, `func main() int { return 1 }`, mach.Trace7())
	m := New(img)
	if _, _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.ICacheMiss == 0 {
		t.Error("cold start produced no icache misses")
	}
	// run straight-line code twice as long: misses stay cold-only
	img2 := build(t, `
func main() int {
	var s int = 0
	for (var i int = 0; i < 1000; i = i + 1) { s = s + i }
	return s & 255
}`, mach.Trace7())
	m2 := New(img2)
	if _, _, err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	total := m2.Stats.ICacheHits + m2.Stats.ICacheMiss
	if float64(m2.Stats.ICacheMiss)/float64(total) > 0.05 {
		t.Errorf("loop code missing too much: %d/%d", m2.Stats.ICacheMiss, total)
	}
}

func TestTLBMissesAndTrapCost(t *testing.T) {
	img := build(t, `
var big [65536]float
func main() int {
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) { s = s + big[i * 1024] }
	return int(s)
}`, mach.Trace28())
	m := New(img)
	if _, _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 64 pages touched, 8KB each: at least ~60 cold data misses
	if m.Stats.TLBMisses < 50 {
		t.Errorf("page-stride sweep: only %d TLB misses", m.Stats.TLBMisses)
	}
	if m.Stats.TrapBeats == 0 {
		t.Error("TLB misses charged no trap beats")
	}
}

func TestSpeculativeFaultsAreCounted(t *testing.T) {
	// unrolled loop reads past the trip count speculatively; no trap, but
	// the funny-number counter moves when addresses leave the space
	img := build(t, `
var a [8]float
func main() int {
	var s float = 0.0
	for (var i int = 0; i < 8; i = i + 1) { s = s + a[i] }
	return int(s)
}`, mach.Trace28())
	m := New(img)
	if _, _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Stats.SpecLoads == 0 {
		t.Skip("no speculation generated for this shape")
	}
}

func TestFaultOnBadStore(t *testing.T) {
	img2 := build(t, `
var a [4]int
func main() int {
	var idx int = -100000
	a[idx] = 1
	return 0
}`, mach.Trace7())
	m := New(img2)
	_, _, err := m.Run()
	if err == nil {
		t.Fatal("wild store did not fault")
	}
	if !strings.Contains(err.Error(), "bus error") {
		t.Errorf("unexpected fault: %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	img := build(t, `
func main() int {
	var i int = 0
	while (i == 0) { i = i * 1 }
	return i
}`, mach.Trace7())
	m := New(img)
	m.CycleLimit = 10000
	_, _, err := m.Run()
	var lim *ErrCycleLimit
	if err == nil || !errors.As(err, &lim) {
		t.Errorf("runaway program not stopped: %v", err)
	} else if lim.Limit != 10000 {
		t.Errorf("ErrCycleLimit.Limit = %d, want 10000", lim.Limit)
	}
}

func TestWatchStoreAndTraceFn(t *testing.T) {
	img := build(t, `
var g [4]int
func main() int {
	g[0] = 11
	g[1] = 22
	return g[0] + g[1]
}`, mach.Trace7())
	m := New(img)
	var stores int
	var instrs int
	m.WatchStore = func(ea int64, v uint64) { stores++ }
	m.TraceFn = func(pc int, beat int64) { instrs++ }
	v, _, err := m.Run()
	if err != nil || v != 33 {
		t.Fatalf("run: %d, %v", v, err)
	}
	if stores != 2 {
		t.Errorf("watched %d stores, want 2", stores)
	}
	if int64(instrs) != m.Stats.Instrs {
		t.Errorf("TraceFn fired %d times, %d instructions executed", instrs, m.Stats.Instrs)
	}
}

func TestPeekRegisters(t *testing.T) {
	img := build(t, `func main() int { return 123 }`, mach.Trace7())
	m := New(img)
	if _, _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// the integer return convention register holds the exit value
	if got := m.PeekI(int(mach.RegRVI.Board), int(mach.RegRVI.Idx)); got != 123 {
		t.Errorf("RVI = %d, want 123", got)
	}
}

func TestStatsRates(t *testing.T) {
	s := Stats{Beats: 1000, Ops: 2000, FloatOps: 500}
	if s.MIPS() <= 0 || s.MFLOPS() <= 0 {
		t.Error("rates not positive")
	}
	var z Stats
	if z.MIPS() != 0 || z.MFLOPS() != 0 {
		t.Error("zero-beat rates should be 0")
	}
}

func TestMultiwayBranchPriorities(t *testing.T) {
	// if/else-if chains compile to multiway tests; semantics must follow
	// original order regardless of packing
	img := build(t, `
func classify(x int) int {
	if (x < 10) { return 1 }
	if (x < 20) { return 2 }
	if (x < 30) { return 3 }
	return 4
}
func main() int {
	var s int = 0
	for (var i int = 0; i < 40; i = i + 1) { s = s * 10 + classify(i) }
	return s & 16777215
}`, mach.Trace28())
	m := New(img)
	v, _, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// compare against the interpreter
	prog, _ := lang.Compile(`
func classify(x int) int {
	if (x < 10) { return 1 }
	if (x < 20) { return 2 }
	if (x < 30) { return 3 }
	return 4
}
func main() int {
	var s int = 0
	for (var i int = 0; i < 40; i = i + 1) { s = s * 10 + classify(i) }
	return s & 16777215
}`)
	in := &ir.Interp{Prog: prog}
	want, _, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != want {
		t.Errorf("multiway semantics: %d vs %d", v, want)
	}
}

func TestTimerInterrupts(t *testing.T) {
	src := `
func main() int {
	var s int = 0
	for (var i int = 0; i < 2000; i = i + 1) { s = s + i }
	return s & 65535
}`
	img := build(t, src, mach.Trace7())
	base := New(img)
	wantV, _, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := New(img)
	m.InterruptEvery = 1000
	m.InterruptBeats = 200
	v, _, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != wantV {
		t.Fatalf("interrupts changed semantics: %d vs %d", v, wantV)
	}
	if m.Stats.Interrupts == 0 {
		t.Fatal("no interrupts delivered")
	}
	if m.Stats.Beats <= base.Stats.Beats {
		t.Error("interrupt cost not charged")
	}
	// overhead ≈ interrupts * cost
	want := m.Stats.Interrupts * 200
	if m.Stats.InterruptBeats != want {
		t.Errorf("interrupt beats %d, want %d", m.Stats.InterruptBeats, want)
	}
}

func TestContextSwitchTagged(t *testing.T) {
	src := `
func main() int {
	var s int = 0
	for (var i int = 0; i < 3000; i = i + 1) { s = s + i }
	return s & 65535
}`
	img := build(t, src, mach.Trace28())
	base := New(img)
	wantV, wantOut, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	run := func(flush bool) *Machine {
		m := New(img)
		m.InterruptEvery = 1500
		m.InterruptBeats = 50
		m.FlushOnSwitch = flush
		m.OnInterrupt = func(mm *Machine) {
			mm.ContextSwitch(1)
			mm.ContextSwitch(0)
		}
		v, out, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if v != wantV || out != wantOut {
			t.Fatalf("flush=%v: context switching changed semantics: %d vs %d", flush, v, wantV)
		}
		return m
	}

	tagged := run(false)
	purged := run(true)
	if tagged.Stats.Switches == 0 {
		t.Fatal("no context switches happened")
	}
	if tagged.Stats.SwitchBeats == 0 {
		t.Error("switch cost not charged")
	}
	// tagged entries survive the neighbour's quantum: its misses stay at the
	// cold-start level, while the purged machine re-faults every timeslice
	if tagged.Stats.ICacheMiss > base.Stats.ICacheMiss+4 {
		t.Errorf("tagged cache lost entries across switches: %d misses vs %d undisturbed",
			tagged.Stats.ICacheMiss, base.Stats.ICacheMiss)
	}
	if purged.Stats.ICacheMiss <= tagged.Stats.ICacheMiss {
		t.Errorf("purging did not increase misses: purged %d, tagged %d",
			purged.Stats.ICacheMiss, tagged.Stats.ICacheMiss)
	}
	if purged.Stats.TLBMisses <= tagged.Stats.TLBMisses {
		t.Errorf("purging did not increase TLB misses: purged %d, tagged %d",
			purged.Stats.TLBMisses, tagged.Stats.TLBMisses)
	}
	if purged.Stats.Beats <= tagged.Stats.Beats {
		t.Errorf("purged machine not slower: %d vs %d beats", purged.Stats.Beats, tagged.Stats.Beats)
	}
}

func TestContextSwitchCostFlat(t *testing.T) {
	// Section 8.1: the microseconds stay nearly flat across configurations
	// because memory bandwidth grows with the register state.
	var us [3]float64
	for i, cfg := range []mach.Config{mach.Trace7(), mach.Trace14(), mach.Trace28()} {
		img := build(t, "func main() int { return 0 }", cfg)
		m := New(img)
		m.ContextSwitch(1)
		if m.Stats.Switches != 1 {
			t.Fatal("switch not recorded")
		}
		us[i] = float64(m.Stats.SwitchBeats) * mach.BeatNs / 1000
	}
	for _, u := range us {
		if u < 10 || u > 20 {
			t.Errorf("context switch %v us, want ~15 (paper Section 8.1)", u)
		}
	}
	if us[2] > 1.2*us[0] {
		t.Errorf("cost not flat across configs: %v", us)
	}
}

func TestDMACycleSteal(t *testing.T) {
	src := `
var a [2048]float
func main() int {
	for (var i int = 0; i < 2048; i = i + 1) { a[i] = float(i) }
	var s float = 0.0
	for (var r int = 0; r < 4; r = r + 1) {
		for (var i int = 0; i < 2048; i = i + 1) { s = s + a[i] }
	}
	return int(s) & 65535
}`
	img := build(t, src, mach.Trace28())
	base := New(img)
	wantV, wantOut, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}

	bufBase := (img.DataTop + 4095) &^ 4095
	m := New(img)
	m.StartDMA(bufBase, 1<<15, 200e6) // deliberately heavy I/O load
	v, out, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != wantV || out != wantOut {
		t.Fatalf("DMA corrupted program state: %d vs %d", v, wantV)
	}
	if m.Stats.DMARefs == 0 {
		t.Fatal("IOP issued no references")
	}
	if m.Stats.BankStalls <= base.Stats.BankStalls {
		t.Errorf("heavy DMA produced no extra bank stalls: %d vs %d",
			m.Stats.BankStalls, base.Stats.BankStalls)
	}
	// the stream landed real bytes in the buffer
	touched := false
	for i := int64(0); i < 64; i++ {
		if m.Mem[bufBase+i] != 0 {
			touched = true
			break
		}
	}
	if !touched {
		t.Error("DMA buffer untouched")
	}

	// rate cap: requests above half peak bandwidth are clamped
	fast := New(img)
	fast.StartDMA(bufBase, 1<<15, 1e12)
	if _, _, err := fast.Run(); err != nil {
		t.Fatal(err)
	}
	halfPeak := mach.Trace28().PeakMemBandwidth() / 2
	secs := float64(fast.Stats.Beats) * mach.BeatNs * 1e-9
	if got := float64(fast.Stats.DMARefs*8) / secs; got > 1.05*halfPeak {
		t.Errorf("IOP exceeded half peak bandwidth: %.0f > %.0f", got, halfPeak)
	}
}

func TestRunawayProgramHitsStepLimit(t *testing.T) {
	src := `
func main() int {
	var i int = 0
	for (; 1 == 1 ;) { i = i + 1 }
	return i
}`
	img := build(t, src, mach.Trace7())
	m := New(img)
	m.CycleLimit = 50_000
	_, _, err := m.Run()
	if err == nil {
		t.Fatal("infinite loop terminated without fault")
	}
	lim, ok := err.(*ErrCycleLimit)
	if !ok {
		t.Fatalf("want *ErrCycleLimit, got %T: %v", err, err)
	}
	if lim.Limit != 50_000 {
		t.Errorf("ErrCycleLimit.Limit = %d, want 50_000", lim.Limit)
	}
}

func TestFaultCarriesPC(t *testing.T) {
	src := `
var a [4]int
func main() int {
	var p []int = a
	return p[1 << 20]
}`
	img := build(t, src, mach.Trace28())
	m := New(img)
	_, _, err := m.Run()
	if err == nil {
		t.Fatal("out-of-range load did not fault")
	}
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("want *Fault, got %T: %v", err, err)
	}
	if f.PC < 0 || f.PC >= len(img.Instrs) {
		t.Errorf("fault PC %d outside image", f.PC)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestStatsRatesPlausible(t *testing.T) {
	src := `
var a [256]float
func main() int {
	for (var i int = 0; i < 256; i = i + 1) { a[i] = float(i) * 1.5 }
	var s float = 0.0
	for (var i int = 0; i < 256; i = i + 1) { s = s + a[i] }
	return int(s) & 65535
}`
	img := build(t, src, mach.Trace28())
	m := New(img)
	if _, _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := &m.Stats
	if st.Ops < st.Instrs {
		t.Errorf("fewer ops (%d) than instructions (%d)", st.Ops, st.Instrs)
	}
	mips := st.MIPS()
	peak := mach.Trace28().PeakMIPS()
	if mips <= 0 || mips > peak {
		t.Errorf("achieved %v MIPS outside (0, %v]", mips, peak)
	}
	if st.MFLOPS() <= 0 || st.MFLOPS() > mach.Trace28().PeakMFLOPS() {
		t.Errorf("MFLOPS %v implausible", st.MFLOPS())
	}
	if st.Beats <= 0 || st.ICacheHits+st.ICacheMiss == 0 {
		t.Error("counters not populated")
	}
}
