package vliw

import (
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/schedcheck"
)

// Mutation tests of the certified fast path. A certificate authorizes the
// machine to skip the dynamic §6 resource and write-race checks; it does
// not — and by design cannot — vouch for an image mutated after
// certification. These tests corrupt a certified image and prove the fast
// path's remaining always-on guards (PC bounds, memory bounds, divide by
// zero) still trap instead of silently corrupting state.

func certifyImage(t *testing.T, img *isa.Image) *schedcheck.Certificate {
	t.Helper()
	cert, err := schedcheck.Certify(img)
	if err != nil {
		t.Fatalf("pre-mutation image should certify: %v", err)
	}
	return cert
}

// runFastOn builds a machine over the (possibly mutated) image, arms the
// stale certificate, and runs.
func runFastOn(t *testing.T, img *isa.Image, cert *schedcheck.Certificate) error {
	t.Helper()
	m := New(img)
	if err := m.UseCertificate(cert); err != nil {
		t.Fatal(err)
	}
	if !m.Fast() {
		t.Fatal("certificate accepted but machine not in fast mode")
	}
	_, _, err := m.Run()
	return err
}

func wantTrap(t *testing.T, err error, code TrapCode) {
	t.Helper()
	if err == nil {
		t.Fatalf("mutated certified image ran clean; want %s trap", code)
	}
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("want *Fault, got %T: %v", err, err)
	}
	if f.Code != code {
		t.Fatalf("trap code = %s, want %s (%v)", f.Code, code, err)
	}
}

const mutationSrc = `
var a [8]int
func main() int {
	var s int = 0
	for (var i int = 0; i < 8; i = i + 1) { a[i] = i * 3 }
	for (var i int = 0; i < 8; i = i + 1) { s = s + a[i] }
	return s / (a[1] + 1)
}`

// buildNoSpec compiles with speculative loads disabled so every load in the
// image is a plain (trapping) LOAD the mem-bounds mutation can target.
func buildNoSpec(t *testing.T) *isa.Image {
	t.Helper()
	cfg := mach.Trace7()
	cfg.SpeculativeLoads = false
	return build(t, mutationSrc, cfg)
}

func TestCertifiedMutationWildBranch(t *testing.T) {
	img := buildNoSpec(t)
	cert := certifyImage(t, img)
	if err := runFastOn(t, img, cert); err != nil {
		t.Fatalf("sanity: unmutated certified run failed: %v", err)
	}

	// Send every branch to a word far outside the image: the first taken
	// control transfer is a wild jump.
	n := 0
	for i := range img.Instrs {
		for si := range img.Instrs[i].Slots {
			o := &img.Instrs[i].Slots[si].Op
			switch o.Kind {
			case mach.OpJmp, mach.OpBrT, mach.OpCall:
				o.Target = len(img.Instrs) + 1000
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("image has no branch to corrupt")
	}
	wantTrap(t, runFastOn(t, img, cert), TrapBadPC)
}

func TestCertifiedMutationMemBounds(t *testing.T) {
	img := buildNoSpec(t)
	cert := certifyImage(t, img)
	if err := runFastOn(t, img, cert); err != nil {
		t.Fatalf("sanity: unmutated certified run failed: %v", err)
	}

	// Push a load's offset far past the top of RAM.
	mutated := false
	for i := range img.Instrs {
		for si := range img.Instrs[i].Slots {
			o := &img.Instrs[i].Slots[si].Op
			if o.Kind == ir.Load && !mutated {
				o.B = mach.ImmArg(1 << 30)
				mutated = true
			}
		}
	}
	if !mutated {
		t.Fatal("image has no load to corrupt")
	}
	wantTrap(t, runFastOn(t, img, cert), TrapMemBounds)
}

func TestCertifiedMutationDivZero(t *testing.T) {
	img := buildNoSpec(t)
	cert := certifyImage(t, img)
	if err := runFastOn(t, img, cert); err != nil {
		t.Fatalf("sanity: unmutated certified run failed: %v", err)
	}

	// Force the divisor of the program's divide to zero.
	mutated := false
	for i := range img.Instrs {
		for si := range img.Instrs[i].Slots {
			o := &img.Instrs[i].Slots[si].Op
			if o.Kind == ir.Div && !mutated {
				o.B = mach.ImmArg(0)
				mutated = true
			}
		}
	}
	if !mutated {
		t.Fatal("image has no divide to corrupt")
	}
	wantTrap(t, runFastOn(t, img, cert), TrapDivZero)
}

// TestCertificateRejectsForeignImage proves a certificate cannot be
// laundered across images: arming a machine with a certificate minted for a
// different image fails, and the machine stays in checked mode.
func TestCertificateRejectsForeignImage(t *testing.T) {
	img1 := buildNoSpec(t)
	img2 := buildNoSpec(t)
	cert := certifyImage(t, img1)
	m := New(img2)
	if err := m.UseCertificate(cert); err == nil {
		t.Fatal("certificate for a different image was accepted")
	}
	if m.Fast() {
		t.Fatal("rejected certificate left the machine in fast mode")
	}
}
