package vliw

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/multiflow-repro/trace/internal/mach"
)

// Checkpoint/restore. A Context is *all* of a program's state — the paper's
// machine has no hidden microarchitectural state ("all of the state of the
// processor is either in general registers or in main memory", §8.2), and
// the simulator widens that only by the self-draining write pipeline and
// the private memory-system view, both of which are explicit fields. A
// snapshot therefore captures execution exactly: restore it onto a machine
// reset to the same image and the run continues bit-identically — exit,
// output, and every Stats counter equal to an uninterrupted run's.
//
// The encoding is versioned and self-describing:
//
//	magic "TRACESNP" | version u16 | image fingerprint [32]byte
//	| payload length u64 | payload SHA-256 [32]byte | payload
//
// and the payload is a sequence of tagged, length-prefixed sections (tag
// u8, length u64, body), all integers little-endian. Restore refuses a
// snapshot whose magic, version, image fingerprint, checksum, or section
// structure does not match — with attribution, never silently. What is NOT
// captured: machine-level experiment knobs (DMA stream position, timer
// interrupts, FlushOnSwitch) and instrumentation hooks; runs using those
// are not resumable. The certified-fast flag is also not captured — the
// fast path is a checking mode, not architectural state, and a resumed run
// must present its own Certificate (checked and fast execution are
// result-identical, so a snapshot taken in either mode resumes in either).

// snapMagic identifies a Context snapshot stream.
const snapMagic = "TRACESNP"

// SnapshotVersion is the current encoding version. Any change to the
// section set, a section's layout, or the Stats field set bumps it; Restore
// accepts exactly this version (checkpoints are short-lived operational
// state, not archives, so there is no cross-version migration).
const SnapshotVersion = 1

// Section tags of encoding version 1.
const (
	secCore     = 1  // asid, pc, beat, halted, exit
	secIRegs    = 2  // integer register banks
	secFRegs    = 3  // floating register banks
	secSF       = 4  // store-file banks
	secBB       = 5  // branch-bank bits
	secPending  = 6  // in-flight register-write pipeline
	secMem      = 7  // data memory
	secBankBusy = 8  // RAM bank busy windows
	secICache   = 9  // instruction cache tags + ASIDs
	secDTLB     = 10 // data TLB
	secITLB     = 11 // instruction TLB
	secStats    = 12 // performance counters
	secOut      = 13 // captured output so far
)

const snapHeaderLen = 8 + 2 + 32 + 8 + 32

// pendingWireLen is one serialized pendingWrite: beat i64, bank/board/idx/
// spec u8, val u64, pc i64.
const pendingWireLen = 8 + 4 + 8 + 8

// ErrStopped reports that a run paused at Machine.StopBeat with the context
// intact: Snapshot captures it for a later resume. It is a pause, not a
// failure — the scheduler layers (core, serve) translate it into a
// checkpoint rather than an error response.
type ErrStopped struct {
	Beat int64 // context virtual clock at the pause
	PC   int   // next instruction to execute
}

func (e *ErrStopped) Error() string {
	return fmt.Sprintf("run stopped for checkpoint at word=%d beat=%d", e.PC, e.Beat)
}

// ErrBadSnapshot reports a snapshot Restore refused, with attribution: the
// specific check that failed (magic, version, image, checksum, or a
// structural section check) and what was expected.
type ErrBadSnapshot struct {
	Field string
	Msg   string
}

func (e *ErrBadSnapshot) Error() string {
	return fmt.Sprintf("vliw: snapshot rejected [%s]: %s", e.Field, e.Msg)
}

// Snapshot serializes the context's complete execution state. The context
// must have executed (or been restored) on its current image: a pristine
// context has nothing meaningful to capture — boot it by running first.
// Callers snapshot after a run returns (paused via Machine.StopBeat,
// canceled, cycle-limited, trapped, or halted); at that point the banked Stats
// are authoritative and the snapshot is a complete resume point.
func (c *Context) Snapshot() ([]byte, error) {
	if !c.booted {
		return nil, &ErrBadSnapshot{Field: "state", Msg: "context has not executed: nothing to capture (beat 0 pristine state is the image itself)"}
	}
	// The native tier keeps in-flight writes in its retire ring; fold them
	// back into c.pending so the wire format is tier-independent.
	c.nRingFlush()

	var payload bytes.Buffer
	sec := func(tag byte, body func(*bytes.Buffer)) {
		var b bytes.Buffer
		body(&b)
		payload.WriteByte(tag)
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(b.Len()))
		payload.Write(lenBuf[:])
		payload.Write(b.Bytes())
	}
	le := binary.LittleEndian

	sec(secCore, func(b *bytes.Buffer) {
		b.WriteByte(c.asid)
		binary.Write(b, le, int64(c.pc))
		binary.Write(b, le, c.beat)
		if c.halted {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		binary.Write(b, le, c.exit)
	})
	sec(secIRegs, func(b *bytes.Buffer) { binary.Write(b, le, c.iregs) })
	sec(secFRegs, func(b *bytes.Buffer) { binary.Write(b, le, c.fregs) })
	sec(secSF, func(b *bytes.Buffer) { binary.Write(b, le, c.sf) })
	sec(secBB, func(b *bytes.Buffer) { binary.Write(b, le, c.bb) })
	sec(secPending, func(b *bytes.Buffer) {
		binary.Write(b, le, uint32(len(c.pending)))
		for _, w := range c.pending {
			binary.Write(b, le, w.beat)
			b.WriteByte(byte(w.dst.Bank))
			b.WriteByte(w.dst.Board)
			b.WriteByte(w.dst.Idx)
			if w.spec {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
			binary.Write(b, le, w.val)
			binary.Write(b, le, int64(w.pc))
		}
	})
	sec(secMem, func(b *bytes.Buffer) { b.Write(c.mem) })
	sec(secBankBusy, func(b *bytes.Buffer) { binary.Write(b, le, c.bankBusy) })
	sec(secICache, func(b *bytes.Buffer) {
		binary.Write(b, le, uint32(len(c.itags)))
		for _, t := range c.itags {
			binary.Write(b, le, int64(t))
		}
		b.Write(c.iasids)
	})
	sec(secDTLB, func(b *bytes.Buffer) {
		binary.Write(b, le, uint32(len(c.dtlb)))
		binary.Write(b, le, c.dtlb)
		b.Write(c.dtlbAsids)
	})
	sec(secITLB, func(b *bytes.Buffer) {
		binary.Write(b, le, uint32(len(c.itlb)))
		binary.Write(b, le, c.itlb)
		b.Write(c.itlbAsids)
	})
	sec(secStats, func(b *bytes.Buffer) { binary.Write(b, le, c.Stats) })
	sec(secOut, func(b *bytes.Buffer) { b.Write(c.out.Bytes()) })

	out := make([]byte, 0, snapHeaderLen+payload.Len())
	out = append(out, snapMagic...)
	out = le.AppendUint16(out, SnapshotVersion)
	fp := c.img.Fingerprint()
	out = append(out, fp[:]...)
	out = le.AppendUint64(out, uint64(payload.Len()))
	sum := sha256.Sum256(payload.Bytes())
	out = append(out, sum[:]...)
	out = append(out, payload.Bytes()...)
	return out, nil
}

// Restore deserializes a snapshot into the context, which must belong to a
// machine freshly Reset (or ResetMany) onto the *same image* the snapshot
// was taken from. Every validation failure — wrong magic or version, a
// different image or configuration, a corrupted payload, a malformed
// section — returns *ErrBadSnapshot naming the failed check, and the
// context is left un-restored. After a successful Restore, Run/RunContext
// (or RunMany for a batch tenant) continues the execution bit-identically
// instead of booting from the image.
func (c *Context) Restore(data []byte) error {
	if c.img == nil {
		return &ErrBadSnapshot{Field: "state", Msg: "context is not attached to an image: Reset the machine first"}
	}
	if len(data) < snapHeaderLen {
		return &ErrBadSnapshot{Field: "header", Msg: fmt.Sprintf("%d bytes is shorter than the %d-byte header", len(data), snapHeaderLen)}
	}
	if string(data[:8]) != snapMagic {
		return &ErrBadSnapshot{Field: "magic", Msg: fmt.Sprintf("bad magic %q (want %q): not a context snapshot", data[:8], snapMagic)}
	}
	le := binary.LittleEndian
	if v := le.Uint16(data[8:10]); v != SnapshotVersion {
		return &ErrBadSnapshot{Field: "version", Msg: fmt.Sprintf("encoding version %d; this build reads version %d only", v, SnapshotVersion)}
	}
	fp := c.img.Fingerprint()
	if !bytes.Equal(data[10:42], fp[:]) {
		return &ErrBadSnapshot{Field: "image", Msg: fmt.Sprintf(
			"snapshot was taken from a different image: fingerprint %x does not match the resident image %x (machine %q) — restore onto the exact image the snapshot came from",
			data[10:42], fp[:8], c.img.Cfg.Name)}
	}
	payloadLen := le.Uint64(data[42:50])
	payload := data[snapHeaderLen:]
	if uint64(len(payload)) != payloadLen {
		return &ErrBadSnapshot{Field: "length", Msg: fmt.Sprintf("payload is %d bytes, header promises %d (truncated or padded)", len(payload), payloadLen)}
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(data[50:82], sum[:]) {
		return &ErrBadSnapshot{Field: "checksum", Msg: "payload SHA-256 mismatch: the snapshot bytes are corrupted"}
	}

	// First pass: walk and structurally validate every section against this
	// context's (image-determined) geometry, so the second pass can apply
	// without partially mutating the context on a malformed stream.
	sections := map[byte][]byte{}
	for off := 0; off < len(payload); {
		if len(payload)-off < 9 {
			return &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("truncated section header at payload offset %d", off)}
		}
		tag := payload[off]
		n := le.Uint64(payload[off+1 : off+9])
		off += 9
		if uint64(len(payload)-off) < n {
			return &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("section %d claims %d bytes, only %d remain", tag, n, len(payload)-off)}
		}
		if _, dup := sections[tag]; dup {
			return &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("duplicate section %d", tag)}
		}
		sections[tag] = payload[off : off+int(n)]
		off += int(n)
	}
	want := func(tag byte, name string, size int) ([]byte, error) {
		b, ok := sections[tag]
		if !ok {
			return nil, &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("missing %s section (%d)", name, tag)}
		}
		if size >= 0 && len(b) != size {
			return nil, &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("%s section is %d bytes, want %d", name, len(b), size)}
		}
		return b, nil
	}

	coreb, err := want(secCore, "core", 1+8+8+1+4)
	if err != nil {
		return err
	}
	iregsb, err := want(secIRegs, "iregs", binary.Size(c.iregs))
	if err != nil {
		return err
	}
	fregsb, err := want(secFRegs, "fregs", binary.Size(c.fregs))
	if err != nil {
		return err
	}
	sfb, err := want(secSF, "store-file", binary.Size(c.sf))
	if err != nil {
		return err
	}
	bbb, err := want(secBB, "branch-bank", binary.Size(c.bb))
	if err != nil {
		return err
	}
	pendb, err := want(secPending, "pending-writes", -1)
	if err != nil {
		return err
	}
	if len(pendb) < 4 || (len(pendb)-4)%pendingWireLen != 0 ||
		int(le.Uint32(pendb[:4]))*pendingWireLen != len(pendb)-4 {
		return &ErrBadSnapshot{Field: "section", Msg: "pending-writes section is malformed"}
	}
	memb, err := want(secMem, "memory", len(c.mem))
	if err != nil {
		return err
	}
	busyb, err := want(secBankBusy, "bank-busy", binary.Size(c.bankBusy))
	if err != nil {
		return err
	}
	icb, err := want(secICache, "icache", 4+9*len(c.itags))
	if err != nil {
		return err
	}
	if int(le.Uint32(icb[:4])) != len(c.itags) {
		return &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("icache has %d lines, this machine has %d", le.Uint32(icb[:4]), len(c.itags))}
	}
	dtlbb, err := want(secDTLB, "dtlb", 4+9*TLBEntries)
	if err != nil {
		return err
	}
	itlbb, err := want(secITLB, "itlb", 4+9*TLBEntries)
	if err != nil {
		return err
	}
	for _, tb := range [2][]byte{dtlbb, itlbb} {
		if int(le.Uint32(tb[:4])) != TLBEntries {
			return &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("TLB has %d entries, this machine has %d", le.Uint32(tb[:4]), TLBEntries)}
		}
	}
	statsb, err := want(secStats, "stats", binary.Size(c.Stats))
	if err != nil {
		return err
	}
	outb, err := want(secOut, "output", -1)
	if err != nil {
		return err
	}
	for tag := range sections {
		switch tag {
		case secCore, secIRegs, secFRegs, secSF, secBB, secPending, secMem,
			secBankBusy, secICache, secDTLB, secITLB, secStats, secOut:
		default:
			return &ErrBadSnapshot{Field: "section", Msg: fmt.Sprintf("unknown section %d in a version-%d snapshot", tag, SnapshotVersion)}
		}
	}

	// Second pass: apply. Everything below is infallible.
	c.asid = coreb[0]
	c.pc = int(int64(le.Uint64(coreb[1:9])))
	c.beat = int64(le.Uint64(coreb[9:17]))
	c.halted = coreb[17] != 0
	c.exit = int32(le.Uint32(coreb[18:22]))

	binary.Read(bytes.NewReader(iregsb), le, &c.iregs)
	binary.Read(bytes.NewReader(fregsb), le, &c.fregs)
	binary.Read(bytes.NewReader(sfb), le, &c.sf)
	binary.Read(bytes.NewReader(bbb), le, &c.bb)

	n := int(le.Uint32(pendb[:4]))
	c.pending = c.pending[:0]
	for i := 0; i < n; i++ {
		b := pendb[4+i*pendingWireLen:]
		c.pending = append(c.pending, pendingWrite{
			beat: int64(le.Uint64(b[0:8])),
			dst:  mach.PReg{Bank: mach.Bank(b[8]), Board: b[9], Idx: b[10]},
			spec: b[11] != 0,
			val:  le.Uint64(b[12:20]),
			pc:   int(int64(le.Uint64(b[20:28]))),
		})
	}

	copy(c.mem, memb)
	binary.Read(bytes.NewReader(busyb), le, &c.bankBusy)
	for i := range c.itags {
		c.itags[i] = int(int64(le.Uint64(icb[4+i*8:])))
	}
	copy(c.iasids, icb[4+8*len(c.itags):])
	for i := 0; i < TLBEntries; i++ {
		c.dtlb[i] = int64(le.Uint64(dtlbb[4+i*8:]))
		c.itlb[i] = int64(le.Uint64(itlbb[4+i*8:]))
	}
	copy(c.dtlbAsids, dtlbb[4+8*TLBEntries:])
	copy(c.itlbAsids, itlbb[4+8*TLBEntries:])
	binary.Read(bytes.NewReader(statsb), le, &c.Stats)
	c.out.Reset()
	c.out.Write(outb)

	c.done = false
	c.err = nil
	c.booted = true
	c.restored = true
	return nil
}

// Beat returns the context's virtual clock: beats executed so far.
func (c *Context) Beat() int64 { return c.beat }
