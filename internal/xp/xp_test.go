package xp

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
)

// TestWorkloadsCompileAndAgree verifies every experiment kernel runs
// identically on the interpreter and the simulator (so experiment numbers
// measure correct executions).
func TestWorkloadsCompileAndAgree(t *testing.T) {
	for _, w := range AllWorkloads() {
		t.Run(w.Name, func(t *testing.T) {
			if _, _, err := runOn(context.Background(), w, mach.Trace28(), opt.Default(), true); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWorkloadKindsLabeled(t *testing.T) {
	for _, w := range AllWorkloads() {
		if w.Kind != "numeric" && w.Kind != "systems" {
			t.Errorf("%s: bad kind %q", w.Name, w.Kind)
		}
		if _, err := lang.Compile(w.Src); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

func TestRegistryIDsUniqueAndRunnable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := RunByID(context.Background(), "nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID: "T", Title: "demo", PaperClaim: "claim",
		Headers: []string{"a", "bbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note1"},
	}
	out := tb.Render()
	for _, want := range []string{"T: demo", "claim", "333", "note1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentShapes runs the cheaper experiments end to end and asserts
// the paper-shape properties the tables are meant to demonstrate.
func TestExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}

	t.Run("E2_scoreboard_below_trace", func(t *testing.T) {
		tables, err := ExpE2(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var traceWins int
		for _, row := range tables[0].Rows {
			sb1 := atof(t, row[3])
			sb2 := atof(t, row[5])
			tr := atof(t, row[6])
			if sb1 > 2.5 {
				t.Errorf("%s: 1-issue scoreboard speedup %.2f implausibly high", row[0], sb1)
			}
			if sb2 > 3.6 {
				t.Errorf("%s: 2-issue scoreboard %.2f above the Acosta band", row[0], sb2)
			}
			if sb2 < sb1*0.99 {
				t.Errorf("%s: wider issue made the scoreboard slower (%.2f vs %.2f)", row[0], sb2, sb1)
			}
			if tr > sb2 {
				traceWins++
			}
		}
		// the ordering scalar < scoreboard < TRACE holds on the bulk of the
		// suite; recurrence-bound kernels may tie or flip (honest losses)
		if traceWins < len(tables[0].Rows)*2/3 {
			t.Errorf("TRACE beats the 2-issue scoreboard on only %d of %d kernels",
				traceWins, len(tables[0].Rows))
		}
	})

	t.Run("E7_context_switch_flat", func(t *testing.T) {
		tables, err := ExpE7(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var us []float64
		for _, row := range tables[0].Rows {
			us = append(us, atof(t, row[4]))
		}
		for _, u := range us {
			if u < 5 || u > 40 {
				t.Errorf("context switch %v us implausible (paper: ~15)", u)
			}
		}
		// "holds in any machine configuration": within 2x across configs
		if us[len(us)-1] > us[0]*2 {
			t.Errorf("context switch not flat across configs: %v", us)
		}
	})

	t.Run("E7_tags_and_dma", func(t *testing.T) {
		tables, err := ExpE7(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var dyn, tags *Table
		for _, tb := range tables {
			switch tb.ID {
			case "E7b-dyn":
				dyn = tb
			case "E7c":
				tags = tb
			}
		}
		if dyn == nil || tags == nil {
			t.Fatal("E7b-dyn / E7c tables missing")
		}
		// 10 MB/s of I/O must cost well under the 4% bandwidth share
		for _, row := range dyn.Rows {
			if row[0] == "10.0" {
				if s := atof(t, row[4]); s > 4 {
					t.Errorf("10 MB/s DMA cost %v%%, paper bound is 4%%", s)
				}
			}
		}
		// tagged machine never worse than the purging one, pairwise by row
		for i := 0; i+1 < len(tags.Rows); i += 2 {
			tagged, purged := tags.Rows[i], tags.Rows[i+1]
			if atoi64(t, tagged[3]) > atoi64(t, purged[3]) {
				t.Errorf("%s: tagged icache misses exceed purged", tagged[0])
			}
			if atoi64(t, tagged[5]) > atoi64(t, purged[5]) {
				t.Errorf("%s: tagged machine slower than purging one", tagged[0])
			}
		}
	})

	t.Run("E13_traces_dominate_blocks", func(t *testing.T) {
		tables, err := ExpE13(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var numericWins int
		for _, row := range tables[0].Rows {
			blocks := atof(t, row[3])
			traces := atof(t, row[5])
			if traces < blocks*0.95 {
				t.Errorf("%s: full trace scheduling (%.2fx) loses to basic-block compaction (%.2fx)",
					row[0], traces, blocks)
			}
			if traces > blocks*1.3 {
				numericWins++
			}
		}
		if numericWins < 3 {
			t.Errorf("trace scheduling decisively beats block compaction on only %d workloads; the paper's core claim needs more", numericWins)
		}
	})

	t.Run("E9_speculation_helps_streaming", func(t *testing.T) {
		tables, err := ExpE9(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		// at least one kernel must get a real win from non-trapping loads,
		// and speculation must never change program results (runOn verifies
		// that internally — an error would have surfaced already)
		var won bool
		for _, row := range tables[0].Rows {
			last := row[len(row)-1]
			if strings.HasPrefix(last, "-") {
				continue // honest regression rows (e.g. fir) are allowed
			}
			if atof(t, last) >= 3 {
				won = true
			}
		}
		if !won {
			t.Error("speculative loads won nowhere; §7's motivation should show on streaming loops")
		}
	})

	t.Run("F1_partition_cost_small", func(t *testing.T) {
		tables, err := ExpF1(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tables[0].Rows {
			cost := atof(t, row[3])
			if cost > 15 {
				t.Errorf("%s: partition cost %v%% — the §5 compromise should be nearly free", row[0], cost)
			}
		}
	})

	t.Run("E5_peaks_match_paper", func(t *testing.T) {
		tables, err := ExpE5(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		last := tables[0].Rows[len(tables[0].Rows)-1]
		if last[1] != "28" || last[2] != "1024" {
			t.Errorf("28/200 geometry wrong: %v", last)
		}
		if m := atof(t, last[3]); m < 214 || m > 217 {
			t.Errorf("peak MIPS %v, paper says 215", m)
		}
	})
}

func atoi64(t *testing.T, s string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
