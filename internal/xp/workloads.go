// Package xp is the experiment harness: it regenerates every
// figure/result-equivalent of the paper (the per-experiment index lives in
// DESIGN.md) as printable tables comparing the paper's claim with what this
// reproduction measures.
package xp

// Workload is a named MF program with the shape of one of the paper's
// motivating computations.
type Workload struct {
	Name string
	Kind string // "numeric" or "systems"
	Src  string
}

// Numeric kernels: the FORTRAN-style loops the TRACE was built for (§6:
// "deliver the highest possible performance for 64-bit floating point
// intensive computations").
var daxpy = Workload{"daxpy", "numeric", `
var x [256]float
var y [256]float
func main() int {
	for (var i int = 0; i < 256; i = i + 1) { x[i] = float(i); y[i] = 1.0 }
	var a float = 2.5
	for (var r int = 0; r < 8; r = r + 1) {
		for (var i int = 0; i < 256; i = i + 1) { y[i] = y[i] + a * x[i] }
	}
	var s float = 0.0
	for (var i int = 0; i < 256; i = i + 1) { s = s + y[i] }
	return int(s) & 65535
}`}

var vsum = Workload{"vsum", "numeric", `
var a [256]float
var b [256]float
var c [256]float
func main() int {
	for (var i int = 0; i < 256; i = i + 1) { a[i] = float(i) * 0.5; b[i] = float(256 - i) }
	for (var r int = 0; r < 8; r = r + 1) {
		for (var i int = 0; i < 256; i = i + 1) { c[i] = a[i] + b[i] * 0.25 }
	}
	return int(c[100])
}`}

var dot = Workload{"dot", "numeric", `
var a [256]float
var b [256]float
func main() int {
	for (var i int = 0; i < 256; i = i + 1) { a[i] = float(i); b[i] = float(i % 9) }
	var s float = 0.0
	for (var r int = 0; r < 8; r = r + 1) {
		s = 0.0
		for (var i int = 0; i < 256; i = i + 1) { s = s + a[i] * b[i] }
	}
	return int(s) & 65535
}`}

var fir = Workload{"fir", "numeric", `
var sig [272]float
var coef [16]float
var out [256]float
func main() int {
	for (var i int = 0; i < 272; i = i + 1) { sig[i] = float(i % 17) }
	for (var i int = 0; i < 16; i = i + 1) { coef[i] = 1.0 / float(i + 1) }
	for (var r int = 0; r < 4; r = r + 1) {
		for (var i int = 0; i < 256; i = i + 1) {
			var acc float = 0.0
			for (var k int = 0; k < 16; k = k + 1) { acc = acc + sig[i+k] * coef[k] }
			out[i] = acc
		}
	}
	return int(out[8])
}`}

var matmul = Workload{"matmul", "numeric", `
var a [256]float
var b [256]float
var c [256]float
func main() int {
	for (var i int = 0; i < 256; i = i + 1) { a[i] = float(i % 13); b[i] = float(i % 7) }
	for (var i int = 0; i < 16; i = i + 1) {
		for (var j int = 0; j < 16; j = j + 1) {
			var s float = 0.0
			for (var k int = 0; k < 16; k = k + 1) { s = s + a[i*16+k] * b[k*16+j] }
			c[i*16+j] = s
		}
	}
	return int(c[35])
}`}

// livermore is in the shape of Livermore loop 1 (hydro fragment).
var livermore = Workload{"hydro", "numeric", `
var xv [256]float
var yv [256]float
var zv [272]float
func main() int {
	for (var i int = 0; i < 272; i = i + 1) { zv[i] = float(i % 31) * 0.125 }
	for (var i int = 0; i < 256; i = i + 1) { yv[i] = float(i % 11) }
	var q float = 0.5
	var r float = 1.25
	var t float = 0.75
	for (var rep int = 0; rep < 8; rep = rep + 1) {
		for (var k int = 0; k < 256; k = k + 1) {
			xv[k] = q + yv[k] * (r * zv[k+10] + t * zv[k+11])
		}
	}
	return int(xv[77] * 100.0)
}`}

// fft is a radix-2 decimation-in-time FFT on 64 complex points. Twiddle
// factors come from a rotation recurrence (no trig library), so the body is
// pure multiply-add — the "very long pipelines kept full" code of §1. The
// butterfly loops have strides that sweep every power of two, exercising the
// bank disambiguator across the whole lattice.
var fft = Workload{"fft", "numeric", `
var re [64]float
var im [64]float

func main() int {
	// impulse train input: FFT is exactly computable for checking
	for (var i int = 0; i < 64; i = i + 1) {
		re[i] = float(i % 8) * 0.25
		im[i] = 0.0
	}
	// bit-reversal permutation, n = 64 (6 bits)
	for (var i int = 0; i < 64; i = i + 1) {
		var j int = 0
		var v int = i
		for (var b int = 0; b < 6; b = b + 1) {
			j = j * 2 + v % 2
			v = v / 2
		}
		if (j > i) {
			var tr float = re[i]
			re[i] = re[j]
			re[j] = tr
			var ti float = im[i]
			im[i] = im[j]
			im[j] = ti
		}
	}
	// butterfly stages; wr/wi advance by complex rotation, seeded per stage
	// with cos/sin(pi/len2) from a 6-entry table folded into constants
	var cosv [6]float
	var sinv [6]float
	cosv[0] = 0.0 - 1.0
	sinv[0] = 0.0
	cosv[1] = 0.0
	sinv[1] = 0.0 - 1.0
	cosv[2] = 0.70710678
	sinv[2] = 0.0 - 0.70710678
	cosv[3] = 0.92387953
	sinv[3] = 0.0 - 0.38268343
	cosv[4] = 0.98078528
	sinv[4] = 0.0 - 0.19509032
	cosv[5] = 0.99518473
	sinv[5] = 0.0 - 0.09801714
	var stage int = 0
	for (var len int = 2; len <= 64; len = len * 2) {
		var half int = len / 2
		var cw float = cosv[stage]
		var sw float = sinv[stage]
		for (var base int = 0; base < 64; base = base + len) {
			var wr float = 1.0
			var wi float = 0.0
			for (var k int = 0; k < half; k = k + 1) {
				var i0 int = base + k
				var i1 int = i0 + half
				var tr float = re[i1] * wr - im[i1] * wi
				var ti float = re[i1] * wi + im[i1] * wr
				re[i1] = re[i0] - tr
				im[i1] = im[i0] - ti
				re[i0] = re[i0] + tr
				im[i0] = im[i0] + ti
				var nwr float = wr * cw - wi * sw
				wi = wr * sw + wi * cw
				wr = nwr
			}
		}
		stage = stage + 1
	}
	// spectral energy at the impulse-train harmonics
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) {
		s = s + re[i] * re[i] + im[i] * im[i]
	}
	return int(s)
}`}

// tridiag is the Thomas algorithm for a tridiagonal system — forward
// elimination then back substitution. Both sweeps are true recurrences, so
// like fir it bounds what any scheduler can extract: an honest low-ILP
// member of the numeric suite.
var tridiag = Workload{"tridiag", "numeric", `
var a [256]float
var b [256]float
var c [256]float
var d [256]float
var x [256]float

func main() int {
	for (var rep int = 0; rep < 8; rep = rep + 1) {
		for (var i int = 0; i < 256; i = i + 1) {
			a[i] = 0.0 - 1.0
			b[i] = 4.0
			c[i] = 0.0 - 1.0
			d[i] = float(i % 16)
		}
		// forward sweep
		c[0] = c[0] / b[0]
		d[0] = d[0] / b[0]
		for (var i int = 1; i < 256; i = i + 1) {
			var m float = 1.0 / (b[i] - a[i] * c[i-1])
			c[i] = c[i] * m
			d[i] = (d[i] - a[i] * d[i-1]) * m
		}
		// back substitution
		x[255] = d[255]
		for (var i int = 254; i >= 0; i = i - 1) {
			x[i] = d[i] - c[i] * x[i+1]
		}
	}
	var s float = 0.0
	for (var i int = 0; i < 256; i = i + 1) { s = s + x[i] }
	return int(s * 16.0)
}`}

// Systems kernels: the branchy, pointer-heavy code of §8.4 ("systems code
// has even smaller basic blocks ... pervasive use of pointers").
var sortW = Workload{"sort", "systems", `
var a [128]int
func main() int {
	for (var r int = 0; r < 4; r = r + 1) {
		for (var i int = 0; i < 128; i = i + 1) { a[i] = (i * 73 + 29 + r) % 256 }
		for (var i int = 0; i < 127; i = i + 1) {
			for (var j int = 0; j < 127 - i; j = j + 1) {
				if (a[j] > a[j+1]) {
					var t int = a[j]
					a[j] = a[j+1]
					a[j+1] = t
				}
			}
		}
	}
	return a[0] + a[64] * 100 + a[127] * 10000
}`}

var scanner = Workload{"scanner", "systems", `
var text [512]int
var counts [8]int
func kind(c int) int {
	if (c < 16) { return 0 }
	if (c < 32) {
		if (c % 2 == 0) { return 1 }
		return 2
	}
	if (c < 96) { return 3 }
	if (c % 3 == 0) { return 4 }
	if (c % 5 == 0) { return 5 }
	return 6
}
func main() int {
	for (var i int = 0; i < 512; i = i + 1) { text[i] = (i * 61 + 17) % 128 }
	for (var r int = 0; r < 8; r = r + 1) {
		for (var i int = 0; i < 512; i = i + 1) {
			var k int = kind(text[i])
			counts[k] = counts[k] + 1
		}
	}
	var h int = 0
	for (var i int = 0; i < 8; i = i + 1) { h = h * 31 + counts[i] }
	return h & 16777215
}`}

var hashW = Workload{"hash", "systems", `
var table [256]int
var keys [512]int
func main() int {
	for (var i int = 0; i < 512; i = i + 1) { keys[i] = (i * 2654435) ^ (i >> 3) }
	for (var r int = 0; r < 8; r = r + 1) {
		for (var i int = 0; i < 512; i = i + 1) {
			var h int = (keys[i] ^ (keys[i] >> 7)) & 255
			table[h] = table[h] + 1
		}
	}
	var mx int = 0
	for (var i int = 0; i < 256; i = i + 1) { mx = table[i] > mx ? table[i] : mx }
	return mx
}`}

var listW = Workload{"list", "systems", `
var next [256]int
var val [256]int
func main() int {
	for (var i int = 0; i < 256; i = i + 1) {
		next[i] = (i * 167 + 13) % 256
		val[i] = i * 3
	}
	var s int = 0
	var p int = 0
	for (var i int = 0; i < 4096; i = i + 1) {
		s = s + val[p]
		p = next[p]
	}
	return s & 16777215
}`}

// mixedApp approximates an application rather than a kernel: many cold
// branchy utility functions and one modest hot loop. The paper's §9 ratios
// come from 100K-300K-line FORTRAN applications, where unrolled hot loops
// are a small fraction of the code; tiny kernels overstate the growth.
var mixedApp = Workload{"mixed-app", "systems", `
var data [128]float
var tags [128]int
var log2tab [8]int

func clampi(x int, lo int, hi int) int {
	if (x < lo) { return lo }
	if (x > hi) { return hi }
	return x
}
func absf(x float) float {
	if (x < 0.0) { return -x }
	return x
}
func tagOf(v float) int {
	if (v < 0.5) { return 0 }
	if (v < 1.0) { return 1 }
	if (v < 2.0) { return 2 }
	if (v < 4.0) { return 3 }
	return 4
}
func checksum(n int) int {
	var h int = 17
	for (var i int = 0; i < n; i = i + 1) {
		h = ((h * 31) ^ tags[i]) & 16777215
	}
	return h
}
func ilog2(x int) int {
	var r int = 0
	while (x > 1) { x = x >> 1; r = r + 1 }
	return r
}
func smooth(n int) {
	for (var i int = 1; i < n - 1; i = i + 1) {
		data[i] = (data[i-1] + data[i] * 2.0 + data[i+1]) * 0.25
	}
}
func main() int {
	for (var i int = 0; i < 8; i = i + 1) { log2tab[i] = ilog2(i + 1) }
	for (var i int = 0; i < 128; i = i + 1) {
		data[i] = absf(float(i % 17) * 0.37 - 3.0)
		tags[i] = clampi(i * 5 % 97, 3, 90)
	}
	smooth(128)
	smooth(128)
	for (var i int = 0; i < 128; i = i + 1) { tags[i] = tagOf(data[i]) + log2tab[tags[i] & 7] }
	return checksum(128)
}`}

// NumericSuite returns the floating-point loop kernels.
func NumericSuite() []Workload {
	return []Workload{daxpy, vsum, dot, fir, matmul, livermore, fft, tridiag}
}

// SystemsSuite returns the branchy integer kernels.
func SystemsSuite() []Workload {
	return []Workload{sortW, scanner, hashW, listW}
}

// AllWorkloads returns every kernel.
func AllWorkloads() []Workload {
	return append(NumericSuite(), SystemsSuite()...)
}

// MixedApp returns the application-shaped workload used by the code-size
// experiment.
func MixedApp() Workload { return mixedApp }
