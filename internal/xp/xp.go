package xp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/multiflow-repro/trace/internal/baseline"
	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// Parallelism bounds the compiler's backend worker pool for every
// compilation the harness runs (0 = one worker per CPU, 1 = sequential).
// cmd/tracebench sets it from -j; output is identical at every setting.
var Parallelism int

// Tier selects the execution tier every workload simulation runs on
// (checked, fast, safe, or native). cmd/tracebench sets it from -tier;
// every table is identical at every setting (no tier changes timing).
var Tier vliw.Tier

// Table is one experiment's output: rows of measurements plus the paper
// claim the shape is checked against.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Headers    []string
	Rows       [][]string
	Notes      []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	b.WriteString("   ")
	line(t.Headers)
	b.WriteString("   ")
	line(dashes(widths))
	for _, r := range t.Rows {
		b.WriteString("   ")
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

// Experiment is a registered experiment. Run takes the harness context:
// canceling it (cmd/tracebench wires SIGINT) stops the experiment at the
// next compile-pass or simulation-check boundary.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context) ([]*Table, error)
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"f1", "Ideal VLIW (Figure 1) vs. the real partitioned machine", ExpF1},
		{"e1", "Trace-scheduled VLIW speedup over the scalar machine", ExpE1},
		{"e2", "Scoreboard machine: the basic-block ceiling", ExpE2},
		{"e3", "Code size (Section 9)", ExpE3},
		{"e4", "Interleaved memory, disambiguation, and the bank-stall gamble", ExpE4},
		{"e5", "Peak and achieved rates (Section 6.3)", ExpE5},
		{"e6", "Instruction cache and mask-word refill (Section 6.5)", ExpE6},
		{"e7", "Context switch cost (Section 8.1)", ExpE7},
		{"e8", "Multiway branch (Section 6.5.2)", ExpE8},
		{"e9", "Speculative non-trapping loads (Section 7)", ExpE9},
		{"e10", "Compensation code and code growth vs. unrolling", ExpE10},
		{"e11", "TLB misses and history-queue trap replay (Section 6.4.3)", ExpE11},
		{"e12", "Systems code on a VLIW (Section 8.4)", ExpE12},
		{"e13", "Ablation: trace scheduling vs basic-block compaction (Section 10)", ExpE13},
	}
}

// RunByID runs one experiment ("e1".."e12", "f1") or all of them ("all").
func RunByID(ctx context.Context, id string) ([]*Table, error) {
	if id == "all" {
		var out []*Table
		for _, e := range Registry() {
			ts, err := e.Run(ctx)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			out = append(out, ts...)
		}
		return out, nil
	}
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(ctx)
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("unknown experiment %q (have %s, all)", id, strings.Join(ids, ", "))
}

// runOn compiles and simulates a workload, returning the run statistics.
func runOn(ctx context.Context, w Workload, cfg mach.Config, lvl opt.Options, profRun bool) (*vliw.Stats, *core.Result, error) {
	prof := core.ProfileHeuristic
	if profRun {
		prof = core.ProfileRun
	}
	art, err := core.Build(ctx, w.Src, core.Options{Config: cfg, Opt: lvl, Profile: prof, Parallelism: Parallelism})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	wantV, wantOut, err := core.Interpret(art.Result())
	if err != nil {
		return nil, nil, fmt.Errorf("%s: interpret: %w", w.Name, err)
	}
	run, err := art.Run(ctx, core.RunOptions{Tier: Tier})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: simulate: %w", w.Name, err)
	}
	if run.Exit != wantV || run.Output != wantOut {
		return nil, nil, fmt.Errorf("%s: simulator diverged from reference (%d vs %d)", w.Name, run.Exit, wantV)
	}
	st := run.Stats
	return &st, art.Result(), nil
}

func scalarBeats(w Workload, cfg mach.Config) (baseline.Result, error) {
	prog, err := lang.Compile(w.Src)
	if err != nil {
		return baseline.Result{}, err
	}
	r, _, _, err := baseline.Scalar(prog, cfg)
	return r, err
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
func i64(v int64) string   { return fmt.Sprintf("%d", v) }
