package xp

import (
	"context"
	"fmt"

	"github.com/multiflow-repro/trace/internal/baseline"
	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/isa"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// ExpE1 measures the headline claim: trace-scheduled wide machines against
// the sequential scalar machine of the same technology.
func ExpE1(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E1",
		Title:      "speedup of trace-scheduled TRACE vs. scalar machine",
		PaperClaim: "\"from ten to thirty times the performance of a more conventional machine built of the same implementation technology\" (§1); \"order-of-magnitude speedups due to compaction\" (§4)",
		Headers:    []string{"kernel", "scalar beats", "7/200", "speedup", "14/200", "speedup", "28/200", "speedup"},
	}
	cfgs := []mach.Config{mach.Trace7(), mach.Trace14(), mach.Trace28()}
	for _, w := range NumericSuite() {
		sc, err := scalarBeats(w, mach.Trace28())
		if err != nil {
			return nil, err
		}
		row := []string{w.Name, i64(sc.Beats)}
		for _, cfg := range cfgs {
			st, _, err := runOn(ctx, w, cfg, opt.Default(), true)
			if err != nil {
				return nil, err
			}
			row = append(row, i64(st.Beats), f1(float64(sc.Beats)/float64(st.Beats)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"scalar machine: in-order, single-issue, same functional-unit and memory latencies, full interlocks",
		"TRACE runs use profile-guided trace selection, inlining, unroll 8 (§4's automatic heuristics)")
	return []*Table{t}, nil
}

// ExpE2 reproduces the Acosta ceiling: dynamic scheduling that cannot look
// past basic blocks.
func ExpE2(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E2",
		Title:      "scoreboard (basic-block lookahead) vs. scalar, same datapath as 28/200",
		PaperClaim: "\"Even with such complex and costly hardware, Acosta et al. report that only a factor of 2 or 3 speedup in performance is possible\" (§3)",
		Headers:    []string{"kernel", "scalar beats", "sb 1-issue", "speedup", "sb 2-issue", "speedup", "TRACE 28/200 speedup"},
	}
	cfg := mach.Trace28()
	for _, w := range AllWorkloads() {
		sc, err := scalarBeats(w, cfg)
		if err != nil {
			return nil, err
		}
		prog, err := lang.Compile(w.Src)
		if err != nil {
			return nil, err
		}
		sb1, _, _, err := baseline.Scoreboard(prog, cfg)
		if err != nil {
			return nil, err
		}
		sb2, _, _, err := baseline.ScoreboardWide(prog, cfg, 2)
		if err != nil {
			return nil, err
		}
		st, _, err := runOn(ctx, w, cfg, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name, i64(sc.Beats), i64(sb1.Beats),
			f2(float64(sc.Beats) / float64(sb1.Beats)),
			i64(sb2.Beats),
			f2(float64(sc.Beats) / float64(sb2.Beats)),
			f2(float64(sc.Beats) / float64(st.Beats)),
		})
	}
	t.Notes = append(t.Notes,
		"dual issue lifts the scoreboard toward the top of the Acosta band, but the block-boundary stall holds the ceiling:",
		"no issue width lets the hardware see past an unresolved branch")
	return []*Table{t}, nil
}

// ExpE3 reproduces the §9 code-size components.
func ExpE3(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E3",
		Title:      "object code size (28/200, full optimization)",
		PaperClaim: "per-op encoding +30-50% vs VAX; mask format +5-10%; optimization growth +30-60%; overall ~3x VAX (§9)",
		Headers: []string{"kernel", "VAX bytes", "packed bytes", "ratio", "ops before", "ops after",
			"opt growth", "payload bytes", "mask ovh", "fixed bytes", "no-op savings"},
	}
	cfg := mach.Trace28()
	var sumVAX, sumPacked int64
	for _, w := range append(AllWorkloads(), MixedApp()) {
		prog, err := lang.Compile(w.Src)
		if err != nil {
			return nil, err
		}
		vax := baseline.VAXSize(prog)
		res, err := core.Compile(ctx, w.Src, core.Options{Config: cfg, Opt: opt.Default(), Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		fixed, packed, _ := res.Image.CodeSizes()
		// payload = words that are actually present
		var payload int64
		for _, ws := range res.Image.Words {
			for _, word := range ws {
				if word != 0 {
					payload += 4
				}
			}
		}
		maskOvh := float64(packed-payload) / float64(payload)
		growth := float64(res.Opt.OpsAfter)/float64(res.Opt.OpsBefore) - 1
		t.Rows = append(t.Rows, []string{
			w.Name, i64(vax), i64(packed), f2(float64(packed) / float64(vax)),
			fmt.Sprintf("%d", res.Opt.OpsBefore), fmt.Sprintf("%d", res.Opt.OpsAfter),
			pct(growth), i64(payload), pct(maskOvh), i64(fixed),
			pct(1 - float64(packed)/float64(fixed)),
		})
		sumVAX += vax
		sumPacked += packed
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("suite total: packed/VAX = %.2fx (paper: \"approximately 3 times larger than VAX object code\")",
			float64(sumPacked)/float64(sumVAX)),
		"\"no-op savings\" is the fraction of the fixed 1024-bit format the §6.5.1 mask representation eliminates",
		"the paper's 3x is measured on 100K-300K-line applications where unrolled hot loops are a small fraction;",
		"these kernels are ~100% hot loop, so growth concentrates — mixed-app is the closest shape to an application")
	return []*Table{t}, nil
}

// ExpE4 exercises the interleaved memory system and the disambiguator.
func ExpE4(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E4",
		Title:      "interleaved memory: stride, bank conflicts, and the bank-stall gamble",
		PaperClaim: "references provably distinct mod N schedule at full bandwidth; \"maybe\" conflicts may be overlapped relying on the bank-stall; \"rolling the dice can improve performance\" (§6.4)",
		Headers:    []string{"variant", "config", "beats", "mem refs", "bank stalls", "stall/ref"},
	}
	unit := Workload{"stride-1", "numeric", `
var a [512]float
var b [512]float
func main() int {
	for (var i int = 0; i < 512; i = i + 1) { a[i] = float(i) }
	for (var r int = 0; r < 8; r = r + 1) {
		for (var i int = 0; i < 512; i = i + 1) { b[i] = a[i] * 2.0 }
	}
	return int(b[100])
}`}
	// stride 64 words * 8 bytes: every reference lands on the same bank of
	// the 8-controller x 8-bank system
	conflict := Workload{"stride-64", "numeric", `
var a [4096]float
func main() int {
	for (var i int = 0; i < 4096; i = i + 1) { a[i] = 1.0 }
	var s float = 0.0
	for (var r int = 0; r < 64; r = r + 1) {
		for (var i int = 0; i < 64; i = i + 1) { s = s + a[i * 64] }
	}
	return int(s)
}`}
	// unknown bases: array parameters force "maybe" answers (§6.4.2)
	unknown := Workload{"unknown-base", "numeric", `
var x [256]float
var y [256]float
func saxpy(a []float, b []float, n int) {
	for (var i int = 0; i < n; i = i + 1) { b[i] = b[i] + 2.0 * a[i] }
}
func main() int {
	for (var i int = 0; i < 256; i = i + 1) { x[i] = float(i); y[i] = 1.0 }
	for (var r int = 0; r < 8; r = r + 1) { saxpy(x, y, 256) }
	var s float = 0.0
	for (var i int = 0; i < 256; i = i + 1) { s = s + y[i] }
	return int(s) & 65535
}`}

	cfg := mach.Trace28()
	noDice := cfg
	noDice.RollTheDice = false
	cases := []struct {
		w    Workload
		cfg  mach.Config
		name string
	}{
		{unit, cfg, "stride-1 (all no-conflict)"},
		{conflict, cfg, "stride-64 (same bank every ref)"},
		{unknown, cfg, "arg arrays, dice ON"},
		{unknown, noDice, "arg arrays, dice OFF (conservative)"},
	}
	for _, c := range cases {
		st, _, err := runOn(ctx, c.w, c.cfg, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.name, c.cfg.Name, i64(st.Beats), i64(st.MemRefs), i64(st.BankStalls),
			f2(float64(st.BankStalls) / float64(max64(st.MemRefs, 1))),
		})
	}
	t.Notes = append(t.Notes,
		"stride-64 x 8 bytes lands every reference on one RAM bank: the 4-beat busy time dominates",
		"with unknown bases the disambiguator answers \"maybe\"; the conservative build serializes, the dice build overlaps and lets the hardware bank-stall")

	// §6.4.1: "a memory system is configured with up to eight memory
	// controllers ... each controller can do a 64-bit reference every beat".
	// Sweep the interleave degree under a bandwidth-hungry kernel: fewer
	// controllers/banks means more same-bank collisions and more stalls.
	t2 := &Table{
		ID:         "E4b",
		Title:      "memory bandwidth vs. interleave degree (28/200 datapath, stride-1 sweep)",
		PaperClaim: "interleaved memories deliver bandwidth only when consecutive references spread across banks; the full machine uses 8 controllers x 8 banks (§6.4, §6.4.1)",
		Headers:    []string{"controllers x banks", "beats", "bank stalls", "stall/ref", "vs 8x8"},
	}
	var full int64
	for _, geom := range [][2]int{{8, 8}, {4, 8}, {2, 8}, {1, 8}, {1, 4}, {1, 2}} {
		gcfg := mach.Trace28()
		gcfg.Controllers = geom[0]
		gcfg.BanksPerController = geom[1]
		st, _, err := runOn(ctx, unit, gcfg, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		if full == 0 {
			full = st.Beats
		}
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%dx%d", geom[0], geom[1]), i64(st.Beats), i64(st.BankStalls),
			f2(float64(st.BankStalls) / float64(max64(st.MemRefs, 1))),
			f2(float64(st.Beats) / float64(full)),
		})
	}
	// The same sweep without recompiling: the 8x8 schedule run on narrower
	// memory, so every collision the compiler thought impossible now lands
	// on the hardware bank-stall. This separates the compiler's contribution
	// from the hardware's.
	{
		res, err := core.Compile(ctx, unit.Src, core.Options{Config: cfg, Opt: opt.Default(), Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		wantV, wantOut, err := core.Interpret(res)
		if err != nil {
			return nil, err
		}
		for _, geom := range [][2]int{{1, 8}, {1, 2}} {
			narrow := res.Image.Cfg
			narrow.Controllers = geom[0]
			narrow.BanksPerController = geom[1]
			img := res.Image.CloneWithConfig(narrow)
			m := vliw.New(img)
			v, out, err := m.Run()
			if err != nil {
				return nil, err
			}
			if v != wantV || out != wantOut {
				return nil, fmt.Errorf("narrow-memory run diverged")
			}
			t2.Rows = append(t2.Rows, []string{
				fmt.Sprintf("%dx%d (8x8 schedule)", geom[0], geom[1]),
				i64(m.Stats.Beats), i64(m.Stats.BankStalls),
				f2(float64(m.Stats.BankStalls) / float64(max64(m.Stats.MemRefs, 1))),
				f2(float64(m.Stats.Beats) / float64(full)),
			})
		}
	}
	t2.Notes = append(t2.Notes,
		"top rows: the compiler reschedules for each geometry (interleave is in the machine model the disambiguator sees),",
		"so narrow memories degrade gracefully — provable conflicts get spaced instead of gambled on",
		"bottom rows: the unmodified 8x8 schedule on narrow memory leans on the hardware bank-stall instead")
	return []*Table{t, t2}, nil
}

// ExpE5 verifies the §6.3 arithmetic and reports achieved rates.
func ExpE5(ctx context.Context) ([]*Table, error) {
	t1 := &Table{
		ID:         "E5a",
		Title:      "peak rates from the machine description",
		PaperClaim: "\"peak performance of 215 'VLIW MIPS' and 60 MFLOPS\" with a 1024-bit word issuing 28 operations (§6.3); 492 MB/s (§6.4.1)",
		Headers:    []string{"config", "ops/instr", "instr bits", "peak MIPS", "peak MFLOPS", "peak MB/s"},
	}
	for _, cfg := range []mach.Config{mach.Trace7(), mach.Trace14(), mach.Trace28()} {
		t1.Rows = append(t1.Rows, []string{
			cfg.Name, fmt.Sprintf("%d", cfg.OpsPerInstr()), fmt.Sprintf("%d", cfg.InstrBits()),
			f1(cfg.PeakMIPS()), f1(cfg.PeakMFLOPS()), f1(cfg.PeakMemBandwidth() / 1e6),
		})
	}
	t2 := &Table{
		ID:      "E5b",
		Title:   "achieved rates on the numeric suite (28/200)",
		Headers: []string{"kernel", "ops", "beats", "ops/instr", "MIPS", "MFLOPS"},
	}
	for _, w := range NumericSuite() {
		st, _, err := runOn(ctx, w, mach.Trace28(), opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t2.Rows = append(t2.Rows, []string{
			w.Name, i64(st.Ops), i64(st.Beats),
			f2(float64(st.Ops) / float64(max64(st.Instrs, 1))),
			f1(st.MIPS()), f1(st.MFLOPS()),
		})
	}
	return []*Table{t1, t2}, nil
}

// ExpE6 measures the instruction cache.
func ExpE6(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E6",
		Title:      "instruction cache: 8K instructions, mask-word refill",
		PaperClaim: "8K-instruction cache, 984 MB/s refill; \"instruction fetch ... never stalls or restrains the processor, except on cache misses\" (§6.5)",
		Headers:    []string{"kernel", "instrs fetched", "misses", "miss rate", "refill beats", "refill share"},
	}
	for _, w := range []Workload{daxpy, matmul, scanner, sortW} {
		st, _, err := runOn(ctx, w, mach.Trace28(), opt.Default(), true)
		if err != nil {
			return nil, err
		}
		total := st.ICacheHits + st.ICacheMiss
		t.Rows = append(t.Rows, []string{
			w.Name, i64(total), i64(st.ICacheMiss),
			fmt.Sprintf("%.4f%%", 100*float64(st.ICacheMiss)/float64(max64(total, 1))),
			i64(st.RefillBeats),
			pct(float64(st.RefillBeats) / float64(max64(st.Beats, 1))),
		})
	}
	t.Notes = append(t.Notes, "loop-dominated code misses only on cold start; the 8K-instruction cache holds every kernel")
	return []*Table{t}, nil
}

// ExpE7 computes the context-switch cost from the machine description.
func ExpE7(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E7",
		Title:      "context switch: full register save/restore through the memory system",
		PaperClaim: "\"the high available memory bandwidth in the system permits a complete context switch in 15 microseconds. This figure holds in any machine configuration, because usable memory bandwidth increases as the number of registers\" (§8.1)",
		Headers:    []string{"config", "state words", "save+restore beats", "overhead beats", "total us"},
	}
	for _, cfg := range []mach.Config{mach.Trace7(), mach.Trace14(), mach.Trace28()} {
		// per pair: 64 I words + 32 F regs x 2 words + 16 SF x 2 words + PSW etc.
		words := int64(cfg.Pairs) * (64 + 64 + 32)
		words += 16 // PC, PSW, ASIDs, branch banks
		// each I board initiates one 64-bit (2-word) reference per beat;
		// bandwidth scales with boards exactly as the paper argues
		perBeat := 2 * int64(cfg.Pairs)
		if perBeat > 2*int64(cfg.StoreBuses) {
			perBeat = 2 * int64(cfg.StoreBuses)
		}
		moveBeats := 2 * (words / perBeat) // save + restore
		overhead := int64(60)              // interrupt entry, drain, scheduler (§8.2)
		us := float64(moveBeats+overhead) * mach.BeatNs / 1000
		t.Rows = append(t.Rows, []string{
			cfg.Name, i64(words), i64(moveBeats), i64(overhead), f1(us),
		})
	}
	t.Notes = append(t.Notes, "registers double with pairs, but so do the I boards issuing stores: the microseconds stay nearly flat, as claimed")

	// §8.3: the I/O processor's DMA engine reads/writes main memory "at
	// half of peak memory bandwidth"; the paper's arithmetic is that 10
	// MB/s of I/O costs 4% of the machine's cycles.
	t2 := &Table{
		ID:         "E7b",
		Title:      "I/O: DMA cycle-steal arithmetic (Section 8.3)",
		PaperClaim: "\"10 MB/s of I/O consumes only 4% of the machine's cycles in the largest CPU configuration\"",
		Headers:    []string{"config", "peak MB/s", "DMA MB/s (half peak)", "cycles for 10 MB/s"},
	}
	for _, cfg := range []mach.Config{mach.Trace7(), mach.Trace14(), mach.Trace28()} {
		peak := cfg.PeakMemBandwidth() / 1e6
		dma := peak / 2
		t2.Rows = append(t2.Rows, []string{
			cfg.Name, f1(peak), f1(dma), pct(10 / dma),
		})
	}

	// The same §8.3 claim measured dynamically: the simulator's IOP engine
	// streams doublewords into a buffer, cycle-stealing banks from the CPU.
	t2b := &Table{
		ID:         "E7b-dyn",
		Title:      "I/O: measured CPU impact of a live DMA stream (28/200, daxpy)",
		PaperClaim: "cycle stealing; at 10 MB/s the impact is bounded by the 4% bandwidth share",
		Headers:    []string{"DMA MB/s", "DMA refs", "bank stalls", "beats", "slowdown"},
	}
	{
		cfg := mach.Trace28()
		res, err := core.Compile(ctx, daxpy.Src, core.Options{Config: cfg, Opt: opt.Default(), Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		base := vliw.New(res.Image)
		wantV, wantOut, err := base.Run()
		if err != nil {
			return nil, err
		}
		bufBase := (res.Image.DataTop + 4095) &^ 4095
		m := vliw.New(res.Image)
		for _, mbs := range []float64{0, 10, 50, 123} {
			m.Reset(res.Image)
			if mbs > 0 {
				m.StartDMA(bufBase, 1<<16, mbs*1e6)
			}
			v, out, err := m.Run()
			if err != nil {
				return nil, err
			}
			if v != wantV || out != wantOut {
				return nil, fmt.Errorf("DMA at %v MB/s corrupted the program", mbs)
			}
			t2b.Rows = append(t2b.Rows, []string{
				f1(mbs), i64(m.Stats.DMARefs), i64(m.Stats.BankStalls), i64(m.Stats.Beats),
				pct(float64(m.Stats.Beats)/float64(base.Stats.Beats) - 1),
			})
		}
		t2b.Notes = append(t2b.Notes,
			"the IOP claims RAM banks through the same busy mechanism as the CPU: contention appears as bank stalls",
			"slowdown stays under the bandwidth share because only colliding references stall — 4% is the worst case")
	}

	// §8.1 again, dynamically this time: the caches and TLBs are process-
	// tagged, so a descheduled process finds its working set still resident
	// when it runs again. The counterfactual machine purges on every switch.
	t3 := &Table{
		ID:         "E7c",
		Title:      "process-tagged caches vs. purge-on-switch under timeslicing",
		PaperClaim: "\"No purging is necessary, since processes are identified by tags in the cache\" (§6.5); same for the TLB (§6.1)",
		Headers:    []string{"workload", "mode", "switches", "icache miss", "tlb miss", "beats", "vs undisturbed"},
	}
	cfg := mach.Trace28()
	for _, w := range []Workload{fir, scanner} {
		res, err := core.Compile(ctx, w.Src, core.Options{Config: cfg, Opt: opt.Default(), Parallelism: Parallelism})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		base := vliw.New(res.Image)
		wantV, wantOut, err := base.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		m := vliw.New(res.Image)
		for _, mode := range []string{"tagged", "purged"} {
			m.Reset(res.Image)
			m.InterruptEvery = 2000
			m.InterruptBeats = 60
			m.FlushOnSwitch = mode == "purged"
			// Round-robin with a neighbour process: every timeslice end is
			// two switches — away to the neighbour (ASID 1) and, one
			// quantum later from our point of view, back to us (ASID 0).
			// On the tagged machine our lines sit untouched while the
			// neighbour runs; on the untagged machine both switches purge.
			m.OnInterrupt = func(mm *vliw.Machine) {
				mm.ContextSwitch(1)
				mm.ContextSwitch(0)
			}
			v, out, err := m.Run()
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", w.Name, mode, err)
			}
			if v != wantV || out != wantOut {
				return nil, fmt.Errorf("%s/%s: timeslicing changed semantics", w.Name, mode)
			}
			t3.Rows = append(t3.Rows, []string{
				w.Name, mode, i64(m.Stats.Switches),
				i64(m.Stats.ICacheMiss), i64(m.Stats.TLBMisses),
				i64(m.Stats.Beats), f2(float64(m.Stats.Beats) / float64(base.Stats.Beats)),
			})
		}
	}
	t3.Notes = append(t3.Notes,
		"tagged: each ASID faults its lines in once and they survive every later timeslice",
		"purged: the whole working set re-faults after every switch — refill and trap beats grow with switch count")
	return []*Table{t, t2, t2b, t3}, nil
}

// ExpE8 measures the multiway branch.
func ExpE8(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E8",
		Title:      "multiway branch: packing several tests per instruction",
		PaperClaim: "\"conditional branches occur every five to eight operations ... some mechanism will be required to pack more than one jump into a single instruction\" (§6.5.2)",
		Headers:    []string{"kernel", "config", "multiway beats", "multi-branch instrs", "single-branch beats", "win"},
	}
	// classify is branch-dense with independent tests: the shape §6.5.2
	// argues needs the mechanism
	classify := Workload{"classify", "systems", `
var v [512]int
var acc [4]int
func main() int {
	for (var i int = 0; i < 512; i = i + 1) { v[i] = (i * 37) & 255 }
	for (var r int = 0; r < 8; r = r + 1) {
		for (var i int = 0; i < 512; i = i + 1) {
			var x int = v[i]
			if (x > 128) { acc[0] = acc[0] + 1 }
			if ((x & 1) == 1) { acc[1] = acc[1] + 1 }
			if (x < 32) { acc[2] = acc[2] + 1 }
		}
	}
	return acc[0] + acc[1] * 1000 + acc[2] * 100000
}`}
	on := mach.Trace28()
	off := on
	off.MultiwayBranch = false
	for _, w := range []Workload{classify, scanner, sortW, hashW, listW} {
		stOn, resOn, err := runOn(ctx, w, on, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		multi := 0
		for i := range resOn.Image.Instrs {
			n := 0
			for _, s := range resOn.Image.Instrs[i].Slots {
				if s.Unit.Kind == mach.UBR {
					n++
				}
			}
			if n >= 2 {
				multi++
			}
		}
		stOff, _, err := runOn(ctx, w, off, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name, on.Name, i64(stOn.Beats), fmt.Sprintf("%d", multi), i64(stOff.Beats),
			pct(float64(stOff.Beats-stOn.Beats) / float64(stOff.Beats)),
		})
	}
	t.Notes = append(t.Notes,
		"the mechanism engages (multi-branch instructions appear after tail duplication removes the if-chain merges),",
		"but with this scheduler the tests are rarely ready simultaneously, so its beat-count effect is small;",
		"the paper's argument is about necessity at higher compaction, not a measured speedup")
	return []*Table{t}, nil
}

// ExpE9 measures the §7 speculative loads.
func ExpE9(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E9",
		Title:      "non-trapping speculative LOAD opcodes",
		PaperClaim: "\"this technique enables the compiler to be much more aggressive in code motions involving memory references\" (§7): unrolled loops hoist next-iteration loads above the exit test",
		Headers:    []string{"kernel", "spec beats", "spec loads", "funny numbers", "no-spec beats", "win"},
	}
	on := mach.Trace28()
	off := on
	off.SpeculativeLoads = false
	for _, w := range []Workload{daxpy, dot, fir, livermore} {
		stOn, _, err := runOn(ctx, w, on, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		stOff, _, err := runOn(ctx, w, off, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name, i64(stOn.Beats), i64(stOn.SpecLoads), i64(stOn.SpecFaults),
			i64(stOff.Beats),
			pct(float64(stOff.Beats-stOn.Beats) / float64(max64(stOff.Beats, 1))),
		})
	}
	t.Notes = append(t.Notes, "\"funny numbers\" counts speculative loads past the address space that returned the recognizable poison value instead of trapping")
	return []*Table{t}, nil
}

// ExpE10 measures compensation-code growth against unrolling.
func ExpE10(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E10",
		Title:      "code growth: trace selection, compensation, unrolling (28/200, daxpy+sort)",
		PaperClaim: "\"their overall effect seems to be to increase code size by a factor of around 30-60%\" (§9)",
		Headers:    []string{"kernel", "unroll", "seq ops", "sched ops", "comp ops", "growth"},
	}
	for _, w := range []Workload{daxpy, sortW} {
		for _, u := range []int{1, 2, 4, 8, 16} {
			lvl := opt.Options{Inline: true, UnrollFactor: u}
			res, err := core.Compile(ctx, w.Src, core.Options{Config: mach.Trace28(), Opt: lvl, Profile: core.ProfileRun, Parallelism: Parallelism})
			if err != nil {
				return nil, err
			}
			var schedOps, compOps int
			for _, fc := range res.Funcs {
				schedOps += fc.Ops
				compOps += fc.CompOps
			}
			t.Rows = append(t.Rows, []string{
				w.Name, fmt.Sprintf("%d", u), fmt.Sprintf("%d", res.Opt.OpsBefore),
				fmt.Sprintf("%d", schedOps), fmt.Sprintf("%d", compOps),
				pct(float64(schedOps)/float64(res.Opt.OpsBefore) - 1),
			})
		}
	}
	t.Notes = append(t.Notes, "growth = machine ops after scheduling (incl. compensation, calling convention, cross-bank moves) / sequential IR ops before optimization")
	return []*Table{t}, nil
}

// ExpE11 measures the TLB trap-and-replay machinery.
func ExpE11(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E11",
		Title:      "data TLB misses and history-queue replay",
		PaperClaim: "TLB misses trap several beats late; history queues replay them, \"up to sixteen independent TLB misses can be pending on a single entry to the trap code\" (§6.4.3)",
		Headers:    []string{"sweep", "pages touched", "TLB misses", "trap beats", "share of run"},
	}
	mk := func(name string, stride, n int) Workload {
		return Workload{name, "numeric", fmt.Sprintf(`
var big [65536]float
func main() int {
	var s float = 0.0
	for (var i int = 0; i < %d; i = i + 1) { s = s + big[(i * %d) %% 65536] }
	return int(s)
}`, n, stride)}
	}
	for _, c := range []struct {
		w     Workload
		pages int
	}{
		{mk("sequential 512KB", 1, 65536), 64},
		{mk("page-stride", 1024, 512), 64},
	} {
		st, _, err := runOn(ctx, c.w, mach.Trace28(), opt.Default(), false)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			c.w.Name, fmt.Sprintf("%d", c.pages), i64(st.TLBMisses), i64(st.TrapBeats),
			pct(float64(st.TrapBeats) / float64(max64(st.Beats, 1))),
		})
	}
	t.Notes = append(t.Notes, "8KB pages; the 512KB array spans 64 pages; misses are cold only (the 4K-entry TLB never evicts in these runs)")
	return []*Table{t}, nil
}

// ExpE12 measures systems code.
func ExpE12(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E12",
		Title:      "systems code: branchy, pointer-heavy kernels (28/200)",
		PaperClaim: "\"pointers and small basic blocks have not been a problem ... performance on systems code is quite good\"; smaller but real speedups vs numeric code (§8.4)",
		Headers:    []string{"kernel", "kind", "scalar beats", "TRACE beats", "speedup"},
	}
	for _, w := range AllWorkloads() {
		sc, err := scalarBeats(w, mach.Trace28())
		if err != nil {
			return nil, err
		}
		st, _, err := runOn(ctx, w, mach.Trace28(), opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name, w.Kind, i64(sc.Beats), i64(st.Beats),
			f2(float64(sc.Beats) / float64(st.Beats)),
		})
	}
	return []*Table{t}, nil
}

// ExpF1 compares the Figure-1 ideal machine against the real partitioned
// one.
func ExpF1(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "F1",
		Title:      "ideal central-register-file VLIW vs. the partitioned TRACE",
		PaperClaim: "\"any reasonably large number of functional units requires an impossibly large number of ports ... the only reasonable implementation compromise is to partition the register files\" (§5); the real machine should come close to the ideal",
		Headers:    []string{"kernel", "ideal beats", "real beats", "partition cost", "no-spread beats", "routing win"},
	}
	noSpread := mach.Trace28()
	noSpread.NoSpread = true
	for _, w := range []Workload{daxpy, dot, matmul, scanner} {
		stI, _, err := runOn(ctx, w, mach.IdealConfig(4), opt.Default(), true)
		if err != nil {
			return nil, err
		}
		stR, _, err := runOn(ctx, w, mach.Trace28(), opt.Default(), true)
		if err != nil {
			return nil, err
		}
		stN, _, err := runOn(ctx, w, noSpread, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name, i64(stI.Beats), i64(stR.Beats),
			pct(float64(stR.Beats-stI.Beats) / float64(max64(stI.Beats, 1))),
			i64(stN.Beats),
			pct(float64(stN.Beats-stR.Beats) / float64(max64(stR.Beats, 1))),
		})
	}
	t.Notes = append(t.Notes,
		"partition cost = extra beats from bank locality, cross-bank moves, port and bus limits, and the shared immediate word",
		"no-spread = board-rotation hinting off, the compiler's half of the §5 data-routing compromise; \"routing win\" is what that policy buys")
	return []*Table{t}, nil
}

// ExpE13 is the ablation the paper's §10 promises as future work:
// separating the speedup due to trace scheduling (compaction past basic
// blocks) from the speedup of the wide machine with block-local scheduling.
func ExpE13(ctx context.Context) ([]*Table, error) {
	t := &Table{
		ID:         "E13",
		Title:      "ablation: trace scheduling vs. basic-block compaction (28/200)",
		PaperClaim: "\"our future work will concentrate on quantifying the speedups due to trace scheduling vs. those achieved by more universal compiler optimizations\" (§10); §3: block-local scheduling is capped at 2-3x",
		Headers:    []string{"kernel", "scalar beats", "blocks-only beats", "speedup", "traces beats", "speedup", "trace win"},
	}
	cfg := mach.Trace28()
	for _, w := range AllWorkloads() {
		sc, err := scalarBeats(w, cfg)
		if err != nil {
			return nil, err
		}
		blocksArt, err := core.Build(ctx, w.Src, core.Options{
			Config: cfg, Opt: opt.Default(), Profile: core.ProfileRun, MaxTraceBlocks: 1, Parallelism: Parallelism})
		if err != nil {
			return nil, err
		}
		blocksRun, err := blocksArt.Run(ctx, core.RunOptions{Tier: Tier})
		if err != nil {
			return nil, err
		}
		stB := &blocksRun.Stats
		stT, _, err := runOn(ctx, w, cfg, opt.Default(), true)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name, i64(sc.Beats),
			i64(stB.Beats), f2(float64(sc.Beats) / float64(stB.Beats)),
			i64(stT.Beats), f2(float64(sc.Beats) / float64(stT.Beats)),
			pct(float64(stB.Beats-stT.Beats) / float64(max64(stB.Beats, 1))),
		})
	}
	t.Notes = append(t.Notes,
		"blocks-only = same machine, same optimizer (incl. unrolling), but every trace is a single basic block",
		"\"trace win\" = beats saved by compacting past branches: the paper's core thesis isolated")
	return []*Table{t}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

var _ = isa.WordsPerPair // the encoder is exercised through every runOn
