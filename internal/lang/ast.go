package lang

// AST node definitions. Types are resolved in place during checking: every
// Expr carries a T field filled in by the checker.

// TypeKind classifies MF types.
type TypeKind int

const (
	TInvalid TypeKind = iota
	TInt              // i32
	TFloat            // f64
	TArray            // [N]elem, storage type
	TRef              // []elem, reference to array storage (an address)
	TVoid
)

// Type is an MF type. Arrays carry their element kind and length; references
// carry only the element kind.
type Type struct {
	Kind TypeKind
	Elem TypeKind // for TArray, TRef: TInt or TFloat
	N    int64    // for TArray
}

func (t Type) String() string {
	switch t.Kind {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TArray:
		if t.Elem == TInt {
			return "[N]int"
		}
		return "[N]float"
	case TRef:
		if t.Elem == TInt {
			return "[]int"
		}
		return "[]float"
	case TVoid:
		return "void"
	}
	return "invalid"
}

// Equal reports type identity (array lengths included).
func (t Type) Equal(u Type) bool { return t == u }

// Scalar reports whether t is int or float.
func (t Type) Scalar() bool { return t.Kind == TInt || t.Kind == TFloat }

// Expr is an expression node. At reports the node's source position.
type Expr interface {
	exprNode()
	At() Pos
}

// Common expression header.
type exprBase struct {
	Pos
	T Type // set by the checker
}

func (exprBase) exprNode() {}

// At reports the expression's source position.
func (b exprBase) At() Pos { return b.Pos }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Val float64
}

// Ident references a variable (local, parameter, or global).
type Ident struct {
	exprBase
	Name string
}

// Index is a[i].
type Index struct {
	exprBase
	Arr   Expr
	Index Expr
}

// Unary is op x for op in - ! ~.
type Unary struct {
	exprBase
	Op Kind
	X  Expr
}

// Binary is x op y.
type Binary struct {
	exprBase
	Op   Kind
	X, Y Expr
}

// Cond is c ? a : b. Both arms are evaluated; it lowers to the machine's
// SELECT operation rather than a branch (§6.2 of the paper).
type Cond struct {
	exprBase
	C, A, B Expr
}

// Call is f(args...). Casts int(x) and float(x) are parsed as Cast, not Call.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Cast is int(x) or float(x).
type Cast struct {
	exprBase
	To Kind // KINT or KFLOAT
	X  Expr
}

// Stmt is a statement node. At reports the node's source position.
type Stmt interface {
	stmtNode()
	At() Pos
}

type stmtBase struct{ Pos }

func (stmtBase) stmtNode() {}

// At reports the statement's source position.
func (b stmtBase) At() Pos { return b.Pos }

// VarStmt declares a local variable, optionally initialized.
type VarStmt struct {
	stmtBase
	Name string
	Type Type
	Init Expr // nil for arrays and default-zero scalars
}

// AssignStmt is lvalue = expr, where lvalue is Ident or Index.
type AssignStmt struct {
	stmtBase
	LHS Expr
	RHS Expr
}

// IfStmt is if (cond) then [else els].
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for (init; cond; post) body. Init and Post are assignments or
// var declarations; any of the three clauses may be empty.
type ForStmt struct {
	stmtBase
	Init Stmt // nil, *VarStmt or *AssignStmt
	Cond Expr // nil means true
	Post Stmt // nil or *AssignStmt
	Body *BlockStmt
}

// ReturnStmt returns the optional value.
type ReturnStmt struct {
	stmtBase
	Val Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ stmtBase }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	stmtBase
	X Expr
}

// BlockStmt is { stmts }.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Type // TVoid if none
	Body   *BlockStmt
	Pos    Pos
}

// GlobalDecl is a top-level var.
type GlobalDecl struct {
	Name  string
	Type  Type
	InitI int64   // scalar int initializer
	InitF float64 // scalar float initializer
	// Array initializers
	InitListI []int64
	InitListF []float64
	HasInit   bool
	Pos       Pos
}

// File is a parsed source file.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
