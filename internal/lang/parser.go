package lang

import "fmt"

// Parse lexes and parses an MF source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

type parser struct {
	toks  []Token
	pos   int
	depth int // current statement/expression nesting depth
}

// maxNesting bounds recursive-descent depth so hostile input (deep
// parenthesis or brace nesting, long unary chains) produces a positioned
// diagnostic instead of overflowing the host stack.
const maxNesting = 200

// enter guards one level of recursive descent; every enter pairs with leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxNesting {
		return errf(p.cur().Pos, "nesting too deep (max %d levels)", maxNesting)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, describe(t))
	}
	p.next()
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case EOF:
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != EOF {
		switch p.cur().Kind {
		case KVAR:
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		case KFUNC:
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, errf(p.cur().Pos, "expected var or func at top level, found %s", describe(p.cur()))
		}
	}
	return f, nil
}

// typ parses int | float | [N]int | [N]float | []int | []float.
func (p *parser) typ() (Type, error) {
	t := p.cur()
	switch t.Kind {
	case KINT:
		p.next()
		return Type{Kind: TInt}, nil
	case KFLOAT:
		p.next()
		return Type{Kind: TFloat}, nil
	case LBRACK:
		p.next()
		if p.accept(RBRACK) {
			elem, err := p.elemType()
			return Type{Kind: TRef, Elem: elem}, err
		}
		n, err := p.expect(INTLIT)
		if err != nil {
			return Type{}, err
		}
		if n.Int <= 0 {
			return Type{}, errf(n.Pos, "array length must be positive")
		}
		if _, err := p.expect(RBRACK); err != nil {
			return Type{}, err
		}
		elem, err := p.elemType()
		return Type{Kind: TArray, Elem: elem, N: n.Int}, err
	}
	return Type{}, errf(t.Pos, "expected type, found %s", describe(t))
}

func (p *parser) elemType() (TypeKind, error) {
	switch p.cur().Kind {
	case KINT:
		p.next()
		return TInt, nil
	case KFLOAT:
		p.next()
		return TFloat, nil
	}
	return TInvalid, errf(p.cur().Pos, "expected int or float element type, found %s", describe(p.cur()))
}

func (p *parser) globalDecl() (*GlobalDecl, error) {
	start, _ := p.expect(KVAR)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	t, err := p.typ()
	if err != nil {
		return nil, err
	}
	if t.Kind == TRef {
		return nil, errf(start.Pos, "globals cannot have reference type")
	}
	g := &GlobalDecl{Name: name.Text, Type: t, Pos: start.Pos}
	if p.accept(ASSIGN) {
		g.HasInit = true
		if t.Kind == TArray {
			if _, err := p.expect(LBRACE); err != nil {
				return nil, err
			}
			for !p.accept(RBRACE) {
				neg := p.accept(MINUS)
				switch p.cur().Kind {
				case INTLIT:
					v := p.next().Int
					if neg {
						v = -v
					}
					if t.Elem == TInt {
						g.InitListI = append(g.InitListI, v)
					} else {
						g.InitListF = append(g.InitListF, float64(v))
					}
				case FLOATLIT:
					if t.Elem != TFloat {
						return nil, errf(p.cur().Pos, "float literal in int array initializer")
					}
					v := p.next().Flt
					if neg {
						v = -v
					}
					g.InitListF = append(g.InitListF, v)
				default:
					return nil, errf(p.cur().Pos, "expected literal in initializer, found %s", describe(p.cur()))
				}
				if !p.accept(COMMA) && p.cur().Kind != RBRACE {
					return nil, errf(p.cur().Pos, "expected , or } in initializer")
				}
			}
			if int64(len(g.InitListI)) > t.N || int64(len(g.InitListF)) > t.N {
				return nil, errf(start.Pos, "too many initializers for %s[%d]", name.Text, t.N)
			}
		} else {
			neg := p.accept(MINUS)
			switch p.cur().Kind {
			case INTLIT:
				v := p.next().Int
				if neg {
					v = -v
				}
				if t.Kind == TInt {
					g.InitI = v
				} else {
					g.InitF = float64(v)
				}
			case FLOATLIT:
				if t.Kind != TFloat {
					return nil, errf(p.cur().Pos, "float initializer for int global")
				}
				v := p.next().Flt
				if neg {
					v = -v
				}
				g.InitF = v
			default:
				return nil, errf(p.cur().Pos, "expected literal initializer, found %s", describe(p.cur()))
			}
		}
	}
	p.accept(SEMI)
	return g, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	start, _ := p.expect(KFUNC)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Ret: Type{Kind: TVoid}, Pos: start.Pos}
	for p.cur().Kind != RPAREN {
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		pt, err := p.typ()
		if err != nil {
			return nil, err
		}
		if pt.Kind == TArray {
			return nil, errf(pn.Pos, "array parameters must be references: []%v", pt.Elem)
		}
		fn.Params = append(fn.Params, Param{Name: pn.Text, Type: pt, Pos: pn.Pos})
		if !p.accept(COMMA) && p.cur().Kind != RPAREN {
			return nil, errf(p.cur().Pos, "expected , or ) in parameter list")
		}
	}
	p.next() // RPAREN
	if p.cur().Kind == KINT || p.cur().Kind == KFLOAT {
		rt, err := p.typ()
		if err != nil {
			return nil, err
		}
		fn.Ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*BlockStmt, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{stmtBase: stmtBase{Pos: lb.Pos}}
	for !p.accept(RBRACE) {
		if p.cur().Kind == EOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch t.Kind {
	case KVAR:
		s, err := p.varStmt()
		if err != nil {
			return nil, err
		}
		p.accept(SEMI)
		return s, nil
	case KIF:
		return p.ifStmt()
	case KWHILE:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Body: body}, nil
	case KFOR:
		return p.forStmt()
	case KRETURN:
		p.next()
		s := &ReturnStmt{stmtBase: stmtBase{Pos: t.Pos}}
		if p.cur().Kind != SEMI && p.cur().Kind != RBRACE {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Val = v
		}
		p.accept(SEMI)
		return s, nil
	case KBREAK:
		p.next()
		p.accept(SEMI)
		return &BreakStmt{stmtBase{Pos: t.Pos}}, nil
	case KCONTINUE:
		p.next()
		p.accept(SEMI)
		return &ContinueStmt{stmtBase{Pos: t.Pos}}, nil
	case LBRACE:
		return p.block()
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		p.accept(SEMI)
		return s, nil
	}
}

func (p *parser) varStmt() (*VarStmt, error) {
	start, _ := p.expect(KVAR)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	t, err := p.typ()
	if err != nil {
		return nil, err
	}
	s := &VarStmt{stmtBase: stmtBase{Pos: start.Pos}, Name: name.Text, Type: t}
	if p.accept(ASSIGN) {
		if t.Kind == TArray {
			return nil, errf(start.Pos, "local arrays cannot have initializers")
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Init = e
	}
	return s, nil
}

// simpleStmt parses an assignment or expression statement.
func (p *parser) simpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(ASSIGN) {
		switch e.(type) {
		case *Ident, *Index:
		default:
			return nil, errf(pos, "left side of = must be a variable or array element")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{stmtBase: stmtBase{Pos: pos}, LHS: e, RHS: rhs}, nil
	}
	return &ExprStmt{stmtBase: stmtBase{Pos: pos}, X: e}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	start, _ := p.expect(KIF)
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{stmtBase: stmtBase{Pos: start.Pos}, Cond: cond, Then: then}
	if p.accept(KELSE) {
		if p.cur().Kind == KIF {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *parser) forStmt() (Stmt, error) {
	start, _ := p.expect(KFOR)
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &ForStmt{stmtBase: stmtBase{Pos: start.Pos}}
	if !p.accept(SEMI) {
		var init Stmt
		var err error
		if p.cur().Kind == KVAR {
			init, err = p.varStmt()
		} else {
			init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
		s.Init = init
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	if !p.accept(SEMI) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind != RPAREN {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[Kind]int{
	OROR: 1, ANDAND: 2,
	PIPE: 3, CARET: 4, AMP: 5,
	EQ: 6, NE: 6,
	LT: 7, LE: 7, GT: 7, GE: 7,
	SHL: 8, SHR: 8,
	PLUS: 9, MINUS: 9,
	STAR: 10, SLASH: 10, PERCENT: 10,
}

func (p *parser) expr() (Expr, error) { return p.ternary() }

func (p *parser) ternary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	c, err := p.binary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(QUESTION) {
		return c, nil
	}
	pos := p.cur().Pos
	a, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(COLON); err != nil {
		return nil, err
	}
	b, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return &Cond{exprBase: exprBase{Pos: pos}, C: c, A: a, B: b}, nil
}

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.cur().Pos
		p.next()
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{Pos: pos}, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch t.Kind {
	case MINUS, BANG, TILDE:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBRACK:
			pos := p.next().Pos
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			e = &Index{exprBase: exprBase{Pos: pos}, Arr: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Int}, nil
	case FLOATLIT:
		p.next()
		return &FloatLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Flt}, nil
	case KINT, KFLOAT:
		p.next()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return &Cast{exprBase: exprBase{Pos: t.Pos}, To: t.Kind, X: x}, nil
	case IDENT:
		p.next()
		if p.cur().Kind == LPAREN {
			p.next()
			c := &Call{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			for p.cur().Kind != RPAREN {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if !p.accept(COMMA) && p.cur().Kind != RPAREN {
					return nil, errf(p.cur().Pos, "expected , or ) in call")
				}
			}
			p.next()
			return c, nil
		}
		return &Ident{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case LPAREN:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", describe(t))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
