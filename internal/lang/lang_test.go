package lang

import (
	"strings"
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
)

// run compiles src and executes it in the IR interpreter.
func run(t *testing.T, src string) (int32, string) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := &ir.Interp{Prog: prog}
	v, out, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("func f(x int) int { return x << 2 } // comment\nvar y float = 1.5e2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Kind{KFUNC, IDENT, LPAREN, IDENT, KINT, RPAREN, KINT, LBRACE,
		KRETURN, IDENT, SHL, INTLIT, RBRACE, KVAR, IDENT, KFLOAT, ASSIGN, FLOATLIT, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	if toks[17].Flt != 150 {
		t.Errorf("float literal = %v", toks[17].Flt)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"$", "9999999999999999999", "1.5ee2"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded", src)
		}
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	v, _ := run(t, `
func main() int {
	return 2 + 3 * 4 - 10 / 2 % 3 + (1 << 4) - (65 >> 2) + (7 & 5) + (1 | 8) - (6 ^ 3)
}`)
	// 2+12-2+16-16+5+9-5 = 21
	if v != 21 {
		t.Errorf("got %d, want 21", v)
	}
}

func TestFloatsAndCasts(t *testing.T) {
	v, out := run(t, `
func main() int {
	var x float = 2.5
	var y float = float(3)
	print_f(x * y + 0.5)
	return int(x * y)
}`)
	if v != 7 {
		t.Errorf("exit = %d, want 7", v)
	}
	if out != "8\n" {
		t.Errorf("out = %q", out)
	}
}

func TestControlFlow(t *testing.T) {
	v, _ := run(t, `
func main() int {
	var s int = 0
	for (var i int = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { s = s + i } else { s = s - 1 }
	}
	var j int = 0
	while (j < 3) { s = s + 100; j = j + 1 }
	return s
}`)
	// evens 0..8 sum=20, minus 5 odds => 15, +300 = 315
	if v != 315 {
		t.Errorf("got %d, want 315", v)
	}
}

func TestBreakContinue(t *testing.T) {
	v, _ := run(t, `
func main() int {
	var s int = 0
	for (var i int = 0; i < 100; i = i + 1) {
		if (i == 10) { break }
		if (i % 2 == 1) { continue }
		s = s + i
	}
	return s
}`)
	if v != 20 { // 0+2+4+6+8
		t.Errorf("got %d, want 20", v)
	}
}

func TestShortCircuit(t *testing.T) {
	v, out := run(t, `
var a [4]int
func touch(i int) int { a[0] = a[0] + 1; return i }
func main() int {
	var x int = 0
	if (x != 0 && touch(1) == 1) { print_i(-1) }
	if (x == 0 || touch(2) == 2) { print_i(a[0]) }
	return a[0]
}`)
	if v != 0 {
		t.Errorf("touch called despite short circuit: a[0]=%d", v)
	}
	if out != "0\n" {
		t.Errorf("out = %q", out)
	}
}

func TestTernarySelect(t *testing.T) {
	prog, err := Compile(`
func main() int {
	var x int = 5
	return x > 3 ? x * 2 : x - 1
}`)
	if err != nil {
		t.Fatal(err)
	}
	// must lower to a SELECT op, not a branch
	found := false
	for _, b := range prog.Func("main").Blocks {
		for _, o := range b.Ops {
			if o.Kind == ir.Select {
				found = true
			}
		}
	}
	if !found {
		t.Error("?: did not lower to SELECT")
	}
	in := &ir.Interp{Prog: prog}
	v, _, _ := in.Run()
	if v != 10 {
		t.Errorf("got %d, want 10", v)
	}
}

func TestArraysGlobalLocalRef(t *testing.T) {
	v, out := run(t, `
var g [8]float = {1, 2, 3, 4, 5, 6, 7, 8}
var n int = 8

func sum(x []float, n int) float {
	var s float = 0.0
	for (var i int = 0; i < n; i = i + 1) { s = s + x[i] }
	return s
}

func main() int {
	var loc [8]float
	for (var i int = 0; i < n; i = i + 1) { loc[i] = g[i] * 2.0 }
	print_f(sum(g, n))
	print_f(sum(loc, n))
	var p []float = g
	print_f(p[3])
	return int(sum(loc, 4))
}`)
	if out != "36\n72\n4\n" {
		t.Errorf("out = %q", out)
	}
	if v != 20 {
		t.Errorf("exit = %d, want 20", v)
	}
}

func TestGlobalScalarInit(t *testing.T) {
	v, _ := run(t, `
var base int = 40
var scale float = -2.5
func main() int {
	base = base + 2
	return base + int(scale * -0.8)
}`)
	if v != 44 {
		t.Errorf("got %d, want 44", v)
	}
}

func TestRecursion(t *testing.T) {
	v, _ := run(t, `
func fib(n int) int {
	if (n < 2) { return n }
	return fib(n-1) + fib(n-2)
}
func main() int { return fib(15) }`)
	if v != 610 {
		t.Errorf("fib(15) = %d, want 610", v)
	}
}

func TestImplicitReturn(t *testing.T) {
	v, _ := run(t, `
func f(x int) int { if (x > 0) { return x } }
func main() int { return f(5) + f(-5) }`)
	if v != 5 {
		t.Errorf("got %d, want 5", v)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`func main() int { return 1.5 }`, "return"},
		{`func main() int { return x }`, "undefined"},
		{`func main() int { var x int = 1; var x int = 2; return x }`, "redeclared"},
		{`func main() int { return 1 + 1.5 }`, "invalid operands"},
		{`func main() int { break return 0 }`, "break outside loop"},
		{`func main() int { return f(1) }`, "undefined function"},
		{`func f() {} func main() int { return f() }`, "returns no value"},
		{`func f(x int) int { return x } func main() int { return f(1.0) }`, "argument 1"},
		{`func f(x int) int { return x } func main() int { return f(1, 2) }`, "argument"},
		{`func main() int { 3 = 4 return 0 }`, "left side"},
		{`var a [4]int func main() int { a = a return 0 }`, "cannot assign to array"},
		{`func main() int { return 1.5 % 2.0 }`, "requires int"},
		{`func main() float { return 2.0 ? 1.0 : 0.0 }`, "condition must be int"},
		{`func main() int { if (1) { return 1 } else { return 2 }`, "unterminated"},
		{`var g [2]float = {1, 2, 3} func main() int { return 0 }`, "too many initializers"},
		{`func main(x int) int { return x }`, "main"},
		{`func dup() {} func dup() {} func main() int {return 0}`, "duplicate function"},
		{`var v int var v int func main() int {return 0}`, "duplicate global"},
		{`func print_i(x int) {} func main() int {return 0}`, "builtin"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("compile succeeded, want error containing %q:\n%s", c.want, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not contain %q", err, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		`func`, `func f(`, `func f() { var }`, `var x [0]int`,
		`func f(a [4]int) {}`, `var r []int`, `x = 1`,
		`func f() { for (;; }`, `func f() { if 1 {} }`,
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestNestedLoopsMatmul(t *testing.T) {
	v, _ := run(t, `
var a [16]float
var b [16]float
var c [16]float

func main() int {
	for (var i int = 0; i < 16; i = i + 1) {
		a[i] = float(i)
		b[i] = float(i % 4)
	}
	for (var i int = 0; i < 4; i = i + 1) {
		for (var j int = 0; j < 4; j = j + 1) {
			var s float = 0.0
			for (var k int = 0; k < 4; k = k + 1) {
				s = s + a[i*4+k] * b[k*4+j]
			}
			c[i*4+j] = s
		}
	}
	return int(c[5])
}`)
	// row1 of a = [4,5,6,7]; col1 of b = [1,1,1,1] => 22
	if v != 22 {
		t.Errorf("got %d, want 22", v)
	}
}

func TestUnaryOps(t *testing.T) {
	v, _ := run(t, `
func main() int {
	var x int = 5
	var f float = -2.5
	return -x + ~0 + !0 * 10 + !3 + int(-f * 2.0)
}`)
	// -5 + -1 + 10 + 0 + 5 = 9
	if v != 9 {
		t.Errorf("got %d, want 9", v)
	}
}

func TestFloatCompares(t *testing.T) {
	v, out := run(t, `
func absf(x float) float {
	if (x < 0.0) { return -x }
	return x
}
func main() int {
	print_f(absf(-2.5))
	print_f(absf(1.25))
	var n int = 0
	if (1.5 > 1.0) { n = n + 1 }
	if (1.5 >= 1.5) { n = n + 1 }
	if (1.0 != 2.0) { n = n + 1 }
	if (2.0 == 2.0) { n = n + 1 }
	if (1.0 <= 0.5) { n = n + 100 }
	return n
}`)
	if v != 4 {
		t.Errorf("float compare chain = %d, want 4", v)
	}
	if out != "2.5\n1.25\n" {
		t.Errorf("out = %q", out)
	}
}

func TestProfileFromSource(t *testing.T) {
	prog, err := Compile(`
func main() int {
	var s int = 0
	for (var i int = 0; i < 7; i = i + 1) { s = s + i }
	return s
}`)
	if err != nil {
		t.Fatal(err)
	}
	prof := ir.Profile{}
	in := &ir.Interp{Prog: prog, Profile: prof}
	if _, _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	// some edge in main must have weight 7 (the loop body edge)
	found := false
	for _, w := range prof["main"] {
		if w == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("no edge with weight 7: %v", prof["main"])
	}
}
