package lang

import (
	"errors"
	"fmt"

	"github.com/multiflow-repro/trace/internal/ir"
)

// Compile parses, type-checks, and lowers MF source to an IR program.
func Compile(src string) (*ir.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(file)
}

// CompileFile is Compile with the source's file name attached to any
// diagnostic, so errors render as "name:line:col: message".
func CompileFile(name, src string) (*ir.Program, error) {
	prog, err := Compile(src)
	if err != nil {
		var le *Error
		if errors.As(err, &le) {
			le.File = name
		}
		return nil, err
	}
	return prog, nil
}

// Lower type-checks and lowers a parsed file.
func Lower(file *File) (*ir.Program, error) {
	lw := &lowerer{
		globals: map[string]*GlobalDecl{},
		funcs:   map[string]*FuncDecl{},
	}
	prog := &ir.Program{}
	for _, g := range file.Globals {
		if lw.globals[g.Name] != nil {
			return nil, errf(g.Pos, "duplicate global %s", g.Name)
		}
		lw.globals[g.Name] = g
		ig := &ir.Global{Name: g.Name}
		switch g.Type.Kind {
		case TInt:
			ig.Elem, ig.Count = ir.I32, 1
			if g.HasInit {
				ig.InitI = []int64{g.InitI}
			}
		case TFloat:
			ig.Elem, ig.Count = ir.F64, 1
			if g.HasInit {
				ig.InitF = []float64{g.InitF}
			}
		case TArray:
			ig.Count = g.Type.N
			if g.Type.Elem == TInt {
				ig.Elem = ir.I32
				ig.InitI = g.InitListI
			} else {
				ig.Elem = ir.F64
				ig.InitF = g.InitListF
			}
		}
		prog.Globals = append(prog.Globals, ig)
	}
	for _, fn := range file.Funcs {
		if lw.funcs[fn.Name] != nil {
			return nil, errf(fn.Pos, "duplicate function %s", fn.Name)
		}
		if ir.IsBuiltin(fn.Name) {
			return nil, errf(fn.Pos, "%s is a builtin", fn.Name)
		}
		lw.funcs[fn.Name] = fn
	}
	for _, fn := range file.Funcs {
		irf, err := lw.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		prog.AddFunc(irf)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("internal error: lowered IR invalid: %w", err)
	}
	return prog, nil
}

// local is a resolved local name: a scalar/ref in a register, or an array at
// a frame offset.
type local struct {
	typ   Type
	reg   ir.Reg // scalars and refs
	frOff int64  // arrays
}

type lowerer struct {
	globals map[string]*GlobalDecl
	funcs   map[string]*FuncDecl

	f      *ir.Func
	b      *ir.Builder
	fn     *FuncDecl
	scopes []map[string]*local
	// loop context for break/continue
	breakTo    []*ir.Block
	continueTo []*ir.Block
	pos        Pos
}

func irType(k TypeKind) ir.Type {
	if k == TFloat {
		return ir.F64
	}
	return ir.I32
}

func (lw *lowerer) emit(op ir.Op) {
	op.Line = lw.pos.Line
	lw.b.Emit(op)
}

func (lw *lowerer) lookup(name string) *local {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if l, ok := lw.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (lw *lowerer) define(pos Pos, name string, l *local) error {
	top := lw.scopes[len(lw.scopes)-1]
	if _, ok := top[name]; ok {
		return errf(pos, "%s redeclared in this scope", name)
	}
	top[name] = l
	return nil
}

func (lw *lowerer) lowerFunc(fn *FuncDecl) (*ir.Func, error) {
	var ret ir.Type
	switch fn.Ret.Kind {
	case TVoid:
		ret = ir.Void
	case TInt:
		ret = ir.I32
	case TFloat:
		ret = ir.F64
	default:
		return nil, errf(fn.Pos, "function %s: bad return type %s", fn.Name, fn.Ret)
	}
	f := ir.NewFunc(fn.Name, ret)
	lw.f = f
	lw.b = ir.NewBuilder(f)
	lw.fn = fn
	lw.scopes = []map[string]*local{{}}
	lw.breakTo, lw.continueTo = nil, nil

	for _, p := range fn.Params {
		var t ir.Type
		switch p.Type.Kind {
		case TInt, TRef:
			t = ir.I32 // references are byte addresses
		case TFloat:
			t = ir.F64
		default:
			return nil, errf(p.Pos, "bad parameter type %s", p.Type)
		}
		r := f.NewReg(t)
		f.Params = append(f.Params, ir.Param{Reg: r, Type: t})
		if err := lw.define(p.Pos, p.Name, &local{typ: p.Type, reg: r}); err != nil {
			return nil, err
		}
	}
	if err := lw.stmts(fn.Body.Stmts); err != nil {
		return nil, err
	}
	// Implicit return if control can fall off the end.
	if lw.b.Cur.Term() == nil {
		switch ret {
		case ir.Void:
			lw.emit(ir.Op{Kind: ir.Ret})
		case ir.I32:
			z := lw.b.ConstI(0)
			lw.emit(ir.Op{Kind: ir.Ret, Args: []ir.Reg{z}})
		case ir.F64:
			z := lw.b.ConstF(0)
			lw.emit(ir.Op{Kind: ir.Ret, Args: []ir.Reg{z}})
		}
	}
	// Any other block left unterminated (e.g. a loop body ending in break
	// created empty continuation blocks) gets an implicit return too.
	for _, blk := range f.Blocks {
		if blk.Term() == nil {
			lw.b.SetBlock(blk)
			switch ret {
			case ir.Void:
				lw.emit(ir.Op{Kind: ir.Ret})
			case ir.I32:
				z := lw.b.ConstI(0)
				lw.emit(ir.Op{Kind: ir.Ret, Args: []ir.Reg{z}})
			case ir.F64:
				z := lw.b.ConstF(0)
				lw.emit(ir.Op{Kind: ir.Ret, Args: []ir.Reg{z}})
			}
		}
	}
	f.RemoveUnreachable()
	return f, nil
}

func (lw *lowerer) stmts(list []Stmt) error {
	for _, s := range list {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*local{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarStmt:
		lw.pos = s.Pos
		switch s.Type.Kind {
		case TInt, TFloat, TRef:
			t := irType(s.Type.Kind)
			if s.Type.Kind == TRef {
				t = ir.I32
			}
			r := lw.f.NewReg(t)
			if s.Init != nil {
				v, vt, err := lw.expr(s.Init)
				if err != nil {
					return err
				}
				if !assignable(s.Type, vt) {
					return errf(s.Pos, "cannot initialize %s %s with %s", s.Name, s.Type, vt)
				}
				lw.emit(ir.Op{Kind: ir.Mov, Type: t, Dst: r, Args: []ir.Reg{v}})
			} else {
				if t == ir.F64 {
					z := lw.b.ConstF(0)
					lw.emit(ir.Op{Kind: ir.Mov, Type: t, Dst: r, Args: []ir.Reg{z}})
				} else {
					z := lw.b.ConstI(0)
					lw.emit(ir.Op{Kind: ir.Mov, Type: t, Dst: r, Args: []ir.Reg{z}})
				}
			}
			return lw.define(s.Pos, s.Name, &local{typ: s.Type, reg: r})
		case TArray:
			size := s.Type.N * elemSize(s.Type.Elem)
			lw.f.FrameSize = (lw.f.FrameSize + 7) &^ 7
			off := lw.f.FrameSize
			lw.f.FrameSize += (size + 7) &^ 7
			return lw.define(s.Pos, s.Name, &local{typ: s.Type, frOff: off})
		}
		return errf(s.Pos, "bad variable type")

	case *AssignStmt:
		lw.pos = s.Pos
		return lw.assign(s)

	case *IfStmt:
		lw.pos = s.Pos
		cond, err := lw.condValue(s.Cond)
		if err != nil {
			return err
		}
		then := lw.b.NewBlock()
		done := lw.b.NewBlock()
		els := done
		if s.Else != nil {
			els = lw.b.NewBlock()
		}
		lw.b.CondBr(cond, then, els)
		lw.b.SetBlock(then)
		lw.pushScope()
		if err := lw.stmts(s.Then.Stmts); err != nil {
			return err
		}
		lw.popScope()
		if lw.b.Cur.Term() == nil {
			lw.b.Br(done)
		}
		if s.Else != nil {
			lw.b.SetBlock(els)
			lw.pushScope()
			if err := lw.stmt(s.Else); err != nil {
				return err
			}
			lw.popScope()
			if lw.b.Cur.Term() == nil {
				lw.b.Br(done)
			}
		}
		lw.b.SetBlock(done)
		return nil

	case *WhileStmt:
		lw.pos = s.Pos
		head := lw.b.NewBlock()
		body := lw.b.NewBlock()
		done := lw.b.NewBlock()
		lw.b.Br(head)
		lw.b.SetBlock(head)
		cond, err := lw.condValue(s.Cond)
		if err != nil {
			return err
		}
		lw.b.CondBr(cond, body, done)
		lw.b.SetBlock(body)
		lw.pushScope()
		lw.breakTo = append(lw.breakTo, done)
		lw.continueTo = append(lw.continueTo, head)
		err = lw.stmts(s.Body.Stmts)
		lw.breakTo = lw.breakTo[:len(lw.breakTo)-1]
		lw.continueTo = lw.continueTo[:len(lw.continueTo)-1]
		lw.popScope()
		if err != nil {
			return err
		}
		if lw.b.Cur.Term() == nil {
			lw.b.Br(head)
		}
		lw.b.SetBlock(done)
		return nil

	case *ForStmt:
		lw.pos = s.Pos
		lw.pushScope() // for-init scope
		if s.Init != nil {
			if err := lw.stmt(s.Init); err != nil {
				return err
			}
		}
		head := lw.b.NewBlock()
		body := lw.b.NewBlock()
		post := lw.b.NewBlock()
		done := lw.b.NewBlock()
		lw.b.Br(head)
		lw.b.SetBlock(head)
		if s.Cond != nil {
			cond, err := lw.condValue(s.Cond)
			if err != nil {
				return err
			}
			lw.b.CondBr(cond, body, done)
		} else {
			lw.b.Br(body)
		}
		lw.b.SetBlock(body)
		lw.pushScope()
		lw.breakTo = append(lw.breakTo, done)
		lw.continueTo = append(lw.continueTo, post)
		err := lw.stmts(s.Body.Stmts)
		lw.breakTo = lw.breakTo[:len(lw.breakTo)-1]
		lw.continueTo = lw.continueTo[:len(lw.continueTo)-1]
		lw.popScope()
		if err != nil {
			return err
		}
		if lw.b.Cur.Term() == nil {
			lw.b.Br(post)
		}
		lw.b.SetBlock(post)
		if s.Post != nil {
			if err := lw.stmt(s.Post); err != nil {
				return err
			}
		}
		lw.b.Br(head)
		lw.popScope()
		lw.b.SetBlock(done)
		return nil

	case *ReturnStmt:
		lw.pos = s.Pos
		if s.Val == nil {
			if lw.fn.Ret.Kind != TVoid {
				return errf(s.Pos, "missing return value in %s", lw.fn.Name)
			}
			lw.emit(ir.Op{Kind: ir.Ret})
		} else {
			v, vt, err := lw.expr(s.Val)
			if err != nil {
				return err
			}
			if !vt.Equal(lw.fn.Ret) {
				return errf(s.Pos, "return %s from function returning %s", vt, lw.fn.Ret)
			}
			lw.emit(ir.Op{Kind: ir.Ret, Args: []ir.Reg{v}})
		}
		// Code after a return in the same block is unreachable; park the
		// builder on a fresh block so lowering can continue.
		lw.b.SetBlock(lw.b.NewBlock())
		return nil

	case *BreakStmt:
		lw.pos = s.Pos
		if len(lw.breakTo) == 0 {
			return errf(s.Pos, "break outside loop")
		}
		lw.b.Br(lw.breakTo[len(lw.breakTo)-1])
		lw.b.SetBlock(lw.b.NewBlock())
		return nil

	case *ContinueStmt:
		lw.pos = s.Pos
		if len(lw.continueTo) == 0 {
			return errf(s.Pos, "continue outside loop")
		}
		lw.b.Br(lw.continueTo[len(lw.continueTo)-1])
		lw.b.SetBlock(lw.b.NewBlock())
		return nil

	case *ExprStmt:
		lw.pos = s.Pos
		if c, ok := s.X.(*Call); ok {
			_, _, err := lw.call(c, true)
			return err
		}
		_, _, err := lw.expr(s.X)
		return err

	case *BlockStmt:
		lw.pushScope()
		err := lw.stmts(s.Stmts)
		lw.popScope()
		return err
	}
	return errf(Pos{}, "unknown statement %T", s)
}

func assignable(dst Type, src Type) bool {
	if dst.Kind == TRef {
		return src.Kind == TRef && src.Elem == dst.Elem
	}
	return dst.Kind == src.Kind
}

func elemSize(k TypeKind) int64 {
	if k == TFloat {
		return 8
	}
	return 4
}

func (lw *lowerer) assign(s *AssignStmt) error {
	switch lhs := s.LHS.(type) {
	case *Ident:
		if l := lw.lookup(lhs.Name); l != nil {
			if l.typ.Kind == TArray {
				return errf(s.Pos, "cannot assign to array %s", lhs.Name)
			}
			v, vt, err := lw.expr(s.RHS)
			if err != nil {
				return err
			}
			if !assignable(l.typ, vt) {
				return errf(s.Pos, "cannot assign %s to %s %s", vt, lhs.Name, l.typ)
			}
			t := irType(l.typ.Kind)
			if l.typ.Kind == TRef {
				t = ir.I32
			}
			lw.emit(ir.Op{Kind: ir.Mov, Type: t, Dst: l.reg, Args: []ir.Reg{v}})
			return nil
		}
		if g := lw.globals[lhs.Name]; g != nil {
			if g.Type.Kind == TArray {
				return errf(s.Pos, "cannot assign to array %s", lhs.Name)
			}
			v, vt, err := lw.expr(s.RHS)
			if err != nil {
				return err
			}
			if vt.Kind != g.Type.Kind {
				return errf(s.Pos, "cannot assign %s to %s %s", vt, lhs.Name, g.Type)
			}
			addr := lw.b.GAddr(g.Name)
			lw.emit(ir.Op{Kind: ir.Store, Type: irType(g.Type.Kind), Args: []ir.Reg{addr, v}})
			return nil
		}
		return errf(s.Pos, "undefined: %s", lhs.Name)

	case *Index:
		addr, off, elem, err := lw.elemAddr(lhs)
		if err != nil {
			return err
		}
		v, vt, err := lw.expr(s.RHS)
		if err != nil {
			return err
		}
		if (elem == TInt && vt.Kind != TInt) || (elem == TFloat && vt.Kind != TFloat) {
			return errf(s.Pos, "cannot store %s into %s element", vt, Type{Kind: elem})
		}
		lw.emit(ir.Op{Kind: ir.Store, Type: irType(elem), Args: []ir.Reg{addr, v}, ImmI: off})
		return nil
	}
	return errf(s.Pos, "bad assignment target")
}

// arrayBase lowers an expression of array/reference type to a base address
// register, returning the element kind.
func (lw *lowerer) arrayBase(e Expr) (ir.Reg, TypeKind, error) {
	id, ok := e.(*Ident)
	if !ok {
		return ir.None, TInvalid, errf(e.At(), "expression is not an array")
	}
	if l := lw.lookup(id.Name); l != nil {
		switch l.typ.Kind {
		case TArray:
			return lw.b.FrAddr(l.frOff), l.typ.Elem, nil
		case TRef:
			return l.reg, l.typ.Elem, nil
		}
		return ir.None, TInvalid, errf(id.Pos, "%s is not an array", id.Name)
	}
	if g := lw.globals[id.Name]; g != nil {
		if g.Type.Kind != TArray {
			return ir.None, TInvalid, errf(id.Pos, "%s is not an array", id.Name)
		}
		return lw.b.GAddr(g.Name), g.Type.Elem, nil
	}
	return ir.None, TInvalid, errf(id.Pos, "undefined: %s", id.Name)
}

// elemAddr lowers a[i] to (addrReg, constOffset, elemKind).
func (lw *lowerer) elemAddr(x *Index) (ir.Reg, int64, TypeKind, error) {
	base, elem, err := lw.arrayBase(x.Arr)
	if err != nil {
		return ir.None, 0, TInvalid, err
	}
	size := elemSize(elem)
	if lit, ok := x.Index.(*IntLit); ok {
		return base, lit.Val * size, elem, nil
	}
	idx, it, err := lw.expr(x.Index)
	if err != nil {
		return ir.None, 0, TInvalid, err
	}
	if it.Kind != TInt {
		return ir.None, 0, TInvalid, errf(x.Pos, "array index must be int, not %s", it)
	}
	var scaled ir.Reg
	if size == 4 {
		sh := lw.b.ConstI(2)
		scaled = lw.b.Bin(ir.Shl, ir.I32, idx, sh)
	} else {
		sh := lw.b.ConstI(3)
		scaled = lw.b.Bin(ir.Shl, ir.I32, idx, sh)
	}
	ea := lw.b.Bin(ir.Add, ir.I32, base, scaled)
	return ea, 0, elem, nil
}

// condValue lowers e and normalizes it to an i32 condition register.
func (lw *lowerer) condValue(e Expr) (ir.Reg, error) {
	v, t, err := lw.expr(e)
	if err != nil {
		return ir.None, err
	}
	if t.Kind != TInt {
		return ir.None, errf(e.At(), "condition must be int, not %s", t)
	}
	return v, nil
}

var intOnlyOps = map[Kind]bool{
	PERCENT: true, SHL: true, SHR: true, AMP: true, PIPE: true, CARET: true,
	ANDAND: true, OROR: true,
}

var cmpOps = map[Kind][2]ir.OpKind{ // [int, float]
	EQ: {ir.CmpEQ, ir.FCmpEQ}, NE: {ir.CmpNE, ir.FCmpNE},
	LT: {ir.CmpLT, ir.FCmpLT}, LE: {ir.CmpLE, ir.FCmpLE},
	GT: {ir.CmpGT, ir.FCmpGT}, GE: {ir.CmpGE, ir.FCmpGE},
}

var arithOps = map[Kind][2]ir.OpKind{
	PLUS: {ir.Add, ir.FAdd}, MINUS: {ir.Sub, ir.FSub},
	STAR: {ir.Mul, ir.FMul}, SLASH: {ir.Div, ir.FDiv},
	PERCENT: {ir.Rem, 0}, SHL: {ir.Shl, 0}, SHR: {ir.Sra, 0},
	AMP: {ir.And, 0}, PIPE: {ir.Or, 0}, CARET: {ir.Xor, 0},
}

// expr lowers an expression, returning its value register and type.
func (lw *lowerer) expr(e Expr) (ir.Reg, Type, error) {
	tInt := Type{Kind: TInt}
	tFloat := Type{Kind: TFloat}
	switch e := e.(type) {
	case *IntLit:
		lw.pos = e.Pos
		return lw.b.ConstI(e.Val), tInt, nil
	case *FloatLit:
		lw.pos = e.Pos
		return lw.b.ConstF(e.Val), tFloat, nil

	case *Ident:
		lw.pos = e.Pos
		if l := lw.lookup(e.Name); l != nil {
			switch l.typ.Kind {
			case TInt, TFloat, TRef:
				t := l.typ
				if t.Kind == TRef {
					return l.reg, t, nil
				}
				return l.reg, t, nil
			case TArray:
				// decay to reference
				return lw.b.FrAddr(l.frOff), Type{Kind: TRef, Elem: l.typ.Elem}, nil
			}
		}
		if g := lw.globals[e.Name]; g != nil {
			switch g.Type.Kind {
			case TInt, TFloat:
				addr := lw.b.GAddr(g.Name)
				return lw.b.Load(irType(g.Type.Kind), addr, 0), g.Type, nil
			case TArray:
				return lw.b.GAddr(g.Name), Type{Kind: TRef, Elem: g.Type.Elem}, nil
			}
		}
		return ir.None, Type{}, errf(e.Pos, "undefined: %s", e.Name)

	case *Index:
		lw.pos = e.Pos
		addr, off, elem, err := lw.elemAddr(e)
		if err != nil {
			return ir.None, Type{}, err
		}
		t := Type{Kind: TInt}
		if elem == TFloat {
			t = Type{Kind: TFloat}
		}
		r := lw.f.NewReg(irType(elem))
		lw.emit(ir.Op{Kind: ir.Load, Type: irType(elem), Dst: r, Args: []ir.Reg{addr}, ImmI: off})
		return r, t, nil

	case *Unary:
		lw.pos = e.Pos
		v, t, err := lw.expr(e.X)
		if err != nil {
			return ir.None, Type{}, err
		}
		switch e.Op {
		case MINUS:
			if t.Kind == TFloat {
				return lw.b.Un(ir.FNeg, ir.F64, v), t, nil
			}
			if t.Kind == TInt {
				return lw.b.Un(ir.Neg, ir.I32, v), t, nil
			}
		case BANG:
			if t.Kind == TInt {
				z := lw.b.ConstI(0)
				return lw.b.Bin(ir.CmpEQ, ir.I32, v, z), tInt, nil
			}
		case TILDE:
			if t.Kind == TInt {
				return lw.b.Un(ir.Not, ir.I32, v), t, nil
			}
		}
		return ir.None, Type{}, errf(e.Pos, "invalid operand type %s for unary %s", t, e.Op)

	case *Binary:
		lw.pos = e.Pos
		if e.Op == ANDAND || e.Op == OROR {
			return lw.shortCircuit(e)
		}
		x, xt, err := lw.expr(e.X)
		if err != nil {
			return ir.None, Type{}, err
		}
		y, yt, err := lw.expr(e.Y)
		if err != nil {
			return ir.None, Type{}, err
		}
		if !xt.Scalar() || !xt.Equal(yt) {
			return ir.None, Type{}, errf(e.Pos, "invalid operands %s and %s for %s (use int()/float() casts)", xt, yt, e.Op)
		}
		if xt.Kind == TFloat && intOnlyOps[e.Op] {
			return ir.None, Type{}, errf(e.Pos, "operator %s requires int operands", e.Op)
		}
		if ops, ok := cmpOps[e.Op]; ok {
			k := ops[0]
			if xt.Kind == TFloat {
				k = ops[1]
			}
			// compare predicates always produce an i32 truth value; the
			// op's Type field records the operand type
			r := lw.f.NewReg(ir.I32)
			lw.emit(ir.Op{Kind: k, Type: irType(xt.Kind), Dst: r, Args: []ir.Reg{x, y}})
			return r, tInt, nil
		}
		if ops, ok := arithOps[e.Op]; ok {
			k := ops[0]
			if xt.Kind == TFloat {
				k = ops[1]
			}
			return lw.b.Bin(k, irType(xt.Kind), x, y), xt, nil
		}
		return ir.None, Type{}, errf(e.Pos, "bad operator %s", e.Op)

	case *Cond:
		lw.pos = e.Pos
		c, err := lw.condValue(e.C)
		if err != nil {
			return ir.None, Type{}, err
		}
		a, at, err := lw.expr(e.A)
		if err != nil {
			return ir.None, Type{}, err
		}
		b, bt, err := lw.expr(e.B)
		if err != nil {
			return ir.None, Type{}, err
		}
		if !at.Scalar() || !at.Equal(bt) {
			return ir.None, Type{}, errf(e.Pos, "mismatched ?: arms: %s and %s", at, bt)
		}
		r := lw.f.NewReg(irType(at.Kind))
		lw.emit(ir.Op{Kind: ir.Select, Type: irType(at.Kind), Dst: r, Args: []ir.Reg{c, a, b}})
		return r, at, nil

	case *Call:
		lw.pos = e.Pos
		return lw.call(e, false)

	case *Cast:
		lw.pos = e.Pos
		v, t, err := lw.expr(e.X)
		if err != nil {
			return ir.None, Type{}, err
		}
		if e.To == KINT {
			switch t.Kind {
			case TInt:
				return v, t, nil
			case TFloat:
				return lw.b.Un(ir.FtoI, ir.I32, v), tInt, nil
			}
		} else {
			switch t.Kind {
			case TFloat:
				return v, t, nil
			case TInt:
				return lw.b.Un(ir.ItoF, ir.F64, v), tFloat, nil
			}
		}
		return ir.None, Type{}, errf(e.Pos, "cannot cast %s", t)
	}
	return ir.None, Type{}, errf(Pos{}, "unknown expression %T", e)
}

// shortCircuit lowers && and || with control flow, producing a 0/1 result.
func (lw *lowerer) shortCircuit(e *Binary) (ir.Reg, Type, error) {
	res := lw.f.NewReg(ir.I32)
	x, xt, err := lw.expr(e.X)
	if err != nil {
		return ir.None, Type{}, err
	}
	if xt.Kind != TInt {
		return ir.None, Type{}, errf(e.Pos, "operator %s requires int operands", e.Op)
	}
	evalY := lw.b.NewBlock()
	short := lw.b.NewBlock()
	done := lw.b.NewBlock()
	if e.Op == ANDAND {
		lw.b.CondBr(x, evalY, short)
	} else {
		lw.b.CondBr(x, short, evalY)
	}
	lw.b.SetBlock(evalY)
	y, yt, err := lw.expr(e.Y)
	if err != nil {
		return ir.None, Type{}, err
	}
	if yt.Kind != TInt {
		return ir.None, Type{}, errf(e.Pos, "operator %s requires int operands", e.Op)
	}
	z := lw.b.ConstI(0)
	norm := lw.b.Bin(ir.CmpNE, ir.I32, y, z)
	lw.emit(ir.Op{Kind: ir.Mov, Type: ir.I32, Dst: res, Args: []ir.Reg{norm}})
	lw.b.Br(done)
	lw.b.SetBlock(short)
	var k int64
	if e.Op == OROR {
		k = 1
	}
	c := lw.b.ConstI(k)
	lw.emit(ir.Op{Kind: ir.Mov, Type: ir.I32, Dst: res, Args: []ir.Reg{c}})
	lw.b.Br(done)
	lw.b.SetBlock(done)
	return res, Type{Kind: TInt}, nil
}

func (lw *lowerer) call(e *Call, stmtCtx bool) (ir.Reg, Type, error) {
	if b, ok := ir.Builtins[e.Name]; ok {
		if len(e.Args) != len(b.Params) {
			return ir.None, Type{}, errf(e.Pos, "%s takes %d argument(s)", e.Name, len(b.Params))
		}
		var args []ir.Reg
		for i, a := range e.Args {
			v, vt, err := lw.expr(a)
			if err != nil {
				return ir.None, Type{}, err
			}
			want := TInt
			if b.Params[i] == ir.F64 {
				want = TFloat
			}
			if vt.Kind != want {
				return ir.None, Type{}, errf(e.Pos, "%s argument %d: have %s, want %s", e.Name, i+1, vt, Type{Kind: want})
			}
			args = append(args, v)
		}
		lw.emit(ir.Op{Kind: ir.Call, Sym: e.Name, Args: args})
		return ir.None, Type{Kind: TVoid}, nil
	}
	fn := lw.funcs[e.Name]
	if fn == nil {
		return ir.None, Type{}, errf(e.Pos, "undefined function %s", e.Name)
	}
	if len(e.Args) != len(fn.Params) {
		return ir.None, Type{}, errf(e.Pos, "%s takes %d argument(s), got %d", e.Name, len(fn.Params), len(e.Args))
	}
	var args []ir.Reg
	for i, a := range e.Args {
		v, vt, err := lw.expr(a)
		if err != nil {
			return ir.None, Type{}, err
		}
		if !assignable(fn.Params[i].Type, vt) {
			return ir.None, Type{}, errf(e.Pos, "%s argument %d: have %s, want %s", e.Name, i+1, vt, fn.Params[i].Type)
		}
		args = append(args, v)
	}
	var dst ir.Reg
	var rt Type
	switch fn.Ret.Kind {
	case TVoid:
		rt = Type{Kind: TVoid}
		if !stmtCtx {
			return ir.None, Type{}, errf(e.Pos, "%s returns no value", e.Name)
		}
	case TInt:
		rt = Type{Kind: TInt}
		dst = lw.f.NewReg(ir.I32)
	case TFloat:
		rt = Type{Kind: TFloat}
		dst = lw.f.NewReg(ir.F64)
	}
	lw.emit(ir.Op{Kind: ir.Call, Sym: e.Name, Dst: dst, Args: args})
	return dst, rt, nil
}
