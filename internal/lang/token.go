// Package lang implements the MF source language: a small, C-like language
// rich enough to express the paper's workloads — FORTRAN-style numeric loops
// (unrollable, disambiguatable array references) and branchy "systems" code
// (IF chains, small basic blocks, many calls). It compiles to the ir package.
//
// Language summary:
//
//	var g [100]float            // global array (int or float elements)
//	var n int = 10              // global scalar, optional constant initializer
//	func f(x []float, n int) float { ... }
//
//	statements: var, assignment, if/else, while, for(init;cond;post),
//	            break, continue, return, expression statements, blocks
//	expressions: || && (short-circuit), | ^ &, == != < <= > >=, << >>,
//	            + - * / %, unary - ! ~, calls, a[i], int(x)/float(x) casts,
//	            c ? a : b  (SELECT: both arms evaluated, no branch — §6.2)
//
// Types: int (i32), float (f64), [N]int/[N]float (arrays), []int/[]float
// (array references; what an array name decays to when passed or assigned).
package lang

import (
	"fmt"
	"strconv"
	"unicode"
)

// Kind is a lexical token kind.
type Kind int

const (
	EOF Kind = iota
	IDENT
	INTLIT
	FLOATLIT

	// keywords
	KVAR
	KFUNC
	KIF
	KELSE
	KWHILE
	KFOR
	KRETURN
	KBREAK
	KCONTINUE
	KINT
	KFLOAT

	// punctuation and operators
	LPAREN
	RPAREN
	LBRACE
	RBRACE
	LBRACK
	RBRACK
	COMMA
	SEMI
	ASSIGN
	PLUS
	MINUS
	STAR
	SLASH
	PERCENT
	AMP
	PIPE
	CARET
	TILDE
	BANG
	SHL
	SHR
	EQ
	NE
	LT
	LE
	GT
	GE
	ANDAND
	OROR
	QUESTION
	COLON
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "int literal", FLOATLIT: "float literal",
	KVAR: "var", KFUNC: "func", KIF: "if", KELSE: "else", KWHILE: "while",
	KFOR: "for", KRETURN: "return", KBREAK: "break", KCONTINUE: "continue",
	KINT: "int", KFLOAT: "float",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	COMMA: ",", SEMI: ";", ASSIGN: "=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", TILDE: "~", BANG: "!",
	SHL: "<<", SHR: ">>", EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ANDAND: "&&", OROR: "||", QUESTION: "?", COLON: ":",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"var": KVAR, "func": KFUNC, "if": KIF, "else": KELSE, "while": KWHILE,
	"for": KFOR, "return": KRETURN, "break": KBREAK, "continue": KCONTINUE,
	"int": KINT, "float": KFLOAT,
}

// Pos is a source position: 1-based line and column (column in bytes).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Int  int64
	Flt  float64
	Pos
}

// Error is a positioned compile error. Every diagnostic the frontend emits
// renders uniformly as "file:line:col: message"; File defaults to "input"
// for sources compiled from a string (see CompileFile).
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	file := e.File
	if file == "" {
		file = "input"
	}
	return fmt.Sprintf("%s:%d:%d: %s", file, e.Pos.Line, e.Pos.Col, e.Msg)
}

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenizes src. Comments run from // to end of line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line := 1
	lineStart := 0 // index of the first byte of the current line
	i := 0
	n := len(src)
	// pos reports the position of the byte at index i; every token is
	// emitted while i still points at its first byte.
	pos := func() Pos { return Pos{Line: line, Col: i - lineStart + 1} }
	emit := func(k Kind, text string) {
		toks = append(toks, Token{Kind: k, Text: text, Pos: pos()})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			lineStart = i
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			if k, ok := keywords[word]; ok {
				emit(k, word)
			} else {
				emit(IDENT, word)
			}
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			isFloat := false
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				if src[j] == '.' || src[j] == 'e' || src[j] == 'E' {
					isFloat = true
				}
				j++
			}
			text := src[i:j]
			if isFloat {
				v, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, errf(pos(), "bad float literal %q", text)
				}
				toks = append(toks, Token{Kind: FLOATLIT, Text: text, Flt: v, Pos: pos()})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, errf(pos(), "bad int literal %q", text)
				}
				if v > 1<<31-1 {
					return nil, errf(pos(), "int literal %q overflows i32", text)
				}
				toks = append(toks, Token{Kind: INTLIT, Text: text, Int: v, Pos: pos()})
			}
			i = j
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<<":
				emit(SHL, two)
				i += 2
				continue
			case ">>":
				emit(SHR, two)
				i += 2
				continue
			case "==":
				emit(EQ, two)
				i += 2
				continue
			case "!=":
				emit(NE, two)
				i += 2
				continue
			case "<=":
				emit(LE, two)
				i += 2
				continue
			case ">=":
				emit(GE, two)
				i += 2
				continue
			case "&&":
				emit(ANDAND, two)
				i += 2
				continue
			case "||":
				emit(OROR, two)
				i += 2
				continue
			}
			var k Kind
			switch c {
			case '(':
				k = LPAREN
			case ')':
				k = RPAREN
			case '{':
				k = LBRACE
			case '}':
				k = RBRACE
			case '[':
				k = LBRACK
			case ']':
				k = RBRACK
			case ',':
				k = COMMA
			case ';':
				k = SEMI
			case '=':
				k = ASSIGN
			case '+':
				k = PLUS
			case '-':
				k = MINUS
			case '*':
				k = STAR
			case '/':
				k = SLASH
			case '%':
				k = PERCENT
			case '&':
				k = AMP
			case '|':
				k = PIPE
			case '^':
				k = CARET
			case '~':
				k = TILDE
			case '!':
				k = BANG
			case '<':
				k = LT
			case '>':
				k = GT
			case '?':
				k = QUESTION
			case ':':
				k = COLON
			default:
				return nil, errf(pos(), "unexpected character %q", string(c))
			}
			emit(k, string(c))
			i++
		}
	}
	toks = append(toks, Token{Kind: EOF, Pos: pos()})
	return toks, nil
}
