package lang

import (
	"errors"
	"regexp"
	"strings"
	"testing"
)

// diagRE is the contract for every frontend diagnostic: file:line:col: msg
// with 1-based line and column.
var diagRE = regexp.MustCompile(`^[^:\n]+:[1-9][0-9]*:[1-9][0-9]*: .+`)

// hostile inputs spanning the lexer, parser, and type checker — every one
// must fail with a uniformly positioned diagnostic.
var badInputs = []string{
	"func main() int { return @ }",                                        // lexer: bad character
	"func main() int { return 99999999999 }",                              // lexer: i32 overflow
	"func main() int { return 1.5e }",                                     // lexer: bad float
	"var x\nfunc main() int { return 0 }",                                 // parser: missing type
	"func main() int { return (1 + }",                                     // parser: bad expression
	"func main() int { if (1) { return 0 }",                               // parser: unterminated block
	"func main() int { return 1 ? 2 }",                                    // parser: missing colon
	"func f(a [4]int) int { return 0 }",                                   // parser: array param
	"3 + 4",                                                               // parser: junk at top level
	"func main() int { return x }",                                        // checker: undefined
	"func main() int { return 1.5 }",                                      // checker: return type
	"func main() int { return 1 + 1.5 }",                                  // checker: mixed operands
	"func main() int { var a [4]int; a = 3 return 0 }",                    // checker: assign to array
	"func main() int { break }",                                           // checker: break outside loop
	"func main() int { var x int; var x int; return 0 }",                  // checker: redeclared
	"func f() int { return 0 }\nfunc f() int { return 0 }",                // checker: duplicate func
	"func main() int { return g(1) }",                                     // checker: undefined func
	"func main() int { return 1.5 % 2.5 }",                                // checker: int-only op
	strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000) + " func", // parser: nesting bomb
	"func main() int { return " + strings.Repeat("-", 5000) + "1 }",       // parser: unary bomb
	"func main() int " + strings.Repeat("{", 5000),                        // parser: block bomb
}

// TestEveryDiagnosticIsPositioned is the satellite acceptance test: every
// diagnostic the frontend can produce renders as file:line:col: message.
func TestEveryDiagnosticIsPositioned(t *testing.T) {
	for _, src := range badInputs {
		display := src
		if len(display) > 60 {
			display = display[:60] + "..."
		}
		_, err := Compile(src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error", display)
			continue
		}
		if !diagRE.MatchString(err.Error()) {
			t.Errorf("diagnostic for %q not positioned as file:line:col: %q", display, err)
		}
		var le *Error
		if !errors.As(err, &le) {
			t.Errorf("diagnostic for %q is not a *lang.Error: %T", display, err)
		}
	}
}

// TestDiagnosticPositionsAreExact pins line and column values, not just the
// format.
func TestDiagnosticPositionsAreExact(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func main() int {\n\treturn bogus\n}", "input:2:9: undefined: bogus"},
		{"func main() int { return @ }", `input:1:26: unexpected character "@"`},
		{"var g float = 1.0\nvar g float = 2.0", "input:2:1: duplicate global g"},
	}
	for _, c := range cases {
		_, err := Compile(c.src)
		if err == nil {
			t.Errorf("Compile(%q) succeeded", c.src)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("Compile(%q)\n  got  %q\n  want %q", c.src, err, c.want)
		}
	}
}

// TestCompileFileNamesDiagnostics checks the file name threads into errors.
func TestCompileFileNamesDiagnostics(t *testing.T) {
	_, err := CompileFile("prog.mf", "func main() int { return bogus }")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.HasPrefix(err.Error(), "prog.mf:1:") {
		t.Errorf("diagnostic lacks file name: %q", err)
	}
	if _, err := CompileFile("prog.mf", "func main() int { return 0 }"); err != nil {
		t.Errorf("valid program failed: %v", err)
	}
}

// TestNestingBombsDontCrash: deep nesting must produce an error, never a
// stack overflow — there is no recover for Go stack exhaustion.
func TestNestingBombsDontCrash(t *testing.T) {
	bombs := []string{
		strings.Repeat("(", 100_000),
		"func main() int { return " + strings.Repeat("!", 100_000) + "1 }",
		"func main() int " + strings.Repeat("{ if (1) ", 50_000),
	}
	for _, src := range bombs {
		if _, err := Compile(src); err == nil {
			t.Errorf("nesting bomb compiled successfully")
		}
	}
}
