package ir

import "fmt"

// Validate checks structural invariants of the function:
//   - Blocks[i].ID == i
//   - every block ends with exactly one terminator, and only the last op is one
//   - branch targets are in range
//   - register operands are allocated and type-consistent with the op
//
// Passes call Validate in tests after every transformation; the zero cost of
// catching a malformed CFG here is far below the cost of debugging it in the
// scheduler.
func (f *Func) Validate() error {
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("%s: block at index %d has ID %d", f.Name, i, b.ID)
		}
		if len(b.Ops) == 0 {
			return fmt.Errorf("%s: b%d is empty", f.Name, b.ID)
		}
		for j := range b.Ops {
			o := &b.Ops[j]
			if o.Kind.IsTerminator() != (j == len(b.Ops)-1) {
				return fmt.Errorf("%s: b%d op %d (%s): terminator placement", f.Name, b.ID, j, o)
			}
			if err := f.checkOp(o); err != nil {
				return fmt.Errorf("%s: b%d op %d: %w", f.Name, b.ID, j, err)
			}
		}
		t := b.Term()
		switch t.Kind {
		case Br:
			if t.T0 < 0 || t.T0 >= len(f.Blocks) {
				return fmt.Errorf("%s: b%d: br target b%d out of range", f.Name, b.ID, t.T0)
			}
		case CondBr:
			if t.T0 < 0 || t.T0 >= len(f.Blocks) || t.T1 < 0 || t.T1 >= len(f.Blocks) {
				return fmt.Errorf("%s: b%d: condbr target out of range", f.Name, b.ID)
			}
		}
	}
	return nil
}

func (f *Func) checkReg(r Reg, want Type, what string) error {
	if r == None {
		return fmt.Errorf("%s: missing register", what)
	}
	got := f.RegType(r)
	if got == Void {
		return fmt.Errorf("%s: register %s not allocated", what, r)
	}
	if want != Void && got != want {
		return fmt.Errorf("%s: register %s is %s, want %s", what, r, got, want)
	}
	return nil
}

func (f *Func) checkOp(o *Op) error {
	argn := func(n int) error {
		if len(o.Args) != n {
			return fmt.Errorf("%s: have %d args, want %d", o.Kind, len(o.Args), n)
		}
		return nil
	}
	bin := func(t Type) error {
		if err := argn(2); err != nil {
			return err
		}
		if err := f.checkReg(o.Args[0], t, "arg0"); err != nil {
			return err
		}
		return f.checkReg(o.Args[1], t, "arg1")
	}
	un := func(t Type) error {
		if err := argn(1); err != nil {
			return err
		}
		return f.checkReg(o.Args[0], t, "arg0")
	}
	dst := func(t Type) error { return f.checkReg(o.Dst, t, "dst") }

	switch o.Kind {
	case Nop:
		return nil
	case ConstI:
		return dst(I32)
	case ConstF:
		return dst(F64)
	case Mov:
		if err := un(o.Type); err != nil {
			return err
		}
		return dst(o.Type)
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Sra:
		if err := bin(I32); err != nil {
			return err
		}
		return dst(I32)
	case Neg, Not:
		if err := un(I32); err != nil {
			return err
		}
		return dst(I32)
	case CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE:
		if err := bin(I32); err != nil {
			return err
		}
		return dst(I32)
	case FAdd, FSub, FMul, FDiv:
		if err := bin(F64); err != nil {
			return err
		}
		return dst(F64)
	case FNeg:
		if err := un(F64); err != nil {
			return err
		}
		return dst(F64)
	case FCmpEQ, FCmpNE, FCmpLT, FCmpLE, FCmpGT, FCmpGE:
		if err := bin(F64); err != nil {
			return err
		}
		return dst(I32)
	case ItoF:
		if err := un(I32); err != nil {
			return err
		}
		return dst(F64)
	case FtoI:
		if err := un(F64); err != nil {
			return err
		}
		return dst(I32)
	case Select:
		if err := argn(3); err != nil {
			return err
		}
		if err := f.checkReg(o.Args[0], I32, "cond"); err != nil {
			return err
		}
		if err := f.checkReg(o.Args[1], o.Type, "then"); err != nil {
			return err
		}
		if err := f.checkReg(o.Args[2], o.Type, "else"); err != nil {
			return err
		}
		return dst(o.Type)
	case Load, LoadSpec:
		if err := argn(1); err != nil {
			return err
		}
		if err := f.checkReg(o.Args[0], I32, "addr"); err != nil {
			return err
		}
		if o.Type != I32 && o.Type != F64 {
			return fmt.Errorf("load: bad element type %s", o.Type)
		}
		return dst(o.Type)
	case Store:
		if err := argn(2); err != nil {
			return err
		}
		if err := f.checkReg(o.Args[0], I32, "addr"); err != nil {
			return err
		}
		if o.Type != I32 && o.Type != F64 {
			return fmt.Errorf("store: bad element type %s", o.Type)
		}
		return f.checkReg(o.Args[1], o.Type, "value")
	case GAddr, FrAddr:
		return dst(I32)
	case Call:
		for i, a := range o.Args {
			if err := f.checkReg(a, Void, fmt.Sprintf("arg%d", i)); err != nil {
				return err
			}
		}
		if o.Dst != None {
			return f.checkReg(o.Dst, Void, "dst")
		}
		return nil
	case Ret:
		if len(o.Args) > 1 {
			return fmt.Errorf("ret: too many args")
		}
		if len(o.Args) == 1 {
			return f.checkReg(o.Args[0], f.Ret, "ret value")
		}
		return nil
	case Br:
		return argn(0)
	case CondBr:
		if err := argn(1); err != nil {
			return err
		}
		return f.checkReg(o.Args[0], I32, "cond")
	}
	return fmt.Errorf("unknown op kind %d", o.Kind)
}

// Validate checks every function in the program and that the entry function
// main exists, returns i32 and takes no parameters.
func (p *Program) Validate() error {
	seen := map[string]bool{}
	for _, g := range p.Globals {
		if seen["g:"+g.Name] {
			return fmt.Errorf("duplicate global %s", g.Name)
		}
		seen["g:"+g.Name] = true
		if g.Count <= 0 {
			return fmt.Errorf("global %s: count %d", g.Name, g.Count)
		}
	}
	for _, f := range p.Funcs {
		if seen["f:"+f.Name] {
			return fmt.Errorf("duplicate function %s", f.Name)
		}
		seen["f:"+f.Name] = true
		if err := f.Validate(); err != nil {
			return err
		}
	}
	m := p.Func("main")
	if m == nil {
		return fmt.Errorf("no main function")
	}
	if m.Ret != I32 || len(m.Params) != 0 {
		return fmt.Errorf("main must be func main() int")
	}
	return nil
}
