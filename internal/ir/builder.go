package ir

// Builder provides a convenient way to construct IR by appending ops to a
// current block. The frontend lowering and many tests use it.
type Builder struct {
	F   *Func
	Cur *Block
}

// NewBuilder returns a builder positioned at f's entry block.
func NewBuilder(f *Func) *Builder {
	return &Builder{F: f, Cur: f.Entry()}
}

// SetBlock moves the insertion point to b.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// NewBlock creates a block (without moving the insertion point).
func (b *Builder) NewBlock() *Block { return b.F.AddBlock() }

// Emit appends op to the current block.
func (b *Builder) Emit(op Op) { b.Cur.Ops = append(b.Cur.Ops, op) }

// ConstI emits an integer constant and returns its register.
func (b *Builder) ConstI(v int64) Reg {
	r := b.F.NewReg(I32)
	b.Emit(Op{Kind: ConstI, Type: I32, Dst: r, ImmI: v})
	return r
}

// ConstF emits a float constant and returns its register.
func (b *Builder) ConstF(v float64) Reg {
	r := b.F.NewReg(F64)
	b.Emit(Op{Kind: ConstF, Type: F64, Dst: r, ImmF: v})
	return r
}

// Bin emits a binary op of the given kind and result type.
func (b *Builder) Bin(k OpKind, t Type, x, y Reg) Reg {
	r := b.F.NewReg(t)
	b.Emit(Op{Kind: k, Type: t, Dst: r, Args: []Reg{x, y}})
	return r
}

// Un emits a unary op.
func (b *Builder) Un(k OpKind, t Type, x Reg) Reg {
	r := b.F.NewReg(t)
	b.Emit(Op{Kind: k, Type: t, Dst: r, Args: []Reg{x}})
	return r
}

// Mov emits a move.
func (b *Builder) Mov(t Type, x Reg) Reg { return b.Un(Mov, t, x) }

// Load emits a load of element type t from [addr+off].
func (b *Builder) Load(t Type, addr Reg, off int64) Reg {
	r := b.F.NewReg(t)
	b.Emit(Op{Kind: Load, Type: t, Dst: r, Args: []Reg{addr}, ImmI: off})
	return r
}

// Store emits a store of val (type t) to [addr+off].
func (b *Builder) Store(t Type, addr Reg, off int64, val Reg) {
	b.Emit(Op{Kind: Store, Type: t, Args: []Reg{addr, val}, ImmI: off})
}

// GAddr emits an address-of-global.
func (b *Builder) GAddr(name string) Reg {
	r := b.F.NewReg(I32)
	b.Emit(Op{Kind: GAddr, Type: I32, Dst: r, Sym: name})
	return r
}

// FrAddr emits an address-of-frame-slot.
func (b *Builder) FrAddr(off int64) Reg {
	r := b.F.NewReg(I32)
	b.Emit(Op{Kind: FrAddr, Type: I32, Dst: r, ImmI: off})
	return r
}

// Call emits a call; dst is None for void callees.
func (b *Builder) Call(name string, ret Type, args ...Reg) Reg {
	var dst Reg
	if ret != Void {
		dst = b.F.NewReg(ret)
	}
	b.Emit(Op{Kind: Call, Type: ret, Dst: dst, Sym: name, Args: args})
	return dst
}

// Ret emits a return.
func (b *Builder) Ret(v Reg) {
	if v == None {
		b.Emit(Op{Kind: Ret})
	} else {
		b.Emit(Op{Kind: Ret, Args: []Reg{v}})
	}
}

// Br emits an unconditional branch to t.
func (b *Builder) Br(t *Block) { b.Emit(Op{Kind: Br, T0: t.ID}) }

// CondBr emits a conditional branch.
func (b *Builder) CondBr(cond Reg, then, els *Block) {
	b.Emit(Op{Kind: CondBr, Args: []Reg{cond}, T0: then.ID, T1: els.ID})
}
