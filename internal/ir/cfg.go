package ir

// CFG analyses used by the optimizer and the trace scheduler: reachability,
// reverse postorder, dominators (Cooper-Harvey-Kennedy iterative algorithm),
// natural loops, and per-block liveness.

// Reachable returns the set of block IDs reachable from the entry.
func (f *Func) Reachable() []bool {
	seen := make([]bool, len(f.Blocks))
	var stack []int
	stack = append(stack, 0)
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[b].Succs() {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// RemoveUnreachable deletes unreachable blocks and renumbers the rest,
// rewriting branch targets. It returns the number of blocks removed.
func (f *Func) RemoveUnreachable() int {
	seen := f.Reachable()
	remap := make([]int, len(f.Blocks))
	var kept []*Block
	for i, b := range f.Blocks {
		if seen[i] {
			remap[i] = len(kept)
			kept = append(kept, b)
		} else {
			remap[i] = -1
		}
	}
	removed := len(f.Blocks) - len(kept)
	if removed == 0 {
		return 0
	}
	for i, b := range kept {
		b.ID = i
		t := b.Term()
		switch t.Kind {
		case Br:
			t.T0 = remap[t.T0]
		case CondBr:
			t.T0 = remap[t.T0]
			t.T1 = remap[t.T1]
		}
	}
	f.Blocks = kept
	return removed
}

// RPO returns the block IDs in reverse postorder from the entry. Unreachable
// blocks are omitted.
func (f *Func) RPO() []int {
	seen := make([]bool, len(f.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range f.Blocks[b].Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Idom computes the immediate dominator of every reachable block.
// idom[0] == 0; unreachable blocks get -1.
func (f *Func) Idom() []int {
	rpo := f.RPO()
	order := make([]int, len(f.Blocks)) // block ID -> RPO index
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	preds := f.Preds()
	idom := make([]int, len(f.Blocks))
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if order[p] < 0 || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == 0 || idom[b] == -1 {
			return false
		}
		next := idom[b]
		if next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop: Head is the loop header, Body the set of member
// block IDs (including the header), Latches the back-edge sources.
type Loop struct {
	Head    int
	Body    map[int]bool
	Latches []int
}

// Exits returns the (inBlock, outBlock) edges leaving the loop.
func (l *Loop) Exits(f *Func) [][2]int {
	var out [][2]int
	for b := range l.Body {
		for _, s := range f.Blocks[b].Succs() {
			if !l.Body[s] {
				out = append(out, [2]int{b, s})
			}
		}
	}
	return out
}

// NaturalLoops finds all natural loops (back edges t→h where h dominates t),
// merging loops that share a header. Results are ordered innermost-first by
// body size.
func (f *Func) NaturalLoops() []*Loop {
	idom := f.Idom()
	preds := f.Preds()
	byHead := map[int]*Loop{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if Dominates(idom, s, b.ID) {
				// back edge b -> s
				l := byHead[s]
				if l == nil {
					l = &Loop{Head: s, Body: map[int]bool{s: true}}
					byHead[s] = l
				}
				l.Latches = append(l.Latches, b.ID)
				// walk predecessors from the latch back to the header
				var stack []int
				if !l.Body[b.ID] {
					l.Body[b.ID] = true
					stack = append(stack, b.ID)
				}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range preds[n] {
						if !l.Body[p] {
							l.Body[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	var loops []*Loop
	for _, l := range byHead {
		loops = append(loops, l)
	}
	// innermost (smallest) first, deterministic order
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			li, lj := loops[i], loops[j]
			if len(lj.Body) < len(li.Body) || (len(lj.Body) == len(li.Body) && lj.Head < li.Head) {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	return loops
}

// RegSet is a dense bit set over virtual registers.
type RegSet []uint64

// NewRegSet returns a set that can hold registers [0, n).
func NewRegSet(n int) RegSet { return make(RegSet, (n+63)/64) }

// Has reports whether r is in the set.
func (s RegSet) Has(r Reg) bool {
	if r <= 0 {
		return false
	}
	return s[int(r)/64]&(1<<(uint(r)%64)) != 0
}

// Add inserts r; it reports whether the set changed.
func (s RegSet) Add(r Reg) bool {
	if r <= 0 {
		return false
	}
	w, b := int(r)/64, uint(r)%64
	if s[w]&(1<<b) != 0 {
		return false
	}
	s[w] |= 1 << b
	return true
}

// Remove deletes r from the set.
func (s RegSet) Remove(r Reg) {
	if r <= 0 {
		return
	}
	s[int(r)/64] &^= 1 << (uint(r) % 64)
}

// UnionWith adds all of t to s; it reports whether s changed.
func (s RegSet) UnionWith(t RegSet) bool {
	changed := false
	for i := range s {
		if i >= len(t) {
			break
		}
		old := s[i]
		s[i] |= t[i]
		if s[i] != old {
			changed = true
		}
	}
	return changed
}

// Clone returns a copy of the set.
func (s RegSet) Clone() RegSet {
	c := make(RegSet, len(s))
	copy(c, s)
	return c
}

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Liveness holds per-block live-in and live-out register sets.
type Liveness struct {
	In  []RegSet
	Out []RegSet
}

// ComputeLiveness runs the standard backward dataflow over the CFG.
func (f *Func) ComputeLiveness() *Liveness {
	n := len(f.Blocks)
	nr := f.NumRegs()
	lv := &Liveness{In: make([]RegSet, n), Out: make([]RegSet, n)}
	use := make([]RegSet, n)
	def := make([]RegSet, n)
	for i, b := range f.Blocks {
		use[i] = NewRegSet(nr)
		def[i] = NewRegSet(nr)
		lv.In[i] = NewRegSet(nr)
		lv.Out[i] = NewRegSet(nr)
		for j := range b.Ops {
			o := &b.Ops[j]
			for _, a := range o.Args {
				if !def[i].Has(a) {
					use[i].Add(a)
				}
			}
			if o.Dst != None {
				def[i].Add(o.Dst)
			}
		}
	}
	// iterate to fixpoint in reverse RPO for fast convergence
	rpo := f.RPO()
	for changed := true; changed; {
		changed = false
		for k := len(rpo) - 1; k >= 0; k-- {
			b := rpo[k]
			out := lv.Out[b]
			for _, s := range f.Blocks[b].Succs() {
				if out.UnionWith(lv.In[s]) {
					changed = true
				}
			}
			// in = use ∪ (out − def)
			in := out.Clone()
			for w := range in {
				in[w] &^= def[b][w]
				in[w] |= use[b][w]
			}
			if !equalSets(in, lv.In[b]) {
				lv.In[b] = in
				changed = true
			}
		}
	}
	return lv
}

func equalSets(a, b RegSet) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LiveOutAt computes the set of registers live immediately after op index j
// in block b, given block-level liveness. Used by the trace scheduler to
// decide whether a register written above a split is live on the off-trace
// edge.
func (f *Func) LiveOutAt(lv *Liveness, b, j int) RegSet {
	live := lv.Out[b].Clone()
	ops := f.Blocks[b].Ops
	for k := len(ops) - 1; k > j; k-- {
		o := &ops[k]
		if o.Dst != None {
			live.Remove(o.Dst)
		}
		for _, a := range o.Args {
			live.Add(a)
		}
	}
	return live
}
