package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRegSetProperties checks the bit-set algebra with testing/quick.
func TestRegSetProperties(t *testing.T) {
	add := func(regs []uint16) bool {
		s := NewRegSet(1 << 16)
		want := map[Reg]bool{}
		for _, r := range regs {
			rr := Reg(r)
			s.Add(rr)
			if rr > 0 {
				want[rr] = true
			}
		}
		if s.Count() != len(want) {
			return false
		}
		for r := range want {
			if !s.Has(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error(err)
	}

	unionMonotone := func(a, b []uint16) bool {
		s1 := NewRegSet(1 << 16)
		s2 := NewRegSet(1 << 16)
		for _, r := range a {
			s1.Add(Reg(r))
		}
		for _, r := range b {
			s2.Add(Reg(r))
		}
		before := s1.Count()
		s1.UnionWith(s2)
		if s1.Count() < before {
			return false
		}
		// union contains both
		for _, r := range a {
			if Reg(r) > 0 && !s1.Has(Reg(r)) {
				return false
			}
		}
		for _, r := range b {
			if Reg(r) > 0 && !s1.Has(Reg(r)) {
				return false
			}
		}
		// idempotent
		return !s1.UnionWith(s2)
	}
	if err := quick.Check(unionMonotone, nil); err != nil {
		t.Error(err)
	}
}

// randomCFG builds a structurally valid function with random branches.
func randomCFG(rng *rand.Rand, nBlocks int) *Func {
	f := NewFunc("r", I32)
	for i := 1; i < nBlocks; i++ {
		f.AddBlock()
	}
	c := f.NewReg(I32)
	f.Blocks[0].Ops = append(f.Blocks[0].Ops, Op{Kind: ConstI, Type: I32, Dst: c})
	for i, b := range f.Blocks {
		if i == 0 {
			b.Ops = append(b.Ops, Op{Kind: Br, T0: rng.Intn(nBlocks)})
			continue
		}
		switch rng.Intn(3) {
		case 0:
			b.Ops = append(b.Ops, Op{Kind: Ret, Args: []Reg{c}})
		case 1:
			b.Ops = append(b.Ops, Op{Kind: Br, T0: rng.Intn(nBlocks)})
		default:
			b.Ops = append(b.Ops, Op{Kind: CondBr, Args: []Reg{c},
				T0: rng.Intn(nBlocks), T1: rng.Intn(nBlocks)})
		}
	}
	return f
}

// TestDominatorProperties: on random CFGs, the entry dominates every
// reachable block, idom is a proper ancestor, and loop bodies contain their
// headers and latches.
func TestDominatorProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		f := randomCFG(rng, 2+rng.Intn(12))
		reach := f.Reachable()
		idom := f.Idom()
		for b := range f.Blocks {
			if !reach[b] {
				continue
			}
			if !Dominates(idom, 0, b) {
				t.Fatalf("trial %d: entry does not dominate reachable b%d", trial, b)
			}
			if b != 0 && idom[b] == b {
				t.Fatalf("trial %d: b%d is its own idom", trial, b)
			}
		}
		for _, l := range f.NaturalLoops() {
			if !l.Body[l.Head] {
				t.Fatalf("trial %d: loop body missing its header", trial)
			}
			for _, latch := range l.Latches {
				if !l.Body[latch] {
					t.Fatalf("trial %d: latch outside body", trial)
				}
				if !Dominates(idom, l.Head, latch) {
					t.Fatalf("trial %d: header does not dominate latch", trial)
				}
			}
			// every exit leaves from inside
			for _, e := range l.Exits(f) {
				if !l.Body[e[0]] || l.Body[e[1]] {
					t.Fatalf("trial %d: bad exit %v", trial, e)
				}
			}
		}
		// RemoveUnreachable keeps semantics of the reachable part
		n := 0
		for _, r := range reach {
			if r {
				n++
			}
		}
		f.RemoveUnreachable()
		if len(f.Blocks) != n {
			t.Fatalf("trial %d: RemoveUnreachable kept %d of %d", trial, len(f.Blocks), n)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: invalid after cleanup: %v", trial, err)
		}
	}
}

// TestLivenessProperties: a register is live-in wherever it is used before
// definition, and never live where it is not referenced downstream.
func TestLivenessProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		f := randomCFG(rng, 2+rng.Intn(8))
		lv := f.ComputeLiveness()
		// entry live-in must be empty except the shared const (defined
		// before use in block 0, so not live-in)
		if lv.In[0].Count() != 0 {
			t.Fatalf("trial %d: entry has live-ins", trial)
		}
		// live-out(b) ⊆ ∪ live-in(succ)
		for _, b := range f.Blocks {
			u := NewRegSet(f.NumRegs())
			for _, s := range b.Succs() {
				u.UnionWith(lv.In[s])
			}
			for w := range lv.Out[b.ID] {
				if lv.Out[b.ID][w]&^u[w] != 0 {
					t.Fatalf("trial %d: live-out exceeds successors' live-in", trial)
				}
			}
		}
	}
}
