package ir

// Clone returns a deep copy of the program. The backend mutates the IR it
// compiles (call-spill insertion, optimization), so drivers clone before
// compiling and keep the original as the reference-semantics artifact.
func (p *Program) Clone() *Program {
	out := &Program{}
	for _, g := range p.Globals {
		ng := *g
		ng.InitI = append([]int64(nil), g.InitI...)
		ng.InitF = append([]float64(nil), g.InitF...)
		out.Globals = append(out.Globals, &ng)
	}
	for _, f := range p.Funcs {
		out.Funcs = append(out.Funcs, f.Clone())
	}
	return out
}

// Clone returns a deep copy of the function.
func (f *Func) Clone() *Func {
	nf := &Func{
		Name:      f.Name,
		Params:    append([]Param(nil), f.Params...),
		Ret:       f.Ret,
		regType:   append([]Type(nil), f.regType...),
		FrameSize: f.FrameSize,
	}
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Ops: make([]Op, len(b.Ops))}
		for i := range b.Ops {
			nb.Ops[i] = b.Ops[i].Clone()
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	return nf
}
