package ir

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Profile records observed (or estimated) control-flow edge frequencies for
// each function: weight of the edge fromBlock→toBlock. The trace selector
// consumes profiles; the interpreter produces exact ones and package profile
// produces heuristic ones ("estimates of branch directions obtained
// automatically through heuristics or profiling", §4).
type Profile map[string]map[[2]int]float64

// Edge returns the weight of edge from→to in function name (0 if absent).
func (p Profile) Edge(name string, from, to int) float64 {
	if p == nil {
		return 0
	}
	return p[name][[2]int{from, to}]
}

// BlockWeight returns the total inbound weight of a block (entry blocks get
// the function's total entry weight).
func (p Profile) BlockWeight(f *Func, b int) float64 {
	if p == nil || p[f.Name] == nil {
		return 0
	}
	if b == 0 {
		// entry weight = sum of returns is unknowable; approximate by the
		// max of 1 and outbound weight of block 0
		var w float64
		for _, s := range f.Blocks[0].Succs() {
			w += p.Edge(f.Name, 0, s)
		}
		if w < 1 {
			w = 1
		}
		return w
	}
	var w float64
	for e, c := range p[f.Name] {
		if e[1] == b {
			w += c
		}
	}
	return w
}

// FunnyI32 is the "funny number" written by a failed speculative load (§7),
// chosen to be recognizable in dumps.
const FunnyI32 = int64(int32(-559038737)) // 0xDEADBEEF as i32

// FunnyF64 is the floating "funny number" (a quiet NaN propagates exactly as
// the paper describes for fast-mode exceptions).
var FunnyF64 = math.NaN()

// RunError describes an execution fault in the interpreter.
type RunError struct {
	Func string
	Msg  string
}

func (e *RunError) Error() string { return fmt.Sprintf("%s: %s", e.Func, e.Msg) }

// Interp executes a Program directly. It is the semantic ground truth: the
// VLIW simulator must produce identical output and exit values for every
// program at every optimization level and machine configuration.
type Interp struct {
	Prog *Program

	// MemSize is the size of the flat data memory in bytes (default 1 MiB).
	MemSize int64
	// StepLimit bounds executed ops (default 200M) to catch runaway loops.
	StepLimit int64
	// MaxDepth bounds call nesting (default 10000). The stack-overflow check
	// on sp alone cannot catch a zero-frame recursive function, which would
	// otherwise recurse the Go stack itself to death.
	MaxDepth int
	// Profile, when non-nil, accumulates edge counts during execution.
	Profile Profile
	// WatchStore, when non-nil, observes every store (address, raw value).
	WatchStore func(ea int64, val uint64)
	// OnOp, when non-nil, observes every executed op in dynamic order with
	// its function and block; timing models (the scalar and scoreboard
	// baselines) are built on this hook.
	OnOp func(f *Func, block int, o *Op)

	mem      []byte
	out      bytes.Buffer
	steps    int64
	sp       int64
	depth    int
	gaddr    map[string]int64
	maxFrame int64
}

// GlobalBase is the address of the first global; low memory is left unmapped
// so that null and small pointers fault, as on the real machine.
const GlobalBase = 0x1000

// LayoutGlobals assigns an address to every global, 8-byte aligned, starting
// at GlobalBase, and returns the map and one past the last used address.
// Both the interpreter and the linker use this so that addresses (and hence
// memory-bank behaviour) agree across executors.
func LayoutGlobals(p *Program) (map[string]int64, int64) {
	addr := map[string]int64{}
	next := int64(GlobalBase)
	for _, g := range p.Globals {
		addr[g.Name] = next
		next += (g.Size() + 7) &^ 7
	}
	return addr, next
}

// Run executes main and returns its exit value and captured output.
func (in *Interp) Run() (int32, string, error) {
	if in.MemSize == 0 {
		in.MemSize = 1 << 20
	}
	if in.StepLimit == 0 {
		in.StepLimit = 200_000_000
	}
	if in.MaxDepth == 0 {
		in.MaxDepth = 10_000
	}
	in.depth = 0
	in.mem = make([]byte, in.MemSize)
	in.out.Reset()
	in.steps = 0
	var top int64
	in.gaddr, top = LayoutGlobals(in.Prog)
	if top > in.MemSize {
		return 0, "", &RunError{"(layout)", "globals exceed memory"}
	}
	for _, g := range in.Prog.Globals {
		base := in.gaddr[g.Name]
		for i, v := range g.InitI {
			binary.LittleEndian.PutUint32(in.mem[base+int64(i)*4:], uint32(v))
		}
		for i, v := range g.InitF {
			binary.LittleEndian.PutUint64(in.mem[base+int64(i)*8:], math.Float64bits(v))
		}
	}
	in.sp = in.MemSize &^ 7
	m := in.Prog.Func("main")
	if m == nil {
		return 0, "", &RunError{"main", "not found"}
	}
	v, err := in.call(m, nil)
	if err != nil {
		return 0, in.out.String(), err
	}
	return int32(v), in.out.String(), nil
}

// Output returns the output captured so far.
func (in *Interp) Output() string { return in.out.String() }

func (in *Interp) call(f *Func, args []uint64) (uint64, error) {
	if len(args) != len(f.Params) {
		return 0, &RunError{f.Name, fmt.Sprintf("have %d args, want %d", len(args), len(f.Params))}
	}
	in.depth++
	if in.depth > in.MaxDepth {
		in.depth--
		return 0, &RunError{f.Name, "call depth limit exceeded"}
	}
	frame := (f.FrameSize + 7) &^ 7
	in.sp -= frame
	fp := in.sp
	if fp < GlobalBase {
		in.sp += frame
		in.depth--
		return 0, &RunError{f.Name, "stack overflow"}
	}
	defer func() { in.sp += frame; in.depth-- }()
	if frame > in.maxFrame {
		in.maxFrame = frame
	}

	regs := make([]uint64, f.NumRegs())
	for i, p := range f.Params {
		regs[p.Reg] = args[i]
	}
	prof := in.Profile[f.Name]
	if in.Profile != nil && prof == nil {
		prof = map[[2]int]float64{}
		in.Profile[f.Name] = prof
	}

	b := 0
	for {
		blk := f.Blocks[b]
		for i := range blk.Ops {
			o := &blk.Ops[i]
			in.steps++
			if in.steps > in.StepLimit {
				return 0, &RunError{f.Name, "step limit exceeded"}
			}
			if in.OnOp != nil {
				in.OnOp(f, b, o)
			}
			ri := func(k int) int32 { return int32(regs[o.Args[k]]) }
			rf := func(k int) float64 { return math.Float64frombits(regs[o.Args[k]]) }
			seti := func(v int32) { regs[o.Dst] = uint64(uint32(v)) }
			setf := func(v float64) { regs[o.Dst] = math.Float64bits(v) }
			setb := func(v bool) {
				if v {
					seti(1)
				} else {
					seti(0)
				}
			}
			switch o.Kind {
			case Nop:
			case ConstI:
				seti(int32(o.ImmI))
			case ConstF:
				setf(o.ImmF)
			case Mov:
				regs[o.Dst] = regs[o.Args[0]]
			case Add:
				seti(ri(0) + ri(1))
			case Sub:
				seti(ri(0) - ri(1))
			case Mul:
				seti(ri(0) * ri(1))
			case Div:
				d := ri(1)
				if d == 0 {
					return 0, &RunError{f.Name, fmt.Sprintf("integer divide by zero (line %d)", o.Line)}
				}
				seti(ri(0) / d)
			case Rem:
				d := ri(1)
				if d == 0 {
					return 0, &RunError{f.Name, fmt.Sprintf("integer remainder by zero (line %d)", o.Line)}
				}
				seti(ri(0) % d)
			case And:
				seti(ri(0) & ri(1))
			case Or:
				seti(ri(0) | ri(1))
			case Xor:
				seti(ri(0) ^ ri(1))
			case Shl:
				seti(ri(0) << (uint32(ri(1)) & 31))
			case Shr:
				seti(int32(uint32(ri(0)) >> (uint32(ri(1)) & 31)))
			case Sra:
				seti(ri(0) >> (uint32(ri(1)) & 31))
			case Neg:
				seti(-ri(0))
			case Not:
				seti(^ri(0))
			case CmpEQ:
				setb(ri(0) == ri(1))
			case CmpNE:
				setb(ri(0) != ri(1))
			case CmpLT:
				setb(ri(0) < ri(1))
			case CmpLE:
				setb(ri(0) <= ri(1))
			case CmpGT:
				setb(ri(0) > ri(1))
			case CmpGE:
				setb(ri(0) >= ri(1))
			case FAdd:
				setf(rf(0) + rf(1))
			case FSub:
				setf(rf(0) - rf(1))
			case FMul:
				setf(rf(0) * rf(1))
			case FDiv:
				setf(rf(0) / rf(1)) // IEEE: ±Inf/NaN, "fast mode" semantics (§7)
			case FNeg:
				setf(-rf(0))
			case FCmpEQ:
				setb(rf(0) == rf(1))
			case FCmpNE:
				setb(rf(0) != rf(1))
			case FCmpLT:
				setb(rf(0) < rf(1))
			case FCmpLE:
				setb(rf(0) <= rf(1))
			case FCmpGT:
				setb(rf(0) > rf(1))
			case FCmpGE:
				setb(rf(0) >= rf(1))
			case ItoF:
				setf(float64(ri(0)))
			case FtoI:
				v := rf(0)
				if math.IsNaN(v) || v > math.MaxInt32 || v < math.MinInt32 {
					seti(int32(FunnyI32))
				} else {
					seti(int32(v))
				}
			case Select:
				if ri(0) != 0 {
					regs[o.Dst] = regs[o.Args[1]]
				} else {
					regs[o.Dst] = regs[o.Args[2]]
				}
			case Load, LoadSpec:
				ea := int64(ri(0)) + o.ImmI
				sz := o.Type.Size()
				if ea < GlobalBase || ea+sz > in.MemSize {
					if o.Kind == LoadSpec {
						// §7: no trap; target gets a funny number
						if o.Type == I32 {
							seti(int32(FunnyI32))
						} else {
							setf(FunnyF64)
						}
						break
					}
					return 0, &RunError{f.Name, fmt.Sprintf("bus error: load %#x (line %d)", ea, o.Line)}
				}
				if o.Type == I32 {
					seti(int32(binary.LittleEndian.Uint32(in.mem[ea:])))
				} else {
					setf(math.Float64frombits(binary.LittleEndian.Uint64(in.mem[ea:])))
				}
			case Store:
				ea := int64(ri(0)) + o.ImmI
				sz := o.Type.Size()
				if ea < GlobalBase || ea+sz > in.MemSize {
					return 0, &RunError{f.Name, fmt.Sprintf("bus error: store %#x (line %d)", ea, o.Line)}
				}
				if o.Type == I32 {
					binary.LittleEndian.PutUint32(in.mem[ea:], uint32(ri(1)))
					if in.WatchStore != nil {
						in.WatchStore(ea, uint64(uint32(ri(1))))
					}
				} else {
					binary.LittleEndian.PutUint64(in.mem[ea:], math.Float64bits(rf(1)))
					if in.WatchStore != nil {
						in.WatchStore(ea, math.Float64bits(rf(1)))
					}
				}
			case GAddr:
				a, ok := in.gaddr[o.Sym]
				if !ok {
					return 0, &RunError{f.Name, "unknown global " + o.Sym}
				}
				seti(int32(a))
			case FrAddr:
				seti(int32(fp + o.ImmI))
			case Call:
				if IsBuiltin(o.Sym) {
					in.builtin(o.Sym, regs, o.Args)
					break
				}
				callee := in.Prog.Func(o.Sym)
				if callee == nil {
					return 0, &RunError{f.Name, "unknown function " + o.Sym}
				}
				vals := make([]uint64, len(o.Args))
				for k, a := range o.Args {
					vals[k] = regs[a]
				}
				rv, err := in.call(callee, vals)
				if err != nil {
					return 0, err
				}
				if o.Dst != None {
					regs[o.Dst] = rv
				}
			case Ret:
				if len(o.Args) == 1 {
					return regs[o.Args[0]], nil
				}
				return 0, nil
			case Br:
				if prof != nil {
					prof[[2]int{b, o.T0}]++
				}
				b = o.T0
			case CondBr:
				t := o.T1
				if ri(0) != 0 {
					t = o.T0
				}
				if prof != nil {
					prof[[2]int{b, t}]++
				}
				b = t
			default:
				return 0, &RunError{f.Name, "bad op " + o.Kind.String()}
			}
			if o.Kind.IsTerminator() {
				break
			}
		}
	}
}

func (in *Interp) builtin(name string, regs []uint64, args []Reg) {
	switch name {
	case "print_i":
		fmt.Fprintf(&in.out, "%d\n", int32(regs[args[0]]))
	case "print_f":
		fmt.Fprintf(&in.out, "%g\n", math.Float64frombits(regs[args[0]]))
	}
}

// Steps returns the number of ops executed by the last Run. This is the
// dynamic operation count used as the work measure in speedup experiments.
func (in *Interp) Steps() int64 { return in.steps }
