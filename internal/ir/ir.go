// Package ir defines the compiler's intermediate representation: typed
// three-address operations over virtual registers, grouped into basic blocks
// that form a control-flow graph. The trace scheduler consumes this IR; the
// reference interpreter executes it directly and serves as ground truth for
// differential testing against the VLIW simulator.
package ir

import (
	"fmt"
	"strings"
)

// Type is the element type of a register or memory reference. The TRACE is a
// 32-bit-integer / 64-bit-float machine (§6.1, §6.2 of the paper), so the IR
// carries exactly those two value types.
type Type uint8

const (
	Void Type = iota
	I32       // 32-bit two's-complement integer
	F64       // IEEE 754 double
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I32:
		return "i32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Size returns the size in bytes of a value of this type in memory.
func (t Type) Size() int64 {
	switch t {
	case I32:
		return 4
	case F64:
		return 8
	}
	return 0
}

// Reg names a virtual register. Register 0 ("none") is never defined or used;
// the lowering pass allocates registers from 1 upward. Virtual registers are
// unbounded; the trace scheduler's bank allocator maps them onto the
// machine's physical I/F/store/branch banks.
type Reg int32

// None is the zero Reg, used where an operand or destination is absent.
const None Reg = 0

func (r Reg) String() string {
	if r == None {
		return "_"
	}
	return fmt.Sprintf("v%d", int32(r))
}

// OpKind enumerates IR operations. The set mirrors the TRACE integer and
// floating repertoires (§6.1, §6.2): three-address arithmetic, compare
// predicates that write registers (no condition codes), SELECT (the C "?"
// operator without branching), explicit loads/stores, and the special
// non-trapping speculative load of §7.
type OpKind uint8

const (
	Nop OpKind = iota

	// Constants and moves.
	ConstI // Dst = ImmI
	ConstF // Dst = ImmF
	Mov    // Dst = Args[0], type Type

	// Integer arithmetic and logic (i32).
	Add
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl // shift left, Args[1] amount
	Shr // logical shift right
	Sra // arithmetic shift right
	Neg
	Not

	// Integer compare predicates: Dst(i32) = Args[0] ⊕ Args[1] ? 1 : 0.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE

	// Floating arithmetic (f64).
	FAdd
	FSub
	FMul
	FDiv
	FNeg

	// Floating compare predicates (i32 result).
	FCmpEQ
	FCmpNE
	FCmpLT
	FCmpLE
	FCmpGT
	FCmpGE

	// Conversions.
	ItoF // Dst(f64) = float(Args[0])
	FtoI // Dst(i32) = trunc(Args[0])

	// Select: Dst = Args[0] != 0 ? Args[1] : Args[2]; element type in Type.
	Select

	// Memory. Effective address = Args[0] + ImmI (byte address).
	Load     // Dst(Type) = mem[ea]
	LoadSpec // speculative, non-trapping load (§7): invalid address yields a "funny number" instead of a fault
	Store    // mem[ea] = Args[1] (element type in Type)

	// Address formation.
	GAddr  // Dst(i32) = address of global Sym
	FrAddr // Dst(i32) = frame pointer + ImmI

	// Calls. Dst optional; callee named by Sym; Args passed in order.
	Call

	// Terminators. Every block ends with exactly one of these.
	Ret    // return Args[0] if present
	Br     // unconditional jump to T0
	CondBr // if Args[0] != 0 goto T0 else T1
)

var opNames = [...]string{
	Nop: "nop", ConstI: "consti", ConstF: "constf", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr", Sra: "sra",
	Neg: "neg", Not: "not",
	CmpEQ: "cmpeq", CmpNE: "cmpne", CmpLT: "cmplt", CmpLE: "cmple",
	CmpGT: "cmpgt", CmpGE: "cmpge",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FNeg: "fneg",
	FCmpEQ: "fcmpeq", FCmpNE: "fcmpne", FCmpLT: "fcmplt", FCmpLE: "fcmple",
	FCmpGT: "fcmpgt", FCmpGE: "fcmpge",
	ItoF: "itof", FtoI: "ftoi", Select: "select",
	Load: "load", LoadSpec: "loadspec", Store: "store",
	GAddr: "gaddr", FrAddr: "fraddr",
	Call: "call", Ret: "ret", Br: "br", CondBr: "condbr",
}

func (k OpKind) String() string {
	if int(k) < len(opNames) && opNames[k] != "" {
		return opNames[k]
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// IsTerminator reports whether the op ends a basic block.
func (k OpKind) IsTerminator() bool {
	return k == Ret || k == Br || k == CondBr
}

// IsCompare reports whether the op is an integer or floating compare
// predicate (result is a 0/1 i32 that the TRACE would hold in a branch bank).
func (k OpKind) IsCompare() bool {
	return (k >= CmpEQ && k <= CmpGE) || (k >= FCmpEQ && k <= FCmpGE)
}

// IsFloat reports whether the op executes on a floating functional unit.
func (k OpKind) IsFloat() bool {
	return (k >= FAdd && k <= FNeg) || (k >= FCmpEQ && k <= FCmpGE) || k == ItoF || k == FtoI
}

// HasSideEffect reports whether the op cannot be removed even if its result
// is dead.
func (k OpKind) HasSideEffect() bool {
	switch k {
	case Store, Call, Ret, Br, CondBr:
		return true
	}
	return false
}

// Op is a single IR operation.
type Op struct {
	Kind OpKind
	Type Type    // element/result type where relevant
	Dst  Reg     // destination, None if the op produces no value
	Args []Reg   // operands
	ImmI int64   // integer immediate / address offset
	ImmF float64 // float immediate
	Sym  string  // global or callee name
	T0   int     // branch target (block ID); CondBr true target
	T1   int     // CondBr false target
	Line int     // source line, 0 if unknown
}

// Clone returns a deep copy of the op (Args slice is copied).
func (o *Op) Clone() Op {
	c := *o
	c.Args = append([]Reg(nil), o.Args...)
	return c
}

func (o *Op) String() string {
	var b strings.Builder
	if o.Dst != None {
		fmt.Fprintf(&b, "%s = ", o.Dst)
	}
	b.WriteString(o.Kind.String())
	if o.Type != Void {
		fmt.Fprintf(&b, ".%s", o.Type)
	}
	switch o.Kind {
	case ConstI:
		fmt.Fprintf(&b, " %d", o.ImmI)
	case ConstF:
		fmt.Fprintf(&b, " %g", o.ImmF)
	case GAddr:
		fmt.Fprintf(&b, " @%s", o.Sym)
	case FrAddr:
		fmt.Fprintf(&b, " fp+%d", o.ImmI)
	case Load, LoadSpec:
		fmt.Fprintf(&b, " [%s+%d]", o.Args[0], o.ImmI)
	case Store:
		fmt.Fprintf(&b, " [%s+%d], %s", o.Args[0], o.ImmI, o.Args[1])
	case Call:
		fmt.Fprintf(&b, " @%s(", o.Sym)
		for i, a := range o.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")")
	case Br:
		fmt.Fprintf(&b, " b%d", o.T0)
	case CondBr:
		fmt.Fprintf(&b, " %s, b%d, b%d", o.Args[0], o.T0, o.T1)
	default:
		for i, a := range o.Args {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(" " + a.String())
		}
	}
	return b.String()
}

// Block is a basic block: a maximal straight-line op sequence ending in a
// terminator.
type Block struct {
	ID  int
	Ops []Op
}

// Term returns the block's terminator op, or nil if the block is malformed.
func (b *Block) Term() *Op {
	if len(b.Ops) == 0 {
		return nil
	}
	t := &b.Ops[len(b.Ops)-1]
	if !t.Kind.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the IDs of the block's successors in CFG order.
func (b *Block) Succs() []int {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Kind {
	case Br:
		return []int{t.T0}
	case CondBr:
		return []int{t.T0, t.T1}
	}
	return nil
}

// Param describes a function parameter: the virtual register it arrives in
// and its type.
type Param struct {
	Reg  Reg
	Type Type
}

// Func is a single function: a CFG of blocks plus register metadata.
// Blocks[i].ID == i always holds (use RemoveBlock/renumber helpers to keep
// the invariant when editing).
type Func struct {
	Name      string
	Params    []Param
	Ret       Type
	Blocks    []*Block
	regType   []Type // indexed by Reg; regType[0] unused
	FrameSize int64  // bytes of stack frame (locals, arrays, spills)
}

// NewFunc returns an empty function with an entry block.
func NewFunc(name string, ret Type) *Func {
	f := &Func{Name: name, Ret: ret, regType: make([]Type, 1)}
	f.AddBlock()
	return f
}

// NewReg allocates a fresh virtual register of type t.
func (f *Func) NewReg(t Type) Reg {
	f.regType = append(f.regType, t)
	return Reg(len(f.regType) - 1)
}

// RegType returns the type of virtual register r.
func (f *Func) RegType(r Reg) Type {
	if r <= 0 || int(r) >= len(f.regType) {
		return Void
	}
	return f.regType[r]
}

// NumRegs returns one past the highest allocated virtual register.
func (f *Func) NumRegs() int { return len(f.regType) }

// AddBlock appends a new empty block and returns it.
func (f *Func) AddBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Preds computes the predecessor lists for all blocks.
func (f *Func) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p.Reg, p.Type)
	}
	fmt.Fprintf(&b, ") %s  // frame=%d\n", f.Ret, f.FrameSize)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:\n", blk.ID)
		for i := range blk.Ops {
			fmt.Fprintf(&b, "\t%s\n", blk.Ops[i].String())
		}
	}
	return b.String()
}

// Global is a statically allocated array or scalar. Init data, if present,
// must not exceed Size bytes.
type Global struct {
	Name  string
	Elem  Type
	Count int64 // number of elements
	InitI []int64
	InitF []float64
}

// Size returns the global's size in bytes.
func (g *Global) Size() int64 { return g.Elem.Size() * g.Count }

// Program is a whole compilation unit.
type Program struct {
	Funcs   []*Func
	Globals []*Global
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (p *Program) Global(name string) *Global {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddFunc appends f to the program.
func (p *Program) AddFunc(f *Func) { p.Funcs = append(p.Funcs, f) }

func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "global %s [%d]%s\n", g.Name, g.Count, g.Elem)
	}
	for _, f := range p.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// Builtins are callees handled by the runtime rather than compiled code:
// print_i prints an i32 and newline; print_f prints an f64 and newline.
var Builtins = map[string]struct {
	Params []Type
	Ret    Type
}{
	"print_i": {Params: []Type{I32}, Ret: Void},
	"print_f": {Params: []Type{F64}, Ret: Void},
}

// IsBuiltin reports whether name is a runtime builtin.
func IsBuiltin(name string) bool {
	_, ok := Builtins[name]
	return ok
}
