package ir

import (
	"strings"
	"testing"
)

// buildCountdown builds:
//
//	func main() int { s := 0; for i := 10; i > 0; i-- { s += i }; print_i(s); return s }
func buildCountdown(t *testing.T) *Program {
	f := NewFunc("main", I32)
	b := NewBuilder(f)
	entry := f.Entry()
	head := b.NewBlock()
	body := b.NewBlock()
	exit := b.NewBlock()

	b.SetBlock(entry)
	s0 := b.ConstI(0)
	i0 := b.ConstI(10)
	// loop-carried values in fixed registers (no SSA: re-assign same regs)
	s := f.NewReg(I32)
	i := f.NewReg(I32)
	b.Emit(Op{Kind: Mov, Type: I32, Dst: s, Args: []Reg{s0}})
	b.Emit(Op{Kind: Mov, Type: I32, Dst: i, Args: []Reg{i0}})
	b.Br(head)

	b.SetBlock(head)
	zero := b.ConstI(0)
	c := b.Bin(CmpGT, I32, i, zero)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	b.Emit(Op{Kind: Add, Type: I32, Dst: s, Args: []Reg{s, i}})
	one := b.ConstI(1)
	b.Emit(Op{Kind: Sub, Type: I32, Dst: i, Args: []Reg{i, one}})
	b.Br(head)

	b.SetBlock(exit)
	b.Call("print_i", Void, s)
	b.Ret(s)

	p := &Program{Funcs: []*Func{f}}
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p
}

func TestInterpCountdown(t *testing.T) {
	p := buildCountdown(t)
	in := &Interp{Prog: p}
	v, out, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v != 55 {
		t.Errorf("exit = %d, want 55", v)
	}
	if out != "55\n" {
		t.Errorf("out = %q, want %q", out, "55\n")
	}
}

func TestInterpProfile(t *testing.T) {
	p := buildCountdown(t)
	prof := Profile{}
	in := &Interp{Prog: p, Profile: prof}
	if _, _, err := in.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	m := prof["main"]
	if m[[2]int{1, 2}] != 10 { // head -> body taken 10 times
		t.Errorf("head->body = %v, want 10", m[[2]int{1, 2}])
	}
	if m[[2]int{1, 3}] != 1 { // head -> exit once
		t.Errorf("head->exit = %v, want 1", m[[2]int{1, 3}])
	}
	if w := prof.BlockWeight(p.Func("main"), 2); w != 10 {
		t.Errorf("BlockWeight(body) = %v, want 10", w)
	}
}

func TestValidateCatchesBadIR(t *testing.T) {
	f := NewFunc("main", I32)
	b := NewBuilder(f)
	v := b.ConstI(1)
	b.Ret(v)
	p := &Program{Funcs: []*Func{f}}
	if err := p.Validate(); err != nil {
		t.Fatalf("good program rejected: %v", err)
	}

	// terminator in the middle
	f2 := NewFunc("main", I32)
	b2 := NewBuilder(f2)
	v2 := b2.ConstI(1)
	b2.Ret(v2)
	b2.Emit(Op{Kind: Nop})
	if err := (&Program{Funcs: []*Func{f2}}).Validate(); err == nil {
		t.Error("mid-block terminator not rejected")
	}

	// type mismatch
	f3 := NewFunc("main", I32)
	b3 := NewBuilder(f3)
	x := b3.ConstF(1.5)
	r := f3.NewReg(I32)
	f3.Entry().Ops = append(f3.Entry().Ops, Op{Kind: Add, Type: I32, Dst: r, Args: []Reg{x, x}})
	b3.Ret(r)
	if err := (&Program{Funcs: []*Func{f3}}).Validate(); err == nil {
		t.Error("f64 operand to add not rejected")
	}

	// branch target out of range
	f4 := NewFunc("main", I32)
	f4.Entry().Ops = append(f4.Entry().Ops, Op{Kind: Br, T0: 99})
	if err := f4.Validate(); err == nil {
		t.Error("out-of-range branch not rejected")
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	p := buildCountdown(t)
	f := p.Func("main")
	idom := f.Idom()
	// entry(0) dominates all; head(1) dominates body(2) and exit(3)
	if idom[1] != 0 || idom[2] != 1 || idom[3] != 1 {
		t.Errorf("idom = %v", idom)
	}
	if !Dominates(idom, 0, 3) || !Dominates(idom, 1, 2) || Dominates(idom, 2, 3) {
		t.Error("Dominates answers wrong")
	}
	loops := f.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Head != 1 || !l.Body[1] || !l.Body[2] || l.Body[3] {
		t.Errorf("loop = head %d body %v", l.Head, l.Body)
	}
	exits := l.Exits(p.Func("main"))
	if len(exits) != 1 || exits[0] != [2]int{1, 3} {
		t.Errorf("exits = %v", exits)
	}
}

func TestLiveness(t *testing.T) {
	p := buildCountdown(t)
	f := p.Func("main")
	lv := f.ComputeLiveness()
	// s and i (the two Mov destinations in entry) are live into head
	var s, i Reg
	for _, op := range f.Entry().Ops {
		if op.Kind == Mov {
			if s == None {
				s = op.Dst
			} else {
				i = op.Dst
			}
		}
	}
	if !lv.In[1].Has(s) || !lv.In[1].Has(i) {
		t.Errorf("s,i not live into loop head: in=%v", lv.In[1])
	}
	// i is dead out of the exit block; s is dead after ret
	if lv.Out[3].Has(s) || lv.Out[3].Has(i) {
		t.Error("values live out of exit block")
	}
}

func TestLiveOutAt(t *testing.T) {
	p := buildCountdown(t)
	f := p.Func("main")
	lv := f.ComputeLiveness()
	// after the CondBr in head (index = last), live-out equals union of succ ins
	head := f.Blocks[1]
	live := f.LiveOutAt(lv, 1, len(head.Ops)-1)
	if !equalSets(live, lv.Out[1]) {
		t.Error("LiveOutAt at terminator != block live-out")
	}
}

func TestRegSet(t *testing.T) {
	s := NewRegSet(200)
	if s.Has(5) {
		t.Error("empty set has 5")
	}
	if !s.Add(5) || s.Add(5) {
		t.Error("Add change reporting wrong")
	}
	if !s.Has(5) || s.Has(6) {
		t.Error("membership wrong")
	}
	s.Add(130)
	if s.Count() != 2 {
		t.Errorf("count = %d, want 2", s.Count())
	}
	s.Remove(5)
	if s.Has(5) || s.Count() != 1 {
		t.Error("remove failed")
	}
	t2 := NewRegSet(200)
	t2.Add(7)
	if !t2.UnionWith(s) || !t2.Has(130) {
		t.Error("union failed")
	}
	if t2.UnionWith(s) {
		t.Error("idempotent union reported change")
	}
	if s.Add(None) || s.Has(None) {
		t.Error("None must never join a set")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	f := NewFunc("main", I32)
	b := NewBuilder(f)
	dead := b.NewBlock()
	tail := b.NewBlock()
	b.SetBlock(f.Entry())
	b.Br(tail)
	b.SetBlock(dead)
	b.Br(tail)
	b.SetBlock(tail)
	v := b.ConstI(7)
	b.Ret(v)
	if n := f.RemoveUnreachable(); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("validate after removal: %v", err)
	}
	in := &Interp{Prog: &Program{Funcs: []*Func{f}}}
	if v, _, err := in.Run(); err != nil || v != 7 {
		t.Fatalf("run = %d, %v", v, err)
	}
}

func TestSpeculativeLoadFunnyNumber(t *testing.T) {
	f := NewFunc("main", I32)
	b := NewBuilder(f)
	addr := b.ConstI(0) // null: below GlobalBase
	r := f.NewReg(I32)
	b.Emit(Op{Kind: LoadSpec, Type: I32, Dst: r, Args: []Reg{addr}})
	b.Ret(r)
	in := &Interp{Prog: &Program{Funcs: []*Func{f}}}
	v, _, err := in.Run()
	if err != nil {
		t.Fatalf("speculative load trapped: %v", err)
	}
	if int64(v) != FunnyI32 {
		t.Errorf("got %d, want funny number %d", v, FunnyI32)
	}

	// a plain Load at the same address must fault
	f2 := NewFunc("main", I32)
	b2 := NewBuilder(f2)
	addr2 := b2.ConstI(0)
	r2 := f2.NewReg(I32)
	b2.Emit(Op{Kind: Load, Type: I32, Dst: r2, Args: []Reg{addr2}})
	b2.Ret(r2)
	in2 := &Interp{Prog: &Program{Funcs: []*Func{f2}}}
	if _, _, err := in2.Run(); err == nil {
		t.Error("plain load of null did not bus-error")
	} else if !strings.Contains(err.Error(), "bus error") {
		t.Errorf("unexpected error %v", err)
	}
}

func TestGlobalsAndMemory(t *testing.T) {
	g := &Global{Name: "a", Elem: F64, Count: 4, InitF: []float64{1, 2, 3, 4}}
	f := NewFunc("main", I32)
	b := NewBuilder(f)
	base := b.GAddr("a")
	x := b.Load(F64, base, 8)  // a[1] == 2
	y := b.Load(F64, base, 24) // a[3] == 4
	s := b.Bin(FMul, F64, x, y)
	b.Store(F64, base, 0, s) // a[0] = 8
	z := b.Load(F64, base, 0)
	b.Call("print_f", Void, z)
	r := b.ConstI(0)
	b.Ret(r)
	p := &Program{Funcs: []*Func{f}, Globals: []*Global{g}}
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	in := &Interp{Prog: p}
	_, out, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out != "8\n" {
		t.Errorf("out = %q, want 8", out)
	}
}

func TestCallsAndFrames(t *testing.T) {
	// func add3(a int, b int, c int) int { return a+b+c } with a frame slot
	callee := NewFunc("add3", I32)
	a := callee.NewReg(I32)
	bb := callee.NewReg(I32)
	c := callee.NewReg(I32)
	callee.Params = []Param{{a, I32}, {bb, I32}, {c, I32}}
	callee.FrameSize = 16
	cb := NewBuilder(callee)
	slot := cb.FrAddr(8)
	cb.Store(I32, slot, 0, a)
	t1 := cb.Bin(Add, I32, bb, c)
	back := cb.Load(I32, slot, 0)
	t2 := cb.Bin(Add, I32, t1, back)
	cb.Ret(t2)

	f := NewFunc("main", I32)
	b := NewBuilder(f)
	x := b.ConstI(10)
	y := b.ConstI(20)
	z := b.ConstI(30)
	r := b.Call("add3", I32, x, y, z)
	b.Ret(r)
	p := &Program{Funcs: []*Func{f, callee}}
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	in := &Interp{Prog: p}
	v, _, err := in.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v != 60 {
		t.Errorf("got %d, want 60", v)
	}
}

func TestStepLimit(t *testing.T) {
	f := NewFunc("main", I32)
	b := NewBuilder(f)
	b.Br(f.Entry()) // infinite loop
	in := &Interp{Prog: &Program{Funcs: []*Func{f}}, StepLimit: 1000}
	if _, _, err := in.Run(); err == nil {
		t.Error("infinite loop not caught by step limit")
	}
}

func TestOpString(t *testing.T) {
	f := NewFunc("g", Void)
	b := NewBuilder(f)
	x := b.ConstI(42)
	y := b.Load(I32, x, 4)
	b.Store(I32, x, 8, y)
	b.Ret(None)
	s := f.String()
	for _, want := range []string{"consti", "[v1+4]", "store", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("dump missing %q:\n%s", want, s)
		}
	}
}

func TestRPOAndPreds(t *testing.T) {
	p := buildCountdown(t)
	f := p.Func("main")
	rpo := f.RPO()
	if rpo[0] != 0 {
		t.Errorf("rpo starts at %d", rpo[0])
	}
	pos := map[int]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	if pos[0] > pos[1] || pos[1] > pos[3] {
		t.Errorf("rpo order wrong: %v", rpo)
	}
	preds := f.Preds()
	if len(preds[1]) != 2 { // entry and body
		t.Errorf("head preds = %v", preds[1])
	}
}

// TestInterpCallDepthLimit: a zero-frame recursive function never moves sp,
// so the sp-based stack-overflow check can't fire; without the depth guard
// the interpreter would recurse the host stack to death.
func TestInterpCallDepthLimit(t *testing.T) {
	p := &Program{}
	f := NewFunc("spin", I32)
	b := NewBuilder(f)
	b.Ret(b.Call("spin", I32))
	m := NewFunc("main", I32)
	bm := NewBuilder(m)
	bm.Ret(bm.Call("spin", I32))
	p.Funcs = []*Func{m, f}

	in := &Interp{Prog: p, MaxDepth: 500}
	_, _, err := in.Run()
	if err == nil {
		t.Fatal("unbounded zero-frame recursion did not error")
	}
	if !strings.Contains(err.Error(), "call depth limit") {
		t.Errorf("wrong diagnostic: %v", err)
	}
}
