package serve

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// snapMeta is everything needed to resume a paused run besides the snapshot
// itself. The source and options re-derive the artifact through the normal
// content-addressed compile path if the cache evicted it — the compiler is
// deterministic, so the rebuilt image carries the same fingerprint the
// snapshot was bound to and vliw.Context.Restore accepts it.
type snapMeta struct {
	ArtKey  string  `json:"art_key"`
	Source  string  `json:"source"`
	Options Options `json:"options"`
	Beats   int64   `json:"beats"`
}

type snapEntry struct {
	tok  string
	meta snapMeta
	snap []byte
	cost int64
}

// snapshotStore holds resume snapshots for deadline-paused runs: a
// byte-budgeted in-RAM LRU, optionally backed by a spill directory. Tokens
// are content addresses (SHA-256 of the snapshot bytes), so a stored file is
// self-validating: the boot-time recovery scan and every disk read recompute
// the hash and discard anything corrupt — which is what makes the disk tier
// safe to trust after a SIGKILL mid-write (the atomic write+rename below
// means a crash leaves either the complete file or none).
type snapshotStore struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // of *snapEntry, front = most recent
	byTok  map[string]*list.Element
	dir    string // "" = RAM only
	m      *Metrics
}

// newSnapshotStore builds the store; a negative budget disables
// checkpointing entirely and returns nil. With a spill directory it runs the
// crash-recovery scan: leftover temp files are dropped, valid snapshots are
// re-indexed (so a restarted server keeps honoring tokens it issued before
// being killed), and corrupt ones are deleted.
func newSnapshotStore(budget int64, dir string, m *Metrics) *snapshotStore {
	if budget < 0 {
		return nil
	}
	s := &snapshotStore{
		budget: budget,
		lru:    list.New(),
		byTok:  map[string]*list.Element{},
		dir:    dir,
		m:      m,
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			s.dir = "" // unusable spill dir degrades to RAM-only
		} else {
			s.recoverDisk()
		}
	}
	return s
}

// put stores a snapshot and returns its resume token. The disk copy (when
// spilling is on) is written before RAM eviction runs, so even a snapshot
// evicted immediately by the byte budget stays resumable from disk.
func (s *snapshotStore) put(meta snapMeta, snap []byte) string {
	sum := sha256.Sum256(snap)
	tok := hex.EncodeToString(sum[:])
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byTok[tok]; ok {
		s.lru.MoveToFront(el)
		return tok
	}
	if s.dir != "" {
		s.writeDisk(tok, meta, snap)
	}
	s.insert(&snapEntry{tok: tok, meta: meta, snap: snap,
		cost: int64(len(snap)) + int64(len(meta.Source)) + 256})
	s.m.SnapshotsStored.Add(1)
	return tok
}

// insert adds the entry and evicts past the budget (RAM only — disk copies
// survive eviction and back the token until remove). Caller holds the lock.
func (s *snapshotStore) insert(e *snapEntry) {
	s.byTok[e.tok] = s.lru.PushFront(e)
	s.used += e.cost
	for s.used > s.budget && s.lru.Len() > 1 {
		oldest := s.lru.Back()
		ent := oldest.Value.(*snapEntry)
		s.lru.Remove(oldest)
		delete(s.byTok, ent.tok)
		s.used -= ent.cost
		s.m.SnapshotEvictions.Add(1)
	}
	s.m.SnapshotBytes.Set(s.used)
	s.m.SnapshotEntries.Set(int64(s.lru.Len()))
}

// get resolves a token: RAM first, then the spill directory. A disk hit is
// validated (hash over the snapshot bytes must equal the token) before use.
func (s *snapshotStore) get(tok string) (snapMeta, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byTok[tok]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*snapEntry)
		return e.meta, e.snap, true
	}
	if s.dir == "" {
		return snapMeta{}, nil, false
	}
	meta, snap, err := readSnapFile(s.snapPath(tok), tok)
	if err != nil {
		return snapMeta{}, nil, false
	}
	return meta, snap, true
}

// remove retires a token after its run completes, freeing RAM and disk.
func (s *snapshotStore) remove(tok string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byTok[tok]; ok {
		e := el.Value.(*snapEntry)
		s.lru.Remove(el)
		delete(s.byTok, tok)
		s.used -= e.cost
		s.m.SnapshotBytes.Set(s.used)
		s.m.SnapshotEntries.Set(int64(s.lru.Len()))
	}
	if s.dir != "" {
		os.Remove(s.snapPath(tok))
	}
}

func (s *snapshotStore) snapPath(tok string) string {
	return filepath.Join(s.dir, tok+".snap")
}

// writeDisk spills one snapshot: u32 meta length, meta JSON, snapshot bytes,
// written to a temp file and renamed into place so a crash at any point
// leaves no partially-written .snap file. Caller holds the lock.
func (s *snapshotStore) writeDisk(tok string, meta snapMeta, snap []byte) {
	mj, err := json.Marshal(meta)
	if err != nil {
		return
	}
	buf := make([]byte, 4, 4+len(mj)+len(snap))
	binary.LittleEndian.PutUint32(buf, uint32(len(mj)))
	buf = append(buf, mj...)
	buf = append(buf, snap...)
	tmp := s.snapPath(tok) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, s.snapPath(tok)); err != nil {
		os.Remove(tmp)
	}
}

// readSnapFile loads and validates one spilled snapshot; tok is the expected
// content address.
func readSnapFile(path, tok string) (snapMeta, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapMeta{}, nil, err
	}
	if len(data) < 4 {
		return snapMeta{}, nil, errors.New("truncated snapshot file")
	}
	ml := binary.LittleEndian.Uint32(data)
	if int64(ml) > int64(len(data))-4 {
		return snapMeta{}, nil, errors.New("truncated snapshot file")
	}
	var meta snapMeta
	if err := json.Unmarshal(data[4:4+ml], &meta); err != nil {
		return snapMeta{}, nil, fmt.Errorf("snapshot metadata: %w", err)
	}
	snap := data[4+ml:]
	sum := sha256.Sum256(snap)
	if hex.EncodeToString(sum[:]) != tok {
		return snapMeta{}, nil, errors.New("snapshot bytes do not match their token")
	}
	return meta, snap, nil
}

// recoverDisk is the boot-time crash-recovery scan over the spill directory.
func (s *snapshotStore) recoverDisk() {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			// An interrupted spill; the rename never happened.
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		tok, ok := strings.CutSuffix(name, ".snap")
		if !ok || len(tok) != 64 {
			continue
		}
		meta, snap, err := readSnapFile(filepath.Join(s.dir, name), tok)
		if err != nil {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		s.insert(&snapEntry{tok: tok, meta: meta, snap: snap,
			cost: int64(len(snap)) + int64(len(meta.Source)) + 256})
		s.m.SnapshotsRecovered.Add(1)
	}
}

// PausedResponse is the 202 body for a run that hit the server's deadline
// and was checkpointed instead of discarded. POST /resume with the token
// continues it under a fresh deadline.
type PausedResponse struct {
	Key         string `json:"key"`
	Paused      bool   `json:"paused"`
	ResumeToken string `json:"resume_token"`
	// Beats is the checkpointed context's virtual clock — how far the run
	// got; it grows monotonically across successive pauses of the same run.
	Beats  int64  `json:"beats"`
	Reason string `json:"reason"`
}

// ResumeRequest is the body of POST /resume.
type ResumeRequest struct {
	Token string            `json:"token"`
	Run   RunRequestOptions `json:"run"`
}

// maybePause intercepts a run that exceeded the server's deadline when a
// resume snapshot was captured: it stores the snapshot and answers 202 with
// the token. Returns whether it handled the response. Client disconnects
// (r.Context done) are not paused — nobody is reading the token.
func (s *Server) maybePause(w http.ResponseWriter, r *http.Request, meta snapMeta, out core.ExitResult, err error) bool {
	if s.snapshots == nil || out.Snapshot == nil {
		return false
	}
	if !errors.Is(err, context.DeadlineExceeded) || r.Context().Err() != nil {
		return false
	}
	meta.Beats = out.Stats.Beats
	tok := s.snapshots.put(meta, out.Snapshot)
	writeJSON(w, http.StatusAccepted, PausedResponse{
		Key: meta.ArtKey, Paused: true, ResumeToken: tok,
		Beats: out.Stats.Beats, Reason: "timeout",
	})
	return true
}

// handleResume serves POST /resume: the checkpointed run continues under a
// fresh run deadline, on a pooled machine, against the artifact re-resolved
// through the normal compile cache (a cache eviction just means one
// deterministic recompile). A resume that times out again re-checkpoints and
// answers another 202, so arbitrarily long programs complete in deadline-
// sized installments.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Resume.Requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, ErrorBody{Kind: "bad_request", Msg: "use POST"})
		return
	}
	if s.snapshots == nil {
		writeError(w, http.StatusNotFound, ErrorBody{
			Kind: "bad_request", Msg: "checkpointing is disabled on this server"})
		return
	}
	body := http.MaxBytesReader(w, r.Body, 1<<16)
	raw, err := io.ReadAll(body)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
			Kind: "bad_request", Msg: "request body too large"})
		return
	}
	var req ResumeRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Kind: "bad_request", Msg: "malformed JSON: " + err.Error()})
		return
	}
	if req.Token == "" {
		writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Msg: "empty token"})
		return
	}
	release, ok := s.admitRequest(w, &s.metrics.Resume)
	if !ok {
		return
	}
	defer release()

	meta, snap, ok := s.snapshots.get(req.Token)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorBody{
			Kind: "not_found", Msg: "unknown or expired resume token"})
		return
	}

	cctx, cancelCompile := context.WithTimeout(r.Context(), s.cfg.CompileTimeout)
	art, cachedBuild, _, err := s.artifact(cctx, meta.ArtKey, meta.Source, meta.Options)
	cancelCompile()
	if err != nil {
		s.writeCompileError(w, err)
		return
	}

	tier, err := req.Run.tier()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Msg: err.Error()})
		return
	}
	rctx, cancelRun := context.WithTimeout(r.Context(), s.cfg.RunTimeout)
	out, err := s.resumeArtifact(rctx, art, snap, tier, req.Run.MaxCycles)
	cancelRun()
	if err != nil {
		if s.maybePause(w, r, meta, out, err) {
			s.metrics.Resume.Latency.observe(time.Since(start))
			return
		}
		s.writeRunError(w, err)
		return
	}
	s.snapshots.remove(req.Token)
	s.metrics.SnapshotsResumed.Add(1)
	s.metrics.Resume.Latency.observe(time.Since(start))
	s.metrics.countRunTier(out.Tier)
	writeJSON(w, http.StatusOK, RunResponse{
		Key: meta.ArtKey, CachedBuild: cachedBuild,
		Tier: out.Tier, Fast: out.Fast, Safe: out.Safe,
		Exit: out.Exit, Output: out.Output,
		Stats: wireStats(out.Stats),
	})
}

// resumeArtifact is runArtifact for a restored execution.
func (s *Server) resumeArtifact(ctx context.Context, art *core.Artifact, snap []byte, tier vliw.Tier, maxCycles int64) (core.ExitResult, error) {
	m := s.machines.Get().(*vliw.Machine)
	s.metrics.MachinesInUse.Add(1)
	defer func() {
		s.metrics.MachinesInUse.Add(-1)
		s.machines.Put(m)
	}()
	return art.RunFromOn(ctx, m, snap, core.RunOptions{
		Tier: tier, MaxCycles: maxCycles, SnapshotOnInterrupt: true})
}

// StartDrain flips the server to draining: /readyz starts answering 503 so
// load balancers stop routing new work here, while requests already in
// flight (and direct probes of the other endpoints) proceed normally.
// cmd/tracesrv calls it on SIGTERM before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// handleHealthz is the liveness probe: the process is up and serving.
// Like /metrics, it bypasses admission control — a saturated server is
// still alive, and shooting it for being busy would only shed the load
// onto its neighbors.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, `{"status":"ok"}`+"\n")
}

// handleReadyz is the readiness probe: 200 while accepting new work, 503
// once draining. Also admission-exempt.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"status":"draining"}`+"\n")
		return
	}
	io.WriteString(w, `{"status":"ready"}`+"\n")
}
