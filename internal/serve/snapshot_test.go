package serve

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/multiflow-repro/trace/internal/core"
)

// referenceRun computes the uninterrupted result of src directly through the
// Artifact API — the oracle every paused-and-resumed serving path must match
// bit-for-bit, counters included — plus how long the simulation took, so the
// pause tests can pick a deadline relative to the machine they run on.
func referenceRun(t *testing.T, src string) (core.ExitResult, time.Duration) {
	t.Helper()
	art, err := core.Build(context.Background(), src, Options{}.toCore(1))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	out, err := art.Run(context.Background(), core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return out, time.Since(start)
}

// pauseTimeout picks a RunTimeout that is guaranteed to interrupt the
// reference workload but completes the resume chain in a handful of hops
// whatever the host speed (the race detector slows simulation ~10-20x; a
// fixed deadline would blow the hop budget there).
func pauseTimeout(ref time.Duration) time.Duration {
	if d := ref / 6; d > 20*time.Millisecond {
		return d
	}
	return 20 * time.Millisecond
}

// resumeToCompletion drives POST /resume until it answers 200, asserting the
// pause/resume invariants along the way. It returns the final RunResponse
// plus the token the completing hop consumed.
func resumeToCompletion(t *testing.T, url, token string, beats int64) (RunResponse, string) {
	t.Helper()
	for hop := 0; hop < 100; hop++ {
		resp, raw := post(t, url+"/resume", ResumeRequest{Token: token})
		switch resp.StatusCode {
		case http.StatusOK:
			return decode[RunResponse](t, raw), token
		case http.StatusAccepted:
			p := decode[PausedResponse](t, raw)
			if p.ResumeToken == "" {
				t.Fatalf("202 without a resume token: %s", raw)
			}
			if p.Beats <= beats {
				t.Fatalf("resumed run did not advance: beats %d -> %d", beats, p.Beats)
			}
			token, beats = p.ResumeToken, p.Beats
		default:
			t.Fatalf("resume: status %d: %s", resp.StatusCode, raw)
		}
	}
	t.Fatal("run did not complete within 100 resume hops")
	return RunResponse{}, ""
}

func TestRunPausesAndResumesToCompletion(t *testing.T) {
	want, refDur := referenceRun(t, slowSrc)
	s, hs := newTestServer(t, Config{Parallelism: 1, RunTimeout: pauseTimeout(refDur)})

	resp, raw := post(t, hs.URL+"/run", RunRequest{
		Source: slowSrc,
		Run:    RunRequestOptions{NoCache: true},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202; body %s", resp.StatusCode, raw)
	}
	p := decode[PausedResponse](t, raw)
	if !p.Paused || p.ResumeToken == "" || p.Reason != "timeout" {
		t.Fatalf("implausible pause response: %+v", p)
	}
	if p.Beats <= 0 {
		t.Fatalf("paused at beat %d, want progress before the deadline", p.Beats)
	}

	final, lastToken := resumeToCompletion(t, hs.URL, p.ResumeToken, p.Beats)
	// The stitched-together run must be indistinguishable from the
	// uninterrupted one: exit, output, and every wire counter.
	if final.Exit != want.Exit || final.Output != want.Output {
		t.Errorf("resumed result diverged: got exit=%d out=%q, want exit=%d out=%q",
			final.Exit, final.Output, want.Exit, want.Output)
	}
	if final.Stats.Beats != want.Stats.Beats || final.Stats.Instrs != want.Stats.Instrs ||
		final.Stats.Ops != want.Stats.Ops || final.Stats.BankStalls != want.Stats.BankStalls {
		t.Errorf("resumed counters diverged:\ngot  %+v\nwant beats=%d instrs=%d ops=%d stalls=%d",
			final.Stats, want.Stats.Beats, want.Stats.Instrs, want.Stats.Ops, want.Stats.BankStalls)
	}

	if got := s.Metrics().MachinesInUse.Value(); got != 0 {
		t.Errorf("MachinesInUse = %d after resume chain, want 0", got)
	}
	if got := s.Metrics().SnapshotsResumed.Value(); got != 1 {
		t.Errorf("SnapshotsResumed = %d, want 1", got)
	}
	// Completion retires the token it consumed. (Earlier checkpoints in the
	// chain stay valid — the store is content-addressed, and an old token
	// just resumes from further back.)
	resp, raw = post(t, hs.URL+"/resume", ResumeRequest{Token: lastToken})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("resume of a completed token: status %d, want 404; body %s", resp.StatusCode, raw)
	}
}

func TestResumeUnknownToken(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})
	resp, raw := post(t, hs.URL+"/resume", ResumeRequest{Token: strings.Repeat("ab", 32)})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %s", resp.StatusCode, raw)
	}
	body := decode[map[string]ErrorBody](t, raw)
	if body["error"].Kind != "not_found" {
		t.Errorf("error kind = %q, want not_found", body["error"].Kind)
	}
	resp, raw = post(t, hs.URL+"/resume", ResumeRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty token: status %d, want 400; body %s", resp.StatusCode, raw)
	}
}

// TestSnapshotDiskRecovery is the SIGKILL drill: server A checkpoints a run
// into a spill directory and is abandoned without any shutdown handshake
// (all its in-RAM state is lost, exactly as a kill -9 would lose it); a
// fresh server B pointed at the same directory must re-index the snapshot
// and complete the run from the token alone. A corrupt spill file planted in
// the directory must be detected and discarded, not served.
func TestSnapshotDiskRecovery(t *testing.T) {
	want, refDur := referenceRun(t, slowSrc)
	dir := t.TempDir()

	_, hsA := newTestServer(t, Config{
		Parallelism: 1, RunTimeout: pauseTimeout(refDur), SnapshotDir: dir,
	})
	resp, raw := post(t, hsA.URL+"/run", RunRequest{
		Source: slowSrc,
		Run:    RunRequestOptions{NoCache: true},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202; body %s", resp.StatusCode, raw)
	}
	p := decode[PausedResponse](t, raw)

	files, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if len(files) != 1 {
		t.Fatalf("spill dir holds %d .snap files after pause, want 1", len(files))
	}

	// Plant wreckage a crashed writer could leave behind: an orphaned temp
	// file and a snapshot whose bytes do not match its token.
	corrupt := filepath.Join(dir, strings.Repeat("00", 32)+".snap")
	if err := os.WriteFile(corrupt, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, p.ResumeToken+".snap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Server A vanishes here as far as B is concerned; B boots cold onto
	// the shared directory.
	sB, hsB := newTestServer(t, Config{Parallelism: 1, SnapshotDir: dir})
	if got := sB.Metrics().SnapshotsRecovered.Value(); got != 1 {
		t.Errorf("SnapshotsRecovered = %d, want 1 (corrupt file must not count)", got)
	}
	if _, err := os.Stat(corrupt); !os.IsNotExist(err) {
		t.Error("corrupt spill file survived the recovery scan")
	}

	final, _ := resumeToCompletion(t, hsB.URL, p.ResumeToken, p.Beats)
	if final.Exit != want.Exit || final.Output != want.Output || final.Stats.Beats != want.Stats.Beats {
		t.Errorf("recovered run diverged: got exit=%d beats=%d, want exit=%d beats=%d",
			final.Exit, final.Stats.Beats, want.Exit, want.Stats.Beats)
	}
}

func TestHealthzReadyzDrain(t *testing.T) {
	s, hs := newTestServer(t, Config{Parallelism: 1, MaxInflight: 1})

	// The probes bypass admission control: hold the only admission slot and
	// they must still answer.
	s.admit <- struct{}{}
	defer func() { <-s.admit }()

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", ep, resp.StatusCode)
		}
	}

	s.StartDrain()
	resp, err := http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz while draining = %d, want 503", resp.StatusCode)
	}
	// Liveness is orthogonal to draining: the process is still healthy.
	resp, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz while draining = %d, want 200", resp.StatusCode)
	}

	r, err := http.Post(hs.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", r.StatusCode)
	}
}

// TestRunManyPoolExactlyOnce exhausts the machine pool with concurrent
// batches across every /runmany outcome class — clean completion, per-tenant
// trap, whole-batch deadline, rejected request — then checks every machine
// came back exactly once and the pool still serves.
func TestRunManyPoolExactlyOnce(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Parallelism: 1, RunTimeout: 50 * time.Millisecond, SnapshotBytes: -1,
	})
	trapSrc := "func main() int {\n\tvar z int = 0\n\treturn 7 / z\n}\n"

	reqs := []RunManyRequest{
		{Programs: []RunManyProgram{{Source: demoSrc}, {Source: demoSrc}}},
		{Programs: []RunManyProgram{{Source: demoSrc}, {Source: trapSrc}}},
		{Programs: []RunManyProgram{{Source: slowSrc}, {Source: slowSrc}}},
		{Programs: []RunManyProgram{{Source: demoSrc}},
			Run: RunManyRunOptions{Tenancy: "machines"}},
		{Programs: []RunManyProgram{{Source: demoSrc}},
			Run: RunManyRunOptions{Tenancy: "bogus"}},
	}
	var wg sync.WaitGroup
	status := make([]int, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req RunManyRequest) {
			defer wg.Done()
			resp, _ := post(t, hs.URL+"/runmany", req)
			status[i] = resp.StatusCode
		}(i, req)
	}
	wg.Wait()

	wantStatus := []int{200, 200, 504, 200, 400}
	for i, want := range wantStatus {
		if status[i] != want {
			t.Errorf("request %d: status %d, want %d", i, status[i], want)
		}
	}
	if got := s.Metrics().MachinesInUse.Value(); got != 0 {
		t.Fatalf("MachinesInUse = %d after mixed batch traffic, want 0 (pool leak)", got)
	}
	// The pool must still hand out machines after the churn.
	resp, raw := post(t, hs.URL+"/runmany", RunManyRequest{
		Programs: []RunManyProgram{{Source: demoSrc}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-churn batch: status %d: %s", resp.StatusCode, raw)
	}
	if got := s.Metrics().MachinesInUse.Value(); got != 0 {
		t.Errorf("MachinesInUse = %d after final batch, want 0", got)
	}
}
