package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// maxRunManyPrograms bounds a /runmany batch. The simulator supports up to
// 255 hardware contexts; the serving bound is lower because each tenant
// carries a full compilation and a multi-megabyte context memory.
const maxRunManyPrograms = 16

// wireStats maps the simulator's counters to their wire subset.
func wireStats(st vliw.Stats) RunStats {
	return RunStats{
		Beats: st.Beats, Instrs: st.Instrs, Ops: st.Ops,
		MemRefs: st.MemRefs, BankStalls: st.BankStalls,
		SpecLoads: st.SpecLoads, ICacheMiss: st.ICacheMiss,
		TLBMisses: st.TLBMisses, MIPS: st.MIPS(),
	}
}

// decodeRunMany parses and validates a /runmany body. It mirrors decode but
// sizes the body limit to the batch bound and validates every source.
func (s *Server) decodeRunMany(w http.ResponseWriter, r *http.Request, req *RunManyRequest) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, ErrorBody{Kind: "bad_request", Msg: "use POST"})
		return false
	}
	body := http.MaxBytesReader(w, r.Body, maxRunManyPrograms*4*s.cfg.MaxSourceBytes+4096)
	raw, err := io.ReadAll(body)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
			Kind: "bad_request", Msg: "request body too large"})
		return false
	}
	if err := json.Unmarshal(raw, req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Kind: "bad_request", Msg: "malformed JSON: " + err.Error()})
		return false
	}
	if len(req.Programs) == 0 || len(req.Programs) > maxRunManyPrograms {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Kind: "bad_request",
			Msg:  fmt.Sprintf("programs must number 1..%d (got %d)", maxRunManyPrograms, len(req.Programs))})
		return false
	}
	for i, p := range req.Programs {
		if p.Source == "" {
			writeError(w, http.StatusBadRequest, ErrorBody{
				Kind: "bad_request", Msg: fmt.Sprintf("program %d: empty source", i)})
			return false
		}
		if int64(len(p.Source)) > s.cfg.MaxSourceBytes {
			writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
				Kind: "bad_request",
				Msg:  fmt.Sprintf("program %d is %d bytes; limit %d", i, len(p.Source), s.cfg.MaxSourceBytes)})
			return false
		}
	}
	if err := req.Options.validate(); err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Msg: err.Error()})
		return false
	}
	switch req.Run.Tenancy {
	case "", "contexts", "machines":
	default:
		writeError(w, http.StatusBadRequest, ErrorBody{
			Kind: "bad_request",
			Msg:  fmt.Sprintf("tenancy must be \"contexts\" or \"machines\" (got %q)", req.Run.Tenancy)})
		return false
	}
	if req.Run.Quantum < 0 || req.Run.SwitchBeats < 0 || req.Run.MaxCycles < 0 {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Kind: "bad_request", Msg: "quantum, switch_beats, and max_cycles must be non-negative"})
		return false
	}
	return true
}

// handleRunMany serves POST /runmany: K programs compile (through the same
// content-addressed cache as /run) and execute as one batch. Under the
// default "contexts" tenancy they time-share ONE pooled machine's hardware
// contexts — one admission slot, one machine, K results — instead of
// holding K machines; "machines" runs them the conventional way on one
// pooled machine each, concurrently, so the two modes are directly
// comparable on the same request. Batch results are not memoized: the
// per-tenant results equal the solo results /run caches, and the scheduler
// counters are what callers come here to measure.
func (s *Server) handleRunMany(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.RunMany.Requests.Add(1)
	var req RunManyRequest
	if !s.decodeRunMany(w, r, &req) {
		return
	}
	tier, err := vliw.ResolveTier(req.Run.Tier, req.Run.Fast, req.Run.Safe)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Msg: err.Error()})
		return
	}
	release, ok := s.admitRequest(w, &s.metrics.RunMany)
	if !ok {
		return
	}
	defer release()

	// Compile every distinct program once; duplicates share the artifact.
	cctx, cancelCompile := context.WithTimeout(r.Context(), s.cfg.CompileTimeout)
	arts := make([]*core.Artifact, len(req.Programs))
	keys := make([]string, len(req.Programs))
	cachedBuild := make([]bool, len(req.Programs))
	for i, p := range req.Programs {
		keys[i] = Key(p.Source, req.Options)
		art, cached, _, err := s.artifact(cctx, keys[i], p.Source, req.Options)
		if err != nil {
			cancelCompile()
			s.writeCompileError(w, err)
			return
		}
		arts[i] = art
		cachedBuild[i] = cached
	}
	cancelCompile()

	rctx, cancelRun := context.WithTimeout(r.Context(), s.cfg.RunTimeout)
	defer cancelRun()
	resp := RunManyResponse{Results: make([]RunManyResult, len(arts))}
	ro := core.RunManyOptions{
		Tier: tier, MaxCycles: req.Run.MaxCycles,
		Quantum: req.Run.Quantum, SwitchBeats: req.Run.SwitchBeats,
	}

	if req.Run.Tenancy == "machines" {
		resp.Tenancy = "machines"
		var wg sync.WaitGroup
		for i, art := range arts {
			wg.Add(1)
			go func(i int, art *core.Artifact) {
				defer wg.Done()
				out, err := s.runArtifact(rctx, art, tier, req.Run.MaxCycles)
				resp.Results[i] = RunManyResult{
					Key: keys[i], CachedBuild: cachedBuild[i],
					Tier: out.Tier, Fast: out.Fast, Safe: out.Safe,
					Exit: out.Exit, Output: out.Output,
					Stats: wireStats(out.Stats),
				}
				s.metrics.countRunTier(out.Tier)
				if err != nil {
					resp.Results[i].Error = err.Error()
				}
			}(i, art)
		}
		wg.Wait()
	} else {
		resp.Tenancy = "contexts"
		// The machine goes back to the pool on EVERY path out of this
		// handler — success, whole-batch error, or a panic unwinding through
		// it — exactly once, which is what the deferred return guarantees
		// and what the pool-leak test exercises.
		rs, sched, err := func() ([]core.ManyResult, vliw.SchedStats, error) {
			m := s.machines.Get().(*vliw.Machine)
			s.metrics.MachinesInUse.Add(1)
			defer func() {
				s.metrics.MachinesInUse.Add(-1)
				s.machines.Put(m)
			}()
			return core.RunManyOn(rctx, m, arts, ro)
		}()
		if err != nil {
			s.writeRunError(w, err)
			return
		}
		for i, res := range rs {
			resp.Results[i] = RunManyResult{
				Key: keys[i], CachedBuild: cachedBuild[i],
				Tier: res.Tier, Fast: res.Fast, Safe: res.Safe,
				Exit: res.Exit, Output: res.Output,
				Stats: wireStats(res.Stats),
			}
			s.metrics.countRunTier(res.Tier)
			if res.Err != nil {
				resp.Results[i].Error = res.Err.Error()
			}
		}
		resp.Sched = &SchedResponse{
			Contexts: sched.Contexts, TotalBeats: sched.TotalBeats,
			BusyBeats: sched.BusyBeats, HiddenBeats: sched.HiddenBeats,
			Switches: sched.Switches, SwitchBeats: sched.SwitchBeats,
		}
	}
	s.metrics.RunMany.Latency.observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}
