package serve

import (
	"context"
	"sync"

	"github.com/multiflow-repro/trace/internal/core"
)

// flightGroup collapses concurrent compilations of the same key into one
// pipeline execution. It is a singleflight with context-aware membership:
// the shared compile runs on its own context, and each waiter that gives up
// (its request canceled or timed out) leaves the flight individually — the
// compile itself is canceled only when the last waiter has left, so one
// impatient client cannot kill a build that nine others are still waiting
// for.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	cancel  context.CancelFunc
	waiters int
	done    chan struct{}
	art     *core.Artifact
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// do returns the artifact for key, starting fn at most once across all
// concurrent callers. joined reports whether this caller attached to an
// already-in-flight compile. A caller whose ctx ends before the compile
// completes gets ctx.Err(); the compile keeps running for the remaining
// waiters.
func (g *flightGroup) do(ctx context.Context, key string, fn func(ctx context.Context) (*core.Artifact, error)) (art *core.Artifact, joined bool, err error) {
	g.mu.Lock()
	call, ok := g.calls[key]
	if !ok {
		cctx, cancel := context.WithCancel(context.Background())
		call = &flightCall{cancel: cancel, done: make(chan struct{})}
		g.calls[key] = call
		g.mu.Unlock()
		go func() {
			call.art, call.err = fn(cctx)
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(call.done)
			cancel()
		}()
	} else {
		g.mu.Unlock()
	}
	g.mu.Lock()
	call.waiters++
	g.mu.Unlock()

	select {
	case <-call.done:
		g.mu.Lock()
		call.waiters--
		g.mu.Unlock()
		return call.art, ok, call.err
	case <-ctx.Done():
		g.mu.Lock()
		call.waiters--
		last := call.waiters == 0
		g.mu.Unlock()
		if last {
			// Nobody is waiting for this compile anymore: stop it at the
			// next pass or function boundary instead of finishing warm air.
			call.cancel()
		}
		return nil, ok, ctx.Err()
	}
}
