package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// demoSrc is a small program every test compiles; distinct tests mutate a
// comment to get distinct cache keys.
const demoSrc = `
func add(a int, b int) int { return a + b }
func main() int {
	var s int = 0
	for (var i int = 0; i < 50; i = i + 1) { s = add(s, i) }
	print_i(s)
	return s
}
`

// slowSrc runs long enough (hundreds of thousands of beats) that a short
// deadline reliably expires mid-simulation.
const slowSrc = `
func main() int {
	var s int = 0
	for (var i int = 0; i < 2000000; i = i + 1) { s = s + (i & 7) }
	return s & 65535
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return v
}

func TestCompileCacheMissThenHit(t *testing.T) {
	s, hs := newTestServer(t, Config{Parallelism: 1})
	before := core.PipelineRuns()

	resp, raw := post(t, hs.URL+"/compile", CompileRequest{Source: demoSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first compile: status %d: %s", resp.StatusCode, raw)
	}
	first := decode[CompileResponse](t, raw)
	if first.Cached {
		t.Error("first compile reported cached=true")
	}
	if first.Key == "" || first.Instrs == 0 {
		t.Errorf("implausible response: %+v", first)
	}

	resp, raw = post(t, hs.URL+"/compile", CompileRequest{Source: demoSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second compile: status %d: %s", resp.StatusCode, raw)
	}
	second := decode[CompileResponse](t, raw)
	if !second.Cached {
		t.Error("second compile of identical source was not a cache hit")
	}
	if second.Key != first.Key {
		t.Errorf("key changed between identical compiles: %s vs %s", first.Key, second.Key)
	}
	if got := s.Metrics().ArtifactHits.Value(); got != 1 {
		t.Errorf("ArtifactHits = %d, want 1", got)
	}
	if ran := core.PipelineRuns() - before; ran != 1 {
		t.Errorf("pipeline executed %d times for two identical requests, want 1", ran)
	}
}

func TestKeySeparatesOptions(t *testing.T) {
	// Default options written explicitly must hash like omitted defaults;
	// semantically different options must not.
	base := Key(demoSrc, Options{})
	lvl2 := 2
	if got := Key(demoSrc, Options{Pairs: 4, OptLevel: &lvl2}); got != base {
		t.Error("explicit defaults produced a different key than omitted defaults")
	}
	if got := Key(demoSrc, Options{Pairs: 1}); got == base {
		t.Error("pairs=1 produced the same key as pairs=4")
	}
	lvl0 := 0
	if got := Key(demoSrc, Options{OptLevel: &lvl0}); got == base {
		t.Error("O=0 produced the same key as O=2")
	}
	if got := Key(demoSrc+" ", Options{}); got == base {
		t.Error("different source produced the same key")
	}
}

func TestConcurrentIdenticalCompilesCollapse(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})
	src := demoSrc + "// collapse\n"
	before := core.PipelineRuns()

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, err := json.Marshal(CompileRequest{Source: src})
			if err != nil {
				errs <- err.Error()
				return
			}
			resp, err := http.Post(hs.URL+"/compile", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err.Error()
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// The acceptance criterion: N identical concurrent requests, exactly
	// one pipeline execution. The counter lives beneath every core entry
	// point, so neither the cache nor the flight group can fake it.
	if ran := core.PipelineRuns() - before; ran != 1 {
		t.Errorf("pipeline executed %d times for %d concurrent identical requests, want 1", ran, n)
	}
}

func TestRunResultMemoized(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})
	src := demoSrc + "// memo\n"
	req := RunRequest{Source: src, Run: RunRequestOptions{Fast: true}}
	before := core.PipelineRuns()

	resp, raw := post(t, hs.URL+"/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d: %s", resp.StatusCode, raw)
	}
	first := decode[RunResponse](t, raw)
	if first.CachedResult {
		t.Error("first run reported cached_result=true")
	}
	if !first.Fast {
		t.Error("fast run did not take the certified fast path")
	}

	resp, raw = post(t, hs.URL+"/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second run: status %d: %s", resp.StatusCode, raw)
	}
	second := decode[RunResponse](t, raw)
	if !second.CachedResult || !second.CachedBuild {
		t.Errorf("second identical run not served from cache: %+v", second)
	}
	if second.Exit != first.Exit || second.Output != first.Output || second.Stats != first.Stats {
		t.Errorf("memoized result differs from computed result:\n%+v\n%+v", first, second)
	}
	if ran := core.PipelineRuns() - before; ran != 1 {
		t.Errorf("pipeline executed %d times across both runs, want 1", ran)
	}

	// no_cache forces a re-execution but must produce identical results
	// (the simulator is deterministic — that is what justifies the memo).
	req.Run.NoCache = true
	resp, raw = post(t, hs.URL+"/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("no_cache run: status %d: %s", resp.StatusCode, raw)
	}
	third := decode[RunResponse](t, raw)
	if third.CachedResult {
		t.Error("no_cache run reported cached_result=true")
	}
	if third.Exit != first.Exit || third.Stats.Beats != first.Stats.Beats {
		t.Errorf("re-executed run diverged from memoized run: %+v vs %+v", third, first)
	}
}

// guardedSrc exercises every guard class the safe tier can delete: array
// stores and loads behind provable loop bounds, plus a division by a
// nonzero constant.
const guardedSrc = `
var a [8]int
func main() int {
	var s int = 0
	for (var i int = 0; i < 8; i = i + 1) { a[i] = i * 3 }
	for (var i int = 0; i < 8; i = i + 1) { s = s + a[i] }
	return s / 3
}
`

// TestRunSafeTier: run.safe selects the guard-free tier end to end — the
// response reports it, the memo keeps safe and fast results apart, and the
// /metrics cert_level tree counts each run at the grade it executed under.
func TestRunSafeTier(t *testing.T) {
	s, hs := newTestServer(t, Config{Parallelism: 1})

	safeReq := RunRequest{Source: guardedSrc, Run: RunRequestOptions{Safe: true}}
	resp, raw := post(t, hs.URL+"/run", safeReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("safe run: status %d: %s", resp.StatusCode, raw)
	}
	safe := decode[RunResponse](t, raw)
	if !safe.Safe || !safe.Fast {
		t.Fatalf("safe run not on the safe tier: %+v", safe)
	}

	// The fast run of the same source must not be served from the safe
	// run's memo entry (distinct runKey) and must report safe=false.
	resp, raw = post(t, hs.URL+"/run", RunRequest{Source: guardedSrc, Run: RunRequestOptions{Fast: true}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast run: status %d: %s", resp.StatusCode, raw)
	}
	fast := decode[RunResponse](t, raw)
	if fast.CachedResult {
		t.Error("fast run hit the safe run's memo entry (runKey ignores the tier)")
	}
	if fast.Safe || !fast.Fast {
		t.Errorf("fast run tier flags: %+v", fast)
	}
	if fast.Exit != safe.Exit || fast.Output != safe.Output || fast.Stats != safe.Stats {
		t.Errorf("tiers disagree:\n safe: %+v\n fast: %+v", safe, fast)
	}

	// A repeat safe request is a memo hit and keeps its tier flags.
	resp, raw = post(t, hs.URL+"/run", safeReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached safe run: status %d: %s", resp.StatusCode, raw)
	}
	cached := decode[RunResponse](t, raw)
	if !cached.CachedResult || !cached.Safe {
		t.Errorf("cached safe run lost its tier: %+v", cached)
	}

	if got := s.Metrics().RunsCertSafe.Value(); got != 2 {
		t.Errorf("RunsCertSafe = %d, want 2", got)
	}
	if got := s.Metrics().RunsCertFast.Value(); got != 1 {
		t.Errorf("RunsCertFast = %d, want 1", got)
	}
}

// TestRunNativeTier: run.tier="native" selects the closure-threaded tier end
// to end — the response names the tier, the memo keys native apart from
// safe, a tier/boolean conflict is a structured bad_request, and /metrics
// counts the run under cert_level.native.
func TestRunNativeTier(t *testing.T) {
	s, hs := newTestServer(t, Config{Parallelism: 1})

	natReq := RunRequest{Source: guardedSrc, Run: RunRequestOptions{Tier: vliw.TierNative}}
	resp, raw := post(t, hs.URL+"/run", natReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("native run: status %d: %s", resp.StatusCode, raw)
	}
	native := decode[RunResponse](t, raw)
	if native.Tier != vliw.TierNative || !native.Safe || !native.Fast {
		t.Fatalf("native run not on the native tier: %+v", native)
	}

	// The safe run of the same source must not be served from the native
	// run's memo entry (distinct runKey) and must agree bit-for-bit.
	resp, raw = post(t, hs.URL+"/run", RunRequest{Source: guardedSrc, Run: RunRequestOptions{Tier: vliw.TierSafe}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("safe run: status %d: %s", resp.StatusCode, raw)
	}
	safe := decode[RunResponse](t, raw)
	if safe.CachedResult {
		t.Error("safe run hit the native run's memo entry (runKey ignores the tier)")
	}
	if safe.Tier != vliw.TierSafe {
		t.Errorf("safe run tier = %v", safe.Tier)
	}
	if native.Exit != safe.Exit || native.Output != safe.Output || native.Stats != safe.Stats {
		t.Errorf("tiers disagree:\n native: %+v\n safe:   %+v", native, safe)
	}

	// A repeat native request is a memo hit and keeps its tier name.
	resp, raw = post(t, hs.URL+"/run", natReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached native run: status %d: %s", resp.StatusCode, raw)
	}
	cached := decode[RunResponse](t, raw)
	if !cached.CachedResult || cached.Tier != vliw.TierNative {
		t.Errorf("cached native run lost its tier: %+v", cached)
	}

	// An unknown tier name and a tier/boolean conflict are both structured
	// bad_requests, not runs.
	resp, raw = post(t, hs.URL+"/run", map[string]any{
		"source": guardedSrc, "run": map[string]any{"tier": "turbo"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown tier: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = post(t, hs.URL+"/run", RunRequest{Source: guardedSrc,
		Run: RunRequestOptions{Tier: vliw.TierFast, Safe: true}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("tier conflict: status %d: %s", resp.StatusCode, raw)
	}

	if got := s.Metrics().RunsCertNative.Value(); got != 2 {
		t.Errorf("RunsCertNative = %d, want 2", got)
	}
}

// TestRunManySafeTier: the batch endpoint puts every tenant on the safe
// tier under both tenancies and the results stay identical to checked ones.
func TestRunManySafeTier(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})

	for _, tier := range []vliw.Tier{vliw.TierSafe, vliw.TierNative} {
		for _, tenancy := range []string{"contexts", "machines"} {
			req := runManyReq(tenancy, false)
			req.Run.Tier = tier
			resp, raw := post(t, hs.URL+"/runmany", req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", tier, tenancy, resp.StatusCode, raw)
			}
			batch := decode[RunManyResponse](t, raw)
			checked := decode[RunManyResponse](t, mustPostOK(t, hs.URL+"/runmany", runManyReq(tenancy, false)))
			for i, r := range batch.Results {
				if r.Error != "" {
					t.Fatalf("%s/%s tenant %d: %s", tier, tenancy, i, r.Error)
				}
				if r.Tier != tier || !r.Safe || !r.Fast {
					t.Errorf("%s/%s tenant %d not on the requested tier: %+v", tier, tenancy, i, r)
				}
				c := checked.Results[i]
				if r.Exit != c.Exit || r.Output != c.Output || r.Stats != c.Stats {
					t.Errorf("%s/%s tenant %d diverges from checked:\n %s: %+v\n checked: %+v", tier, tenancy, i, tier, r, c)
				}
			}
		}
	}
}

func mustPostOK(t *testing.T, url string, body any) []byte {
	t.Helper()
	resp, raw := post(t, url, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

func TestRunDeadlineReturns504AndMachineToPool(t *testing.T) {
	// SnapshotBytes < 0 disables checkpointing: the deadline maps straight
	// to 504 (the default configuration instead answers 202 + resume token;
	// snapshot_test.go covers that path).
	s, hs := newTestServer(t, Config{Parallelism: 1, RunTimeout: 30 * time.Millisecond, SnapshotBytes: -1})

	resp, raw := post(t, hs.URL+"/run", RunRequest{
		Source: slowSrc,
		Run:    RunRequestOptions{NoCache: true},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, raw)
	}
	body := decode[map[string]ErrorBody](t, raw)
	if body["error"].Kind != "timeout" {
		t.Errorf("error kind = %q, want timeout; body %s", body["error"].Kind, raw)
	}
	if got := s.Metrics().MachinesInUse.Value(); got != 0 {
		t.Errorf("MachinesInUse = %d after timed-out run, want 0 (machine leaked)", got)
	}
	if got := s.Metrics().Timeouts.Value(); got != 1 {
		t.Errorf("Timeouts = %d, want 1", got)
	}
}

func TestCompileErrorIsStructured(t *testing.T) {
	s, hs := newTestServer(t, Config{Parallelism: 1})
	resp, raw := post(t, hs.URL+"/compile", CompileRequest{
		Source: "func main() int {\n\treturn undefined_variable\n}",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", resp.StatusCode, raw)
	}
	body := decode[map[string]ErrorBody](t, raw)
	e := body["error"]
	if e.Kind != "compile" {
		t.Errorf("kind = %q, want compile", e.Kind)
	}
	if e.Pos == nil {
		t.Fatalf("no position on compile diagnostic: %s", raw)
	}
	if e.Pos.Line != 2 || e.Pos.Col == 0 {
		t.Errorf("position = %+v, want line 2 with a column", e.Pos)
	}
	if !strings.Contains(e.Msg, "undefined") {
		t.Errorf("msg = %q, want mention of the undefined identifier", e.Msg)
	}
	if got := s.Metrics().CompileErrors.Value(); got != 1 {
		t.Errorf("CompileErrors = %d, want 1", got)
	}
}

func TestSaturationReturns429(t *testing.T) {
	s, hs := newTestServer(t, Config{Parallelism: 1, MaxInflight: 1, RunTimeout: 5 * time.Second})

	// Occupy the single admission slot with a genuinely slow run.
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		raw, _ := json.Marshal(RunRequest{Source: slowSrc, Run: RunRequestOptions{NoCache: true}})
		resp, err := http.Post(hs.URL+"/run", "application/json", bytes.NewReader(raw))
		if err == nil {
			resp.Body.Close()
		}
		close(release)
	}()
	<-started
	// Wait for the slow request to be admitted.
	deadline := time.Now().Add(2 * time.Second)
	for s.Metrics().InFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, raw := post(t, hs.URL+"/compile", CompileRequest{Source: demoSrc})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, raw)
	}
	body := decode[map[string]ErrorBody](t, raw)
	if body["error"].Kind != "saturated" {
		t.Errorf("error kind = %q, want saturated", body["error"].Kind)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want %q", ra, "1")
	}
	if got := s.Metrics().Saturated.Value(); got == 0 {
		t.Error("Saturated counter not incremented")
	}
	if got := s.Metrics().Compile.Rejected.Value(); got == 0 {
		t.Error("per-endpoint Rejected counter not incremented for /compile")
	}
	if got := s.Metrics().Run.Rejected.Value(); got != 0 {
		t.Errorf("/run rejected %d requests; the rejection was on /compile", got)
	}
	// GET /metrics must stay reachable while the server is saturated —
	// that is the whole point of exempting it from admission.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status = %d under saturation, want 200", mresp.StatusCode)
	}
	<-release
	wg.Wait()
}

func TestLintEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})
	resp, raw := post(t, hs.URL+"/lint", CompileRequest{Source: demoSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	rep := decode[LintResponse](t, raw)
	if !rep.Clean || rep.Errors != 0 {
		t.Errorf("demo program should lint clean: %+v", rep)
	}
	if rep.Words == 0 || rep.Reachable == 0 {
		t.Errorf("lint response missing image shape: %+v", rep)
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1, MaxSourceBytes: 128})

	resp, _ := post(t, hs.URL+"/compile", CompileRequest{Source: ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty source: status %d, want 400", resp.StatusCode)
	}

	resp, _ = post(t, hs.URL+"/compile", CompileRequest{Source: strings.Repeat("x", 200)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized source: status %d, want 413", resp.StatusCode)
	}

	r, err := http.Post(hs.URL+"/compile", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", r.StatusCode)
	}

	r, err = http.Get(hs.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile: status %d, want 405", r.StatusCode)
	}

	badPairs := CompileRequest{Source: "func main() int { return 0 }"}
	badPairs.Options.Pairs = 3
	resp, _ = post(t, hs.URL+"/compile", badPairs)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("pairs=3: status %d, want 400", resp.StatusCode)
	}
}

func TestArtifactCacheEviction(t *testing.T) {
	// A budget big enough for roughly one artifact forces eviction on the
	// second distinct compile.
	s, hs := newTestServer(t, Config{Parallelism: 1, CacheBytes: 8 << 10})
	for i := 0; i < 3; i++ {
		src := fmt.Sprintf("%s// v%d\n", demoSrc, i)
		resp, raw := post(t, hs.URL+"/compile", CompileRequest{Source: src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	if got := s.Metrics().ArtifactEvictions.Value(); got == 0 {
		t.Error("no evictions after compiling 3 distinct programs into an ~1-artifact budget")
	}
	if got := s.Metrics().ArtifactEntries.Value(); got < 1 {
		t.Errorf("ArtifactEntries = %d, want >= 1", got)
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})
	post(t, hs.URL+"/compile", CompileRequest{Source: demoSrc})
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"artifact_cache", "run_cache", "endpoints", "in_flight", "machines_in_use", "cert_level"} {
		if _, ok := snap[k]; !ok {
			t.Errorf("metrics snapshot missing %q", k)
		}
	}
}
