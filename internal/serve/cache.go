package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// Key addresses a compilation by content: SHA-256 over the canonicalized
// semantic options and the source text. Two requests with the same key are
// the same compilation by construction — the compiler is deterministic at
// every Parallelism setting (cross-checked continuously by the fuzz
// oracle), so the key never needs to mention who asked or how many backend
// workers built it.
func Key(src string, o Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s", o.canonical(), src)
	return hex.EncodeToString(h.Sum(nil))
}

// artifactEntry is one cached compilation with its byte cost.
type artifactEntry struct {
	key  string
	art  *core.Artifact
	cost int64
}

// artifactCache is a byte-budgeted LRU of compiled artifacts. Artifacts are
// immutable (see core.Artifact), so a cached entry is handed to concurrent
// requests without copying; only the recency list and the map need the
// lock.
type artifactCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	lru    *list.List // of *artifactEntry, front = most recent
	byKey  map[string]*list.Element
	m      *Metrics
}

func newArtifactCache(budget int64, m *Metrics) *artifactCache {
	return &artifactCache{budget: budget, lru: list.New(), byKey: map[string]*list.Element{}, m: m}
}

// get returns the cached artifact and marks it most recently used.
func (c *artifactCache) get(key string) (*core.Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.m.ArtifactMisses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.m.ArtifactHits.Add(1)
	return el.Value.(*artifactEntry).art, true
}

// add inserts the artifact and evicts least-recently-used entries until the
// budget holds. An artifact larger than the whole budget is still cached
// alone (the alternative — recompiling it on every request — is strictly
// worse); it will be evicted by the next insertion.
func (c *artifactCache) add(key string, art *core.Artifact) {
	cost := artifactCost(key, art)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// A racing compile of the same key finished first; keep its entry.
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&artifactEntry{key: key, art: art, cost: cost})
	c.byKey[key] = el
	c.used += cost
	c.m.ArtifactBytes.Set(c.used)
	c.m.ArtifactEntries.Set(int64(c.lru.Len()))
	for c.used > c.budget && c.lru.Len() > 1 {
		oldest := c.lru.Back()
		ent := oldest.Value.(*artifactEntry)
		c.lru.Remove(oldest)
		delete(c.byKey, ent.key)
		c.used -= ent.cost
		c.m.ArtifactEvictions.Add(1)
	}
	c.m.ArtifactBytes.Set(c.used)
	c.m.ArtifactEntries.Set(int64(c.lru.Len()))
}

// artifactCost estimates an artifact's resident size. The dominant terms
// are the linked instruction words and the retained IR (both sides of the
// differential oracle); the constant per-op factor is a measured
// approximation, not an accounting guarantee — the budget bounds the cache
// to the right order of magnitude.
func artifactCost(key string, art *core.Artifact) int64 {
	res := art.Result()
	fixed, _, ops := res.Image.CodeSizes()
	return int64(len(key)) + fixed + 96*int64(ops) + 256
}

// runKey addresses a deterministic execution: the artifact key plus every
// semantic run option — the resolved tier name, so each of the four tiers
// memoizes separately (their results must be identical, but the key keeps
// the caches honest instead of assuming it). The simulator is a
// deterministic function of the image (no wall clock, no randomness —
// performance counters included), so one completed run answers every later
// identical request.
func runKey(artKey string, tier vliw.Tier, maxCycles int64) string {
	return fmt.Sprintf("%s/tier=%s/max=%d", artKey, tier, maxCycles)
}

// runCache memoizes completed run results, bounded by entry count (results
// are small: an exit code, captured output, and a Stats struct).
type runCache struct {
	mu    sync.Mutex
	limit int
	lru   *list.List // of runEntry
	byKey map[string]*list.Element
	m     *Metrics
}

type runEntry struct {
	key string
	res core.ExitResult
}

func newRunCache(limit int, m *Metrics) *runCache {
	return &runCache{limit: limit, lru: list.New(), byKey: map[string]*list.Element{}, m: m}
}

func (c *runCache) get(key string) (core.ExitResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.m.RunMisses.Add(1)
		return core.ExitResult{}, false
	}
	c.lru.MoveToFront(el)
	c.m.RunHits.Add(1)
	return el.Value.(*runEntry).res, true
}

func (c *runCache) add(key string, res core.ExitResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; ok {
		return
	}
	c.byKey[key] = c.lru.PushFront(&runEntry{key: key, res: res})
	for c.lru.Len() > c.limit {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*runEntry).key)
	}
}
