// Package serve is the compile-and-execute service: an HTTP/JSON front end
// over the Artifact API with a content-addressed artifact cache.
//
// The design leans on the paper's central premise (§4): the compiler
// statically owns every machine resource, so a compiled image is immutable
// and execution is a deterministic function of it. That buys the service
// three things a conventional JIT server has to fight for:
//
//   - Compilations are content-addressed — SHA-256 over the source text and
//     the canonicalized semantic options — and cached in a byte-budgeted
//     LRU. Identical in-flight requests collapse into one pipeline
//     execution (flightGroup).
//   - Runs draw machines from a sync.Pool and Reset them onto the cached
//     image; when the artifact lints clean, its lazily-minted Certificate
//     puts the run on the simulator's no-dynamic-checks fast path.
//   - Completed runs are memoized: the simulator has no clock, no
//     randomness, and no input channel, so (artifact × run options) fully
//     determines the result — performance counters included. Requests can
//     opt out per-call with "no_cache" (e.g. to re-measure wall time).
//
// Every request runs under a context: deadlines and client disconnects
// cancel compilation at pass boundaries and simulation at beat granularity.
// Admission is a bounded semaphore — past capacity the server answers 429
// immediately rather than queueing into its own timeout.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/multiflow-repro/trace/internal/core"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
	"github.com/multiflow-repro/trace/internal/opt"
	"github.com/multiflow-repro/trace/internal/schedcheck"
	"github.com/multiflow-repro/trace/internal/tsched"
	"github.com/multiflow-repro/trace/internal/vliw"
)

// Options is the wire form of a compilation request's semantic options.
// Fields the compiler proves non-semantic — backend parallelism, verify
// mode — are deliberately absent: they belong to the server, not the key.
type Options struct {
	// Pairs selects the machine width: 1, 2, or 4 I-F pairs (default 4).
	Pairs int `json:"pairs,omitempty"`
	// Ideal targets the Figure-1 idealized VLIW instead of the real
	// partitioned machine.
	Ideal bool `json:"ideal,omitempty"`
	// OptLevel is the optimization level 0-2 (default 2).
	OptLevel *int `json:"O,omitempty"`
	// Profile enables profile-guided trace selection (an IR-interpreter
	// run feeds measured edge counts to the trace picker).
	Profile bool `json:"profile,omitempty"`
	// DisableSpeculation turns off the §7 non-trapping loads.
	DisableSpeculation bool `json:"disable_speculation,omitempty"`
	// DisableMultiway restricts instructions to one branch test.
	DisableMultiway bool `json:"disable_multiway,omitempty"`
	// Conservative disables the §6.4.4 bank-stall gamble.
	Conservative bool `json:"conservative,omitempty"`
	// BasicBlockOnly restricts trace selection to single basic blocks
	// (the §10 ablation).
	BasicBlockOnly bool `json:"basic_block_only,omitempty"`
}

func (o Options) pairs() int {
	if o.Pairs == 0 {
		return 4
	}
	return o.Pairs
}

func (o Options) level() int {
	if o.OptLevel == nil {
		return 2
	}
	return *o.OptLevel
}

// canonical renders the options in a fixed field order with defaults
// applied, so JSON field order, omitted defaults, and explicit defaults all
// produce the same cache key.
func (o Options) canonical() string {
	return fmt.Sprintf("pairs=%d ideal=%t O=%d prof=%t nospec=%t nomw=%t cons=%t bb=%t",
		o.pairs(), o.Ideal, o.level(), o.Profile,
		o.DisableSpeculation, o.DisableMultiway, o.Conservative, o.BasicBlockOnly)
}

func (o Options) validate() error {
	switch o.pairs() {
	case 1, 2, 4:
	default:
		return fmt.Errorf("pairs must be 1, 2, or 4 (got %d)", o.Pairs)
	}
	if l := o.level(); l < 0 || l > 2 {
		return fmt.Errorf("O must be 0, 1, or 2 (got %d)", l)
	}
	return nil
}

// toCore maps wire options to compiler options; parallelism comes from the
// server configuration because it is provably non-semantic.
func (o Options) toCore(parallelism int) core.Options {
	cfg := mach.NewConfig(o.pairs())
	if o.Ideal {
		cfg = mach.IdealConfig(o.pairs())
	}
	if o.DisableSpeculation {
		cfg.SpeculativeLoads = false
	}
	if o.DisableMultiway {
		cfg.MultiwayBranch = false
	}
	if o.Conservative {
		cfg.RollTheDice = false
	}
	var lvl opt.Options
	switch o.level() {
	case 0:
		lvl = opt.None()
	case 1:
		lvl = opt.Options{Inline: true, UnrollFactor: 4}
	default:
		lvl = opt.Default()
	}
	prof := core.ProfileHeuristic
	if o.Profile {
		prof = core.ProfileRun
	}
	maxBlocks := 0
	if o.BasicBlockOnly {
		maxBlocks = 1
	}
	return core.Options{
		Config: cfg, Opt: lvl, Profile: prof,
		MaxTraceBlocks: maxBlocks, Parallelism: parallelism,
	}
}

// RunRequestOptions is the wire form of the execution options.
type RunRequestOptions struct {
	// Tier requests an execution tier by name: "checked" (or omitted),
	// "fast" (the certified fast path — the artifact must lint clean),
	// "safe" (guard-free execution of every site the value-range analysis
	// proves; requires the artifact's safety certificate), or "native"
	// (the safety grade plus the closure-threaded translation of the
	// image). Setting Tier alongside a boolean that implies a stronger
	// tier is a bad_request.
	Tier vliw.Tier `json:"tier,omitempty"`
	// Fast requests the certified fast path.
	//
	// Deprecated: set Tier to "fast".
	Fast bool `json:"fast,omitempty"`
	// Safe requests the guard-free safe tier.
	//
	// Deprecated: set Tier to "safe".
	Safe bool `json:"safe,omitempty"`
	// MaxCycles overrides the simulator's beat budget (0 = default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// NoCache bypasses the memoized run results for this request.
	NoCache bool `json:"no_cache,omitempty"`
}

// tier folds the deprecated booleans into the Tier field.
func (o RunRequestOptions) tier() (vliw.Tier, error) {
	return vliw.ResolveTier(o.Tier, o.Fast, o.Safe)
}

// CompileRequest is the body of POST /compile and POST /lint.
type CompileRequest struct {
	Source  string  `json:"source"`
	Options Options `json:"options"`
}

// RunRequest is the body of POST /run.
type RunRequest struct {
	Source  string            `json:"source"`
	Options Options           `json:"options"`
	Run     RunRequestOptions `json:"run"`
}

// RunManyProgram is one tenant program in a /runmany batch.
type RunManyProgram struct {
	Source string `json:"source"`
}

// RunManyRunOptions is the wire form of the batch execution options.
type RunManyRunOptions struct {
	// Tier requests an execution tier by name for every tenant; the batch
	// fails if any program does not certify at the requested grade
	// (all-or-nothing — tiers are never silently mixed across tenants).
	Tier vliw.Tier `json:"tier,omitempty"`
	// Fast requests the certified fast path for every tenant.
	//
	// Deprecated: set Tier to "fast".
	Fast bool `json:"fast,omitempty"`
	// Safe requests the guard-free safe tier for every tenant.
	//
	// Deprecated: set Tier to "safe".
	Safe bool `json:"safe,omitempty"`
	// MaxCycles caps each tenant's beat budget (0 = default).
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Quantum overrides the scheduler's round-robin timeslice in beats.
	Quantum int64 `json:"quantum,omitempty"`
	// SwitchBeats overrides the wall-clock cost per context rotation.
	SwitchBeats int64 `json:"switch_beats,omitempty"`
	// Tenancy selects how the batch shares hardware: "contexts" (default)
	// time-shares one pooled machine's hardware contexts; "machines" runs
	// each program on its own pooled machine, concurrently — the
	// conventional one-machine-per-request serving mode, kept for
	// comparison.
	Tenancy string `json:"tenancy,omitempty"`
}

// RunManyRequest is the body of POST /runmany. All programs compile under
// one shared Options (the tenants must target one machine configuration).
type RunManyRequest struct {
	Programs []RunManyProgram  `json:"programs"`
	Options  Options           `json:"options"`
	Run      RunManyRunOptions `json:"run"`
}

// RunManyResult reports one tenant's execution. Error is per-tenant — a
// trap or cycle-limit there does not fail the batch.
type RunManyResult struct {
	Key         string `json:"key"`
	CachedBuild bool   `json:"cached_build"`
	// Tier names the execution tier this tenant actually ran on.
	Tier vliw.Tier `json:"tier"`
	// Fast reports Tier is at least "fast". Deprecated: read Tier.
	Fast bool `json:"fast"`
	// Safe reports Tier is at least "safe". Deprecated: read Tier.
	Safe   bool     `json:"safe,omitempty"`
	Exit   int32    `json:"exit"`
	Output string   `json:"output"`
	Stats  RunStats `json:"stats"`
	Error  string   `json:"error,omitempty"`
}

// SchedResponse is the wire form of the context scheduler's counters
// (contexts tenancy only).
type SchedResponse struct {
	Contexts    int   `json:"contexts"`
	TotalBeats  int64 `json:"total_beats"`
	BusyBeats   int64 `json:"busy_beats"`
	HiddenBeats int64 `json:"hidden_beats"`
	Switches    int64 `json:"switches"`
	SwitchBeats int64 `json:"switch_beats"`
}

// RunManyResponse reports one batch execution.
type RunManyResponse struct {
	Tenancy string          `json:"tenancy"`
	Results []RunManyResult `json:"results"`
	Sched   *SchedResponse  `json:"sched,omitempty"`
}

// CompileResponse reports one compilation.
type CompileResponse struct {
	Key string `json:"key"`
	// Cached reports the artifact came from the cache; Joined reports the
	// request attached to a compile another request had in flight.
	Cached bool `json:"cached"`
	Joined bool `json:"joined,omitempty"`

	Machine     string `json:"machine"`
	Instrs      int    `json:"instrs"`
	Ops         int64  `json:"ops"`
	FixedBytes  int64  `json:"fixed_bytes"`
	PackedBytes int64  `json:"packed_bytes"`
	Attempts    int    `json:"attempts"`
	CompileMs   int64  `json:"compile_ms"`
}

// RunStats is the wire subset of the simulator's counters.
type RunStats struct {
	Beats      int64   `json:"beats"`
	Instrs     int64   `json:"instrs"`
	Ops        int64   `json:"ops"`
	MemRefs    int64   `json:"mem_refs"`
	BankStalls int64   `json:"bank_stalls"`
	SpecLoads  int64   `json:"spec_loads"`
	ICacheMiss int64   `json:"icache_miss"`
	TLBMisses  int64   `json:"tlb_misses"`
	MIPS       float64 `json:"mips"`
}

// RunResponse reports one execution.
type RunResponse struct {
	Key          string `json:"key"`
	CachedBuild  bool   `json:"cached_build"`
	CachedResult bool   `json:"cached_result"`
	// Tier names the execution tier the run actually took: "checked",
	// "fast", "safe", or "native".
	Tier vliw.Tier `json:"tier"`
	// Fast reports Tier is at least "fast". Deprecated: read Tier.
	Fast bool `json:"fast"`
	// Safe reports Tier is at least "safe". Deprecated: read Tier.
	Safe   bool     `json:"safe,omitempty"`
	Exit   int32    `json:"exit"`
	Output string   `json:"output"`
	Stats  RunStats `json:"stats"`
}

// LintFinding is the wire form of one schedcheck finding.
type LintFinding struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Word     int    `json:"word"`
	Beat     int    `json:"beat"`
	Unit     string `json:"unit,omitempty"`
	Func     string `json:"func,omitempty"`
	Line     int    `json:"line,omitempty"`
	Msg      string `json:"msg"`
}

// LintResponse reports a static verification.
type LintResponse struct {
	Key       string        `json:"key"`
	Cached    bool          `json:"cached"`
	Clean     bool          `json:"clean"`
	Errors    int           `json:"errors"`
	Warnings  int           `json:"warnings"`
	Words     int           `json:"words"`
	Reachable int           `json:"reachable"`
	Findings  []LintFinding `json:"findings,omitempty"`
}

// ErrorPos is a source position in an error response.
type ErrorPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// ErrorBody is the uniform error envelope: every non-2xx response carries
// {"error": {...}}. Compile diagnostics keep their position structured so
// clients can point at the offending line without re-parsing "file:l:c:".
type ErrorBody struct {
	Kind string    `json:"kind"` // "compile", "capacity", "timeout", "saturated", "bad_request", "run"
	Msg  string    `json:"msg"`
	Pos  *ErrorPos `json:"pos,omitempty"`
}

// Config configures a Server.
type Config struct {
	// CacheBytes budgets the artifact cache (default 256 MiB).
	CacheBytes int64
	// RunCacheEntries bounds the memoized run results (default 4096).
	RunCacheEntries int
	// MaxInflight bounds admitted requests; past it the server answers
	// 429 immediately (default 64).
	MaxInflight int
	// CompileTimeout and RunTimeout cap each request phase (defaults 30s
	// and 60s). The client can only shorten them, via request context.
	CompileTimeout time.Duration
	RunTimeout     time.Duration
	// Parallelism is the backend worker pool per compilation (0 = one
	// worker per CPU).
	Parallelism int
	// MaxSourceBytes rejects oversized programs with 413 (default 1 MiB).
	MaxSourceBytes int64
	// SnapshotBytes budgets the in-RAM resume-snapshot store (default
	// 64 MiB). A run that exceeds RunTimeout is checkpointed and answered
	// with 202 + a resume token instead of 504; POST /resume continues it
	// under a fresh deadline. Negative disables checkpointing entirely,
	// restoring the plain-504 behavior.
	SnapshotBytes int64
	// SnapshotDir, when set, spills every stored snapshot to disk (atomic
	// write+rename) and re-indexes surviving files on startup, so resume
	// tokens outlive a crash or SIGKILL of the server process.
	SnapshotDir string
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.RunCacheEntries == 0 {
		c.RunCacheEntries = 4096
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.CompileTimeout == 0 {
		c.CompileTimeout = 30 * time.Second
	}
	if c.RunTimeout == 0 {
		c.RunTimeout = 60 * time.Second
	}
	if c.MaxSourceBytes == 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.SnapshotBytes == 0 {
		c.SnapshotBytes = 64 << 20
	}
	return c
}

// Server is the compile-and-execute service. Create one with New and mount
// it (it implements http.Handler).
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	metrics   *Metrics
	artifacts *artifactCache
	runs      *runCache
	flight    *flightGroup
	admit     chan struct{}
	machines  sync.Pool
	snapshots *snapshotStore // nil when checkpointing is disabled
	draining  atomic.Bool
}

// New builds a Server with its caches and machine pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := &Metrics{}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		metrics:   m,
		artifacts: newArtifactCache(cfg.CacheBytes, m),
		runs:      newRunCache(cfg.RunCacheEntries, m),
		flight:    newFlightGroup(),
		admit:     make(chan struct{}, cfg.MaxInflight),
		snapshots: newSnapshotStore(cfg.SnapshotBytes, cfg.SnapshotDir, m),
	}
	s.machines.New = func() any { return new(vliw.Machine) }
	s.mux.HandleFunc("/compile", s.handleCompile)
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/runmany", s.handleRunMany)
	s.mux.HandleFunc("/resume", s.handleResume)
	s.mux.HandleFunc("/lint", s.handleLint)
	s.mux.HandleFunc("/metrics", m.serveHTTP)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Metrics exposes the server's counters (primarily so cmd/tracesrv can
// publish them under expvar's global namespace, and tests can assert on
// them without scraping JSON).
func (s *Server) Metrics() *Metrics { return s.metrics }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// retryAfterSeconds is the backoff hint on 429 responses. Admitted requests
// clear in well under a second except for cold compiles of pathological
// sources, so one second is long enough for a slot to open and short enough
// that honest clients don't idle.
const retryAfterSeconds = 1

// admitRequest implements admission control: a non-blocking semaphore
// acquire. Refusing immediately at capacity keeps queueing at the load
// balancer, where there is context to shed load, instead of inside the
// server where a queued request would just age into its deadline. A
// rejection carries a Retry-After hint and is counted both globally
// (Saturated) and on the rejecting endpoint (ep.Rejected).
func (s *Server) admitRequest(w http.ResponseWriter, ep *endpointMetrics) (release func(), ok bool) {
	select {
	case s.admit <- struct{}{}:
		s.metrics.InFlight.Add(1)
		return func() {
			s.metrics.InFlight.Add(-1)
			<-s.admit
		}, true
	default:
		s.metrics.Saturated.Add(1)
		ep.Rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, ErrorBody{
			Kind: "saturated",
			Msg:  fmt.Sprintf("server at capacity (%d requests in flight)", s.cfg.MaxInflight),
		})
		return nil, false
	}
}

// artifact resolves src×options to a compiled artifact: cache hit,
// join of an in-flight compile, or a fresh pipeline execution.
func (s *Server) artifact(ctx context.Context, key, src string, o Options) (art *core.Artifact, cached, joined bool, err error) {
	if art, ok := s.artifacts.get(key); ok {
		return art, true, false, nil
	}
	// A joined flight can report the shared compile's cancellation (its
	// last waiter left just as we arrived) even though our own context is
	// healthy; retry — the next attempt starts a fresh compile.
	for {
		art, joined, err = s.flight.do(ctx, key, func(cctx context.Context) (*core.Artifact, error) {
			a, err := core.Build(cctx, src, o.toCore(s.cfg.Parallelism))
			if err != nil {
				return nil, err
			}
			s.artifacts.add(key, a)
			return a, nil
		})
		if joined {
			s.metrics.FlightJoins.Add(1)
		}
		if err != nil && joined && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			continue
		}
		return art, false, joined, err
	}
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Compile.Requests.Add(1)
	var req CompileRequest
	if !s.decode(w, r, &req.Source, &req) {
		return
	}
	release, ok := s.admitRequest(w, &s.metrics.Compile)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.CompileTimeout)
	defer cancel()

	key := Key(req.Source, req.Options)
	art, cached, joined, err := s.artifact(ctx, key, req.Source, req.Options)
	if err != nil {
		s.writeCompileError(w, err)
		return
	}
	res := art.Result()
	fixed, packed, ops := res.Image.CodeSizes()
	s.metrics.Compile.Latency.observe(time.Since(start))
	writeJSON(w, http.StatusOK, CompileResponse{
		Key: key, Cached: cached, Joined: joined,
		Machine: res.Image.Cfg.Name,
		Instrs:  len(res.Image.Instrs), Ops: int64(ops),
		FixedBytes: fixed, PackedBytes: packed,
		Attempts:  res.Attempts,
		CompileMs: time.Since(start).Milliseconds(),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Run.Requests.Add(1)
	var req RunRequest
	if !s.decode(w, r, &req.Source, &req) {
		return
	}
	tier, err := req.Run.tier()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Msg: err.Error()})
		return
	}
	release, ok := s.admitRequest(w, &s.metrics.Run)
	if !ok {
		return
	}
	defer release()

	key := Key(req.Source, req.Options)
	cctx, cancelCompile := context.WithTimeout(r.Context(), s.cfg.CompileTimeout)
	art, cachedBuild, _, err := s.artifact(cctx, key, req.Source, req.Options)
	cancelCompile()
	if err != nil {
		s.writeCompileError(w, err)
		return
	}

	rkey := runKey(key, tier, req.Run.MaxCycles)
	var out core.ExitResult
	cachedResult := false
	if !req.Run.NoCache {
		out, cachedResult = s.runs.get(rkey)
	}
	if !cachedResult {
		rctx, cancelRun := context.WithTimeout(r.Context(), s.cfg.RunTimeout)
		out, err = s.runArtifact(rctx, art, tier, req.Run.MaxCycles)
		cancelRun()
		if err != nil {
			// A deadline-exceeded run with a captured snapshot is not a
			// failure: checkpoint it and hand back a resume token.
			if s.maybePause(w, r, snapMeta{ArtKey: key, Source: req.Source, Options: req.Options}, out, err) {
				s.metrics.Run.Latency.observe(time.Since(start))
				return
			}
			s.writeRunError(w, err)
			return
		}
		if !req.Run.NoCache {
			s.runs.add(rkey, out)
		}
	}
	s.metrics.Run.Latency.observe(time.Since(start))
	s.metrics.countRunTier(out.Tier)
	writeJSON(w, http.StatusOK, RunResponse{
		Key: key, CachedBuild: cachedBuild, CachedResult: cachedResult,
		Tier: out.Tier, Fast: out.Fast, Safe: out.Safe,
		Exit: out.Exit, Output: out.Output,
		Stats: wireStats(out.Stats),
	})
}

// runArtifact executes the artifact on a pooled machine. The machine goes
// back to the pool on every path — including cancellation: RunContext
// returns at a beat boundary with the machine in a consistent (if
// incomplete) state, and the next Reset re-initializes everything. When
// checkpointing is on, an interrupted run carries its resume snapshot in
// the result alongside the error.
func (s *Server) runArtifact(ctx context.Context, art *core.Artifact, tier vliw.Tier, maxCycles int64) (core.ExitResult, error) {
	m := s.machines.Get().(*vliw.Machine)
	s.metrics.MachinesInUse.Add(1)
	defer func() {
		s.metrics.MachinesInUse.Add(-1)
		s.machines.Put(m)
	}()
	return art.RunOn(ctx, m, core.RunOptions{
		Tier: tier, MaxCycles: maxCycles,
		SnapshotOnInterrupt: s.snapshots != nil,
	})
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Lint.Requests.Add(1)
	var req CompileRequest
	if !s.decode(w, r, &req.Source, &req) {
		return
	}
	release, ok := s.admitRequest(w, &s.metrics.Lint)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.CompileTimeout)
	defer cancel()

	key := Key(req.Source, req.Options)
	art, cached, _, err := s.artifact(ctx, key, req.Source, req.Options)
	if err != nil {
		s.writeCompileError(w, err)
		return
	}
	rep := art.Lint()
	resp := LintResponse{
		Key: key, Cached: cached,
		Clean:    len(rep.Errors()) == 0,
		Errors:   len(rep.Errors()),
		Warnings: len(rep.Warnings()),
		Words:    rep.Words, Reachable: rep.Reachable,
	}
	for _, f := range rep.Findings {
		resp.Findings = append(resp.Findings, LintFinding{
			Check: f.Check, Severity: sevString(f.Sev),
			Word: f.Word, Beat: f.Beat, Unit: f.Unit,
			Func: f.Func, Line: f.Line, Msg: f.Msg,
		})
	}
	s.metrics.Lint.Latency.observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

func sevString(sev schedcheck.Severity) string {
	if sev == schedcheck.Error {
		return "error"
	}
	return "warning"
}

// decode parses the JSON body into dst and enforces the method and source
// size limits. dst must contain a Source field reachable via src pointer.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, src *string, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, ErrorBody{Kind: "bad_request", Msg: "use POST"})
		return false
	}
	// The JSON envelope adds framing overhead on top of the source; 4x
	// plus slack bounds the body without rejecting any legal source.
	body := http.MaxBytesReader(w, r.Body, 4*s.cfg.MaxSourceBytes+4096)
	raw, err := io.ReadAll(body)
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
			Kind: "bad_request", Msg: "request body too large"})
		return false
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{
			Kind: "bad_request", Msg: "malformed JSON: " + err.Error()})
		return false
	}
	if *src == "" {
		writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Msg: "empty source"})
		return false
	}
	if int64(len(*src)) > s.cfg.MaxSourceBytes {
		writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
			Kind: "bad_request",
			Msg:  fmt.Sprintf("source is %d bytes; limit %d", len(*src), s.cfg.MaxSourceBytes)})
		return false
	}
	var wireOpts *Options
	switch d := dst.(type) {
	case *CompileRequest:
		wireOpts = &d.Options
	case *RunRequest:
		wireOpts = &d.Options
	}
	if wireOpts != nil {
		if err := wireOpts.validate(); err != nil {
			writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Msg: err.Error()})
			return false
		}
	}
	return true
}

// writeCompileError maps a compilation failure to its transport status:
// frontend diagnostics and capacity rejections are the client's problem
// (400/422 with structure preserved), deadlines are 504.
func (s *Server) writeCompileError(w http.ResponseWriter, err error) {
	var lerr *lang.Error
	if errors.As(err, &lerr) {
		s.metrics.CompileErrors.Add(1)
		file := lerr.File
		if file == "" {
			file = "input"
		}
		writeError(w, http.StatusBadRequest, ErrorBody{
			Kind: "compile", Msg: lerr.Msg,
			Pos: &ErrorPos{File: file, Line: lerr.Pos.Line, Col: lerr.Pos.Col},
		})
		return
	}
	var ep *tsched.ErrPressure
	var es *tsched.ErrScheduleSize
	if errors.As(err, &ep) || errors.As(err, &es) {
		s.metrics.CompileErrors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, ErrorBody{Kind: "capacity", Msg: err.Error()})
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.Timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, ErrorBody{Kind: "timeout", Msg: err.Error()})
		return
	}
	if errors.Is(err, context.Canceled) {
		// The client went away; nobody is reading this response.
		writeError(w, statusClientClosedRequest, ErrorBody{Kind: "timeout", Msg: err.Error()})
		return
	}
	s.metrics.CompileErrors.Add(1)
	writeError(w, http.StatusBadRequest, ErrorBody{Kind: "compile", Msg: err.Error()})
	return
}

// statusClientClosedRequest is nginx's convention for "the client
// disconnected before the response"; there is no standard code.
const statusClientClosedRequest = 499

func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	var ec *vliw.ErrCanceled
	if errors.As(err, &ec) {
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.Timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, ErrorBody{
				Kind: "timeout",
				Msg:  fmt.Sprintf("run exceeded its deadline: %v", err)})
			return
		}
		writeError(w, statusClientClosedRequest, ErrorBody{Kind: "timeout", Msg: err.Error()})
		return
	}
	writeError(w, http.StatusBadRequest, ErrorBody{Kind: "run", Msg: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	writeJSON(w, status, map[string]ErrorBody{"error": body})
}
