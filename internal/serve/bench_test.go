package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

// BenchmarkServeCachedRun measures steady-state /run throughput on the
// paper's fib workload: the artifact is cached, the run result is memoized,
// so each request is one cache probe plus JSON framing over real HTTP.
// This is the serving layer's headline number — the acceptance floor is
// 1000 req/s — and it is only reachable because compiled artifacts and
// their runs are deterministic and therefore cacheable; the raw simulation
// (818k beats) alone would cap a single CPU near 17 req/s.
func BenchmarkServeCachedRun(b *testing.B) {
	src, err := os.ReadFile("../../examples/fib.mf")
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Parallelism: 8})
	hs := httptest.NewServer(s)
	defer hs.Close()

	body, err := json.Marshal(RunRequest{Source: string(src), Run: RunRequestOptions{Fast: true}})
	if err != nil {
		b.Fatal(err)
	}
	do := func(client *http.Client) error {
		resp, err := client.Post(hs.URL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var rr RunResponse
		return json.NewDecoder(resp.Body).Decode(&rr)
	}
	// Warm the caches: compile once, run once.
	if err := do(http.DefaultClient); err != nil {
		b.Fatal(err)
	}

	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			if err := do(client); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// benchRunMany drives POST /runmany with four distinct cached tenants under
// the given tenancy. Batch results are not memoized, so every request pays
// for real simulation — this benchmark compares the two tenancy modes'
// serving cost on identical work: "contexts" holds one pooled machine and
// time-shares it; "machines" holds four machines and runs them in parallel
// goroutines.
func benchRunMany(b *testing.B, tenancy string) {
	srcs := make([]RunManyProgram, 4)
	for i := range srcs {
		srcs[i].Source = fmt.Sprintf(`
func main() int {
	var s int = %d
	for (var i int = 0; i < 600; i = i + 1) { s = s + i*i + %d }
	print_i(s)
	return s & 255
}`, i, i)
	}
	s := New(Config{Parallelism: 8})
	hs := httptest.NewServer(s)
	defer hs.Close()

	body, err := json.Marshal(RunManyRequest{
		Programs: srcs,
		Run:      RunManyRunOptions{Fast: true, Tenancy: tenancy},
	})
	if err != nil {
		b.Fatal(err)
	}
	do := func(client *http.Client) error {
		resp, err := client.Post(hs.URL+"/runmany", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var rr RunManyResponse
		return json.NewDecoder(resp.Body).Decode(&rr)
	}
	if err := do(http.DefaultClient); err != nil {
		b.Fatal(err) // warm the artifact cache
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			if err := do(client); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(4*float64(b.N)/b.Elapsed().Seconds(), "tenants/s")
}

// BenchmarkServeRunManyContexts: K=4 tenants time-shared on one pooled
// machine per request.
func BenchmarkServeRunManyContexts(b *testing.B) { benchRunMany(b, "contexts") }

// BenchmarkServeRunManyMachines: the same K=4 tenants on four pooled
// machines per request (the pre-contexts serving model).
func BenchmarkServeRunManyMachines(b *testing.B) { benchRunMany(b, "machines") }

// BenchmarkServeColdCompile measures the other end: every request a
// distinct program, every compile a full pipeline execution.
func BenchmarkServeColdCompile(b *testing.B) {
	s := New(Config{Parallelism: 1})
	hs := httptest.NewServer(s)
	defer hs.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := fmt.Sprintf("func main() int { return %d }", i)
		raw, _ := json.Marshal(CompileRequest{Source: src})
		resp, err := http.Post(hs.URL+"/compile", "application/json", bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
