package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"time"

	"github.com/multiflow-repro/trace/internal/vliw"
)

// histBuckets are the latency histogram bucket upper bounds. They are
// log-scale: request latencies span five orders of magnitude between a
// cache-hit run (microseconds) and a cold compile of an unrolled kernel
// (hundreds of milliseconds), so linear buckets would waste all their
// resolution on one end.
const numHistBuckets = 6

var histBuckets = [numHistBuckets]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram built from expvar counters,
// so it is safe for concurrent observation and renders directly into the
// /metrics snapshot.
type histogram struct {
	count   expvar.Int
	sumNs   expvar.Int
	buckets [numHistBuckets + 1]expvar.Int // last bucket = overflow
}

func (h *histogram) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for i, ub := range histBuckets {
		if d <= ub {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[numHistBuckets].Add(1)
}

// snapshot renders the histogram as a JSON-able map: cumulative bucket
// counts keyed by upper bound, plus count and mean.
func (h *histogram) snapshot() map[string]any {
	out := map[string]any{"count": h.count.Value()}
	if n := h.count.Value(); n > 0 {
		out["mean_ms"] = float64(h.sumNs.Value()) / float64(n) / 1e6
	}
	b := map[string]int64{}
	var cum int64
	for i, ub := range histBuckets {
		cum += h.buckets[i].Value()
		b["le_"+ub.String()] = cum
	}
	cum += h.buckets[numHistBuckets].Value()
	b["le_inf"] = cum
	out["buckets"] = b
	return out
}

// Metrics is the server's observable state. Every variable is an expvar so
// concurrent handlers update it without locks; the set is held per-Server
// (not published to the process-global expvar namespace, which would panic
// on duplicate names when tests build several servers) and rendered by the
// /metrics handler. Command tracesrv additionally publishes the snapshot
// globally under "tracesrv" for /debug/vars interop.
type Metrics struct {
	// Artifact cache.
	ArtifactHits      expvar.Int
	ArtifactMisses    expvar.Int
	ArtifactEvictions expvar.Int
	ArtifactBytes     expvar.Int
	ArtifactEntries   expvar.Int
	// Compilations collapsed into an in-flight duplicate instead of
	// compiled again.
	FlightJoins expvar.Int
	// Deterministic run-result cache.
	RunHits   expvar.Int
	RunMisses expvar.Int
	// Admission control and lifecycle.
	InFlight      expvar.Int // requests currently admitted
	Saturated     expvar.Int // requests rejected with 429
	Timeouts      expvar.Int // requests that hit their deadline (504)
	CompileErrors expvar.Int // requests rejected with a diagnostic (400)
	// Machine pool.
	MachinesInUse expvar.Int // machines currently executing a request
	// Completed runs by the execution tier actually taken (cached results
	// included): "checked" ran fully dynamically verified, "fast" took the
	// certified fast path, "safe" ran guard-free under a safety
	// certificate, "native" ran the closure-threaded translation.
	RunsCertChecked expvar.Int
	RunsCertFast    expvar.Int
	RunsCertSafe    expvar.Int
	RunsCertNative  expvar.Int
	// Resume-snapshot store (deadline-paused runs awaiting /resume).
	SnapshotsStored    expvar.Int // checkpoints issued (202 responses)
	SnapshotsResumed   expvar.Int // checkpoints resumed to completion
	SnapshotsRecovered expvar.Int // checkpoints re-indexed from disk at boot
	SnapshotEvictions  expvar.Int // RAM evictions (disk copies survive)
	SnapshotBytes      expvar.Int
	SnapshotEntries    expvar.Int

	// Per-endpoint request counts and latency histograms.
	Compile, Run, RunMany, Resume, Lint endpointMetrics
}

type endpointMetrics struct {
	Requests expvar.Int
	// Rejected counts this endpoint's admission-control rejections (429).
	// Saturated is the cross-endpoint total; the per-endpoint split tells
	// an operator which traffic class is being shed.
	Rejected expvar.Int
	Latency  histogram
}

// countRunTier buckets one completed run (solo or per-tenant) by the
// execution tier it took. The tier comes from the result, not the request:
// a request that fell back (it cannot today — tier selection errors the run
// instead) would be counted at the tier it took.
func (m *Metrics) countRunTier(tier vliw.Tier) {
	switch tier {
	case vliw.TierNative:
		m.RunsCertNative.Add(1)
	case vliw.TierSafe:
		m.RunsCertSafe.Add(1)
	case vliw.TierFast:
		m.RunsCertFast.Add(1)
	default:
		m.RunsCertChecked.Add(1)
	}
}

func (e *endpointMetrics) snapshot() map[string]any {
	return map[string]any{
		"requests": e.Requests.Value(),
		"rejected": e.Rejected.Value(),
		"latency":  e.Latency.snapshot(),
	}
}

// Snapshot renders every metric as one JSON-able tree.
func (m *Metrics) Snapshot() map[string]any {
	return map[string]any{
		"artifact_cache": map[string]any{
			"hits":      m.ArtifactHits.Value(),
			"misses":    m.ArtifactMisses.Value(),
			"evictions": m.ArtifactEvictions.Value(),
			"bytes":     m.ArtifactBytes.Value(),
			"entries":   m.ArtifactEntries.Value(),
		},
		"flight_joins": m.FlightJoins.Value(),
		"run_cache": map[string]any{
			"hits":   m.RunHits.Value(),
			"misses": m.RunMisses.Value(),
		},
		"in_flight":       m.InFlight.Value(),
		"saturated":       m.Saturated.Value(),
		"timeouts":        m.Timeouts.Value(),
		"compile_errors":  m.CompileErrors.Value(),
		"machines_in_use": m.MachinesInUse.Value(),
		"cert_level": map[string]int64{
			"checked": m.RunsCertChecked.Value(),
			"fast":    m.RunsCertFast.Value(),
			"safe":    m.RunsCertSafe.Value(),
			"native":  m.RunsCertNative.Value(),
		},
		"snapshots": map[string]any{
			"stored":    m.SnapshotsStored.Value(),
			"resumed":   m.SnapshotsResumed.Value(),
			"recovered": m.SnapshotsRecovered.Value(),
			"evictions": m.SnapshotEvictions.Value(),
			"bytes":     m.SnapshotBytes.Value(),
			"entries":   m.SnapshotEntries.Value(),
		},
		"endpoints": map[string]any{
			"compile": m.Compile.snapshot(),
			"run":     m.Run.snapshot(),
			"runmany": m.RunMany.snapshot(),
			"resume":  m.Resume.snapshot(),
			"lint":    m.Lint.snapshot(),
		},
	}
}

func (m *Metrics) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.Snapshot()); err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}
