package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// Three distinct tenant programs (distinct outputs and exits, same default
// machine options) for the batch endpoint tests.
var tenantSrcs = []string{
	`func main() int {
		var s int = 0
		for (var i int = 0; i < 300; i = i + 1) { s = s + i }
		print_i(s)
		return s & 255
	}`,
	`var a [256]float
	func main() int {
		for (var i int = 0; i < 256; i = i + 1) { a[i] = float(i) }
		var s float = 0.0
		for (var i int = 0; i < 256; i = i + 1) { s = s + a[i] }
		print_f(s)
		return int(s) & 511
	}`,
	`func main() int {
		var x int = 9
		for (var i int = 0; i < 150; i = i + 1) { x = (x * 13 + 7) & 4095 }
		print_i(x)
		return x & 31
	}`,
}

func runManyReq(tenancy string, fast bool) RunManyRequest {
	req := RunManyRequest{Run: RunManyRunOptions{Tenancy: tenancy, Fast: fast}}
	for _, src := range tenantSrcs {
		req.Programs = append(req.Programs, RunManyProgram{Source: src})
	}
	return req
}

// TestRunManyContextsMatchesSoloRuns: the batch endpoint's per-tenant
// results are identical to what /run reports for each program alone, and
// the scheduler summary is present and balanced.
func TestRunManyContextsMatchesSoloRuns(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})

	solo := make([]RunResponse, len(tenantSrcs))
	for i, src := range tenantSrcs {
		resp, raw := post(t, hs.URL+"/run", RunRequest{Source: src, Run: RunRequestOptions{Fast: true}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solo run %d: status %d: %s", i, resp.StatusCode, raw)
		}
		solo[i] = decode[RunResponse](t, raw)
	}

	resp, raw := post(t, hs.URL+"/runmany", runManyReq("contexts", true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runmany: status %d: %s", resp.StatusCode, raw)
	}
	batch := decode[RunManyResponse](t, raw)
	if batch.Tenancy != "contexts" || len(batch.Results) != len(tenantSrcs) {
		t.Fatalf("response shape: %+v", batch)
	}
	if batch.Sched == nil || batch.Sched.Contexts != len(tenantSrcs) || batch.Sched.TotalBeats == 0 {
		t.Fatalf("missing or empty scheduler summary: %+v", batch.Sched)
	}
	for i, r := range batch.Results {
		if r.Error != "" {
			t.Fatalf("tenant %d: %s", i, r.Error)
		}
		if r.Key != solo[i].Key {
			t.Errorf("tenant %d key %q != solo key %q (cache split)", i, r.Key, solo[i].Key)
		}
		if !r.CachedBuild {
			t.Errorf("tenant %d recompiled a cached artifact", i)
		}
		if r.Exit != solo[i].Exit || r.Output != solo[i].Output || r.Stats != solo[i].Stats {
			t.Errorf("tenant %d diverges from solo /run:\n batch: %+v\n solo:  %+v", i, r, solo[i])
		}
		if !r.Fast {
			t.Errorf("tenant %d not on the fast path despite fast=true", i)
		}
	}
}

// TestRunManyMachinesTenancy: the comparison mode runs every tenant on its
// own pooled machine and returns the same per-tenant results, without a
// scheduler summary.
func TestRunManyMachinesTenancy(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})

	resp, raw := post(t, hs.URL+"/runmany", runManyReq("contexts", false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("contexts: status %d: %s", resp.StatusCode, raw)
	}
	ctxBatch := decode[RunManyResponse](t, raw)

	resp, raw = post(t, hs.URL+"/runmany", runManyReq("machines", false))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("machines: status %d: %s", resp.StatusCode, raw)
	}
	machBatch := decode[RunManyResponse](t, raw)
	if machBatch.Tenancy != "machines" || machBatch.Sched != nil {
		t.Fatalf("machines-tenancy shape: %+v", machBatch)
	}
	for i := range ctxBatch.Results {
		c, m := ctxBatch.Results[i], machBatch.Results[i]
		if c.Exit != m.Exit || c.Output != m.Output || c.Stats != m.Stats {
			t.Errorf("tenant %d: tenancy changed the results:\n contexts: %+v\n machines: %+v", i, c, m)
		}
	}
}

// TestRunManyPerTenantError: a trapping tenant reports in its own slot; the
// batch stays 200 and the other tenants complete.
func TestRunManyPerTenantError(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})
	req := RunManyRequest{Programs: []RunManyProgram{
		{Source: tenantSrcs[0]},
		{Source: `func main() int {
			var d int = 0
			for (var i int = 0; i < 10; i = i + 1) { d = i - i }
			return 3 / d
		}`},
	}}
	resp, raw := post(t, hs.URL+"/runmany", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	batch := decode[RunManyResponse](t, raw)
	if batch.Results[0].Error != "" || batch.Results[0].Output == "" {
		t.Errorf("healthy tenant disturbed: %+v", batch.Results[0])
	}
	if batch.Results[1].Error == "" {
		t.Error("trapping tenant reported no error")
	}
}

// TestRunManyBadRequests: shape validation for the batch endpoint.
func TestRunManyBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{Parallelism: 1})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no programs", RunManyRequest{}, http.StatusBadRequest},
		{"empty source", RunManyRequest{Programs: []RunManyProgram{{Source: ""}}}, http.StatusBadRequest},
		{"bad tenancy", RunManyRequest{
			Programs: []RunManyProgram{{Source: tenantSrcs[0]}},
			Run:      RunManyRunOptions{Tenancy: "threads"}}, http.StatusBadRequest},
		{"negative quantum", RunManyRequest{
			Programs: []RunManyProgram{{Source: tenantSrcs[0]}},
			Run:      RunManyRunOptions{Quantum: -1}}, http.StatusBadRequest},
		{"bad options", RunManyRequest{
			Programs: []RunManyProgram{{Source: tenantSrcs[0]}},
			Options:  Options{Pairs: 3}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, raw := post(t, hs.URL+"/runmany", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.want, raw)
		}
	}
	// Too many programs.
	var big RunManyRequest
	for i := 0; i <= maxRunManyPrograms; i++ {
		big.Programs = append(big.Programs, RunManyProgram{Source: tenantSrcs[0]})
	}
	if resp, raw := post(t, hs.URL+"/runmany", big); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d: %s", resp.StatusCode, raw)
	}
}

// TestMetricsIncludeRunMany: the /metrics tree carries the new endpoint and
// its rejected counter.
func TestMetricsIncludeRunMany(t *testing.T) {
	s, hs := newTestServer(t, Config{Parallelism: 1})
	post(t, hs.URL+"/runmany", RunManyRequest{Programs: []RunManyProgram{{Source: tenantSrcs[0]}}})
	resp, raw := post(t, hs.URL+"/runmany", RunManyRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("probe: %d %s", resp.StatusCode, raw)
	}
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var tree map[string]any
	if err := json.NewDecoder(mresp.Body).Decode(&tree); err != nil {
		t.Fatal(err)
	}
	eps, ok := tree["endpoints"].(map[string]any)
	if !ok {
		t.Fatalf("no endpoints in metrics: %v", tree)
	}
	rm, ok := eps["runmany"].(map[string]any)
	if !ok {
		t.Fatalf("no runmany endpoint metrics: %v", eps)
	}
	if rm["requests"].(float64) < 2 {
		t.Errorf("runmany requests = %v, want >= 2", rm["requests"])
	}
	if _, ok := rm["rejected"]; !ok {
		t.Error("runmany metrics missing rejected counter")
	}
	if s.Metrics().RunMany.Requests.Value() < 2 {
		t.Error("RunMany.Requests not counted")
	}
}
