package baseline

import (
	"testing"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/lang"
	"github.com/multiflow-repro/trace/internal/mach"
)

const daxpy = `
var x [64]float
var y [64]float
func main() int {
	for (var i int = 0; i < 64; i = i + 1) { x[i] = float(i); y[i] = 1.0 }
	var a float = 2.0
	for (var i int = 0; i < 64; i = i + 1) { y[i] = y[i] + a * x[i] }
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) { s = s + y[i] }
	print_f(s)
	return 0
}`

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScalarMatchesInterp(t *testing.T) {
	p := compile(t, daxpy)
	in := &ir.Interp{Prog: p}
	wv, wo, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	res, v, out, err := Scalar(compile(t, daxpy), mach.Trace28())
	if err != nil {
		t.Fatal(err)
	}
	if v != wv || out != wo {
		t.Fatalf("scalar changed semantics: %d %q vs %d %q", v, out, wv, wo)
	}
	if res.Beats <= res.Ops {
		t.Errorf("scalar with interlocks should take > 1 beat/op: %d beats, %d ops", res.Beats, res.Ops)
	}
	if res.FloatOps == 0 || res.MemRefs == 0 || res.Branches == 0 {
		t.Errorf("counters not populated: %+v", res)
	}
}

func TestScoreboardBetween1xAnd4x(t *testing.T) {
	cfg := mach.Trace28()
	sc, _, _, err := Scalar(compile(t, daxpy), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, v, out, err := Scoreboard(compile(t, daxpy), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out == "" || v != 0 {
		t.Fatalf("scoreboard semantics: %d %q", v, out)
	}
	speedup := float64(sc.Beats) / float64(sb.Beats)
	// §3 / Acosta: "only a factor of 2 or 3 speedup" — allow 1.2..4.5 for
	// the shape check
	if speedup < 1.2 || speedup > 4.5 {
		t.Errorf("scoreboard speedup = %.2fx, expected the 2-3x ceiling shape", speedup)
	}
	t.Logf("scalar %d beats, scoreboard %d beats: %.2fx", sc.Beats, sb.Beats, speedup)
}

func TestScoreboardStopsAtBranches(t *testing.T) {
	// A branch-dense program should show almost no scoreboard win.
	branchy := `
func main() int {
	var s int = 0
	for (var i int = 0; i < 200; i = i + 1) {
		if (s % 2 == 0) { s = s + 3 } else { s = s - 1 }
	}
	return s
}`
	cfg := mach.Trace28()
	sc, _, _, err := Scalar(compile(t, branchy), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sb, _, _, err := Scoreboard(compile(t, branchy), cfg)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(sc.Beats) / float64(sb.Beats)
	if speedup > 2.5 {
		t.Errorf("branch-dense scoreboard speedup %.2fx too high: lookahead must stop at branches", speedup)
	}
}

func TestVAXSize(t *testing.T) {
	p := compile(t, daxpy)
	sz := VAXSize(p)
	ops := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			ops += len(b.Ops)
		}
	}
	if sz <= 0 {
		t.Fatal("zero size")
	}
	perOp := float64(sz) / float64(ops)
	// a tight CISC encodes a high-level op in a few bytes
	if perOp < 1 || perOp > 6 {
		t.Errorf("VAX model: %.1f bytes/op out of plausible range", perOp)
	}
	// deterministic
	if sz != VAXSize(p) {
		t.Error("VAXSize not deterministic")
	}
}

func TestScalarCountsCalls(t *testing.T) {
	rec := `
func f(n int) int {
	if (n <= 0) { return 0 }
	return f(n-1) + n
}
func main() int { return f(10) }`
	res, v, _, err := Scalar(compile(t, rec), mach.Trace7())
	if err != nil {
		t.Fatal(err)
	}
	if v != 55 {
		t.Fatalf("f(10) = %d", v)
	}
	if res.Branches < 20 {
		t.Errorf("expected calls+returns in branch count, got %d", res.Branches)
	}
}

func TestScoreboardWideMonotone(t *testing.T) {
	src := `
var a [64]float
func main() int {
	var s float = 0.0
	for (var i int = 0; i < 64; i = i + 1) { a[i] = float(i) }
	for (var r int = 0; r < 4; r = r + 1) {
		for (var i int = 0; i < 64; i = i + 1) { s = s + a[i] * 2.0 }
	}
	return int(s) & 65535
}`
	prog := compile(t, src)
	cfg := mach.Trace28()
	var prev int64
	for _, w := range []int{1, 2, 4, 8} {
		r, v, _, err := ScoreboardWide(prog, cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		if v == 0 {
			t.Fatal("wrong answer")
		}
		if prev != 0 && r.Beats > prev {
			t.Errorf("width %d slower than narrower issue: %d > %d", w, r.Beats, prev)
		}
		prev = r.Beats
	}
	// width 1 equals the classic entry point
	r1, _, _, err := Scoreboard(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rw, _, _, err := ScoreboardWide(prog, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Beats != rw.Beats {
		t.Errorf("Scoreboard (%d) != ScoreboardWide(1) (%d)", r1.Beats, rw.Beats)
	}
}
