// Package baseline implements the comparison machines of the paper's
// argument: a sequential scalar processor built of the same implementation
// technology (the "conventional machine" of §1), a dynamically scheduled
// "scoreboard" machine whose lookahead stops at basic-block boundaries
// (§3's Tomasulo/CDC-6600 discussion and the Acosta 2–3× result), and a
// tightly-encoded CISC code-size model standing in for the VAX object code
// of §9. All run the same IR the TRACE compiler consumes, so comparisons
// are apples-to-apples on work performed.
package baseline

import (
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// Result reports a baseline timing simulation.
type Result struct {
	Beats    int64
	Ops      int64
	FloatOps int64
	Branches int64
	MemRefs  int64
}

// MIPS returns achieved operations per second in millions.
func (r Result) MIPS() float64 {
	if r.Beats == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.Beats) * mach.BeatNs * 1e-3)
}

// opLatency mirrors the TRACE's functional-unit latencies (§6.1, §6.2):
// the baselines are built of the same implementation technology.
func opLatency(cfg mach.Config, o *ir.Op) int {
	switch o.Kind {
	case ir.Load, ir.LoadSpec:
		return cfg.LatLoad
	case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return cfg.LatFAdd
	case ir.FMul:
		return cfg.LatFMul
	case ir.FDiv:
		return cfg.LatFDiv
	case ir.Mul:
		return 4
	case ir.Div, ir.Rem:
		return 30
	case ir.ConstF:
		return 2
	}
	return cfg.LatIALU
}

func isFloat(k ir.OpKind) bool {
	switch k {
	case ir.FAdd, ir.FSub, ir.FMul, ir.FDiv:
		return true
	}
	return false
}

// Scalar simulates the program on an in-order, single-issue machine with
// full interlocks: one operation issues per beat, stalling until its
// operands' pipelines have drained. Branches redirect in one beat. This is
// the machine the paper's factor-of-ten claims are measured against.
func Scalar(prog *ir.Program, cfg mach.Config) (Result, int32, string, error) {
	return ScalarBudget(prog, cfg, 0)
}

// ScalarBudget is Scalar with an explicit interpreter step budget (0 uses
// the interpreter default). The differential fuzz oracle uses a small
// budget so a generator bug cannot wedge a fuzz worker for minutes.
func ScalarBudget(prog *ir.Program, cfg mach.Config, stepLimit int64) (Result, int32, string, error) {
	var res Result
	var clock int64 // next free issue beat
	ready := map[regKey]int64{}
	depth := 0

	in := &ir.Interp{Prog: prog, StepLimit: stepLimit}
	in.OnOp = func(f *ir.Func, block int, o *ir.Op) {
		switch o.Kind {
		case ir.Nop:
			return
		case ir.Call:
			// the call itself: jump-and-link plus argument setup charged as
			// one op per argument
			clock += int64(len(o.Args)) + 1
			depth++
			res.Ops += int64(len(o.Args)) + 1
			res.Branches++
			return
		case ir.Ret:
			clock += 2 // reload/return
			depth--
			res.Ops += 2
			res.Branches++
			return
		}
		issue := clock
		for _, a := range o.Args {
			if t, ok := ready[regKey{depth, a}]; ok && t > issue {
				issue = t
			}
		}
		res.Ops++
		if o.Dst != ir.None {
			ready[regKey{depth, o.Dst}] = issue + int64(opLatency(cfg, o))
		}
		if isFloat(o.Kind) {
			res.FloatOps++
		}
		switch o.Kind {
		case ir.Load, ir.LoadSpec, ir.Store:
			res.MemRefs++
		case ir.Br, ir.CondBr:
			res.Branches++
		}
		clock = issue + 1
	}
	v, out, err := in.Run()
	res.Beats = clock
	return res, v, out, err
}

type regKey struct {
	depth int
	reg   ir.Reg
}
