package baseline

import (
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/mach"
)

// Scoreboard simulates a dynamically scheduled machine in the style of the
// IBM 360/91 (§3): in-order issue of one operation per beat, register
// renaming à la Tomasulo (so WAW/WAR do not stall), out-of-order completion
// at the functional units — and, decisively, issue stops at every
// conditional branch until it resolves, because "the hardware cannot see
// past basic blocks in order to find usable concurrency". What remains is
// latency hiding within one block, which is why Acosta et al. put the
// ceiling of this approach at a factor of 2 or 3; experiment E2 reproduces
// that shape.
func Scoreboard(prog *ir.Program, cfg mach.Config) (Result, int32, string, error) {
	return ScoreboardWide(prog, cfg, 1)
}

// ScoreboardWide is Scoreboard with a configurable in-order issue width:
// up to width operations enter reservation stations per beat. Acosta's
// machines issued more than one op per cycle, which is where the top of the
// "factor of 2 or 3" band comes from; the block-boundary stall still caps
// the win regardless of width.
func ScoreboardWide(prog *ir.Program, cfg mach.Config, width int) (Result, int32, string, error) {
	if width < 1 {
		width = 1
	}
	var res Result
	ready := map[regKey]int64{} // operand available (write completes)
	depth := 0

	// earliest-free beat per functional unit instance; two memory pipes
	// (loads and stores could proceed in parallel on the 360/91)
	ialu := make([]int64, 2*cfg.Pairs)
	fa := make([]int64, cfg.Pairs)
	fm := make([]int64, cfg.Pairs)
	memu := make([]int64, 2)

	var clock int64     // in-order issue pointer
	var slot int        // ops already issued in the current beat
	var lastStore int64 // conservative in-flight memory ordering

	unitFor := func(k ir.OpKind) []int64 {
		switch k {
		case ir.Load, ir.LoadSpec, ir.Store:
			return memu
		case ir.FAdd, ir.FSub, ir.FNeg, ir.ItoF, ir.FtoI,
			ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
			return fa
		case ir.FMul, ir.FDiv:
			return fm
		}
		return ialu
	}

	in := &ir.Interp{Prog: prog}
	in.OnOp = func(f *ir.Func, block int, o *ir.Op) {
		switch o.Kind {
		case ir.Nop:
			return
		case ir.Call:
			res.Ops += int64(len(o.Args)) + 1
			res.Branches++
			depth++
			clock += int64(len(o.Args)) + 2
			slot = 0
			return
		case ir.Ret:
			res.Ops += 2
			res.Branches++
			depth--
			clock += 2
			slot = 0
			return
		}
		// the issue slot itself: width ops share a beat
		slot++
		if slot >= width {
			clock++
			slot = 0
		}
		// Reservation stations: issue hands the op to a station and moves
		// on; execution starts when the operands arrive and the (pipelined)
		// unit is free.
		units := unitFor(o.Kind)
		best := 0
		for i := 1; i < len(units); i++ {
			if units[i] < units[best] {
				best = i
			}
		}
		start := clock
		if units[best] > start {
			start = units[best]
		}
		for _, a := range o.Args {
			if t, ok := ready[regKey{depth, a}]; ok && t > start {
				start = t
			}
		}
		lat := int64(opLatency(cfg, o))
		switch o.Kind {
		case ir.Load, ir.LoadSpec:
			if lastStore > start {
				start = lastStore
			}
			res.MemRefs++
		case ir.Store:
			if lastStore > start {
				start = lastStore
			}
			lastStore = start + 1
			res.MemRefs++
		}
		units[best] = start + 1 // pipelined: a new op every beat
		res.Ops++
		if isFloat(o.Kind) {
			res.FloatOps++
		}
		if o.Dst != ir.None {
			ready[regKey{depth, o.Dst}] = start + lat
		}
		switch o.Kind {
		case ir.Br, ir.CondBr:
			res.Branches++
			// the block boundary: issue cannot proceed past an unresolved
			// branch
			if start+1 > clock {
				clock = start + 1
				slot = 0
			}
		}
	}
	v, out, err := in.Run()
	res.Beats = clock + 1
	return res, v, out, err
}
