package baseline

import "github.com/multiflow-repro/trace/internal/ir"

// VAXSize models the object-code size of a program on a tightly encoded
// two/three-address CISC of the VAX's generality, which §9 uses as the
// density yardstick ("the code expansion per operation is probably around
// 30-50% when compared to a tightly encoded machine like the VAX").
//
// The model charges, per IR operation, one opcode byte plus VAX-style
// operand specifiers: a register specifier is 1 byte; a short literal is 1
// byte; a 32-bit immediate is 5; a displacement(register) memory reference
// is 2 bytes (byte displacement) — array references through computed
// addresses fold the index arithmetic into the rich addressing modes, which
// is exactly the density advantage the paper concedes to the VAX. Constant
// materializations and address arithmetic feeding a memory operand are
// therefore charged at zero: the consumer pays for the mode instead.
func VAXSize(p *ir.Program) int64 {
	var bytes int64
	for _, f := range p.Funcs {
		// addrFeeder marks registers only used to form effective addresses
		// or hold immediates; their defs are folded into consumers.
		folded := foldableRegs(f)
		for _, b := range f.Blocks {
			for i := range b.Ops {
				o := &b.Ops[i]
				bytes += vaxOpBytes(o, folded)
			}
		}
		// procedure entry mask & frame setup
		bytes += 4
	}
	return bytes
}

// foldableRegs finds single-use registers defined by constants or
// address-forming arithmetic whose only consumer is a memory operation or
// an operand leg — the VAX encodes those inside the consumer's operand
// specifiers.
func foldableRegs(f *ir.Func) map[ir.Reg]bool {
	uses := map[ir.Reg]int{}
	def := map[ir.Reg]*ir.Op{}
	for _, b := range f.Blocks {
		for i := range b.Ops {
			o := &b.Ops[i]
			for _, a := range o.Args {
				uses[a]++
			}
			if o.Dst != ir.None {
				def[o.Dst] = o
			}
		}
	}
	folded := map[ir.Reg]bool{}
	for r, d := range def {
		if uses[r] != 1 {
			continue
		}
		switch d.Kind {
		case ir.ConstI, ir.GAddr, ir.FrAddr:
			folded[r] = true
		case ir.Shl:
			// index scaling folds into the VAX's indexed addressing mode
			folded[r] = true
		}
	}
	return folded
}

func vaxOpBytes(o *ir.Op, folded map[ir.Reg]bool) int64 {
	const (
		opc     = 1
		regSpec = 1
		memSpec = 2 // displacement(Rn), byte displacement
		brDisp  = 2
	)
	if o.Dst != ir.None && folded[o.Dst] {
		return 0 // encoded inside the consumer's operand specifier
	}
	switch o.Kind {
	case ir.Nop:
		return 0
	case ir.ConstI:
		return opc + regSpec + 1 // MOVL short-literal, Rn
	case ir.ConstF:
		return opc + regSpec + 8 // MOVD imm64, Rn
	case ir.GAddr, ir.FrAddr:
		return opc + regSpec + memSpec // MOVAL disp(Rx), Rn
	case ir.Mov:
		return opc + 2*regSpec
	case ir.Load, ir.LoadSpec:
		return opc + memSpec + regSpec // MOVL disp(Rx)[Ri], Rn
	case ir.Store:
		return opc + regSpec + memSpec
	case ir.Br:
		return opc + brDisp
	case ir.CondBr:
		return opc + brDisp // the compare supplied the condition codes
	case ir.Call:
		return opc + 1 + int64(len(o.Args))*regSpec + brDisp // CALLS #n, dst
	case ir.Ret:
		return opc
	case ir.Select:
		// no select: a conditional branch around a move
		return 2*opc + brDisp + 2*regSpec
	case ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE:
		return opc + 2*regSpec // CMPL sets condition codes
	default:
		// three-operand register arithmetic: ADDL3 ra, rb, rc
		return opc + 3*regSpec
	}
}
