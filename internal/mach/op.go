package mach

import (
	"fmt"

	"github.com/multiflow-repro/trace/internal/ir"
)

// Machine-level opcodes extend the IR op kinds: arithmetic, compares,
// SELECT, Load/LoadSpec/Store, Mov (which at machine level may move across
// banks via the buses and dest_bank field), and ConstF (materialized on an F
// unit over two beats) keep their IR kinds. Control and runtime interface
// ops below exist only at machine level.
const (
	// OpJmp is an unconditional PC-relative jump.
	OpJmp ir.OpKind = 64 + iota
	// OpBrT branches to Target if the selected branch-bank bit is true.
	// Multiple OpBrT in one instruction arbitrate by Prio (§6.5.2).
	OpBrT
	// OpJmpR jumps to the address in an integer register (returns).
	OpJmpR
	// OpCall writes the return address to its Dst (the link register by
	// convention) and jumps to Target.
	OpCall
	// OpMovSF moves a value into the store file on an F board (§6.2: store
	// data comes from the Store Register File).
	OpMovSF
	// OpSyscall invokes a runtime service (print_i / print_f) identified by
	// Imm, reading its argument from the convention register. It models the
	// kernel trap interface; timing is charged by the simulator.
	OpSyscall
	// OpHalt stops the machine; main's return value is in the convention
	// return register.
	OpHalt
)

func init() {
	// The machine opcodes are appended after the IR range; keep them
	// disjoint.
	if ir.CondBr >= 64 {
		panic("mach: ir.OpKind range collides with machine opcodes")
	}
}

// OpName returns a mnemonic for either an IR or machine-level opcode.
func OpName(k ir.OpKind) string {
	switch k {
	case OpJmp:
		return "jmp"
	case OpBrT:
		return "brt"
	case OpJmpR:
		return "jmpr"
	case OpCall:
		return "call"
	case OpMovSF:
		return "movsf"
	case OpSyscall:
		return "syscall"
	case OpHalt:
		return "halt"
	}
	return k.String()
}

// Bank identifies a physical register bank (the dest_bank field of §6.1).
type Bank uint8

const (
	BankNone Bank = iota
	BankI         // integer general registers (64 x 32-bit per I board)
	BankF         // floating registers (32 x 64-bit per F board)
	BankSF        // store file (per F board)
	BankB         // branch bank (7 x 1-bit per pair)
)

func (b Bank) String() string {
	switch b {
	case BankNone:
		return "-"
	case BankI:
		return "i"
	case BankF:
		return "f"
	case BankSF:
		return "sf"
	case BankB:
		return "bb"
	}
	return "?"
}

// PReg is a physical register: a bank, the board (pair index) holding it,
// and the index within the bank.
type PReg struct {
	Bank  Bank
	Board uint8
	Idx   uint8
}

// Valid reports whether the register names a real location.
func (r PReg) Valid() bool { return r.Bank != BankNone }

func (r PReg) String() string {
	if !r.Valid() {
		return "_"
	}
	return fmt.Sprintf("%s%d.%d", r.Bank, r.Board, r.Idx)
}

// Calling convention: everything flows through board 0 (documented in
// DESIGN.md; the paper's machine has no architectural convention — it is the
// compiler's choice, §8.4).
var (
	RegSP    = PReg{BankI, 0, 1} // stack pointer
	RegLR    = PReg{BankI, 0, 2} // link register
	RegRVI   = PReg{BankI, 0, 3} // integer return value
	RegRVF   = PReg{BankF, 0, 1} // float return value
	ArgIBase = 4                 // integer args in i0.4..i0.11
	ArgFBase = 2                 // float args in f0.2..f0.9
	MaxArgs  = 8
)

// Arg is a machine operand: a register or an immediate (§6.1: each ALU can
// take a 6-, 17-, or 32-bit immediate on one operand leg).
type Arg struct {
	IsImm bool
	Imm   int32
	Reg   PReg
	// Sym, when non-empty on an immediate, is a relocation: the linker
	// replaces Imm with the symbol's address (globals) at link time.
	Sym string
}

// ImmArg returns an immediate operand.
func ImmArg(v int32) Arg { return Arg{IsImm: true, Imm: v} }

// RegArg returns a register operand.
func RegArg(r PReg) Arg { return Arg{Reg: r} }

// SymArg returns a relocated-immediate operand.
func SymArg(sym string) Arg { return Arg{IsImm: true, Sym: sym} }

func (a Arg) String() string {
	if a.IsImm {
		if a.Sym != "" {
			return "@" + a.Sym
		}
		return fmt.Sprintf("#%d", a.Imm)
	}
	return a.Reg.String()
}

// Op is one machine operation, fully physical: it names the banks and
// registers it touches. The encoder packs it into the Figure-3 fields; the
// simulator executes it.
type Op struct {
	Kind ir.OpKind // IR kind or machine extension above
	Type ir.Type   // element type for memory/moves/selects
	Dst  PReg
	A, B Arg
	C    Arg     // SELECT's third operand
	FImm float64 // ConstF payload
	Spec bool    // retained on LoadSpec for disassembly clarity

	// Branch fields. Before linking, Target is an instruction index within
	// the function; after linking it is an absolute instruction address.
	Target int
	Prio   int // multiway-branch priority: lower wins (§6.5.2)

	// Sym carries the callee name (OpCall) or service (OpSyscall via Imm in
	// A) before linking.
	Sym string
}

func (o *Op) String() string {
	s := OpName(o.Kind)
	if o.Dst.Valid() {
		s = o.Dst.String() + " = " + s
	}
	switch o.Kind {
	case ir.ConstF:
		return fmt.Sprintf("%s %g", s, o.FImm)
	case ir.Load, ir.LoadSpec:
		return fmt.Sprintf("%s.%s [%s+%s]", s, o.Type, o.A, o.B)
	case ir.Store:
		return fmt.Sprintf("%s.%s [%s+%s], %s", OpName(o.Kind), o.Type, o.A, o.B, o.C)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %d %s", s, o.Target, o.Sym)
	case OpBrT:
		return fmt.Sprintf("%s %s, %d (prio %d)", s, o.A, o.Target, o.Prio)
	case ir.Select:
		return fmt.Sprintf("%s %s, %s, %s", s, o.A, o.B, o.C)
	default:
		out := s
		if o.A.IsImm || o.A.Reg.Valid() {
			out += " " + o.A.String()
		}
		if o.B.IsImm || o.B.Reg.Valid() {
			out += ", " + o.B.String()
		}
		return out
	}
}

// UnitKind classifies functional units.
type UnitKind uint8

const (
	UnitNone UnitKind = iota
	UIALU             // integer ALU on an I board (2 per board, early+late beats)
	UFA               // floating adder / ALU-A on an F board
	UFM               // floating multiplier/divider / ALU-M on an F board
	UBR               // branch unit on an I board (one test per instruction)
)

func (k UnitKind) String() string {
	switch k {
	case UIALU:
		return "ialu"
	case UFA:
		return "fa"
	case UFM:
		return "fm"
	case UBR:
		return "br"
	}
	return "?"
}

// Unit names a functional unit instance.
type Unit struct {
	Kind UnitKind
	Pair uint8 // board pair
	Idx  uint8 // IALU 0/1 within the board
}

func (u Unit) String() string {
	if u.Kind == UIALU {
		return fmt.Sprintf("%s%d.%d", u.Kind, u.Pair, u.Idx)
	}
	return fmt.Sprintf("%s%d", u.Kind, u.Pair)
}

// SlotOp is an op placed in a specific unit and beat of an instruction.
type SlotOp struct {
	Unit Unit
	Beat uint8 // 0 = early, 1 = late; F units and branches always 0
	Op   Op
}

// Instr is one wide instruction: up to OpsPerInstr slot ops, all initiated
// in the same instruction, with no two occupying the same (unit, beat).
type Instr struct {
	Slots []SlotOp
}

// Find returns the slot op at (unit, beat), or nil.
func (in *Instr) Find(u Unit, beat uint8) *SlotOp {
	for i := range in.Slots {
		if in.Slots[i].Unit == u && in.Slots[i].Beat == beat {
			return &in.Slots[i]
		}
	}
	return nil
}

func (in *Instr) String() string {
	if len(in.Slots) == 0 {
		return "(nop)"
	}
	s := ""
	for i := range in.Slots {
		if i > 0 {
			s += " ; "
		}
		so := &in.Slots[i]
		s += fmt.Sprintf("%s/%d: %s", so.Unit, so.Beat, so.Op.String())
	}
	return s
}

// Units enumerates every functional unit in the configuration.
func (c Config) Units() []Unit {
	var us []Unit
	for p := 0; p < c.Pairs; p++ {
		us = append(us,
			Unit{UIALU, uint8(p), 0},
			Unit{UIALU, uint8(p), 1},
			Unit{UFA, uint8(p), 0},
			Unit{UFM, uint8(p), 0},
			Unit{UBR, uint8(p), 0},
		)
	}
	return us
}
