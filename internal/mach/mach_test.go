package mach

import (
	"math"
	"testing"
)

func TestConfigGeometry(t *testing.T) {
	for _, tc := range []struct {
		pairs, ops, bits int
	}{{1, 7, 256}, {2, 14, 512}, {4, 28, 1024}} {
		c := NewConfig(tc.pairs)
		if err := c.Validate(); err != nil {
			t.Fatalf("pairs=%d: %v", tc.pairs, err)
		}
		if c.OpsPerInstr() != tc.ops {
			t.Errorf("pairs=%d: ops/instr = %d, want %d", tc.pairs, c.OpsPerInstr(), tc.ops)
		}
		if c.InstrBits() != tc.bits {
			t.Errorf("pairs=%d: bits = %d, want %d", tc.pairs, c.InstrBits(), tc.bits)
		}
		if got := len(c.Units()); got != tc.pairs*5 {
			t.Errorf("pairs=%d: units = %d, want %d", tc.pairs, got, tc.pairs*5)
		}
	}
}

// TestPaperPeakNumbers checks §6.3's headline rates fall out of the model:
// 215 "VLIW MIPS", 60 MFLOPS, 492 MB/s for the 4-pair machine.
func TestPaperPeakNumbers(t *testing.T) {
	c := Trace28()
	if m := c.PeakMIPS(); math.Abs(m-215) > 1 {
		t.Errorf("peak MIPS = %.1f, paper says 215", m)
	}
	if m := c.PeakMFLOPS(); math.Abs(m-61.5) > 1 {
		t.Errorf("peak MFLOPS = %.1f, paper says ~60", m)
	}
	if bw := c.PeakMemBandwidth() / 1e6; math.Abs(bw-492) > 1 {
		t.Errorf("peak bandwidth = %.0f MB/s, paper says 492", bw)
	}
}

func TestBankInterleave(t *testing.T) {
	c := Trace28() // 8 controllers x 8 banks
	if c.Banks() != 64 {
		t.Fatalf("banks = %d, want 64", c.Banks())
	}
	// consecutive 64-bit words hit consecutive controllers
	seen := map[int]bool{}
	for w := int64(0); w < 8; w++ {
		ctrl, _ := c.BankOf(w * 8)
		seen[ctrl] = true
	}
	if len(seen) != 8 {
		t.Errorf("8 consecutive words hit %d controllers, want 8", len(seen))
	}
	// same controller repeats every Controllers words, advancing the bank
	c0a, b0a := c.BankOf(0)
	c0b, b0b := c.BankOf(8 * 8)
	if c0a != c0b {
		t.Errorf("stride-8-words addresses on different controllers")
	}
	if b0a == b0b {
		t.Errorf("stride-8-words addresses share a bank")
	}
	// two addresses in the same 64-bit word share a bank
	ca, ba := c.BankOf(16)
	cb, bb := c.BankOf(20)
	if ca != cb || ba != bb {
		t.Errorf("same-word addresses on different banks")
	}
}

func TestInvalidConfigs(t *testing.T) {
	for _, f := range []func() Config{
		func() Config { c := Trace7(); c.Pairs = 5; return c },
		func() Config { c := Trace7(); c.Controllers = 0; return c },
		func() Config { c := Trace7(); c.BanksPerController = 9; return c },
		func() Config { c := Trace7(); c.IRegsPerBank = 2; return c },
	} {
		if err := f().Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", f())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewConfig(3) did not panic")
		}
	}()
	NewConfig(3)
}

func TestOpStrings(t *testing.T) {
	o := Op{Kind: OpBrT, A: RegArg(PReg{BankB, 0, 3}), Target: 42, Prio: 1}
	if s := o.String(); s == "" {
		t.Error("empty op string")
	}
	in := Instr{Slots: []SlotOp{{Unit: Unit{UIALU, 0, 0}, Beat: 1, Op: o}}}
	if in.String() == "(nop)" {
		t.Error("non-empty instr prints as nop")
	}
	if in.Find(Unit{UIALU, 0, 0}, 1) == nil {
		t.Error("Find missed the slot")
	}
	if in.Find(Unit{UIALU, 0, 0}, 0) != nil {
		t.Error("Find matched wrong beat")
	}
	empty := Instr{}
	if empty.String() != "(nop)" {
		t.Error("empty instruction should print (nop)")
	}
}

func TestIdealConfig(t *testing.T) {
	c := IdealConfig(4)
	if !c.Ideal || c.OpsPerInstr() != 28 {
		t.Errorf("ideal config wrong: %+v", c)
	}
}

func TestPRegAndArgs(t *testing.T) {
	if RegSP.String() != "i0.1" {
		t.Errorf("SP prints as %s", RegSP)
	}
	if !RegSP.Valid() || (PReg{}).Valid() {
		t.Error("validity wrong")
	}
	if ImmArg(7).String() != "#7" || SymArg("g").String() != "@g" {
		t.Error("arg strings wrong")
	}
}
