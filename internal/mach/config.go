// Package mach describes the TRACE machine to the rest of the system: the
// configuration parameters of §6 (board pairs, functional units, latencies,
// buses, register banks, interleaved memory), the machine operation and
// wide-instruction forms produced by the scheduler, and the resource
// vocabulary shared by the scheduler (which plans every beat statically) and
// the simulator (which verifies the plan, since the hardware has no
// interlocks).
package mach

import "fmt"

// BeatNs is the minor cycle time: 65 ns (§6.1).
const BeatNs = 65

// BeatsPerInstr: each instruction executes in two beats (§6.1).
const BeatsPerInstr = 2

// Memory pipeline stage offsets in beats from reference issue (§6.4.1).
// The scheduler charges shared resources at these offsets and the simulator
// verifies the same accounting, so both sides see one timing model:
//
//	0: EA addition on the I board     4: RAM access continues
//	1: TLB lookup                     5: data grabbed on the controller
//	2: physical address on a PA bus   6: data crosses a load bus (ECC)
//	3: RAM bank starts cycling        7: register file write; value usable
const (
	StagePA    = 2 // physical-address bus occupied
	StageBank  = 3 // first beat of RAM bank busy window
	StageData  = 6 // load data on an ILoad/FLoad bus; store data on a Store bus
	StageWrite = 7 // destination register file write port
)

// Config is a TRACE machine configuration. The unit of processor expansion
// is the Integer-Floating board pair; 1, 2, or 4 pairs give 256-, 512-, or
// 1024-bit instruction words (§6).
type Config struct {
	Name  string
	Pairs int // 1, 2, or 4

	// Memory system (§6.3-6.4). Addresses interleave across controllers
	// then banks on 64-bit (8-byte) granules.
	Controllers        int // up to 8
	BanksPerController int // up to 8
	BankBusyBeats      int // RAM bank busy time after access: 4 beats

	// Latencies in beats (§6.1, §6.2, §6.4.1). A new op can start on a unit
	// every beat (IALUs) or every instruction (F units); divides occupy the
	// multiplier.
	LatIALU int // 1
	LatIMul int // 4: 32-bit multiply composed from the §6.1 16-bit primitives
	LatIDiv int // 30: no divide hardware; iterative op occupying its ALU (Div and Rem)
	LatFAdd int // 6 (64-bit mode)
	LatFMul int // 7
	LatFDiv int // 25 (multiplier busy throughout)
	LatLoad int // 7: EA→TLB→bus→bank(2)→grab→bus→regfile write
	LatMove int // 1 per 32 bits: cross-bank moves, store-file moves

	// Register files (§6).
	IRegsPerBank int // 64 32-bit registers per I board
	FRegsPerBank int // 32 64-bit registers per F board (64 x 32-bit in pairs)
	StoreFile    int // 64-bit-capable store-file entries per F board
	BranchBank   int // 1-bit branch-bank elements per pair: 7

	// Crossbar ports per board per beat (§6): "four writes, four reads".
	RFWritePorts int
	RFReadPorts  int

	// Buses (§6.3): four each of ILoad, FLoad, Store, and physical-address.
	ILoadBuses int
	FLoadBuses int
	StoreBuses int
	PABuses    int

	// Instruction cache (§6.5): 8K instructions, virtually addressed.
	ICacheInstrs int

	// Hardware contexts (§8.1). The paper sells near-instant context
	// switching; these knobs describe how many resident program contexts
	// the machine time-shares and what the scheduler charges for rotating
	// between them.
	//
	// Contexts is the number of resident hardware contexts (register
	// banks + PC + write pipelines). 0 or 1 means a conventional
	// single-program machine.
	Contexts int
	// CtxQuantum is the round-robin timeslice in beats: a context that
	// executes this many beats without halting or stalling is rotated out.
	// 0 selects DefaultCtxQuantum.
	CtxQuantum int
	// CtxSwitchBeats is the machine-clock cost of one context rotation.
	// The default 0 models the paper's claim that with per-context
	// register banks and tagged caches/TLBs a switch costs essentially
	// nothing; raise it to model state spill through the memory system.
	CtxSwitchBeats int

	// Ideal, when set, models the Figure-1 "ideal VLIW": one central
	// register file with unbounded ports and buses; only functional-unit
	// counts and latencies constrain the schedule. Used by experiment F1.
	Ideal bool

	// RollTheDice lets the scheduler co-schedule memory references whose
	// bank conflict is "maybe", relying on the hardware bank-stall
	// (§6.4.4). Off = conservative spacing.
	RollTheDice bool

	// SpeculativeLoads enables the special non-trapping LOAD opcodes (§7)
	// so loads can move above conditional branches.
	SpeculativeLoads bool

	// NoSpread disables the scheduler's board-spreading policy: every
	// operation is hinted to pair 0 instead of rotating unrolled loop
	// bodies across the pairs. An ablation knob for the §5 "data routing"
	// discussion — with spreading off, a multi-pair machine degenerates
	// toward a single cluster plus copy traffic.
	NoSpread bool

	// MultiwayBranch allows packing more than one branch test per
	// instruction with software priorities (§6.5.2). Off = at most one
	// branch per instruction.
	MultiwayBranch bool
}

// NewConfig returns a TRACE with the given number of I-F pairs and all
// paper-standard parameters. Pairs must be 1, 2, or 4.
func NewConfig(pairs int) Config {
	if pairs != 1 && pairs != 2 && pairs != 4 {
		panic(fmt.Sprintf("mach: invalid pair count %d", pairs))
	}
	return Config{
		Name:  fmt.Sprintf("TRACE %d/200", pairs*7),
		Pairs: pairs,

		Controllers:        2 * pairs, // scale memory with CPU, max 8 (§6.3)
		BanksPerController: 8,
		BankBusyBeats:      4,

		LatIALU: 1,
		LatIMul: 4,
		LatIDiv: 30,
		LatFAdd: 6,
		LatFMul: 7,
		LatFDiv: 25,
		LatLoad: 7,
		LatMove: 1,

		IRegsPerBank: 64,
		FRegsPerBank: 32,
		StoreFile:    16,
		BranchBank:   7,

		RFWritePorts: 4,
		RFReadPorts:  4,

		ILoadBuses: 4,
		FLoadBuses: 4,
		StoreBuses: 4,
		PABuses:    4,

		ICacheInstrs: 8192,

		Contexts: 1,

		RollTheDice:      true,
		SpeculativeLoads: true,
		MultiwayBranch:   true,
	}
}

// Trace7 returns the 1-pair TRACE 7/200 configuration.
func Trace7() Config { return NewConfig(1) }

// Trace14 returns the 2-pair TRACE 14/200 configuration.
func Trace14() Config { return NewConfig(2) }

// Trace28 returns the 4-pair TRACE 28/200 configuration.
func Trace28() Config { return NewConfig(4) }

// IdealConfig returns the Figure-1 ideal VLIW with the same functional units
// as a real machine with the given pairs but a single central register file
// and unlimited ports and buses.
func IdealConfig(pairs int) Config {
	c := NewConfig(pairs)
	c.Name = fmt.Sprintf("Ideal VLIW (%d pairs)", pairs)
	c.Ideal = true
	return c
}

// OpsPerInstr returns the peak operations per instruction: per pair, 4
// integer ALU ops (2 ALUs x early/late beat), 2 floating ops, 1 branch test
// — 7, hence 28 at 4 pairs (§6.3).
func (c Config) OpsPerInstr() int { return c.Pairs * 7 }

// InstrBits returns the instruction word width in bits (§6: 256 per pair).
func (c Config) InstrBits() int { return c.Pairs * 256 }

// Banks returns the total number of independent RAM banks.
func (c Config) Banks() int { return c.Controllers * c.BanksPerController }

// BankOf returns (controller, bank) for a byte address: interleave is on
// 64-bit words, controllers first (§6.3).
func (c Config) BankOf(addr int64) (ctrl, bank int) {
	w := addr >> 3
	ctrl = int(w % int64(c.Controllers))
	bank = int((w / int64(c.Controllers)) % int64(c.BanksPerController))
	return ctrl, bank
}

// PeakMIPS returns the peak "VLIW MIPS": ops per instruction divided by the
// 130 ns instruction time. The paper quotes 215 for the 28-wide machine.
func (c Config) PeakMIPS() float64 {
	return float64(c.OpsPerInstr()) / (BeatsPerInstr * BeatNs * 1e-3)
}

// PeakMFLOPS returns peak floating ops/s: 2 per pair per instruction.
// The paper quotes 60 for four pairs.
func (c Config) PeakMFLOPS() float64 {
	return float64(2*c.Pairs) / (BeatsPerInstr * BeatNs * 1e-3)
}

// PeakMemBandwidth returns bytes/second with one 64-bit reference per I
// board per beat. The paper quotes 492 MB/s for four boards.
func (c Config) PeakMemBandwidth() float64 {
	return float64(c.Pairs*8) / (BeatNs * 1e-9)
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.Pairs < 1 || c.Pairs > 4 {
		return fmt.Errorf("mach: %d pairs out of range", c.Pairs)
	}
	if c.Controllers < 1 || c.Controllers > 8 {
		return fmt.Errorf("mach: %d controllers out of range", c.Controllers)
	}
	if c.BanksPerController < 1 || c.BanksPerController > 8 {
		return fmt.Errorf("mach: %d banks/controller out of range", c.BanksPerController)
	}
	if c.IRegsPerBank < 8 || c.FRegsPerBank < 4 || c.StoreFile < 2 || c.BranchBank < 1 {
		return fmt.Errorf("mach: register file sizes too small")
	}
	if c.LatIMul < 1 || c.LatIDiv < 1 {
		return fmt.Errorf("mach: integer multiply/divide latencies must be positive")
	}
	if c.Contexts < 0 || c.Contexts > 255 {
		return fmt.Errorf("mach: %d hardware contexts out of range", c.Contexts)
	}
	if c.CtxQuantum < 0 || c.CtxSwitchBeats < 0 {
		return fmt.Errorf("mach: context quantum and switch cost must be non-negative")
	}
	return nil
}
