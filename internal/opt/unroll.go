package opt

import "github.com/multiflow-repro/trace/internal/ir"

// Unroll replicates the bodies of innermost loops factor-1 extra times
// ("automatic loop unrolling", §4). The transformation is test-preserving:
// every copy keeps its exit branches, so it is correct for any loop shape,
// counted or not. The payoff comes later: the trace selector threads a trace
// through all copies (the exit tests become on-trace splits), and the trace
// scheduler's register renaming breaks the false dependences between copies,
// exposing cross-iteration parallelism exactly as the paper describes.
//
// Loops whose body exceeds maxOps ops are left alone — the heuristic the
// paper mentions had to be added before UNIX-scale code stopped "growing
// unmanageably" (§8.4). Returns the number of loops unrolled.
func Unroll(f *ir.Func, factor, maxOps int) int {
	if factor < 2 {
		return 0
	}
	loops := f.NaturalLoops()
	// Innermost loops only: a loop is innermost if no other loop's body is a
	// strict subset of its body.
	inner := loops[:0]
	for _, l := range loops {
		innermost := true
		for _, m := range loops {
			if m != l && subset(m.Body, l.Body) {
				innermost = false
				break
			}
		}
		if innermost {
			inner = append(inner, l)
		}
	}
	n := 0
	for _, l := range inner {
		if unrollLoop(f, l, factor, maxOps) {
			n++
		}
	}
	if n > 0 {
		f.RemoveUnreachable()
	}
	return n
}

func subset(a, b map[int]bool) bool {
	if len(a) >= len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func unrollLoop(f *ir.Func, l *ir.Loop, factor, maxOps int) bool {
	size := 0
	branches := 0
	for b := range l.Body {
		size += len(f.Blocks[b].Ops)
		if t := f.Blocks[b].Term(); t != nil && t.Kind == ir.CondBr {
			branches++
		}
	}
	// Loops with internal control flow (more than the loop test itself)
	// replicate their unpredictable branches, and every replica's off-trace
	// edge grows compensation code. The paper's heuristics were tuned until
	// "the full compacting compiler optimizations work well ... without
	// undue code growth" (§8.4); cap the factor for branchy bodies.
	if branches > 1 && factor > 2 {
		factor = 2
	}
	if size*(factor-1) > maxOps {
		return false
	}
	// Loops containing calls are not unrolled: calls end traces anyway, so
	// replication would cost space for no schedule benefit.
	for b := range l.Body {
		for i := range f.Blocks[b].Ops {
			if f.Blocks[b].Ops[i].Kind == ir.Call {
				return false
			}
		}
	}

	// bodyIDs in deterministic order
	var bodyIDs []int
	for b := range l.Body {
		bodyIDs = append(bodyIDs, b)
	}
	for i := 0; i < len(bodyIDs); i++ {
		for j := i + 1; j < len(bodyIDs); j++ {
			if bodyIDs[j] < bodyIDs[i] {
				bodyIDs[i], bodyIDs[j] = bodyIDs[j], bodyIDs[i]
			}
		}
	}

	// Create factor-1 copies. copyMap[k][origID] = ID of copy k of the block.
	copyMap := make([]map[int]int, factor-1)
	for k := 0; k < factor-1; k++ {
		copyMap[k] = map[int]int{}
		for _, b := range bodyIDs {
			nb := f.AddBlock()
			copyMap[k][b] = nb.ID
		}
	}
	// headOf(k): header of copy k, where copy 0 is the original.
	headOf := func(k int) int {
		if k == 0 {
			return l.Head
		}
		return copyMap[k-1][l.Head]
	}
	// Fill each copy: targets inside the body map to the same copy, except
	// the back edge to the header, which advances to the next copy (the last
	// copy branches back to the original header).
	for k := 0; k < factor-1; k++ {
		nextHead := headOf((k + 2) % factor)
		if k == factor-2 {
			nextHead = l.Head
		}
		for _, b := range bodyIDs {
			src := f.Blocks[b]
			dst := f.Blocks[copyMap[k][b]]
			dst.Ops = make([]ir.Op, len(src.Ops))
			for i := range src.Ops {
				dst.Ops[i] = src.Ops[i].Clone()
			}
			t := dst.Term()
			retarget := func(tgt int) int {
				if tgt == l.Head {
					return nextHead
				}
				if l.Body[tgt] {
					return copyMap[k][tgt]
				}
				return tgt // exit edge: unchanged
			}
			switch t.Kind {
			case ir.Br:
				t.T0 = retarget(t.T0)
			case ir.CondBr:
				t.T0 = retarget(t.T0)
				t.T1 = retarget(t.T1)
			}
		}
	}
	// Original copy's back edges now go to copy 1's header.
	firstCopyHead := headOf(1)
	for _, b := range bodyIDs {
		t := f.Blocks[b].Term()
		switch t.Kind {
		case ir.Br:
			if t.T0 == l.Head {
				t.T0 = firstCopyHead
			}
		case ir.CondBr:
			if t.T0 == l.Head {
				t.T0 = firstCopyHead
			}
			if t.T1 == l.Head {
				t.T1 = firstCopyHead
			}
		}
	}
	return true
}
