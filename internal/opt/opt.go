package opt

import (
	"context"

	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/pipeline"
)

// Options configures the classical-optimization pipeline.
type Options struct {
	// Inline enables inline substitution of subroutines.
	Inline bool
	// InlineThreshold is the max callee size in ops (default 60).
	InlineThreshold int
	// InlineGrowthCap bounds caller size in ops during inlining (default 2000).
	InlineGrowthCap int
	// UnrollFactor replicates innermost loop bodies this many times total
	// (1 = no unrolling).
	UnrollFactor int
	// UnrollMaxOps bounds the ops added per unrolled loop (default 400).
	UnrollMaxOps int
	// TailDup duplicates small merge blocks so traces can run through
	// if-chains without side entrances (see TailDup).
	TailDup bool
	// TailDupBudget bounds duplicated ops per function (default 200).
	TailDupBudget int
}

// Default returns the optimization options the compiler driver uses at -O2:
// inlining on, unroll by 8 — comparable in spirit to the heuristics the
// paper says are "now in place" (§8.4).
func Default() Options {
	return Options{Inline: true, UnrollFactor: 8, TailDup: true}
}

// None returns options that disable every optional transformation (cleanup
// passes still run so the IR reaching the scheduler is canonical).
func None() Options { return Options{UnrollFactor: 1} }

func (o Options) withDefaults() Options {
	if o.InlineThreshold == 0 {
		o.InlineThreshold = 60
	}
	if o.InlineGrowthCap == 0 {
		o.InlineGrowthCap = 2000
	}
	if o.UnrollMaxOps == 0 {
		o.UnrollMaxOps = 400
	}
	if o.UnrollFactor == 0 {
		o.UnrollFactor = 1
	}
	if o.TailDupBudget == 0 {
		o.TailDupBudget = 200
	}
	return o
}

// Stats reports what the pipeline did, for the code-growth experiments.
type Stats struct {
	Inlined    int
	Unrolled   int
	Hoisted    int
	TailDups   int
	Simplified int
	Removed    int
	OpsBefore  int
	OpsAfter   int
}

// Run applies the full classical pipeline to the program and returns stats.
// It is a thin wrapper over Passes executed by the pipeline driver; callers
// that want per-pass instrumentation run Passes through pipeline.Run
// themselves (as the core driver does).
func Run(p *ir.Program, opts Options) Stats {
	ctx := pipeline.NewContext()
	before := pipeline.CountOps(p)
	// Classical passes never fail without verify mode enabled.
	if err := pipeline.Run(context.Background(), p, ctx, Passes(opts)...); err != nil {
		panic("opt: classical pass failed: " + err.Error())
	}
	return StatsFrom(ctx, before, pipeline.CountOps(p))
}

// cleanup iterates the cheap local passes to a fixed point.
func cleanup(f *ir.Func) int {
	total := 0
	for i := 0; i < 10; i++ {
		n := LVN(f)
		n += CopyProp(f)
		n += FoldBranches(f)
		n += DCE(f)
		total += n
		if n == 0 {
			break
		}
	}
	return total
}
