package opt

import "github.com/multiflow-repro/trace/internal/ir"

// Options configures the classical-optimization pipeline.
type Options struct {
	// Inline enables inline substitution of subroutines.
	Inline bool
	// InlineThreshold is the max callee size in ops (default 60).
	InlineThreshold int
	// InlineGrowthCap bounds caller size in ops during inlining (default 2000).
	InlineGrowthCap int
	// UnrollFactor replicates innermost loop bodies this many times total
	// (1 = no unrolling).
	UnrollFactor int
	// UnrollMaxOps bounds the ops added per unrolled loop (default 400).
	UnrollMaxOps int
	// TailDup duplicates small merge blocks so traces can run through
	// if-chains without side entrances (see TailDup).
	TailDup bool
	// TailDupBudget bounds duplicated ops per function (default 200).
	TailDupBudget int
}

// Default returns the optimization options the compiler driver uses at -O2:
// inlining on, unroll by 8 — comparable in spirit to the heuristics the
// paper says are "now in place" (§8.4).
func Default() Options {
	return Options{Inline: true, UnrollFactor: 8, TailDup: true}
}

// None returns options that disable every optional transformation (cleanup
// passes still run so the IR reaching the scheduler is canonical).
func None() Options { return Options{UnrollFactor: 1} }

func (o Options) withDefaults() Options {
	if o.InlineThreshold == 0 {
		o.InlineThreshold = 60
	}
	if o.InlineGrowthCap == 0 {
		o.InlineGrowthCap = 2000
	}
	if o.UnrollMaxOps == 0 {
		o.UnrollMaxOps = 400
	}
	if o.UnrollFactor == 0 {
		o.UnrollFactor = 1
	}
	if o.TailDupBudget == 0 {
		o.TailDupBudget = 200
	}
	return o
}

// Stats reports what the pipeline did, for the code-growth experiments.
type Stats struct {
	Inlined    int
	Unrolled   int
	Hoisted    int
	TailDups   int
	Simplified int
	Removed    int
	OpsBefore  int
	OpsAfter   int
}

// Run applies the full classical pipeline to the program and returns stats.
// Order: inline → per-function cleanup (LVN/copyprop/branch-fold/DCE) →
// LICM → unroll → cleanup again. Unrolling runs after LICM so invariants are
// hoisted once, not per copy.
func Run(p *ir.Program, opts Options) Stats {
	opts = opts.withDefaults()
	var st Stats
	for _, f := range p.Funcs {
		st.OpsBefore += countOps(f)
	}
	if opts.Inline {
		st.Inlined = Inline(p, opts.InlineThreshold, opts.InlineGrowthCap)
	}
	for _, f := range p.Funcs {
		st.Simplified += cleanup(f)
		st.Hoisted += LICM(f)
		if opts.UnrollFactor > 1 {
			st.Unrolled += Unroll(f, opts.UnrollFactor, opts.UnrollMaxOps)
		}
		if opts.TailDup {
			st.TailDups += TailDup(f, 12, opts.TailDupBudget)
		}
		st.Simplified += cleanup(f)
		st.Removed += DCE(f)
	}
	for _, f := range p.Funcs {
		st.OpsAfter += countOps(f)
	}
	return st
}

// cleanup iterates the cheap local passes to a fixed point.
func cleanup(f *ir.Func) int {
	total := 0
	for i := 0; i < 10; i++ {
		n := LVN(f)
		n += CopyProp(f)
		n += FoldBranches(f)
		n += DCE(f)
		total += n
		if n == 0 {
			break
		}
	}
	return total
}
