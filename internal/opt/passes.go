package opt

import (
	"github.com/multiflow-repro/trace/internal/ir"
	"github.com/multiflow-repro/trace/internal/pipeline"
)

// Metric names the classical passes report through pipeline.Context.
const (
	MetricInlined    = "inlined"
	MetricUnrolled   = "unrolled"
	MetricHoisted    = "hoisted"
	MetricTailDups   = "taildups"
	MetricSimplified = "simplified"
	MetricRemoved    = "removed"
)

// Passes returns the classical-optimization pipeline as registered passes,
// in the order Run has always applied them: inline → cleanup
// (LVN/copyprop/branch-fold/DCE to a fixed point) → LICM → unroll →
// tail-dup → cleanup → DCE. Each stage is per-function and functions are
// independent, so running each stage across the whole program preserves the
// IR the fused driver produced. Unrolling runs after LICM so invariants are
// hoisted once, not per copy.
func Passes(o Options) []pipeline.Pass {
	o = o.withDefaults()
	var ps []pipeline.Pass
	if o.Inline {
		ps = append(ps, pipeline.New("inline", func(p *ir.Program, ctx *pipeline.Context) error {
			ctx.Add(MetricInlined, Inline(p, o.InlineThreshold, o.InlineGrowthCap))
			return nil
		}))
	}
	ps = append(ps,
		pipeline.PerFunc("cleanup", MetricSimplified, cleanup),
		pipeline.PerFunc("licm", MetricHoisted, LICM),
	)
	if o.UnrollFactor > 1 {
		ps = append(ps, pipeline.PerFunc("unroll", MetricUnrolled, func(f *ir.Func) int {
			return Unroll(f, o.UnrollFactor, o.UnrollMaxOps)
		}))
	}
	if o.TailDup {
		ps = append(ps, pipeline.PerFunc("taildup", MetricTailDups, func(f *ir.Func) int {
			return TailDup(f, 12, o.TailDupBudget)
		}))
	}
	ps = append(ps,
		pipeline.PerFunc("post-cleanup", MetricSimplified, cleanup),
		pipeline.PerFunc("dce", MetricRemoved, DCE),
	)
	return ps
}

// StatsFrom collects the counters the passes left in ctx into the Stats the
// pre-pipeline API reported, with op counts from before/after the classical
// passes.
func StatsFrom(ctx *pipeline.Context, opsBefore, opsAfter int) Stats {
	return Stats{
		Inlined:    ctx.Metric(MetricInlined),
		Unrolled:   ctx.Metric(MetricUnrolled),
		Hoisted:    ctx.Metric(MetricHoisted),
		TailDups:   ctx.Metric(MetricTailDups),
		Simplified: ctx.Metric(MetricSimplified),
		Removed:    ctx.Metric(MetricRemoved),
		OpsBefore:  opsBefore,
		OpsAfter:   opsAfter,
	}
}
