package opt

import "github.com/multiflow-repro/trace/internal/ir"

// LICM hoists loop-invariant pure computations into a preheader block
// ("loop-invariant motion", §4). An op is hoisted when:
//   - it is pure (no loads, stores, calls, or terminators),
//   - every operand has no definition inside the loop (iteratively:
//     operands defined only by already-hoisted ops count as invariant),
//   - its destination has exactly one definition in the loop,
//   - its block dominates all loop exits (so it would execute anyway) OR its
//     destination is dead at every loop exit (speculation is harmless: the
//     hoistable set excludes faulting ops), and
//   - its destination is not live into the header from outside the loop.
//
// Returns the number of ops hoisted.
func LICM(f *ir.Func) int {
	hoisted := 0
	// Innermost-first so inner-loop invariants can then be hoisted further
	// out by subsequent iterations.
	for {
		n := licmOnce(f)
		hoisted += n
		if n == 0 {
			return hoisted
		}
	}
}

func licmOnce(f *ir.Func) int {
	loops := f.NaturalLoops()
	if len(loops) == 0 {
		return 0
	}
	hoisted := 0
	for _, l := range loops {
		hoisted += hoistLoop(f, l)
	}
	return hoisted
}

func pureHoistable(k ir.OpKind) bool {
	switch k {
	case ir.ConstI, ir.ConstF, ir.Mov, ir.GAddr, ir.FrAddr,
		ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor,
		ir.Shl, ir.Shr, ir.Sra, ir.Neg, ir.Not,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE,
		ir.FAdd, ir.FSub, ir.FMul, ir.FNeg,
		ir.FCmpEQ, ir.FCmpNE, ir.FCmpLT, ir.FCmpLE, ir.FCmpGT, ir.FCmpGE,
		ir.ItoF, ir.Select:
		return true
	}
	// Div/Rem/FDiv excluded: hoisting may introduce a fault (divide by zero)
	// on iterations that would not have executed the op.
	return false
}

func hoistLoop(f *ir.Func, l *ir.Loop) int {
	// count definitions of each register inside the loop
	defs := map[ir.Reg]int{}
	for b := range l.Body {
		for i := range f.Blocks[b].Ops {
			o := &f.Blocks[b].Ops[i]
			if o.Dst != ir.None {
				defs[o.Dst]++
			}
		}
	}
	idom := f.Idom()
	exits := l.Exits(f)
	domAllExits := func(b int) bool {
		for _, e := range exits {
			if !ir.Dominates(idom, b, e[0]) {
				return false
			}
		}
		return true
	}
	lv := f.ComputeLiveness()

	invariant := map[ir.Reg]bool{} // dst of ops chosen for hoisting
	type cand struct {
		block, idx int
	}
	var chosen []cand
	isChosen := map[cand]bool{}

	// iterate: an op becomes hoistable once all its in-loop-defined operands
	// are themselves hoisted
	for changed := true; changed; {
		changed = false
		for b := range l.Body {
			blk := f.Blocks[b]
			for i := range blk.Ops {
				c := cand{b, i}
				if isChosen[c] {
					continue
				}
				o := &blk.Ops[i]
				if o.Dst == ir.None || !pureHoistable(o.Kind) {
					continue
				}
				if defs[o.Dst] != 1 {
					continue
				}
				if !domAllExits(b) && !deadAtExits(lv, exits, o.Dst) {
					continue
				}
				if lv.In[l.Head].Has(o.Dst) {
					// live into the header: some path uses the old value
					// before this def; hoisting would clobber it. (The def
					// inside the loop makes the reg live-in only if used
					// before defined on a loop path — conservative test.)
					continue
				}
				ok := true
				for _, a := range o.Args {
					if defs[a] > 0 && !invariant[a] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				isChosen[c] = true
				invariant[o.Dst] = true
				chosen = append(chosen, c)
				changed = true
			}
		}
	}
	if len(chosen) == 0 {
		return 0
	}

	pre := makePreheader(f, l)
	// Move chosen ops to the preheader in original program order: blocks in
	// dominance order then index order. A simple stable criterion: order by
	// (RPO position of block, index).
	rpoPos := map[int]int{}
	for i, b := range f.RPO() {
		rpoPos[b] = i
	}
	for i := 0; i < len(chosen); i++ {
		for j := i + 1; j < len(chosen); j++ {
			a, b := chosen[i], chosen[j]
			if rpoPos[b.block] < rpoPos[a.block] || (a.block == b.block && b.idx < a.idx) {
				chosen[i], chosen[j] = chosen[j], chosen[i]
			}
		}
	}
	// append clones to preheader (before its terminator), then mark
	// originals as Nop and sweep
	term := pre.Ops[len(pre.Ops)-1]
	pre.Ops = pre.Ops[:len(pre.Ops)-1]
	for _, c := range chosen {
		pre.Ops = append(pre.Ops, f.Blocks[c.block].Ops[c.idx].Clone())
		f.Blocks[c.block].Ops[c.idx] = ir.Op{Kind: ir.Nop}
	}
	pre.Ops = append(pre.Ops, term)
	removeNops(f)
	return len(chosen)
}

// deadAtExits reports whether r is dead on every exit edge of the loop.
func deadAtExits(lv *ir.Liveness, exits [][2]int, r ir.Reg) bool {
	for _, e := range exits {
		if lv.In[e[1]].Has(r) {
			return false
		}
	}
	return true
}

// makePreheader ensures the loop has a dedicated preheader: a block whose
// only successor is the header and through which every entry edge passes.
// Returns the preheader.
func makePreheader(f *ir.Func, l *ir.Loop) *ir.Block {
	preds := f.Preds()
	var outside []int
	for _, p := range preds[l.Head] {
		if !l.Body[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := f.Blocks[outside[0]]
		if t := p.Term(); t != nil && t.Kind == ir.Br && len(p.Succs()) == 1 {
			return p
		}
	}
	pre := f.AddBlock()
	pre.Ops = append(pre.Ops, ir.Op{Kind: ir.Br, T0: l.Head})
	for _, pid := range outside {
		t := f.Blocks[pid].Term()
		switch t.Kind {
		case ir.Br:
			if t.T0 == l.Head {
				t.T0 = pre.ID
			}
		case ir.CondBr:
			if t.T0 == l.Head {
				t.T0 = pre.ID
			}
			if t.T1 == l.Head {
				t.T1 = pre.ID
			}
		}
	}
	return pre
}

func removeNops(f *ir.Func) {
	for _, b := range f.Blocks {
		var kept []ir.Op
		for _, o := range b.Ops {
			if o.Kind != ir.Nop {
				kept = append(kept, o)
			}
		}
		b.Ops = kept
	}
}
