package opt

import "github.com/multiflow-repro/trace/internal/ir"

// TailDup duplicates small merge blocks so each predecessor gets a private
// copy, removing side entrances from the hot paths. A trace can then extend
// through an if-chain without join bookkeeping, and the multiway branch
// (§6.5.2) can pack the chain's tests together. This is the structural
// counterpart of the paper's join compensation code: the same instructions
// are copied, but at the IR level before scheduling. Growth is bounded by
// budget ops per function.
func TailDup(f *ir.Func, maxBlockOps, budget int) int {
	dups := 0
	spent := 0
	for pass := 0; pass < 64; pass++ {
		changed := false
		preds := f.Preds()
		idom := f.Idom()
		loops := f.NaturalLoops()
		// innermost returns the smallest loop containing a block (loops are
		// sorted innermost-first).
		innermost := func(bid int) *ir.Loop {
			for _, l := range loops {
				if l.Body[bid] {
					return l
				}
			}
			return nil
		}
		// inLoopMerge reports whether the block is an if-chain merge on a
		// hot path: at least two predecessors live in the same innermost
		// loop as the block itself. Merges whose predecessors belong to an
		// inner loop (a nested loop's unrolled exit tests) are excluded —
		// duplicating a loop's exit continuation fragments the loop trace
		// instead of helping it.
		inLoopMerge := func(bid int, ps []int) bool {
			l := innermost(bid)
			if l == nil {
				return false
			}
			n := 0
			for _, p := range ps {
				if innermost(p) == l {
					n++
				}
			}
			return n >= 2
		}
		for bid := 1; bid < len(f.Blocks); bid++ {
			b := f.Blocks[bid]
			ps := preds[bid]
			if len(ps) < 2 || len(b.Ops) > maxBlockOps {
				continue
			}
			if !inLoopMerge(bid, ps) {
				continue
			}
			// never duplicate a loop header (a predecessor it dominates has
			// a back edge to it)
			isHeader := false
			for _, p := range ps {
				if ir.Dominates(idom, bid, p) {
					isHeader = true
					break
				}
			}
			if isHeader {
				continue
			}
			// self-loops and blocks ending in calls are left alone
			selfPred := false
			for _, p := range ps {
				if p == bid {
					selfPred = true
				}
			}
			if selfPred {
				continue
			}
			cost := len(b.Ops) * (len(ps) - 1)
			if spent+cost > budget {
				continue
			}
			spent += cost
			// every predecessor after the first gets a private copy
			for _, p := range ps[1:] {
				nb := f.AddBlock()
				nb.Ops = make([]ir.Op, len(b.Ops))
				for i := range b.Ops {
					nb.Ops[i] = b.Ops[i].Clone()
				}
				retarget(f.Blocks[p], bid, nb.ID)
				dups++
			}
			changed = true
			// recompute preds/doms after structural change
			break
		}
		if !changed {
			break
		}
	}
	if dups > 0 {
		f.RemoveUnreachable()
	}
	return dups
}

// retarget rewrites p's terminator edges from old to new.
func retarget(p *ir.Block, old, new int) {
	t := p.Term()
	switch t.Kind {
	case ir.Br:
		if t.T0 == old {
			t.T0 = new
		}
	case ir.CondBr:
		if t.T0 == old {
			t.T0 = new
		}
		if t.T1 == old {
			t.T1 = new
		}
	}
}
