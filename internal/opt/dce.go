package opt

import "github.com/multiflow-repro/trace/internal/ir"

// DCE removes pure ops whose results are never used, iterating to a fixed
// point (removing one op can make its operands' definitions dead too).
// Returns the total number of ops removed.
func DCE(f *ir.Func) int {
	total := 0
	for {
		n := dceOnce(f)
		total += n
		if n == 0 {
			return total
		}
	}
}

func dceOnce(f *ir.Func) int {
	lv := f.ComputeLiveness()
	removed := 0
	for _, b := range f.Blocks {
		live := lv.Out[b.ID].Clone()
		// walk backward, deleting dead pure ops
		var kept []ir.Op
		for i := len(b.Ops) - 1; i >= 0; i-- {
			o := b.Ops[i]
			dead := o.Dst != ir.None && !live.Has(o.Dst) && !o.Kind.HasSideEffect()
			if dead {
				removed++
				continue
			}
			if o.Dst != ir.None {
				live.Remove(o.Dst)
			}
			for _, a := range o.Args {
				live.Add(a)
			}
			kept = append(kept, o)
		}
		// reverse kept
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		b.Ops = kept
	}
	return removed
}

// CopyProp rewrites uses of registers defined by Mov to use the source when
// the rewrite is provably safe within a block (neither source nor
// destination is redefined in between). Block-local; LVN handles the common
// cases and this pass mops up after inlining and unrolling. Returns uses
// rewritten.
func CopyProp(f *ir.Func) int {
	changed := 0
	for _, b := range f.Blocks {
		copies := map[ir.Reg]ir.Reg{} // dst -> src while valid
		for i := range b.Ops {
			o := &b.Ops[i]
			for j, a := range o.Args {
				if s, ok := copies[a]; ok {
					o.Args[j] = s
					changed++
				}
			}
			if o.Dst != ir.None {
				// any copy into or out of dst is invalidated
				delete(copies, o.Dst)
				for d, s := range copies {
					if s == o.Dst {
						delete(copies, d)
					}
				}
				if o.Kind == ir.Mov && o.Args[0] != o.Dst {
					copies[o.Dst] = o.Args[0]
				}
			}
		}
	}
	return changed
}
